// Package vnet is a deterministic virtual network for one simulated board.
//
// It stands in for the building's IT network: the paper's web interface
// listens on TCP port 8080, and administrators (or attackers) reach it from
// the outside. Real sockets would make experiments racy; vnet keeps byte
// streams entirely in memory and integrates with the virtual clock, so an
// experiment can inject an HTTP request at exactly t = 90s of virtual time
// and observe the response deterministically.
//
// The package is intentionally passive: it owns buffers and wakeup callbacks
// but never blocks. Simulated processes block *in their kernel*, which
// registers a waiter callback here; the host-side test harness reads and
// writes directly between engine slices or from clock callbacks.
package vnet

import (
	"errors"
	"fmt"
)

// Port addresses a listener on the board, like a TCP port.
type Port uint16

// Network errors.
var (
	ErrPortInUse   = errors.New("vnet: port already in use")
	ErrConnClosed  = errors.New("vnet: connection closed")
	ErrNoListener  = errors.New("vnet: connection refused (no listener)")
	ErrWouldBlock  = errors.New("vnet: operation would block")
	ErrBacklogFull = errors.New("vnet: listener backlog full")
)

// backlogMax bounds pending un-accepted connections per listener.
const backlogMax = 16

// halfStream is one direction of a connection.
type halfStream struct {
	buf    []byte
	closed bool
	// onReadable fires (once) when data or EOF arrives while a reader waits.
	onReadable func()
}

func (h *halfStream) write(p []byte) error {
	if h.closed {
		return ErrConnClosed
	}
	h.buf = append(h.buf, p...)
	h.wake()
	return nil
}

func (h *halfStream) wake() {
	if h.onReadable != nil {
		fn := h.onReadable
		h.onReadable = nil
		fn()
	}
}

// read drains up to max bytes; returns ErrWouldBlock when empty and open,
// and (nil, ErrConnClosed) when empty and closed.
func (h *halfStream) read(max int) ([]byte, error) {
	if len(h.buf) == 0 {
		if h.closed {
			return nil, ErrConnClosed
		}
		return nil, ErrWouldBlock
	}
	n := len(h.buf)
	if max > 0 && max < n {
		n = max
	}
	if n == len(h.buf) {
		// Full drain: hand the buffer itself to the reader instead of
		// allocating a copy. The stream never touches it again (the next
		// write appends to nil, growing a fresh array), so the reader owns
		// the bytes outright.
		out := h.buf
		h.buf = nil
		return out, nil
	}
	out := make([]byte, n)
	copy(out, h.buf[:n])
	h.buf = h.buf[n:]
	return out, nil
}

// Conn is a bidirectional in-memory stream. The two ends are symmetric; each
// end reads from its inbound halfStream and writes to the peer's.
type Conn struct {
	id       uint64
	toBoard  halfStream // host writes, board reads
	toHost   halfStream // board writes, host reads
	refused  bool
	accepted bool
}

// ID returns a stable identifier for tracing.
func (c *Conn) ID() uint64 { return c.id }

// Listener is a bound port with a backlog of pending connections.
type Listener struct {
	port    Port
	backlog []*Conn
	// onConn fires (once) when a connection arrives while an acceptor waits.
	onConn func()
	closed bool
}

// Port returns the bound port.
func (l *Listener) Port() Port { return l.port }

// Stack is the per-board network. All methods must run on the engine
// goroutine (kernel traps, clock callbacks, or between Run slices).
type Stack struct {
	listeners map[Port]*Listener
	nextConn  uint64
}

// NewStack returns an empty network stack.
func NewStack() *Stack {
	return &Stack{listeners: make(map[Port]*Listener), nextConn: 1}
}

// Listen binds a port. Kernels call this on behalf of a simulated process.
func (s *Stack) Listen(port Port) (*Listener, error) {
	if _, used := s.listeners[port]; used {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	l := &Listener{port: port}
	s.listeners[port] = l
	return l, nil
}

// CloseListener unbinds a port and refuses its backlog.
func (s *Stack) CloseListener(l *Listener) {
	if l.closed {
		return
	}
	l.closed = true
	delete(s.listeners, l.port)
	for _, c := range l.backlog {
		c.refused = true
		c.toHost.closed = true
		c.toHost.wake()
	}
	l.backlog = nil
}

// Dial connects the host side (an administrator's browser, an attacker's
// tool) to a board port. The returned HostConn is used directly by the test
// harness; the board side surfaces through Listener accept.
func (s *Stack) Dial(port Port) (*HostConn, error) {
	l, ok := s.listeners[port]
	if !ok || l.closed {
		return nil, fmt.Errorf("%w: port %d", ErrNoListener, port)
	}
	if len(l.backlog) >= backlogMax {
		return nil, fmt.Errorf("%w: port %d", ErrBacklogFull, port)
	}
	c := &Conn{id: s.nextConn}
	s.nextConn++
	l.backlog = append(l.backlog, c)
	if l.onConn != nil {
		fn := l.onConn
		l.onConn = nil
		fn()
	}
	return &HostConn{conn: c}, nil
}

// Accept pops a pending connection, or returns ErrWouldBlock. Kernels that
// need to block a process register a waiter with WaitConn first.
func (s *Stack) Accept(l *Listener) (*Conn, error) {
	if l.closed {
		return nil, ErrConnClosed
	}
	if len(l.backlog) == 0 {
		return nil, ErrWouldBlock
	}
	c := l.backlog[0]
	l.backlog = l.backlog[1:]
	c.accepted = true
	return c, nil
}

// WaitConn registers fn to fire when the listener next has a pending
// connection. Registering a new waiter replaces any previous one (last
// wins), so a kernel can abandon a dead process's waiter by simply
// registering the next.
func (s *Stack) WaitConn(l *Listener, fn func()) {
	if len(l.backlog) > 0 {
		l.onConn = nil
		fn()
		return
	}
	l.onConn = fn
}

// BoardRead reads up to max bytes from the board side of c.
func (s *Stack) BoardRead(c *Conn, max int) ([]byte, error) {
	return c.toBoard.read(max)
}

// BoardWrite writes bytes from the board side of c toward the host.
func (s *Stack) BoardWrite(c *Conn, p []byte) error {
	return c.toHost.write(p)
}

// BoardClose closes the board side; the host observes EOF.
func (s *Stack) BoardClose(c *Conn) {
	c.toHost.closed = true
	c.toHost.wake()
	c.toBoard.closed = true
	c.toBoard.wake()
}

// WaitReadable registers fn to fire when the board side of c next has data
// or EOF. Registering a new waiter replaces any previous one (last wins).
func (s *Stack) WaitReadable(c *Conn, fn func()) {
	if len(c.toBoard.buf) > 0 || c.toBoard.closed {
		c.toBoard.onReadable = nil
		fn()
		return
	}
	c.toBoard.onReadable = fn
}

// HostConn is the harness's handle on one connection.
type HostConn struct {
	conn *Conn
}

// Write sends bytes toward the board, waking any blocked reader.
func (h *HostConn) Write(p []byte) error {
	if h.conn.refused {
		return ErrNoListener
	}
	return h.conn.toBoard.write(p)
}

// ReadAll drains everything the board has written so far. It never blocks;
// it returns nil when nothing is pending.
func (h *HostConn) ReadAll() []byte {
	out, err := h.conn.toHost.read(0)
	if err != nil {
		return nil
	}
	return out
}

// Closed reports whether the board side has closed the connection.
func (h *HostConn) Closed() bool {
	return h.conn.toHost.closed && len(h.conn.toHost.buf) == 0
}

// Close closes the host side; the board observes EOF on read.
func (h *HostConn) Close() {
	h.conn.toBoard.closed = true
	h.conn.toBoard.wake()
}
