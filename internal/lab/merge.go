package lab

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/obs"
)

// VerdictCount is one row of the campaign's verdict tally.
type VerdictCount struct {
	Verdict string `json:"verdict"`
	Count   int    `json:"count"`
}

// Aggregate is the deterministic cross-shard merge: every collection is
// keyed and sorted, never ordered by completion.
type Aggregate struct {
	Cases int `json:"cases"`
	// Verdicts tallies E1 matrix cells across all shards, sorted by verdict.
	Verdicts []VerdictCount `json:"verdicts"`
	// Attempts/Successes/Denials sum the attackers' operation tallies.
	Attempts  int `json:"attempts"`
	Successes int `json:"successes"`
	Denials   int `json:"denials"`
	// Counters merges every board's metric counters by name.
	Counters []obs.CounterSnap `json:"counters"`
	// EventTotals merges every board's security-event totals by
	// (kind, mechanism, denied).
	EventTotals []obs.EventTotal `json:"event_totals"`
	// Mechanisms is the union of mediation mechanisms that denied at least
	// one operation anywhere in the campaign.
	Mechanisms []obs.Mechanism `json:"mechanisms"`
	// IPCUsages merges every board's IPC usage log by (src, dst, label).
	IPCUsages []machine.IPCUsageCount `json:"ipc_usages"`
	// Fault-campaign tallies (E10), summed across shards that armed a fault
	// plan; all omitted when the sweep injected nothing.
	FaultsInjected    int `json:"faults_injected,omitempty"`
	FaultsRecovered   int `json:"faults_recovered,omitempty"`
	FaultsUnrecovered int `json:"faults_unrecovered,omitempty"`
	// Restarts counts processes reincarnated by recovery machinery anywhere
	// in the campaign.
	Restarts int `json:"restarts,omitempty"`
	// MTTR aggregates (nanoseconds) over every recovered fault.
	MTTRCount int64 `json:"mttr_count,omitempty"`
	MTTRSumNs int64 `json:"mttr_sum_ns,omitempty"`
	MTTRMaxNs int64 `json:"mttr_max_ns,omitempty"`
	// ViolationsDuringFault counts safety violations that fell inside fault
	// effect windows.
	ViolationsDuringFault int `json:"violations_during_fault,omitempty"`
	// Policy-monitor tallies (E12), summed across shards that attached the
	// online monitor; all omitted when the monitor axis was off everywhere.
	MonitorObserved int64 `json:"monitor_observed,omitempty"`
	PolicyDrifts    int64 `json:"policy_drifts,omitempty"`
	OriginDrifts    int64 `json:"origin_drifts,omitempty"`
	Demotions       int64 `json:"demotions,omitempty"`
}

// aggregate folds shard results, which arrive already in shard order.
func aggregate(cases []ShardResult) Aggregate {
	agg := Aggregate{Cases: len(cases)}
	verdicts := make(map[string]int)
	counterSets := make([][]obs.CounterSnap, 0, len(cases))
	eventSets := make([][]obs.EventTotal, 0, len(cases))
	mechSets := make([][]obs.Mechanism, 0, len(cases))
	ipcSets := make([][]machine.IPCUsageCount, 0, len(cases))
	for _, sr := range cases {
		r := sr.Report
		verdicts[sr.Verdict]++
		agg.Attempts += r.Attempts
		agg.Successes += r.Successes
		agg.Denials += r.Denials
		if r.Obs != nil {
			counterSets = append(counterSets, r.Obs.Counters)
			eventSets = append(eventSets, r.Obs.EventTotals)
		}
		mechSets = append(mechSets, r.Mechanisms)
		ipcSets = append(ipcSets, r.IPCUsages)
		agg.Restarts += r.Restarts
		agg.ViolationsDuringFault += r.ViolationsDuringFault
		if ms := r.MonitorStats; ms != nil {
			agg.MonitorObserved += ms.Observed
			agg.PolicyDrifts += ms.PolicyDrifts
			agg.OriginDrifts += ms.OriginDrifts
			agg.Demotions += ms.Demotions
		}
		if fr := r.FaultReport; fr != nil {
			agg.FaultsInjected += fr.Injected
			agg.FaultsRecovered += fr.Recovered
			agg.FaultsUnrecovered += fr.Unrecovered
			agg.MTTRCount += fr.MTTRCount
			agg.MTTRSumNs += fr.MTTRSumNs
			if fr.MTTRMaxNs > agg.MTTRMaxNs {
				agg.MTTRMaxNs = fr.MTTRMaxNs
			}
		}
	}
	for v, n := range verdicts {
		agg.Verdicts = append(agg.Verdicts, VerdictCount{Verdict: v, Count: n})
	}
	sort.Slice(agg.Verdicts, func(i, j int) bool { return agg.Verdicts[i].Verdict < agg.Verdicts[j].Verdict })
	agg.Counters = obs.MergeCounters(counterSets...)
	agg.EventTotals = obs.MergeEventTotals(eventSets...)
	agg.Mechanisms = obs.MergeMechanisms(mechSets...)
	agg.IPCUsages = machine.MergeUsages(ipcSets...)
	return agg
}

// JSON renders the campaign as indented JSON with a trailing newline —
// byte-identical across worker counts (the determinism contract).
func (r *Result) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Text renders the campaign as a human-readable summary: the per-shard
// verdict table followed by the merged tallies.
func (r *Result) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== campaign: %d cases, %d workers, %s ==\n", len(r.Cases), r.Workers, r.Elapsed.Round(1_000_000))
	for _, sr := range r.Cases {
		note := ""
		if blocked := sr.Report.BlockedBy(); blocked != "" {
			note = " [" + blocked + "]"
		}
		fmt.Fprintf(&b, "  %-58s %s%s\n", sr.Case, sr.Verdict, note)
	}
	fmt.Fprintf(&b, "verdicts:\n")
	for _, v := range r.Merged.Verdicts {
		fmt.Fprintf(&b, "  %-24s %d\n", v.Verdict, v.Count)
	}
	fmt.Fprintf(&b, "operations: %d attempted, %d accepted, %d denied\n",
		r.Merged.Attempts, r.Merged.Successes, r.Merged.Denials)
	if r.Merged.FaultsInjected > 0 {
		fmt.Fprintf(&b, "faults: %d injected, %d recovered, %d unrecovered, %d restarts\n",
			r.Merged.FaultsInjected, r.Merged.FaultsRecovered, r.Merged.FaultsUnrecovered, r.Merged.Restarts)
		if r.Merged.MTTRCount > 0 {
			mean := time.Duration(r.Merged.MTTRSumNs / r.Merged.MTTRCount)
			fmt.Fprintf(&b, "MTTR: mean %s, max %s; violations during fault windows: %d\n",
				mean, time.Duration(r.Merged.MTTRMaxNs), r.Merged.ViolationsDuringFault)
		} else {
			fmt.Fprintf(&b, "MTTR: none recovered; violations during fault windows: %d\n",
				r.Merged.ViolationsDuringFault)
		}
	}
	if r.Merged.MonitorObserved > 0 {
		fmt.Fprintf(&b, "policy monitor: %d deliveries observed, %d policy drifts, %d origin drifts, %d demotions\n",
			r.Merged.MonitorObserved, r.Merged.PolicyDrifts, r.Merged.OriginDrifts, r.Merged.Demotions)
	}
	if len(r.Merged.Mechanisms) > 0 {
		parts := make([]string, len(r.Merged.Mechanisms))
		for i, m := range r.Merged.Mechanisms {
			parts[i] = string(m)
		}
		fmt.Fprintf(&b, "denying mechanisms: %s\n", strings.Join(parts, ", "))
	}
	fmt.Fprintf(&b, "merged security-event totals (%d kinds):\n", len(r.Merged.EventTotals))
	for _, t := range r.Merged.EventTotals {
		verdict := "allowed"
		if t.Denied {
			verdict = "DENIED"
		}
		fmt.Fprintf(&b, "  %-18s by %-14s %-8s %d\n", t.Kind, t.Mechanism, verdict, t.Count)
	}
	fmt.Fprintf(&b, "merged IPC usage rows: %d\n", len(r.Merged.IPCUsages))
	return b.String()
}
