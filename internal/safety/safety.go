// Package safety implements the experiment harness's physical-world safety
// monitors. The paper's bottom line is about "safety properties in the
// physical world": an attack matters only if the room the BAS controls is
// actually jeopardized. Monitors sample ground truth from the plant (not the
// controller's possibly-subverted view) and record violations.
//
// Monitored properties, matching the scenario narrative:
//
//   - TempInRange: the room temperature stays within tolerance of the
//     intended setpoint (after an initial settling grace period);
//   - AlarmLiveness: whenever the room has been continuously out of range
//     longer than the alarm delay plus a grace interval, the physical alarm
//     actuator must be on — a suppressed or spoofed-away alarm violates it;
//   - AlarmHonesty: the alarm must not be on while the room is healthy
//     (an attacker blaring the alarm is also a physical-world violation).
package safety

import (
	"fmt"
	"math"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/plant"
)

// Property identifies one monitored safety property.
type Property string

// Monitored properties.
const (
	PropTempInRange   Property = "temp-in-range"
	PropAlarmLiveness Property = "alarm-liveness"
	PropAlarmHonesty  Property = "alarm-honesty"
)

// Violation records one observed breach.
type Violation struct {
	At       machine.Time
	Property Property
	Detail   string
}

// String renders "[12m30s] temp-in-range: ...".
func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s: %s", v.At, v.Property, v.Detail)
}

// Config parameterises a monitor.
type Config struct {
	// Setpoint is the intended temperature the physical room must track.
	// The monitor deliberately holds its own copy: a spoofed controller
	// believes something else, which is exactly the deviation to catch.
	Setpoint float64
	// Tolerance is the acceptable |T - setpoint| band (the scenario's alarm
	// tolerance).
	Tolerance float64
	// AlarmDelay is the controller's alarm delay; liveness is checked with
	// slack on top of it.
	AlarmDelay time.Duration
	// SettleTime exempts the initial heat-up from range checking.
	SettleTime time.Duration
	// Period is the sampling interval; zero means 5 seconds.
	Period time.Duration
}

// DefaultConfig matches the default scenario.
func DefaultConfig() Config {
	return Config{
		Setpoint:   22,
		Tolerance:  2.0,
		AlarmDelay: 5 * time.Minute,
		SettleTime: 20 * time.Minute,
		Period:     5 * time.Second,
	}
}

// Monitor samples a room on the board clock and records violations.
type Monitor struct {
	cfg   Config
	clock *machine.Clock
	room  *plant.Room

	start      machine.Time
	outSince   machine.Time
	outOfRange bool
	inSince    machine.Time

	violations []Violation
	lastRecord map[Property]machine.Time
	samples    int64
	stopped    bool
}

// Attach starts monitoring room on the board clock. Sampling is driven by
// clock callbacks, so it perturbs neither scheduling nor physics.
func Attach(clock *machine.Clock, room *plant.Room, cfg Config) *Monitor {
	if cfg.Period == 0 {
		cfg.Period = 5 * time.Second
	}
	m := &Monitor{
		cfg:        cfg,
		clock:      clock,
		room:       room,
		start:      clock.Now(),
		lastRecord: make(map[Property]machine.Time),
	}
	m.schedule()
	return m
}

// SetSetpoint informs the monitor of a legitimate setpoint change (e.g. the
// administrator moved it through the web interface).
func (m *Monitor) SetSetpoint(v float64) { m.cfg.Setpoint = v }

// Stop ends sampling.
func (m *Monitor) Stop() { m.stopped = true }

// Violations returns all recorded breaches, oldest first.
func (m *Monitor) Violations() []Violation {
	out := make([]Violation, len(m.violations))
	copy(out, m.violations)
	return out
}

// ViolationsOf filters by property.
func (m *Monitor) ViolationsOf(p Property) []Violation {
	var out []Violation
	for _, v := range m.violations {
		if v.Property == p {
			out = append(out, v)
		}
	}
	return out
}

// Healthy reports whether no violations were observed.
func (m *Monitor) Healthy() bool { return len(m.violations) == 0 }

// Samples reports how many observations the monitor has taken.
func (m *Monitor) Samples() int64 { return m.samples }

func (m *Monitor) schedule() {
	m.clock.After(m.cfg.Period, func() {
		if m.stopped {
			return
		}
		m.observe()
		m.schedule()
	})
}

// observe takes one ground-truth sample and evaluates the properties.
func (m *Monitor) observe() {
	now := m.clock.Now()
	m.samples++
	temp := m.room.Temperature()
	deviation := math.Abs(temp - m.cfg.Setpoint)
	inRange := deviation <= m.cfg.Tolerance

	settled := now.Sub(m.start) > m.cfg.SettleTime
	if !inRange {
		if !m.outOfRange {
			m.outOfRange = true
			m.outSince = now
		}
	} else {
		if m.outOfRange || m.inSince == 0 {
			m.inSince = now
		}
		m.outOfRange = false
	}

	if settled && !inRange {
		m.record(now, PropTempInRange,
			fmt.Sprintf("room at %.2f°C, want %.2f±%.2f", temp, m.cfg.Setpoint, m.cfg.Tolerance))
	}
	// Liveness: continuously out of range beyond delay (+2 sample periods
	// of slack) requires the physical alarm.
	slack := 2 * m.cfg.Period
	if m.outOfRange && now.Sub(m.outSince) > m.cfg.AlarmDelay+slack && !m.room.AlarmOn() {
		m.record(now, PropAlarmLiveness,
			fmt.Sprintf("out of range since %s but alarm is off", m.outSince))
	}
	// Honesty: alarm blaring while the room is fine (with the settling
	// exemption, since heat-up legitimately trips it in cold starts only
	// after the delay — during settling we stay silent either way). The
	// room must have been back in range for a couple of sample periods:
	// the controller clears its alarm one sensor sample after recovery,
	// and that lag is honest behavior, not a stuck alarm.
	if settled && inRange && now.Sub(m.inSince) > slack && m.room.AlarmOn() {
		m.record(now, PropAlarmHonesty,
			fmt.Sprintf("alarm on while room healthy at %.2f°C", temp))
	}
}

// record appends a violation, coalescing repeats of the same property within
// one minute so a sustained breach reads as a few entries, not thousands.
func (m *Monitor) record(now machine.Time, p Property, detail string) {
	if last, seen := m.lastRecord[p]; seen && now.Sub(last) < time.Minute {
		return
	}
	m.lastRecord[p] = now
	m.violations = append(m.violations, Violation{At: now, Property: p, Detail: detail})
}
