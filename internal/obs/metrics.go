package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Registry is a deterministic metrics registry. Series are created lazily
// by name; a name may carry a Prometheus-style label suffix, e.g.
// `linux_mq_depth{queue="/sensor-data"}`, which the exposition formats
// pass through verbatim. Lookups return the same series object every
// time, so hot paths should resolve their series once and keep the
// pointer: increments are then a single integer add.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing series. The nil Counter discards
// writes, so uninstrumented components can share kernel code paths.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v += n
	}
}

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a series that can move both ways (queue depths, live process
// counts). The nil Gauge discards writes.
type Gauge struct{ v int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v = v
	}
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v += n
	}
}

// Value reports the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram accumulates virtual-time durations into fixed buckets. Bucket
// bounds are inclusive upper edges; observations above the last bound land
// in the implicit +Inf bucket. The nil Histogram discards writes.
type Histogram struct {
	bounds []time.Duration
	counts []int64 // len(bounds)+1; last is +Inf
	sum    int64   // nanoseconds
	total  int64
}

// DefaultLatencyBuckets spans the board's IPC latency range: from a single
// trap cost (500ns) up to a full scheduling quantum-scale stall.
func DefaultLatencyBuckets() []time.Duration {
	return []time.Duration{
		time.Microsecond,
		2 * time.Microsecond,
		5 * time.Microsecond,
		10 * time.Microsecond,
		20 * time.Microsecond,
		50 * time.Microsecond,
		100 * time.Microsecond,
		time.Millisecond,
		10 * time.Millisecond,
		100 * time.Millisecond,
		time.Second,
	}
}

// Observe books one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.sum += int64(d)
	h.total++
	for i, b := range h.bounds {
		if d <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear interpolation
// within the bucket that holds the target rank — the same estimator
// Prometheus's histogram_quantile applies, so the surfaced p50/p95/p99 read
// like the dashboards operators already know. The estimate is exact at
// bucket edges and linear inside; observations in the +Inf bucket clamp to
// the last finite bound (the histogram records no upper edge for them).
// Deterministic: a pure function of the recorded counts. Returns 0 on an
// empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil || h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the (1-based, fractional) position of the target observation.
	rank := q * float64(h.total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: no upper edge to interpolate toward.
			return h.bounds[len(h.bounds)-1]
		}
		lower := time.Duration(0)
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		return lower + time.Duration(frac*float64(upper-lower))
	}
	return h.bounds[len(h.bounds)-1]
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Sum reports the accumulated duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum)
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (nil bounds mean
// DefaultLatencyBuckets). Bounds must be sorted ascending; later lookups
// ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBuckets()
		}
		own := make([]time.Duration, len(bounds))
		copy(own, bounds)
		for i := 1; i < len(own); i++ {
			if own[i] <= own[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
			}
		}
		h = &Histogram{bounds: own, counts: make([]int64, len(own)+1)}
		r.hists[name] = h
	}
	return h
}

// CounterSnap is one exported counter row.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one exported gauge row.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnap is one exported histogram bucket: the inclusive upper bound in
// nanoseconds (0 marks +Inf) and the count of observations that landed in
// the bucket (not cumulative).
type BucketSnap struct {
	UpperNanos int64 `json:"upper_ns"`
	Count      int64 `json:"count"`
}

// HistogramSnap is one exported histogram. P50/P95/P99 are the
// bucket-interpolated quantile estimates (see Histogram.Quantile); zero on an
// empty histogram, and deterministic like every other exported field.
type HistogramSnap struct {
	Name     string       `json:"name"`
	Count    int64        `json:"count"`
	SumNanos int64        `json:"sum_ns"`
	P50Ns    int64        `json:"p50_ns"`
	P95Ns    int64        `json:"p95_ns"`
	P99Ns    int64        `json:"p99_ns"`
	Buckets  []BucketSnap `json:"buckets"`
}

// Counters exports all counters sorted by name.
func (r *Registry) Counters() []CounterSnap {
	out := make([]CounterSnap, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, CounterSnap{Name: name, Value: c.v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Gauges exports all gauges sorted by name.
func (r *Registry) Gauges() []GaugeSnap {
	out := make([]GaugeSnap, 0, len(r.gauges))
	for name, g := range r.gauges {
		out = append(out, GaugeSnap{Name: name, Value: g.v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Histograms exports all histograms sorted by name.
func (r *Registry) Histograms() []HistogramSnap {
	out := make([]HistogramSnap, 0, len(r.hists))
	for name, h := range r.hists {
		snap := HistogramSnap{
			Name:     name,
			Count:    h.total,
			SumNanos: h.sum,
			P50Ns:    int64(h.Quantile(0.50)),
			P95Ns:    int64(h.Quantile(0.95)),
			P99Ns:    int64(h.Quantile(0.99)),
		}
		for i, b := range h.bounds {
			snap.Buckets = append(snap.Buckets, BucketSnap{UpperNanos: int64(b), Count: h.counts[i]})
		}
		snap.Buckets = append(snap.Buckets, BucketSnap{UpperNanos: 0, Count: h.counts[len(h.bounds)]})
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PromText renders the registry in the Prometheus text exposition format
// (version 0.0.4). Histogram buckets are cumulative with an explicit +Inf
// bucket, matching the format's histogram convention. The output is
// deterministic: series are sorted by name.
func (r *Registry) PromText() string {
	var b strings.Builder
	lastType := ""
	typeLine := func(base, kind string) {
		// One TYPE line per metric name: labeled series of the same base
		// are adjacent after the sort and share it.
		if base != lastType {
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
			lastType = base
		}
	}
	for _, c := range r.Counters() {
		typeLine(promBase(c.Name), "counter")
		fmt.Fprintf(&b, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range r.Gauges() {
		typeLine(promBase(g.Name), "gauge")
		fmt.Fprintf(&b, "%s %d\n", g.Name, g.Value)
	}
	for _, h := range r.Histograms() {
		base := promBase(h.Name)
		typeLine(base, "histogram")
		cum := int64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			if bk.UpperNanos == 0 {
				fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", base, cum)
			} else {
				fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", base, bk.UpperNanos, cum)
			}
		}
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", base, h.SumNanos, base, h.Count)
	}
	return b.String()
}

// promBase strips a label suffix from a series name: the exposition
// format's TYPE line wants the bare metric name.
func promBase(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}
