package machine

import "sort"

// IPCUsage identifies one kind of observed IPC delivery: a source and
// destination node (named in whatever namespace the recording kernel uses —
// ACM subject names on MINIX, thread/endpoint names on seL4, process/queue
// names on Linux) plus a label classifying the operation ("mt4", "send",
// "recv").
type IPCUsage struct {
	Src   string
	Dst   string
	Label string
}

// IPCUsageCount is one aggregated usage row.
type IPCUsageCount struct {
	IPCUsage
	Count int64
}

// IPCLog aggregates the board's observed IPC traffic. Kernels record every
// permitted delivery; the static policy analyzer (internal/polcheck) diffs
// the aggregate against the static grants to flag granted-but-never-used
// rights. Counts are bounded by the number of distinct (src, dst, label)
// triples, not by traffic volume, so the log is safe to leave enabled for
// long runs.
//
// Like Trace, the log is unsynchronised: trap handlers run serialized on the
// engine's scheduling discipline.
type IPCLog struct {
	counts   map[IPCUsage]int64
	observer func(src, dst, label string)
}

// NewIPCLog returns an empty usage log.
func NewIPCLog() *IPCLog {
	return &IPCLog{counts: make(map[IPCUsage]int64)}
}

// SetObserver installs fn to see every Record call synchronously, in trap
// order — the online policy monitor's subscription point. One observer is
// supported; nil removes it. The observer runs on the recording kernel's
// trap path, so it must not allocate on its hot path and must not trap.
func (l *IPCLog) SetObserver(fn func(src, dst, label string)) {
	l.observer = fn
}

// Record books one observed delivery.
func (l *IPCLog) Record(src, dst, label string) {
	l.counts[IPCUsage{Src: src, Dst: dst, Label: label}]++
	if l.observer != nil {
		l.observer(src, dst, label)
	}
}

// Count reports how many deliveries matched (src, dst, label).
func (l *IPCLog) Count(src, dst, label string) int64 {
	return l.counts[IPCUsage{Src: src, Dst: dst, Label: label}]
}

// Used reports whether (src, dst, label) was observed at least once.
func (l *IPCLog) Used(src, dst, label string) bool {
	return l.Count(src, dst, label) > 0
}

// Len reports the number of distinct usage rows.
func (l *IPCLog) Len() int { return len(l.counts) }

// Merge folds other's counts into l. other is unchanged; a nil other is a
// no-op. polcheck's -audit uses Merge with Reset to diff usage across
// multiple run slices of the same board.
func (l *IPCLog) Merge(other *IPCLog) {
	if other == nil {
		return
	}
	for u, n := range other.counts {
		l.counts[u] += n
	}
}

// Reset discards all recorded usage, so the next run slice starts from an
// empty log.
func (l *IPCLog) Reset() {
	clear(l.counts)
}

// Clone returns an independent copy of the log.
func (l *IPCLog) Clone() *IPCLog {
	out := NewIPCLog()
	out.Merge(l)
	return out
}

// MergeUsages sums usage rows from many boards by (src, dst, label). The
// fleet runner folds per-shard IPC logs with it; the result is sorted like
// Usages, a deterministic function of the inputs alone.
func MergeUsages(sets ...[]IPCUsageCount) []IPCUsageCount {
	merged := NewIPCLog()
	for _, set := range sets {
		for _, u := range set {
			merged.counts[u.IPCUsage] += u.Count
		}
	}
	return merged.Usages()
}

// Usages returns the aggregated rows sorted by (src, dst, label) for stable
// reports.
func (l *IPCLog) Usages() []IPCUsageCount {
	out := make([]IPCUsageCount, 0, len(l.counts))
	for u, n := range l.counts {
		out = append(out, IPCUsageCount{IPCUsage: u, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Label < b.Label
	})
	return out
}
