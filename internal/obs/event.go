package obs

import "sort"

// Mechanism names the mediation layer that produced a security event —
// the platform-neutral vocabulary the paper's outcome table compares.
type Mechanism string

const (
	// MechACM is the MINIX access control matrix (IPC permission bitmasks).
	MechACM Mechanism = "acm"
	// MechSyscallMask is the MINIX PM's per-process system-call mask and
	// fork/kill quota ledger.
	MechSyscallMask Mechanism = "syscall-mask"
	// MechCapability is seL4 capability possession and rights checking.
	MechCapability Mechanism = "capability"
	// MechDAC is Linux discretionary access control (uid/gid/mode).
	MechDAC Mechanism = "dac"
	// MechKernel marks events enforced by generic kernel limits (process
	// table exhaustion, rlimits) rather than a security policy.
	MechKernel Mechanism = "kernel"
	// MechRecovery marks events produced by a recovery service (MINIX RS,
	// the seL4 monitor component, the Linux supervisor) rather than a
	// mediation decision.
	MechRecovery Mechanism = "recovery"
	// MechFaultInject marks events produced by the fault-injection campaign
	// layer itself, so chaos activity is distinguishable from real denials.
	MechFaultInject Mechanism = "fault-inject"
	// MechSecureProxy marks events produced by the BACnet secure proxy
	// (Fig. 1's bump-in-the-wire): frames dropped for failing the MAC or the
	// freshness check.
	MechSecureProxy Mechanism = "secure-proxy"
	// MechPolicyMonitor marks events produced by the online policy monitor
	// (internal/polcheck/monitor): observed traffic diffed against the
	// certified static access graph, not a kernel mediation decision.
	MechPolicyMonitor Mechanism = "policy-monitor"
	// MechResilience marks events produced by the building resilience layer:
	// supervision-loss detection in room gateways, head-end failover, and
	// degraded-mode transitions — availability machinery, not mediation.
	MechResilience Mechanism = "resilience"
	// MechSession is the tenant API tier's session layer: token lookup and
	// revocation. A denial here means the caller never authenticated —
	// stolen-token replay after revocation dies at this layer.
	MechSession Mechanism = "session-auth"
	// MechRBAC is the tenant API tier's role-based authorisation check,
	// backed by the certified tenant access graph: the role's edge to the
	// gateway must carry the requested route label.
	MechRBAC Mechanism = "rbac"
	// MechRateLimit is the tenant API tier's per-principal token bucket.
	MechRateLimit Mechanism = "rate-limit"
	// MechBackpressure is the tenant API tier's connection/capacity guard:
	// requests shed with 503 when the per-tick admission budget is spent.
	MechBackpressure Mechanism = "backpressure"
)

// EventKind classifies a security event.
type EventKind string

const (
	// EventIPCDenied is a refused message delivery (ACM or DAC refused a
	// send/receive/open).
	EventIPCDenied EventKind = "ipc-denied"
	// EventCapFault is an seL4 capability fault: invalid slot or missing
	// rights on an invocation.
	EventCapFault EventKind = "cap-fault"
	// EventKillDenied is a refused kill/suspend attempt.
	EventKillDenied EventKind = "kill-denied"
	// EventKill is a kill/suspend attempt that the platform allowed — on a
	// compromised web process this is the event that shows DAC failing.
	EventKill EventKind = "kill"
	// EventForkDenied is a refused process creation (quota or table limit).
	EventForkDenied EventKind = "fork-denied"
	// EventSyscallDenied is a refused non-IPC system call (PM syscall-mask
	// or privilege checks outside kill/fork).
	EventSyscallDenied EventKind = "syscall-denied"
	// EventRestart is a successful reincarnation of a crashed process by a
	// recovery service.
	EventRestart EventKind = "restart"
	// EventRestartGiveUp is a recovery service abandoning an image after
	// exhausting its restart budget.
	EventRestartGiveUp EventKind = "restart-give-up"
	// EventFaultInjected is a fault-campaign fault firing at its scheduled
	// virtual instant.
	EventFaultInjected EventKind = "fault-injected"
	// EventFrameRejected is a field-bus frame dropped by the secure proxy:
	// bad MAC (spoofing) or stale nonce (replay).
	EventFrameRejected EventKind = "frame-rejected"
	// EventPolicyDrift is an observed IPC delivery (or bus dial) outside the
	// certified static access graph — the running board has drifted from the
	// policy it was verified against at deploy time.
	EventPolicyDrift EventKind = "policy-drift"
	// EventOriginDrift is an in-graph delivery whose governing subject's
	// *current* origin label no longer dominates the edge's required origin:
	// traffic that was certified for boot-image provenance issued by a
	// subject demoted to a lower origin after a compromise verdict.
	EventOriginDrift EventKind = "origin-drift"
	// EventOriginDemoted records the monitor shrinking a subject's origin
	// label (e.g. web-origin -> untrusted after a compromise verdict).
	EventOriginDemoted EventKind = "origin-demoted"
	// EventSupervisionLost is a room gateway entering degraded mode: no
	// verified supervisory traffic for the staleness window, so the room
	// falls back to its last-committed setpoint and local failsafe rules.
	EventSupervisionLost EventKind = "supervision-lost"
	// EventSupervisionRestored is a degraded room re-converging: verified
	// supervisory traffic reached the gateway again.
	EventSupervisionRestored EventKind = "supervision-restored"
	// EventHeadEndFailover is the standby head-end taking over after the
	// primary went silent (stamped on every room's board at takeover).
	EventHeadEndFailover EventKind = "headend-failover"
	// EventRoomQuarantined is the head-end refusing to poll a room whose
	// frames repeatedly failed secure-proxy verification.
	EventRoomQuarantined EventKind = "room-quarantined"
	// EventAuthDenied is a tenant API request refused at the session layer:
	// unknown, malformed, or revoked token (HTTP 401).
	EventAuthDenied EventKind = "auth-denied"
	// EventAuthzDenied is an authenticated tenant API request refused by
	// role-based authorisation: the principal's role has no certified edge
	// for the route, or an occupant reached outside their own room (403).
	EventAuthzDenied EventKind = "authz-denied"
	// EventRateLimited is a tenant API request shed by the per-principal
	// token bucket (HTTP 429).
	EventRateLimited EventKind = "rate-limited"
	// EventOverload is a tenant API request shed by connection backpressure
	// before any per-principal work (HTTP 503).
	EventOverload EventKind = "overload"
)

// SecurityEvent is one mediation decision in the platform-neutral schema:
// which board, which mechanism, who asked, who was the target, and whether
// the platform refused. Denied=false events record mediated actions that
// were *allowed* — the interesting ones for the paper are allowed kills.
type SecurityEvent struct {
	At        Time      `json:"at_ns"`
	Platform  string    `json:"platform"`
	Kind      EventKind `json:"kind"`
	Mechanism Mechanism `json:"mechanism"`
	Denied    bool      `json:"denied"`
	Src       string    `json:"src"`
	Dst       string    `json:"dst,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

// EventLog is the unified security-event stream: a bounded ring of recent
// events plus lifetime totals per (kind, mechanism, denied) that survive
// ring eviction. Subscribers observe every event synchronously at emit
// time, before it can be dropped. The nil EventLog discards everything.
type EventLog struct {
	now      func() Time
	platform string
	cap      int
	events   []SecurityEvent
	head     int
	total    int64
	dropped  int64
	totals   map[eventKey]int64
	subs     []func(SecurityEvent)
}

type eventKey struct {
	Kind      EventKind
	Mechanism Mechanism
	Denied    bool
}

// NewEventLog creates an event stream; capacity <= 0 means 16384 retained
// events.
func NewEventLog(now func() Time, capacity int) *EventLog {
	if now == nil {
		now = func() Time { return 0 }
	}
	if capacity <= 0 {
		capacity = 16384
	}
	return &EventLog{now: now, cap: capacity, totals: make(map[eventKey]int64)}
}

// SetPlatform sets the default platform stamp applied to events emitted
// without one. Each kernel personality calls this once at construction.
func (l *EventLog) SetPlatform(p string) {
	if l != nil {
		l.platform = p
	}
}

// Emit stamps e with the current virtual instant (and the default platform,
// if e carries none), stores it, and notifies subscribers in registration
// order.
func (l *EventLog) Emit(e SecurityEvent) {
	if l == nil {
		return
	}
	e.At = l.now()
	if e.Platform == "" {
		e.Platform = l.platform
	}
	l.total++
	l.totals[eventKey{Kind: e.Kind, Mechanism: e.Mechanism, Denied: e.Denied}]++
	if len(l.events) < l.cap {
		l.events = append(l.events, e)
	} else {
		l.events[l.head] = e
		l.head = (l.head + 1) % l.cap
		l.dropped++
	}
	for _, fn := range l.subs {
		fn(e)
	}
}

// Subscribe registers fn to observe every subsequent event. The returned
// cancel detaches it. Subscribers run synchronously on the emitting
// goroutine and must not emit events themselves.
func (l *EventLog) Subscribe(fn func(SecurityEvent)) (cancel func()) {
	if l == nil || fn == nil {
		return func() {}
	}
	idx := len(l.subs)
	l.subs = append(l.subs, fn)
	return func() {
		if idx < len(l.subs) {
			l.subs[idx] = func(SecurityEvent) {}
		}
	}
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []SecurityEvent {
	if l == nil {
		return nil
	}
	out := make([]SecurityEvent, 0, len(l.events))
	out = append(out, l.events[l.head:]...)
	out = append(out, l.events[:l.head]...)
	return out
}

// Total reports the lifetime event count, including evicted events.
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	return l.total
}

// Dropped reports how many events the ring evicted.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// EventTotal is one lifetime aggregate row.
type EventTotal struct {
	Kind      EventKind `json:"kind"`
	Mechanism Mechanism `json:"mechanism"`
	Denied    bool      `json:"denied"`
	Count     int64     `json:"count"`
}

// Totals returns lifetime counts per (kind, mechanism, denied), sorted for
// stable reports.
func (l *EventLog) Totals() []EventTotal {
	if l == nil {
		return nil
	}
	out := make([]EventTotal, 0, len(l.totals))
	for k, n := range l.totals {
		out = append(out, EventTotal{Kind: k.Kind, Mechanism: k.Mechanism, Denied: k.Denied, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Mechanism != b.Mechanism {
			return a.Mechanism < b.Mechanism
		}
		return !a.Denied && b.Denied
	})
	return out
}

// DeniedTotal reports the lifetime number of denied events — the quick
// "did mediation fire" probe attack reports use.
func (l *EventLog) DeniedTotal() int64 {
	if l == nil {
		return 0
	}
	var n int64
	for k, c := range l.totals {
		if k.Denied {
			n += c
		}
	}
	return n
}

// Mechanisms returns the distinct mechanisms that denied at least one
// action, sorted — "which layers stopped the attack".
func (l *EventLog) Mechanisms() []Mechanism {
	if l == nil {
		return nil
	}
	seen := map[Mechanism]bool{}
	for k, c := range l.totals {
		if k.Denied && c > 0 {
			seen[k.Mechanism] = true
		}
	}
	out := make([]Mechanism, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
