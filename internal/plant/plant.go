// Package plant simulates the physical side of the paper's testbed (Fig. 4):
// a room with a thermal process, a BMP180-style temperature sensor, a heater
// actuator, and an alarm LED.
//
// The room follows a first-order thermal model
//
//	dT/dt = -k (T - T_ambient) + P·u
//
// where u ∈ {0,1} is the heater command and P is the heater's heating rate.
// Between events the inputs are constant, so the model is integrated with the
// exact closed-form solution rather than numerically; simulations are both
// deterministic and cheap regardless of how rarely the plant is observed.
//
// The plant is what makes the paper's safety argument observable: when a
// compromised process spoofs sensor data or kills the controller, the room
// temperature physically diverges and the safety monitors in internal/safety
// record the violation.
package plant

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mkbas/internal/machine"
)

// Config parameterises a room.
type Config struct {
	// InitialTemp is the room temperature at boot, in °C.
	InitialTemp float64
	// Ambient is the outside temperature the room leaks toward, in °C.
	Ambient float64
	// LeakRate is k in the model, in 1/s. Typical rooms: 1e-3..1e-2.
	LeakRate float64
	// HeaterPower is P in the model, in °C/s of heating when on.
	HeaterPower float64
	// SensorNoise is the standard deviation of sensor read noise, in °C.
	// Zero disables noise.
	SensorNoise float64
	// Rand supplies deterministic noise; required when SensorNoise > 0.
	Rand *rand.Rand
}

// DefaultConfig models a small lab room: 15 °C ambient, time constant of
// about 17 minutes, and a heater that can raise the room ~1 °C/min.
func DefaultConfig() Config {
	return Config{
		InitialTemp: 18,
		Ambient:     15,
		LeakRate:    1e-3,
		HeaterPower: 1.0 / 60,
	}
}

// Room is the simulated thermal process plus its attached devices.
type Room struct {
	clock *machine.Clock
	cfg   Config

	temp      float64 // at lastSync
	lastSync  machine.Time
	heaterOn  bool
	heaterBad bool // failure injection: commands accepted but no heat
	alarmOn   bool

	// Sensor fault injection: a stuck sensor repeats one frozen value; a
	// drifting sensor accumulates a linear bias from driftSince onward.
	sensorStuck    bool
	sensorStuckVal float64
	driftRate      float64 // °C/s of accumulated bias, 0 = healthy
	driftSince     machine.Time

	// readHook observes every sensor read (the fault campaign's MTTR probe).
	readHook func(at machine.Time, value float64, faulted bool)

	// history records every actuator transition for experiment assertions.
	history []Event
}

// EventKind labels a plant history entry.
type EventKind int

// Plant event kinds.
const (
	EventHeaterOn EventKind = iota + 1
	EventHeaterOff
	EventAlarmOn
	EventAlarmOff
	EventHeaterFailed
	EventHeaterRepaired
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventHeaterOn:
		return "heater-on"
	case EventHeaterOff:
		return "heater-off"
	case EventAlarmOn:
		return "alarm-on"
	case EventAlarmOff:
		return "alarm-off"
	case EventHeaterFailed:
		return "heater-failed"
	case EventHeaterRepaired:
		return "heater-repaired"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one actuator transition with its instant and the room temperature
// at that instant.
type Event struct {
	At   machine.Time
	Kind EventKind
	Temp float64
}

// NewRoom builds a room over the board clock.
func NewRoom(clock *machine.Clock, cfg Config) *Room {
	if cfg.LeakRate <= 0 {
		panic("plant: LeakRate must be positive")
	}
	if cfg.SensorNoise > 0 && cfg.Rand == nil {
		panic("plant: SensorNoise requires a Rand source")
	}
	return &Room{
		clock:    clock,
		cfg:      cfg,
		temp:     cfg.InitialTemp,
		lastSync: clock.Now(),
	}
}

// sync integrates the model from lastSync to now with constant inputs.
func (r *Room) sync() {
	now := r.clock.Now()
	dt := now.Sub(r.lastSync).Seconds()
	if dt <= 0 {
		return
	}
	u := 0.0
	if r.heaterOn && !r.heaterBad {
		u = 1
	}
	// Steady state for constant input, exact exponential approach to it.
	tInf := r.cfg.Ambient + r.cfg.HeaterPower*u/r.cfg.LeakRate
	r.temp = tInf + (r.temp-tInf)*math.Exp(-r.cfg.LeakRate*dt)
	r.lastSync = now
}

// Temperature returns the true room temperature, in °C, at the current
// virtual instant. This is ground truth for safety monitors; processes read
// through the sensor device instead.
func (r *Room) Temperature() float64 {
	r.sync()
	return r.temp
}

// SetTemperature overrides the room temperature (test and scenario setup).
func (r *Room) SetTemperature(temp float64) {
	r.sync()
	r.temp = temp
}

// SetAmbient changes the outside temperature (disturbance injection).
func (r *Room) SetAmbient(ambient float64) {
	r.sync()
	r.cfg.Ambient = ambient
}

// Ambient returns the current outside temperature.
func (r *Room) Ambient() float64 { return r.cfg.Ambient }

// HeaterOn reports the commanded heater state.
func (r *Room) HeaterOn() bool { return r.heaterOn }

// AlarmOn reports the alarm actuator state.
func (r *Room) AlarmOn() bool { return r.alarmOn }

// setHeater applies a heater command at the current instant.
func (r *Room) setHeater(on bool) {
	if on == r.heaterOn {
		return
	}
	r.sync()
	r.heaterOn = on
	kind := EventHeaterOff
	if on {
		kind = EventHeaterOn
	}
	r.history = append(r.history, Event{At: r.clock.Now(), Kind: kind, Temp: r.temp})
}

// setAlarm applies an alarm command at the current instant.
func (r *Room) setAlarm(on bool) {
	if on == r.alarmOn {
		return
	}
	r.sync()
	r.alarmOn = on
	kind := EventAlarmOff
	if on {
		kind = EventAlarmOn
	}
	r.history = append(r.history, Event{At: r.clock.Now(), Kind: kind, Temp: r.temp})
}

// FailHeater injects or repairs a heater fault. While failed, commands are
// accepted (the driver sees success) but produce no heat — the scenario that
// must eventually trip the alarm.
func (r *Room) FailHeater(failed bool) {
	if failed == r.heaterBad {
		return
	}
	r.sync()
	r.heaterBad = failed
	kind := EventHeaterRepaired
	if failed {
		kind = EventHeaterFailed
	}
	r.history = append(r.history, Event{At: r.clock.Now(), Kind: kind, Temp: r.temp})
}

// HeaterFailed reports whether the heater fault is active.
func (r *Room) HeaterFailed() bool { return r.heaterBad }

// History returns a copy of all actuator transitions so far.
func (r *Room) History() []Event {
	out := make([]Event, len(r.history))
	copy(out, r.history)
	return out
}

// StickSensor freezes the sensor at value; Unstick releases it. While stuck
// the device reports the frozen value regardless of the true temperature.
func (r *Room) StickSensor(value float64) {
	r.sensorStuck = true
	r.sensorStuckVal = value
}

// UnstickSensor releases a stuck sensor.
func (r *Room) UnstickSensor() { r.sensorStuck = false }

// SetSensorDrift starts (rate != 0) or stops (rate == 0) a linear measurement
// bias of rate °C/s, accumulating from the current instant.
func (r *Room) SetSensorDrift(rate float64) {
	r.driftRate = rate
	r.driftSince = r.clock.Now()
}

// SensorFaulted reports whether a stuck-at or drift fault is active.
func (r *Room) SensorFaulted() bool { return r.sensorStuck || r.driftRate != 0 }

// SetSensorReadHook registers fn to observe every sensor device read with the
// reported value and whether a sensor fault distorted it. One hook only; nil
// clears it. The fault campaign uses this as its recovery (MTTR) probe.
func (r *Room) SetSensorReadHook(fn func(at machine.Time, value float64, faulted bool)) {
	r.readHook = fn
}

// readSensor returns the noisy measured temperature in °C, subject to any
// injected stuck-at or drift fault.
func (r *Room) readSensor() float64 {
	r.sync()
	t := r.temp
	if r.cfg.SensorNoise > 0 {
		t += r.cfg.Rand.NormFloat64() * r.cfg.SensorNoise
	}
	faulted := false
	if r.driftRate != 0 {
		t += r.driftRate * r.clock.Now().Sub(r.driftSince).Seconds()
		faulted = true
	}
	if r.sensorStuck {
		t = r.sensorStuckVal
		faulted = true
	}
	if r.readHook != nil {
		r.readHook(r.clock.Now(), t, faulted)
	}
	return t
}

// TimeConstant returns the thermal time constant 1/k.
func (r *Room) TimeConstant() time.Duration {
	return time.Duration(float64(time.Second) / r.cfg.LeakRate)
}
