package building

import (
	"time"

	"mkbas/internal/bacnet"
	"mkbas/internal/bas"
	"mkbas/internal/vnet"
)

// The supervisory head-end: the building management system (BMS) every real
// BAS has at the top of its field bus. It is deliberately not a simulated
// process on some board — a head-end is foreign equipment from the rooms'
// point of view, so it lives on a stackless bus node and speaks to every
// room only through BACnet frames: legacy frames to unprotected rooms,
// secure-proxy frames to rooms behind a bump-in-the-wire. From here it polls
// temperatures, pushes building-wide setpoint schedules (demand-response),
// and raises the building alarm when any room looks wrong.
//
// Resilience is part of the head-end's job, not an afterthought: missed
// rooms are re-polled under capped exponential backoff, rooms whose dials
// are refused are marked UNREACHABLE (distinct from STALE — the cable is
// different from the silence), rooms whose responses repeatedly fail
// secure-proxy verification are quarantined, and the whole head-end role can
// fail over to a standby instance that watches the primary's poll traffic on
// the bus and takes over after a configured silence.

// SetpointEvent is one demand-response entry in the building schedule:
// at building time At, command every room to Value.
type SetpointEvent struct {
	At    time.Duration `json:"at"`
	Value float64       `json:"value"`
}

// HeadEndConfig parameterises the BMS.
type HeadEndConfig struct {
	// PollPeriod is the per-room temperature polling interval; default 30s.
	PollPeriod time.Duration
	// Band is the tolerated |room temperature − scheduled setpoint| before a
	// room is flagged out-of-band; default 2 °C (the scenario alarm band).
	Band float64
	// StaleLimit is how many consecutive unanswered polls mark a room stale;
	// default 3. The same limit applied to consecutive refused dials marks a
	// room unreachable.
	StaleLimit int
	// TimeoutRounds is how many bus rounds the head-end waits for a response
	// before counting a poll as missed; default 5.
	TimeoutRounds int
	// Warmup suppresses out-of-band flagging while rooms heat from their
	// initial temperature toward the setpoint; default 15m. Staleness is
	// never suppressed.
	Warmup time.Duration
	// BackoffCap bounds the re-poll backoff for a missing room: after each
	// miss the room's poll interval doubles, up to this cap, and resets to
	// PollPeriod on the first successful harvest. Default 4×PollPeriod.
	BackoffCap time.Duration
	// QuarantineLimit is how many responses failing secure-proxy
	// verification (in a row, without a verified frame between them) put a
	// room in quarantine: the head-end stops talking to it and flags it.
	// Default 3. Legacy rooms are never quarantined — there is no
	// verification to fail.
	QuarantineLimit int
	// FailoverRounds is how many consecutive rounds without observed primary
	// traffic make a standby head-end take over; default 3×(PollPeriod/slice).
	// Only meaningful on the standby.
	FailoverRounds int
	// Schedule is the building-wide demand-response program, in building
	// time, applied in order.
	Schedule []SetpointEvent
}

func (c HeadEndConfig) withDefaults() HeadEndConfig {
	if c.PollPeriod <= 0 {
		c.PollPeriod = 30 * time.Second
	}
	if c.Band <= 0 {
		c.Band = 2.0
	}
	if c.StaleLimit <= 0 {
		c.StaleLimit = 3
	}
	if c.TimeoutRounds <= 0 {
		c.TimeoutRounds = 5
	}
	if c.Warmup <= 0 {
		c.Warmup = 15 * time.Minute
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 4 * c.PollPeriod
	}
	if c.QuarantineLimit <= 0 {
		c.QuarantineLimit = 3
	}
	return c
}

// headClientBase offsets BMS client ids so they cannot collide with room-
// local secure clients in tests. The standby gets its own base: the proxy's
// replay window is per-client, so the standby's first frames after takeover
// must not look like replays of the primary's sequence space.
const (
	headClientBase    uint32 = 0xB0000000
	standbyClientBase uint32 = 0xB1000000
)

// headRoom is the head-end's view of one room.
type headRoom struct {
	index    int
	node     vnet.NodeID
	deviceID uint32
	secure   *bacnet.SecureClient // nil for legacy rooms

	// One outstanding request at a time, connection-per-exchange.
	conn      *vnet.BusConn
	def       bacnet.Deframer
	reqKind   bacnet.PDUType
	reqObj    bacnet.ObjectID
	invoke    uint8
	seq       uint8
	sentRound int

	wantSetpoint  *float64
	lastPollRound int
	pollAlarm     bool // alternate temperature / alarm-point reads

	lastTemp    float64
	haveTemp    bool
	alarmOn     bool
	missed      int // consecutive unanswered requests
	writesAcked int

	// Resilience state. backoffRounds is the room's current poll interval in
	// rounds: pollRounds normally, doubling per miss up to the cap.
	// refusedStreak counts consecutive refused dials (the room's stack is
	// gone or the bus is dropping its traffic — unreachable, not merely
	// silent). reconverge marks a room that went stale and must be re-issued
	// the current scheduled setpoint on its first answer, in case it missed
	// a demand-response write during the outage.
	backoffRounds     int
	refusedStreak     int
	unreachableRounds int
	reconverge        bool
	badFrames         int
	quarantined       bool
}

// HeadEnd is the building management system — primary or standby. Exactly
// one instance is active at a time; the standby idles until the primary's
// bus traffic goes silent.
type HeadEnd struct {
	bus   *vnet.Bus
	node  vnet.NodeID
	cfg   HeadEndConfig
	slice time.Duration

	setpoint   float64
	schedIdx   int
	rooms      []*headRoom
	pollRounds int
	capRounds  int
	now        time.Duration

	pollsSent     int
	pollsAnswered int
	pollsMissed   int
	writesSent    int
	quarantines   int

	// Failover state. A primary is born active; a standby is born passive,
	// watching primaryNode's traffic through a bus tap (noteTap). Split
	// brain resolves by fixed node-id priority: the primary was added to the
	// bus first, so it holds the lower id and wins — a standby that sees
	// primary traffic again yields immediately.
	standby          bool
	active           bool
	primaryNode      vnet.NodeID
	failoverRounds   int
	sawPrimary       bool
	lastPrimaryRound int
	takeoverRound    int
	yields           int

	// onRoomOK fires on every verified harvest from a room; onQuarantine
	// once when a room is quarantined; onFailover once per standby takeover.
	// All run on the coordinator goroutine (OnRound context).
	onRoomOK     func(room int)
	onQuarantine func(room int)
	onFailover   func(round int)

	// Send-path scratch: BusConn.Write copies into a pooled chunk before
	// returning, so one encode buffer and one frame buffer serve every room.
	encBuf   []byte
	frameBuf []byte
}

// newHeadEnd attaches a BMS for the given rooms. initialSetpoint is the
// setpoint the rooms booted with (the band reference until the schedule
// overrides it).
func newHeadEnd(bus *vnet.Bus, node vnet.NodeID, rooms []*Room, initialSetpoint float64, slice time.Duration, cfg HeadEndConfig) *HeadEnd {
	cfg = cfg.withDefaults()
	h := &HeadEnd{
		bus:           bus,
		node:          node,
		cfg:           cfg,
		slice:         slice,
		setpoint:      initialSetpoint,
		active:        true,
		takeoverRound: -1,
	}
	h.pollRounds = int(cfg.PollPeriod / slice)
	if h.pollRounds < 1 {
		h.pollRounds = 1
	}
	h.capRounds = int(cfg.BackoffCap / slice)
	if h.capRounds < h.pollRounds {
		h.capRounds = h.pollRounds
	}
	for _, room := range rooms {
		hr := &headRoom{
			index:    room.Index,
			node:     room.Node,
			deviceID: room.DeviceID,
			// Stagger first polls one round apart so a 64-room building does
			// not synchronise every poll into the same bus round forever.
			lastPollRound: -h.pollRounds + room.Index%h.pollRounds,
			backoffRounds: h.pollRounds,
		}
		if room.Secure {
			hr.secure = bacnet.NewSecureClient(room.Key, headClientBase|uint32(room.Index))
		}
		h.rooms = append(h.rooms, hr)
	}
	return h
}

// newStandbyHeadEnd attaches a passive standby BMS that watches primaryNode's
// poll traffic (feed it delivered frames via noteTap) and takes over after
// FailoverRounds rounds of silence.
func newStandbyHeadEnd(bus *vnet.Bus, node, primaryNode vnet.NodeID, rooms []*Room, initialSetpoint float64, slice time.Duration, cfg HeadEndConfig) *HeadEnd {
	h := newHeadEnd(bus, node, rooms, initialSetpoint, slice, cfg)
	h.standby = true
	h.active = false
	h.primaryNode = primaryNode
	h.failoverRounds = h.cfg.FailoverRounds
	if h.failoverRounds <= 0 {
		h.failoverRounds = 3 * h.pollRounds
	}
	// The standby seals with its own client identity; see standbyClientBase.
	for i, hr := range h.rooms {
		if hr.secure != nil {
			hr.secure = bacnet.NewSecureClient(rooms[i].Key, standbyClientBase|uint32(hr.index))
		}
	}
	return h
}

// noteTap is the standby's view of the bus: the building feeds it every
// delivered frame, and frames originating from the primary prove the primary
// alive. Runs at the flush barrier on the coordinator goroutine.
func (h *HeadEnd) noteTap(from vnet.NodeID) {
	if h.standby && from == h.primaryNode {
		h.sawPrimary = true
	}
}

// Active reports whether this head-end currently owns the supervisory role.
func (h *HeadEnd) Active() bool { return h.active }

// TakeoverRound reports the round a standby took over (-1 if never).
func (h *HeadEnd) TakeoverRound() int { return h.takeoverRound }

// OnRound runs the BMS once per lockstep round, between the two bus
// barriers: it harvests responses delivered by the first Flush, advances the
// demand-response schedule, and queues the next requests for the second.
// All in fixed room order — the head-end is part of the determinism contract.
func (h *HeadEnd) OnRound(round int, now time.Duration) {
	h.now = now
	if h.standby && !h.checkFailover(round, now) {
		return
	}
	for _, r := range h.rooms {
		h.harvest(r, round)
		if r.refusedStreak >= h.cfg.StaleLimit {
			r.unreachableRounds++
		}
	}
	for h.schedIdx < len(h.cfg.Schedule) && now >= h.cfg.Schedule[h.schedIdx].At {
		v := h.cfg.Schedule[h.schedIdx].Value
		h.setpoint = v
		for _, r := range h.rooms {
			val := v
			r.wantSetpoint = &val
		}
		h.schedIdx++
	}
	for _, r := range h.rooms {
		h.issue(r, round)
	}
}

// checkFailover runs the standby's role state machine and reports whether
// the standby should act as the BMS this round. Detection and takeover are
// pure functions of round numbers and tap observations, both of which are
// fixed at the flush barrier — failover lands on the same round at any
// worker count.
func (h *HeadEnd) checkFailover(round int, now time.Duration) bool {
	if h.sawPrimary {
		h.sawPrimary = false
		h.lastPrimaryRound = round
		if h.active {
			// Split brain: the primary is back. Fixed node-id priority — the
			// primary holds the lower id — so the standby yields, abandoning
			// its in-flight exchanges.
			h.active = false
			h.yields++
			for _, r := range h.rooms {
				if r.conn != nil {
					h.closeExchange(r)
				}
			}
		}
		return false
	}
	if h.active {
		return true
	}
	if round-h.lastPrimaryRound < h.failoverRounds {
		return false
	}
	// Takeover. The standby rebuilds supervisory state from its own config
	// and clock: fast-forward the demand-response schedule to now, then
	// re-assert the scheduled setpoint to every room — a room may have
	// missed a write during the interregnum, and re-writing the same value
	// is idempotent for the rest.
	h.active = true
	h.takeoverRound = round
	for h.schedIdx < len(h.cfg.Schedule) && now >= h.cfg.Schedule[h.schedIdx].At {
		h.setpoint = h.cfg.Schedule[h.schedIdx].Value
		h.schedIdx++
	}
	for _, r := range h.rooms {
		val := h.setpoint
		r.wantSetpoint = &val
		// Restart polling staggered from the takeover round, exactly like a
		// primary's boot stagger.
		r.lastPollRound = round - h.pollRounds + r.index%h.pollRounds
	}
	if h.onFailover != nil {
		h.onFailover(round)
	}
	return true
}

// harvest drains one room's in-flight exchange.
func (h *HeadEnd) harvest(r *headRoom, round int) {
	if r.conn == nil {
		return
	}
	if r.conn.Refused() {
		r.refusedStreak++
		h.miss(r)
		return
	}
	// The dial went through, so the room's stack is up — any prior refusal
	// streak is over even if this exchange times out.
	r.refusedStreak = 0
	r.def.Feed(r.conn.ReadAll())
	for {
		raw := r.def.Next()
		if raw == nil {
			break
		}
		var pdu bacnet.PDU
		var err error
		if r.secure != nil {
			pdu, err = r.secure.Open(raw)
			if err != nil {
				// A frame on the room's connection that fails verification is
				// either corruption or an impersonation attempt. Repeatedly is
				// a compromised path: quarantine the room rather than keep
				// soliciting forgeries.
				r.badFrames++
				if !r.quarantined && r.badFrames >= h.cfg.QuarantineLimit {
					r.quarantined = true
					h.quarantines++
					h.closeExchange(r)
					if h.onQuarantine != nil {
						h.onQuarantine(r.index)
					}
					return
				}
				continue
			}
		} else {
			pdu, err = bacnet.DecodePDU(raw)
			if err != nil {
				continue
			}
		}
		if pdu.InvokeID != r.invoke {
			continue // not our answer (stale or replayed)
		}
		switch r.reqKind {
		case bacnet.ReadProperty:
			if pdu.Type == bacnet.Ack {
				switch r.reqObj {
				case bacnet.ObjTemperature:
					r.lastTemp = pdu.Value
					r.haveTemp = true
				case bacnet.ObjAlarm:
					r.alarmOn = pdu.Value != 0
				}
			}
			h.pollsAnswered++
		case bacnet.WriteProperty:
			if pdu.Type == bacnet.Ack {
				r.writesAcked++
			}
		}
		// A verified answer resets the whole resilience ledger for the room
		// and, if it had gone stale, queues the re-convergence write.
		wasOut := r.missed >= h.cfg.StaleLimit || r.reconverge
		r.missed = 0
		r.badFrames = 0
		r.backoffRounds = h.pollRounds
		if wasOut {
			r.reconverge = false
			if r.wantSetpoint == nil {
				val := h.setpoint
				r.wantSetpoint = &val
			}
		}
		if h.onRoomOK != nil {
			h.onRoomOK(r.index)
		}
		h.closeExchange(r)
		return
	}
	if round-r.sentRound >= h.cfg.TimeoutRounds {
		h.miss(r)
	}
}

func (h *HeadEnd) miss(r *headRoom) {
	r.missed++
	if r.missed >= h.cfg.StaleLimit {
		r.reconverge = true
	}
	// Capped exponential backoff: each miss doubles the room's poll
	// interval so a dead room does not eat the bus, capped so recovery is
	// noticed within BackoffCap.
	r.backoffRounds *= 2
	if r.backoffRounds > h.capRounds {
		r.backoffRounds = h.capRounds
	}
	if r.reqKind == bacnet.ReadProperty {
		h.pollsMissed++
	}
	h.closeExchange(r)
}

func (h *HeadEnd) closeExchange(r *headRoom) {
	r.conn.Close()
	r.conn = nil
	r.def = bacnet.Deframer{}
}

// issue queues one room's next request: a pending scheduled write wins over
// a due poll. Quarantined rooms get nothing — the head-end has stopped
// trusting the path.
func (h *HeadEnd) issue(r *headRoom, round int) {
	if r.conn != nil || r.quarantined {
		return
	}
	switch {
	case r.wantSetpoint != nil:
		h.send(r, round, bacnet.PDU{
			Type: bacnet.WriteProperty, Device: r.deviceID,
			Object: bacnet.ObjSetpoint, Value: *r.wantSetpoint,
		})
		r.wantSetpoint = nil
		h.writesSent++
	case round-r.lastPollRound >= r.backoffRounds:
		// Alternate between the temperature and alarm points: a room whose
		// sensor path is dead keeps reporting its last believed temperature,
		// so the controller's own failsafe alarm is the only truthful signal.
		obj := bacnet.ObjTemperature
		if r.pollAlarm {
			obj = bacnet.ObjAlarm
		}
		r.pollAlarm = !r.pollAlarm
		h.send(r, round, bacnet.PDU{
			Type: bacnet.ReadProperty, Device: r.deviceID,
			Object: obj,
		})
		r.lastPollRound = round
		h.pollsSent++
	}
}

func (h *HeadEnd) send(r *headRoom, round int, pdu bacnet.PDU) {
	r.seq++
	pdu.InvokeID = r.seq
	r.invoke = r.seq
	r.reqKind = pdu.Type
	r.reqObj = pdu.Object
	r.sentRound = round
	var payload []byte
	if r.secure != nil {
		payload = r.secure.Seal(pdu)
	} else {
		h.encBuf = pdu.AppendEncode(h.encBuf[:0])
		payload = h.encBuf
	}
	h.frameBuf = bacnet.AppendFrame(h.frameBuf[:0], payload)
	r.conn = h.bus.Dial(h.node, r.node, bas.BACnetPort)
	_ = r.conn.Write(h.frameBuf)
}

// RoomState is the BMS's judgement of one room.
type RoomState struct {
	Room     int     `json:"room"`
	Secure   bool    `json:"secure"`
	HaveTemp bool    `json:"have_temp"`
	Temp     float64 `json:"temp"`
	Missed   int     `json:"missed"`
	Stale    bool    `json:"stale"`
	// Unreachable marks a room whose dials are being refused (StaleLimit
	// consecutive refusals): the path is down, not merely silent.
	Unreachable       bool `json:"unreachable"`
	UnreachableRounds int  `json:"unreachable_rounds"`
	// Quarantined marks a room the head-end stopped polling because its
	// responses repeatedly failed secure-proxy verification.
	Quarantined bool `json:"quarantined"`
	OutOfBand   bool `json:"out_of_band"`
	AlarmOn     bool `json:"alarm_on"`
	Flagged     bool `json:"flagged"`
	Writes      int  `json:"writes_acked"`
}

// RoomStates evaluates every room against the current schedule, in room
// order.
func (h *HeadEnd) RoomStates() []RoomState {
	out := make([]RoomState, 0, len(h.rooms))
	for _, r := range h.rooms {
		st := RoomState{
			Room:   r.index,
			Secure: r.secure != nil,
			Temp:   r.lastTemp, HaveTemp: r.haveTemp,
			Missed: r.missed,
			Writes: r.writesAcked,
		}
		st.Stale = r.missed >= h.cfg.StaleLimit
		st.Unreachable = r.refusedStreak >= h.cfg.StaleLimit
		st.UnreachableRounds = r.unreachableRounds
		st.Quarantined = r.quarantined
		if h.now >= h.cfg.Warmup {
			// Out-of-band and alarm relays are suppressed during warm-up
			// (every room boots cold and legitimately out of band).
			if r.haveTemp {
				dev := r.lastTemp - h.setpoint
				if dev < 0 {
					dev = -dev
				}
				st.OutOfBand = dev > h.cfg.Band
			}
			st.AlarmOn = r.alarmOn
		}
		st.Flagged = st.Stale || st.Unreachable || st.Quarantined || st.OutOfBand || st.AlarmOn
		out = append(out, st)
	}
	return out
}

// Setpoint is the currently scheduled building-wide setpoint.
func (h *HeadEnd) Setpoint() float64 { return h.setpoint }

// Alarm reports the building alarm: any room flagged.
func (h *HeadEnd) Alarm() bool {
	for _, st := range h.RoomStates() {
		if st.Flagged {
			return true
		}
	}
	return false
}
