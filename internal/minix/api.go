package minix

import (
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/vnet"
)

// traceReq is the trap behind API.Trace.
type traceReq struct {
	tag  string
	text string
}

// API is the system-call interface a simulated MINIX process programs
// against. One API value is handed to each Image body; all methods trap into
// the kernel and may yield the virtual CPU.
type API struct {
	ctx  *machine.Context
	self Endpoint

	// Scratch requests for the hot syscalls. Boxing a pointer into the
	// trap's any costs no heap allocation, and the kernel consumes each
	// request synchronously inside HandleTrap, so one scratch value per
	// request type is enough: by the time the trap returns (or blocks), the
	// kernel no longer reads it.
	sendScratch    sendReq
	recvScratch    receiveReq
	recvTOScratch  receiveTimeoutReq
	sendRecScratch sendRecReq
	notifyScratch  notifyReq
	sendNBScratch  sendNBReq
	sleepScratch   sleepReq
	devRdScratch   devReadReq
	devWrScratch   devWriteReq
}

// Self returns the calling process's endpoint.
func (a *API) Self() Endpoint { return a.self }

// Now returns the current virtual time (free, no trap).
func (a *API) Now() machine.Time { return a.ctx.Now() }

// Send delivers msg to dst synchronously, blocking until the receiver picks
// it up (rendezvous). The kernel stamps the source and consults the ACM.
func (a *API) Send(dst Endpoint, msg Message) error {
	a.sendScratch = sendReq{dst: dst, msg: msg}
	return a.ctx.Trap(&a.sendScratch).(*ipcReply).err
}

// Receive blocks until a message from the given source (EndpointAny for any)
// is available and returns it.
func (a *API) Receive(from Endpoint) (Message, error) {
	a.recvScratch = receiveReq{from: from}
	reply := a.ctx.Trap(&a.recvScratch).(*ipcReply)
	return reply.msg, reply.err
}

// ReceiveTimeout is Receive with a watchdog: it returns ErrTimeout if no
// matching message arrives within d of virtual time. Hardened drivers use
// it to notice silent peers instead of blocking forever.
func (a *API) ReceiveTimeout(from Endpoint, d time.Duration) (Message, error) {
	a.recvTOScratch = receiveTimeoutReq{from: from, d: d}
	reply := a.ctx.Trap(&a.recvTOScratch).(*ipcReply)
	return reply.msg, reply.err
}

// SendRec performs the atomic send-then-receive used for RPC: it sends msg
// to dst and blocks until dst sends a reply back.
func (a *API) SendRec(dst Endpoint, msg Message) (Message, error) {
	a.sendRecScratch = sendRecReq{dst: dst, msg: msg}
	reply := a.ctx.Trap(&a.sendRecScratch).(*ipcReply)
	return reply.msg, reply.err
}

// Notify posts a payload-less notification to dst without blocking.
// Notifications are delivered ahead of ordinary messages and collapse like
// bits; they are subject to the ACM's ACKNOWLEDGE (type 0) permission.
func (a *API) Notify(dst Endpoint) error {
	a.notifyScratch = notifyReq{dst: dst}
	return a.ctx.Trap(&a.notifyScratch).(*errReply).err
}

// SendNB sends msg asynchronously: delivered immediately if dst is waiting,
// otherwise queued in dst's bounded mailbox. It never blocks the caller.
func (a *API) SendNB(dst Endpoint, msg Message) error {
	a.sendNBScratch = sendNBReq{dst: dst, msg: msg}
	return a.ctx.Trap(&a.sendNBScratch).(*errReply).err
}

// Sleep blocks the process for a virtual duration.
func (a *API) Sleep(d time.Duration) {
	a.sleepScratch = sleepReq{d: d}
	a.ctx.Trap(&a.sleepScratch)
}

// DevRead reads a device register; the process must hold the device grant.
func (a *API) DevRead(dev machine.DeviceID, reg uint32) (uint32, error) {
	a.devRdScratch = devReadReq{dev: dev, reg: reg}
	reply := a.ctx.Trap(&a.devRdScratch).(*u32Reply)
	return reply.value, reply.err
}

// DevWrite writes a device register; the process must hold the device grant.
func (a *API) DevWrite(dev machine.DeviceID, reg uint32, value uint32) error {
	a.devWrScratch = devWriteReq{dev: dev, reg: reg, value: value}
	return a.ctx.Trap(&a.devWrScratch).(*errReply).err
}

// Lookup resolves a published process name to its current endpoint (the
// kernel directory service; processes are auto-published at spawn).
func (a *API) Lookup(name string) (Endpoint, error) {
	reply := a.ctx.Trap(lookupReq{name: name}).(epReply)
	return reply.ep, reply.err
}

// Trace writes a line to the board trace console.
func (a *API) Trace(tag, text string) {
	a.ctx.Trap(traceReq{tag: tag, text: text})
}

// Exit terminates the calling process voluntarily. It does not return.
func (a *API) Exit() {
	a.ctx.Trap(exitReq{})
	panic("minix: Exit returned")
}

// NetListen binds a port (network privilege required) and returns a
// listener handle.
func (a *API) NetListen(port vnet.Port) (int32, error) {
	reply := a.ctx.Trap(netListenReq{port: port}).(handleReply)
	return reply.handle, reply.err
}

// NetAccept blocks until a connection arrives and returns its handle.
func (a *API) NetAccept(listener int32) (int32, error) {
	reply := a.ctx.Trap(netAcceptReq{listener: listener}).(handleReply)
	return reply.handle, reply.err
}

// NetRead blocks until data (or EOF) is available and returns up to max
// bytes; max <= 0 means "whatever is buffered".
func (a *API) NetRead(conn int32, max int) ([]byte, error) {
	reply := a.ctx.Trap(netReadReq{conn: conn, max: max}).(bytesReply)
	return reply.data, reply.err
}

// NetWrite sends bytes on a connection.
func (a *API) NetWrite(conn int32, data []byte) error {
	return a.ctx.Trap(netWriteReq{conn: conn, data: data}).(errReply).err
}

// NetClose closes a connection handle.
func (a *API) NetClose(conn int32) error {
	return a.ctx.Trap(netCloseReq{conn: conn}).(errReply).err
}

// PM protocol message types (the POSIX-ish call surface the process manager
// serves over IPC, Section III-A: "all POSIX-compliant system calls ... can
// only be invoked by sending a message through kernel IPC primitives ... to
// the process management (PM) process").
const (
	// TypePMFork2 asks PM to spawn an image with an explicit ac_id
	// (the paper's fork2/srv_fork2). Payload: image name at 0 (string),
	// requested acid at 40 (u32).
	TypePMFork2 int32 = 10
	// TypePMKill asks PM to kill the process at the endpoint in payload[0:4].
	TypePMKill int32 = 11
	// TypePMReply is PM's answer: wire code at 0 (i32 as u32), endpoint at 4.
	TypePMReply int32 = 12
)

// Fork2 asks the process manager to spawn image with the given ac_id
// (acid 0 inherits the caller's). This is the paper's fork2() call: the
// request is audited against the syscall policy, including fork quotas.
func (a *API) Fork2(image string, acid uint32) (Endpoint, error) {
	pm, err := a.Lookup(PMName)
	if err != nil {
		return EndpointNone, err
	}
	msg := NewMessage(TypePMFork2)
	msg.PutString(0, image)
	msg.PutU32(40, acid)
	reply, err := a.SendRec(pm, msg)
	if err != nil {
		return EndpointNone, err
	}
	if err := errFromCode(int32(reply.U32(0))); err != nil {
		return EndpointNone, err
	}
	return Endpoint(reply.U32(4)), nil
}

// Kill asks the process manager to destroy the process at target. The
// request is audited against the syscall policy: in the scenario policy only
// the loader holds the kill grant, so a compromised web interface is denied
// even with root uid.
func (a *API) Kill(target Endpoint) error {
	pm, err := a.Lookup(PMName)
	if err != nil {
		return err
	}
	msg := NewMessage(TypePMKill)
	msg.PutU32(0, uint32(target))
	reply, err := a.SendRec(pm, msg)
	if err != nil {
		return err
	}
	return errFromCode(int32(reply.U32(0)))
}
