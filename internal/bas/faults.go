package bas

import (
	"fmt"
	"strings"
	"time"

	"mkbas/internal/camkes"
	"mkbas/internal/faultinject"
	"mkbas/internal/linuxsim"
	"mkbas/internal/machine"
	"mkbas/internal/minix"
	"mkbas/internal/obs"
	"mkbas/internal/plant"
)

// This file binds the platform-neutral fault-injection campaign layer
// (internal/faultinject) to each deployment: every backend exposes the same
// faultinject.Board shape, so one fault plan runs unchanged on all three
// platforms — the whole point of the chaos comparison.

// boardCommon is the testbed-backed half of faultinject.Board, shared by all
// platforms.
type boardCommon struct {
	tb *Testbed
}

func (b boardCommon) Clock() *machine.Clock  { return b.tb.Machine.Clock() }
func (b boardCommon) Room() *plant.Room      { return b.tb.Room }
func (b boardCommon) Events() *obs.EventLog  { return b.tb.Machine.Obs().Events() }
func (b boardCommon) Metrics() *obs.Registry { return b.tb.Machine.Obs().Metrics() }

// Flood opens count host-side connections to the web port and writes a
// request on each without ever reading the response — a connection-exhaustion
// burst against the web interface.
func (b boardCommon) Flood(count int) error {
	for i := 0; i < count; i++ {
		conn, err := b.tb.Net.Dial(WebPort)
		if err != nil {
			return err
		}
		if err := conn.Write([]byte("GET /status HTTP/1.0\r\n\r\n")); err != nil {
			return err
		}
	}
	return nil
}

// minixBoard adapts the MINIX deployment.
type minixBoard struct {
	boardCommon
	k *minix.Kernel
}

func (b minixBoard) CrashProcess(name string) error { return b.k.CrashProcess(name) }
func (b minixBoard) SetIPCFault(fn func(src, dst string) (bool, time.Duration)) {
	b.k.SetIPCFault(fn)
}

// ArmFaults schedules a fault plan against this board.
func (d *MinixDeployment) ArmFaults(plan *faultinject.Plan) (*faultinject.Injector, error) {
	return faultinject.Arm(minixBoard{boardCommon{d.tb}, d.Kernel}, plan)
}

// ControllerRestarts reports the reincarnation server's total restarts.
func (d *MinixDeployment) ControllerRestarts() int {
	return int(d.Kernel.RS().TotalRestarts())
}

// ControllerRecovered reports a controller that died and was reincarnated.
func (d *MinixDeployment) ControllerRecovered() bool {
	return d.ControllerAlive() && d.ControllerRestarts() > 0
}

// sel4Board adapts the seL4/CAmkES deployment.
type sel4Board struct {
	boardCommon
	sys *camkes.System
}

// CrashProcess kills every live thread of the named component: a process
// crash on the component platform takes down the control thread and all
// interface threads together.
func (b sel4Board) CrashProcess(name string) error {
	found := false
	for _, th := range b.sys.ThreadNames() {
		if th != name && !strings.HasPrefix(th, name+".") {
			continue
		}
		if !b.sys.ThreadAlive(th) {
			continue
		}
		if err := b.sys.CrashThread(th); err != nil {
			return err
		}
		found = true
	}
	if !found {
		return fmt.Errorf("bas: no live threads for component %q", name)
	}
	return nil
}

func (b sel4Board) SetIPCFault(fn func(src, dst string) (bool, time.Duration)) {
	b.sys.Kernel().SetIPCFault(fn)
}

// ArmFaults schedules a fault plan against this board.
func (d *Sel4Deployment) ArmFaults(plan *faultinject.Plan) (*faultinject.Injector, error) {
	return faultinject.Arm(sel4Board{boardCommon{d.tb}, d.System}, plan)
}

// ControllerRestarts reports monitor respawns across all threads.
func (d *Sel4Deployment) ControllerRestarts() int { return d.System.TotalRestarts() }

// ControllerRecovered reports a controller that died and was respawned.
func (d *Sel4Deployment) ControllerRecovered() bool {
	return d.ControllerAlive() && d.ControllerRestarts() > 0
}

// linuxBoard adapts the Linux deployment. The kernel's fault filter is keyed
// by queue name, while fault plans target process names, so the adapter
// translates each queue to its consuming process.
type linuxBoard struct {
	boardCommon
	k *linuxsim.Kernel
}

func (b linuxBoard) CrashProcess(name string) error { return b.k.CrashProcess(name) }
func (b linuxBoard) SetIPCFault(fn func(src, dst string) (bool, time.Duration)) {
	if fn == nil {
		b.k.SetIPCFault(nil)
		return
	}
	b.k.SetIPCFault(func(src, queue string) (bool, time.Duration) {
		return fn(src, linuxQueueConsumer(queue))
	})
}

// linuxQueueConsumer maps a queue to the process that reads it, the
// process-level "destination" of a message on that queue.
func linuxQueueConsumer(queue string) string {
	switch queue {
	case QSensorData, QWebReq:
		return NameTempControl
	case QHeaterCmd:
		return NameHeaterAct
	case QAlarmCmd:
		return NameAlarmAct
	case QWebResp:
		return NameWebInterface
	}
	return queue // no consumer (e.g. the audit log): never matched by name
}

// ArmFaults schedules a fault plan against this board.
func (d *LinuxDeployment) ArmFaults(plan *faultinject.Plan) (*faultinject.Injector, error) {
	return faultinject.Arm(linuxBoard{boardCommon{d.tb}, d.Kernel}, plan)
}

// supervisedImages lists the scenario processes a supervisor watches.
func supervisedImages() []string {
	return []string{NameHeaterAct, NameAlarmAct, NameTempControl, NameTempSensor, NameWebInterface}
}

// ControllerRestarts reports respawns (spawns beyond the first) across the
// scenario processes.
func (d *LinuxDeployment) ControllerRestarts() int {
	n := 0
	for _, name := range supervisedImages() {
		if c := d.Kernel.SpawnCount(name); c > 1 {
			n += c - 1
		}
	}
	return n
}

// ControllerRecovered reports a controller that died and was respawned.
func (d *LinuxDeployment) ControllerRecovered() bool {
	return d.ControllerAlive() && d.ControllerRestarts() > 0
}
