package vnet

import (
	"bytes"
	"errors"
	"testing"
)

// busPair builds a two-node bus: node 0 is a plain stack (the sender side),
// node 1 a stack listening on port 47808.
func busPair(t *testing.T) (*Bus, *Stack, *Stack, *Listener) {
	t.Helper()
	a, b := NewStack(), NewStack()
	l, err := b.Listen(47808)
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus()
	bus.AddNode("a", a)
	bus.AddNode("b", b)
	return bus, a, b, l
}

func TestBusDeliverAndRespond(t *testing.T) {
	bus, _, b, l := busPair(t)
	c := bus.Dial(0, 1, 47808)
	if err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	// Nothing moves before the barrier.
	if _, err := b.Accept(l); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("pre-flush accept err = %v, want ErrWouldBlock", err)
	}
	bus.Flush()

	conn, err := b.Accept(l)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.BoardRead(conn, 0)
	if err != nil || string(got) != "ping" {
		t.Fatalf("board read = %q, %v", got, err)
	}
	if err := b.BoardWrite(conn, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	// The response lands in the sender's inbox at the next barrier.
	if got := c.ReadAll(); got != nil {
		t.Fatalf("response before flush: %q", got)
	}
	bus.Flush()
	if got := c.ReadAll(); string(got) != "pong" {
		t.Fatalf("response = %q", got)
	}
}

func TestBusFixedDeliveryOrder(t *testing.T) {
	target := NewStack()
	if _, err := target.Listen(9); err != nil {
		t.Fatal(err)
	}
	bus := NewBus()
	n0 := bus.AddNode("n0", NewStack())
	n1 := bus.AddNode("n1", NewStack())
	tID := bus.AddNode("t", target)

	var order []string
	bus.SetTap(func(f TapFrame) {
		order = append(order, bus.NodeName(f.From)+":"+string(f.Payload))
	})

	// Queue in deliberately scrambled wall order: node 1 first, then node 0
	// with two connections, writing interleaved chunks.
	c1 := bus.Dial(n1, tID, 9)
	c0a := bus.Dial(n0, tID, 9)
	c0b := bus.Dial(n0, tID, 9)
	_ = c1.Write([]byte("B1"))
	_ = c0b.Write([]byte("A2-first"))
	_ = c0a.Write([]byte("A1-first"))
	_ = c0a.Write([]byte("A1-second"))
	_ = c1.Write([]byte("B2"))
	bus.Flush()

	// Delivery is nodes ascending, conns in creation order, chunks in write
	// order — independent of the order the writes were issued in.
	want := []string{"n0:A1-first", "n0:A1-second", "n0:A2-first", "n1:B1", "n1:B2"}
	if len(order) != len(want) {
		t.Fatalf("tap saw %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery[%d] = %q, want %q (full: %v)", i, order[i], want[i], order)
		}
	}
}

func TestBusDialRefused(t *testing.T) {
	bus, _, _, _ := busPair(t)
	// No listener on port 99.
	c := bus.Dial(0, 1, 99)
	if err := c.Write([]byte("x")); err != nil {
		t.Fatalf("pre-flush write: %v", err)
	}
	bus.Flush()
	if !c.Refused() {
		t.Fatal("dial to dead port not refused")
	}
	if err := c.Write([]byte("y")); !errors.Is(err, ErrNoListener) {
		t.Fatalf("write after refusal err = %v, want ErrNoListener", err)
	}
}

func TestBusDialOriginateOnlyNodeRefused(t *testing.T) {
	bus := NewBus()
	bus.AddNode("a", NewStack())
	head := bus.AddNode("head", nil) // supervisory head-end: no stack
	c := bus.Dial(0, head, 47808)
	bus.Flush()
	if !c.Refused() {
		t.Fatal("dial toward a stackless node not refused")
	}
}

func TestBusBacklogFullRefused(t *testing.T) {
	bus, _, b, _ := busPair(t)
	// Saturate the listener's backlog from the host side.
	for i := 0; i < backlogMax; i++ {
		if _, err := b.Dial(47808); err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
	}
	c := bus.Dial(0, 1, 47808)
	bus.Flush()
	if !c.Refused() {
		t.Fatal("dial into a full backlog not refused")
	}
}

func TestBusBoardCloseDataBeforeEOF(t *testing.T) {
	bus, _, b, l := busPair(t)
	c := bus.Dial(0, 1, 47808)
	_ = c.Write([]byte("hi"))
	bus.Flush()
	conn, err := b.Accept(l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.BoardRead(conn, 0); err != nil {
		t.Fatal(err)
	}
	// The board answers and hangs up in the same round.
	_ = b.BoardWrite(conn, []byte("bye"))
	b.BoardClose(conn)
	bus.Flush()
	if got := c.ReadAll(); string(got) != "bye" {
		t.Fatalf("final data = %q, want %q", got, "bye")
	}
	if !c.Closed() {
		t.Fatal("sender did not observe EOF")
	}
	if err := c.Write([]byte("x")); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("write after EOF err = %v, want ErrConnClosed", err)
	}
}

func TestBusSenderCloseReachesBoard(t *testing.T) {
	bus, _, b, l := busPair(t)
	c := bus.Dial(0, 1, 47808)
	_ = c.Write([]byte("last"))
	c.Close()
	bus.Flush()
	conn, err := b.Accept(l)
	if err != nil {
		t.Fatal(err)
	}
	// Queued data drains first, then the board reads EOF.
	got, err := b.BoardRead(conn, 0)
	if err != nil || string(got) != "last" {
		t.Fatalf("board read = %q, %v", got, err)
	}
	if _, err := b.BoardRead(conn, 0); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("post-close read err = %v, want ErrConnClosed", err)
	}
}

func TestBusTapPayloadIsACopy(t *testing.T) {
	bus, _, _, _ := busPair(t)
	var captured []byte
	bus.SetTap(func(f TapFrame) {
		if f.Port != 47808 {
			t.Fatalf("tap port = %d", f.Port)
		}
		captured = f.Payload
	})
	c := bus.Dial(0, 1, 47808)
	buf := []byte("frame-bytes")
	_ = c.Write(buf)
	buf[0] = 'X' // caller reuses its buffer; the bus copied on Write
	bus.Flush()
	if !bytes.Equal(captured, []byte("frame-bytes")) {
		t.Fatalf("tap payload = %q", captured)
	}
	// Replaying the captured chunk verbatim is valid sender input — the
	// attack path the building scenarios use.
	replay := bus.Dial(0, 1, 47808)
	if err := replay.Write(captured); err != nil {
		t.Fatal(err)
	}
}
