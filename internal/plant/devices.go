package plant

import (
	"strconv"

	"mkbas/internal/machine"
)

// Bus device IDs for the standard testbed layout.
const (
	// DevTempSensor is the BMP180-style temperature sensor.
	DevTempSensor machine.DeviceID = "bmp180"
	// DevHeater is the heater (fan in the paper's mockup) actuator.
	DevHeater machine.DeviceID = "heater"
	// DevAlarm is the on-board LED standing in for the alarm actuator.
	DevAlarm machine.DeviceID = "alarm-led"
)

// Register map shared by drivers and devices.
const (
	// RegTempMilliC (sensor, read-only): temperature in milli-°C, offset by
	// TempOffsetMilliC so sub-zero rooms encode as unsigned values.
	RegTempMilliC uint32 = 0
	// RegSampleCount (sensor, read-only): number of samples served.
	RegSampleCount uint32 = 1
	// RegActuate (heater/alarm): 1 = on, 0 = off; reads return the commanded
	// state.
	RegActuate uint32 = 0
)

// TempOffsetMilliC biases encoded temperatures; 0 encodes -273.15 °C.
const TempOffsetMilliC = 273150

// EncodeTemp converts °C to the sensor's register encoding.
func EncodeTemp(celsius float64) uint32 {
	return uint32(int32(celsius*1000) + TempOffsetMilliC)
}

// DecodeTemp converts a sensor register value back to °C.
func DecodeTemp(raw uint32) float64 {
	return float64(int32(raw)-TempOffsetMilliC) / 1000
}

// AppendTempFixed4 appends the decoded temperature with four decimal places,
// byte-identical to strconv.AppendFloat(buf, DecodeTemp(raw), 'f', 4, 64).
// The register holds integer milli-°C, so the fourth decimal is always zero
// and the digits come straight from integer division — no float-to-decimal
// conversion, which in the stdlib takes the arbitrary-precision slow path
// for fixed 'f' precision. (Correctness: the decoded float is within half an
// ulp of the exact milli value, far inside the 5e-5 rounding boundary, so
// both renderings round to the same four decimals.)
func AppendTempFixed4(buf []byte, raw uint32) []byte {
	m := int32(raw) - TempOffsetMilliC
	if m < 0 {
		buf = append(buf, '-')
		m = -m
	}
	buf = strconv.AppendInt(buf, int64(m/1000), 10)
	frac := m % 1000
	return append(buf, '.',
		byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10), '0')
}

// tempSensorDevice exposes the room temperature as registers.
type tempSensorDevice struct {
	room    *Room
	samples uint32
}

func (d *tempSensorDevice) ReadReg(reg uint32) uint32 {
	switch reg {
	case RegTempMilliC:
		d.samples++
		return EncodeTemp(d.room.readSensor())
	case RegSampleCount:
		return d.samples
	default:
		return 0
	}
}

func (d *tempSensorDevice) WriteReg(reg uint32, value uint32) {
	// Sensor registers are read-only; writes are ignored like real hardware
	// with no writable registers at those offsets.
}

// heaterDevice drives the room heater input.
type heaterDevice struct{ room *Room }

func (d *heaterDevice) ReadReg(reg uint32) uint32 {
	if reg == RegActuate && d.room.HeaterOn() {
		return 1
	}
	return 0
}

func (d *heaterDevice) WriteReg(reg uint32, value uint32) {
	if reg == RegActuate {
		d.room.setHeater(value != 0)
	}
}

// alarmDevice drives the alarm LED.
type alarmDevice struct{ room *Room }

func (d *alarmDevice) ReadReg(reg uint32) uint32 {
	if reg == RegActuate && d.room.AlarmOn() {
		return 1
	}
	return 0
}

func (d *alarmDevice) WriteReg(reg uint32, value uint32) {
	if reg == RegActuate {
		d.room.setAlarm(value != 0)
	}
}

// Attach wires the room's three devices onto a board bus under the standard
// IDs and returns the room for chaining.
func Attach(bus *machine.Bus, room *Room) *Room {
	bus.Attach(DevTempSensor, &tempSensorDevice{room: room})
	bus.Attach(DevHeater, &heaterDevice{room: room})
	bus.Attach(DevAlarm, &alarmDevice{room: room})
	return room
}
