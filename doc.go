// Package mkbas is a full reproduction, as a Go simulation study, of
// "Enhanced Security of Building Automation Systems Through
// Microkernel-Based Controller Platforms" (ICDCS 2017 / CCNCPS workshop).
//
// The repository builds every system the paper describes — a deterministic
// virtual controller board, a security-enhanced MINIX 3 kernel with the
// paper's access control matrix, an seL4-style capability kernel with a
// CAmkES component layer and CapDL verification, a monolithic Linux
// comparison kernel, the AADL modeling front end and its two compilers, the
// five-process temperature-control scenario, and the attack harness that
// regenerates the paper's platform comparison.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-measured record, and the examples directory for runnable
// entry points. The benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=. -benchmem .
package mkbas
