package monitor

import (
	"strings"
	"testing"

	"mkbas/internal/obs"
	"mkbas/internal/polcheck"
)

// testGraph builds a small certified graph exercising every edge shape the
// monitor distinguishes:
//
//	ctrl  -> heater   mt1, mt2   (subject → subject, exact labels)
//	ctrl  -> sensor   mt*        (subject → subject, wildcard)
//	web   -> ep_cmd   send       (subject → channel, governed by sender)
//	ep_cmd -> ctrl    recv       (channel → subject, governed by receiver)
//	ctrl  -> dev_gpio write      (device edge: not IPC, never monitored)
func testGraph() *polcheck.Graph {
	g := polcheck.NewGraph("test")
	g.AddFlow(polcheck.Subject("ctrl"), polcheck.Subject("heater"), []string{"mt1", "mt2"}, "test")
	g.AddFlow(polcheck.Subject("ctrl"), polcheck.Subject("sensor"), []string{"mt*"}, "test")
	g.AddFlow(polcheck.Subject("web"), polcheck.Channel("ep_cmd"), []string{"send"}, "test")
	g.AddFlow(polcheck.Channel("ep_cmd"), polcheck.Subject("ctrl"), []string{"recv"}, "test")
	g.AddFlow(polcheck.Subject("ctrl"), polcheck.Device("dev_gpio"), []string{"write"}, "test")
	return g
}

func testOrigins() map[string]Origin {
	return map[string]Origin{"web": OriginWeb, "ctrl": OriginOperator}
}

func TestObserveInGraphIsClean(t *testing.T) {
	events := obs.NewEventLog(nil, 0)
	m := New(testGraph(), Options{Events: events, Origins: testOrigins()})
	for _, d := range [][3]string{
		{"ctrl", "heater", "mt1"},
		{"ctrl", "heater", "mt2"},
		{"ctrl", "sensor", "mt7"}, // wildcard cell admits any type
		{"web", "ep_cmd", "send"},
		{"ep_cmd", "ctrl", "recv"},
	} {
		m.Observe(d[0], d[1], d[2])
	}
	st := m.Stats()
	if st.Observed != 5 || st.PolicyDrifts != 0 || st.OriginDrifts != 0 {
		t.Fatalf("stats = %+v, want 5 clean observations", st)
	}
	if n := len(events.Events()); n != 0 {
		t.Fatalf("clean traffic emitted %d events", n)
	}
}

func TestObserveInGraphAllocatesNothing(t *testing.T) {
	// The monitor rides the IPC hot path of every kernel binding; the E4
	// overhead budget only holds if in-graph observation is allocation-free
	// (exact edges and wildcard pairs alike), with a live event log attached.
	m := New(testGraph(), Options{Events: obs.NewEventLog(nil, 0), Origins: testOrigins()})
	for _, d := range [][3]string{
		{"ctrl", "heater", "mt1"},  // exact subject→subject
		{"ctrl", "sensor", "mt9"},  // wildcard pair
		{"web", "ep_cmd", "send"},  // subject→channel
		{"ep_cmd", "ctrl", "recv"}, // channel→subject
	} {
		d := d
		if n := testing.AllocsPerRun(200, func() { m.Observe(d[0], d[1], d[2]) }); n != 0 {
			t.Errorf("Observe(%q, %q, %q) allocates %.1f/op, want 0", d[0], d[1], d[2], n)
		}
	}
}

func TestObservePolicyDrift(t *testing.T) {
	events := obs.NewEventLog(nil, 0)
	m := New(testGraph(), Options{Events: events, Origins: testOrigins()})
	m.Observe("web", "heater", "mt2")  // never certified
	m.Observe("ctrl", "heater", "mt3") // certified pair, uncertified type

	st := m.Stats()
	if st.PolicyDrifts != 2 {
		t.Fatalf("PolicyDrifts = %d, want 2", st.PolicyDrifts)
	}
	evs := events.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	e := evs[0]
	if e.Kind != obs.EventPolicyDrift || e.Mechanism != obs.MechPolicyMonitor {
		t.Fatalf("event = %+v", e)
	}
	if e.Src != "web" || e.Dst != "heater" || e.Detail != "mt2" {
		t.Fatalf("event attribution = %+v", e)
	}
	if e.Denied {
		t.Fatalf("the monitor observes, it does not enforce: %+v", e)
	}
}

func TestObserveNameNormalisation(t *testing.T) {
	// seL4 kernels record thread names ("ctrl.t0") and kernel endpoint names
	// ("cmd.iface"); the graph speaks components and spec objects. Both maps
	// must apply before lookup or every delivery would read as drift.
	m := New(testGraph(), Options{
		SubjectOf:    func(s string) string { base, _, _ := strings.Cut(s, "."); return base },
		ChannelNames: map[string]string{"cmd.iface": "ep_cmd"},
		Origins:      testOrigins(),
	})
	m.Observe("web.t0", "cmd.iface", "send")
	m.Observe("cmd.iface", "ctrl.t1", "recv")
	if st := m.Stats(); st.PolicyDrifts != 0 || st.Observed != 2 {
		t.Fatalf("normalised deliveries drifted: %+v", st)
	}
	// A channel name outside the map passes through unchanged — and misses.
	m.Observe("web.t0", "other.iface", "send")
	if st := m.Stats(); st.PolicyDrifts != 1 {
		t.Fatalf("unmapped channel should miss: %+v", st)
	}
}

func TestDemoteTurnsCertifiedEdgesIntoOriginDrift(t *testing.T) {
	events := obs.NewEventLog(nil, 0)
	m := New(testGraph(), Options{Events: events, Origins: testOrigins()})

	m.Observe("web", "ep_cmd", "send")
	if st := m.Stats(); st.OriginDrifts != 0 {
		t.Fatalf("pre-demotion traffic drifted: %+v", st)
	}

	if !m.Demote("web", OriginUntrusted) {
		t.Fatal("Demote(web, untrusted) refused")
	}
	if o, ok := m.CurrentOrigin("web"); !ok || o != OriginUntrusted {
		t.Fatalf("CurrentOrigin(web) = %v, %v", o, ok)
	}

	// The demoted subject's own certified edge now drifts...
	m.Observe("web", "ep_cmd", "send")
	// ...while edges governed by other subjects stay clean.
	m.Observe("ep_cmd", "ctrl", "recv")
	m.Observe("ctrl", "heater", "mt1")

	st := m.Stats()
	if st.OriginDrifts != 1 || st.PolicyDrifts != 0 || st.Demotions != 1 {
		t.Fatalf("stats = %+v, want exactly one origin drift", st)
	}

	var demoted, drift *obs.SecurityEvent
	for i := range events.Events() {
		e := events.Events()[i]
		switch e.Kind {
		case obs.EventOriginDemoted:
			demoted = &e
		case obs.EventOriginDrift:
			drift = &e
		}
	}
	if demoted == nil || demoted.Src != "web" || !strings.Contains(demoted.Detail, "web -> untrusted") {
		t.Fatalf("demotion event = %+v", demoted)
	}
	if drift == nil || drift.Src != "web" || drift.Dst != "ep_cmd" {
		t.Fatalf("origin-drift event = %+v", drift)
	}
	if !strings.Contains(drift.Detail, "requires origin web") || !strings.Contains(drift.Detail, "web is untrusted") {
		t.Fatalf("origin-drift detail = %q", drift.Detail)
	}
}

func TestDemoteIsMonotone(t *testing.T) {
	m := New(testGraph(), Options{Origins: testOrigins()})
	if m.Demote("ctrl", OriginBoot) {
		t.Fatal("raising operator -> boot must be refused")
	}
	if m.Demote("ctrl", OriginOperator) {
		t.Fatal("demoting to the current label is a no-op")
	}
	if !m.Demote("ctrl", OriginWeb) {
		t.Fatal("operator -> web is a genuine demotion")
	}
	if m.Demote("ctrl", OriginOperator) {
		t.Fatal("re-raising after demotion must be refused")
	}
	if m.Demote("nobody", OriginUntrusted) {
		t.Fatal("unknown subject demoted")
	}
	if _, ok := m.CurrentOrigin("nobody"); ok {
		t.Fatal("unknown subject has an origin")
	}
	if st := m.Stats(); st.Demotions != 1 {
		t.Fatalf("Demotions = %d, want 1", st.Demotions)
	}
}

func TestCheck(t *testing.T) {
	m := New(testGraph(), Options{Origins: testOrigins()})
	if !m.Check("ctrl", "heater", "mt1") || !m.Check("ctrl", "sensor", "mt42") {
		t.Fatal("certified deliveries failed Check")
	}
	if m.Check("web", "heater", "mt1") {
		t.Fatal("uncertified delivery passed Check")
	}
	m.Demote("web", OriginUntrusted)
	if m.Check("web", "ep_cmd", "send") {
		t.Fatal("demoted subject's edge passed Check")
	}
	if !m.Check("ep_cmd", "ctrl", "recv") {
		t.Fatal("receiver-governed edge should be unaffected by web's demotion")
	}
	// Check never emits or counts: it is the enforcement-side predicate.
	if st := m.Stats(); st.Observed != 0 || st.PolicyDrifts != 0 {
		t.Fatalf("Check mutated stats: %+v", st)
	}
}

func TestUnlabelledSubjectsDefaultToBoot(t *testing.T) {
	m := New(testGraph(), Options{}) // no origin map at all
	for _, s := range []string{"ctrl", "heater", "sensor", "web"} {
		if o, ok := m.CurrentOrigin(s); !ok || o != OriginBoot {
			t.Fatalf("CurrentOrigin(%s) = %v, %v, want boot", s, o, ok)
		}
	}
}

func TestNilEventLogStillCounts(t *testing.T) {
	m := New(testGraph(), Options{Origins: testOrigins()})
	m.Observe("web", "heater", "mt1")
	m.Demote("web", OriginUntrusted)
	m.Observe("web", "ep_cmd", "send")
	st := m.Stats()
	if st.Observed != 2 || st.PolicyDrifts != 1 || st.OriginDrifts != 1 || st.Demotions != 1 {
		t.Fatalf("stats with nil event log = %+v", st)
	}
}

func TestNilMonitorStats(t *testing.T) {
	var m *Monitor
	if st := m.Stats(); st != (Stats{}) {
		t.Fatalf("nil monitor stats = %+v", st)
	}
}

func TestOriginString(t *testing.T) {
	for o, want := range map[Origin]string{
		OriginUntrusted: "untrusted",
		OriginWeb:       "web",
		OriginOperator:  "operator",
		OriginBoot:      "boot",
		Origin(9):       "Origin(9)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Origin(%d).String() = %q, want %q", uint8(o), got, want)
		}
	}
}
