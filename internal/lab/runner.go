package lab

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mkbas/internal/attack"
	"mkbas/internal/perf"
)

// Options configures a campaign run.
type Options struct {
	// Workers is the number of boards in flight at once. Zero means
	// GOMAXPROCS. One is the serial reference ordering.
	Workers int
	// Progress, when non-nil, receives one callback per finished case from
	// whichever worker finished it (callers that print must synchronise).
	Progress func(c Case, r *attack.Report)
	// Profiler attaches the host-side performance profiler: each shard books
	// into the "lab.shard" phase (and, with a timeline, a slice on its
	// worker's track), the merge into "lab.merge", and the pool exports
	// utilization and queue-depth gauges. The profile's phase *skeleton*
	// (names, ordering, counts) is a function of the sweep alone; only the
	// timing columns vary with worker count. nil profiles nothing.
	Profiler *perf.Profiler
}

// poolStats instruments one worker pool: in-flight high-water mark, queue
// high-water mark, and per-worker busy time, exported as perf gauges.
type poolStats struct {
	prof     *perf.Profiler
	inflight int64
	maxIn    int64
	maxQ     int64
	busyNs   []int64
}

func newPoolStats(prof *perf.Profiler, workers int) *poolStats {
	return &poolStats{prof: prof, busyNs: make([]int64, workers)}
}

// enter marks one job starting; depth is the queue length observed at
// dequeue time.
func (ps *poolStats) enter(depth int) {
	in := atomic.AddInt64(&ps.inflight, 1)
	atomicMax(&ps.maxIn, in)
	atomicMax(&ps.maxQ, int64(depth))
}

// exit marks one job done, folding its wall time into the worker's account.
func (ps *poolStats) exit(worker int, d time.Duration) {
	atomic.AddInt64(&ps.inflight, -1)
	atomic.AddInt64(&ps.busyNs[worker], int64(d))
}

// export publishes the pool gauges. wallNs is the pool's total wall-clock;
// utilization is the busy share of workers × wall, in percent.
func (ps *poolStats) export(prefix string, wallNs int64) {
	ps.prof.SetGauge(prefix+".workers", int64(len(ps.busyNs)))
	ps.prof.SetGauge(prefix+".max_inflight", atomic.LoadInt64(&ps.maxIn))
	ps.prof.SetGauge(prefix+".queue_high_water", atomic.LoadInt64(&ps.maxQ))
	var busy int64
	for w := range ps.busyNs {
		b := atomic.LoadInt64(&ps.busyNs[w])
		busy += b
		ps.prof.SetGauge(fmt.Sprintf("%s.worker%02d.busy_ns", prefix, w), b)
	}
	if total := int64(len(ps.busyNs)) * wallNs; total > 0 {
		ps.prof.SetGauge(prefix+".utilization_pct", busy*100/total)
	}
}

func atomicMax(addr *int64, v int64) {
	for {
		old := atomic.LoadInt64(addr)
		if v <= old || atomic.CompareAndSwapInt64(addr, old, v) {
			return
		}
	}
}

// ShardResult is one case's outcome, in shard position.
type ShardResult struct {
	Case    Case           `json:"case"`
	Verdict string         `json:"verdict"`
	Report  *attack.Report `json:"report"`
}

// Result is a completed campaign. Its JSON form is a deterministic function
// of the sweep alone: Workers and Elapsed are excluded from marshalling so
// serial and parallel runs of the same sweep produce identical bytes.
type Result struct {
	Sweep  Sweep         `json:"sweep"`
	Cases  []ShardResult `json:"cases"`
	Merged Aggregate     `json:"merged"`
	// Workers and Elapsed describe this particular execution, not the
	// experiment; they are deliberately unmarshalled (the determinism rule).
	Workers int           `json:"-"`
	Elapsed time.Duration `json:"-"`
}

// Run executes every case of the sweep across a pool of opts.Workers
// goroutines. Each case boots a fresh, fully independent virtual board —
// boards never share mutable state, so data-parallelism cannot perturb any
// board's single-threaded determinism (DESIGN §7). Results land in a slice
// indexed by shard; merge order is shard order, never completion order.
//
// A failing case fails the campaign: remaining shards still run, and the
// error of the lowest-numbered failing shard is returned (again independent
// of timing).
func Run(sweep Sweep, opts Options) (*Result, error) {
	if err := sweep.Validate(); err != nil {
		return nil, err
	}
	cases := sweep.Expand()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cases) {
		workers = len(cases)
	}

	start := time.Now()
	reports := make([]*attack.Report, len(cases))
	errs := make([]error, len(cases))
	// The queue is buffered so its length is observable: sampling len(jobs)
	// at each dequeue gives the queue-depth high-water gauge.
	jobs := make(chan int, len(cases))
	pool := newPoolStats(opts.Profiler, workers)
	phShard := opts.Profiler.Phase("lab.shard")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		var track *perf.Track
		if opts.Profiler.TimelineEnabled() {
			track = opts.Profiler.Track(fmt.Sprintf("lab-worker-%02d", w))
		}
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				pool.enter(len(jobs))
				var label string
				if track != nil {
					label = fmt.Sprintf("shard-%02d", i)
				}
				sc := phShard.BeginOn(track, label)
				jobStart := time.Now()
				c := cases[i]
				cfg, err := c.Plant.Scenario()
				if err != nil {
					errs[i] = err
					sc.End()
					pool.exit(w, time.Since(jobStart))
					continue
				}
				spec := c.Spec()
				spec.Profiler = opts.Profiler
				r, err := attack.ExecuteScenario(spec, cfg)
				if err != nil {
					errs[i] = fmt.Errorf("lab: shard %s: %w", c, err)
					sc.End()
					pool.exit(w, time.Since(jobStart))
					continue
				}
				reports[i] = r
				if opts.Progress != nil {
					opts.Progress(c, r)
				}
				sc.End()
				pool.exit(w, time.Since(jobStart))
			}
		}(w)
	}
	for i := range cases {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	pool.export("lab", int64(time.Since(start)))

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Sweep:   sweep.withDefaults(),
		Cases:   make([]ShardResult, len(cases)),
		Workers: workers,
		Elapsed: time.Since(start),
	}
	for i, c := range cases {
		res.Cases[i] = ShardResult{Case: c, Verdict: reports[i].Verdict(), Report: reports[i]}
	}
	msc := opts.Profiler.Phase("lab.merge").Begin()
	res.Merged = aggregate(res.Cases)
	msc.End()
	return res, nil
}
