package building

import (
	"testing"
	"time"

	"mkbas/internal/bacnet"
	"mkbas/internal/bas"
	"mkbas/internal/vnet"
)

// fakeRoomNode is a scripted room on the bus for head-end unit tests: it can
// stay deaf (no listener), accept but never answer, answer polls like a legacy
// BACnet device, or answer with garbage that fails secure-proxy verification.
type fakeRoomNode struct {
	stack *vnet.Stack
	l     *vnet.Listener
	conns []*vnet.Conn
	defs  []*bacnet.Deframer
	mode  string // "silent", "echo", "garbage"
	temp  float64
}

func (n *fakeRoomNode) listen(t *testing.T) {
	t.Helper()
	l, err := n.stack.Listen(bas.BACnetPort)
	if err != nil {
		t.Fatal(err)
	}
	n.l = l
}

// serve runs the room's board phase for one round: accept pending dials, read
// delivered requests, and queue responses per the scripted mode.
func (n *fakeRoomNode) serve() {
	if n.l == nil {
		return
	}
	for {
		c, err := n.stack.Accept(n.l)
		if err != nil {
			break
		}
		n.conns = append(n.conns, c)
		n.defs = append(n.defs, &bacnet.Deframer{})
	}
	for i, c := range n.conns {
		data, err := n.stack.BoardRead(c, 0)
		if err != nil {
			continue
		}
		n.defs[i].Feed(data)
		for {
			raw := n.defs[i].Next()
			if raw == nil {
				break
			}
			switch n.mode {
			case "echo":
				pdu, err := bacnet.DecodePDU(raw)
				if err != nil {
					continue
				}
				resp := bacnet.PDU{
					Type: bacnet.Ack, Device: pdu.Device,
					Object: pdu.Object, InvokeID: pdu.InvokeID,
				}
				if pdu.Type == bacnet.ReadProperty && pdu.Object == bacnet.ObjTemperature {
					resp.Value = n.temp
				}
				_ = n.stack.BoardWrite(c, bacnet.Frame(resp.Encode()))
			case "garbage":
				// Three unverifiable frames per request: enough to trip the
				// default QuarantineLimit in a single harvest.
				for k := 0; k < 3; k++ {
					_ = n.stack.BoardWrite(c, bacnet.Frame([]byte("not-a-sealed-frame")))
				}
			}
		}
	}
}

// headHarness wires one fake room under a head-end with a 1s bus slice.
func headHarness(t *testing.T, secure bool, cfg HeadEndConfig) (*vnet.Bus, *HeadEnd, *fakeRoomNode) {
	t.Helper()
	node := &fakeRoomNode{stack: vnet.NewStack(), mode: "silent", temp: 20}
	bus := vnet.NewBus()
	roomID := bus.AddNode("room00", node.stack)
	headID := bus.AddNode("bms", nil)
	room := &Room{Index: 0, Node: roomID, DeviceID: 1}
	if secure {
		room.Secure = true
		room.Key = []byte("room-key")
	}
	h := newHeadEnd(bus, headID, []*Room{room}, 20, time.Second, cfg)
	return bus, h, node
}

// driveRound runs one lockstep round: board phase, barrier, BMS, barrier.
func driveRound(bus *vnet.Bus, h *HeadEnd, node *fakeRoomNode, round int) {
	node.serve()
	bus.Flush()
	h.OnRound(round, time.Duration(round)*time.Second)
	bus.Flush()
}

func TestHeadEndStaleExactlyAtLimitAndNotSuppressedByWarmup(t *testing.T) {
	// The room accepts polls but never answers: misses accrue one timeout at
	// a time, and the stale flag must flip exactly at StaleLimit — while the
	// building is still deep inside the warm-up window.
	cfg := HeadEndConfig{
		PollPeriod: 2 * time.Second, StaleLimit: 3, TimeoutRounds: 2,
		Warmup: time.Hour,
	}
	bus, h, node := headHarness(t, false, cfg)
	node.listen(t)

	sawBoundary, sawStale := false, false
	for round := 1; round <= 40 && !sawStale; round++ {
		driveRound(bus, h, node, round)
		st := h.RoomStates()[0]
		switch st.Missed {
		case cfg.StaleLimit - 1:
			if st.Stale {
				t.Fatalf("round %d: stale at %d misses, limit is %d", round, st.Missed, cfg.StaleLimit)
			}
			sawBoundary = true
		case cfg.StaleLimit:
			if !st.Stale || !st.Flagged {
				t.Fatalf("round %d: state = %+v, want stale+flagged at the limit", round, st)
			}
			if st.OutOfBand || st.AlarmOn {
				t.Fatalf("round %d: band/alarm flags active during warm-up: %+v", round, st)
			}
			sawStale = true
		}
	}
	if !sawBoundary || !sawStale {
		t.Fatalf("never observed the stale boundary (boundary=%v stale=%v)", sawBoundary, sawStale)
	}
	if !h.Alarm() {
		t.Fatal("building alarm not raised for a stale room during warm-up")
	}
}

func TestHeadEndBackoffCapsThenResetsOnRecovery(t *testing.T) {
	// No listener at all: every dial is refused, so the room goes
	// UNREACHABLE (not merely stale) and its re-poll interval doubles up to
	// the cap. When the room comes back, one verified answer must reset the
	// whole resilience ledger and re-issue the scheduled setpoint.
	cfg := HeadEndConfig{
		PollPeriod: time.Second, StaleLimit: 2, TimeoutRounds: 2,
		BackoffCap: 4 * time.Second, Warmup: time.Hour,
	}
	bus, h, node := headHarness(t, false, cfg)
	okCount := 0
	h.onRoomOK = func(room int) { okCount++ }

	round := 0
	for i := 0; i < 30; i++ {
		round++
		driveRound(bus, h, node, round)
	}
	if h.rooms[0].backoffRounds != h.capRounds {
		t.Fatalf("backoff = %d rounds after a long outage, want cap %d", h.rooms[0].backoffRounds, h.capRounds)
	}
	st := h.RoomStates()[0]
	if !st.Unreachable || st.UnreachableRounds == 0 {
		t.Fatalf("state after refused dials = %+v, want unreachable", st)
	}
	if st.Stale != (st.Missed >= cfg.StaleLimit) {
		t.Fatalf("stale bookkeeping inconsistent: %+v", st)
	}
	if okCount != 0 {
		t.Fatalf("onRoomOK fired %d times with no listener", okCount)
	}

	// The room returns.
	node.listen(t)
	node.mode = "echo"
	node.temp = 21
	for i := 0; i < 10; i++ {
		round++
		driveRound(bus, h, node, round)
	}
	st = h.RoomStates()[0]
	if st.Unreachable || st.Stale || st.Missed != 0 {
		t.Fatalf("state after recovery = %+v", st)
	}
	if !st.HaveTemp || st.Temp != 21 {
		t.Fatalf("recovered temp = %+v", st)
	}
	if h.rooms[0].backoffRounds != h.pollRounds {
		t.Fatalf("backoff = %d rounds after recovery, want reset to %d", h.rooms[0].backoffRounds, h.pollRounds)
	}
	if h.rooms[0].refusedStreak != 0 {
		t.Fatalf("refused streak = %d after recovery", h.rooms[0].refusedStreak)
	}
	// The room was out through at least one schedule-free period, so the
	// head-end must have re-issued the current setpoint (re-convergence).
	if h.writesSent == 0 {
		t.Fatal("no re-convergence write after the room returned from an outage")
	}
	if okCount == 0 {
		t.Fatal("onRoomOK never fired after recovery")
	}
}

func TestHeadEndQuarantinesRoomOnUnverifiableResponses(t *testing.T) {
	// A secure room that answers with frames failing proxy verification is a
	// compromised path: after QuarantineLimit bad frames the head-end must
	// stop soliciting it entirely.
	cfg := HeadEndConfig{
		PollPeriod: time.Second, QuarantineLimit: 3, Warmup: time.Hour,
	}
	bus, h, node := headHarness(t, true, cfg)
	node.listen(t)
	node.mode = "garbage"
	quarantined := -1
	h.onQuarantine = func(room int) { quarantined = room }

	round := 0
	for i := 0; i < 10; i++ {
		round++
		driveRound(bus, h, node, round)
	}
	st := h.RoomStates()[0]
	if !st.Quarantined || !st.Flagged {
		t.Fatalf("state = %+v, want quarantined+flagged", st)
	}
	if quarantined != 0 {
		t.Fatalf("onQuarantine room = %d, want 0", quarantined)
	}
	if h.quarantines != 1 {
		t.Fatalf("quarantine count = %d, want 1", h.quarantines)
	}

	// Quarantine is terminal: no further polls or writes go to the room.
	polls, writes := h.pollsSent, h.writesSent
	for i := 0; i < 10; i++ {
		round++
		driveRound(bus, h, node, round)
	}
	if h.pollsSent != polls || h.writesSent != writes {
		t.Fatalf("traffic to a quarantined room: polls %d→%d writes %d→%d",
			polls, h.pollsSent, writes, h.writesSent)
	}
	if !h.Alarm() {
		t.Fatal("building alarm not raised for a quarantined room")
	}
}
