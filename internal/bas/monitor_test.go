package bas

import (
	"testing"
	"time"

	"mkbas/internal/obs"
)

// Experiment E12's deployment-level acceptance: the online policy monitor
// attaches to all three kernel bindings, stays silent on certified traffic,
// and flags an injected out-of-graph IPC in the same virtual tick it is
// recorded — the observer runs synchronously inside the kernel's record
// path, so detection latency is zero by construction and these tests pin
// that construction.

func monitoredPlatforms() []Platform {
	return []Platform{PlatformMinix, PlatformSel4, PlatformLinux}
}

func TestMonitorCleanOnCertifiedTraffic(t *testing.T) {
	for _, p := range monitoredPlatforms() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := DefaultScenario()
			tb := NewTestbed(cfg)
			defer tb.Machine.Shutdown()
			dep, err := Deploy(p, tb, cfg, DeployOptions{Monitor: true})
			if err != nil {
				t.Fatalf("deploy: %v", err)
			}
			dep.Run(30 * time.Minute)
			st := dep.PolicyMonitor().Stats()
			if st.Observed == 0 {
				t.Fatal("monitor observed no deliveries in 30 minutes of closed-loop traffic")
			}
			if st.PolicyDrifts != 0 || st.OriginDrifts != 0 {
				t.Fatalf("certified traffic drifted: %+v", st)
			}
			for _, e := range tb.Machine.Obs().Events().Events() {
				if e.Kind == obs.EventPolicyDrift || e.Kind == obs.EventOriginDrift {
					t.Fatalf("drift event on certified traffic: %+v", e)
				}
			}
		})
	}
}

func TestMonitorFlagsInjectedIPCWithinOneTick(t *testing.T) {
	// The injection goes through machine.IPCLog.Record — the single funnel
	// all three kernels report deliveries through — at a scheduled virtual
	// instant, mid-run, with the scenario's own traffic flowing around it.
	const injectAt = 10 * time.Minute
	for _, p := range monitoredPlatforms() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := DefaultScenario()
			tb := NewTestbed(cfg)
			defer tb.Machine.Shutdown()
			dep, err := Deploy(p, tb, cfg, DeployOptions{Monitor: true})
			if err != nil {
				t.Fatalf("deploy: %v", err)
			}

			var drifts []obs.SecurityEvent
			cancel := tb.Machine.Obs().Events().Subscribe(func(e obs.SecurityEvent) {
				if e.Kind == obs.EventPolicyDrift {
					drifts = append(drifts, e)
				}
			})
			defer cancel()

			tb.Machine.Clock().After(injectAt, func() {
				tb.Machine.IPC().Record("intruder", "nowhere", "mt63")
			})
			dep.Run(20 * time.Minute)

			if len(drifts) != 1 {
				t.Fatalf("got %d policy-drift events, want exactly the injected one: %+v", len(drifts), drifts)
			}
			e := drifts[0]
			if e.At != obs.Time(injectAt) {
				t.Fatalf("drift flagged at %v, injected at %v: not the same tick", e.At, obs.Time(injectAt))
			}
			if e.Src != "intruder" || e.Dst != "nowhere" || e.Detail != "mt63" {
				t.Fatalf("drift attribution = %+v", e)
			}
			if e.Mechanism != obs.MechPolicyMonitor {
				t.Fatalf("drift mechanism = %q", e.Mechanism)
			}
			if st := dep.PolicyMonitor().Stats(); st.PolicyDrifts != 1 {
				t.Fatalf("stats = %+v, want PolicyDrifts 1", st)
			}
		})
	}
}

func TestMonitorOffByDefault(t *testing.T) {
	cfg := DefaultScenario()
	tb := NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	dep, err := Deploy(PlatformMinix, tb, cfg, DeployOptions{})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if dep.PolicyMonitor() != nil {
		t.Fatal("monitor attached without DeployOptions.Monitor")
	}
	// The nil monitor's Stats must still be callable (orchestration layers
	// read it unconditionally).
	if st := dep.PolicyMonitor().Stats(); st.Observed != 0 {
		t.Fatalf("nil monitor stats = %+v", st)
	}
}
