package lab

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mkbas/internal/attack"
)

// Options configures a campaign run.
type Options struct {
	// Workers is the number of boards in flight at once. Zero means
	// GOMAXPROCS. One is the serial reference ordering.
	Workers int
	// Progress, when non-nil, receives one callback per finished case from
	// whichever worker finished it (callers that print must synchronise).
	Progress func(c Case, r *attack.Report)
}

// ShardResult is one case's outcome, in shard position.
type ShardResult struct {
	Case    Case           `json:"case"`
	Verdict string         `json:"verdict"`
	Report  *attack.Report `json:"report"`
}

// Result is a completed campaign. Its JSON form is a deterministic function
// of the sweep alone: Workers and Elapsed are excluded from marshalling so
// serial and parallel runs of the same sweep produce identical bytes.
type Result struct {
	Sweep  Sweep         `json:"sweep"`
	Cases  []ShardResult `json:"cases"`
	Merged Aggregate     `json:"merged"`
	// Workers and Elapsed describe this particular execution, not the
	// experiment; they are deliberately unmarshalled (the determinism rule).
	Workers int           `json:"-"`
	Elapsed time.Duration `json:"-"`
}

// Run executes every case of the sweep across a pool of opts.Workers
// goroutines. Each case boots a fresh, fully independent virtual board —
// boards never share mutable state, so data-parallelism cannot perturb any
// board's single-threaded determinism (DESIGN §7). Results land in a slice
// indexed by shard; merge order is shard order, never completion order.
//
// A failing case fails the campaign: remaining shards still run, and the
// error of the lowest-numbered failing shard is returned (again independent
// of timing).
func Run(sweep Sweep, opts Options) (*Result, error) {
	if err := sweep.Validate(); err != nil {
		return nil, err
	}
	cases := sweep.Expand()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cases) {
		workers = len(cases)
	}

	start := time.Now()
	reports := make([]*attack.Report, len(cases))
	errs := make([]error, len(cases))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				c := cases[i]
				cfg, err := c.Plant.Scenario()
				if err != nil {
					errs[i] = err
					continue
				}
				r, err := attack.ExecuteScenario(c.Spec(), cfg)
				if err != nil {
					errs[i] = fmt.Errorf("lab: shard %s: %w", c, err)
					continue
				}
				reports[i] = r
				if opts.Progress != nil {
					opts.Progress(c, r)
				}
			}
		}()
	}
	for i := range cases {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Sweep:   sweep.withDefaults(),
		Cases:   make([]ShardResult, len(cases)),
		Workers: workers,
		Elapsed: time.Since(start),
	}
	for i, c := range cases {
		res.Cases[i] = ShardResult{Case: c, Verdict: reports[i].Verdict(), Report: reports[i]}
	}
	res.Merged = aggregate(res.Cases)
	return res, nil
}
