package mkbas

// Allocation-regression gate for experiment E4: the IPC round-trip hot
// paths of all three platform kernels must run allocation-free at steady
// state. The benchmarks report allocs/op too, but benchmarks only run when
// someone asks; this test makes a regression (a value boxed into the trap
// `any`, a queue idiom that burns capacity, a payload copy that escapes)
// fail `go test ./...` directly.

import (
	"fmt"
	"testing"
	"time"

	"mkbas/internal/linuxsim"
	"mkbas/internal/machine"
)

// runZeroAlloc drives an E4 pair to steady state, then measures the
// allocations of further round trips.
func runZeroAlloc(t *testing.T, build func(testing.TB) (*machine.Machine, *int64)) {
	t.Helper()
	m, rounds := build(t)
	defer m.Shutdown()
	// Warm up past boot and the first deliveries: queues, rings, and the
	// payload-buffer pools grow to their steady-state capacity here.
	for *rounds < 64 {
		m.Run(time.Second)
	}
	allocs := testing.AllocsPerRun(50, func() {
		goal := *rounds + 8
		for *rounds < goal {
			m.Run(50 * time.Microsecond)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state round trips allocated %.1f times per 8-round slice, want 0", allocs)
	}
}

func TestE4RoundTripZeroAlloc(t *testing.T) {
	cases := []struct {
		name  string
		build func(testing.TB) (*machine.Machine, *int64)
	}{
		{"minix-sendrec", minixRoundTrips},
		{"sel4-call", sel4RoundTrips},
		{"linux-mq", linuxRoundTrips},
		{"minix-device", minixDeviceService},
		{"sel4-device", sel4DeviceService},
		{"linux-device", linuxDeviceService},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runZeroAlloc(t, tc.build) })
	}
}

// The linuxsim payload pool hands each receiver the kernel's pooled copy,
// valid until that process's next receive. This test runs an echo pair
// where every message carries a distinct payload and the client verifies
// each echo byte-for-byte — a pool bug that aliased a live buffer or
// recycled one too early would corrupt an observed payload.
func TestLinuxMQPooledPayloadIntegrity(t *testing.T) {
	m := machine.New(machine.Config{})
	defer m.Shutdown()
	k := linuxsim.Boot(m, linuxsim.Config{})
	rounds := new(int64)
	var failure error
	k.RegisterImage(linuxsim.Image{Name: "server", UID: 1, Priority: 7, Body: func(api *linuxsim.API) {
		req, err := api.MQOpen("/req", linuxsim.MQOpenFlags{Create: true, Read: true, Mode: 0o600})
		if err != nil {
			return
		}
		resp, err := api.MQOpen("/resp", linuxsim.MQOpenFlags{Create: true, Write: true, Mode: 0o600})
		if err != nil {
			return
		}
		buf := make([]byte, 0, 32)
		for {
			msg, err := api.MQReceive(req)
			if err != nil {
				return
			}
			// msg.Data is valid until the next MQReceive; we copy, mark, and
			// send before receiving again.
			buf = append(buf[:0], msg.Data...)
			buf = append(buf, '!')
			if err := api.MQSend(resp, buf, 0); err != nil {
				return
			}
		}
	}})
	k.RegisterImage(linuxsim.Image{Name: "client", UID: 1, Priority: 7, Body: func(api *linuxsim.API) {
		var req, resp int32
		for {
			var err error
			if req, err = api.MQOpen("/req", linuxsim.MQOpenFlags{Write: true}); err == nil {
				break
			}
			api.Sleep(time.Millisecond)
		}
		for {
			var err error
			if resp, err = api.MQOpen("/resp", linuxsim.MQOpenFlags{Read: true}); err == nil {
				break
			}
			api.Sleep(time.Millisecond)
		}
		buf := make([]byte, 0, 32)
		for i := 0; ; i++ {
			buf = fmt.Appendf(buf[:0], "m%03d", i%1000)
			if err := api.MQSend(req, buf, 0); err != nil {
				return
			}
			msg, err := api.MQReceive(resp)
			if err != nil {
				return
			}
			if want := string(buf) + "!"; string(msg.Data) != want {
				failure = fmt.Errorf("round %d: got %q, want %q", i, msg.Data, want)
				return
			}
			*rounds++
		}
	}})
	if _, err := k.SpawnImage("server"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.SpawnImage("client"); err != nil {
		t.Fatal(err)
	}
	for *rounds < 256 && failure == nil {
		m.Run(time.Second)
	}
	if failure != nil {
		t.Fatal(failure)
	}
}
