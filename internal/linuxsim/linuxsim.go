// Package linuxsim simulates the paper's comparison platform: a monolithic
// Unix-like kernel (Section IV-C) running the same five-process scenario
// over POSIX message queues.
//
// The simulation keeps exactly the properties the paper's attacks exploit:
//
//   - IPC objects (message queues) live in a kernel namespace guarded only
//     by discretionary access control: owner uid/gid and a permission mode.
//     Any process that passes the DAC check can open any queue for reading
//     or writing — there is no notion of per-pair, per-message-type policy;
//   - messages carry whatever the sender wrote; there is no kernel-stamped
//     sender identity, so a process with write access to a queue can
//     impersonate anyone (the spoofing attack);
//   - credentials are per-process uid/gid, and uid 0 bypasses every DAC
//     check ("these monolithic systems have few techniques to restrain a
//     process with root privilege");
//   - kill(2) is permitted for same-uid targets and unrestricted for root,
//     so a root-compromised web interface can destroy the control process;
//   - fork is unrestricted (no quota surface at all).
//
// Device registers are exposed as device files with owner/mode, mirroring
// /dev nodes.
package linuxsim

import (
	"errors"
	"fmt"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/obs"
	"mkbas/internal/vnet"
)

// Errors.
var (
	// ErrPerm is EPERM/EACCES: a DAC check failed.
	ErrPerm = errors.New("linuxsim: permission denied")
	// ErrNoEnt is ENOENT: missing queue, device, or process.
	ErrNoEnt = errors.New("linuxsim: no such object")
	// ErrExist is EEXIST: exclusive create of an existing queue.
	ErrExist = errors.New("linuxsim: already exists")
	// ErrBadFD is EBADF: bad descriptor or wrong access mode.
	ErrBadFD = errors.New("linuxsim: bad file descriptor")
	// ErrAgain is EAGAIN: non-blocking operation would block.
	ErrAgain = errors.New("linuxsim: resource temporarily unavailable")
	// ErrUnknownImage reports exec of an unregistered binary.
	ErrUnknownImage = errors.New("linuxsim: unknown process image")
	// ErrTimeout is ETIMEDOUT: a timed receive expired.
	ErrTimeout = errors.New("linuxsim: timed out")
)

// Signals. Only termination signals are modelled.
const (
	SIGTERM = 15
	SIGKILL = 9
)

// Mode is a Unix permission mode (rw bits only; execute is meaningless
// here).
type Mode uint16

// Permission bit helpers.
const (
	ModeUserRead   Mode = 0o400
	ModeUserWrite  Mode = 0o200
	ModeGroupRead  Mode = 0o040
	ModeGroupWrite Mode = 0o020
	ModeOtherRead  Mode = 0o004
	ModeOtherWrite Mode = 0o002
)

// MQMsg is one POSIX message with its priority.
type MQMsg struct {
	Data []byte
	Prio uint32
}

// mqueue is one kernel message-queue object.
type mqueue struct {
	name     string
	ownerUID int
	ownerGID int
	mode     Mode
	maxMsgs  int
	msgs     []MQMsg

	readers []machine.PID // blocked in mq_receive
	writers []blockedWriter

	// depth is the queue's exported depth gauge, labelled by queue name.
	depth *obs.Gauge
}

type blockedWriter struct {
	pid machine.PID
	msg MQMsg
}

// devFile is a /dev node fronting a bus device.
type devFile struct {
	dev      machine.DeviceID
	ownerUID int
	ownerGID int
	mode     Mode
}

// fd is one file-descriptor table entry.
type fd struct {
	q        *mqueue
	canRead  bool
	canWrite bool
	nonblock bool
}

// proc is the kernel's process record.
type proc struct {
	pid     machine.PID
	unixPID int
	name    string
	uid     int
	gid     int

	fds    map[int32]*fd
	nextFD int32

	phase     procPhase
	waitToken uint64

	// span is the open mq_send/mq_receive span while blocked on a queue.
	span obs.SpanID

	listeners map[int32]*vnet.Listener
	conns     map[int32]*vnet.Conn

	// Reply scratch for the hot trap paths. The engine serialises all
	// kernel work and a blocked process receives at most one wake-up value,
	// so boxing pointers to these per-process values costs no allocation.
	errR errReply
	msgR msgReply
	u32R u32Reply

	// lastMQBuf is the payload buffer of the most recent message delivered
	// to this process; it is recycled into the kernel's pool on the next
	// delivery (a received MQMsg's Data is valid until then).
	lastMQBuf []byte
}

// errOut fills the process's error reply scratch and returns it boxed.
func (p *proc) errOut(err error) any {
	p.errR = errReply{err: err}
	return &p.errR
}

// msgErr fills the process's message reply scratch with an error and
// returns it boxed (no delivery, so no buffer recycling).
func (p *proc) msgErr(err error) any {
	p.msgR = msgReply{err: err}
	return &p.msgR
}

// u32Out fills the process's u32 reply scratch and returns it boxed.
func (p *proc) u32Out(v uint32, err error) any {
	p.u32R = u32Reply{value: v, err: err}
	return &p.u32R
}

type procPhase int

const (
	phaseIdle procPhase = iota
	phaseMQRecv
	phaseMQSend
	phaseSleeping
	phaseNet
)

// Image is a loadable binary: body plus credentials.
type Image struct {
	Name     string
	Body     func(api *API)
	UID      int
	GID      int
	Priority int
}

// Config parameterises the kernel.
type Config struct {
	// Net is the board network stack; nil boards have no network. Unlike the
	// microkernels, any process may use it (Linux DAC does not gate socket
	// creation for unprivileged ports).
	Net *vnet.Stack
	// DefaultMaxMsgs bounds queue depth when mq_open does not specify;
	// zero means 10, the Linux default.
	DefaultMaxMsgs int
	// MaxProcs models RLIMIT_NPROC-style process-count pressure: spawns
	// beyond it fail with ErrAgain. Zero means 1024. Note this is a global
	// resource limit, not a per-subject quota — a fork bomb still crowds
	// out everyone else, which is the paper's point.
	MaxProcs int
}

// Stats counts kernel events.
type Stats struct {
	MQSends    int64
	MQReceives int64
	DACDenied  int64
	Kills      int64
	Forks      int64
}

// Kernel is the monolithic kernel simulator.
type Kernel struct {
	m   *machine.Machine
	cfg Config

	images  map[string]Image
	procs   map[machine.PID]*proc
	byUnix  map[int]*proc
	mqs     map[string]*mqueue
	devs    map[machine.DeviceID]*devFile
	nextPID int

	// spawnCounts tallies spawns per image name, so supervision layers can
	// report restarts (spawns beyond the first).
	spawnCounts map[string]int

	// ipcFault, when set, is consulted on every mq_send with the sender's
	// process name and the queue name; it may drop the message or delay its
	// delivery (fault injection).
	ipcFault func(src, queue string) (drop bool, delay time.Duration)

	stats Stats

	// bufPool recycles message payload buffers: mq_send copies the payload
	// into a pooled buffer, and the copy is returned to the pool when the
	// receiving process performs its next mq_receive (see deliverMsg).
	bufPool [][]byte

	// Observability hooks, resolved once at boot.
	reg        *obs.Registry
	tracer     *obs.Tracer
	events     *obs.EventLog
	mSendsC    *obs.Counter
	mRecvsC    *obs.Counter
	mDACDenied *obs.Counter
	mKills     *obs.Counter
	mForks     *obs.Counter
	mMQWaitNs  *obs.Histogram
}

var _ machine.TrapHandler = (*Kernel)(nil)

// Boot installs the kernel on a board.
func Boot(m *machine.Machine, cfg Config) *Kernel {
	if cfg.DefaultMaxMsgs == 0 {
		cfg.DefaultMaxMsgs = 10
	}
	if cfg.MaxProcs == 0 {
		cfg.MaxProcs = 1024
	}
	k := &Kernel{
		m:           m,
		cfg:         cfg,
		images:      make(map[string]Image),
		procs:       make(map[machine.PID]*proc),
		byUnix:      make(map[int]*proc),
		mqs:         make(map[string]*mqueue),
		devs:        make(map[machine.DeviceID]*devFile),
		spawnCounts: make(map[string]int),
		nextPID:     100,
	}
	board := m.Obs()
	board.Events().SetPlatform("linux")
	k.reg = board.Metrics()
	k.tracer = board.Tracer()
	k.events = board.Events()
	k.mSendsC = k.reg.Counter("linux_mq_send_total")
	k.mRecvsC = k.reg.Counter("linux_mq_receive_total")
	k.mDACDenied = k.reg.Counter("linux_dac_denied_total")
	k.mKills = k.reg.Counter("linux_kills_total")
	k.mForks = k.reg.Counter("linux_forks_total")
	k.mMQWaitNs = k.reg.Histogram("linux_mq_wait_ns", nil)
	m.Engine().SetHandler(k)
	return k
}

// dacDeny books one DAC denial on the counters and the security-event
// stream.
func (k *Kernel) dacDeny(kind obs.EventKind, src, dst, detail string) {
	k.stats.DACDenied++
	k.mDACDenied.Inc()
	k.events.Emit(obs.SecurityEvent{
		Kind:      kind,
		Mechanism: obs.MechDAC,
		Denied:    true,
		Src:       src,
		Dst:       dst,
		Detail:    detail,
	})
}

// endSpan closes p's open queue span, observing the wait on delivery.
func (k *Kernel) endSpan(p *proc, outcome obs.Outcome) {
	if p.span == 0 {
		return
	}
	s, ok := k.tracer.End(p.span, outcome)
	p.span = 0
	if ok && outcome == obs.OutcomeDelivered {
		k.mMQWaitNs.Observe(time.Duration(s.Duration()))
	}
}

// Stats returns a snapshot of kernel counters.
func (k *Kernel) Stats() Stats { return k.stats }

// Machine returns the underlying board.
func (k *Kernel) Machine() *machine.Machine { return k.m }

// RegisterImage adds a binary to the image registry.
func (k *Kernel) RegisterImage(img Image) {
	if img.Name == "" || img.Body == nil {
		panic("linuxsim: image needs a name and a body")
	}
	if _, dup := k.images[img.Name]; dup {
		panic(fmt.Sprintf("linuxsim: image %q registered twice", img.Name))
	}
	k.images[img.Name] = img
}

// RegisterDeviceFile creates a /dev node for a bus device.
func (k *Kernel) RegisterDeviceFile(dev machine.DeviceID, ownerUID, ownerGID int, mode Mode) {
	k.devs[dev] = &devFile{dev: dev, ownerUID: ownerUID, ownerGID: ownerGID, mode: mode}
}

// SpawnImage starts a registered image (the boot/loader path).
func (k *Kernel) SpawnImage(image string) (int, error) {
	img, ok := k.images[image]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownImage, image)
	}
	return k.spawn(img)
}

func (k *Kernel) spawn(img Image) (int, error) {
	if len(k.procs) >= k.cfg.MaxProcs {
		k.events.Emit(obs.SecurityEvent{
			Kind:      obs.EventForkDenied,
			Mechanism: obs.MechKernel,
			Denied:    true,
			Src:       img.Name,
			Detail:    fmt.Sprintf("process limit %d reached", k.cfg.MaxProcs),
		})
		return 0, fmt.Errorf("%w: process limit %d reached", ErrAgain, k.cfg.MaxProcs)
	}
	p := &proc{
		name:      img.Name,
		uid:       img.UID,
		gid:       img.GID,
		unixPID:   k.nextPID,
		fds:       make(map[int32]*fd),
		listeners: make(map[int32]*vnet.Listener),
		conns:     make(map[int32]*vnet.Conn),
	}
	k.nextPID++
	body := img.Body
	mp, err := k.m.Engine().Spawn(img.Name, img.Priority, func(ctx *machine.Context) {
		body(&API{ctx: ctx})
	})
	if err != nil {
		return 0, fmt.Errorf("linuxsim: spawning %q: %w", img.Name, err)
	}
	p.pid = mp.PID()
	k.procs[p.pid] = p
	k.byUnix[p.unixPID] = p
	k.spawnCounts[img.Name]++
	k.stats.Forks++
	k.mForks.Inc()
	k.m.Trace().Logf("linux", "spawn %s pid=%d uid=%d", img.Name, p.unixPID, p.uid)
	return p.unixPID, nil
}

// SpawnCount reports how many times an image has been spawned on this boot;
// restarts are spawns beyond the first.
func (k *Kernel) SpawnCount(image string) int { return k.spawnCounts[image] }

// SetIPCFault installs (or, with nil, removes) the mq_send fault filter.
func (k *Kernel) SetIPCFault(fn func(src, queue string) (drop bool, delay time.Duration)) {
	k.ipcFault = fn
}

// faultFor consults the fault filter.
func (k *Kernel) faultFor(src, queue string) (bool, time.Duration) {
	if k.ipcFault == nil {
		return false, 0
	}
	return k.ipcFault(src, queue)
}

// CrashProcess kills a live process by image name (fault injection). On
// vanilla Linux nothing watches for the exit — that absence is the point of
// the chaos comparison.
func (k *Kernel) CrashProcess(name string) error {
	victim := -1
	for unixPID, p := range k.byUnix {
		if p.name == name && (victim == -1 || unixPID < victim) {
			victim = unixPID
		}
	}
	if victim == -1 {
		return fmt.Errorf("%w: process %q", ErrNoEnt, name)
	}
	p := k.byUnix[victim]
	k.m.Trace().Logf("linux", "FAULT-INJECT kill %s pid=%d", p.name, p.unixPID)
	return k.m.Engine().Kill(p.pid)
}

// GrantRoot elevates a process to uid 0, modelling the paper's assumed
// privilege-escalation exploit ("we also assume the web interface process
// has root privilege gained through a privilege escalation exploit"). The
// harness calls it between run slices.
func (k *Kernel) GrantRoot(unixPID int) error {
	p, ok := k.byUnix[unixPID]
	if !ok {
		return fmt.Errorf("%w: pid %d", ErrNoEnt, unixPID)
	}
	k.m.Trace().Logf("linux", "privilege escalation: %s (pid %d) is now root", p.name, p.unixPID)
	p.uid = 0
	p.gid = 0
	return nil
}

// UIDOf reports a process's current uid.
func (k *Kernel) UIDOf(unixPID int) (int, error) {
	p, ok := k.byUnix[unixPID]
	if !ok {
		return 0, fmt.Errorf("%w: pid %d", ErrNoEnt, unixPID)
	}
	return p.uid, nil
}

// Alive reports whether a unix pid is live.
func (k *Kernel) Alive(unixPID int) bool {
	_, ok := k.byUnix[unixPID]
	return ok
}

// PIDOf finds a live process's unix pid by image name.
func (k *Kernel) PIDOf(name string) (int, error) {
	for _, p := range k.procs {
		if p.name == name {
			return p.unixPID, nil
		}
	}
	return 0, fmt.Errorf("%w: process %q", ErrNoEnt, name)
}

// Queue inspection for experiments.

// QueueDepth reports the number of queued messages, or an error if the
// queue does not exist.
func (k *Kernel) QueueDepth(name string) (int, error) {
	q, ok := k.mqs[name]
	if !ok {
		return 0, fmt.Errorf("%w: queue %q", ErrNoEnt, name)
	}
	return len(q.msgs), nil
}

// Allowed exposes the kernel's DAC predicate so the static policy analyzer
// (internal/polcheck) answers permission questions with exactly the code the
// kernel runs, rather than a reimplementation that could drift.
func Allowed(uid, gid int, ownerUID, ownerGID int, mode Mode, wantRead, wantWrite bool) bool {
	return allowed(uid, gid, ownerUID, ownerGID, mode, wantRead, wantWrite)
}

// allowed implements the DAC check: root bypasses everything; otherwise the
// owner, group, and other bit classes apply in order.
func allowed(uid, gid int, ownerUID, ownerGID int, mode Mode, wantRead, wantWrite bool) bool {
	if uid == 0 {
		return true
	}
	var readBit, writeBit Mode
	switch {
	case uid == ownerUID:
		readBit, writeBit = ModeUserRead, ModeUserWrite
	case gid == ownerGID:
		readBit, writeBit = ModeGroupRead, ModeGroupWrite
	default:
		readBit, writeBit = ModeOtherRead, ModeOtherWrite
	}
	if wantRead && mode&readBit == 0 {
		return false
	}
	if wantWrite && mode&writeBit == 0 {
		return false
	}
	return true
}

func (k *Kernel) procOf(pid machine.PID) *proc {
	p, ok := k.procs[pid]
	if !ok {
		panic(fmt.Sprintf("linuxsim: trap from unknown pid %d", pid))
	}
	return p
}
