package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// SpanStats summarises the tracer for a report.
type SpanStats struct {
	Completed int64          `json:"completed"`
	Open      int            `json:"open"`
	Dropped   int64          `json:"dropped"`
	ByOutcome []OutcomeCount `json:"by_outcome,omitempty"`
}

// Report is the exportable snapshot of one board's observability state.
// Every collection is sorted, every timestamp virtual, so marshalling the
// same simulation twice yields identical bytes.
type Report struct {
	Platform    string          `json:"platform"`
	At          Time            `json:"at_ns"`
	Counters    []CounterSnap   `json:"counters"`
	Gauges      []GaugeSnap     `json:"gauges,omitempty"`
	Histograms  []HistogramSnap `json:"histograms"`
	Spans       SpanStats       `json:"spans"`
	EventTotals []EventTotal    `json:"event_totals"`
	Events      []SecurityEvent `json:"events,omitempty"`
}

// Report snapshots the board. includeEvents controls whether the retained
// event ring is embedded (totals are always included).
func (b *Board) Report(platform string, includeEvents bool) *Report {
	r := &Report{
		Platform:   platform,
		At:         b.now(),
		Counters:   b.metrics.Counters(),
		Gauges:     b.metrics.Gauges(),
		Histograms: b.metrics.Histograms(),
		Spans: SpanStats{
			Completed: b.tracer.Completed(),
			Open:      b.tracer.OpenCount(),
			Dropped:   b.tracer.Dropped(),
			ByOutcome: b.tracer.ByOutcome(),
		},
		EventTotals: b.events.Totals(),
	}
	if includeEvents {
		r.Events = b.events.Events()
		if r.Events == nil {
			r.Events = []SecurityEvent{}
		}
	}
	return r
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Text renders the report as a human-readable summary.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== observability report: %s at %s ==\n", r.Platform, r.At)
	fmt.Fprintf(&b, "counters (%d):\n", len(r.Counters))
	for _, c := range r.Counters {
		fmt.Fprintf(&b, "  %-46s %d\n", c.Name, c.Value)
	}
	if len(r.Gauges) > 0 {
		fmt.Fprintf(&b, "gauges (%d):\n", len(r.Gauges))
		for _, g := range r.Gauges {
			fmt.Fprintf(&b, "  %-46s %d\n", g.Name, g.Value)
		}
	}
	fmt.Fprintf(&b, "histograms (%d):\n", len(r.Histograms))
	for _, h := range r.Histograms {
		mean := time.Duration(0)
		if h.Count > 0 {
			mean = time.Duration(h.SumNanos / h.Count)
		}
		if h.Count > 0 {
			fmt.Fprintf(&b, "  %s: n=%d mean=%s p50=%s p95=%s p99=%s\n", h.Name, h.Count, mean,
				time.Duration(h.P50Ns), time.Duration(h.P95Ns), time.Duration(h.P99Ns))
		} else {
			fmt.Fprintf(&b, "  %s: n=%d mean=%s\n", h.Name, h.Count, mean)
		}
		for _, bk := range h.Buckets {
			if bk.Count == 0 {
				continue
			}
			if bk.UpperNanos == 0 {
				fmt.Fprintf(&b, "    le +Inf%-38s %d\n", "", bk.Count)
			} else {
				fmt.Fprintf(&b, "    le %-42s %d\n", time.Duration(bk.UpperNanos), bk.Count)
			}
		}
	}
	fmt.Fprintf(&b, "spans: completed=%d open=%d dropped=%d\n",
		r.Spans.Completed, r.Spans.Open, r.Spans.Dropped)
	for _, oc := range r.Spans.ByOutcome {
		fmt.Fprintf(&b, "  %-46s %d\n", oc.Outcome, oc.Count)
	}
	fmt.Fprintf(&b, "security events (%d kinds):\n", len(r.EventTotals))
	for _, t := range r.EventTotals {
		verdict := "allowed"
		if t.Denied {
			verdict = "DENIED"
		}
		fmt.Fprintf(&b, "  %-18s by %-14s %-8s %d\n", t.Kind, t.Mechanism, verdict, t.Count)
	}
	for _, e := range r.Events {
		fmt.Fprintf(&b, "  [%s] %s\n", e.At, e)
	}
	return b.String()
}

// String renders one event compactly: "kind src->dst via mechanism
// (detail)". The timestamp is left to the caller.
func (e SecurityEvent) String() string {
	var b strings.Builder
	b.WriteString(string(e.Kind))
	if e.Denied {
		b.WriteString(" DENIED")
	}
	b.WriteString(" ")
	b.WriteString(e.Src)
	if e.Dst != "" {
		b.WriteString("->")
		b.WriteString(e.Dst)
	}
	b.WriteString(" via ")
	b.WriteString(string(e.Mechanism))
	if e.Detail != "" {
		b.WriteString(" (")
		b.WriteString(e.Detail)
		b.WriteString(")")
	}
	return b.String()
}
