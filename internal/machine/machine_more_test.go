package machine

import (
	"testing"
	"time"
)

func TestCostModelChargesVirtualTime(t *testing.T) {
	m := New(Config{Costs: Costs{Trap: time.Millisecond, Switch: 10 * time.Millisecond}})
	newToyKernel(m.Engine())
	defer m.Shutdown()
	mustSpawn(t, m.Engine(), "p", 7, func(ctx *Context) {
		for i := 0; i < 5; i++ {
			ctx.Trap(yieldReq{})
		}
	})
	m.Run(time.Hour)
	stats := m.Engine().Stats()
	// 1 switch (first dispatch) + 6 traps (5 yields + exit).
	wantKernel := 10*time.Millisecond + 6*time.Millisecond
	if stats.KernelTime != wantKernel {
		t.Fatalf("kernel time = %v, want %v", stats.KernelTime, wantKernel)
	}
	if now := m.Clock().Now(); now.Duration() != wantKernel {
		t.Fatalf("clock = %v, want %v (only kernel costs advance time)", now, wantKernel)
	}
}

func TestZeroCostConfigIsFree(t *testing.T) {
	m := New(Config{Costs: Costs{Trap: 0, Switch: 0}})
	_ = m // Costs zero value maps to DefaultCosts via Config zero check...
	// Explicit zero Costs struct equals the zero value, so DefaultCosts
	// applies; document that behaviour.
	if m.Engine().costs != DefaultCosts() {
		t.Fatalf("zero Costs should fall back to defaults, got %+v", m.Engine().costs)
	}
}

func TestProcStateStrings(t *testing.T) {
	for s, want := range map[ProcState]string{
		StateNew: "new", StateReady: "ready", StateRunning: "running",
		StateBlocked: "blocked", StateDead: "dead",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if StopDeadline.String() != "deadline" || StopAllExited.String() != "all-exited" || StopIdle.String() != "idle-deadlock" {
		t.Error("StopReason strings wrong")
	}
}

func TestEngineProcsListing(t *testing.T) {
	m, _ := newTestBoard(t)
	mustSpawn(t, m.Engine(), "a", 7, func(ctx *Context) {})
	mustSpawn(t, m.Engine(), "b", 7, func(ctx *Context) { ctx.Trap(recvReq{}) })
	m.Run(time.Second)
	procs := m.Engine().Procs()
	if len(procs) != 2 || procs[0].Name() != "a" || procs[1].Name() != "b" {
		t.Fatalf("procs = %v", procs)
	}
	if procs[0].State() != StateDead || procs[1].State() != StateBlocked {
		t.Fatalf("states = %v, %v", procs[0].State(), procs[1].State())
	}
	if m.Engine().LiveCount() != 1 {
		t.Fatalf("live = %d, want 1", m.Engine().LiveCount())
	}
}

func TestRunAfterAllExitedIsStable(t *testing.T) {
	m, _ := newTestBoard(t)
	mustSpawn(t, m.Engine(), "brief", 7, func(ctx *Context) {})
	res := m.Run(time.Second)
	if res.Reason != StopAllExited {
		t.Fatalf("first run = %v", res.Reason)
	}
	res = m.Run(time.Second)
	if res.Reason != StopAllExited {
		t.Fatalf("second run = %v", res.Reason)
	}
}

func TestTraceLineString(t *testing.T) {
	l := TraceLine{At: Time(90 * time.Second), Tag: "bas", Text: "hello"}
	if l.String() != "[1m30s] bas: hello" {
		t.Fatalf("String = %q", l.String())
	}
}

func BenchmarkTrapRoundTrip(b *testing.B) {
	m := New(Config{})
	newToyKernel(m.Engine())
	defer m.Shutdown()
	count := 0
	p, err := m.Engine().Spawn("spinner", 7, func(ctx *Context) {
		for {
			ctx.Trap(yieldReq{})
			count++
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = p
	b.ResetTimer()
	target := count + b.N
	for count < target {
		m.Run(time.Millisecond)
	}
}
