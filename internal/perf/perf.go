// Package perf is the host-side performance profiler: it attributes real
// (wall-clock) time and heap-allocation counts to named phases of a campaign
// — board stepping, bus flush barriers, head-end polling, policy-monitor
// observation, shard deploy/run/merge — so "where does the simulator spend
// its time" is answered by measurement, not guesswork.
//
// perf is deliberately the mirror image of internal/obs. obs reads the
// *virtual* clock and is part of the determinism contract: its reports are a
// pure function of the simulation. perf reads the *host* clock and is
// explicitly outside that contract: timings vary run to run and worker count
// to worker count. What perf does guarantee is that the *shape* of its
// output — the phase set, the phase ordering, and the per-phase entry counts
// — is a deterministic function of the simulation alone, because every phase
// entry corresponds to a simulation event (a round, a shard, a dispatch)
// whose count the virtual clock fixes. Snapshot(false) suppresses the
// host-dependent columns, leaving only that deterministic skeleton, which is
// what the check.sh goldens compare across worker counts.
//
// Hot-path discipline: a Phase resolves once (like an obs.Counter) and a
// Begin/End scope pair costs two time.Now calls and three atomic adds. The
// nil Profiler, the nil Phase, and the nil Track all discard, so
// instrumented code never branches on "is profiling on" — it just calls.
package perf

import (
	"encoding/json"
	"fmt"
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// heapAllocsMetric is the runtime/metrics cumulative count of heap
// allocations. Reading it is cheap (no stop-the-world), which is what makes
// per-scope allocation deltas affordable.
const heapAllocsMetric = "/gc/heap/allocs:objects"

// allocsSupported reports whether the runtime exposes the allocation
// counter; resolved once.
var allocsSupported = func() bool {
	var s [1]metrics.Sample
	s[0].Name = heapAllocsMetric
	metrics.Read(s[:])
	return s[0].Value.Kind() == metrics.KindUint64
}()

// heapAllocs reads the cumulative heap-allocation count.
func heapAllocs() uint64 {
	var s [1]metrics.Sample
	s[0].Name = heapAllocsMetric
	metrics.Read(s[:])
	return s[0].Value.Uint64()
}

// Options configures a Profiler.
type Options struct {
	// Timeline retains one event per tracked scope for the Chrome host-trace
	// export. Off by default: a 64-room building emits ~10^5 board-step
	// scopes per campaign, and the aggregate table does not need them.
	Timeline bool
}

// Profiler collects phase statistics for one campaign. All methods are safe
// for concurrent use; scope accumulation is atomic so worker goroutines
// share phases without locks.
type Profiler struct {
	mu       sync.Mutex
	phases   map[string]*Phase
	tracks   []*Track
	gauges   map[string]int64
	timeline bool
	start    time.Time
}

// New creates a profiler. The host-time origin for timeline exports is the
// moment of creation.
func New(opts Options) *Profiler {
	return &Profiler{
		phases:   make(map[string]*Phase),
		gauges:   make(map[string]int64),
		timeline: opts.Timeline,
		start:    time.Now(),
	}
}

// Phase resolves (creating on first use) the named phase with allocation
// tracking: each scope books the heap-allocation delta between Begin and
// End. Under concurrent workers the counter is global, so allocations land
// on whichever phases were open when they happened — attribution is
// approximate in parallel regions, exact in serial ones. Nil-safe: a nil
// profiler returns the nil phase, which discards.
func (p *Profiler) Phase(name string) *Phase { return p.phase(name, allocsSupported) }

// HotPhase resolves the named phase without allocation tracking — for scopes
// entered millions of times (engine dispatch, monitor observation) where
// even a runtime/metrics read per entry would distort the measurement.
func (p *Profiler) HotPhase(name string) *Phase { return p.phase(name, false) }

func (p *Profiler) phase(name string, allocs bool) *Phase {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ph, ok := p.phases[name]
	if !ok {
		ph = &Phase{prof: p, name: name, allocs: allocs}
		p.phases[name] = ph
	}
	return ph
}

// Track creates a timeline track — one horizontal lane in the Chrome trace,
// conventionally one per worker goroutine. Events on a track must be
// recorded by a single goroutine (the track's owner); distinct tracks are
// independent. Nil-safe.
func (p *Profiler) Track(name string) *Track {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	t := &Track{prof: p, name: name}
	p.tracks = append(p.tracks, t)
	return t
}

// TimelineEnabled reports whether tracked scopes retain timeline events —
// callers can skip building event labels when they would be discarded.
func (p *Profiler) TimelineEnabled() bool { return p != nil && p.timeline }

// SetGauge records a named point-in-time value (pool utilization, queue
// high-water marks). Gauges are host-dependent and only rendered when
// timings are included. Nil-safe.
func (p *Profiler) SetGauge(name string, v int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.gauges[name] = v
	p.mu.Unlock()
}

// Phase is one named accumulator. The zero-value fields are accessed
// atomically; a nil Phase discards scopes.
type Phase struct {
	prof   *Profiler
	name   string
	allocs bool

	count   int64
	totalNs int64
	maxNs   int64
	allocd  int64
}

// Begin opens an untracked scope (aggregate statistics only).
func (ph *Phase) Begin() Scope { return ph.BeginOn(nil, "") }

// BeginOn opens a scope that, when tr is non-nil and the profiler retains a
// timeline, also records one timeline event labelled label (the phase name
// when label is empty). The returned Scope must be closed with End on the
// same goroutine.
func (ph *Phase) BeginOn(tr *Track, label string) Scope {
	if ph == nil {
		return Scope{}
	}
	s := Scope{ph: ph, tr: tr, label: label, start: time.Now()}
	if ph.allocs {
		s.startAllocs = heapAllocs()
	}
	return s
}

// Scope is one open phase entry. The zero Scope (from a nil Phase) is inert.
type Scope struct {
	ph          *Phase
	tr          *Track
	label       string
	start       time.Time
	startAllocs uint64
}

// End closes the scope, folding its duration (and allocation delta) into the
// phase and, for tracked scopes, appending a timeline event.
func (s Scope) End() {
	if s.ph == nil {
		return
	}
	d := time.Since(s.start)
	ns := int64(d)
	atomic.AddInt64(&s.ph.count, 1)
	atomic.AddInt64(&s.ph.totalNs, ns)
	for {
		old := atomic.LoadInt64(&s.ph.maxNs)
		if ns <= old || atomic.CompareAndSwapInt64(&s.ph.maxNs, old, ns) {
			break
		}
	}
	if s.ph.allocs {
		if delta := heapAllocs() - s.startAllocs; delta > 0 {
			atomic.AddInt64(&s.ph.allocd, int64(delta))
		}
	}
	if s.tr != nil && s.ph.prof.timeline {
		label := s.label
		if label == "" {
			label = s.ph.name
		}
		s.tr.events = append(s.tr.events, timelineEvent{
			name:    label,
			phase:   s.ph.name,
			startNs: int64(s.start.Sub(s.ph.prof.start)),
			durNs:   ns,
		})
	}
}

// Track is one timeline lane. Events are appended by the owning goroutine
// only; the slice is read at export time, after the owner has quiesced.
type Track struct {
	prof   *Profiler
	name   string
	events []timelineEvent
}

// timelineEvent is one retained scope on a track.
type timelineEvent struct {
	name    string
	phase   string
	startNs int64
	durNs   int64
}

// PhaseSnap is one exported phase row.
type PhaseSnap struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	// TotalNs, AvgNs, MaxNs, and Allocs are host-dependent; Snapshot(false)
	// zeroes them so goldens compare only the deterministic skeleton.
	TotalNs int64 `json:"total_ns"`
	AvgNs   int64 `json:"avg_ns"`
	MaxNs   int64 `json:"max_ns"`
	Allocs  int64 `json:"allocs"`
}

// GaugeSnap is one exported gauge row.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is the exportable profile: phases sorted by name (never by time,
// so ordering is worker-count-independent), gauges sorted by name.
type Snapshot struct {
	// Timings records whether host-dependent columns are populated.
	Timings bool `json:"timings"`
	// WallNs is host time since the profiler was created (0 without timings).
	WallNs int64 `json:"wall_ns"`
	// Phases is the per-phase table.
	Phases []PhaseSnap `json:"phases"`
	// Gauges is only populated with timings: gauge names may encode
	// host-execution shape (per-worker rows), which must not leak into the
	// deterministic skeleton.
	Gauges []GaugeSnap `json:"gauges,omitempty"`
}

// Snapshot exports the profile. includeTimings=false zeroes every
// host-dependent column and omits gauges, leaving output that is
// byte-deterministic across runs and worker counts.
func (p *Profiler) Snapshot(includeTimings bool) *Snapshot {
	snap := &Snapshot{Timings: includeTimings, Phases: []PhaseSnap{}}
	if p == nil {
		return snap
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for name, ph := range p.phases {
		row := PhaseSnap{Name: name, Count: atomic.LoadInt64(&ph.count)}
		if includeTimings {
			row.TotalNs = atomic.LoadInt64(&ph.totalNs)
			row.MaxNs = atomic.LoadInt64(&ph.maxNs)
			row.Allocs = atomic.LoadInt64(&ph.allocd)
			if row.Count > 0 {
				row.AvgNs = row.TotalNs / row.Count
			}
		}
		snap.Phases = append(snap.Phases, row)
	}
	sort.Slice(snap.Phases, func(i, j int) bool { return snap.Phases[i].Name < snap.Phases[j].Name })
	if includeTimings {
		snap.WallNs = int64(time.Since(p.start))
		for name, v := range p.gauges {
			snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: v})
		}
		sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	}
	return snap
}

// JSON renders the snapshot as indented JSON with a trailing newline.
func (s *Snapshot) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ns renders a nanosecond column like time.Duration but with fixed
// formatting suitable for a table.
func ns(v int64) string {
	return time.Duration(v).Round(time.Microsecond).String()
}

// Text renders the snapshot as an aligned table, phases sorted by name.
// Without timings only the deterministic columns (phase, count) carry
// information; the timing columns print as zeros so the table shape is
// identical either way.
func (s *Snapshot) Text() string {
	var b []byte
	b = fmt.Appendf(b, "== perf: host-side phase profile (wall %s) ==\n", ns(s.WallNs))
	b = fmt.Appendf(b, "%-24s %10s %12s %12s %12s %12s\n", "phase", "count", "total", "avg", "max", "allocs")
	for _, ph := range s.Phases {
		b = fmt.Appendf(b, "%-24s %10d %12s %12s %12s %12d\n",
			ph.Name, ph.Count, ns(ph.TotalNs), ns(ph.AvgNs), ns(ph.MaxNs), ph.Allocs)
	}
	for _, g := range s.Gauges {
		b = fmt.Appendf(b, "gauge %-42s %12d\n", g.Name, g.Value)
	}
	return string(b)
}
