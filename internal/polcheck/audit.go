package polcheck

import (
	"fmt"

	"mkbas/internal/core"
	"mkbas/internal/machine"
)

// AuditMatrix diffs an access control matrix's static grants against the
// dynamic IPC usage a board recorded (machine.IPCLog): every (src, dst,
// message type) cell that was granted but never exercised is a least-privilege
// warning — the grant could be removed without changing observed behaviour.
// An all-types grant is audited as a whole: it is "used" if any message
// flowed on the pair, since enumerating 64 unused types for one wildcard
// would drown the report.
//
// The audit is advisory (warnings, not violations): one run is evidence, not
// proof, that a grant is dead.
func AuditMatrix(m *core.Matrix, log *machine.IPCLog) []Finding {
	var out []Finding
	subjects := m.Subjects()
	for _, src := range subjects {
		for _, dst := range subjects {
			mask := m.Mask(src, dst)
			if mask == 0 {
				continue
			}
			srcName, dstName := m.NameOf(src), m.NameOf(dst)
			if mask == core.MaskAll {
				if !pairUsed(log, srcName, dstName) {
					out = append(out, Finding{
						Property: "unused_grant",
						Check:    fmt.Sprintf("unused_grant(%s, %s, mt*)", srcName, dstName),
						Severity: SeverityWarning,
						Detail: fmt.Sprintf(
							"%s may send any message type to %s but sent none during the recorded run",
							srcName, dstName),
					})
				}
				continue
			}
			for _, t := range mask.Types() {
				label := fmt.Sprintf("mt%d", t)
				if log.Used(srcName, dstName, label) {
					continue
				}
				out = append(out, Finding{
					Property: "unused_grant",
					Check:    fmt.Sprintf("unused_grant(%s, %s, %s)", srcName, dstName, label),
					Severity: SeverityWarning,
					Detail: fmt.Sprintf(
						"%s is granted message type %d to %s but never sent it during the recorded run",
						srcName, t, dstName),
				})
			}
		}
	}
	return out
}

func pairUsed(log *machine.IPCLog, src, dst string) bool {
	for _, u := range log.Usages() {
		if u.Src == src && u.Dst == dst {
			return true
		}
	}
	return false
}
