package machine

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is an instant of virtual time, in nanoseconds since boot.
//
// Virtual time is entirely decoupled from wall-clock time: it advances only
// when the Engine charges cycle costs or fast-forwards an idle board to the
// next timer. This makes every simulation deterministic.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts the instant to the duration elapsed since boot.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the instant as a duration since boot, e.g. "2m30s".
func (t Time) String() string { return time.Duration(t).String() }

// timer is a pending callback on the virtual clock.
type timer struct {
	at  Time
	seq uint64 // tie-breaker so equal deadlines fire in scheduling order
	fn  func()

	canceled bool
}

// TimerID identifies a scheduled callback so it can be canceled.
type TimerID struct{ t *timer }

// timerHeap orders timers by (deadline, sequence).
type timerHeap []*timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *timerHeap) Push(x any) { *h = append(*h, x.(*timer)) }

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Clock is the virtual time source for one board.
//
// All methods must be called from the engine loop (or while the engine is
// parked between Run calls); the Clock is intentionally not safe for
// concurrent use, because concurrency would destroy determinism.
type Clock struct {
	now    Time
	seq    uint64
	timers timerHeap
}

// NewClock returns a clock at instant zero with no pending timers.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual instant.
func (c *Clock) Now() Time { return c.now }

// At schedules fn to run at instant at. Deadlines in the past fire at the
// next opportunity. Timers with equal deadlines fire in scheduling order.
func (c *Clock) At(at Time, fn func()) TimerID {
	if fn == nil {
		panic("machine: Clock.At with nil callback")
	}
	t := &timer{at: at, seq: c.seq, fn: fn}
	c.seq++
	heap.Push(&c.timers, t)
	return TimerID{t: t}
}

// After schedules fn to run d after the current instant.
func (c *Clock) After(d time.Duration, fn func()) TimerID {
	return c.At(c.now.Add(d), fn)
}

// Cancel prevents a scheduled callback from firing. Canceling an already
// fired or already canceled timer is a no-op.
func (c *Clock) Cancel(id TimerID) {
	if id.t != nil {
		id.t.canceled = true
	}
}

// PendingTimers reports the number of live (not canceled) timers.
func (c *Clock) PendingTimers() int {
	n := 0
	for _, t := range c.timers {
		if !t.canceled {
			n++
		}
	}
	return n
}

// nextDeadline returns the earliest live timer deadline, or ok=false if none.
func (c *Clock) nextDeadline() (Time, bool) {
	for len(c.timers) > 0 {
		if c.timers[0].canceled {
			heap.Pop(&c.timers)
			continue
		}
		return c.timers[0].at, true
	}
	return 0, false
}

// advance moves the clock forward to instant at without firing timers; the
// engine fires due timers itself so that firing interleaves deterministically
// with scheduling. Moving backwards is a programming error.
func (c *Clock) advance(at Time) {
	if at < c.now {
		panic(fmt.Sprintf("machine: clock moving backwards: %v -> %v", c.now, at))
	}
	c.now = at
}

// popDue removes and returns the earliest live timer due at or before the
// current instant, or nil if none are due.
func (c *Clock) popDue() *timer {
	for len(c.timers) > 0 {
		top := c.timers[0]
		if top.canceled {
			heap.Pop(&c.timers)
			continue
		}
		if top.at > c.now {
			return nil
		}
		heap.Pop(&c.timers)
		return top
	}
	return nil
}
