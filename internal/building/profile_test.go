package building

import (
	"strings"
	"testing"
	"time"

	"mkbas/internal/perf"
)

// TestWorkerBusyIdleAccounting checks the exactness claim on the host-time
// accounts: every worker's busy interval nests inside the coordinator's
// stepping window, so BusyNs + IdleNs == StepWallNs holds per worker as an
// identity, not an approximation — regardless of scheduling. The accounts
// only run under a profiler (unprofiled runs skip the time.Now pair per
// board step), so the test attaches one.
func TestWorkerBusyIdleAccounting(t *testing.T) {
	const rooms, workers = 8, 4
	b, err := New(Config{
		Rooms:    rooms,
		Mix:      paperMix(),
		Secure:   evenSecure(rooms),
		Workers:  workers,
		Profiler: perf.New(perf.Options{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Run(10 * time.Minute)

	wall := b.StepWallNs()
	if wall <= 0 {
		t.Fatalf("StepWallNs = %d after 10 rounds, want > 0", wall)
	}
	stats := b.WorkerStats()
	if len(stats) != workers {
		t.Fatalf("got %d worker stats, want %d", len(stats), workers)
	}
	var jobs, busy int64
	for _, st := range stats {
		if st.BusyNs+st.IdleNs != wall {
			t.Fatalf("worker %d: busy %d + idle %d != step wall %d",
				st.Worker, st.BusyNs, st.IdleNs, wall)
		}
		if st.IdleNs < 0 {
			t.Fatalf("worker %d: negative idle %d (busy interval escaped the stepping window)",
				st.Worker, st.IdleNs)
		}
		jobs += st.Jobs
		busy += st.BusyNs
	}
	if wantJobs := int64(rooms * b.Round()); jobs != wantJobs {
		t.Fatalf("workers executed %d board steps, want rooms*rounds = %d", jobs, wantJobs)
	}
	if busy == 0 {
		t.Fatal("no worker accumulated any busy time across 10 rounds")
	}
}

// TestBuildingPhaseSkeleton checks that a profiled building run books every
// building-side phase and that the per-phase counts are a pure function of
// the simulation (rounds and rooms), not of host scheduling.
func TestBuildingPhaseSkeleton(t *testing.T) {
	prof := perf.New(perf.Options{})
	const rooms = 4
	b, err := New(Config{
		Rooms:    rooms,
		Mix:      paperMix(),
		Secure:   evenSecure(rooms),
		Workers:  2,
		Profiler: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Run(5 * time.Minute)

	snap := prof.Snapshot(false)
	counts := map[string]int64{}
	for _, ph := range snap.Phases {
		counts[ph.Name] = ph.Count
	}
	rounds := int64(b.Round())
	if counts["building.round"] != rounds {
		t.Fatalf("building.round count = %d, want %d", counts["building.round"], rounds)
	}
	if counts["building.board_step"] != rounds*rooms {
		t.Fatalf("building.board_step count = %d, want %d", counts["building.board_step"], rounds*rooms)
	}
	if counts["building.headend"] != rounds {
		t.Fatalf("building.headend count = %d, want %d", counts["building.headend"], rounds)
	}
	// Two flushes per round (board barrier + head-end barrier).
	if counts["bus.flush"] != 2*rounds {
		t.Fatalf("bus.flush count = %d, want %d", counts["bus.flush"], 2*rounds)
	}
	if counts["bas.deploy"] != rooms {
		t.Fatalf("bas.deploy count = %d, want %d (one per room)", counts["bas.deploy"], rooms)
	}
	text := prof.Snapshot(true).Text()
	if !strings.Contains(text, "gauge building.workers") {
		t.Fatalf("timed snapshot text lacks the building.workers gauge:\n%s", text)
	}
}
