package aadl

import (
	"fmt"

	"mkbas/internal/polcheck"
)

// Lint runs the post-compile static policy checks over one system
// implementation: the generated access control matrix is normalised into the
// unified access graph and handed to polcheck's structural lint, and the
// AADL model itself is checked for declared-but-unconnected ports — a port
// with no connection generates no matrix cell, so the process cannot do what
// its type declares, usually a dropped line in the model.
func Lint(pkg *Package, sysName string) ([]polcheck.Finding, error) {
	m, err := GenerateACM(pkg, sysName)
	if err != nil {
		return nil, err
	}
	findings := polcheck.StructuralFindings(polcheck.FromMatrix(m))

	sys, _ := pkg.System(sysName) // GenerateACM already validated it exists
	for _, sub := range sys.Subcomponents {
		proc, ok := pkg.Process(sub.ProcessType)
		if !ok {
			continue // unreachable after GenerateACM
		}
		for _, port := range proc.Ports {
			if portConnected(sys, sub.Name, port.Name) {
				continue
			}
			findings = append(findings, polcheck.Finding{
				Property: "unconnected_port",
				Check:    fmt.Sprintf("unconnected_port(%s.%s)", sub.Name, port.Name),
				Severity: polcheck.SeverityWarning,
				Detail: fmt.Sprintf(
					"%s declares %s port %q (line %d) but system %s never connects it",
					sub.ProcessType, port.Direction, port.Name, port.Line, sysName),
			})
		}
	}
	return findings, nil
}

// portConnected reports whether any connection of sys touches (sub, port) on
// either end.
func portConnected(sys *SystemImpl, sub, port string) bool {
	for _, conn := range sys.Connections {
		if (conn.Src.Component == sub && conn.Src.Port == port) ||
			(conn.Dst.Component == sub && conn.Dst.Port == port) {
			return true
		}
	}
	return false
}
