// Command basbuilding runs the multi-room building fleet (experiment E11):
// N controller boards — any platform mix, legacy or secure-proxied room by
// room — joined by an inter-board BAS bus, supervised by a head-end BMS, and
// optionally attacked laterally from a compromised room-0 web interface. The
// report is byte-identical at any -workers value.
//
// Usage:
//
//	basbuilding                                   # 16-room paper-mix building, attacked
//	basbuilding -rooms 8 -mix linux -secure none  # homogeneous legacy building
//	basbuilding -rooms 16 -secure even -attack=false -json
//	basbuilding -faults 2=crash-sensor            # E11 fault case: room 2 loses its sensor
//	basbuilding -busfaults bus-partition          # partition room 1 off the bus mid-run
//	basbuilding -busfaults partition-failover -standby   # E15: partition + primary kill + failover
//	basbuilding -sweep "rooms=4,16;mix=paper;attack=both" -workers 4
//	basbuilding -bench 1,2,4,8 -bench-out BENCH_building.json
//	basbuilding -rooms 64 -perf                   # host-side phase profile on stderr
//	basbuilding -perf-trace trace.json            # per-worker timeline for chrome://tracing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mkbas/internal/attack"
	"mkbas/internal/cli"
	"mkbas/internal/lab"
	"mkbas/internal/perf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "basbuilding:", err)
		os.Exit(1)
	}
}

func run() error {
	rooms := flag.Int("rooms", 16, "number of rooms (one controller board each)")
	mix := flag.String("mix", "paper", `platform rotation: "paper", "all", one platform, or names joined by "+"`)
	secure := flag.String("secure", "even", `secure-proxy coverage: "all", "none", "even", "odd", or room indices joined by "+"`)
	attackOn := flag.Bool("attack", true, "run the room-0 lateral-movement attacker")
	settle := flag.Duration("settle", 30*time.Minute, "virtual settle time before the attack window")
	window := flag.Duration("window", 90*time.Minute, "virtual attack window after settle")
	faultsFlag := flag.String("faults", "", `comma list of room=plan fault assignments, e.g. "2=crash-sensor"`)
	busFaults := flag.String("busfaults", "", `bus-level fault plan name, e.g. "bus-partition" or "partition-failover"`)
	standby := flag.Bool("standby", false, "attach a standby head-end that takes over when the primary goes silent")
	api := flag.Bool("api", false, "attach the building-scale tenant API tier with deterministic per-round occupant traffic (E16)")
	seed := flag.Int64("seed", 0, "base scenario seed (room i runs seed+i)")
	sweepFlag := flag.String("sweep", "", `building campaign instead of a single run: axis=values clauses over rooms, mix, secure, attack, monitor, busfaults, standby, api (plus settle=, window=)`)
	var out cli.Output
	var pool cli.Pool
	var guard cli.Guard
	out.Register(flag.CommandLine)
	pool.Register(flag.CommandLine)
	guard.Register(flag.CommandLine)
	var prof perf.CLI
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if err := prof.Start(); err != nil {
		return err
	}
	if *sweepFlag != "" {
		return runSweep(*sweepFlag, pool.Workers, out.JSON, out.Quiet, &prof)
	}

	spec := attack.BuildingSpec{
		Rooms:     *rooms,
		Attack:    *attackOn,
		Workers:   pool.Workers,
		Settle:    *settle,
		Window:    *window,
		Recovery:  guard.Recovery,
		Seed:      *seed,
		BusFaults: *busFaults,
		Standby:   *standby,
		TenantAPI: *api,
		// The raw flag, not MonitorOn(): the spec is embedded in the JSON
		// report verbatim, and the Demote-implies-Monitor promotion happens
		// inside ExecuteBuilding.
		Monitor: guard.Monitor,
		Demote:  guard.Demote,
	}
	mixPlatforms, err := lab.Mix(*mix).Platforms()
	if err != nil {
		return err
	}
	spec.Mix = mixPlatforms
	spec.Secure, err = lab.SecurePattern(*secure).Rooms(*rooms)
	if err != nil {
		return err
	}
	if *faultsFlag != "" {
		spec.Faults, err = parseFaults(*faultsFlag)
		if err != nil {
			return err
		}
	}

	if pool.Bench != "" {
		if err := runBench(spec, &pool); err != nil {
			return err
		}
		// Bench runs are not phase-profiled (each worker count would smear
		// into one table), but -cpuprofile/-memprofile still apply.
		return prof.Finish()
	}

	spec.Profiler = prof.Profiler()
	rep, err := attack.ExecuteBuilding(spec)
	if err != nil {
		return err
	}
	if err := prof.Finish(); err != nil {
		return err
	}
	if out.JSON {
		data, jerr := marshal(rep)
		if jerr != nil {
			return jerr
		}
		_, werr := os.Stdout.Write(data)
		return werr
	}
	fmt.Print(attack.FormatBuildingMatrix(rep))
	return nil
}

// parseFaults parses "room=plan" comma-list assignments.
func parseFaults(spec string) (map[int]string, error) {
	out := make(map[int]string)
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		roomStr, plan, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("fault assignment %q is not room=plan", item)
		}
		room, err := strconv.Atoi(strings.TrimSpace(roomStr))
		if err != nil || room < 0 {
			return nil, fmt.Errorf("fault assignment %q: bad room index", item)
		}
		out[room] = strings.TrimSpace(plan)
	}
	return out, nil
}

func runSweep(spec string, workers int, jsonOut, quiet bool, prof *perf.CLI) error {
	sweep, err := lab.ParseBuildingSweep(spec)
	if err != nil {
		return err
	}
	opts := lab.BuildingOptions{Workers: workers, Profiler: prof.Profiler()}
	if !quiet {
		opts.Progress = func(c lab.BuildingCase, r *attack.BuildingReport) {
			fmt.Fprintf(os.Stderr, "done %-48s alarm=%v compromised=%v\n", c, r.Alarm, r.Compromised())
		}
	}
	res, err := lab.RunBuilding(sweep, opts)
	if err != nil {
		return err
	}
	if err := prof.Finish(); err != nil {
		return err
	}
	if jsonOut {
		out, jerr := res.JSON()
		if jerr != nil {
			return jerr
		}
		_, werr := os.Stdout.Write(out)
		return werr
	}
	for _, shard := range res.Cases {
		fmt.Printf("== %s\n%s\n", shard.Case, attack.FormatBuildingMatrix(shard.Report))
	}
	return nil
}

func runBench(spec attack.BuildingSpec, pool *cli.Pool) error {
	workerCounts, err := pool.BenchCounts()
	if err != nil {
		return err
	}
	rep, err := lab.BenchBuilding(spec, workerCounts, runtime.NumCPU())
	if err != nil {
		return err
	}
	return cli.WriteBenchReport(rep, pool.BenchOut, "rooms/s")
}

// marshal renders a report as indented JSON with a trailing newline.
func marshal(v any) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
