package faultinject

import (
	"testing"
	"time"

	"mkbas/internal/machine"
)

// busNodes resolves the node names a 4-room building would expose: rooms
// 0..3 on nodes 0..3, the primary head-end on 4, the standby on 5.
func busNodes(name string) (int, bool) {
	m := map[string]int{
		"room00": 0, "room01": 1, "room02": 2, "room03": 3,
		"bms": 4, "bms-standby": 5,
	}
	id, ok := m[name]
	return id, ok
}

func at(d time.Duration) machine.Time { return machine.Time(0).Add(d) }

func TestNewBusInjectorRejectsBoardKindsAndUnknownNodes(t *testing.T) {
	board := &Plan{Name: "p", Faults: []Fault{
		{At: time.Minute, Kind: KindDriverCrash, Target: "tempSensProc"},
	}}
	if _, err := NewBusInjector(board, 4, busNodes, time.Second); err == nil {
		t.Fatal("board-level kind accepted by the bus injector")
	}
	unknown := &Plan{Name: "p", Faults: []Fault{
		{At: time.Minute, Kind: KindBusPartition, Target: "room99", Duration: time.Minute},
	}}
	if _, err := NewBusInjector(unknown, 4, busNodes, time.Second); err == nil {
		t.Fatal("unknown bus node accepted")
	}
	if _, err := NewBusInjector(&Plan{Name: "p"}, 4, busNodes, 0); err == nil {
		t.Fatal("zero slice accepted")
	}
}

func TestArmRejectsBusKinds(t *testing.T) {
	plan := &Plan{Name: "p", Faults: []Fault{
		{At: time.Minute, Kind: KindBusPartition, Target: "room01", Duration: time.Minute},
	}}
	if _, err := Arm(nil, plan); err == nil {
		t.Fatal("bus-level kind accepted by the board-level Arm")
	}
}

func TestBusInjectorPartitionWindowAndTargeting(t *testing.T) {
	plan := &Plan{Name: "p", Faults: []Fault{
		{At: 10 * time.Minute, Kind: KindBusPartition, Target: "room01", Duration: 5 * time.Minute},
	}}
	bi, err := NewBusInjector(plan, 4, busNodes, time.Second)
	if err != nil {
		t.Fatal(err)
	}

	if fired := bi.BeginRound(at(9 * time.Minute)); len(fired) != 0 {
		t.Fatalf("fired before At: %v", fired)
	}
	if v := bi.Verdict(4, 1, 0); v != (BusVerdict{}) {
		t.Fatalf("verdict before injection = %+v, want zero", v)
	}
	fired := bi.BeginRound(at(10 * time.Minute))
	if len(fired) != 1 || fired[0].Kind != KindBusPartition {
		t.Fatalf("fired at At = %v, want the partition", fired)
	}
	if fired := bi.BeginRound(at(10*time.Minute + time.Second)); len(fired) != 0 {
		t.Fatalf("partition fired twice: %v", fired)
	}

	// Inside the window: both directions touching room 1 hold; other links
	// are untouched.
	if v := bi.Verdict(4, 1, 0); !v.Hold || v.Drop || v.Dup {
		t.Fatalf("head→room1 verdict = %+v, want Hold", v)
	}
	if v := bi.Verdict(1, 4, 3); !v.Hold {
		t.Fatalf("room1→head verdict = %+v, want Hold", v)
	}
	if v := bi.Verdict(4, 2, 0); v != (BusVerdict{}) {
		t.Fatalf("head→room2 verdict = %+v, want zero", v)
	}

	// The window closes at At+Duration exactly.
	bi.BeginRound(at(15 * time.Minute))
	if v := bi.Verdict(4, 1, 0); v != (BusVerdict{}) {
		t.Fatalf("verdict at window end = %+v, want zero", v)
	}
}

func TestBusInjectorDelayHoldsByAge(t *testing.T) {
	plan := &Plan{Name: "p", Faults: []Fault{
		{At: time.Minute, Kind: KindBusDelay, Target: "room01", Duration: time.Minute, Delay: 3 * time.Second},
	}}
	bi, err := NewBusInjector(plan, 4, busNodes, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bi.BeginRound(at(time.Minute))
	// Delay 3s on a 1s slice: ceil(2*3s / 1s) = 6 barriers of hold.
	for age := 0; age < 6; age++ {
		if v := bi.Verdict(4, 1, age); !v.Hold {
			t.Fatalf("age %d verdict = %+v, want Hold", age, v)
		}
	}
	if v := bi.Verdict(4, 1, 6); v.Hold {
		t.Fatal("frame still held after aging past the delay")
	}
}

func TestBusInjectorDropAndDupVerdicts(t *testing.T) {
	plan := &Plan{Name: "p", Faults: []Fault{
		{At: time.Minute, Kind: KindBusDrop, Target: "room01", Duration: time.Minute},
		{At: time.Minute, Kind: KindBusDup, Target: "room02", Duration: time.Minute},
	}}
	bi, err := NewBusInjector(plan, 4, busNodes, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bi.BeginRound(at(time.Minute))
	if v := bi.Verdict(4, 1, 0); !v.Drop || v.Hold {
		t.Fatalf("drop verdict = %+v", v)
	}
	if v := bi.Verdict(4, 2, 0); !v.Dup || v.Hold || v.Drop {
		t.Fatalf("dup verdict = %+v", v)
	}
}

func TestBusInjectorRoomRecoveryClosesMTTR(t *testing.T) {
	plan := &Plan{Name: "p", Faults: []Fault{
		{At: 10 * time.Minute, Kind: KindBusPartition, Target: "room01", Duration: 5 * time.Minute},
	}}
	bi, err := NewBusInjector(plan, 4, busNodes, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bi.BeginRound(at(10 * time.Minute))

	// A confirmation during the outage must not count as recovery, and a
	// confirmation from an unaffected room must not close room 1's fault.
	bi.NoteRoomOK(1, at(12*time.Minute))
	bi.NoteRoomOK(0, at(16*time.Minute))
	if rep := bi.Report(); rep.Recovered != 0 {
		t.Fatalf("recovered early: %+v", rep)
	}

	bi.NoteRoomOK(1, at(16*time.Minute))
	rep := bi.Report()
	if rep.Injected != 1 || rep.Recovered != 1 || rep.Unrecovered != 0 {
		t.Fatalf("report tallies = %+v", rep)
	}
	wantMTTR := int64(6 * time.Minute) // recovered 16m − injected 10m
	if rep.Faults[0].MTTRNs != wantMTTR {
		t.Fatalf("MTTR = %s, want %s", time.Duration(rep.Faults[0].MTTRNs), 6*time.Minute)
	}

	// The room-scoped view attributes the same fault to room 1 only.
	if rr := bi.RoomReport(0); rr != nil {
		t.Fatalf("room 0 report = %+v, want nil (fault never touched it)", rr)
	}
	rr := bi.RoomReport(1)
	if rr == nil || rr.Recovered != 1 || rr.Faults[0].MTTRNs != wantMTTR {
		t.Fatalf("room 1 report = %+v", rr)
	}
}

func TestBusInjectorHeadEndCrashRecoversOnlyByFailover(t *testing.T) {
	plan := &Plan{Name: "p", Faults: []Fault{
		{At: 10 * time.Minute, Kind: KindHeadEndCrash},
	}}
	bi, err := NewBusInjector(plan, 2, busNodes, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if bi.HeadEndDown() {
		t.Fatal("head down before the crash fired")
	}
	bi.BeginRound(at(10 * time.Minute))
	if !bi.HeadEndDown() {
		t.Fatal("head not down after the crash fired")
	}

	// The crash window is open-ended: polls can never close it.
	bi.NoteRoomOK(0, at(20*time.Minute))
	bi.NoteRoomOK(1, at(20*time.Minute))
	if rep := bi.Report(); rep.Recovered != 0 {
		t.Fatalf("poll confirmations closed a head-end crash: %+v", rep)
	}

	bi.NoteFailover(at(11 * time.Minute))
	if got, ok := bi.FailoverAt(); !ok || got != at(11*time.Minute) {
		t.Fatalf("FailoverAt = %v, %v", got, ok)
	}
	rep := bi.Report()
	if rep.Recovered != 1 || rep.Faults[0].MTTRNs != int64(time.Minute) {
		t.Fatalf("post-failover report = %+v", rep)
	}
	// Every room inherits the failover instant as its recovery point, so
	// attack verdicts can excuse violations during the interregnum.
	for room := 0; room < 2; room++ {
		rr := bi.RoomReport(room)
		if rr == nil || rr.Faults[0].RecoveredAtNs != int64(11*time.Minute) {
			t.Fatalf("room %d report = %+v", room, rr)
		}
		if !InWindow(0, rr, at(10*time.Minute+30*time.Second)) {
			t.Fatalf("room %d: interregnum instant not in fault window", room)
		}
		if InWindow(0, rr, at(12*time.Minute)) {
			t.Fatalf("room %d: post-failover instant still in fault window", room)
		}
	}
}
