package polcheck

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Severity grades a finding.
type Severity string

// Severities, in increasing order of concern.
const (
	// SeverityOK records a property that holds.
	SeverityOK Severity = "ok"
	// SeverityInfo is a neutral observation (e.g. a mediated-only flow).
	SeverityInfo Severity = "info"
	// SeverityWarning flags hygiene problems that are not policy
	// violations: over-broad grants, unused rights, isolated subjects.
	SeverityWarning Severity = "warning"
	// SeverityViolation is a failed property: the policy admits the attack.
	SeverityViolation Severity = "violation"
)

// Finding is one analyzer result, serialisable as JSON.
type Finding struct {
	// Property names the property or rule that produced the finding
	// ("deny_path", "no_kill_authority", "unused_grant", ...).
	Property string `json:"property"`
	// Check is the instantiated check ("deny_path(webInterface, heaterActProc)").
	Check string `json:"check"`
	// Severity grades the result.
	Severity Severity `json:"severity"`
	// Detail is the human-readable explanation.
	Detail string `json:"detail"`
	// Path is the witness route for reachability findings, node by node.
	Path []string `json:"path,omitempty"`
}

func (f Finding) String() string {
	s := fmt.Sprintf("[%s] %s: %s", f.Severity, f.Check, f.Detail)
	if len(f.Path) > 0 {
		s += "\n    path: " + strings.Join(f.Path, " -> ")
	}
	return s
}

// Report is the analysis result for one platform's policy graph.
type Report struct {
	Platform string    `json:"platform"`
	Findings []Finding `json:"findings"`
}

// Add appends findings.
func (r *Report) Add(fs ...Finding) { r.Findings = append(r.Findings, fs...) }

// Pass reports whether the report contains no violations. Warnings and infos
// do not fail a report.
func (r *Report) Pass() bool {
	for _, f := range r.Findings {
		if f.Severity == SeverityViolation {
			return false
		}
	}
	return true
}

// Violations returns only the violation findings.
func (r *Report) Violations() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == SeverityViolation {
			out = append(out, f)
		}
	}
	return out
}

// Text renders the human-readable report.
func (r *Report) Text() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Pass() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "policy analysis: %s — %s (%d findings)\n", r.Platform, verdict, len(r.Findings))
	for _, f := range r.Findings {
		b.WriteString("  ")
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the machine-readable report.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// CheckProperties evaluates every property against the graph and collects
// the findings into a report.
func CheckProperties(g *Graph, props []Property) *Report {
	r := &Report{Platform: g.Platform}
	for _, p := range props {
		r.Add(p.Check(g))
	}
	return r
}
