package lab

import (
	"bytes"
	"strings"
	"testing"

	"mkbas/internal/attack"
)

// TestExpandOrder pins the expansion order: platform outermost, then model,
// action, plant, quota — shard index equals position. The merge keys on this
// order, so changing it silently changes every golden file.
func TestExpandOrder(t *testing.T) {
	s := Sweep{
		Platforms: []attack.Platform{attack.PlatformMinix, attack.PlatformSel4},
		Actions:   []attack.Action{attack.ActionSpoofSensor, attack.ActionForkBomb},
		Models:    []Model{ModelUser, ModelRoot},
		Plants:    []Plant{PlantDefault},
		Quotas:    []int{0, 8},
	}
	cases := s.Expand()
	// MINIX: 2 models × 2 actions × 1 plant × 2 quotas = 8.
	// seL4 (quota axis collapses): 2 × 2 × 1 × 1 = 4.
	if len(cases) != 12 {
		t.Fatalf("expanded %d cases, want 12", len(cases))
	}
	for i, c := range cases {
		if c.Shard != i {
			t.Errorf("case %d has shard %d", i, c.Shard)
		}
	}
	first := cases[0]
	if first.Platform != attack.PlatformMinix || first.Model != ModelUser ||
		first.Action != attack.ActionSpoofSensor || first.ForkQuota != 0 {
		t.Errorf("unexpected first case: %+v", first)
	}
	if cases[1].ForkQuota != 8 {
		t.Errorf("quota must be the innermost axis, got %+v", cases[1])
	}
	for _, c := range cases[8:] {
		if c.Platform != attack.PlatformSel4 {
			t.Errorf("cases 8.. must be sel4, got %+v", c)
		}
		if c.ForkQuota != 0 {
			t.Errorf("non-MINIX case carries quota: %+v", c)
		}
	}
}

func TestParseSweep(t *testing.T) {
	s, err := ParseSweep("platforms=paper;actions=all;models=both;plants=default;quotas=0")
	if err != nil {
		t.Fatalf("ParseSweep: %v", err)
	}
	if got, want := len(s.Platforms), 3; got != want {
		t.Errorf("platforms=paper: got %d platforms, want %d", got, want)
	}
	if got, want := len(s.Actions), len(attack.AllActions()); got != want {
		t.Errorf("actions=all: got %d, want %d", got, want)
	}
	if got, want := len(s.Models), 2; got != want {
		t.Errorf("models=both: got %d, want %d", got, want)
	}

	// Duplicates collapse: "paper" already includes linux.
	s, err = ParseSweep("platforms=paper,linux")
	if err != nil {
		t.Fatalf("ParseSweep: %v", err)
	}
	if got := len(s.Platforms); got != 3 {
		t.Errorf("paper,linux: got %d platforms, want 3", got)
	}

	for _, bad := range []string{
		"platforms=windows",
		"actions=frobnicate",
		"models=guest",
		"plants=volcano",
		"quotas=many",
		"quotas=-1",
		"color=red",
		"platforms",
	} {
		if _, err := ParseSweep(bad); err == nil {
			t.Errorf("ParseSweep(%q) succeeded, want error", bad)
		}
	}

	// Empty spec is the all-defaults sweep.
	s, err = ParseSweep("")
	if err != nil {
		t.Fatalf("ParseSweep(empty): %v", err)
	}
	if len(s.Expand()) != len(attack.AllPlatforms())*len(attack.AllActions()) {
		t.Errorf("empty sweep expanded to %d cases", len(s.Expand()))
	}
}

// smallSweep is the cheap cross-platform sweep the determinism tests run:
// one fast-failing action on every headline platform, both models.
func smallSweep() Sweep {
	return Sweep{
		Actions: []attack.Action{attack.ActionKillController},
		Models:  []Model{ModelUser, ModelRoot},
	}
}

// TestShardDeterminism is the tentpole contract: the merged campaign JSON is
// byte-identical regardless of worker count. With 6 boards and 8 workers,
// every board runs concurrently with every other; under -race this is also
// the proof that fully independent boards share no mutable state.
func TestShardDeterminism(t *testing.T) {
	serial, err := Run(smallSweep(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := Run(smallSweep(), Options{Workers: 8})
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	serialJSON, err := serial.JSON()
	if err != nil {
		t.Fatalf("serial JSON: %v", err)
	}
	parallelJSON, err := parallel.JSON()
	if err != nil {
		t.Fatalf("parallel JSON: %v", err)
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Fatalf("merged JSON differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialJSON, parallelJSON)
	}
	if len(serial.Cases) != 6 {
		t.Fatalf("smallSweep expanded to %d cases, want 6", len(serial.Cases))
	}
	// The kill attack is the paper's sharpest split: blocked on the
	// microkernels, controller dead on Linux.
	for _, sr := range serial.Cases {
		switch sr.Case.Platform {
		case attack.PlatformMinix, attack.PlatformSel4:
			if sr.Verdict != "BLOCKED" {
				t.Errorf("%s: verdict %s, want BLOCKED", sr.Case, sr.Verdict)
			}
		case attack.PlatformLinux:
			if sr.Verdict != "COMPROMISED" {
				t.Errorf("%s: verdict %s, want COMPROMISED", sr.Case, sr.Verdict)
			}
		}
	}
}

// chaosSweep is the E10 campaign the fault determinism tests run: no
// attacker, one crash fault and one hang fault on every headline platform.
func chaosSweep() Sweep {
	return Sweep{
		Actions: []attack.Action{attack.ActionNone},
		Models:  []Model{ModelUser},
		Faults:  []string{"crash-sensor", "hang-sensor"},
	}
}

// TestFaultSweepDeterminism extends the byte-identity contract to the chaos
// axis: fault injection, recovery timing, and MTTR accounting are pure
// virtual-time functions, so the merged campaign JSON cannot depend on how
// many boards ran concurrently.
func TestFaultSweepDeterminism(t *testing.T) {
	serial, err := Run(chaosSweep(), Options{Workers: 1})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := Run(chaosSweep(), Options{Workers: 8})
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	serialJSON, err := serial.JSON()
	if err != nil {
		t.Fatalf("serial JSON: %v", err)
	}
	parallelJSON, err := parallel.JSON()
	if err != nil {
		t.Fatalf("parallel JSON: %v", err)
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Fatalf("merged JSON differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialJSON, parallelJSON)
	}
	if len(serial.Cases) != 6 {
		t.Fatalf("chaosSweep expanded to %d cases, want 6", len(serial.Cases))
	}

	// The E10 table: a crashed sensor driver is healed on the microkernels
	// and lost for good on supervisor-less Linux; a hang self-heals
	// everywhere behind the controller's failsafe.
	for _, sr := range serial.Cases {
		want := "BLOCKED"
		if sr.Case.Faults == "crash-sensor" {
			want = "RECOVERED"
			if sr.Case.Platform == attack.PlatformLinux {
				want = "COMPROMISED"
			}
		}
		if sr.Verdict != want {
			t.Errorf("%s: verdict %s, want %s", sr.Case, sr.Verdict, want)
		}
	}

	// Chaos accounting flows into the merged aggregate.
	agg := serial.Merged
	if agg.FaultsInjected != 6 || agg.FaultsRecovered != 5 || agg.FaultsUnrecovered != 1 {
		t.Errorf("aggregate faults %d/%d/%d, want 6 injected, 5 recovered, 1 unrecovered",
			agg.FaultsInjected, agg.FaultsRecovered, agg.FaultsUnrecovered)
	}
	if agg.Restarts < 2 {
		t.Errorf("aggregate restarts %d, want >= 2 (minix RS + seL4 monitor)", agg.Restarts)
	}
	if agg.MTTRCount != 5 || agg.MTTRMaxNs <= 0 {
		t.Errorf("aggregate MTTR count %d max %d, want 5 recoveries with a positive max", agg.MTTRCount, agg.MTTRMaxNs)
	}
	if !strings.Contains(serial.Text(), "faults:") {
		t.Error("text report omits the fault campaign line")
	}
}

// TestAggregateMerge spot-checks the merged collections: totals sum across
// shards and every merged collection is sorted by key.
func TestAggregateMerge(t *testing.T) {
	res, err := Run(smallSweep(), Options{Workers: 4})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	agg := res.Merged
	if agg.Cases != len(res.Cases) {
		t.Errorf("aggregate cases %d != %d", agg.Cases, len(res.Cases))
	}
	var attempts int
	for _, sr := range res.Cases {
		attempts += sr.Report.Attempts
	}
	if agg.Attempts != attempts {
		t.Errorf("aggregate attempts %d, want %d", agg.Attempts, attempts)
	}
	var verdictSum int
	for _, v := range agg.Verdicts {
		verdictSum += v.Count
	}
	if verdictSum != len(res.Cases) {
		t.Errorf("verdict counts sum to %d, want %d", verdictSum, len(res.Cases))
	}
	for i := 1; i < len(agg.Counters); i++ {
		if agg.Counters[i-1].Name >= agg.Counters[i].Name {
			t.Errorf("merged counters unsorted at %d: %q >= %q", i, agg.Counters[i-1].Name, agg.Counters[i].Name)
		}
	}
	for i := 1; i < len(agg.IPCUsages); i++ {
		a, b := agg.IPCUsages[i-1], agg.IPCUsages[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Dst > b.Dst) {
			t.Errorf("merged IPC usages unsorted at %d", i)
		}
	}
	if len(agg.Mechanisms) == 0 {
		t.Error("campaign with blocked attacks reports no denying mechanisms")
	}
	// Per-shard counters must sum into the merged value.
	want := make(map[string]int64)
	for _, sr := range res.Cases {
		for _, c := range sr.Report.Obs.Counters {
			want[c.Name] += c.Value
		}
	}
	for _, c := range agg.Counters {
		if c.Value != want[c.Name] {
			t.Errorf("merged counter %s = %d, want %d", c.Name, c.Value, want[c.Name])
		}
	}
}

// TestRunValidates rejects bad sweeps before booting anything.
func TestRunValidates(t *testing.T) {
	if _, err := Run(Sweep{Platforms: []attack.Platform{"os2-warp"}}, Options{Workers: 1}); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := Run(Sweep{Plants: []Plant{"lava"}}, Options{Workers: 1}); err == nil {
		t.Error("unknown plant accepted")
	}
}

// TestBenchIdentical runs the scaling bench on a tiny sweep and checks the
// determinism bit survives the measurement path.
func TestBenchIdentical(t *testing.T) {
	sweep := Sweep{
		Platforms: []attack.Platform{attack.PlatformMinix, attack.PlatformLinux},
		Actions:   []attack.Action{attack.ActionKillController},
	}
	rep, err := Bench(sweep, []int{1, 2}, 1)
	if err != nil {
		t.Fatalf("bench: %v", err)
	}
	if !rep.Identical {
		t.Error("bench runs were not byte-identical")
	}
	if rep.Shards != 2 {
		t.Errorf("bench shards %d, want 2", rep.Shards)
	}
	if len(rep.Points) != 2 || rep.Points[0].Workers != 1 || rep.Points[1].Workers != 2 {
		t.Errorf("bench points %+v", rep.Points)
	}
	if rep.Points[0].Speedup != 1 {
		t.Errorf("serial speedup %f, want 1", rep.Points[0].Speedup)
	}
}
