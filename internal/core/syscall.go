package core

import (
	"fmt"
	"sort"
)

// SyscallKind names a kernel service governed by the process-management
// server's ACM auditing (Section IV-D.2: "the policy explicitly disallowed
// the web interface process to use kill system call").
type SyscallKind int

// Audited kernel services.
const (
	// SysFork covers fork2() — creating new processes.
	SysFork SyscallKind = iota + 1
	// SysKill covers kill() — destroying other processes.
	SysKill
	// SysExec covers replacing a process image.
	SysExec
	// SysSetACID covers assigning access-control identities (loader only).
	SysSetACID
)

// String names the syscall kind.
func (k SyscallKind) String() string {
	switch k {
	case SysFork:
		return "fork"
	case SysKill:
		return "kill"
	case SysExec:
		return "exec"
	case SysSetACID:
		return "set_acid"
	default:
		return fmt.Sprintf("SyscallKind(%d)", int(k))
	}
}

// QuotaUnlimited marks a syscall grant with no invocation budget.
const QuotaUnlimited = -1

// SyscallRule is one grant: whether a subject may invoke a service and how
// many times (the paper's proposed "give each system call a quota" extension;
// we implement it for E8).
type SyscallRule struct {
	Allowed bool
	// Quota is the remaining invocation budget; QuotaUnlimited disables
	// budgeting.
	Quota int
}

// SyscallPolicy maps subjects to their audited-service grants. Like the
// Matrix it is built at boot and sealed; unlike the Matrix the remaining
// quotas decay at runtime (tracked per booted kernel, not here — the policy
// itself stays immutable, see QuotaLedger).
type SyscallPolicy struct {
	rules  map[ACID]map[SyscallKind]SyscallRule
	sealed bool
}

// NewSyscallPolicy returns an empty, unsealed policy. The default is
// deny-all: subjects must be granted each audited service explicitly.
func NewSyscallPolicy() *SyscallPolicy {
	return &SyscallPolicy{rules: make(map[ACID]map[SyscallKind]SyscallRule)}
}

// Grant allows subject to invoke kind without a budget.
func (p *SyscallPolicy) Grant(subject ACID, kind SyscallKind) *SyscallPolicy {
	return p.GrantQuota(subject, kind, QuotaUnlimited)
}

// GrantQuota allows subject to invoke kind at most quota times.
func (p *SyscallPolicy) GrantQuota(subject ACID, kind SyscallKind, quota int) *SyscallPolicy {
	if p.sealed {
		panic(ErrSealed)
	}
	row, ok := p.rules[subject]
	if !ok {
		row = make(map[SyscallKind]SyscallRule)
		p.rules[subject] = row
	}
	row[kind] = SyscallRule{Allowed: true, Quota: quota}
	return p
}

// Seal freezes the policy.
func (p *SyscallPolicy) Seal() *SyscallPolicy {
	p.sealed = true
	return p
}

// Sealed reports whether the policy is frozen.
func (p *SyscallPolicy) Sealed() bool { return p.sealed }

// Rule returns the grant for (subject, kind); absent grants are deny.
func (p *SyscallPolicy) Rule(subject ACID, kind SyscallKind) SyscallRule {
	return p.rules[subject][kind]
}

// Subjects lists every subject with at least one grant, ascending.
func (p *SyscallPolicy) Subjects() []ACID {
	out := make([]ACID, 0, len(p.rules))
	for id := range p.rules {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SyscallDeniedError reports an audited-service denial.
type SyscallDeniedError struct {
	Subject ACID
	Kind    SyscallKind
	// Exhausted is true when the subject held a grant but spent its quota.
	Exhausted bool
}

func (e *SyscallDeniedError) Error() string {
	if e.Exhausted {
		return fmt.Sprintf("core: syscall %v denied for acid %d: quota exhausted", e.Kind, e.Subject)
	}
	return fmt.Sprintf("core: syscall %v denied for acid %d by policy", e.Kind, e.Subject)
}

// Is matches ErrNoQuotaLeft for exhausted grants and ErrDenied for plain
// denials.
func (e *SyscallDeniedError) Is(target error) bool {
	if e.Exhausted && target == ErrNoQuotaLeft {
		return true
	}
	return target == ErrDenied
}

// QuotaLedger tracks the runtime-remaining budgets for one booted kernel
// against an immutable SyscallPolicy.
type QuotaLedger struct {
	policy    *SyscallPolicy
	remaining map[ACID]map[SyscallKind]int
}

// NewQuotaLedger creates a ledger over a sealed policy.
func NewQuotaLedger(policy *SyscallPolicy) *QuotaLedger {
	if !policy.Sealed() {
		panic(ErrNotSealed)
	}
	return &QuotaLedger{
		policy:    policy,
		remaining: make(map[ACID]map[SyscallKind]int),
	}
}

// Charge authorises one invocation of kind by subject, decrementing the
// budget when one applies. It returns a *SyscallDeniedError on deny or
// exhaustion.
func (l *QuotaLedger) Charge(subject ACID, kind SyscallKind) error {
	rule := l.policy.Rule(subject, kind)
	if !rule.Allowed {
		return &SyscallDeniedError{Subject: subject, Kind: kind}
	}
	if rule.Quota == QuotaUnlimited {
		return nil
	}
	row, ok := l.remaining[subject]
	if !ok {
		row = make(map[SyscallKind]int)
		l.remaining[subject] = row
	}
	rem, seen := row[kind]
	if !seen {
		rem = rule.Quota
	}
	if rem <= 0 {
		return &SyscallDeniedError{Subject: subject, Kind: kind, Exhausted: true}
	}
	row[kind] = rem - 1
	return nil
}

// Remaining reports the unspent budget for (subject, kind);
// QuotaUnlimited when no budget applies, 0 when denied or spent.
func (l *QuotaLedger) Remaining(subject ACID, kind SyscallKind) int {
	rule := l.policy.Rule(subject, kind)
	if !rule.Allowed {
		return 0
	}
	if rule.Quota == QuotaUnlimited {
		return QuotaUnlimited
	}
	if row, ok := l.remaining[subject]; ok {
		if rem, seen := row[kind]; seen {
			return rem
		}
	}
	return rule.Quota
}

// Policy bundles the two enforcement surfaces a security-enhanced kernel
// consumes: the IPC matrix and the audited-syscall grants.
type Policy struct {
	IPC      *Matrix
	Syscalls *SyscallPolicy
}

// NewPolicy returns an empty, unsealed policy bundle.
func NewPolicy() *Policy {
	return &Policy{IPC: NewMatrix(), Syscalls: NewSyscallPolicy()}
}

// Seal freezes both surfaces.
func (p *Policy) Seal() *Policy {
	p.IPC.Seal()
	p.Syscalls.Seal()
	return p
}

// Sealed reports whether both surfaces are frozen.
func (p *Policy) Sealed() bool { return p.IPC.Sealed() && p.Syscalls.Sealed() }
