package lab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"mkbas/internal/attack"
)

// BenchPoint is one worker-count measurement.
type BenchPoint struct {
	Workers int `json:"workers"`
	// ElapsedMS is wall-clock time for the whole campaign, in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// ShardsPerSec is campaign throughput.
	ShardsPerSec float64 `json:"shards_per_sec"`
	// BoardStepsPerSec is per-board simulation rate: board·virtual-seconds
	// simulated per wall-clock second, summed over every board in flight —
	// the hardware-independent number for comparing bench records.
	BoardStepsPerSec float64 `json:"board_steps_per_sec"`
	// RequestsPerSec is API-request throughput, set only by request-oriented
	// benches (cmd/basload): simulated tenant requests processed per
	// wall-clock second at this worker count.
	RequestsPerSec float64 `json:"requests_per_sec,omitempty"`
	// Speedup is relative to the first (serial) point.
	Speedup float64 `json:"speedup"`
}

// BenchReport is the scaling measurement check.sh records to BENCH_lab.json.
type BenchReport struct {
	Shards int          `json:"shards"`
	Points []BenchPoint `json:"points"`
	// Identical confirms the determinism contract held: every worker
	// count's merged JSON was byte-identical to the serial run's.
	Identical bool `json:"identical"`
	// HostCPUs is the host's logical CPU count at measurement time.
	HostCPUs int `json:"host_cpus"`
	// GOMAXPROCS is the Go scheduler's parallelism limit at measurement
	// time — scaling beyond min(host_cpus, gomaxprocs) is not expected.
	GOMAXPROCS int `json:"gomaxprocs"`
	// ParallelismEffective is false when GOMAXPROCS == 1: every worker count
	// then time-slices one OS thread, so the speedup curve is noise, not a
	// scaling measurement. Readers (and benchguard) must not interpret the
	// Speedup column of such a record.
	ParallelismEffective bool `json:"parallelism_effective"`
}

// perSec converts a count over elapsedNs nanoseconds to a per-second rate,
// guarding against zero (or negative) elapsed on very fast sweeps — a raw
// division would yield ±Inf, which json.Marshal rejects.
func perSec(n, elapsedNs float64) float64 {
	if elapsedNs <= 0 {
		return 0
	}
	return n / (elapsedNs / 1e9)
}

// speedupOf guards the baseline/elapsed ratio the same way.
func speedupOf(baseNs, elapsedNs float64) float64 {
	if elapsedNs <= 0 {
		return 0
	}
	return baseNs / elapsedNs
}

// WarnIfSerial flags a degenerate bench host on stderr and reports whether
// parallelism is effective. Bench writers outside the package (cmd/basload)
// share it so every bench record carries the same honesty warning.
func WarnIfSerial(kind string) bool {
	if runtime.GOMAXPROCS(0) > 1 {
		return true
	}
	fmt.Fprintf(os.Stderr, "lab: warning: GOMAXPROCS=1, %s bench speedups are time-slicing noise (parallelism_effective=false)\n", kind)
	return false
}

// Bench runs the sweep once per worker count, measuring wall-clock
// throughput and verifying that every run's merged JSON is byte-identical
// to the first. The first worker count is the speedup baseline, so pass 1
// first for honest serial-relative numbers.
func Bench(sweep Sweep, workerCounts []int, hostCPUs int) (*BenchReport, error) {
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("lab: no worker counts to bench")
	}
	rep := &BenchReport{
		Identical:            true,
		HostCPUs:             hostCPUs,
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		ParallelismEffective: WarnIfSerial("lab"),
	}
	var baseline []byte
	var baseElapsed float64
	// Every campaign shard is one board simulating the full attack timeline.
	virtSecsPerShard := attack.RunDuration().Seconds()
	for i, w := range workerCounts {
		res, err := Run(sweep, Options{Workers: w})
		if err != nil {
			return nil, err
		}
		out, err := res.JSON()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			rep.Shards = len(res.Cases)
			baseline = out
			baseElapsed = float64(res.Elapsed.Nanoseconds())
		} else if !bytes.Equal(out, baseline) {
			rep.Identical = false
		}
		elapsed := float64(res.Elapsed.Nanoseconds())
		pt := BenchPoint{
			Workers:          res.Workers,
			ElapsedMS:        elapsed / 1e6,
			ShardsPerSec:     perSec(float64(len(res.Cases)), elapsed),
			BoardStepsPerSec: perSec(float64(len(res.Cases))*virtSecsPerShard, elapsed),
			Speedup:          speedupOf(baseElapsed, elapsed),
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// JSON renders the bench report as indented JSON with a trailing newline.
func (r *BenchReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
