package camkes

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mkbas/internal/capdl"
	"mkbas/internal/machine"
	"mkbas/internal/sel4"
)

// calcAssembly builds a tiny client/server assembly: an "adder" component
// provides "math", a "user" control component calls it.
func calcAssembly(calls *[]uint64, results *[][]uint64, errs *[]error) *Assembly {
	adder := &Component{
		Name:     "adder",
		Priority: 6,
		Provides: map[string]Handler{
			"math": func(rt *Runtime, method uint64, args []uint64, badge sel4.Badge) ([]uint64, error) {
				*calls = append(*calls, method)
				switch method {
				case 1: // add
					return []uint64{args[0] + args[1]}, nil
				case 2: // badge echo
					return []uint64{uint64(badge)}, nil
				default:
					return nil, errors.New("no such method")
				}
			},
		},
	}
	user := &Component{
		Name:     "user",
		Priority: 7,
		Uses:     []string{"math"},
		Run: func(rt *Runtime) {
			r, err := rt.Call("math", 1, 20, 22)
			*results = append(*results, r)
			*errs = append(*errs, err)
			r, err = rt.Call("math", 2)
			*results = append(*results, r)
			*errs = append(*errs, err)
			_, err = rt.Call("math", 99)
			*errs = append(*errs, err)
		},
	}
	return &Assembly{
		Components: []*Component{adder, user},
		Connections: []Connection{
			{FromComp: "user", FromIface: "math", ToComp: "adder", ToIface: "math"},
		},
	}
}

func TestRPCCallThroughGlue(t *testing.T) {
	m := machine.New(machine.Config{})
	var calls []uint64
	var results [][]uint64
	var errs []error
	sys, err := Build(m, calcAssembly(&calls, &results, &errs), BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	m.Run(time.Second)

	if len(errs) != 3 {
		t.Fatalf("errs = %v", errs)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("calls failed: %v", errs)
	}
	if results[0][0] != 42 {
		t.Fatalf("add result = %d, want 42", results[0][0])
	}
	if results[1][0] != 1 {
		t.Fatalf("badge = %d, want connection badge 1", results[1][0])
	}
	var rpcErr *RPCError
	if !errors.As(errs[2], &rpcErr) {
		t.Fatalf("bad method err = %v, want RPCError", errs[2])
	}
	if sys.Kernel().Stats().Calls != 3 {
		t.Fatalf("kernel calls = %d, want 3", sys.Kernel().Stats().Calls)
	}
}

func TestGeneratedCapDLMatchesKernel(t *testing.T) {
	m := machine.New(machine.Config{})
	var calls []uint64
	var results [][]uint64
	var errs []error
	sys, err := Build(m, calcAssembly(&calls, &results, &errs), BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	if err := sys.Verify(); err != nil {
		t.Fatalf("Verify at boot: %v", err)
	}
	m.Run(time.Second)
	if err := sys.Verify(); err != nil {
		t.Fatalf("Verify after run: %v", err)
	}
}

func TestVerifyCatchesExtraCapability(t *testing.T) {
	m := machine.New(machine.Config{})
	var calls []uint64
	var results [][]uint64
	var errs []error
	sys, err := Build(m, calcAssembly(&calls, &results, &errs), BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	// Sneak an undeclared capability into the user thread, as a compromised
	// bootstrap would.
	userTCB, ok := sys.TCB("user")
	if !ok {
		t.Fatal("no user tcb")
	}
	adderTCB, _ := sys.TCB("adder.math")
	if err := sys.Kernel().InstallCap(userTCB, 200, sel4.TCBCap(adderTCB, sel4.CapWrite)); err != nil {
		t.Fatal(err)
	}
	err = sys.Verify()
	if !errors.Is(err, capdl.ErrVerify) {
		t.Fatalf("Verify = %v, want ErrVerify", err)
	}
	if !strings.Contains(err.Error(), "EXTRA") {
		t.Fatalf("error should flag the extra capability: %v", err)
	}
}

func TestCapDLRenderParseRoundTrip(t *testing.T) {
	m := machine.New(machine.Config{})
	var calls []uint64
	var results [][]uint64
	var errs []error
	sys, err := Build(m, calcAssembly(&calls, &results, &errs), BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	text := sys.Spec().Render()
	parsed, err := capdl.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	if parsed.Render() != text {
		t.Fatalf("round trip mismatch:\n--- original\n%s\n--- reparsed\n%s", text, parsed.Render())
	}
	// The parsed spec must also verify against the kernel.
	if err := capdl.Verify(parsed, sys.Kernel(), sysBinding(sys)); err != nil {
		t.Fatalf("parsed spec verify: %v", err)
	}
}

// sysBinding rebuilds a Binding from the system's public accessors.
func sysBinding(sys *System) capdl.Binding {
	return sys.bind
}

func TestValidateRejectsBadAssemblies(t *testing.T) {
	handler := func(rt *Runtime, method uint64, args []uint64, badge sel4.Badge) ([]uint64, error) {
		return nil, nil
	}
	run := func(rt *Runtime) {}
	cases := []struct {
		name     string
		assembly *Assembly
	}{
		{"duplicate component", &Assembly{Components: []*Component{
			{Name: "x", Run: run}, {Name: "x", Run: run},
		}}},
		{"no threads", &Assembly{Components: []*Component{{Name: "x"}}}},
		{"nil handler", &Assembly{Components: []*Component{
			{Name: "x", Provides: map[string]Handler{"p": nil}},
		}}},
		{"connection from unknown comp", &Assembly{
			Components:  []*Component{{Name: "x", Run: run}},
			Connections: []Connection{{FromComp: "ghost", FromIface: "i", ToComp: "x", ToIface: "p"}},
		}},
		{"connection to missing iface", &Assembly{
			Components: []*Component{
				{Name: "a", Uses: []string{"i"}, Run: run},
				{Name: "b", Provides: map[string]Handler{"other": handler}},
			},
			Connections: []Connection{{FromComp: "a", FromIface: "i", ToComp: "b", ToIface: "p"}},
		}},
		{"unconnected uses", &Assembly{
			Components: []*Component{
				{Name: "a", Uses: []string{"i"}, Run: run},
				{Name: "b", Provides: map[string]Handler{"p": handler}},
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := machine.New(machine.Config{})
			defer m.Shutdown()
			if _, err := Build(m, tc.assembly, BuildConfig{}); !errors.Is(err, ErrBadAssembly) {
				t.Fatalf("Build = %v, want ErrBadAssembly", err)
			}
		})
	}
}

func TestTwoClientsDistinguishedByBadge(t *testing.T) {
	m := machine.New(machine.Config{})
	badges := make(map[uint64]int)
	server := &Component{
		Name:     "server",
		Priority: 6,
		Provides: map[string]Handler{
			"svc": func(rt *Runtime, method uint64, args []uint64, badge sel4.Badge) ([]uint64, error) {
				badges[uint64(badge)]++
				return nil, nil
			},
		},
	}
	mkClient := func(name string) *Component {
		return &Component{
			Name:     name,
			Priority: 7,
			Uses:     []string{"svc"},
			Run: func(rt *Runtime) {
				for i := 0; i < 3; i++ {
					rt.Call("svc", 1)
				}
			},
		}
	}
	assembly := &Assembly{
		Components: []*Component{server, mkClient("alice"), mkClient("bob")},
		Connections: []Connection{
			{FromComp: "alice", FromIface: "svc", ToComp: "server", ToIface: "svc"},
			{FromComp: "bob", FromIface: "svc", ToComp: "server", ToIface: "svc"},
		},
	}
	if _, err := Build(m, assembly, BuildConfig{}); err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	m.Run(time.Second)
	if badges[1] != 3 || badges[2] != 3 {
		t.Fatalf("badge counts = %v, want 3 calls each under badges 1 and 2", badges)
	}
}

func TestInterfaceThreadIsolation(t *testing.T) {
	// A component with two provided interfaces serves them on independent
	// threads: a handler blocking on one interface must not stall the other
	// (the paper's asymmetric-trust argument for seL4RPCCall).
	m := machine.New(machine.Config{})
	slowEntered := false
	var fastReplies int
	server := &Component{
		Name:     "server",
		Priority: 6,
		Provides: map[string]Handler{
			"slow": func(rt *Runtime, method uint64, args []uint64, badge sel4.Badge) ([]uint64, error) {
				slowEntered = true
				rt.Sleep(time.Hour) // hog this interface thread
				return nil, nil
			},
			"fast": func(rt *Runtime, method uint64, args []uint64, badge sel4.Badge) ([]uint64, error) {
				return []uint64{7}, nil
			},
		},
	}
	blocker := &Component{
		Name: "blocker", Priority: 7, Uses: []string{"slow"},
		Run: func(rt *Runtime) { rt.Call("slow", 1) },
	}
	prober := &Component{
		Name: "prober", Priority: 7, Uses: []string{"fast"},
		Run: func(rt *Runtime) {
			rt.Sleep(10 * time.Millisecond) // let blocker hit the slow path first
			for i := 0; i < 5; i++ {
				if r, err := rt.Call("fast", 1); err == nil && r[0] == 7 {
					fastReplies++
				}
			}
		},
	}
	assembly := &Assembly{
		Components: []*Component{server, blocker, prober},
		Connections: []Connection{
			{FromComp: "blocker", FromIface: "slow", ToComp: "server", ToIface: "slow"},
			{FromComp: "prober", FromIface: "fast", ToComp: "server", ToIface: "fast"},
		},
	}
	if _, err := Build(m, assembly, BuildConfig{}); err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	m.Run(time.Minute)
	if !slowEntered {
		t.Fatal("slow handler never entered")
	}
	if fastReplies != 5 {
		t.Fatalf("fast replies = %d, want 5 despite blocked sibling interface", fastReplies)
	}
}

func TestCapDLSpecRenderShape(t *testing.T) {
	m := machine.New(machine.Config{})
	var calls []uint64
	var results [][]uint64
	var errs []error
	sys, err := Build(m, calcAssembly(&calls, &results, &errs), BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	text := sys.Spec().Render()
	for _, want := range []string{
		"ep_adder_math = ep",
		"adder.math {",
		"0: ep_adder_math (r--, badge: 0)",
		"user {",
		"10: ep_adder_math (-wg, badge: 1)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("spec missing %q:\n%s", want, text)
		}
	}
}
