package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ACID is an access-control identity: the paper's ac_id field added to the
// MINIX 3 process control block. ACIDs are assigned when a process is loaded
// (fork2/srv_fork2) and, unlike PIDs, never recycled, so policy written in
// terms of ACIDs survives process restarts.
type ACID uint32

// NoACID marks a process that carries no access-control identity. Subjects
// without an identity match no Matrix row and are denied everything.
const NoACID ACID = 0

// MsgType is a small message-type number carried in every IPC message. The
// interpretation is negotiated between sender and receiver (the paper uses
// types as RPC selectors); the kernel treats it as an opaque index into the
// permission bitmask.
type MsgType uint8

// MsgAck is message type 0, reserved by convention for acknowledgments
// (Fig. 3).
const MsgAck MsgType = 0

// MaxMsgType is the largest representable message type (one 64-bit mask per
// matrix cell).
const MaxMsgType MsgType = 63

// TypeMask is a set of permitted message types, one bit per type.
type TypeMask uint64

// MaskOf builds a mask from individual types. It panics on a type above
// MaxMsgType: a Go shift of 64 or more silently yields a zero bit, which
// would turn the intended grant into a deny, so an out-of-range type is a
// policy-construction bug, never a runtime condition.
func MaskOf(types ...MsgType) TypeMask {
	var m TypeMask
	for _, t := range types {
		mustValidType(t)
		m |= 1 << t
	}
	return m
}

// mustValidType panics when t cannot be represented in a TypeMask.
func mustValidType(t MsgType) {
	if t > MaxMsgType {
		panic(fmt.Sprintf("core: message type %d out of range 0..%d: %v", t, MaxMsgType, ErrBadMsgType))
	}
}

// MaskAll permits every message type.
const MaskAll TypeMask = ^TypeMask(0)

// Has reports whether type t is in the mask.
func (m TypeMask) Has(t MsgType) bool { return m&(1<<t) != 0 }

// With returns the mask with type t added. Like MaskOf it panics on a type
// above MaxMsgType instead of silently granting nothing.
func (m TypeMask) With(t MsgType) TypeMask {
	mustValidType(t)
	return m | 1<<t
}

// Without returns the mask with type t removed.
func (m TypeMask) Without(t MsgType) TypeMask { return m &^ (1 << t) }

// Types expands the mask into its member types, ascending.
func (m TypeMask) Types() []MsgType {
	var out []MsgType
	for t := MsgType(0); ; t++ {
		if m.Has(t) {
			out = append(out, t)
		}
		if t == MaxMsgType {
			break
		}
	}
	return out
}

// String renders the mask in the paper's Fig. 3 bitmap notation: most
// significant type first, at least four digits wide, so {0,2,3} renders as
// "1101" and the ACK-only mask {0} as "0001" — exactly the figure's cells.
func (m TypeMask) String() string {
	if m == 0 {
		return "0000"
	}
	hi := MsgType(3) // Fig. 3 renders at least types 3..0
	for t := MsgType(0); ; t++ {
		if m.Has(t) && t > hi {
			hi = t
		}
		if t == MaxMsgType {
			break
		}
	}
	var b strings.Builder
	for t := int(hi); t >= 0; t-- {
		if m.Has(MsgType(t)) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Matrix is the sparse access control matrix. A cell (src, dst) holds the
// mask of message types src may send to dst; an absent cell denies all
// communication. The matrix is mutable while being built (by hand or by the
// AADL compiler) and immutable after Seal.
type Matrix struct {
	rules  map[ACID]map[ACID]TypeMask
	names  map[ACID]string
	sealed bool
}

// NewMatrix returns an empty, unsealed matrix.
func NewMatrix() *Matrix {
	return &Matrix{
		rules: make(map[ACID]map[ACID]TypeMask),
		names: make(map[ACID]string),
	}
}

// Matrix errors.
var (
	ErrSealed      = errors.New("core: matrix is sealed")
	ErrNotSealed   = errors.New("core: matrix is not sealed")
	ErrBadACID     = errors.New("core: invalid ACID")
	ErrBadMsgType  = errors.New("core: message type out of range")
	errDeniedBase  = errors.New("core: IPC denied by access control matrix")
	ErrNoQuotaLeft = errors.New("core: syscall quota exhausted")
)

// DeniedError describes one IPC denial, for kernel audit logs.
type DeniedError struct {
	Src  ACID
	Dst  ACID
	Type MsgType
}

func (e *DeniedError) Error() string {
	return fmt.Sprintf("core: IPC denied by ACM: src=%d dst=%d m_type=%d", e.Src, e.Dst, e.Type)
}

// Is makes errors.Is(err, ErrDenied) work for all denials.
func (e *DeniedError) Is(target error) bool { return target == ErrDenied }

// ErrDenied is the sentinel matched by every ACM denial.
var ErrDenied = errDeniedBase

// Name attaches a human-readable label to an ACID for rendering.
func (m *Matrix) Name(id ACID, name string) *Matrix {
	if m.sealed {
		panic(ErrSealed)
	}
	m.names[id] = name
	return m
}

// NameOf returns the label for an ACID, or its number if unnamed.
func (m *Matrix) NameOf(id ACID) string {
	if n, ok := m.names[id]; ok {
		return n
	}
	return fmt.Sprintf("acid-%d", id)
}

// Allow grants src the right to send the listed message types to dst,
// merging with any existing grant. It panics on a sealed matrix: policy is
// fixed at kernel build time, and attempted runtime mutation is a bug in the
// caller, not an operational error.
func (m *Matrix) Allow(src, dst ACID, types ...MsgType) *Matrix {
	return m.AllowMask(src, dst, MaskOf(types...))
}

// AllowMask grants src the right to send every type in mask to dst.
func (m *Matrix) AllowMask(src, dst ACID, mask TypeMask) *Matrix {
	if m.sealed {
		panic(ErrSealed)
	}
	if src == NoACID || dst == NoACID {
		panic(fmt.Sprintf("core: Allow with %v", ErrBadACID))
	}
	row, ok := m.rules[src]
	if !ok {
		row = make(map[ACID]TypeMask)
		m.rules[src] = row
	}
	row[dst] |= mask
	return m
}

// AllowBidirectionalAck grants both directions the ACKNOWLEDGE type (the
// Fig. 3 convention that "all confirm messages between processes be
// allowed" among communicating peers).
func (m *Matrix) AllowBidirectionalAck(a, b ACID) *Matrix {
	m.Allow(a, b, MsgAck)
	m.Allow(b, a, MsgAck)
	return m
}

// Seal freezes the matrix. Sealing twice is a no-op.
func (m *Matrix) Seal() *Matrix {
	m.sealed = true
	return m
}

// Sealed reports whether the matrix is frozen.
func (m *Matrix) Sealed() bool { return m.sealed }

// Mask returns the permitted-type mask for (src, dst); absent cells are 0.
func (m *Matrix) Mask(src, dst ACID) TypeMask {
	return m.rules[src][dst]
}

// Allows reports whether src may send a message of type t to dst.
func (m *Matrix) Allows(src, dst ACID, t MsgType) bool {
	if src == NoACID || dst == NoACID || t > MaxMsgType {
		return false
	}
	return m.rules[src][dst].Has(t)
}

// Check returns nil when the send is permitted and a *DeniedError otherwise.
func (m *Matrix) Check(src, dst ACID, t MsgType) error {
	if m.Allows(src, dst, t) {
		return nil
	}
	return &DeniedError{Src: src, Dst: dst, Type: t}
}

// Subjects returns every ACID mentioned by the matrix (as sender or
// receiver), ascending.
func (m *Matrix) Subjects() []ACID {
	seen := make(map[ACID]bool)
	for src, row := range m.rules {
		seen[src] = true
		for dst := range row {
			seen[dst] = true
		}
	}
	for id := range m.names {
		seen[id] = true
	}
	out := make([]ACID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an unsealed deep copy (useful for deriving variant policies
// in experiments).
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix()
	for src, row := range m.rules {
		for dst, mask := range row {
			c.AllowMask(src, dst, mask)
		}
	}
	for id, n := range m.names {
		c.names[id] = n
	}
	return c
}

// String renders the matrix in the tabular style of Fig. 3: one line per
// populated cell, "src -> dst : bitmap (types...)", sorted for stable output.
func (m *Matrix) String() string {
	type cell struct {
		src, dst ACID
		mask     TypeMask
	}
	var cells []cell
	for src, row := range m.rules {
		for dst, mask := range row {
			cells = append(cells, cell{src: src, dst: dst, mask: mask})
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].src != cells[j].src {
			return cells[i].src < cells[j].src
		}
		return cells[i].dst < cells[j].dst
	})
	var b strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&b, "%-16s -> %-16s : %s (m_types %v)\n",
			m.NameOf(c.src), m.NameOf(c.dst), c.mask, c.mask.Types())
	}
	return b.String()
}
