package perf

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
)

// CLI bundles the standard profiling flag set shared by the campaign
// commands (baslab, basbuilding, basmon): the -perf phase table, the Chrome
// host-trace export, and Go pprof wiring. Usage:
//
//	var prof perf.CLI
//	prof.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Finish()
//	... pass prof.Profiler() into lab/building/attack options ...
//
// The phase table goes to stderr by default so it never perturbs a
// command's stdout report (the bytes check.sh goldens compare); -perf-out
// redirects it to a file.
type CLI struct {
	Enabled    bool
	Out        string
	Timings    bool
	JSON       bool
	TracePath  string
	TraceNorm  bool
	CPUProfile string
	MemProfile string

	prof    *Profiler
	cpuFile *os.File
}

// RegisterFlags installs the profiling flags on fs.
func (c *CLI) RegisterFlags(fs *flag.FlagSet) {
	fs.BoolVar(&c.Enabled, "perf", false, "collect a host-side per-phase time/alloc profile and print the table")
	fs.StringVar(&c.Out, "perf-out", "", "write the perf table to this file instead of stderr")
	fs.BoolVar(&c.Timings, "perf-timings", true, "include host-dependent columns (total/avg/max/allocs, gauges); false leaves only the deterministic phase skeleton")
	fs.BoolVar(&c.JSON, "perf-json", false, "emit the perf profile as JSON instead of a table")
	fs.StringVar(&c.TracePath, "perf-trace", "", "write a Chrome trace-event timeline of the host execution (workers as tracks) to this file; implies -perf collection")
	fs.BoolVar(&c.TraceNorm, "perf-trace-normalize", false, "replace host timestamps in the trace with per-track event ordinals (byte-deterministic at workers=1)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a Go CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a Go heap profile to this file")
}

// Active reports whether any perf collection was requested.
func (c *CLI) Active() bool { return c.Enabled || c.TracePath != "" }

// Start builds the profiler (when requested) and begins CPU profiling (when
// requested). Call after flag parsing, before the campaign runs.
func (c *CLI) Start() error {
	if c.Active() {
		c.prof = New(Options{Timeline: c.TracePath != ""})
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return fmt.Errorf("perf: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("perf: cpuprofile: %w", err)
		}
		c.cpuFile = f
	}
	return nil
}

// Profiler returns the campaign profiler, nil when collection is off — safe
// to pass into options either way (every perf scope is nil-safe).
func (c *CLI) Profiler() *Profiler { return c.prof }

// Finish stops CPU profiling, writes the heap profile, and emits the phase
// table and Chrome trace. Call once, after the campaign completes.
func (c *CLI) Finish() error {
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			return fmt.Errorf("perf: cpuprofile: %w", err)
		}
		c.cpuFile = nil
	}
	if c.MemProfile != "" {
		f, err := os.Create(c.MemProfile)
		if err != nil {
			return fmt.Errorf("perf: memprofile: %w", err)
		}
		// The heap profile snapshots live objects; campaigns have already
		// quiesced here, so no runtime.GC is forced — the default profile
		// rate covers allocation sites regardless.
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("perf: memprofile: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("perf: memprofile: %w", err)
		}
	}
	if c.prof == nil {
		return nil
	}
	if c.TracePath != "" {
		trace, err := c.prof.ChromeTrace(c.TraceNorm)
		if err != nil {
			return fmt.Errorf("perf: trace: %w", err)
		}
		if err := os.WriteFile(c.TracePath, append(trace, '\n'), 0o644); err != nil {
			return fmt.Errorf("perf: trace: %w", err)
		}
	}
	if !c.Enabled {
		return nil
	}
	snap := c.prof.Snapshot(c.Timings)
	var out []byte
	if c.JSON {
		var err error
		out, err = snap.JSON()
		if err != nil {
			return fmt.Errorf("perf: %w", err)
		}
	} else {
		out = []byte(snap.Text())
	}
	if c.Out != "" {
		if err := os.WriteFile(c.Out, out, 0o644); err != nil {
			return fmt.Errorf("perf: %w", err)
		}
		return nil
	}
	_, err := os.Stderr.Write(out)
	return err
}
