package camkes

import (
	"testing"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/sel4"
	"mkbas/internal/vnet"
)

// richAssembly exercises every capability-bearing construct GenerateSpec
// models: RPC, events, devices, and network ports.
func richAssembly() *Assembly {
	server := &Component{
		Name:     "server",
		Priority: 6,
		Provides: map[string]Handler{
			"svc": func(rt *Runtime, method uint64, args []uint64, badge sel4.Badge) ([]uint64, error) {
				return nil, nil
			},
		},
		Consumes: []string{"tick"},
		Devices:  []machine.DeviceID{"sensor0"},
	}
	client := &Component{
		Name:     "client",
		Priority: 7,
		Uses:     []string{"svc"},
		Emits:    []string{"tick"},
		NetPorts: []vnet.Port{8080},
		Run:      func(rt *Runtime) {},
	}
	return &Assembly{
		Components:       []*Component{server, client},
		Connections:      []Connection{{FromComp: "client", FromIface: "svc", ToComp: "server", ToIface: "svc"}},
		EventConnections: []Connection{{FromComp: "client", FromIface: "tick", ToComp: "server", ToIface: "tick"}},
	}
}

// TestGenerateSpecIsPureAndDeterministic: the spec derives from the assembly
// alone, so repeated generation must render identically.
func TestGenerateSpecIsPureAndDeterministic(t *testing.T) {
	first, err := GenerateSpec(richAssembly())
	if err != nil {
		t.Fatalf("GenerateSpec: %v", err)
	}
	for i := 0; i < 3; i++ {
		again, err := GenerateSpec(richAssembly())
		if err != nil {
			t.Fatalf("GenerateSpec: %v", err)
		}
		if again.Render() != first.Render() {
			t.Fatalf("GenerateSpec not deterministic:\n%s\nvs\n%s", first.Render(), again.Render())
		}
	}
}

// TestBuildInstallsExactlyTheGeneratedSpec pins the spec-purity refactor:
// Build must install capabilities from the generated spec, so the booted
// system's spec is byte-identical to what static analysis saw — analyzing
// the spec IS analyzing the deployment.
func TestBuildInstallsExactlyTheGeneratedSpec(t *testing.T) {
	assembly := richAssembly()
	want, err := GenerateSpec(assembly)
	if err != nil {
		t.Fatalf("GenerateSpec: %v", err)
	}
	m := machine.New(machine.Config{})
	t.Cleanup(m.Shutdown)
	sys, err := Build(m, assembly, BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if sys.Spec().Render() != want.Render() {
		t.Fatalf("built spec diverges from generated spec:\n%s\nvs\n%s",
			sys.Spec().Render(), want.Render())
	}
	// And the kernel's actual capability distribution matches it.
	if err := sys.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	m.Run(100 * time.Millisecond)
}
