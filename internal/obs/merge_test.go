package obs

import (
	"reflect"
	"testing"
)

func TestMergeCounters(t *testing.T) {
	got := MergeCounters(
		[]CounterSnap{{Name: "b", Value: 2}, {Name: "a", Value: 1}},
		[]CounterSnap{{Name: "b", Value: 3}, {Name: "c", Value: 5}},
		nil,
	)
	want := []CounterSnap{{Name: "a", Value: 1}, {Name: "b", Value: 5}, {Name: "c", Value: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeCounters = %+v, want %+v", got, want)
	}
	if out := MergeCounters(); len(out) != 0 {
		t.Errorf("empty merge returned %+v", out)
	}
}

func TestMergeEventTotals(t *testing.T) {
	a := []EventTotal{
		{Kind: EventIPCDenied, Mechanism: MechACM, Denied: true, Count: 2},
		{Kind: EventIPCDenied, Mechanism: MechACM, Denied: false, Count: 1},
	}
	b := []EventTotal{
		{Kind: EventIPCDenied, Mechanism: MechACM, Denied: true, Count: 3},
		{Kind: EventIPCDenied, Mechanism: MechCapability, Denied: true, Count: 7},
	}
	got := MergeEventTotals(a, b)
	want := []EventTotal{
		{Kind: EventIPCDenied, Mechanism: MechACM, Denied: false, Count: 1},
		{Kind: EventIPCDenied, Mechanism: MechACM, Denied: true, Count: 5},
		{Kind: EventIPCDenied, Mechanism: MechCapability, Denied: true, Count: 7},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeEventTotals = %+v, want %+v", got, want)
	}
}

func TestMergeMechanisms(t *testing.T) {
	got := MergeMechanisms(
		[]Mechanism{MechDAC, MechACM},
		[]Mechanism{MechACM, MechCapability},
	)
	want := []Mechanism{MechACM, MechCapability, MechDAC}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeMechanisms = %v, want %v", got, want)
	}
}
