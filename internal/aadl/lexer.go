// Package aadl implements the modeling front end of the paper's workflow
// (Section IV): a parser for the AADL subset the scenario uses — processes
// with event data ports, system implementations with subcomponents and port
// connections, and property associations carrying each process's ac_id and
// each connection's permitted message types — plus the two source-to-source
// compilers the authors describe:
//
//   - AADL → ACM ("this source-to-source compiler can automatically
//     generate the ACM for the AADL specification"), emitting both a
//     core.Matrix for the simulated kernel and a C rendering equivalent to
//     what the authors compiled into their MINIX kernel;
//   - AADL → CAmkES ("we have begun development of an AADL to CAmkES
//     source-to-source compiler"), emitting the assembly topology for
//     internal/camkes and a CAmkES ADL text rendering.
//
// The grammar is a pragmatic subset of SAE AS5506 sufficient for the paper's
// models; it is not a general AADL front end.
package aadl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokIdent tokenKind = iota + 1
	tokNumber
	tokArrow    // ->
	tokAssoc    // =>
	tokColon    // :
	tokSemi     // ;
	tokDot      // .
	tokComma    // ,
	tokLParen   // (
	tokRParen   // )
	tokLBrace   // {
	tokRBrace   // }
	tokDblColon // ::
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokArrow:
		return "'->'"
	case tokAssoc:
		return "'=>'"
	case tokColon:
		return "':'"
	case tokSemi:
		return "';'"
	case tokDot:
		return "'.'"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokDblColon:
		return "'::'"
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexeme with its source line.
type token struct {
	kind tokenKind
	text string
	line int
}

// SyntaxError reports a lexing or parsing failure with its line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("aadl: line %d: %s", e.Line, e.Msg)
}

// lex tokenises AADL source. AADL comments run from "--" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{kind: tokArrow, text: "->", line: line})
			i += 2
		case c == '=' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{kind: tokAssoc, text: "=>", line: line})
			i += 2
		case c == ':' && i+1 < len(src) && src[i+1] == ':':
			toks = append(toks, token{kind: tokDblColon, text: "::", line: line})
			i += 2
		case c == ':':
			toks = append(toks, token{kind: tokColon, text: ":", line: line})
			i++
		case c == ';':
			toks = append(toks, token{kind: tokSemi, text: ";", line: line})
			i++
		case c == '.':
			toks = append(toks, token{kind: tokDot, text: ".", line: line})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ",", line: line})
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, text: "(", line: line})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, text: ")", line: line})
			i++
		case c == '{':
			toks = append(toks, token{kind: tokLBrace, text: "{", line: line})
			i++
		case c == '}':
			toks = append(toks, token{kind: tokRBrace, text: "}", line: line})
			i++
		case unicode.IsDigit(rune(c)):
			start := i
			for i < len(src) && unicode.IsDigit(rune(src[i])) {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: src[start:i], line: line})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: src[start:i], line: line})
		default:
			return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

// keywordIs compares an identifier against an AADL keyword
// (case-insensitive, as AADL is).
func keywordIs(tok token, kw string) bool {
	return tok.kind == tokIdent && strings.EqualFold(tok.text, kw)
}
