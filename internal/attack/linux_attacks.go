package attack

import (
	"errors"
	"time"

	"mkbas/internal/bas"
	"mkbas/internal/linuxsim"
	"mkbas/internal/machine"
)

// linuxAttackBody builds the compromised web interface for one action.
func linuxAttackBody(action Action, prog *progress) func(api *linuxsim.API) {
	return func(api *linuxsim.API) {
		api.Sleep(settleTime)
		api.Trace("attack", "web interface compromised, starting "+string(action))
		switch action {
		case ActionSpoofSensor:
			linuxSpoofSensor(api, prog)
		case ActionCommandActuators:
			linuxCommandActuators(api, prog)
		case ActionKillController:
			linuxKillController(api, prog)
		case ActionEnumerate:
			linuxEnumerate(api, prog)
		case ActionForkBomb:
			linuxForkBomb(api, prog)
		}
		for {
			api.Sleep(time.Hour)
		}
	}
}

// linuxOpenWriteRetry keeps trying to open a queue for writing. Under the
// hardened deployment the open is denied until (and unless) the escalation
// fires; each failed open is tallied as a denied operation.
func linuxOpenWriteRetry(api *linuxsim.API, prog *progress, name string, until machine.Time) (int32, bool) {
	for api.Now() < until {
		fd, err := api.MQOpen(name, linuxsim.MQOpenFlags{Write: true})
		if err == nil {
			return fd, true
		}
		prog.tally(err)
		api.Sleep(5 * time.Second)
	}
	return 0, false
}

// linuxSpoofSensor writes fake readings straight into the sensor queue: "we
// successfully used the web interface process to impersonate the temperature
// sensor process".
func linuxSpoofSensor(api *linuxsim.API, prog *progress) {
	end := api.Now().Add(attackTime)
	fd, ok := linuxOpenWriteRetry(api, prog, bas.QSensorData, end)
	if !ok {
		prog.note("never gained write access to %s", bas.QSensorData)
		return
	}
	prog.note("opened %s for writing", bas.QSensorData)
	for api.Now() < end {
		sendErr := api.MQSend(fd, []byte("temp 23.0000"), 2)
		if errors.Is(sendErr, linuxsim.ErrAgain) {
			api.Sleep(200 * time.Millisecond)
			continue
		}
		prog.tally(sendErr)
		api.Sleep(200 * time.Millisecond)
	}
}

// linuxCommandActuators drives the actuator queues directly, overriding the
// controller ("we were able to send commands to the heater actuator process
// and the alarm actuator process to arbitrarily control the fan and LED").
func linuxCommandActuators(api *linuxsim.API, prog *progress) {
	end := api.Now().Add(attackTime)
	heaterFD, okH := linuxOpenWriteRetry(api, prog, bas.QHeaterCmd, end)
	if !okH {
		prog.note("never gained write access to %s", bas.QHeaterCmd)
		return
	}
	alarmFD, okA := linuxOpenWriteRetry(api, prog, bas.QAlarmCmd, end)
	if !okA {
		prog.note("never gained write access to %s", bas.QAlarmCmd)
		return
	}
	for api.Now() < end {
		err1 := api.MQSend(heaterFD, []byte("heater off"), 9)
		if !errors.Is(err1, linuxsim.ErrAgain) {
			prog.tally(err1)
		}
		err2 := api.MQSend(alarmFD, []byte("alarm off"), 9)
		if !errors.Is(err2, linuxsim.ErrAgain) {
			prog.tally(err2)
		}
		api.Sleep(200 * time.Millisecond)
	}
}

// linuxKillController scans the pid space and kills whatever it may — under
// a shared account that is every scenario process; with root, everything.
func linuxKillController(api *linuxsim.API, prog *progress) {
	end := api.Now().Add(attackTime)
	self := api.GetPID()
	for api.Now() < end {
		for pid := 100; pid < 140; pid++ {
			if pid == self {
				continue
			}
			killErr := api.Kill(pid, linuxsim.SIGKILL)
			if errors.Is(killErr, linuxsim.ErrNoEnt) {
				continue // empty pid slot: not an authorization datum
			}
			prog.tally(killErr)
			if killErr == nil {
				prog.note("killed pid %d", pid)
			}
		}
		api.Sleep(30 * time.Second)
	}
}

// linuxEnumerate probes every scenario queue for unauthorized access; the
// web interface's legitimate surface is only QWebReq (write) and QWebResp
// (read).
func linuxEnumerate(api *linuxsim.API, prog *progress) {
	unauthorized := []string{bas.QSensorData, bas.QHeaterCmd, bas.QAlarmCmd, bas.QAuditLog}
	for _, name := range unauthorized {
		_, err := api.MQOpen(name, linuxsim.MQOpenFlags{Write: true})
		prog.tally(err)
		if err == nil {
			prog.note("unauthorized write access to %s", name)
		}
	}
	prog.note("queue scan complete: %d/%d accessible", prog.successes, prog.attempts)
}

// linuxForkBomb forks without limit; only the global process ceiling
// eventually pushes back, and it starves everyone, not just the attacker.
func linuxForkBomb(api *linuxsim.API, prog *progress) {
	for i := 0; i < 100; i++ {
		_, forkErr := api.Fork(bas.NameWebInterface)
		prog.tally(forkErr)
		api.Sleep(10 * time.Second)
	}
	prog.note("fork bomb wave complete: %d clones created", prog.successes)
}
