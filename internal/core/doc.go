// Package core implements the paper's primary contribution as a reusable
// library: the fine-grained mandatory access control mechanism for
// inter-process communication ("access control matrix", Section III-B), plus
// the syscall-auditing policy the authors add to the MINIX 3 process-management
// server and the quota extension they propose as future work (Section IV-D.2).
//
// The model is deliberately tiny, exactly as in the paper:
//
//   - every protected subject (process or system server) carries an immutable
//     access-control identity (ACID, the paper's ac_id) assigned at spawn
//     time via fork2()/srv_fork2();
//   - messages carry a small message-type number; types 0..63 fit one
//     64-bit bitmask per (sender, receiver) pair, and type 0 is reserved for
//     ACKNOWLEDGE by convention (Fig. 3);
//   - the Matrix is a sparse map from sender ACID to receiver ACID to the
//     bitmask of permitted message types. The kernel consults it on every
//     IPC send; a miss means deny-and-drop;
//   - the Matrix is sealed at boot. In the paper it is compiled into the
//     kernel binary; here Seal makes it immutable, and the kernel only
//     accepts sealed matrices.
//
// Package core is consumed by internal/minix (kernel enforcement), by
// internal/aadl (the AADL → ACM compiler emits a Matrix), and by the
// experiment harness, which reproduces the exact Fig. 3 example via
// Fig3Policy.
package core
