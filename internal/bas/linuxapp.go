package bas

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"mkbas/internal/bacnet"
	"mkbas/internal/linuxsim"
	"mkbas/internal/plant"
	"mkbas/internal/polcheck"
	"mkbas/internal/polcheck/monitor"
)

// POSIX message-queue names — "the scenario process in Linux spawns all
// other processes and creates 6 message queues that are needed for various
// communications" (Section IV-C).
const (
	QSensorData = "/sensor-data"
	QHeaterCmd  = "/heater-cmd"
	QAlarmCmd   = "/alarm-cmd"
	QWebReq     = "/web-req"
	QWebResp    = "/web-resp"
	QAuditLog   = "/audit-log"
)

// Wire format on Linux: newline-less text commands, e.g. "temp 21.50",
// "heater on", "setpoint 23", "status".

// Unix accounts. The paper's default deployment runs every process under the
// same account; the Hardened variant gives each a unique account, which the
// paper notes as the (insufficient) DAC mitigation.
const (
	baseUID = 1000
	baseGID = 1000

	hardScenarioUID = 100
	hardSensorUID   = 101
	hardCtrlUID     = 102
	hardHeaterUID   = 103
	hardAlarmUID    = 104
	hardWebUID      = 105
	hardCtrlGID     = 50 // control-plane group
	hardWebGID      = 60

	// The gateway account sits outside the control group, like the web
	// interface: the 0o602/0o604 web-queue modes already admit "other"
	// writers/readers, so no DAC table change is needed to host it.
	hardGatewayUID = 106
	// The tenant API gateway account mirrors the field-bus gateway's
	// placement: outside the control group, web-queue access only.
	hardTenantUID = 107
)

// LinuxOptions configures DeployLinux.
type LinuxOptions struct {
	// Hardened runs each process under a unique account with restrictive
	// queue modes — the configuration the paper says is required to blunt
	// the user-level attack ("unless each process runs under a unique user
	// account, and the message queue is specifically configured ... the
	// problem will still remain"). Even hardened, DAC cannot express
	// per-pair, per-message-type policy, and root bypasses it entirely.
	Hardened bool
	// WebBody replaces the legitimate web interface with attacker code.
	WebBody func(api *linuxsim.API)
	// SkipPolicyCheck disables the pre-deploy static policy gate; see
	// DeployOptions.SkipPolicyCheck for the shared semantics. On Linux the
	// gate certifies the hardened unique-account DAC model; the
	// same-account default deploys no per-process policy (every process is
	// one DAC principal, the paper's baseline finding), so — like
	// DisableACM on MINIX — there is nothing to certify and the gate is
	// skipped regardless of this field.
	SkipPolicyCheck bool
}

// account pairs a uid and gid.
type account struct{ uid, gid int }

// linuxAccounts is the deployment's account table, shared with the static
// DAC model (LinuxScenarioDAC) so the analyzer sees exactly what boots.
func linuxAccounts(hardened bool) map[string]account {
	if hardened {
		return map[string]account{
			NameScenario:     {hardScenarioUID, hardCtrlGID},
			NameTempSensor:   {hardSensorUID, hardCtrlGID},
			NameTempControl:  {hardCtrlUID, hardCtrlGID},
			NameHeaterAct:    {hardHeaterUID, hardCtrlGID},
			NameAlarmAct:     {hardAlarmUID, hardCtrlGID},
			NameWebInterface: {hardWebUID, hardWebGID},
		}
	}
	return map[string]account{
		NameScenario:     {baseUID, baseGID},
		NameTempSensor:   {baseUID, baseGID},
		NameTempControl:  {baseUID, baseGID},
		NameHeaterAct:    {baseUID, baseGID},
		NameAlarmAct:     {baseUID, baseGID},
		NameWebInterface: {baseUID, baseGID},
	}
}

// linuxQueueModes is the deployment's queue permission table, shared with
// the static DAC model.
func linuxQueueModes(hardened bool) map[string]linuxsim.Mode {
	if hardened {
		return map[string]linuxsim.Mode{
			QSensorData: 0o620, // control group may write (sensor)
			QHeaterCmd:  0o620, // control group may write (controller)
			QAlarmCmd:   0o620,
			QWebReq:     0o602, // web (other) may submit requests
			QWebResp:    0o604, // web (other) may read responses
			QAuditLog:   0o600,
		}
	}
	return map[string]linuxsim.Mode{
		QSensorData: 0o600, QHeaterCmd: 0o600, QAlarmCmd: 0o600,
		QWebReq: 0o600, QWebResp: 0o600, QAuditLog: 0o600,
	}
}

// linuxQueueCreators maps each queue to the process whose MQOpen(Create)
// establishes it — the queue's DAC owner: actuators create their command
// queues, the controller everything else.
func linuxQueueCreators() map[string]string {
	return map[string]string{
		QSensorData: NameTempControl,
		QHeaterCmd:  NameHeaterAct,
		QAlarmCmd:   NameAlarmAct,
		QWebReq:     NameTempControl,
		QWebResp:    NameTempControl,
		QAuditLog:   NameTempControl,
	}
}

// LinuxDeployment is the booted Linux platform.
type LinuxDeployment struct {
	deploymentBase
	Kernel  *linuxsim.Kernel
	Testbed *Testbed
}

var _ Deployment = (*LinuxDeployment)(nil)

// WebPID returns the unix pid of the (possibly compromised) web interface,
// for the GrantRoot escalation step.
func (d *LinuxDeployment) WebPID() (int, error) {
	return d.Kernel.PIDOf(NameWebInterface)
}

// ControllerAlive reports whether the temperature control process still has
// a pid.
func (d *LinuxDeployment) ControllerAlive() bool {
	_, err := d.Kernel.PIDOf(NameTempControl)
	return err == nil
}

// DeployLinux boots the Linux platform on a testbed. It is a thin wrapper
// over the Deploy registry, kept so existing callers compile unchanged.
//
// Deprecated: use Deploy(PlatformLinux, ...) (or PlatformLinuxHardened for
// Hardened) with DeployOptions instead.
func DeployLinux(tb *Testbed, cfg ScenarioConfig, opts LinuxOptions) (*LinuxDeployment, error) {
	platform := PlatformLinux
	if opts.Hardened {
		platform = PlatformLinuxHardened
	}
	dep, err := Deploy(platform, tb, cfg, DeployOptions{
		SkipPolicyCheck: opts.SkipPolicyCheck,
		LinuxWeb:        opts.WebBody,
	})
	if err != nil {
		return nil, err
	}
	return dep.(*LinuxDeployment), nil
}

// deployLinux is the Linux backend of the Deploy registry. platform selects
// the same-account default (PlatformLinux) or the unique-account hardened
// configuration (PlatformLinuxHardened).
func deployLinux(platform Platform, tb *Testbed, cfg ScenarioConfig, opts DeployOptions) (*LinuxDeployment, error) {
	hardened := platform == PlatformLinuxHardened
	// Pre-deploy gate: the hardened configuration claims the scenario's
	// security contract, so prove its DAC model satisfies it before boot.
	// The same-account default deploys no per-process policy and skips the
	// gate (see LinuxOptions.SkipPolicyCheck).
	if hardened && !opts.SkipPolicyCheck {
		if err := checkDeployPolicy(polcheck.FromDAC(LinuxScenarioDAC(true, false))); err != nil {
			return nil, err
		}
	}
	k := linuxsim.Boot(tb.Machine, linuxsim.Config{Net: tb.Net})
	sup := newDeploySupervision(tb, &cfg, opts)
	webBody := opts.LinuxWeb
	if webBody == nil {
		// The Linux deployment exports board metrics over its own web
		// interface, the way a real Linux controller would run node_exporter.
		metrics := tb.Machine.Obs().Metrics()
		webBody = func(api *linuxsim.API) { linuxWebBody(api, metrics) }
	}

	acct := linuxAccounts(hardened)
	qmode := linuxQueueModes(hardened)

	// Device files: same-account deployment puts everything under one
	// owner; hardened gives each driver its device.
	if hardened {
		k.RegisterDeviceFile(plant.DevTempSensor, hardSensorUID, hardCtrlGID, 0o600)
		k.RegisterDeviceFile(plant.DevHeater, hardHeaterUID, hardCtrlGID, 0o600)
		k.RegisterDeviceFile(plant.DevAlarm, hardAlarmUID, hardCtrlGID, 0o600)
	} else {
		k.RegisterDeviceFile(plant.DevTempSensor, baseUID, baseGID, 0o600)
		k.RegisterDeviceFile(plant.DevHeater, baseUID, baseGID, 0o600)
		k.RegisterDeviceFile(plant.DevAlarm, baseUID, baseGID, 0o600)
	}

	k.RegisterImage(linuxsim.Image{
		Name: NameHeaterAct, Priority: 4,
		UID: acct[NameHeaterAct].uid, GID: acct[NameHeaterAct].gid,
		Body: linuxActuatorBody(QHeaterCmd, "heater", plant.DevHeater, qmode[QHeaterCmd]),
	})
	k.RegisterImage(linuxsim.Image{
		Name: NameAlarmAct, Priority: 4,
		UID: acct[NameAlarmAct].uid, GID: acct[NameAlarmAct].gid,
		Body: linuxActuatorBody(QAlarmCmd, "alarm", plant.DevAlarm, qmode[QAlarmCmd]),
	})
	k.RegisterImage(linuxsim.Image{
		Name: NameTempControl, Priority: 5,
		UID: acct[NameTempControl].uid, GID: acct[NameTempControl].gid,
		Body: linuxControllerBody(cfg.Controller, qmode),
	})
	k.RegisterImage(linuxsim.Image{
		Name: NameTempSensor, Priority: 6,
		UID: acct[NameTempSensor].uid, GID: acct[NameTempSensor].gid,
		Body: linuxSensorBody(cfg.SamplePeriod),
	})
	k.RegisterImage(linuxsim.Image{
		Name: NameWebInterface, Priority: 7,
		UID: acct[NameWebInterface].uid, GID: acct[NameWebInterface].gid,
		Body: webBody,
	})

	if hardened && opts.Recovery {
		// Recovery on Linux is a root supervisord-style daemon, only offered
		// with the hardened configuration. The same-account default never gets
		// one: the paper's deployment has no supervisor, which is the gap the
		// chaos experiment (E10) measures.
		k.RegisterImage(linuxsim.Image{
			Name: NameSupervisor, Priority: 2, UID: 0, GID: 0,
			Body: linuxSupervisorBody(supervisedImages()),
		})
	}

	if hardened {
		// Unique accounts cannot be reached through fork (children inherit
		// credentials), so the deployment spawns each process directly.
		if opts.Recovery {
			if _, err := k.SpawnImage(NameSupervisor); err != nil {
				return nil, fmt.Errorf("bas: spawning %s: %w", NameSupervisor, err)
			}
		}
		for _, name := range []string{NameHeaterAct, NameAlarmAct, NameTempControl, NameTempSensor, NameWebInterface} {
			if _, err := k.SpawnImage(name); err != nil {
				return nil, fmt.Errorf("bas: spawning %s: %w", name, err)
			}
		}
	} else {
		k.RegisterImage(linuxsim.Image{
			Name: NameScenario, Priority: 3, UID: baseUID, GID: baseGID,
			Body: func(api *linuxsim.API) {
				for _, name := range []string{NameHeaterAct, NameAlarmAct, NameTempControl, NameTempSensor, NameWebInterface} {
					if _, err := api.Fork(name); err != nil {
						api.Trace("bas", fmt.Sprintf("loader: fork %s failed: %v", name, err))
					}
				}
				api.Exit()
			},
		})
		if _, err := k.SpawnImage(NameScenario); err != nil {
			return nil, fmt.Errorf("bas: spawning loader: %w", err)
		}
	}
	if opts.BACnet.Enabled {
		gwUID, gwGID := baseUID, baseGID
		if hardened {
			gwUID, gwGID = hardGatewayUID, hardWebGID
		}
		// The deployment owns the proxy's anti-replay state so a respawned
		// gateway resumes its nonce floor. Spawned directly (not through the
		// loader) on both DAC configurations: unique accounts cannot be
		// reached through fork anyway.
		state := bacnet.NewProxyState()
		k.RegisterImage(linuxsim.Image{
			Name: NameBACnetGateway, Priority: 7, UID: gwUID, GID: gwGID,
			Body: linuxBACnetGatewayBody(opts.BACnet, state, tb.Machine.Obs(), sup),
		})
		if _, err := k.SpawnImage(NameBACnetGateway); err != nil {
			return nil, fmt.Errorf("bas: spawning bacnet gateway: %w", err)
		}
	}
	dep := &LinuxDeployment{
		deploymentBase: deploymentBase{platform: platform, tb: tb},
		Kernel:         k,
		Testbed:        tb,
	}
	if opts.Monitor {
		dep.attachMonitor(linuxMonitorGraph(opts.BACnet.Enabled, opts.TenantAPI), monitor.Options{Profiler: opts.Profiler})
	}
	return dep, nil
}

// linuxMonitorGraph builds the certified graph the online monitor verifies
// against on BOTH Linux configurations: the hardened unique-account
// contract, the deployment's intended least-privilege shape. The
// same-account default deploys no per-process DAC policy, so there is no
// enforced policy to mirror — the monitor checks the contract instead,
// which is exactly how it flags a compromised web process doing what
// same-account DAC cannot forbid (writing /heater-cmd directly). When the
// BACnet gateway is deployed it joins the model with its hardened account;
// like the web interface it sits outside the control group, so the
// 0o602/0o604 web-queue modes already derive its legitimate edges.
// tenant API gateway subject joins the same way, under its own account.
func linuxMonitorGraph(withGateway, withTenant bool) *polcheck.Graph {
	model := LinuxScenarioDAC(true, false)
	if withGateway {
		model.Subjects = append(model.Subjects, polcheck.DACSubject{
			Name: NameBACnetGateway, UID: hardGatewayUID, GID: hardWebGID,
		})
	}
	if withTenant {
		model.Subjects = append(model.Subjects, polcheck.DACSubject{
			Name: NameTenantGateway, UID: hardTenantUID, GID: hardWebGID,
		})
	}
	return polcheck.FromDAC(model)
}

// linuxOpenRetry opens a queue, retrying while it does not exist yet
// (boot-order race between readers that create and writers that open).
func linuxOpenRetry(api *linuxsim.API, name string, flags linuxsim.MQOpenFlags) (int32, error) {
	for i := 0; i < 100; i++ {
		fd, err := api.MQOpen(name, flags)
		if err == nil {
			return fd, nil
		}
		if !errors.Is(err, linuxsim.ErrNoEnt) {
			return 0, err
		}
		api.Sleep(time.Millisecond)
	}
	return 0, fmt.Errorf("bas: queue %s never appeared", name)
}

// linuxActuatorBody creates its command queue and passively applies
// commands ("<verb> on|off").
func linuxActuatorBody(queue, verb string, dev plantDevice, mode linuxsim.Mode) func(api *linuxsim.API) {
	return func(api *linuxsim.API) {
		fd, err := api.MQOpen(queue, linuxsim.MQOpenFlags{Create: true, Read: true, Mode: mode})
		if err != nil {
			api.Trace("bas", fmt.Sprintf("%s driver: open: %v", verb, err))
			return
		}
		for {
			msg, err := api.MQReceive(fd)
			if err != nil {
				return
			}
			fields := strings.Fields(string(msg.Data))
			if len(fields) != 2 || fields[0] != verb {
				continue
			}
			var value uint32
			if fields[1] == "on" {
				value = 1
			}
			if err := api.DevWrite(dev, plant.RegActuate, value); err != nil {
				api.Trace("bas", fmt.Sprintf("%s driver: devwrite: %v", verb, err))
			}
		}
	}
}

// linuxSensorBody samples the room and pushes readings.
func linuxSensorBody(period time.Duration) func(api *linuxsim.API) {
	return func(api *linuxsim.API) {
		fd, err := linuxOpenRetry(api, QSensorData, linuxsim.MQOpenFlags{Write: true})
		if err != nil {
			api.Trace("bas", fmt.Sprintf("sensor: %v", err))
			return
		}
		// line is rebuilt in place each tick; MQSend copies the payload, so
		// the steady-state sample path allocates nothing.
		var line []byte
		for {
			api.Sleep(period)
			raw, err := api.DevRead(plant.DevTempSensor, plant.RegTempMilliC)
			if err != nil {
				continue
			}
			line = append(line[:0], "temp "...)
			line = plant.AppendTempFixed4(line, raw)
			if err := api.MQSend(fd, line, 0); err != nil {
				return
			}
		}
	}
}

// linuxControllerBody is the control loop: blocking-read sensor data, then
// poll the web request queue, exactly the paper's loop shape ("Then the
// process will check if there are pending messages from web interface
// process for updating new setpoint. At the end of the while loop,
// environment information will be written in a log").
func linuxControllerBody(cfg ControllerConfig, qmode map[string]linuxsim.Mode) func(api *linuxsim.API) {
	return func(api *linuxsim.API) {
		ctrl := NewController(cfg)
		sensorFD, err := api.MQOpen(QSensorData, linuxsim.MQOpenFlags{Create: true, Read: true, Mode: qmode[QSensorData]})
		if err != nil {
			return
		}
		webReqFD, err := api.MQOpen(QWebReq, linuxsim.MQOpenFlags{Create: true, Read: true, NonBlock: true, Mode: qmode[QWebReq]})
		if err != nil {
			return
		}
		webRespFD, err := api.MQOpen(QWebResp, linuxsim.MQOpenFlags{Create: true, Write: true, Mode: qmode[QWebResp]})
		if err != nil {
			return
		}
		auditFD, err := api.MQOpen(QAuditLog, linuxsim.MQOpenFlags{Create: true, Write: true, NonBlock: true, Mode: qmode[QAuditLog], MaxMsgs: 64})
		if err != nil {
			return
		}
		heaterFD, err := linuxOpenRetry(api, QHeaterCmd, linuxsim.MQOpenFlags{Write: true})
		if err != nil {
			return
		}
		alarmFD, err := linuxOpenRetry(api, QAlarmCmd, linuxsim.MQOpenFlags{Write: true})
		if err != nil {
			return
		}

		command := func(fd int32, verb string, on bool) {
			state := "off"
			if on {
				state = "on"
			}
			_ = api.MQSend(fd, []byte(verb+" "+state), 1)
		}
		// watchdog runs the staleness check and pushes failsafe decisions.
		watchdog := func() {
			heaterChanged, alarmChanged := ctrl.OnTick(api.Now())
			if heaterChanged || alarmChanged {
				api.Trace("bas", "controller: failsafe engaged, sensor readings stale")
			}
			if heaterChanged {
				command(heaterFD, "heater", ctrl.HeaterOn())
			}
			if alarmChanged {
				command(alarmFD, "alarm", ctrl.AlarmOn())
			}
		}
		// drainWeb answers pending web requests.
		drainWeb := func() {
			for {
				req, rerr := api.MQReceive(webReqFD)
				if rerr != nil {
					break
				}
				resp := handleLinuxWebReq(ctrl, string(req.Data))
				_ = api.MQSend(webRespFD, []byte(resp), 0)
			}
		}
		// auditLine is reused across iterations: the status line is rebuilt
		// in place each tick and MQSend copies the payload, so the steady
		// state log write allocates nothing.
		var auditLine []byte
		for {
			var msg linuxsim.MQMsg
			var err error
			if cfg.StalenessWindow > 0 {
				msg, err = api.MQReceiveTimeout(sensorFD, cfg.StalenessWindow/2)
			} else {
				msg, err = api.MQReceive(sensorFD)
			}
			if err != nil {
				if !errors.Is(err, linuxsim.ErrTimeout) {
					return
				}
				// Sensor silence: run the watchdog, and keep the web UI
				// responsive while the sensor path is down.
				watchdog()
				drainWeb()
				continue
			}
			fields := strings.Fields(string(msg.Data))
			if len(fields) == 2 && fields[0] == "temp" {
				temp, perr := strconv.ParseFloat(fields[1], 64)
				if perr == nil {
					// Design flaw preserved: no sender authentication — any
					// process that can write the queue is believed.
					heaterChanged, alarmChanged := ctrl.OnSample(api.Now(), temp)
					if heaterChanged {
						command(heaterFD, "heater", ctrl.HeaterOn())
					}
					if alarmChanged {
						command(alarmFD, "alarm", ctrl.AlarmOn())
					}
				}
			}
			// Non-sensor traffic must not starve the watchdog.
			watchdog()
			drainWeb()
			// Environment log; drop lines when the log is full.
			auditLine = ctrl.Snapshot().AppendText(auditLine[:0])
			_ = api.MQSend(auditFD, auditLine, 0)
		}
	}
}

// linuxSupervisorPeriod paces the supervisor's respawn sweep.
const linuxSupervisorPeriod = time.Second

// linuxSupervisorBody is the supervisord-style process supervisor: a root
// daemon that respawns any scenario process found dead. Only the hardened
// deployment runs one — the paper's default Linux deployment has no
// supervisor, which is what the chaos experiment (E10) measures.
func linuxSupervisorBody(images []string) func(api *linuxsim.API) {
	return func(api *linuxsim.API) {
		for {
			api.Sleep(linuxSupervisorPeriod)
			for _, name := range images {
				_, err := api.Respawn(name)
				if err != nil && !errors.Is(err, linuxsim.ErrExist) {
					api.Trace("supervisord", fmt.Sprintf("respawn %s: %v", name, err))
				}
			}
		}
	}
}

// handleLinuxWebReq processes one text request from the web queue.
func handleLinuxWebReq(ctrl *Controller, req string) string {
	fields := strings.Fields(req)
	switch {
	case len(fields) == 1 && fields[0] == "status":
		return ctrl.Snapshot().String()
	case len(fields) == 2 && fields[0] == "setpoint":
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return "err bad value"
		}
		if err := ctrl.SetSetpoint(v); err != nil {
			return "err range"
		}
		return "ok"
	default:
		return "err unknown request"
	}
}

// linuxControlClient adapts the request/response queue pair to
// ControlClient.
type linuxControlClient struct {
	api    *linuxsim.API
	reqFD  int32
	respFD int32
}

var _ ControlClient = (*linuxControlClient)(nil)

func (c *linuxControlClient) roundTrip(req string) (string, error) {
	if err := c.api.MQSend(c.reqFD, []byte(req), 0); err != nil {
		return "", err
	}
	resp, err := c.api.MQReceive(c.respFD)
	if err != nil {
		return "", err
	}
	return string(resp.Data), nil
}

func (c *linuxControlClient) Status() (Status, error) {
	line, err := c.roundTrip("status")
	if err != nil {
		return Status{}, err
	}
	return parseStatusLine(line)
}

func (c *linuxControlClient) SetSetpoint(v float64) error {
	resp, err := c.roundTrip(fmt.Sprintf("setpoint %.4f", v))
	if err != nil {
		return err
	}
	if resp != "ok" {
		return ErrSetpointRange
	}
	return nil
}

// parseStatusLine decodes Status.String() back into a Status.
func parseStatusLine(line string) (Status, error) {
	var st Status
	for _, field := range strings.Fields(line) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			continue
		}
		switch key {
		case "temp":
			st.Temp, _ = strconv.ParseFloat(val, 64)
		case "setpoint":
			st.Setpoint, _ = strconv.ParseFloat(val, 64)
		case "heater":
			st.HeaterOn = val == "on"
		case "alarm":
			st.AlarmOn = val == "on"
		case "samples":
			st.Samples, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	if st.Setpoint == 0 {
		return st, fmt.Errorf("bas: malformed status line %q", line)
	}
	return st, nil
}

// linuxWebBody is the legitimate web interface on Linux.
func linuxWebBody(api *linuxsim.API, metrics MetricsSource) {
	reqFD, err := linuxOpenRetry(api, QWebReq, linuxsim.MQOpenFlags{Write: true})
	if err != nil {
		api.Trace("bas", fmt.Sprintf("web: %v", err))
		return
	}
	respFD, err := linuxOpenRetry(api, QWebResp, linuxsim.MQOpenFlags{Read: true})
	if err != nil {
		api.Trace("bas", fmt.Sprintf("web: %v", err))
		return
	}
	l, err := api.NetListen(WebPort)
	if err != nil {
		api.Trace("bas", fmt.Sprintf("web: listen: %v", err))
		return
	}
	client := &linuxControlClient{api: api, reqFD: reqFD, respFD: respFD}
	ServeWeb(linuxListener{api: api, l: l}, client, metrics)
}

// Net adapters.

type linuxListener struct {
	api *linuxsim.API
	l   int32
}

func (ll linuxListener) Accept() (NetConn, error) {
	conn, err := ll.api.NetAccept(ll.l)
	if err != nil {
		return nil, err
	}
	return linuxConn{api: ll.api, fd: conn}, nil
}

type linuxConn struct {
	api *linuxsim.API
	fd  int32
}

func (lc linuxConn) Read(max int) ([]byte, error) { return lc.api.NetRead(lc.fd, max) }
func (lc linuxConn) Write(data []byte) error      { return lc.api.NetWrite(lc.fd, data) }
func (lc linuxConn) Close() error                 { return lc.api.NetClose(lc.fd) }
