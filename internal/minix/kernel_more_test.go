package minix

import (
	"errors"
	"testing"
	"time"

	"mkbas/internal/core"
	"mkbas/internal/machine"
)

// TestPMNotWedgedByNonReceivingClient is the regression test for the
// asymmetric-trust fix: a malicious client that fires a request at PM and
// never receives the reply must not block PM for everyone else.
func TestPMNotWedgedByNonReceivingClient(t *testing.T) {
	p := core.NewPolicy()
	p.Syscalls.Grant(acidA, core.SysFork)
	p.Seal()
	m, k := testBoard(t, p, Config{})
	k.RegisterImage(Image{Name: "drone", Priority: 9, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	k.RegisterImage(Image{Name: "rude", Priority: 7, Body: func(api *API) {
		pm, _ := api.Lookup(PMName)
		msg := NewMessage(TypePMKill)
		msg.PutU32(0, uint32(api.Self()))
		// Plain send, never receive the reply.
		_ = api.Send(pm, msg)
		api.Sleep(time.Hour)
	}})
	var forkErr error
	k.RegisterImage(Image{Name: "polite", Priority: 8, Body: func(api *API) {
		api.Sleep(10 * time.Millisecond) // let the rude client hit PM first
		_, forkErr = api.Fork2("drone", 0)
	}})
	spawnOrFatal(t, k, "rude", acidB)
	spawnOrFatal(t, k, "polite", acidA)
	m.Run(time.Second)
	if forkErr != nil {
		t.Fatalf("PM wedged by rude client: polite fork2 = %v", forkErr)
	}
}

func TestNotifyGovernedByACM(t *testing.T) {
	// Only the ack bit (type 0) authorizes notifications. testPolicy grants
	// A->B ack; C has no cells at all.
	m, k := testBoard(t, testPolicy(), Config{})
	var okErr, denyErr error
	k.RegisterImage(Image{Name: "b", Priority: 8, Body: func(api *API) {
		api.Receive(EndpointAny)
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		okErr = api.Notify(dst)
	}})
	k.RegisterImage(Image{Name: "c", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		denyErr = api.Notify(dst)
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	spawnOrFatal(t, k, "c", acidC)
	m.Run(time.Second)
	if okErr != nil {
		t.Fatalf("authorized notify failed: %v", okErr)
	}
	if !errors.Is(denyErr, core.ErrDenied) {
		t.Fatalf("unauthorized notify = %v, want denial", denyErr)
	}
}

func TestVanillaKernelPermitsSpoofAtIPCLayer(t *testing.T) {
	// Kernel-level counterpart of the attack-package ablation: without the
	// ACM the kernel happily delivers a fake sensor message, and only the
	// kernel-stamped Source would reveal the forgery to a careful receiver.
	m, k := testBoard(t, core.NewPolicy().Seal(), Config{DisableACM: true})
	var got Message
	k.RegisterImage(Image{Name: "ctrl", Priority: 8, Body: func(api *API) {
		got, _ = api.Receive(EndpointAny)
	}})
	var attackerEP Endpoint
	k.RegisterImage(Image{Name: "attacker", Priority: 7, Body: func(api *API) {
		attackerEP = api.Self()
		dst, _ := api.Lookup("ctrl")
		fake := NewMessage(int32(core.MsgSensorData))
		fake.PutF64(0, 99)
		api.Send(dst, fake)
	}})
	spawnOrFatal(t, k, "ctrl", acidA)
	spawnOrFatal(t, k, "attacker", acidB)
	m.Run(time.Second)
	if got.F64(0) != 99 {
		t.Fatal("vanilla kernel did not deliver the spoof")
	}
	if got.Source != attackerEP {
		t.Fatalf("source = %v, want kernel-stamped attacker endpoint %v", got.Source, attackerEP)
	}
}

func TestSendRecToRestartedServerGetsError(t *testing.T) {
	// A SendRec blocked on a server that dies mid-call errors out rather
	// than hanging forever.
	m, k := testBoard(t, testPolicy(), Config{})
	var rpcErr error
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		_, err := api.Receive(EndpointAny)
		if err != nil {
			return
		}
		api.Exit() // die without replying
	}})
	k.RegisterImage(Image{Name: "a", Priority: 8, Body: func(api *API) {
		api.Sleep(time.Millisecond)
		dst, _ := api.Lookup("b")
		_, rpcErr = api.SendRec(dst, NewMessage(1))
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	if !errors.Is(rpcErr, ErrDeadSrcDst) {
		t.Fatalf("rpc err = %v, want ErrDeadSrcDst", rpcErr)
	}
}

func TestReceiveSpecificFromSystemServer(t *testing.T) {
	// Receiving specifically from EndpointSystem must be expressible (RS
	// uses ANY, but the filter must not reject the system endpoint).
	m, k := testBoard(t, testPolicy(), Config{})
	done := false
	k.RegisterImage(Image{Name: "w", Priority: 7, Body: func(api *API) {
		// There is nothing to receive; just verify the call blocks rather
		// than erroring, by timing out via a short sleep race in a sibling.
		_, err := api.Receive(EndpointSystem)
		_ = err
		done = true
	}})
	spawnOrFatal(t, k, "w", acidA)
	res := m.Run(100 * time.Millisecond)
	if done {
		t.Fatal("receive from system returned without a message")
	}
	if res.Reason != machine.StopIdle && res.Reason != machine.StopDeadline {
		t.Fatalf("unexpected stop: %v", res.Reason)
	}
}

func TestMailboxFIFOAcrossSenders(t *testing.T) {
	m, k := testBoard(t, multiPolicy(), Config{})
	var order []uint32
	k.RegisterImage(Image{Name: "sink", Priority: 8, Body: func(api *API) {
		api.Sleep(20 * time.Millisecond)
		for i := 0; i < 4; i++ {
			msg, err := api.Receive(EndpointAny)
			if err == nil {
				order = append(order, msg.U32(0))
			}
		}
	}})
	mkSender := func(name string, tag uint32, delay time.Duration) {
		k.RegisterImage(Image{Name: name, Priority: 7, Body: func(api *API) {
			api.Sleep(delay)
			dst, _ := api.Lookup("sink")
			msg := NewMessage(1)
			msg.PutU32(0, tag)
			api.SendNB(dst, msg)
			msg.PutU32(0, tag+100)
			api.SendNB(dst, msg)
		}})
	}
	mkSender("s1", 1, time.Millisecond)
	mkSender("s2", 2, 2*time.Millisecond)
	spawnOrFatal(t, k, "sink", acidA)
	spawnOrFatal(t, k, "s1", acidB)
	spawnOrFatal(t, k, "s2", acidC)
	m.Run(time.Second)
	want := []uint32{1, 101, 2, 102}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (arrival FIFO)", order, want)
		}
	}
}

// multiPolicy allows B->A and C->A type 1.
func multiPolicy() *core.Policy {
	p := core.NewPolicy()
	p.IPC.Allow(acidB, acidA, 0, 1)
	p.IPC.Allow(acidC, acidA, 0, 1)
	return p.Seal()
}

func TestProcessTableExhaustion(t *testing.T) {
	p := core.NewPolicy()
	p.Syscalls.Grant(acidA, core.SysFork)
	p.Seal()
	m, k := testBoard(t, p, Config{})
	k.RegisterImage(Image{Name: "drone", Priority: 9, Body: func(api *API) {
		api.Sleep(time.Hour)
	}})
	var firstErr error
	granted := 0
	k.RegisterImage(Image{Name: "spawner", Priority: 7, Body: func(api *API) {
		for i := 0; i < maxSlots+10; i++ {
			if _, err := api.Fork2("drone", 0); err != nil {
				firstErr = err
				return
			}
			granted++
		}
	}})
	spawnOrFatal(t, k, "spawner", acidA)
	m.Run(10 * time.Minute)
	if !errors.Is(firstErr, ErrTableFull) {
		t.Fatalf("err = %v, want ErrTableFull", firstErr)
	}
	// Slots: table minus PM, RS, and the spawner itself.
	if granted != maxSlots-3 {
		t.Fatalf("granted = %d, want %d", granted, maxSlots-3)
	}
}

func TestStatsCounters(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	k.RegisterImage(Image{Name: "b", Priority: 7, Body: func(api *API) {
		for {
			if _, err := api.Receive(EndpointAny); err != nil {
				return
			}
		}
	}})
	k.RegisterImage(Image{Name: "a", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("b")
		api.Send(dst, NewMessage(1))
		api.Send(dst, NewMessage(9)) // denied
	}})
	spawnOrFatal(t, k, "b", acidB)
	spawnOrFatal(t, k, "a", acidA)
	m.Run(time.Second)
	stats := k.Stats()
	if stats.IPCDelivered == 0 || stats.IPCDenied != 1 || stats.Spawns < 4 {
		t.Fatalf("stats = %+v", stats)
	}
}
