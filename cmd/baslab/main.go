// Command baslab is the sharded experiment campaign runner: it expands a
// parameter sweep into independent virtual-board cases, runs them across a
// worker pool, and prints (or saves) the deterministically merged report —
// whose bytes are identical regardless of worker count.
//
// Usage:
//
//	baslab                                        # full E1: paper platforms × all actions × both models
//	baslab -workers 8                             # same campaign, 8 boards in flight
//	baslab -sweep "platforms=all;plants=all"      # every platform on every plant variant
//	baslab -sweep "platforms=minix3-acm;actions=fork-bomb;quotas=0,5" -json
//	baslab -faults crash-sensor -sweep "platforms=paper;actions=none"   # E10 chaos
//	baslab -faults plan.json                      # operator-authored fault plan
//	baslab -bench 1,2,4,8 -bench-out BENCH_lab.json
//	baslab -perf -workers 8                       # host-side phase profile on stderr
//	baslab -perf-trace trace.json -cpuprofile cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"mkbas/internal/attack"
	"mkbas/internal/cli"
	"mkbas/internal/faultinject"
	"mkbas/internal/lab"
	"mkbas/internal/perf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "baslab:", err)
		os.Exit(1)
	}
}

// defaultSweep is the paper's full E1 campaign.
const defaultSweep = "platforms=paper;actions=all;models=both"

func run() error {
	sweepFlag := flag.String("sweep", defaultSweep, `sweep spec: semicolon-separated axis=values clauses over platforms, actions, models, plants, quotas, faults, monitor`)
	faultsFlag := flag.String("faults", "", `comma list of fault plans for the chaos axis: builtin names (see faultinject.Names) or paths to plan JSON files`)
	var out cli.Output
	var pool cli.Pool
	out.Register(flag.CommandLine)
	pool.Register(flag.CommandLine)
	var prof perf.CLI
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	sweep, err := lab.ParseSweep(*sweepFlag)
	if err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	if *faultsFlag != "" {
		names, ferr := resolveFaults(*faultsFlag)
		if ferr != nil {
			return ferr
		}
		sweep.Faults = append(sweep.Faults, names...)
		if verr := sweep.Validate(); verr != nil {
			return verr
		}
	}

	if pool.Bench != "" {
		if err := runBench(sweep, &pool); err != nil {
			return err
		}
		// Bench runs are not phase-profiled (each worker count would smear
		// into one table), but -cpuprofile/-memprofile still apply.
		return prof.Finish()
	}

	opts := lab.Options{Workers: pool.Workers, Profiler: prof.Profiler()}
	if !out.Quiet {
		// Progress callbacks arrive from worker goroutines; stderr writes are
		// independent lines, and ordering is cosmetic.
		opts.Progress = func(c lab.Case, r *attack.Report) {
			fmt.Fprintf(os.Stderr, "done %-58s %s\n", c, r.Verdict())
		}
	}
	res, err := lab.Run(sweep, opts)
	if err != nil {
		return err
	}
	if err := prof.Finish(); err != nil {
		return err
	}
	if out.JSON {
		data, jerr := res.JSON()
		if jerr != nil {
			return jerr
		}
		_, werr := os.Stdout.Write(data)
		return werr
	}
	fmt.Print(res.Text())
	return nil
}

// resolveFaults turns each -faults item into a registered plan name. An item
// that names a readable file is parsed as a plan JSON and registered; anything
// else must be a builtin plan name.
func resolveFaults(spec string) ([]string, error) {
	var names []string
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if data, err := os.ReadFile(item); err == nil {
			plan, perr := faultinject.ParsePlan(data)
			if perr != nil {
				return nil, fmt.Errorf("fault plan %s: %w", item, perr)
			}
			if rerr := faultinject.Register(plan); rerr != nil {
				return nil, fmt.Errorf("fault plan %s: %w", item, rerr)
			}
			names = append(names, plan.Name)
			continue
		}
		names = append(names, item)
	}
	return names, nil
}

func runBench(sweep lab.Sweep, pool *cli.Pool) error {
	workerCounts, err := pool.BenchCounts()
	if err != nil {
		return err
	}
	rep, err := lab.Bench(sweep, workerCounts, runtime.NumCPU())
	if err != nil {
		return err
	}
	return cli.WriteBenchReport(rep, pool.BenchOut, "shards/s")
}
