package plant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mkbas/internal/machine"
)

func newRoom(cfg Config) (*machine.Clock, *Room) {
	c := machine.NewClock()
	return c, NewRoom(c, cfg)
}

func TestRoomCoolsTowardAmbient(t *testing.T) {
	m := machine.New(machine.Config{})
	room := NewRoom(m.Clock(), Config{InitialTemp: 25, Ambient: 15, LeakRate: 1e-3, HeaterPower: 1.0 / 60})
	m.Engine().SetHandler(nopKernel{})
	m.Clock().After(4*time.Hour, func() {})
	m.Run(4 * time.Hour)
	got := room.Temperature()
	if got > 15.1 {
		t.Fatalf("after 4h temp = %.3f, want ~15 (cooled to ambient)", got)
	}
	if got < 14.99 {
		t.Fatalf("temp %.3f undershot ambient", got)
	}
}

func TestHeaterRaisesSteadyState(t *testing.T) {
	m := machine.New(machine.Config{})
	cfg := Config{InitialTemp: 15, Ambient: 15, LeakRate: 1e-3, HeaterPower: 1.0 / 60}
	room := NewRoom(m.Clock(), cfg)
	m.Engine().SetHandler(nopKernel{})
	room.setHeater(true)
	m.Clock().After(8*time.Hour, func() {})
	m.Run(8 * time.Hour)
	want := cfg.Ambient + cfg.HeaterPower/cfg.LeakRate // 15 + 16.67
	if math.Abs(room.Temperature()-want) > 0.1 {
		t.Fatalf("steady state = %.3f, want %.3f", room.Temperature(), want)
	}
}

func TestClosedFormMatchesEuler(t *testing.T) {
	cfg := Config{InitialTemp: 18, Ambient: 15, LeakRate: 2e-3, HeaterPower: 1.0 / 60}
	m := machine.New(machine.Config{})
	room := NewRoom(m.Clock(), cfg)
	m.Engine().SetHandler(nopKernel{})
	room.setHeater(true)

	// Reference: fine-step explicit Euler over the same horizon.
	temp := cfg.InitialTemp
	const dt = 0.01
	horizon := 20 * time.Minute
	for s := 0.0; s < horizon.Seconds(); s += dt {
		temp += dt * (-cfg.LeakRate*(temp-cfg.Ambient) + cfg.HeaterPower)
	}

	m.Clock().After(horizon, func() {})
	m.Run(horizon)
	if math.Abs(room.Temperature()-temp) > 0.01 {
		t.Fatalf("closed form %.4f vs euler %.4f", room.Temperature(), temp)
	}
}

func TestLazyIntegrationIsSplitInvariant(t *testing.T) {
	// Observing the room mid-flight must not change the trajectory.
	run := func(observe bool) float64 {
		m := machine.New(machine.Config{})
		room := NewRoom(m.Clock(), DefaultConfig())
		m.Engine().SetHandler(nopKernel{})
		room.setHeater(true)
		if observe {
			for i := 1; i <= 9; i++ {
				m.Clock().After(time.Duration(i)*time.Minute, func() { _ = room.Temperature() })
			}
		}
		m.Clock().After(10*time.Minute, func() {})
		m.Run(10 * time.Minute)
		return room.Temperature()
	}
	a, b := run(false), run(true)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("trajectory depends on observation: %.12f vs %.12f", a, b)
	}
}

func TestFailedHeaterProducesNoHeat(t *testing.T) {
	m := machine.New(machine.Config{})
	room := NewRoom(m.Clock(), Config{InitialTemp: 15, Ambient: 15, LeakRate: 1e-3, HeaterPower: 1.0 / 60})
	m.Engine().SetHandler(nopKernel{})
	room.setHeater(true)
	room.FailHeater(true)
	m.Clock().After(time.Hour, func() {})
	m.Run(time.Hour)
	if got := room.Temperature(); math.Abs(got-15) > 1e-6 {
		t.Fatalf("failed heater heated the room to %.3f", got)
	}
	if !room.HeaterOn() {
		t.Fatal("heater command state lost during failure")
	}
}

func TestHistoryRecordsTransitions(t *testing.T) {
	m := machine.New(machine.Config{})
	room := NewRoom(m.Clock(), DefaultConfig())
	room.setHeater(true)
	room.setHeater(true) // duplicate: no event
	room.setAlarm(true)
	room.setHeater(false)
	h := room.History()
	want := []EventKind{EventHeaterOn, EventAlarmOn, EventHeaterOff}
	if len(h) != len(want) {
		t.Fatalf("history = %v, want kinds %v", h, want)
	}
	for i, k := range want {
		if h[i].Kind != k {
			t.Fatalf("history[%d] = %v, want %v", i, h[i].Kind, k)
		}
	}
}

func TestSensorNoiseDeterministic(t *testing.T) {
	read := func() []float64 {
		m := machine.New(machine.Config{})
		cfg := DefaultConfig()
		cfg.SensorNoise = 0.05
		cfg.Rand = rand.New(rand.NewSource(7))
		room := NewRoom(m.Clock(), cfg)
		var out []float64
		for i := 0; i < 5; i++ {
			out = append(out, room.readSensor())
		}
		return out
	}
	a, b := read(), read()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("noise not deterministic: %v vs %v", a, b)
		}
	}
	// Noise must actually perturb readings.
	allEqual := true
	for i := 1; i < len(a); i++ {
		if a[i] != a[0] {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("noisy sensor returned identical readings")
	}
}

func TestTempEncodingRoundTrip(t *testing.T) {
	f := func(milli int32) bool {
		// Constrain to physically plausible range.
		c := float64(milli%100000) / 1000
		return math.Abs(DecodeTemp(EncodeTemp(c))-c) < 0.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTempEncodingNegative(t *testing.T) {
	for _, c := range []float64{-40, -0.5, 0, 0.5, 21.37, 85} {
		if got := DecodeTemp(EncodeTemp(c)); math.Abs(got-c) > 0.001 {
			t.Fatalf("round trip %.3f -> %.3f", c, got)
		}
	}
}

func TestDevicesOnBus(t *testing.T) {
	m := machine.New(machine.Config{})
	room := Attach(m.Bus(), NewRoom(m.Clock(), DefaultConfig()))

	raw, err := m.Bus().Read(DevTempSensor, RegTempMilliC)
	if err != nil {
		t.Fatalf("sensor read: %v", err)
	}
	if got := DecodeTemp(raw); math.Abs(got-18) > 0.001 {
		t.Fatalf("sensor = %.3f, want 18", got)
	}

	if err := m.Bus().Write(DevHeater, RegActuate, 1); err != nil {
		t.Fatalf("heater write: %v", err)
	}
	if !room.HeaterOn() {
		t.Fatal("heater did not turn on via bus")
	}
	v, err := m.Bus().Read(DevHeater, RegActuate)
	if err != nil || v != 1 {
		t.Fatalf("heater readback = %d,%v want 1", v, err)
	}

	if err := m.Bus().Write(DevAlarm, RegActuate, 1); err != nil {
		t.Fatalf("alarm write: %v", err)
	}
	if !room.AlarmOn() {
		t.Fatal("alarm did not turn on via bus")
	}

	count, err := m.Bus().Read(DevTempSensor, RegSampleCount)
	if err != nil || count != 1 {
		t.Fatalf("sample count = %d,%v want 1", count, err)
	}

	// Sensor registers ignore writes.
	if err := m.Bus().Write(DevTempSensor, RegTempMilliC, 12345); err != nil {
		t.Fatalf("sensor write: %v", err)
	}
}

func TestSetAmbientDisturbance(t *testing.T) {
	m := machine.New(machine.Config{})
	room := NewRoom(m.Clock(), Config{InitialTemp: 20, Ambient: 20, LeakRate: 5e-3, HeaterPower: 1.0 / 60})
	m.Engine().SetHandler(nopKernel{})
	m.Clock().After(30*time.Minute, func() { room.SetAmbient(5) })
	m.Clock().After(5*time.Hour, func() {})
	m.Run(5 * time.Hour)
	if got := room.Temperature(); math.Abs(got-5) > 0.2 {
		t.Fatalf("after cold snap temp = %.3f, want ~5", got)
	}
}

func TestTimeConstant(t *testing.T) {
	_, room := newRoom(DefaultConfig())
	if got := room.TimeConstant(); got != 1000*time.Second {
		t.Fatalf("time constant = %v, want 1000s", got)
	}
}

// nopKernel satisfies machine.TrapHandler for plant-only simulations that
// spawn no processes.
type nopKernel struct{}

func (nopKernel) HandleTrap(pid machine.PID, req any) (any, machine.Disposition) {
	return nil, machine.DispositionContinue
}
func (nopKernel) OnProcExit(pid machine.PID, info machine.ExitInfo) {}
