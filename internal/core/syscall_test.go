package core

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestSyscallPolicyDenyByDefault(t *testing.T) {
	p := NewSyscallPolicy().Seal()
	ledger := NewQuotaLedger(p)
	err := ledger.Charge(100, SysKill)
	if err == nil {
		t.Fatal("empty policy allowed kill")
	}
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("denial does not match ErrDenied: %v", err)
	}
}

func TestSyscallGrantUnlimited(t *testing.T) {
	p := NewSyscallPolicy().Grant(100, SysFork).Seal()
	ledger := NewQuotaLedger(p)
	for i := 0; i < 1000; i++ {
		if err := ledger.Charge(100, SysFork); err != nil {
			t.Fatalf("charge %d: %v", i, err)
		}
	}
	if got := ledger.Remaining(100, SysFork); got != QuotaUnlimited {
		t.Fatalf("Remaining = %d, want unlimited", got)
	}
}

func TestSyscallQuotaExhaustion(t *testing.T) {
	p := NewSyscallPolicy().GrantQuota(104, SysFork, 3).Seal()
	ledger := NewQuotaLedger(p)
	for i := 0; i < 3; i++ {
		if err := ledger.Charge(104, SysFork); err != nil {
			t.Fatalf("charge %d: %v", i, err)
		}
	}
	err := ledger.Charge(104, SysFork)
	if err == nil {
		t.Fatal("4th fork allowed under quota 3")
	}
	if !errors.Is(err, ErrNoQuotaLeft) {
		t.Fatalf("exhaustion does not match ErrNoQuotaLeft: %v", err)
	}
	var denied *SyscallDeniedError
	if !errors.As(err, &denied) || !denied.Exhausted {
		t.Fatalf("want exhausted SyscallDeniedError, got %v", err)
	}
	if got := ledger.Remaining(104, SysFork); got != 0 {
		t.Fatalf("Remaining = %d, want 0", got)
	}
}

func TestQuotaLedgersAreIndependent(t *testing.T) {
	p := NewSyscallPolicy().GrantQuota(1, SysFork, 1).Seal()
	a, b := NewQuotaLedger(p), NewQuotaLedger(p)
	if err := a.Charge(1, SysFork); err != nil {
		t.Fatalf("ledger a: %v", err)
	}
	if err := b.Charge(1, SysFork); err != nil {
		t.Fatalf("ledger b should have its own budget: %v", err)
	}
	if err := a.Charge(1, SysFork); err == nil {
		t.Fatal("ledger a budget should be spent")
	}
}

func TestQuotaLedgerRequiresSealedPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewQuotaLedger accepted unsealed policy")
		}
	}()
	NewQuotaLedger(NewSyscallPolicy())
}

func TestSyscallProperty_QuotaNeverNegative(t *testing.T) {
	f := func(quota uint8, charges uint8) bool {
		q := int(quota % 32)
		p := NewSyscallPolicy().GrantQuota(7, SysExec, q).Seal()
		l := NewQuotaLedger(p)
		granted := 0
		for i := 0; i < int(charges); i++ {
			if l.Charge(7, SysExec) == nil {
				granted++
			}
		}
		rem := l.Remaining(7, SysExec)
		wantGranted := q
		if int(charges) < q {
			wantGranted = int(charges)
		}
		return granted == wantGranted && rem == q-granted && rem >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioPolicyShape(t *testing.T) {
	p := ScenarioPolicy()
	if !p.Sealed() {
		t.Fatal("scenario policy must come sealed")
	}
	m := p.IPC

	allowed := []struct {
		src, dst ACID
		mt       MsgType
	}{
		{ACIDTempSensor, ACIDTempControl, MsgSensorData},
		{ACIDTempControl, ACIDHeaterAct, MsgHeaterCmd},
		{ACIDTempControl, ACIDAlarmAct, MsgAlarmCmd},
		{ACIDWebInterface, ACIDTempControl, MsgSetpointUpdate},
		{ACIDWebInterface, ACIDTempControl, MsgStatusQuery},
		{ACIDTempControl, ACIDWebInterface, MsgAck},
	}
	for _, c := range allowed {
		if !m.Allows(c.src, c.dst, c.mt) {
			t.Errorf("%s -> %s type %d should be allowed",
				m.NameOf(c.src), m.NameOf(c.dst), c.mt)
		}
	}

	// The attacks of Section IV-D, as matrix lookups: the web interface must
	// not be able to impersonate the sensor or command the actuators.
	denied := []struct {
		src, dst ACID
		mt       MsgType
	}{
		{ACIDWebInterface, ACIDTempControl, MsgSensorData},
		{ACIDWebInterface, ACIDHeaterAct, MsgHeaterCmd},
		{ACIDWebInterface, ACIDAlarmAct, MsgAlarmCmd},
		{ACIDWebInterface, ACIDHeaterAct, MsgAck},
		{ACIDHeaterAct, ACIDTempControl, MsgSensorData},
		{ACIDAlarmAct, ACIDHeaterAct, MsgHeaterCmd},
	}
	for _, c := range denied {
		if m.Allows(c.src, c.dst, c.mt) {
			t.Errorf("%s -> %s type %d should be denied",
				m.NameOf(c.src), m.NameOf(c.dst), c.mt)
		}
	}

	// Kill is granted only to the loader.
	if !p.Syscalls.Rule(ACIDScenario, SysKill).Allowed {
		t.Error("scenario loader should hold kill")
	}
	for _, id := range []ACID{ACIDTempSensor, ACIDTempControl, ACIDHeaterAct, ACIDAlarmAct, ACIDWebInterface} {
		if p.Syscalls.Rule(id, SysKill).Allowed {
			t.Errorf("acid %d should not hold kill", id)
		}
	}
	// The web interface can fork (residual fork-bomb exposure).
	if !p.Syscalls.Rule(ACIDWebInterface, SysFork).Allowed {
		t.Error("web interface should hold fork in the baseline policy")
	}
}

func TestScenarioPolicyWithForkQuota(t *testing.T) {
	p := ScenarioPolicyWithForkQuota(5)
	rule := p.Syscalls.Rule(ACIDWebInterface, SysFork)
	if !rule.Allowed || rule.Quota != 5 {
		t.Fatalf("rule = %+v, want allowed with quota 5", rule)
	}
	// IPC surface identical to the baseline.
	base := ScenarioPolicy()
	for _, src := range base.IPC.Subjects() {
		for _, dst := range base.IPC.Subjects() {
			if base.IPC.Mask(src, dst) != p.IPC.Mask(src, dst) {
				t.Fatalf("IPC cell %d->%d differs from baseline", src, dst)
			}
		}
	}
}

func TestSyscallKindString(t *testing.T) {
	for k, want := range map[SyscallKind]string{
		SysFork: "fork", SysKill: "kill", SysExec: "exec", SysSetACID: "set_acid",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestScenarioPolicyWithGateway(t *testing.T) {
	p := ScenarioPolicyWithGateway()
	if !p.Sealed() {
		t.Fatal("gateway policy must come sealed")
	}
	m := p.IPC
	if !m.Allows(ACIDBACnetGateway, ACIDTempControl, MsgSetpointUpdate) ||
		!m.Allows(ACIDBACnetGateway, ACIDTempControl, MsgStatusQuery) {
		t.Fatal("gateway missing its management types")
	}
	// The gateway must have exactly the web interface's reach: nothing
	// toward the drivers or the sensor.
	for _, dst := range []ACID{ACIDHeaterAct, ACIDAlarmAct, ACIDTempSensor} {
		for mt := MsgType(0); mt <= 10; mt++ {
			if m.Allows(ACIDBACnetGateway, dst, mt) {
				t.Fatalf("gateway may send type %d to acid %d", mt, dst)
			}
		}
	}
	// Base scenario cells unchanged.
	base := ScenarioPolicy().IPC
	for _, src := range base.Subjects() {
		for _, dst := range base.Subjects() {
			if base.Mask(src, dst) != m.Mask(src, dst) {
				t.Fatalf("cell %d->%d differs from baseline", src, dst)
			}
		}
	}
}
