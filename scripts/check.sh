#!/usr/bin/env sh
# Repo-wide gate: build, vet, race-clean tests, prove the scenario's
# security properties statically on every platform, smoke the E4 overhead
# benchmarks, and check that the observability report is byte-deterministic.
set -eux
cd "$(dirname "$0")/.."
go build ./...
# Formatting gate: gofmt -l prints offenders without failing, so fail on any
# output explicitly.
test -z "$(gofmt -l .)"
go vet ./...
go test -race ./...
# The lab and building runners are the repo's multi-goroutine hot paths;
# vet and race them explicitly (twice, for scheduling variety) so the
# parallel suites stay standing gates even if the global pass is narrowed.
go vet ./internal/lab ./internal/building
go test -race -count=2 ./internal/lab ./internal/building
go run ./cmd/polcheck -scenario tempcontrol
# Least-privilege lint: every static grant the scenario never exercises must
# be covered by the checked-in allowlist; unknown or stale entries fail. The
# audit runs under the tenant-gateway-extended matrix (-tenant), which is a
# strict superset of the default one, so a single strict pass covers both —
# stale entries still fail, keeping the default rows honest too.
go run ./cmd/polcheck -scenario tempcontrol -tenant -audit -strict -allow polcheck.allow >/dev/null
# E4 must at least run; perf comparisons happen out of band. One iteration is
# enough for the smoke — the bench bodies themselves assert invariants.
go test -run XXX -bench BenchmarkE4 -benchtime 1x .
# Determinism golden: two runs of the default MINIX scenario must produce
# byte-identical observability reports (virtual time only, no map order).
out1="$(mktemp)"; out2="$(mktemp)"
trap 'rm -f "$out1" "$out2"' EXIT
go run ./cmd/basmon -platform minix -json >"$out1"
go run ./cmd/basmon -platform minix -json >"$out2"
cmp "$out1" "$out2"
# Shard-merge determinism golden: the same campaign run serially and with 8
# workers must produce byte-identical merged JSON (DESIGN.md §9).
smoke='platforms=paper;actions=kill-controller;models=both'
go run ./cmd/baslab -sweep "$smoke" -workers 1 -json -q >"$out1"
go run ./cmd/baslab -sweep "$smoke" -workers 8 -json -q >"$out2"
cmp "$out1" "$out2"
# Perf-skeleton determinism golden (DESIGN.md §13): the untimed phase profile
# (phase set, ordering, per-phase counts) is a pure function of the campaign,
# so it must be byte-identical at any worker count.
go run ./cmd/baslab -sweep "$smoke" -workers 1 -q -perf -perf-timings=false -perf-json -perf-out "$out1" >/dev/null
go run ./cmd/baslab -sweep "$smoke" -workers 8 -q -perf -perf-timings=false -perf-json -perf-out "$out2" >/dev/null
cmp "$out1" "$out2"
# Scaling bench: record shards/sec at 1/2/4/8 workers; exits nonzero if any
# width's merged JSON deviates from the serial baseline. The bench sweep is
# deliberately much wider than the deepest worker pool (50 shards vs 8
# workers) so the curve measures steady-state scheduling, not pool drain.
bench='platforms=all;actions=all;models=both'
go run ./cmd/baslab -sweep "$bench" -bench 1,2,4,8 -bench-out BENCH_lab.json
# E10 chaos smoke: one fault plan through each platform's recovery path
# (MINIX RS, the seL4 monitor, the hardened-Linux supervisor).
go run ./cmd/basmon -platform minix -faults crash-sensor -duration 1h >/dev/null
go run ./cmd/basmon -platform sel4 -recovery -faults crash-sensor -duration 1h >/dev/null
go run ./cmd/basmon -platform linux-hardened -recovery -faults crash-sensor -duration 1h >/dev/null
# Fault-sweep determinism golden: injection, recovery, and MTTR accounting
# must be byte-identical between serial and 8-worker runs (DESIGN.md §10).
chaos='platforms=paper;actions=none'
go run ./cmd/baslab -sweep "$chaos" -faults crash-sensor,hang-sensor -workers 1 -json -q >"$out1"
go run ./cmd/baslab -sweep "$chaos" -faults crash-sensor,hang-sensor -workers 8 -json -q >"$out2"
cmp "$out1" "$out2"
# Chaos scaling bench: the same determinism bit across worker widths.
go run ./cmd/baslab -sweep "$chaos" -faults crash-sensor -bench 1,2,4,8 -bench-out BENCH_faults.json
# Building determinism golden (DESIGN.md §11): a 16-room mixed building under
# the lateral-movement attack, with one room's sensor crashed, must produce
# byte-identical reports whether boards step serially or 8 at a time.
bldg='-rooms 16 -mix paper -secure even -settle 10m -window 20m -faults 2=crash-sensor'
go run ./cmd/basbuilding $bldg -workers 1 -json >"$out1"
go run ./cmd/basbuilding $bldg -workers 8 -json >"$out2"
cmp "$out1" "$out2"
# Building perf-skeleton golden: same contract as the lab one — counts per
# phase derive from rounds and rooms, never from the worker pool.
go run ./cmd/basbuilding $bldg -workers 1 -perf -perf-timings=false -perf-json -perf-out "$out1" >/dev/null
go run ./cmd/basbuilding $bldg -workers 8 -perf -perf-timings=false -perf-json -perf-out "$out2" >/dev/null
cmp "$out1" "$out2"
# E11 smoke: the per-room verdict table (legacy rooms COMPROMISED, secure
# rooms SECURE) and the no-attack baseline both run clean.
go run ./cmd/basbuilding -rooms 6 -settle 12m -window 20m >/dev/null
go run ./cmd/basbuilding -sweep 'rooms=4;mix=paper;secure=even,none;attack=both;settle=10m;window=10m' -json -q >/dev/null
# Building lockstep scaling bench: 64 boards in lockstep rounds; exits
# nonzero if any worker width's report deviates from the serial baseline.
go run ./cmd/basbuilding -rooms 64 -settle 10m -window 20m -bench 1,2,4,8 -bench-out BENCH_building.json
# E12 monitor smoke: the online policy monitor runs clean on every platform
# (zero drift on certified traffic is asserted by the unit tests).
go run ./cmd/basmon -platform minix -monitor -duration 30m >/dev/null
go run ./cmd/basmon -platform sel4 -monitor -duration 30m >/dev/null
go run ./cmd/basmon -platform linux -monitor -duration 30m >/dev/null
# E12 determinism golden: the monitored + demoting building (bus dial guard
# active) must stay byte-identical across worker counts.
e12='-rooms 6 -mix paper -secure even -settle 10m -window 15m -demote'
go run ./cmd/basbuilding $e12 -workers 1 -json >"$out1"
go run ./cmd/basbuilding $e12 -workers 8 -json >"$out2"
cmp "$out1" "$out2"
# E15 resilience golden (DESIGN.md §15): the partitioned building with a
# standby head-end — bus faults adjudicated at the flush barrier, failover
# round derived from bus silence — must stay byte-identical at any worker
# count.
e15='-rooms 16 -attack=false -busfaults partition-failover -standby -window 90m'
go run ./cmd/basbuilding $e15 -workers 1 -json >"$out1"
go run ./cmd/basbuilding $e15 -workers 8 -json >"$out2"
cmp "$out1" "$out2"
# E15 failover smoke: the standby's takeover is a pure function of virtual
# time — it must land on round 3976 (silence detection 90 rounds after the
# 65-minute head-end crash, on the 16-room stagger).
go run ./cmd/basbuilding $e15 >"$out1"
grep -q 'standby took over at round 3976' "$out1"
grep -q 'bus fault plan "partition-failover": 2 injected, 2 recovered, 0 unrecovered' "$out1"
# E16 tenant-API load-gen determinism golden (DESIGN.md §16): the merged
# million-request campaign report must be byte-identical whether the 64
# gateway shards run serially or across 8 workers.
go run ./cmd/basload -requests 200000 -workers 1 -json >"$out1"
go run ./cmd/basload -requests 200000 -workers 8 -json >"$out2"
cmp "$out1" "$out2"
# E16 attack smoke: the stolen-manager-token replay must ride the certified
# path to COMPROMISED, and incident response (-demote) must turn the same
# attack into BLOCKED at session auth.
go run ./cmd/attacklab -actions api-token-replay -platforms minix3-acm -model root >"$out1"
grep -q 'COMPROMISED' "$out1"
go run ./cmd/attacklab -actions api-token-replay -platforms minix3-acm -model root -demote >"$out1"
grep -q 'BLOCKED' "$out1"
# E16 basmon integration smoke: tenant traffic surfaces per-route counters
# and latency histograms in the board report, byte-deterministically.
go run ./cmd/basmon -platform minix -api 2000 -json >"$out1"
go run ./cmd/basmon -platform minix -api 2000 -json >"$out2"
cmp "$out1" "$out2"
grep -q 'api_latency_room-status' "$out1"
# E16 building smoke: the building-scale tenant tier stays byte-identical
# across worker counts (gateway batches run at the round barrier).
e16b='-rooms 4 -settle 5m -window 10m -api'
go run ./cmd/basbuilding $e16b -workers 1 -json >"$out1"
go run ./cmd/basbuilding $e16b -workers 4 -json >"$out2"
cmp "$out1" "$out2"
# Tenant API scaling bench: requests/sec across worker widths; exits nonzero
# if any width's merged report deviates from the serial baseline.
go run ./cmd/basload -bench 1,2,4,8 -bench-out BENCH_api.json
# Bench guard: the four BENCH records re-measured above must not collapse
# below the checked-in baselines on board_steps_per_sec. The tolerance
# still absorbs CI jitter (0.4 = fail below 60% of baseline) but was
# tightened once the hot-path rebuild (DESIGN.md §14) made throughput
# worth defending; scripts/bench_compare.sh prints the percent-level
# deltas this guard deliberately ignores.
go run ./cmd/benchguard -tolerance 0.4
