// Package obs is the board-wide observability layer: a metrics registry
// (counters, gauges, virtual-time histograms), an IPC span tracer, and a
// unified security-event stream shared by all three kernel personalities.
//
// Everything in this package is deterministic by construction: timestamps
// come from the board's virtual clock (never the wall clock), reports sort
// every map-derived collection, and the package allocates no goroutines.
// Two runs of the same scenario at the same seed therefore produce
// byte-identical reports — the property cmd/basmon's golden check enforces.
//
// The package deliberately does not import internal/machine: the machine
// package hosts a Board on every Machine, so the dependency points the
// other way. Virtual instants cross the boundary as obs.Time (nanoseconds
// since boot, the same representation machine.Time uses).
package obs

import "time"

// Time is a virtual instant: nanoseconds since board boot. It mirrors
// machine.Time without importing it.
type Time int64

// String renders the instant as a duration since boot ("12.5s").
func (t Time) String() string { return time.Duration(t).String() }

// Board bundles the three observability facilities for one virtual
// controller board. All methods on a Board and its facilities must be
// called from the engine goroutine (or while the engine is parked), the
// same discipline machine.Trace follows.
type Board struct {
	now     func() Time
	metrics *Registry
	tracer  *Tracer
	events  *EventLog
}

// NewBoard creates a board observatory reading virtual time from now.
// A nil now pins the clock to boot, which keeps unit tests terse.
func NewBoard(now func() Time) *Board {
	if now == nil {
		now = func() Time { return 0 }
	}
	return &Board{
		now:     now,
		metrics: NewRegistry(),
		tracer:  NewTracer(now, 0),
		events:  NewEventLog(now, 0),
	}
}

// Now reports the current virtual instant.
func (b *Board) Now() Time { return b.now() }

// Metrics returns the board's metrics registry.
func (b *Board) Metrics() *Registry { return b.metrics }

// Tracer returns the board's IPC span tracer.
func (b *Board) Tracer() *Tracer { return b.tracer }

// Events returns the board's security-event stream.
func (b *Board) Events() *EventLog { return b.events }
