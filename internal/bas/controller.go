// Package bas implements the paper's application layer: the five processes
// of the temperature-control scenario (Fig. 2), written once as
// platform-neutral logic and bound to each of the three simulated operating
// systems (security-enhanced MINIX 3, seL4/CAmkES, Linux).
//
// Keeping one control-law implementation is deliberate: when the attack
// experiments show different outcomes across platforms, the only variable is
// the kernel underneath, exactly as in the paper's comparison.
//
// Note what the controller does NOT do: it never checks who sent it a
// message. The paper argues the kernel should protect even such naive
// processes ("even if the temperature control process has design flaws, like
// failing to check the message type and sender's identity, the kernel will
// audit each round of communication"), so the shared logic deliberately has
// that design flaw.
package bas

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"mkbas/internal/machine"
)

// ControllerConfig parameterises the temperature control law.
type ControllerConfig struct {
	// Setpoint is the initial desired temperature, °C.
	Setpoint float64
	// MinSetpoint/MaxSetpoint bound administrator adjustments ("adjust the
	// desired room temperature within this range").
	MinSetpoint float64
	MaxSetpoint float64
	// Hysteresis is the bang-bang dead band: heater on below
	// setpoint-hysteresis, off above setpoint+hysteresis.
	Hysteresis float64
	// AlarmTolerance is how far from the setpoint the room may drift before
	// it counts as out of range.
	AlarmTolerance float64
	// AlarmDelay is how long the room may stay out of range before the
	// alarm trips ("if the controller fails to achieve the desired
	// temperature within certain time interval (e.g., 5 minutes), the alarm
	// will be triggered").
	AlarmDelay time.Duration
	// StalenessWindow is the sensor watchdog: with no fresh sample for this
	// long the controller enters failsafe (heater off, alarm on) rather than
	// keep actuating on stale data. Zero disables the watchdog. The window
	// must comfortably exceed the platforms' driver-restart MTTR so a
	// reincarnated sensor never trips it.
	StalenessWindow time.Duration
	// Supervision, when non-nil, is the room's supervisory-traffic watchdog
	// (building deployments only): while it reports degraded the controller
	// pins its setpoint to the last committed supervisory value, so a room
	// cut off from its BMS runs autonomously on trustworthy state instead of
	// whatever a late unverified write left behind. Never marshalled.
	Supervision *Supervision `json:"-"`
}

// DefaultControllerConfig matches the scenario narrative: 22 °C setpoint
// adjustable within 15..30, quarter-degree dead band, 2 °C tolerance, 5
// minute alarm delay.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		Setpoint:        22,
		MinSetpoint:     15,
		MaxSetpoint:     30,
		Hysteresis:      0.25,
		AlarmTolerance:  2.0,
		AlarmDelay:      5 * time.Minute,
		StalenessWindow: 10 * time.Second,
	}
}

// ErrSetpointRange reports a setpoint outside the permitted range.
var ErrSetpointRange = errors.New("bas: setpoint outside permitted range")

// Status is a snapshot of the controller state, served to the web interface.
type Status struct {
	Temp     float64
	Setpoint float64
	HeaterOn bool
	AlarmOn  bool
	Samples  int64
}

// String renders the status line the web interface returns.
func (s Status) String() string {
	return string(s.AppendText(nil))
}

// AppendText appends the status line to buf and returns the extended slice.
// Bindings that emit a status line every control tick (the Linux audit log)
// use this with a reused buffer so the hot path stays allocation-free; the
// output is byte-identical to String.
func (s Status) AppendText(buf []byte) []byte {
	buf = append(buf, "temp="...)
	buf = strconv.AppendFloat(buf, s.Temp, 'f', 2, 64)
	buf = append(buf, " setpoint="...)
	buf = strconv.AppendFloat(buf, s.Setpoint, 'f', 2, 64)
	buf = append(buf, " heater="...)
	buf = append(buf, onOff(s.HeaterOn)...)
	buf = append(buf, " alarm="...)
	buf = append(buf, onOff(s.AlarmOn)...)
	buf = append(buf, " samples="...)
	return strconv.AppendInt(buf, s.Samples, 10)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// Controller is the temperature-control state machine. It is pure logic:
// platform bindings feed it samples and carry out its actuator decisions.
type Controller struct {
	cfg      ControllerConfig
	setpoint float64

	heaterOn bool
	alarmOn  bool
	lastTemp float64
	samples  int64

	outSince    machine.Time
	outOfRange  bool
	everSampled bool

	lastSampleAt machine.Time
	failsafe     bool
}

// NewController builds a controller.
func NewController(cfg ControllerConfig) *Controller {
	return &Controller{cfg: cfg, setpoint: cfg.Setpoint}
}

// OnSample processes one sensor reading at virtual instant now. It returns
// whether the heater or alarm command changed; the caller pushes changed
// commands to the actuator drivers.
func (c *Controller) OnSample(now machine.Time, temp float64) (heaterChanged, alarmChanged bool) {
	c.lastTemp = temp
	c.samples++
	c.everSampled = true
	c.lastSampleAt = now

	// A fresh reading ends failsafe: the decisions below are the exit
	// transition, computed from real data again.
	c.failsafe = false

	// Bang-bang heater control with hysteresis.
	wantHeater := c.heaterOn
	switch {
	case temp < c.setpoint-c.cfg.Hysteresis:
		wantHeater = true
	case temp > c.setpoint+c.cfg.Hysteresis:
		wantHeater = false
	}
	heaterChanged = wantHeater != c.heaterOn
	c.heaterOn = wantHeater

	// Alarm timer: trip after AlarmDelay continuously out of range.
	inRange := temp >= c.setpoint-c.cfg.AlarmTolerance && temp <= c.setpoint+c.cfg.AlarmTolerance
	wantAlarm := c.alarmOn
	if inRange {
		c.outOfRange = false
		wantAlarm = false
	} else {
		if !c.outOfRange {
			c.outOfRange = true
			c.outSince = now
		}
		if now.Sub(c.outSince) >= c.cfg.AlarmDelay {
			wantAlarm = true
		}
	}
	alarmChanged = wantAlarm != c.alarmOn
	c.alarmOn = wantAlarm
	return heaterChanged, alarmChanged
}

// OnTick runs the sensor-staleness watchdog. Platform bindings call it when
// a sample period elapses without a reading. If the last sample is older
// than the staleness window the controller enters failsafe: heater off (a
// blind controller must not keep heating) and alarm on (operators must hear
// that the loop is broken). The next OnSample exits failsafe.
func (c *Controller) OnTick(now machine.Time) (heaterChanged, alarmChanged bool) {
	// Supervisory watchdog first: degraded mode is independent of sensor
	// staleness (the sensor is local; the BMS is across the bus).
	if v, degraded := c.cfg.Supervision.Check(now); degraded {
		c.setpoint = v
	}
	if c.cfg.StalenessWindow <= 0 || !c.everSampled || c.failsafe {
		return false, false
	}
	if now.Sub(c.lastSampleAt) < c.cfg.StalenessWindow {
		return false, false
	}
	c.failsafe = true
	heaterChanged = c.heaterOn
	c.heaterOn = false
	alarmChanged = !c.alarmOn
	c.alarmOn = true
	return heaterChanged, alarmChanged
}

// Failsafe reports whether the staleness watchdog has the controller in its
// degraded mode.
func (c *Controller) Failsafe() bool { return c.failsafe }

// SetSetpoint applies an administrator update, clamped to the permitted
// range. Out-of-range requests are rejected, not clamped, so a compromised
// web interface cannot silently push the room to an extreme.
func (c *Controller) SetSetpoint(v float64) error {
	if v < c.cfg.MinSetpoint || v > c.cfg.MaxSetpoint {
		return fmt.Errorf("%w: %.2f not in [%.2f, %.2f]",
			ErrSetpointRange, v, c.cfg.MinSetpoint, c.cfg.MaxSetpoint)
	}
	c.setpoint = v
	return nil
}

// HeaterOn reports the current heater command.
func (c *Controller) HeaterOn() bool { return c.heaterOn }

// AlarmOn reports the current alarm command.
func (c *Controller) AlarmOn() bool { return c.alarmOn }

// Setpoint reports the active setpoint.
func (c *Controller) Setpoint() float64 { return c.setpoint }

// Snapshot returns the current status.
func (c *Controller) Snapshot() Status {
	return Status{
		Temp:     c.lastTemp,
		Setpoint: c.setpoint,
		HeaterOn: c.heaterOn,
		AlarmOn:  c.alarmOn,
		Samples:  c.samples,
	}
}
