package sel4

import (
	"errors"
	"testing"
	"time"
)

func TestSignalWaitRendezvous(t *testing.T) {
	m, k := newBoard(t)
	n := k.CreateNotification("irq")
	var got Badge
	var waitErr error
	waiter := k.CreateThread("waiter", 7, func(api *API) {
		got, waitErr = api.Wait(1)
	})
	signaler := k.CreateThread("signaler", 8, func(api *API) {
		api.Sleep(time.Millisecond)
		if err := api.Signal(1); err != nil {
			t.Errorf("signal: %v", err)
		}
	})
	mustInstall(t, k, waiter, 1, NotificationCap(n, CapRead, 0))
	mustInstall(t, k, signaler, 1, NotificationCap(n, CapWrite, 0b100))
	mustStart(t, k, waiter)
	mustStart(t, k, signaler)
	m.Run(time.Second)
	if waitErr != nil {
		t.Fatalf("wait: %v", waitErr)
	}
	if got != 0b100 {
		t.Fatalf("word = %b, want signaler badge 100", got)
	}
}

func TestSignalBadgesAccumulate(t *testing.T) {
	m, k := newBoard(t)
	n := k.CreateNotification("irq")
	var got Badge
	collector := k.CreateThread("collector", 8, func(api *API) {
		api.Sleep(10 * time.Millisecond) // let both signals land first
		got, _ = api.Wait(1)
	})
	mkSignaler := func(name string, badge Badge) ObjID {
		id := k.CreateThread(name, 7, func(api *API) {
			api.Signal(1)
			api.Signal(1) // duplicate collapses into the same bit
		})
		mustInstall(t, k, id, 1, NotificationCap(n, CapWrite, badge))
		return id
	}
	s1 := mkSignaler("s1", 0b01)
	s2 := mkSignaler("s2", 0b10)
	mustInstall(t, k, collector, 1, NotificationCap(n, CapRead, 0))
	mustStart(t, k, collector)
	mustStart(t, k, s1)
	mustStart(t, k, s2)
	m.Run(time.Second)
	if got != 0b11 {
		t.Fatalf("word = %b, want OR of both badges", got)
	}
}

func TestPollNonBlocking(t *testing.T) {
	m, k := newBoard(t)
	n := k.CreateNotification("irq")
	var first, second error
	var word Badge
	th := k.CreateThread("poller", 7, func(api *API) {
		_, first = api.Poll(1)
		api.Signal(2)
		word, second = api.Poll(1)
	})
	mustInstall(t, k, th, 1, NotificationCap(n, CapRead, 0))
	mustInstall(t, k, th, 2, NotificationCap(n, CapWrite, 0b1000))
	mustStart(t, k, th)
	m.Run(time.Second)
	if !errors.Is(first, ErrWouldBlock) {
		t.Fatalf("empty poll = %v, want ErrWouldBlock", first)
	}
	if second != nil || word != 0b1000 {
		t.Fatalf("poll after signal = %b, %v", word, second)
	}
}

func TestNotificationRightsEnforced(t *testing.T) {
	m, k := newBoard(t)
	n := k.CreateNotification("irq")
	var sigErr, waitErr error
	th := k.CreateThread("wrong", 7, func(api *API) {
		sigErr = api.Signal(1)   // read-only cap
		_, waitErr = api.Poll(2) // write-only cap
	})
	mustInstall(t, k, th, 1, NotificationCap(n, CapRead, 1))
	mustInstall(t, k, th, 2, NotificationCap(n, CapWrite, 1))
	mustStart(t, k, th)
	m.Run(time.Second)
	if !errors.Is(sigErr, ErrNoRights) {
		t.Fatalf("signal with read-only cap = %v", sigErr)
	}
	if !errors.Is(waitErr, ErrNoRights) {
		t.Fatalf("wait with write-only cap = %v", waitErr)
	}
}

func TestSignalOnEndpointCapFails(t *testing.T) {
	m, k := newBoard(t)
	ep := k.CreateEndpoint("chan")
	var sigErr error
	th := k.CreateThread("confused", 7, func(api *API) {
		sigErr = api.Signal(1)
	})
	mustInstall(t, k, th, 1, EndpointCap(ep, RightsRWG, 0))
	mustStart(t, k, th)
	m.Run(time.Second)
	if !errors.Is(sigErr, ErrInvalidCap) {
		t.Fatalf("signal on endpoint cap = %v, want ErrInvalidCap", sigErr)
	}
}

func TestWaiterRemovedOnDeath(t *testing.T) {
	m, k := newBoard(t)
	n := k.CreateNotification("irq")
	waiter := k.CreateThread("doomed", 7, func(api *API) {
		api.Wait(1)
	})
	var got Badge
	survivor := k.CreateThread("survivor", 8, func(api *API) {
		api.Sleep(5 * time.Millisecond)
		got, _ = api.Wait(1)
	})
	killer := k.CreateThread("killer", 8, func(api *API) {
		api.Sleep(time.Millisecond)
		if err := api.TCBSuspend(3); err != nil {
			t.Errorf("suspend: %v", err)
		}
		api.Sleep(10 * time.Millisecond)
		api.Signal(1)
	})
	mustInstall(t, k, waiter, 1, NotificationCap(n, CapRead, 0))
	mustInstall(t, k, survivor, 1, NotificationCap(n, CapRead, 0))
	mustInstall(t, k, killer, 1, NotificationCap(n, CapWrite, 7))
	mustInstall(t, k, killer, 3, TCBCap(waiter, CapWrite))
	mustStart(t, k, waiter)
	mustStart(t, k, survivor)
	mustStart(t, k, killer)
	m.Run(time.Second)
	if got != 7 {
		t.Fatalf("survivor word = %d, want 7 (dead waiter must not absorb the signal)", got)
	}
	if k.ThreadAlive(waiter) {
		t.Fatal("waiter should be suspended")
	}
}

func TestInterruptStyleDriverPattern(t *testing.T) {
	// The pattern notifications enable: a device-ish signaler wakes a driver
	// thread which batches work. Deterministic count check.
	m, k := newBoard(t)
	n := k.CreateNotification("irq")
	handled := 0
	driver := k.CreateThread("driver", 7, func(api *API) {
		for handled < 5 {
			if _, err := api.Wait(1); err != nil {
				return
			}
			handled++
		}
	})
	source := k.CreateThread("source", 8, func(api *API) {
		for i := 0; i < 5; i++ {
			api.Sleep(time.Millisecond)
			api.Signal(1)
		}
	})
	mustInstall(t, k, driver, 1, NotificationCap(n, CapRead, 0))
	mustInstall(t, k, source, 1, NotificationCap(n, CapWrite, 1))
	mustStart(t, k, driver)
	mustStart(t, k, source)
	res := m.Run(time.Second)
	if handled != 5 {
		t.Fatalf("handled = %d, want 5 (stop: %v)", handled, res.Reason)
	}
}
