package bas

import (
	"fmt"

	"mkbas/internal/linuxsim"
	"mkbas/internal/plant"
	"mkbas/internal/polcheck"
)

// ScenarioProperties is the static security contract of the Fig. 2 scenario,
// encoding the paper's Section IV-D attack goals as checkable assertions:
//
//   - the compromised web interface must not command actuators directly
//     (spoofing attack: forged MsgHeaterCmd / queue writes);
//   - the web interface must hold no destroy authority over the controller
//     (process-destruction attack: kill(2) / TCB_Suspend);
//   - the web interface's IPC surface is exactly one destination, the
//     controller's management interface ("the web interface has only one
//     capability, to communicate with the temperature controller process");
//   - and, so that a deny-everything policy cannot trivially pass, the
//     legitimate control flows must exist: sensor → controller → actuators,
//     web → controller.
//
// MINIX ACM and seL4 CapDL scenario policies satisfy every property; the
// default and root-escalated Linux DAC models violate the deny/kill/surface
// properties — the paper's outcome table, derived without booting a kernel.
func ScenarioProperties() []polcheck.Property {
	return []polcheck.Property{
		polcheck.DenyPath{From: NameWebInterface, To: NameHeaterAct},
		polcheck.DenyPath{From: NameWebInterface, To: NameAlarmAct},
		polcheck.NoKillAuthority{Subject: NameWebInterface, Target: NameTempControl},
		polcheck.OnlyEndpoint{Subject: NameWebInterface, Max: 1},
		polcheck.AllowPath{From: NameTempSensor, To: NameTempControl},
		polcheck.AllowPath{From: NameTempControl, To: NameHeaterAct},
		polcheck.AllowPath{From: NameTempControl, To: NameAlarmAct},
		polcheck.AllowPath{From: NameWebInterface, To: NameTempControl},
	}
}

// LinuxScenarioDAC builds the static DAC model of the DeployLinux
// deployment — same account, mode, and ownership tables the boot path uses,
// so the analysis cannot drift from the running system. hardened selects the
// unique-accounts variant; webRoot models the paper's privilege-escalation
// assumption by running the web interface as uid 0.
func LinuxScenarioDAC(hardened, webRoot bool) *polcheck.DACModel {
	acct := linuxAccounts(hardened)
	qmode := linuxQueueModes(hardened)
	creators := linuxQueueCreators()

	model := &polcheck.DACModel{}
	names := []string{
		NameTempSensor, NameTempControl, NameHeaterAct, NameAlarmAct, NameWebInterface,
	}
	if !hardened {
		// The loader only exists in the same-account deployment (unique
		// accounts cannot be reached through fork).
		names = append([]string{NameScenario}, names...)
	}
	for _, name := range names {
		a := acct[name]
		if webRoot && name == NameWebInterface {
			a = account{0, 0}
		}
		model.Subjects = append(model.Subjects, polcheck.DACSubject{
			Name: name, UID: a.uid, GID: a.gid,
		})
	}
	for _, q := range []string{QSensorData, QHeaterCmd, QAlarmCmd, QWebReq, QWebResp, QAuditLog} {
		owner := acct[creators[q]]
		model.Queues = append(model.Queues, polcheck.DACObject{
			Name: q, OwnerUID: owner.uid, OwnerGID: owner.gid, Mode: qmode[q],
		})
	}
	devOwner := map[plantDevice]account{
		plant.DevTempSensor: acct[NameTempSensor],
		plant.DevHeater:     acct[NameHeaterAct],
		plant.DevAlarm:      acct[NameAlarmAct],
	}
	if !hardened {
		for dev := range devOwner {
			devOwner[dev] = account{baseUID, baseGID}
		}
	}
	for _, dev := range []plantDevice{plant.DevTempSensor, plant.DevHeater, plant.DevAlarm} {
		o := devOwner[dev]
		model.Devices = append(model.Devices, polcheck.DACObject{
			Name: "/dev/" + string(dev), OwnerUID: o.uid, OwnerGID: o.gid,
			Mode: linuxsim.Mode(0o600),
		})
	}
	return model
}

// checkDeployPolicy is the pre-deploy gate: the platform's policy graph must
// satisfy every scenario property or the deployment refuses to boot.
func checkDeployPolicy(g *polcheck.Graph) error {
	report := polcheck.CheckProperties(g, ScenarioProperties())
	if !report.Pass() {
		return fmt.Errorf("bas: pre-deploy policy check failed on %s:\n%s",
			g.Platform, report.Text())
	}
	return nil
}
