package minix

import (
	"errors"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/vnet"
)

// IPC and kernel-call errors.
var (
	// ErrDeadSrcDst reports IPC addressed to a dead or never-existing
	// endpoint (MINIX EDEADSRCDST).
	ErrDeadSrcDst = errors.New("minix: dead or invalid source/destination endpoint")
	// ErrMailboxFull reports an asynchronous send to a full mailbox.
	ErrMailboxFull = errors.New("minix: asynchronous mailbox full")
	// ErrNoPrivilege reports a privileged operation attempted by an
	// unprivileged process (kernel calls, device or network access).
	ErrNoPrivilege = errors.New("minix: operation not permitted for this process")
	// ErrUnknownImage reports a fork2/exec of an unregistered binary image.
	ErrUnknownImage = errors.New("minix: unknown process image")
	// ErrNameNotFound reports a directory-service lookup miss.
	ErrNameNotFound = errors.New("minix: name not published")
	// ErrBadHandle reports an invalid listener/connection handle.
	ErrBadHandle = errors.New("minix: bad descriptor")
	// ErrTableFull reports process-table exhaustion.
	ErrTableFull = errors.New("minix: process table full")
	// ErrSelfSend reports a process sending to itself (guaranteed deadlock
	// under rendezvous semantics, refused like MINIX's ELOCKED).
	ErrSelfSend = errors.New("minix: send to self would deadlock")
	// ErrTimeout reports a ReceiveTimeout that expired with no message, or a
	// send whose delivery was lost in transit (fault injection).
	ErrTimeout = errors.New("minix: IPC timed out")
)

// Trap request types. These are the wire format between a simulated process
// and the kernel; user code uses the API wrappers instead.
type (
	sendReq struct {
		dst Endpoint
		msg Message
	}
	receiveReq struct {
		from Endpoint
	}
	receiveTimeoutReq struct {
		from Endpoint
		d    time.Duration
	}
	sendRecReq struct {
		dst Endpoint
		msg Message
	}
	notifyReq struct {
		dst Endpoint
	}
	sendNBReq struct {
		dst Endpoint
		msg Message
	}
	sleepReq struct {
		d time.Duration
	}
	devReadReq struct {
		dev machine.DeviceID
		reg uint32
	}
	devWriteReq struct {
		dev   machine.DeviceID
		reg   uint32
		value uint32
	}
	lookupReq struct {
		name string
	}
	netListenReq struct {
		port vnet.Port
	}
	netAcceptReq struct {
		listener int32
	}
	netReadReq struct {
		conn int32
		max  int
	}
	netWriteReq struct {
		conn int32
		data []byte
	}
	netCloseReq struct {
		conn int32
	}
	exitReq struct{}

	// Privileged kernel calls, usable only by system servers (PM, RS).
	kSpawnReq struct {
		image string
		acid  acidArg
	}
	kKillReq struct {
		target Endpoint
	}
)

// acidArg carries an access-control identity across the PM protocol; the
// zero value means "inherit the caller's".
type acidArg uint32

// Trap reply types.
type (
	errReply struct {
		err error
	}
	ipcReply struct {
		msg Message
		err error
	}
	u32Reply struct {
		value uint32
		err   error
	}
	epReply struct {
		ep  Endpoint
		err error
	}
	handleReply struct {
		handle int32
		err    error
	}
	bytesReply struct {
		data []byte
		err  error
	}
)

// Wire error codes used inside PM protocol payloads.
const (
	codeOK int32 = iota
	codeEPerm
	codeENoEnt
	codeEQuota
	codeETableFull
	codeEUnknownImage
)

// codeFromErr maps kernel errors onto PM wire codes.
func codeFromErr(err error) int32 {
	switch {
	case err == nil:
		return codeOK
	case errors.Is(err, ErrUnknownImage):
		return codeEUnknownImage
	case errors.Is(err, ErrTableFull):
		return codeETableFull
	case errors.Is(err, ErrDeadSrcDst):
		return codeENoEnt
	default:
		return codeEPerm
	}
}

// errFromCode maps PM wire codes back to errors on the caller side.
func errFromCode(code int32) error {
	switch code {
	case codeOK:
		return nil
	case codeENoEnt:
		return ErrDeadSrcDst
	case codeEQuota:
		return errQuotaWire
	case codeETableFull:
		return ErrTableFull
	case codeEUnknownImage:
		return ErrUnknownImage
	default:
		return errPermWire
	}
}

// Wire-level sentinels for PM denials; distinct from kernel errors so tests
// can tell where a denial happened.
var (
	errPermWire  = errors.New("minix: denied by process manager policy")
	errQuotaWire = errors.New("minix: denied by process manager: quota exhausted")
)

// ErrPMDenied is the sentinel for PM policy denials.
var ErrPMDenied = errPermWire

// ErrPMQuota is the sentinel for PM quota exhaustion.
var ErrPMQuota = errQuotaWire
