package bas

import (
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/obs"
)

// Supervision is the room-side half of the building resilience story: the
// gateway's watchdog on supervisory traffic. A room that stops hearing from
// its BMS — bus partition, head-end death, cut cable — must not coast on
// whatever setpoint it last happened to hold: it falls back to the last
// setpoint a *verified* supervisory write committed, keeps its local
// failsafe rules, and re-converges when supervision returns.
//
// The verification boundary is the secure proxy. On proxied rooms the proxy
// drops forged and replayed frames before the gateway's store ever sees
// them, so every NoteFrame/NoteCommit really was the head-end — the
// committed setpoint is trustworthy. On legacy rooms any on-bus attacker
// can keep the room "supervised" and poison the committed value; degraded
// mode inherits exactly the trust of the protocol underneath, which is the
// paper's point restated at building scale.
//
// One Supervision instance is shared by the gateway process (NoteFrame /
// NoteCommit) and the controller (Check from OnTick). Both run on the same
// board engine, so the sharing is single-threaded and deterministic.
type Supervision struct {
	now    func() machine.Time
	window time.Duration
	events *obs.EventLog

	lost     *obs.Counter
	restored *obs.Counter
	state    *obs.Gauge // 1 while degraded

	committed float64
	lastSeen  machine.Time
	seenAny   bool
	degraded  bool
}

// NewSupervision builds the watchdog. window is how long the gateway may go
// without verified supervisory traffic before the room degrades; committed
// seeds the fallback setpoint (the value the room booted with, until a
// verified write commits another).
func NewSupervision(now func() machine.Time, board *obs.Board, window time.Duration, committed float64) *Supervision {
	return &Supervision{
		now:       now,
		window:    window,
		events:    board.Events(),
		lost:      board.Metrics().Counter("supervision_lost_total"),
		restored:  board.Metrics().Counter("supervision_restored_total"),
		state:     board.Metrics().Gauge("supervision_degraded"),
		committed: committed,
	}
}

// newDeploySupervision builds the room's supervisory watchdog when the
// deployment options ask for one, binding it into cfg.Controller so the
// platform's controller body picks it up. Called by every deploy backend
// before it constructs the controller; nil (and zero cost) unless the
// gateway is enabled with a positive SupervisionWindow.
func newDeploySupervision(tb *Testbed, cfg *ScenarioConfig, opts DeployOptions) *Supervision {
	if !opts.BACnet.Enabled || opts.BACnet.SupervisionWindow <= 0 {
		return nil
	}
	sup := NewSupervision(tb.Machine.Clock().Now, tb.Machine.Obs(), opts.BACnet.SupervisionWindow, cfg.Controller.Setpoint)
	cfg.Controller.Supervision = sup
	return sup
}

// NoteFrame records one verified supervisory frame reaching the gateway. A
// degraded room exits degraded mode here: supervision is back.
func (s *Supervision) NoteFrame() {
	if s == nil {
		return
	}
	s.lastSeen = s.now()
	s.seenAny = true
	if !s.degraded {
		return
	}
	s.degraded = false
	s.state.Set(0)
	s.restored.Inc()
	s.events.Emit(obs.SecurityEvent{
		Kind:      obs.EventSupervisionRestored,
		Mechanism: obs.MechResilience,
		Src:       NameBACnetGateway,
		Dst:       NameTempControl,
		Detail:    "supervisory traffic restored; re-converging",
	})
}

// NoteCommit records a verified supervisory setpoint write that the
// controller accepted — the value a later outage falls back to.
func (s *Supervision) NoteCommit(v float64) {
	if s == nil {
		return
	}
	s.committed = v
}

// Check runs the watchdog at virtual instant now and reports the degraded-
// mode fallback: the last committed setpoint and whether the room is in (or
// just entered) degraded mode. Until the first supervisory frame arrives
// the room is simply unsupervised, not degraded — a building still booting
// must not alarm.
func (s *Supervision) Check(now machine.Time) (fallback float64, degraded bool) {
	if s == nil || s.window <= 0 || !s.seenAny {
		return 0, false
	}
	if !s.degraded {
		if now.Sub(s.lastSeen) < s.window {
			return 0, false
		}
		s.degraded = true
		s.state.Set(1)
		s.lost.Inc()
		s.events.Emit(obs.SecurityEvent{
			Kind:      obs.EventSupervisionLost,
			Mechanism: obs.MechResilience,
			Src:       NameBACnetGateway,
			Dst:       NameTempControl,
			Detail:    "no supervisory traffic; reverting to last-committed setpoint",
		})
	}
	return s.committed, true
}

// Degraded reports whether the room is currently in degraded mode.
func (s *Supervision) Degraded() bool { return s != nil && s.degraded }

// Committed reports the fallback setpoint.
func (s *Supervision) Committed() float64 {
	if s == nil {
		return 0
	}
	return s.committed
}
