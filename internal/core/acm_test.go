package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestMaskOfAndHas(t *testing.T) {
	m := MaskOf(0, 2, 3)
	for _, tc := range []struct {
		t    MsgType
		want bool
	}{{0, true}, {1, false}, {2, true}, {3, true}, {4, false}, {63, false}} {
		if got := m.Has(tc.t); got != tc.want {
			t.Errorf("MaskOf(0,2,3).Has(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestMaskWithWithout(t *testing.T) {
	m := TypeMask(0).With(5).With(9)
	if !m.Has(5) || !m.Has(9) {
		t.Fatalf("With failed: %v", m)
	}
	m = m.Without(5)
	if m.Has(5) || !m.Has(9) {
		t.Fatalf("Without failed: %v", m)
	}
}

func TestMaskTypesRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		m := TypeMask(raw)
		return MaskOf(m.Types()...) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaskString(t *testing.T) {
	for _, tc := range []struct {
		mask TypeMask
		want string
	}{
		{MaskOf(), "0000"},
		{MaskOf(0), "0001"},
		{MaskOf(0, 2, 3), "1101"},
		{MaskOf(1), "0010"},
		{MaskOf(3), "1000"},
		{MaskOf(0, 4), "10001"},
	} {
		if got := tc.mask.String(); got != tc.want {
			t.Errorf("mask %v String() = %q, want %q", tc.mask.Types(), got, tc.want)
		}
	}
}

func TestMatrixDenyByDefault(t *testing.T) {
	m := NewMatrix().Seal()
	if m.Allows(1, 2, 0) {
		t.Fatal("empty matrix allows IPC")
	}
	err := m.Check(1, 2, 0)
	if err == nil {
		t.Fatal("Check on empty matrix = nil")
	}
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("denial does not match ErrDenied: %v", err)
	}
	var denied *DeniedError
	if !errors.As(err, &denied) {
		t.Fatalf("denial is not *DeniedError: %T", err)
	}
	if denied.Src != 1 || denied.Dst != 2 || denied.Type != 0 {
		t.Fatalf("denial fields wrong: %+v", denied)
	}
}

func TestMatrixAllowMerges(t *testing.T) {
	m := NewMatrix()
	m.Allow(10, 20, 1)
	m.Allow(10, 20, 3)
	if got := m.Mask(10, 20); got != MaskOf(1, 3) {
		t.Fatalf("mask = %v, want {1,3}", got.Types())
	}
}

func TestMatrixNoACIDAlwaysDenied(t *testing.T) {
	m := NewMatrix().Allow(1, 2, MaskAll.Types()...).Seal()
	if m.Allows(NoACID, 2, 0) || m.Allows(1, NoACID, 0) {
		t.Fatal("NoACID subject passed the matrix")
	}
}

func TestMatrixSealPreventsMutation(t *testing.T) {
	m := NewMatrix().Allow(1, 2, 0).Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("Allow on sealed matrix did not panic")
		}
	}()
	m.Allow(3, 4, 0)
}

func TestMatrixCloneIsIndependent(t *testing.T) {
	m := NewMatrix().Allow(1, 2, 0).Name(1, "a").Seal()
	c := m.Clone()
	if c.Sealed() {
		t.Fatal("clone inherited seal")
	}
	c.Allow(5, 6, 1)
	if m.Allows(5, 6, 1) {
		t.Fatal("mutating clone changed original")
	}
	if c.NameOf(1) != "a" {
		t.Fatal("clone lost names")
	}
}

func TestMatrixSubjects(t *testing.T) {
	m := NewMatrix().Allow(30, 10, 0).Allow(10, 20, 1).Name(40, "idle")
	got := m.Subjects()
	want := []ACID{10, 20, 30, 40}
	if len(got) != len(want) {
		t.Fatalf("subjects = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subjects = %v, want %v", got, want)
		}
	}
}

// TestFig3Exact reproduces experiment E2: every cell of the Fig. 3 matrix and
// the two runtime checks narrated in Section III-B ("suppose App2 tries to
// send a message with message type 2 to App1 ... the message will be allowed
// ... if the message type is 1 the message will be denied").
func TestFig3Exact(t *testing.T) {
	m := Fig3Matrix()

	if !m.Allows(Fig3App2, Fig3App1, 2) {
		t.Error("App2 -> App1 m_type 2 (app1_f2) should be allowed")
	}
	if m.Allows(Fig3App2, Fig3App1, 1) {
		t.Error("App2 -> App1 m_type 1 (app1_f1) should be denied")
	}

	cells := []struct {
		src, dst ACID
		bitmap   string
	}{
		{Fig3App1, Fig3App2, "0001"},
		{Fig3App2, Fig3App1, "1101"},
		{Fig3App3, Fig3App1, "0011"},
		{Fig3App1, Fig3App3, "0111"},
		{Fig3App2, Fig3App3, "0011"},
		{Fig3App3, Fig3App2, "0001"},
	}
	for _, c := range cells {
		if got := m.Mask(c.src, c.dst).String(); got != c.bitmap {
			t.Errorf("cell %s->%s = %s, want %s",
				m.NameOf(c.src), m.NameOf(c.dst), got, c.bitmap)
		}
	}

	// Everything not granted is denied: App1 may not call any App1 function
	// on itself, no self-loops, App2 exposes nothing.
	for _, mt := range []MsgType{1, 2, 3} {
		if m.Allows(Fig3App1, Fig3App2, mt) {
			t.Errorf("App1 -> App2 m_type %d should be denied (App2 has no RPCs)", mt)
		}
		if m.Allows(Fig3App3, Fig3App2, mt) {
			t.Errorf("App3 -> App2 m_type %d should be denied", mt)
		}
	}
	if !m.Sealed() {
		t.Error("Fig3Matrix must come sealed")
	}
}

func TestFig3Rendering(t *testing.T) {
	s := Fig3Matrix().String()
	for _, want := range []string{"App1", "App2", "App3", "1101"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

// TestMatrixProperty_AllowImpliesAllows is the core soundness property: any
// (src, dst, type) triple granted through the builder is allowed, and any
// triple never granted is denied.
func TestMatrixProperty_AllowImpliesAllows(t *testing.T) {
	f := func(src, dst uint8, typ uint8, noise uint64) bool {
		s := ACID(src) + 1 // avoid NoACID
		d := ACID(dst) + 1
		mt := MsgType(typ % 64)
		m := NewMatrix()
		m.AllowMask(s, d, TypeMask(noise))
		m.Allow(s, d, mt)
		m.Seal()
		if !m.Allows(s, d, mt) {
			return false
		}
		// A distinct destination with no grant must be denied.
		other := d + 1
		return !m.Allows(s, other, mt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMsgTypeOutOfRangeDenied(t *testing.T) {
	m := NewMatrix().AllowMask(1, 2, MaskAll).Seal()
	if m.Allows(1, 2, MaxMsgType+1) {
		t.Fatal("type beyond MaxMsgType allowed")
	}
}

// TestMaskOutOfRangePanics is the regression test for the silent-corruption
// bug where MaskOf/With shifted by >= 64 bits: the mask constructors must
// refuse unrepresentable message types loudly instead of wrapping.
func TestMaskOutOfRangePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: expected panic for type %d", name, MaxMsgType+1)
				return
			}
			msg := fmt.Sprint(r)
			if !strings.Contains(msg, "out of range") || !strings.Contains(msg, ErrBadMsgType.Error()) {
				t.Errorf("%s: panic %q should cite the range and ErrBadMsgType", name, msg)
			}
		}()
		f()
	}
	mustPanic("MaskOf", func() { MaskOf(MaxMsgType + 1) })
	mustPanic("With", func() { TypeMask(0).With(MaxMsgType + 1) })

	// The boundary type itself is fine.
	if !MaskOf(MaxMsgType).Has(MaxMsgType) {
		t.Fatal("MaxMsgType must be representable")
	}
}
