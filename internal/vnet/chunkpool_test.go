package vnet

import (
	"bytes"
	"testing"
)

// The bus recycles write chunks through the owning node's free list: Write
// copies into a pooled chunk, the Flush barrier returns it via
// recycleOutbox. These tests pin both halves of that contract — identity
// (the same backing array really is reused) and the zero-alloc steady
// state the 64-room bench depends on.

func TestBusChunkPoolReusesBackingArray(t *testing.T) {
	bus, _, b, l := busPair(t)
	c := bus.Dial(0, 1, 47808)
	payload := bytes.Repeat([]byte("x"), 96)

	if err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	first := &c.outbox[0][0]
	bus.Flush()
	if len(c.outbox) != 0 {
		t.Fatalf("outbox not recycled at the barrier: %d chunks", len(c.outbox))
	}
	if free := bus.nodes[0].chunkFree; len(free) != 1 || cap(free[0]) < len(payload) {
		t.Fatalf("free list after flush: %d chunks, cap %d", len(free), cap(free[0]))
	}

	if err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if &c.outbox[0][0] != first {
		t.Error("second write did not reuse the recycled chunk's backing array")
	}
	bus.Flush()

	// Delivery still works end to end with the recycled chunk.
	conn, err := b.Accept(l)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.BoardRead(conn, 0)
	if err != nil || !bytes.Equal(got, append(payload, payload...)) {
		t.Fatalf("delivered %d bytes, err %v; want the two written chunks", len(got), err)
	}
}

func TestBusWriteRecycleCycleZeroAlloc(t *testing.T) {
	bus := NewBus()
	n0 := bus.AddNode("a", NewStack())
	bus.AddNode("b", NewStack())
	c := bus.Dial(n0, 1, 9)
	node := bus.nodes[n0]
	payload := bytes.Repeat([]byte("p"), 128)

	// Warm up: grow the chunk, the outbox slice, and the free list once.
	for i := 0; i < 2; i++ {
		if err := c.Write(payload); err != nil {
			t.Fatal(err)
		}
		c.recycleOutbox(node)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.Write(payload); err != nil {
			t.Fatal(err)
		}
		c.recycleOutbox(node)
	})
	if allocs != 0 {
		t.Errorf("write/recycle cycle allocated %.1f per run, want 0", allocs)
	}
}
