package tenantapi

import (
	"strconv"
	"strings"

	"mkbas/internal/httpmini"
)

// Frontend mounts the tier's routes on an httpmini.Router, translating
// wire requests into Gateway calls. The HTTP layer is the presentation
// path — harness drivers and the load generator call Gateway.Handle
// directly, which is the allocation-free hot path; the frontend exists so
// the same tier answers real HTTP/1.0 byte streams (basmon, attack
// drivers, building head-end exposure).
type Frontend struct {
	gw     *Gateway
	router *httpmini.Router
	resp   Response
}

// NewFrontend builds the route table for gw.
func NewFrontend(gw *Gateway) *Frontend {
	f := &Frontend{gw: gw, router: &httpmini.Router{}}
	f.router.Handle("GET", "/api/rooms/:room/status", func(hr *httpmini.Request, params []string) *httpmini.Response {
		room, ok := atoiStrict(params[0])
		if !ok {
			return httpmini.Text(400, "bad room\n")
		}
		return f.dispatch(hr, Request{Route: RouteStatus, Room: room})
	})
	f.router.Handle("POST", "/api/rooms/:room/setpoint", func(hr *httpmini.Request, params []string) *httpmini.Response {
		room, ok := atoiStrict(params[0])
		if !ok {
			return httpmini.Text(400, "bad room\n")
		}
		v, err := strconv.ParseFloat(hr.FormValue("value"), 64)
		if err != nil {
			return httpmini.Text(400, "bad value\n")
		}
		return f.dispatch(hr, Request{Route: RouteSetpoint, Room: room, Value: v})
	})
	f.router.Handle("GET", "/api/diagnostics", func(hr *httpmini.Request, _ []string) *httpmini.Response {
		return f.dispatch(hr, Request{Route: RouteDiagnostics})
	})
	f.router.Handle("GET", "/api/whoami", func(hr *httpmini.Request, _ []string) *httpmini.Response {
		return f.dispatch(hr, Request{Route: RouteWhoAmI})
	})
	return f
}

// Serve answers one parsed wire request.
func (f *Frontend) Serve(hr *httpmini.Request) *httpmini.Response {
	return f.router.Dispatch(hr)
}

// dispatch runs the gateway and renders the typed outcome.
func (f *Frontend) dispatch(hr *httpmini.Request, req Request) *httpmini.Response {
	req.Token = BearerToken(hr)
	f.gw.Handle(&req, &f.resp)
	body := make([]byte, len(f.resp.Body))
	copy(body, f.resp.Body)
	if len(body) == 0 {
		body = []byte(f.resp.Outcome.String() + "\n")
	}
	ct := "text/plain"
	if len(body) > 0 && body[0] == '{' {
		ct = "application/json"
	}
	return &httpmini.Response{
		Status:  f.resp.Outcome.Status(),
		Headers: map[string]string{"Content-Type": ct},
		Body:    body,
	}
}

// BearerToken extracts the session credential: "Authorization: Bearer
// <token>" first, then a "token" query parameter for curl-grade clients.
func BearerToken(hr *httpmini.Request) string {
	auth := hr.Headers["authorization"]
	if strings.HasPrefix(auth, "Bearer ") {
		return auth[len("Bearer "):]
	}
	return hr.Query["token"]
}

// atoiStrict parses a non-negative decimal with no junk.
func atoiStrict(s string) (int, bool) {
	if s == "" || len(s) > 6 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, true
}
