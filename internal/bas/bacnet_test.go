package bas

import (
	"strings"
	"testing"
	"time"

	"mkbas/internal/bacnet"
)

func deployGateway(t *testing.T, key []byte) (*Testbed, *MinixDeployment) {
	t.Helper()
	cfg := DefaultScenario()
	tb := NewTestbed(cfg)
	t.Cleanup(tb.Machine.Shutdown)
	dep, err := Deploy(PlatformMinix, tb, cfg, DeployOptions{
		BACnet: BACnetOptions{Enabled: true, Key: key, DeviceID: 7},
	})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	tb.Machine.Run(10 * time.Second)
	return tb, dep.(*MinixDeployment)
}

func TestBACnetLegacyReadAndWrite(t *testing.T) {
	tb, _ := deployGateway(t, nil)

	raw := tb.BACnetExchange(bacnet.PDU{
		Type: bacnet.ReadProperty, InvokeID: 1, Device: 7, Object: bacnet.ObjTemperature,
	}.Encode())
	resp, err := bacnet.DecodePDU(raw)
	if err != nil {
		t.Fatalf("decode: %v (raw %v)", err, raw)
	}
	if resp.Type != bacnet.Ack || resp.Value < 17 || resp.Value > 23 {
		t.Fatalf("temperature resp = %+v", resp)
	}

	raw = tb.BACnetExchange(bacnet.PDU{
		Type: bacnet.WriteProperty, InvokeID: 2, Device: 7, Object: bacnet.ObjSetpoint, Value: 25,
	}.Encode())
	resp, err = bacnet.DecodePDU(raw)
	if err != nil || resp.Type != bacnet.Ack {
		t.Fatalf("setpoint write resp = %+v, %v", resp, err)
	}
	tb.Machine.Run(time.Hour)
	if temp := tb.Room.Temperature(); temp < 24 || temp > 26 {
		t.Fatalf("room = %.2f, want ~25 after BACnet setpoint write", temp)
	}
}

func TestBACnetLegacyIsSpoofableButActuatorsUnreachable(t *testing.T) {
	// The integration point of the Fig. 1 story: even with a completely
	// unauthenticated field protocol facing the network, the gateway's IPC
	// authority bounds the damage — actuator points are structurally
	// read-only because the ACM gives the gateway no path to the drivers.
	tb, dep := deployGateway(t, nil)

	raw := tb.BACnetExchange(bacnet.PDU{
		Type: bacnet.WriteProperty, Device: 7, Object: bacnet.ObjHeater, Value: 0,
	}.Encode())
	resp, err := bacnet.DecodePDU(raw)
	if err != nil || resp.Type != bacnet.ErrorPDU || resp.Code != bacnet.CodeWriteDenied {
		t.Fatalf("heater write resp = %+v, %v (want write-denied)", resp, err)
	}
	if dep.Kernel.Stats().IPCDenied != 0 {
		// The gateway should not even attempt a denied IPC: the denial is
		// structural (no RPC exists), not a runtime ACM rejection.
		t.Logf("note: %d ACM denials recorded", dep.Kernel.Stats().IPCDenied)
	}

	// Replay on the legacy gateway works — the protocol-level weakness the
	// paper's introduction describes.
	frame := bacnet.PDU{Type: bacnet.WriteProperty, Device: 7, Object: bacnet.ObjSetpoint, Value: 27}.Encode()
	first, err := bacnet.DecodePDU(tb.BACnetExchange(frame))
	if err != nil || first.Type != bacnet.Ack {
		t.Fatalf("first write: %+v %v", first, err)
	}
	replayed, err := bacnet.DecodePDU(tb.BACnetExchange(frame))
	if err != nil || replayed.Type != bacnet.Ack {
		t.Fatalf("legacy gateway rejected a replay: %+v %v", replayed, err)
	}
}

func TestBACnetSecureProxyEndToEnd(t *testing.T) {
	key := []byte("building-42-device-7")
	tb, _ := deployGateway(t, key)
	client := bacnet.NewSecureClient(key, 9001)

	// Authenticated read.
	respFrame := tb.BACnetExchange(client.Seal(bacnet.PDU{
		Type: bacnet.ReadProperty, Device: 7, Object: bacnet.ObjSetpoint,
	}))
	if respFrame == nil {
		t.Fatal("proxy dropped a legitimate frame")
	}
	resp, err := client.Open(respFrame)
	if err != nil || resp.Type != bacnet.Ack || resp.Value != 22 {
		t.Fatalf("secure read = %+v, %v", resp, err)
	}

	// Unauthenticated legacy frame: silently dropped.
	if raw := tb.BACnetExchange(bacnet.PDU{
		Type: bacnet.WriteProperty, Device: 7, Object: bacnet.ObjSetpoint, Value: 30,
	}.Encode()); raw != nil {
		t.Fatalf("proxy answered an unauthenticated frame: %v", raw)
	}

	// Replayed secure frame: dropped, and the setpoint stays put.
	frame := client.Seal(bacnet.PDU{
		Type: bacnet.WriteProperty, Device: 7, Object: bacnet.ObjSetpoint, Value: 24,
	})
	if respFrame := tb.BACnetExchange(frame); respFrame == nil {
		t.Fatal("original secure write dropped")
	}
	if respFrame := tb.BACnetExchange(frame); respFrame != nil {
		t.Fatal("proxy answered a replayed frame")
	}
	status, body, err := tb.HTTPGet("/status")
	if err != nil || status != 200 {
		t.Fatalf("status: %d %v", status, err)
	}
	if want := "setpoint=24.00"; !strings.Contains(body, want) {
		t.Fatalf("status %q missing %q (write applied once)", body, want)
	}
}

func TestBACnetGatewayOnEveryPlatform(t *testing.T) {
	// The gateway is platform-neutral: the same BACnetOptions boot it on all
	// five registered backends, which is what lets a building mix platforms
	// room by room behind one supervisory protocol.
	key := []byte("fleet-key")
	for _, platform := range KnownPlatforms() {
		t.Run(string(platform), func(t *testing.T) {
			cfg := DefaultScenario()
			tb := NewTestbed(cfg)
			t.Cleanup(tb.Machine.Shutdown)
			_, err := Deploy(platform, tb, cfg, DeployOptions{
				BACnet: BACnetOptions{Enabled: true, Key: key, DeviceID: 3},
			})
			if err != nil {
				t.Fatalf("deploy: %v", err)
			}
			tb.Machine.Run(10 * time.Second)

			client := bacnet.NewSecureClient(key, 77)
			respFrame := tb.BACnetExchange(client.Seal(bacnet.PDU{
				Type: bacnet.ReadProperty, Device: 3, Object: bacnet.ObjTemperature,
			}))
			if respFrame == nil {
				t.Fatal("gateway dropped a legitimate secure read")
			}
			resp, err := client.Open(respFrame)
			if err != nil || resp.Type != bacnet.Ack || resp.Value < 17 || resp.Value > 23 {
				t.Fatalf("secure read = %+v, %v", resp, err)
			}
			// Spoofed legacy frame: dropped, and accounted as a denial in the
			// unified security-event schema.
			if raw := tb.BACnetExchange(bacnet.PDU{
				Type: bacnet.WriteProperty, Device: 3, Object: bacnet.ObjSetpoint, Value: 30,
			}.Encode()); raw != nil {
				t.Fatalf("proxy answered an unauthenticated frame: %v", raw)
			}
			if n := tb.Machine.Obs().Metrics().Counter("bacnet_frames_rejected_total").Value(); n != 1 {
				t.Fatalf("bacnet_frames_rejected_total = %d, want 1", n)
			}
		})
	}
}

func TestBACnetGatewayRestartKeepsNonceFloor(t *testing.T) {
	// Deployment-level half of the replay-window fix: the gateway process is
	// reincarnated by RS after a crash, and the reborn proxy must still hold
	// the pre-crash nonce floor (the deployment owns the ProxyState).
	key := []byte("building-42-device-7")
	tb, dep := deployGateway(t, key)
	client := bacnet.NewSecureClient(key, 9001)

	frame := client.Seal(bacnet.PDU{
		Type: bacnet.WriteProperty, Device: 7, Object: bacnet.ObjSetpoint, Value: 24,
	})
	if respFrame := tb.BACnetExchange(frame); respFrame == nil {
		t.Fatal("original secure write dropped")
	}

	if err := dep.Kernel.CrashProcess(NameBACnetGateway); err != nil {
		t.Fatalf("crash: %v", err)
	}
	tb.Machine.Run(5 * time.Second) // RS backoff + respawn
	if _, err := dep.Kernel.EndpointOf(NameBACnetGateway); err != nil {
		t.Fatalf("gateway not reincarnated: %v", err)
	}

	// The captured pre-restart frame must stay dead after the restart.
	if respFrame := tb.BACnetExchangeFrame(bacnet.Frame(frame)); respFrame != nil {
		t.Fatal("reincarnated gateway accepted a pre-restart replay")
	}
	// Fresh traffic flows again.
	respFrame := tb.BACnetExchange(client.Seal(bacnet.PDU{
		Type: bacnet.ReadProperty, Device: 7, Object: bacnet.ObjSetpoint,
	}))
	if respFrame == nil {
		t.Fatal("reincarnated gateway dropped fresh traffic")
	}
	resp, err := client.Open(respFrame)
	if err != nil || resp.Value != 24 {
		t.Fatalf("post-restart read = %+v, %v", resp, err)
	}
}
