package obs

import (
	"encoding/json"
	"sort"
)

// chromeEvent is one entry in the Chrome trace-event JSON format that
// Perfetto and chrome://tracing load. "X" events are complete spans with
// microsecond timestamps; "M" events carry thread-name metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders the tracer's retained spans as Chrome trace-event
// JSON. Each source name becomes a "thread" (sorted for determinism), each
// span a complete event with src/dst/outcome in args, timestamps in
// virtual microseconds since boot.
func (t *Tracer) ChromeTrace() ([]byte, error) {
	spans := t.Spans()
	names := map[string]int{}
	for _, s := range spans {
		names[s.Src] = 0
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for i, n := range sorted {
		names[n] = i + 1
	}

	trace := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for _, n := range sorted {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: names[n],
			Args: map[string]any{"name": n},
		})
	}
	for _, s := range spans {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: s.Label,
			Cat:  "ipc",
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Duration()) / 1e3,
			PID:  1,
			TID:  names[s.Src],
			Args: map[string]any{
				"src":     s.Src,
				"dst":     s.Dst,
				"outcome": s.Outcome.String(),
			},
		})
	}
	return json.MarshalIndent(trace, "", " ")
}
