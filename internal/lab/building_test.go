package lab

import (
	"bytes"
	"testing"
	"time"

	"mkbas/internal/bas"
)

// TestBuildingSweepParseAndExpand pins the grammar and the expansion order:
// rooms outermost, then mix, secure, attack.
func TestBuildingSweepParseAndExpand(t *testing.T) {
	s, err := ParseBuildingSweep("rooms=4,8;mix=paper,linux;secure=even;attack=both;settle=10m;window=15m")
	if err != nil {
		t.Fatal(err)
	}
	cases := s.Expand()
	// 2 rooms × 2 mixes × 1 secure × 2 attacks = 8.
	if len(cases) != 8 {
		t.Fatalf("expanded %d cases, want 8", len(cases))
	}
	for i, c := range cases {
		if c.Shard != i {
			t.Errorf("case %d has shard %d", i, c.Shard)
		}
	}
	first := cases[0]
	if first.Rooms != 4 || first.Mix != "paper" || first.Secure != "even" || first.Attack {
		t.Errorf("unexpected first case: %+v", first)
	}
	if !cases[1].Attack {
		t.Errorf("attack must be the innermost axis, got %+v", cases[1])
	}
	if s.Settle != 10*time.Minute || s.Window != 15*time.Minute {
		t.Errorf("settle/window = %v/%v", s.Settle, s.Window)
	}

	spec, err := first.Spec(s.Settle, s.Window)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Mix) != 3 || spec.Mix[0] != bas.PlatformLinux {
		t.Errorf("paper mix = %v", spec.Mix)
	}
	if len(spec.Secure) != 4 || !spec.Secure[0] || spec.Secure[1] {
		t.Errorf("even secure = %v", spec.Secure)
	}
	if spec.Workers != 1 {
		t.Errorf("campaign cases must run rooms serially, got Workers=%d", spec.Workers)
	}
}

func TestBuildingSweepRejectsBadValues(t *testing.T) {
	for _, bad := range []string{
		"rooms=0",
		"mix=notaplatform",
		"mix=linux+bogus",
		"secure=1+x",
		"attack=maybe",
		"settle=10m,20m",
		"window=soon",
		"floors=2",
	} {
		if _, err := ParseBuildingSweep(bad); err == nil {
			t.Errorf("sweep %q parsed without error", bad)
		}
	}
}

func TestSecurePatterns(t *testing.T) {
	for _, tc := range []struct {
		pattern SecurePattern
		want    []bool
	}{
		{"none", nil},
		{"all", []bool{true, true, true, true}},
		{"even", []bool{true, false, true, false}},
		{"odd", []bool{false, true, false, true}},
		{"0+3", []bool{true, false, false, true}},
		{"1+9", []bool{false, true, false, false}}, // out-of-range index ignored
	} {
		got, err := tc.pattern.Rooms(4)
		if err != nil {
			t.Fatalf("%q: %v", tc.pattern, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%q: got %v, want %v", tc.pattern, got, tc.want)
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("%q: got %v, want %v", tc.pattern, got, tc.want)
			}
		}
	}
}

// TestRunBuildingDeterministicAcrossWorkers: the campaign JSON is a function
// of the sweep alone, whether shards run serially or in parallel.
func TestRunBuildingDeterministicAcrossWorkers(t *testing.T) {
	sweep := BuildingSweep{
		Rooms:   []int{3},
		Mixes:   []Mix{"paper", "linux"},
		Secures: []SecurePattern{"even"},
		Attacks: []bool{false, true},
		Settle:  10 * time.Minute,
		Window:  10 * time.Minute,
	}
	run := func(workers int) []byte {
		res, err := RunBuilding(sweep, BuildingOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("building campaign diverged across worker counts: %d vs %d bytes", len(serial), len(parallel))
	}
}

// TestBenchBuildingIdentical: the in-building worker bench reports identical
// bytes at every worker count (the tentpole contract), with rooms as shards.
func TestBenchBuildingIdentical(t *testing.T) {
	spec, err := BuildingCase{Rooms: 4, Mix: "paper", Secure: "even", Attack: true}.Spec(8*time.Minute, 8*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BenchBuilding(spec, []int{1, 2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Fatal("building bench: runs diverged across worker counts")
	}
	if rep.Shards != 4 || len(rep.Points) != 3 {
		t.Fatalf("bench shape: shards=%d points=%d", rep.Shards, len(rep.Points))
	}
	if rep.Points[0].Workers != 1 || rep.Points[0].Speedup != 1 {
		t.Fatalf("serial baseline point: %+v", rep.Points[0])
	}
}
