package bacnet

import (
	"bytes"
	"testing"
)

// AppendEncode/AppendFrame are the allocation-free forms Encode/Frame for
// reused scratch buffers; the head-end poller and the gateway reply loop
// lean on them staying that way.
func TestAppendEncodeFrameZeroAllocOnReusedBuffer(t *testing.T) {
	p := PDU{Type: ReadProperty, InvokeID: 7, Device: 3, Object: ObjTemperature, Value: 21.5}
	pdu := make([]byte, 0, 64)
	frame := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		pdu = p.AppendEncode(pdu[:0])
		frame = AppendFrame(frame[:0], pdu)
	})
	if allocs != 0 {
		t.Errorf("encode+frame into reused buffers allocated %.1f per run, want 0", allocs)
	}

	// The reused-buffer forms must produce the same bytes as the allocating
	// ones, and survive a decode round trip.
	if want := Frame(p.Encode()); !bytes.Equal(frame, want) {
		t.Fatalf("append forms produced %x, want %x", frame, want)
	}
	got, err := DecodePDU(pdu)
	if err != nil || got != p {
		t.Fatalf("round trip = %+v, %v; want %+v", got, err, p)
	}
}
