// Package attack implements the paper's Section IV-D attack simulations and
// the harness that reproduces its platform-comparison results (experiment
// E1).
//
// Threat model, exactly as in the paper: the web interface process is
// compromised and executes arbitrary attacker code, with "enough knowledge
// about other control processes" (names, queue names, pid ranges, slot
// numbers). The second attacker model additionally holds root, obtained
// through a simulated privilege-escalation exploit.
//
// Each attack runs on a fresh testbed: the scenario settles for 30 virtual
// minutes, the attack executes for 3 virtual hours, and ground-truth safety
// monitors (internal/safety) decide whether the physical world was
// compromised. The attacker's own success/denial counters are recorded
// separately — a denied operation that caused no physical deviation is the
// microkernel story; an accepted operation with physical deviation is the
// Linux story.
package attack

import (
	"fmt"
	"strings"
	"time"

	"mkbas/internal/bas"
	"mkbas/internal/core"
	"mkbas/internal/faultinject"
	"mkbas/internal/machine"
	"mkbas/internal/obs"
	"mkbas/internal/perf"
	"mkbas/internal/polcheck/monitor"
	"mkbas/internal/safety"
)

// Platform selects the deployment under attack. It aliases the deploy
// registry's platform names, so attack specs and bas.Deploy speak one
// vocabulary.
type Platform = bas.Platform

// Platforms under comparison. MinixVanilla (ACM disabled) and LinuxHardened
// (unique accounts + restrictive modes) are ablations beyond the paper's
// three headline systems.
const (
	PlatformLinux         = bas.PlatformLinux
	PlatformLinuxHardened = bas.PlatformLinuxHardened
	PlatformMinix         = bas.PlatformMinix
	PlatformMinixVanilla  = bas.PlatformMinixVanilla
	PlatformSel4          = bas.PlatformSel4
)

// AllPlatforms lists the headline platforms in the paper's order.
func AllPlatforms() []Platform {
	return bas.AllPlatforms()
}

// Action selects the attack.
type Action string

// Attacks from Section IV-D.
const (
	// ActionSpoofSensor impersonates the temperature sensor, feeding the
	// controller an in-range reading while the room drifts.
	ActionSpoofSensor Action = "spoof-sensor"
	// ActionCommandActuators sends heater-off/alarm-off commands directly
	// to the actuator drivers ("arbitrarily control the fan and LED").
	ActionCommandActuators Action = "command-actuators"
	// ActionKillController destroys the temperature control process.
	ActionKillController Action = "kill-controller"
	// ActionEnumerate brute-forces IPC handles: capability slots on seL4,
	// endpoints on MINIX, queue names on Linux.
	ActionEnumerate Action = "enumerate-handles"
	// ActionForkBomb spawns processes until stopped.
	ActionForkBomb Action = "fork-bomb"
	// ActionNone runs no attack: the legitimate web interface stays in
	// place. Chaos runs (experiment E10) use it so the safety verdict
	// isolates the injected fault and the platform's recovery response.
	ActionNone Action = "none"
)

// AllActions lists every attack.
func AllActions() []Action {
	return []Action{
		ActionSpoofSensor, ActionCommandActuators, ActionKillController,
		ActionEnumerate, ActionForkBomb,
	}
}

// Spec is one attack configuration.
type Spec struct {
	Platform Platform
	Action   Action
	// Root applies the second attacker model (privilege escalation). On
	// seL4 there is no root to escalate to; the flag is accepted and noted.
	Root bool
	// ForkQuota, when > 0 on MINIX, applies the E8 quota policy.
	ForkQuota int
	// FaultPlan, when non-empty, names a builtin faultinject plan armed at
	// boot — the chaos campaign (E10). "none" is accepted and arms nothing.
	FaultPlan string
	// Recovery enables the optional recovery machinery (seL4 monitor,
	// hardened-Linux supervisor); see bas.DeployOptions.Recovery.
	Recovery bool
	// Monitor attaches the online policy monitor at deploy time; every IPC
	// delivery is verified against the certified access graph and drift is
	// recorded in the report. See bas.DeployOptions.Monitor.
	Monitor bool
	// Demote implies Monitor and adds the OAMAC origin response: the moment
	// the attack window opens, the compromised web subject is demoted to the
	// untrusted origin, so even its certified traffic is flagged as
	// origin-drift from then on.
	Demote bool
	// Profiler attaches the host-side performance profiler to the deployment
	// (see bas.DeployOptions.Profiler). Never marshalled: Spec is embedded in
	// Report, and host profiling is outside the determinism contract.
	Profiler *perf.Profiler `json:"-"`
}

// progress is the attacker's self-reported tally, shared between the
// malicious body and the report.
type progress struct {
	attempts  int
	successes int
	denials   int
	notes     []string
}

func (p *progress) note(format string, args ...any) {
	p.notes = append(p.notes, fmt.Sprintf(format, args...))
}

// Report is the outcome of one attack run.
type Report struct {
	Spec Spec
	// OperationSucceeded: at least one malicious operation was accepted by
	// the platform.
	OperationSucceeded bool
	// Attempts/Successes/Denials tally individual malicious operations.
	Attempts  int
	Successes int
	Denials   int
	// ControllerAlive: the temperature control process survived.
	ControllerAlive bool
	// PhysicalCompromise: ground-truth safety monitors recorded violations.
	PhysicalCompromise bool
	// Violations are the recorded safety breaches.
	Violations []safety.Violation
	// Notes carries attacker- and harness-observations.
	Notes []string
	// SecurityEvents are the denial events the platform's mediation layers
	// emitted during the run, in virtual-time order.
	SecurityEvents []obs.SecurityEvent
	// Mechanisms lists the distinct mediation mechanisms that denied at
	// least one operation (sorted; empty when nothing was denied).
	Mechanisms []obs.Mechanism
	// Obs is the board's observability snapshot at the end of the run —
	// counters, span stats, and event totals, without the embedded event
	// ring (the denied events are already in SecurityEvents). The fleet
	// runner (internal/lab) merges these across shards.
	Obs *obs.Report `json:"Obs,omitempty"`
	// IPCUsages is the board's aggregated IPC usage log at the end of the
	// run, sorted by (src, dst, label).
	IPCUsages []machine.IPCUsageCount `json:"IPCUsages,omitempty"`
	// Restarts counts scenario processes reincarnated by the platform's
	// recovery machinery during the run (omitted when zero, which keeps
	// fault-free reports byte-identical to earlier versions).
	Restarts int `json:"Restarts,omitempty"`
	// Recovered: the control plane died and was reincarnated, and is alive
	// now — the row the verdict renders as RECOVERED.
	Recovered bool `json:"Recovered,omitempty"`
	// FaultReport is the fault-injection campaign outcome (MTTR per fault);
	// nil when no plan was armed.
	FaultReport *faultinject.Report `json:"FaultReport,omitempty"`
	// ViolationsDuringFault counts safety violations that fell inside a
	// fault's effect window (injection to recovery).
	ViolationsDuringFault int `json:"ViolationsDuringFault,omitempty"`
	// MonitorStats is the online policy monitor's lifetime tally (observed
	// deliveries, policy drift, origin drift, demotions); nil when the
	// monitor was off. All-zero drift on an attacked board means the
	// platform denied the malicious traffic before it was ever delivered.
	MonitorStats *monitor.Stats `json:"MonitorStats,omitempty"`
}

// BlockedBy names the mediation layer(s) that denied attack operations,
// e.g. "acm" or "capability". Empty when no denial event was recorded.
func (r *Report) BlockedBy() string {
	parts := make([]string, len(r.Mechanisms))
	for i, m := range r.Mechanisms {
		parts[i] = string(m)
	}
	return strings.Join(parts, ", ")
}

// Verdict renders the cell for the E1 outcome matrix (and E10's chaos
// table). RECOVERED distinguishes "the platform reincarnated a dead process
// and the physical world stayed safe" from a run where nothing ever died.
func (r *Report) Verdict() string {
	switch {
	case r.PhysicalCompromise:
		return "COMPROMISED"
	case r.Recovered:
		return "RECOVERED"
	case r.OperationSucceeded:
		return "accepted-no-impact"
	default:
		return "BLOCKED"
	}
}

// Durations of the phases (virtual time).
const (
	settleTime = 30 * time.Minute
	attackTime = 3 * time.Hour
)

// RunDuration is the total virtual time one attack run drives its board
// (settle phase plus attack window). Bench writers use it to convert
// shards/sec into a per-board virtual-step rate.
func RunDuration() time.Duration { return settleTime + attackTime }

// Execute runs one attack end to end on a fresh testbed with the default
// scenario.
func Execute(spec Spec) (*Report, error) {
	return ExecuteScenario(spec, bas.DefaultScenario())
}

// ExecuteScenario runs one attack end to end on a fresh testbed built from
// cfg — the entry point parameter sweeps use to vary plant physics and
// controller tuning per case.
func ExecuteScenario(spec Spec, cfg bas.ScenarioConfig) (*Report, error) {
	if IsAPIAction(spec.Action) {
		return executeAPIScenario(spec, cfg)
	}
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()

	prog := &progress{}
	dep, err := deployForSpec(tb, cfg, spec, prog)
	if err != nil {
		return nil, err
	}

	// Arm the chaos campaign (if any) after deploy, before the run starts.
	var inj *faultinject.Injector
	armStart := tb.Machine.Clock().Now()
	if spec.FaultPlan != "" {
		plan, perr := faultinject.Lookup(spec.FaultPlan)
		if perr != nil {
			return nil, fmt.Errorf("attack: %w", perr)
		}
		if len(plan.Faults) > 0 {
			inj, err = dep.ArmFaults(plan)
			if err != nil {
				return nil, fmt.Errorf("attack: arming faults: %w", err)
			}
		}
	}

	monCfg := safety.DefaultConfig()
	monCfg.Setpoint = cfg.Controller.Setpoint
	monCfg.Tolerance = cfg.Controller.AlarmTolerance
	monCfg.AlarmDelay = cfg.Controller.AlarmDelay
	monCfg.SettleTime = settleTime / 2
	mon := safety.Attach(tb.Machine.Clock(), tb.Room, monCfg)

	dep.Run(settleTime + attackTime)

	eventLog := tb.Machine.Obs().Events()
	var denied []obs.SecurityEvent
	for _, e := range eventLog.Events() {
		if e.Denied {
			denied = append(denied, e)
		}
	}

	violations := mon.Violations()
	var faultRep *faultinject.Report
	if inj != nil {
		faultRep = inj.Report()
		violations = filterFailsafeAlarms(armStart, faultRep, violations)
	}

	alive := dep.ControllerAlive()
	report := &Report{
		Spec:               spec,
		OperationSucceeded: prog.successes > 0,
		Attempts:           prog.attempts,
		Successes:          prog.successes,
		Denials:            prog.denials,
		ControllerAlive:    alive,
		Violations:         violations,
		PhysicalCompromise: len(violations) > 0 || !alive,
		Notes:              prog.notes,
		SecurityEvents:     denied,
		Mechanisms:         eventLog.Mechanisms(),
		Obs:                dep.Report(false),
		IPCUsages:          tb.Machine.IPC().Usages(),
		Restarts:           dep.ControllerRestarts(),
		Recovered:          dep.ControllerRecovered(),
	}
	if pm := dep.PolicyMonitor(); pm != nil {
		stats := pm.Stats()
		report.MonitorStats = &stats
	}
	if faultRep != nil {
		report.FaultReport = faultRep
		times := make([]machine.Time, len(violations))
		for i, v := range violations {
			times[i] = v.At
		}
		report.ViolationsDuringFault = faultinject.ViolationsDuring(armStart, faultRep, times)
	}
	return report, nil
}

// filterFailsafeAlarms drops alarm-honesty violations that fall inside an
// injected fault's effect window. The hardened controller's failsafe raises
// the alarm while it is blind — mandated behavior under the fault the
// harness itself injected, which the purely physical monitor cannot tell
// from an attacker blaring the alarm. Range and liveness violations always
// count: a fault is no excuse for a cold room or a silent alarm.
func filterFailsafeAlarms(start machine.Time, rep *faultinject.Report, vs []safety.Violation) []safety.Violation {
	kept := vs[:0]
	for _, v := range vs {
		if v.Property == safety.PropAlarmHonesty && faultinject.InWindow(start, rep, v.At) {
			continue
		}
		kept = append(kept, v)
	}
	return kept
}

// deployForSpec boots the platform under attack through the bas.Deploy
// registry, arming the malicious web interface body for every platform (the
// backend consults only its own) and the spec's attacker model.
func deployForSpec(tb *bas.Testbed, cfg bas.ScenarioConfig, spec Spec, prog *progress) (bas.Deployment, error) {
	opts := bas.DeployOptions{
		WebRoot:  spec.Root,
		Recovery: spec.Recovery,
		Monitor:  spec.Monitor || spec.Demote,
		Profiler: spec.Profiler,
	}
	if spec.Action != ActionNone {
		opts.MinixWeb = minixAttackBody(spec.Action, prog)
		opts.Sel4Web = sel4AttackBody(spec.Action, prog)
		opts.LinuxWeb = linuxAttackBody(spec.Action, prog)
	}
	if spec.ForkQuota > 0 {
		opts.Policy = core.ScenarioPolicyWithForkQuota(spec.ForkQuota)
	}
	dep, err := bas.Deploy(spec.Platform, tb, cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("attack: %w", err)
	}
	if spec.Demote && spec.Action != ActionNone {
		// The compromise verdict: the web interface is known attacker code,
		// so the monitor demotes it to the untrusted origin the moment the
		// attack window opens — certified web traffic is origin-drift from
		// then on.
		pm := dep.PolicyMonitor()
		tb.Machine.Clock().After(settleTime, func() {
			if pm.Demote(bas.NameWebInterface, monitor.OriginUntrusted) {
				prog.note("origin demotion: %s -> untrusted at attack start", bas.NameWebInterface)
			}
		})
	}

	switch d := dep.(type) {
	case *bas.MinixDeployment:
		if spec.Root {
			prog.note("web interface running with root uid (no effect expected: IPC authority is the ACM, not uid)")
		}
	case *bas.Sel4Deployment:
		// There is no root to escalate to: "the seL4 kernel and CAmkES
		// generated code have no concept of user or root".
		if spec.Root {
			prog.note("root requested: seL4/CAmkES has no user/root concept; attack surface unchanged")
		}
		// The generated CapDL spec documents the attacker's whole authority.
		if verr := d.System.Verify(); verr != nil {
			prog.note("CapDL verification failed before attack: %v", verr)
		}
	case *bas.LinuxDeployment:
		// Root escalation is injected five minutes before the attack window
		// opens ("root privilege gained through a privilege escalation
		// exploit").
		if spec.Root {
			tb.Machine.Clock().After(settleTime-5*time.Minute, func() {
				webPID, pidErr := d.WebPID()
				if pidErr != nil {
					prog.note("escalation failed: web process gone: %v", pidErr)
					return
				}
				if rootErr := d.Kernel.GrantRoot(webPID); rootErr != nil {
					prog.note("escalation failed: %v", rootErr)
				} else {
					prog.note("privilege escalation: web interface now uid 0")
				}
			})
		}
	}
	return dep, nil
}
