package tenantapi

import (
	"strconv"

	"mkbas/internal/obs"
)

// SimBackend is the load generator's stand-in for a head-end: per-room
// state that is a pure function of (room, virtual time, writes so far), so
// a million-request campaign aggregates byte-identically at any worker
// count. Reads allocate nothing.
type SimBackend struct {
	now       func() obs.Time
	setpoints []float64
	writes    int64
}

// NewSimBackend builds a backend with rooms rooms at setpoint 21°C.
func NewSimBackend(rooms int, now func() obs.Time) *SimBackend {
	if rooms <= 0 {
		rooms = 16
	}
	sp := make([]float64, rooms)
	for i := range sp {
		sp[i] = 21
	}
	return &SimBackend{now: now, setpoints: sp}
}

// Rooms is the room count.
func (b *SimBackend) Rooms() int { return len(b.setpoints) }

// Writes is the lifetime accepted setpoint-write count.
func (b *SimBackend) Writes() int64 { return b.writes }

// Setpoint reads a room's current setpoint.
func (b *SimBackend) Setpoint(room int) float64 { return b.setpoints[room] }

// ReadRoom models the room temperature as the setpoint plus a deterministic
// ±0.5°C ripple derived from (room, minute-of-virtual-time).
func (b *SimBackend) ReadRoom(room int, resp *Response) {
	minute := int64(b.now()) / int64(60e9)
	ripple := float64(int64(splitmix64(uint64(minute)^uint64(room)*0x9e37)&1023))/1024.0 - 0.5
	resp.Body = append(resp.Body, `,"temp_c":`...)
	resp.Body = strconv.AppendFloat(resp.Body, b.setpoints[room]+ripple, 'f', 2, 64)
	resp.Body = append(resp.Body, `,"setpoint":`...)
	resp.Body = strconv.AppendFloat(resp.Body, b.setpoints[room], 'f', 1, 64)
}

// WriteSetpoint applies the (gateway-validated) write immediately.
func (b *SimBackend) WriteSetpoint(room int, value float64) {
	b.setpoints[room] = value
	b.writes++
}

// ReadDiagnostics appends the write tally.
func (b *SimBackend) ReadDiagnostics(resp *Response) {
	resp.Body = append(resp.Body, `,"backend_writes":`...)
	resp.Body = strconv.AppendInt(resp.Body, b.writes, 10)
}
