// Package capdl implements a CapDL-style capability distribution language
// (Kuz et al. [13], used by CAmkES to describe "the state of all the
// capabilities after bootstrap").
//
// A Spec lists kernel objects and, per thread, the exact capabilities each
// CSpace slot holds. Specs are produced by the CAmkES builder
// (internal/camkes) and verified against a booted internal/sel4 kernel —
// the analogue of the paper's machine-checked CapDL file ("we expect this
// file to be correct; for high-assurance systems this file can also be
// machine verified").
//
// Verification is exact in both directions: a capability present in the
// kernel but absent from the spec is a violation (that is precisely the bug
// class the attacker hopes for), as is the reverse.
package capdl

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mkbas/internal/sel4"
)

// ObjSpec declares one named kernel object.
type ObjSpec struct {
	Name string
	Kind sel4.ObjKind
}

// CapSpec declares one slot of one thread's CSpace.
type CapSpec struct {
	Slot   sel4.CPtr
	Object string
	Rights sel4.Rights
	Badge  sel4.Badge
}

// TCBSpec declares a thread and its full capability distribution.
type TCBSpec struct {
	Name string
	Caps []CapSpec
}

// Spec is a complete capability-distribution description.
type Spec struct {
	Objects []ObjSpec
	TCBs    []TCBSpec
}

// Errors.
var (
	ErrParse  = errors.New("capdl: parse error")
	ErrVerify = errors.New("capdl: capability distribution mismatch")
)

// AddObject appends an object declaration.
func (s *Spec) AddObject(name string, kind sel4.ObjKind) {
	s.Objects = append(s.Objects, ObjSpec{Name: name, Kind: kind})
}

// AddCap appends a capability to a thread (creating the TCB entry on first
// use).
func (s *Spec) AddCap(tcbName string, cap CapSpec) {
	for i := range s.TCBs {
		if s.TCBs[i].Name == tcbName {
			s.TCBs[i].Caps = append(s.TCBs[i].Caps, cap)
			return
		}
	}
	s.TCBs = append(s.TCBs, TCBSpec{Name: tcbName, Caps: []CapSpec{cap}})
}

// TCB returns the spec for one thread, or nil.
func (s *Spec) TCB(name string) *TCBSpec {
	for i := range s.TCBs {
		if s.TCBs[i].Name == name {
			return &s.TCBs[i]
		}
	}
	return nil
}

// Render serialises the spec in the textual CapDL-like format. The output is
// deterministic: objects and threads sort by name, caps by slot.
func (s *Spec) Render() string {
	var b strings.Builder
	b.WriteString("objects {\n")
	objs := make([]ObjSpec, len(s.Objects))
	copy(objs, s.Objects)
	sort.Slice(objs, func(i, j int) bool { return objs[i].Name < objs[j].Name })
	for _, o := range objs {
		fmt.Fprintf(&b, "  %s = %v\n", o.Name, o.Kind)
	}
	b.WriteString("}\ncaps {\n")
	tcbs := make([]TCBSpec, len(s.TCBs))
	copy(tcbs, s.TCBs)
	sort.Slice(tcbs, func(i, j int) bool { return tcbs[i].Name < tcbs[j].Name })
	for _, t := range tcbs {
		fmt.Fprintf(&b, "  %s {\n", t.Name)
		caps := make([]CapSpec, len(t.Caps))
		copy(caps, t.Caps)
		sort.Slice(caps, func(i, j int) bool { return caps[i].Slot < caps[j].Slot })
		for _, c := range caps {
			fmt.Fprintf(&b, "    %d: %s (%v, badge: %d)\n", c.Slot, c.Object, c.Rights, c.Badge)
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// Parse reads the Render format back into a Spec.
func Parse(text string) (*Spec, error) {
	s := &Spec{}
	const (
		secNone = iota
		secObjects
		secCaps
	)
	section := secNone
	var curTCB string
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case line == "objects {":
			section = secObjects
		case line == "caps {":
			section = secCaps
		case line == "}":
			if curTCB != "" && section == secCaps {
				curTCB = ""
				continue
			}
			section = secNone
		case section == secObjects:
			name, kindStr, ok := strings.Cut(line, " = ")
			if !ok {
				return nil, fmt.Errorf("%w: line %d: %q", ErrParse, lineNo+1, line)
			}
			kind, err := parseKind(strings.TrimSpace(kindStr))
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineNo+1, err)
			}
			s.AddObject(strings.TrimSpace(name), kind)
		case section == secCaps && strings.HasSuffix(line, "{"):
			curTCB = strings.TrimSpace(strings.TrimSuffix(line, "{"))
		case section == secCaps && curTCB != "":
			cap, err := parseCapLine(line)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineNo+1, err)
			}
			s.AddCap(curTCB, cap)
		default:
			return nil, fmt.Errorf("%w: line %d: unexpected %q", ErrParse, lineNo+1, line)
		}
	}
	return s, nil
}

func parseKind(s string) (sel4.ObjKind, error) {
	for _, k := range []sel4.ObjKind{
		sel4.KindEndpoint, sel4.KindTCB, sel4.KindDevice, sel4.KindNetPort, sel4.KindReply,
		sel4.KindNotification,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

// parseCapLine parses "1: obj (rwg, badge: 104)".
func parseCapLine(line string) (CapSpec, error) {
	slotStr, rest, ok := strings.Cut(line, ":")
	if !ok {
		return CapSpec{}, fmt.Errorf("no slot separator in %q", line)
	}
	slot, err := strconv.Atoi(strings.TrimSpace(slotStr))
	if err != nil {
		return CapSpec{}, fmt.Errorf("bad slot in %q", line)
	}
	rest = strings.TrimSpace(rest)
	objName, attrs, ok := strings.Cut(rest, "(")
	if !ok {
		return CapSpec{}, fmt.Errorf("no attributes in %q", line)
	}
	attrs = strings.TrimSuffix(strings.TrimSpace(attrs), ")")
	parts := strings.Split(attrs, ",")
	if len(parts) != 2 {
		return CapSpec{}, fmt.Errorf("want rights and badge in %q", line)
	}
	rights, err := parseRights(strings.TrimSpace(parts[0]))
	if err != nil {
		return CapSpec{}, err
	}
	badgeStr := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(parts[1]), "badge:"))
	badge, err := strconv.ParseUint(badgeStr, 10, 64)
	if err != nil {
		return CapSpec{}, fmt.Errorf("bad badge in %q", line)
	}
	return CapSpec{
		Slot:   sel4.CPtr(slot),
		Object: strings.TrimSpace(objName),
		Rights: rights,
		Badge:  sel4.Badge(badge),
	}, nil
}

func parseRights(s string) (sel4.Rights, error) {
	if len(s) != 3 {
		return 0, fmt.Errorf("bad rights %q", s)
	}
	var r sel4.Rights
	switch s[0] {
	case 'r':
		r |= sel4.CapRead
	case '-':
	default:
		return 0, fmt.Errorf("bad rights %q", s)
	}
	switch s[1] {
	case 'w':
		r |= sel4.CapWrite
	case '-':
	default:
		return 0, fmt.Errorf("bad rights %q", s)
	}
	switch s[2] {
	case 'g':
		r |= sel4.CapGrant
	case '-':
	default:
		return 0, fmt.Errorf("bad rights %q", s)
	}
	return r, nil
}

// Binding maps spec names to the booted kernel's object and thread IDs; the
// builder that created both provides it.
type Binding struct {
	Objects map[string]sel4.ObjID
	TCBs    map[string]sel4.ObjID
}

// Verify checks a booted kernel's actual capability distribution against the
// spec, exactly: every spec'd cap must exist with identical rights and
// badge, and no thread may hold any capability the spec does not mention.
func Verify(spec *Spec, k *sel4.Kernel, bind Binding) error {
	var problems []string
	for _, tcbSpec := range spec.TCBs {
		tcbID, ok := bind.TCBs[tcbSpec.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("thread %q not bound", tcbSpec.Name))
			continue
		}
		actual, err := k.CapsOf(tcbID)
		if err != nil {
			problems = append(problems, fmt.Sprintf("thread %q: %v", tcbSpec.Name, err))
			continue
		}
		want := make(map[sel4.CPtr]CapSpec, len(tcbSpec.Caps))
		for _, c := range tcbSpec.Caps {
			want[c.Slot] = c
		}
		for slot, got := range actual {
			spec, expected := want[sel4.CPtr(slot)]
			switch {
			case got.IsNull() && !expected:
				continue
			case got.IsNull() && expected:
				problems = append(problems, fmt.Sprintf(
					"%s slot %d: missing %s", tcbSpec.Name, slot, spec.Object))
			case !got.IsNull() && !expected:
				problems = append(problems, fmt.Sprintf(
					"%s slot %d: EXTRA capability %v", tcbSpec.Name, slot, got))
			default:
				objID, okObj := bind.Objects[spec.Object]
				if !okObj {
					problems = append(problems, fmt.Sprintf(
						"%s slot %d: object %q not bound", tcbSpec.Name, slot, spec.Object))
					continue
				}
				if got.Object != objID || got.Rights != spec.Rights || got.Badge != spec.Badge {
					problems = append(problems, fmt.Sprintf(
						"%s slot %d: have %v, want %s (%v, badge: %d)",
						tcbSpec.Name, slot, got, spec.Object, spec.Rights, spec.Badge))
				}
			}
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("%w:\n  %s", ErrVerify, strings.Join(problems, "\n  "))
	}
	return nil
}
