package attack

import (
	"testing"

	"mkbas/internal/obs"
)

// TestAPIAttackOutcomes pins the E16 adjudication semantics: the stolen
// manager credential is the family's money row — the write rides certified
// edges on every platform, so the physical world is compromised unless the
// tenant tier's incident response (revocation + origin demotion) runs; the
// other rows are blocked or contained by the tier's own mediation layers.
func TestAPIAttackOutcomes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour virtual attack runs")
	}
	cases := []struct {
		name    string
		spec    Spec
		verdict string
		mechs   []obs.Mechanism
	}{
		{
			name:    "manager token replay compromises through certified path",
			spec:    Spec{Platform: PlatformMinix, Action: ActionAPITokenReplay, Root: true},
			verdict: "COMPROMISED",
		},
		{
			name:    "revocation and demotion block the replayed manager token",
			spec:    Spec{Platform: PlatformMinix, Action: ActionAPITokenReplay, Root: true, Demote: true},
			verdict: "BLOCKED",
			mechs:   []obs.Mechanism{obs.MechSession},
		},
		{
			name:    "occupant cannot escalate to manager routes",
			spec:    Spec{Platform: PlatformMinix, Action: ActionAPIRoleEscalation},
			verdict: "BLOCKED",
			mechs:   []obs.Mechanism{obs.MechRBAC},
		},
		{
			name:    "flood sheds at every layer without denying legitimate service",
			spec:    Spec{Platform: PlatformMinix, Action: ActionAPIFlood},
			verdict: "BLOCKED",
			mechs:   []obs.Mechanism{obs.MechBackpressure, obs.MechRateLimit, obs.MechSession},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Execute(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Verdict() != tc.verdict {
				t.Fatalf("verdict = %s, want %s (blockedBy=%q, %d violations)",
					rep.Verdict(), tc.verdict, rep.BlockedBy(), len(rep.Violations))
			}
			have := make(map[obs.Mechanism]bool, len(rep.Mechanisms))
			for _, m := range rep.Mechanisms {
				have[m] = true
			}
			for _, m := range tc.mechs {
				if !have[m] {
					t.Errorf("mediating mechanism %q missing (have %v)", m, rep.Mechanisms)
				}
			}
			if tc.verdict == "BLOCKED" && rep.Successes != 0 {
				t.Errorf("BLOCKED run recorded %d attacker successes", rep.Successes)
			}
		})
	}
}
