package perf

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPhaseAccumulation(t *testing.T) {
	p := New(Options{})
	ph := p.HotPhase("work")
	for i := 0; i < 3; i++ {
		sc := ph.Begin()
		time.Sleep(time.Millisecond)
		sc.End()
	}
	snap := p.Snapshot(true)
	if len(snap.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(snap.Phases))
	}
	row := snap.Phases[0]
	if row.Name != "work" || row.Count != 3 {
		t.Fatalf("row = %+v, want work/3", row)
	}
	if row.TotalNs < 3*int64(time.Millisecond) {
		t.Errorf("total %d ns, want >= 3ms", row.TotalNs)
	}
	if row.MaxNs < int64(time.Millisecond) || row.MaxNs > row.TotalNs {
		t.Errorf("max %d ns out of range (total %d)", row.MaxNs, row.TotalNs)
	}
	if row.AvgNs != row.TotalNs/3 {
		t.Errorf("avg %d, want total/3 = %d", row.AvgNs, row.TotalNs/3)
	}
}

func TestPhaseResolvesSameObject(t *testing.T) {
	p := New(Options{})
	if p.Phase("x") != p.Phase("x") {
		t.Error("Phase(name) must return the same accumulator on every call")
	}
}

func TestNilProfilerDiscards(t *testing.T) {
	var p *Profiler
	ph := p.Phase("anything")
	if ph != nil {
		t.Fatal("nil profiler must yield nil phase")
	}
	sc := ph.Begin() // must not panic
	sc.End()
	p.SetGauge("g", 1)
	if tr := p.Track("t"); tr != nil {
		t.Error("nil profiler must yield nil track")
	}
	if p.TimelineEnabled() {
		t.Error("nil profiler reports timeline enabled")
	}
	snap := p.Snapshot(true)
	if len(snap.Phases) != 0 {
		t.Errorf("nil profiler snapshot has %d phases", len(snap.Phases))
	}
	if _, err := p.ChromeTrace(false); err != nil {
		t.Errorf("nil profiler ChromeTrace: %v", err)
	}
}

func TestAllocTracking(t *testing.T) {
	if !allocsSupported {
		t.Skip("runtime does not expose " + heapAllocsMetric)
	}
	p := New(Options{})
	ph := p.Phase("alloc")
	sc := ph.Begin()
	sink = make([]byte, 1<<16)
	sc.End()
	snap := p.Snapshot(true)
	if snap.Phases[0].Allocs == 0 {
		t.Error("allocating scope recorded zero allocations")
	}
	hot := p.HotPhase("hot")
	hsc := hot.Begin()
	sink = make([]byte, 1<<16)
	hsc.End()
	for _, row := range p.Snapshot(true).Phases {
		if row.Name == "hot" && row.Allocs != 0 {
			t.Errorf("hot phase tracked allocations: %d", row.Allocs)
		}
	}
}

var sink []byte

// TestSnapshotSkeletonDeterministic: without timings, two profiles of the
// same logical work are byte-identical even though their host timings differ.
func TestSnapshotSkeletonDeterministic(t *testing.T) {
	run := func(pause time.Duration) []byte {
		p := New(Options{})
		for i := 0; i < 4; i++ {
			sc := p.Phase("b.step").Begin()
			time.Sleep(pause)
			sc.End()
		}
		sc := p.Phase("a.merge").Begin()
		sc.End()
		p.SetGauge("pool.workers", int64(pause)) // gauges must not leak
		out, err := p.Snapshot(false).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(0), run(2*time.Millisecond)
	if !bytes.Equal(a, b) {
		t.Errorf("timing-free snapshots differ:\n%s\nvs\n%s", a, b)
	}
	text := New(Options{}).Snapshot(false).Text()
	if strings.Contains(text, "gauge") {
		t.Error("timing-free text rendered gauges")
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	p := New(Options{})
	p.Phase("zeta").Begin().End()
	p.Phase("alpha").Begin().End()
	p.Phase("mid").Begin().End()
	snap := p.Snapshot(true)
	var names []string
	for _, row := range snap.Phases {
		names = append(names, row.Name)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("phase order %v, want %v", names, want)
		}
	}
}

func TestChromeTraceNormalized(t *testing.T) {
	build := func() *Profiler {
		p := New(Options{Timeline: true})
		tr := p.Track("worker-00")
		ph := p.HotPhase("shard")
		for _, label := range []string{"s0", "s1", "s2"} {
			sc := ph.BeginOn(tr, label)
			time.Sleep(time.Millisecond)
			sc.End()
		}
		return p
	}
	a, err := build().ChromeTrace(true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().ChromeTrace(true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("normalized traces differ:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{`"worker-00"`, `"s0"`, `"s2"`, `"phase": "shard"`} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("trace missing %s:\n%s", want, a)
		}
	}
	// Un-normalized timestamps are host-dependent but must be present.
	raw, err := build().ChromeTrace(false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"ph": "X"`)) {
		t.Errorf("raw trace has no complete events:\n%s", raw)
	}
}

// TestTimelineOffDiscardsEvents: tracked scopes on a timeline-less profiler
// must not retain events (the aggregate table still counts them).
func TestTimelineOffDiscardsEvents(t *testing.T) {
	p := New(Options{})
	tr := p.Track("worker-00")
	p.HotPhase("shard").BeginOn(tr, "s0").End()
	if len(tr.events) != 0 {
		t.Errorf("timeline off but %d events retained", len(tr.events))
	}
	if got := p.Snapshot(false).Phases[0].Count; got != 1 {
		t.Errorf("count = %d, want 1", got)
	}
}

func TestConcurrentScopes(t *testing.T) {
	p := New(Options{})
	ph := p.HotPhase("par")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				ph.Begin().End()
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := p.Snapshot(false).Phases[0].Count; got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}
