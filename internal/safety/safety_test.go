package safety

import (
	"testing"
	"time"

	"mkbas/internal/bas"
	"mkbas/internal/machine"
	"mkbas/internal/plant"
)

func TestHealthyRunHasNoViolations(t *testing.T) {
	cfg := bas.DefaultScenario()
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	if _, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{}); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	mon := Attach(tb.Machine.Clock(), tb.Room, DefaultConfig())
	tb.Machine.Run(2 * time.Hour)
	if !mon.Healthy() {
		t.Fatalf("violations on healthy run:\n%v", mon.Violations())
	}
	if mon.Samples() == 0 {
		t.Fatal("monitor never sampled")
	}
}

func TestHeaterFailureWithWorkingAlarmIsRangeOnly(t *testing.T) {
	// Physical fault with an honest controller: the room leaves the range
	// (violation) but the alarm fires, so liveness holds.
	cfg := bas.DefaultScenario()
	cfg.Plant.InitialTemp = 22
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	if _, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{}); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	mon := Attach(tb.Machine.Clock(), tb.Room, DefaultConfig())
	tb.Machine.Run(30 * time.Minute)
	tb.Room.FailHeater(true)
	tb.Machine.Run(4 * time.Hour)

	if len(mon.ViolationsOf(PropTempInRange)) == 0 {
		t.Fatal("no range violation despite failed heater")
	}
	if v := mon.ViolationsOf(PropAlarmLiveness); len(v) != 0 {
		t.Fatalf("liveness violations despite working alarm: %v", v)
	}
}

func TestHeaterRecoveryClearsAlarmWithoutHonestyViolation(t *testing.T) {
	// Physical fault with repair: the heater dies long enough to trip the
	// alarm, then comes back. The room reheats, the controller clears the
	// alarm one sample after re-entering the band, and the monitor's
	// recovery-lag slack means honesty never fires — the alarm was truthful
	// throughout.
	cfg := bas.DefaultScenario()
	cfg.Plant.InitialTemp = 22
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	if _, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{}); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	mon := Attach(tb.Machine.Clock(), tb.Room, DefaultConfig())
	tb.Machine.Run(30 * time.Minute)
	tb.Room.FailHeater(true)
	tb.Machine.Run(40 * time.Minute) // room decays out of range, alarm trips
	if !tb.Room.AlarmOn() {
		t.Fatalf("alarm not raised during heater outage (temp %.2f)", tb.Room.Temperature())
	}
	tb.Room.FailHeater(false)
	tb.Machine.Run(2 * time.Hour) // reheat, alarm clears
	if tb.Room.AlarmOn() {
		t.Fatalf("alarm still on after recovery (temp %.2f)", tb.Room.Temperature())
	}
	if temp := tb.Room.Temperature(); temp < 21 || temp > 23 {
		t.Fatalf("room did not recover: %.2f", temp)
	}
	if len(mon.ViolationsOf(PropTempInRange)) == 0 {
		t.Error("no range violation despite the outage")
	}
	if v := mon.ViolationsOf(PropAlarmLiveness); len(v) != 0 {
		t.Errorf("liveness violations despite a truthful alarm: %v", v)
	}
	if v := mon.ViolationsOf(PropAlarmHonesty); len(v) != 0 {
		t.Errorf("honesty violations during recovery: %v", v)
	}
}

func TestSuppressedAlarmViolatesLiveness(t *testing.T) {
	// No controller at all: the room drifts out of range and nothing raises
	// the alarm — the signature of a killed control process.
	m := machine.New(machine.Config{})
	defer m.Shutdown()
	m.Engine().SetHandler(idleKernel{})
	cfg := plant.DefaultConfig()
	cfg.InitialTemp = 22
	room := plant.NewRoom(m.Clock(), cfg)
	mon := Attach(m.Clock(), room, DefaultConfig())
	m.Run(4 * time.Hour) // room decays to 15 °C ambient, no alarm ever

	if len(mon.ViolationsOf(PropAlarmLiveness)) == 0 {
		t.Fatal("suppressed alarm not detected")
	}
	if len(mon.ViolationsOf(PropTempInRange)) == 0 {
		t.Fatal("range violation not detected")
	}
}

func TestDishonestAlarmViolatesHonesty(t *testing.T) {
	m := machine.New(machine.Config{})
	defer m.Shutdown()
	m.Engine().SetHandler(idleKernel{})
	cfg := plant.DefaultConfig()
	cfg.InitialTemp = 22
	cfg.HeaterPower = 7e-3 // strong enough to hold 22 at steady state
	room := plant.NewRoom(m.Clock(), cfg)
	room.SetAmbient(22) // room pinned at setpoint
	monCfg := DefaultConfig()
	mon := Attach(m.Clock(), room, monCfg)
	// An attacker blares the alarm while the room is fine.
	m.Clock().After(30*time.Minute, func() {
		if err := m.Bus(); err != nil {
			_ = err
		}
	})
	m.Run(25 * time.Minute)
	forceAlarm(room)
	m.Run(time.Hour)
	if len(mon.ViolationsOf(PropAlarmHonesty)) == 0 {
		t.Fatal("dishonest alarm not detected")
	}
}

// forceAlarm drives the alarm actuator directly, as an attacker commanding
// the alarm driver would.
func forceAlarm(room *plant.Room) {
	// plant exposes actuation only through the bus device; build one.
	dev := struct{ *plant.Room }{room}
	_ = dev
	// Use a one-off bus to reach the register.
	b := machineBusFor(room)
	_ = b.Write(plant.DevAlarm, plant.RegActuate, 1)
}

// machineBusFor attaches the room's devices to a throwaway bus.
func machineBusFor(room *plant.Room) *machine.Bus {
	b := machine.NewBus()
	plantAttachAlarmOnly(b, room)
	return b
}

// plantAttachAlarmOnly mirrors plant.Attach for a second bus; plant.Attach
// panics on duplicate IDs only within one bus, so a fresh bus is fine.
func plantAttachAlarmOnly(b *machine.Bus, room *plant.Room) {
	plant.Attach(b, room)
}

func TestSetpointUpdateMovesTheGoalposts(t *testing.T) {
	m := machine.New(machine.Config{})
	defer m.Shutdown()
	m.Engine().SetHandler(idleKernel{})
	cfg := plant.DefaultConfig()
	cfg.InitialTemp = 25
	room := plant.NewRoom(m.Clock(), cfg)
	room.SetAmbient(25)
	monCfg := DefaultConfig()
	monCfg.SettleTime = time.Minute
	mon := Attach(m.Clock(), room, monCfg) // setpoint 22: room at 25 is out
	m.Clock().After(2*time.Minute, func() { mon.SetSetpoint(25) })
	m.Run(time.Hour)
	early := mon.ViolationsOf(PropTempInRange)
	if len(early) == 0 {
		t.Fatal("no violation before the setpoint update")
	}
	// After the update the room is healthy: last violation must predate it.
	last := early[len(early)-1]
	if last.At > machine.Time(3*time.Minute) {
		t.Fatalf("violation at %v, after monitor learned the new setpoint", last.At)
	}
}

func TestViolationCoalescing(t *testing.T) {
	m := machine.New(machine.Config{})
	defer m.Shutdown()
	m.Engine().SetHandler(idleKernel{})
	cfg := plant.DefaultConfig()
	cfg.InitialTemp = 30
	room := plant.NewRoom(m.Clock(), cfg)
	room.SetAmbient(30) // permanently out of range for setpoint 22
	monCfg := DefaultConfig()
	monCfg.SettleTime = 0
	monCfg.Period = time.Second
	mon := Attach(m.Clock(), room, monCfg)
	m.Run(10 * time.Minute)
	n := len(mon.ViolationsOf(PropTempInRange))
	if n == 0 {
		t.Fatal("no violations")
	}
	if n > 12 {
		t.Fatalf("got %d range violations in 10 minutes; coalescing to ~1/min failed", n)
	}
}

func TestMonitorStop(t *testing.T) {
	m := machine.New(machine.Config{})
	defer m.Shutdown()
	m.Engine().SetHandler(idleKernel{})
	room := plant.NewRoom(m.Clock(), plant.DefaultConfig())
	mon := Attach(m.Clock(), room, DefaultConfig())
	m.Run(time.Minute)
	taken := mon.Samples()
	mon.Stop()
	m.Run(time.Hour)
	if mon.Samples() != taken+1 && mon.Samples() != taken {
		t.Fatalf("samples kept accruing after Stop: %d -> %d", taken, mon.Samples())
	}
}

// idleKernel satisfies machine.TrapHandler for plant-only boards.
type idleKernel struct{}

func (idleKernel) HandleTrap(pid machine.PID, req any) (any, machine.Disposition) {
	return nil, machine.DispositionContinue
}
func (idleKernel) OnProcExit(pid machine.PID, info machine.ExitInfo) {}
