// Attack demo: the paper's core comparison in one run. The same compromised
// web interface tries to spoof the temperature sensor and to kill the
// control process on Linux and on the security-enhanced MINIX 3; the plant's
// ground truth decides who was actually protected.
//
//	go run ./examples/attack-demo
package main

import (
	"fmt"
	"os"

	"mkbas/internal/attack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attack-demo:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Compromised web interface, attacker model 2 (arbitrary code + root).")
	fmt.Println()

	demos := []attack.Spec{
		{Platform: attack.PlatformLinux, Action: attack.ActionSpoofSensor, Root: true},
		{Platform: attack.PlatformMinix, Action: attack.ActionSpoofSensor, Root: true},
		{Platform: attack.PlatformLinux, Action: attack.ActionKillController, Root: true},
		{Platform: attack.PlatformMinix, Action: attack.ActionKillController, Root: true},
		{Platform: attack.PlatformSel4, Action: attack.ActionEnumerate},
	}
	var reports []*attack.Report
	for _, spec := range demos {
		report, err := attack.Execute(spec)
		if err != nil {
			return err
		}
		reports = append(reports, report)
		fmt.Println(attack.Summarize(report))
	}

	fmt.Println("outcome matrix:")
	fmt.Println(attack.FormatMatrix(reports))

	fmt.Println("Reading: on Linux the root-compromised web interface impersonates the")
	fmt.Println("sensor and kills the controller, physically jeopardizing the room. On")
	fmt.Println("MINIX 3 the kernel's access control matrix and the PM's syscall audit")
	fmt.Println("deny every attempt, root or not. On seL4 the brute-force enumeration")
	fmt.Println("finds nothing beyond the two capabilities the web interface was granted.")
	return nil
}
