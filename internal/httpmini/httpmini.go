// Package httpmini is a minimal HTTP/1.0 implementation for the scenario's
// web interface process ("a static HTTP web server ... maintains TCP socket
// on port 8080 and supports HTTP GET and HTTP POST").
//
// It parses requests incrementally from a byte stream, so a simulated server
// can feed it whatever a non-blocking socket read returned and ask whether a
// full request has arrived yet. Responses are rendered to bytes for the
// symmetric path. net/http is deliberately not used: the simulated web server
// must run over vnet streams inside a virtual kernel, not over real sockets.
package httpmini

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse errors.
var (
	ErrMalformed    = errors.New("httpmini: malformed request")
	ErrTooLarge     = errors.New("httpmini: request too large")
	ErrBadMethod    = errors.New("httpmini: unsupported method")
	errNeedMoreData = errors.New("httpmini: incomplete")
)

// Limits mirror a small embedded web server.
const (
	maxHeaderBytes = 8 << 10
	maxBodyBytes   = 64 << 10
)

// Request is one parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Query   map[string]string
	Proto   string
	Headers map[string]string // keys lower-cased
	Body    []byte
}

// FormValue returns a decoded query or form value (query first, then
// x-www-form-urlencoded body), or "" when absent.
func (r *Request) FormValue(key string) string {
	if v, ok := r.Query[key]; ok {
		return v
	}
	if strings.Contains(r.Headers["content-type"], "application/x-www-form-urlencoded") {
		form := parseURLEncoded(string(r.Body))
		return form[key]
	}
	return ""
}

// Parser accumulates stream bytes and yields complete requests.
type Parser struct {
	buf []byte
}

// Feed appends stream bytes to the parser.
func (p *Parser) Feed(data []byte) {
	p.buf = append(p.buf, data...)
}

// Buffered reports how many unconsumed bytes the parser holds.
func (p *Parser) Buffered() int { return len(p.buf) }

// Next attempts to parse one complete request from the buffered bytes.
// It returns (nil, nil) when more data is needed, and a non-nil error when
// the stream is unrecoverably malformed.
func (p *Parser) Next() (*Request, error) {
	req, rest, err := parseOne(p.buf)
	switch {
	case errors.Is(err, errNeedMoreData):
		if len(p.buf) > maxHeaderBytes+maxBodyBytes {
			return nil, ErrTooLarge
		}
		return nil, nil
	case err != nil:
		return nil, err
	default:
		p.buf = rest
		return req, nil
	}
}

// parseOne parses a single request from data, returning unconsumed bytes.
func parseOne(data []byte) (*Request, []byte, error) {
	headerEnd := strings.Index(string(data), "\r\n\r\n")
	if headerEnd < 0 {
		if len(data) > maxHeaderBytes {
			return nil, nil, ErrTooLarge
		}
		return nil, nil, errNeedMoreData
	}
	// The cap applies to complete header blocks too, not just ones still
	// waiting for their terminator — otherwise a single large read smuggles
	// an arbitrarily big block past the limit.
	if headerEnd > maxHeaderBytes {
		return nil, nil, ErrTooLarge
	}
	head := string(data[:headerEnd])
	lines := strings.Split(head, "\r\n")
	if len(lines) == 0 {
		return nil, nil, ErrMalformed
	}
	reqLine := strings.Fields(lines[0])
	if len(reqLine) != 3 {
		return nil, nil, fmt.Errorf("%w: request line %q", ErrMalformed, lines[0])
	}
	method, target, proto := reqLine[0], reqLine[1], reqLine[2]
	if method != "GET" && method != "POST" {
		return nil, nil, fmt.Errorf("%w: %s", ErrBadMethod, method)
	}
	if !strings.HasPrefix(proto, "HTTP/1.") {
		return nil, nil, fmt.Errorf("%w: protocol %q", ErrMalformed, proto)
	}

	headers := make(map[string]string, len(lines)-1)
	for _, line := range lines[1:] {
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, nil, fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		key := strings.ToLower(strings.TrimSpace(line[:colon]))
		headers[key] = strings.TrimSpace(line[colon+1:])
	}

	bodyLen := 0
	if cl, ok := headers["content-length"]; ok {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, nil, fmt.Errorf("%w: content-length %q", ErrMalformed, cl)
		}
		if n > maxBodyBytes {
			return nil, nil, ErrTooLarge
		}
		bodyLen = n
	}
	bodyStart := headerEnd + 4
	if len(data) < bodyStart+bodyLen {
		return nil, nil, errNeedMoreData
	}
	body := make([]byte, bodyLen)
	copy(body, data[bodyStart:bodyStart+bodyLen])

	path, query := target, ""
	if q := strings.IndexByte(target, '?'); q >= 0 {
		path, query = target[:q], target[q+1:]
	}

	req := &Request{
		Method:  method,
		Path:    path,
		Query:   parseURLEncoded(query),
		Proto:   proto,
		Headers: headers,
		Body:    body,
	}
	rest := make([]byte, len(data)-bodyStart-bodyLen)
	copy(rest, data[bodyStart+bodyLen:])
	return req, rest, nil
}

// parseURLEncoded decodes k=v&k2=v2 pairs with %XX and '+' decoding.
func parseURLEncoded(s string) map[string]string {
	out := make(map[string]string)
	if s == "" {
		return out
	}
	for _, pair := range strings.Split(s, "&") {
		if pair == "" {
			continue
		}
		key, val := pair, ""
		if eq := strings.IndexByte(pair, '='); eq >= 0 {
			key, val = pair[:eq], pair[eq+1:]
		}
		out[unescape(key)] = unescape(val)
	}
	return out
}

// unescape decodes %XX sequences and '+' as space; invalid escapes pass
// through literally, like a forgiving embedded parser.
func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '+':
			b.WriteByte(' ')
		case s[i] == '%' && i+2 < len(s):
			hi, okHi := fromHex(s[i+1])
			lo, okLo := fromHex(s[i+2])
			if okHi && okLo {
				b.WriteByte(hi<<4 | lo)
				i += 2
			} else {
				b.WriteByte(s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func fromHex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// Response is one HTTP response to render.
type Response struct {
	Status  int
	Headers map[string]string
	Body    []byte
}

// statusText covers the codes the scenario server emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 401:
		return "Unauthorized"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 429:
		return "Too Many Requests"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}

// Render serialises the response as HTTP/1.0 bytes. Content-Length is always
// emitted; header order is deterministic.
func (r *Response) Render() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.0 %d %s\r\n", r.Status, statusText(r.Status))
	keys := make([]string, 0, len(r.Headers))
	for k := range r.Headers {
		if strings.EqualFold(k, "content-length") {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, r.Headers[k])
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n", len(r.Body))
	out := append([]byte(b.String()), r.Body...)
	return out
}

// Text builds a text/plain response.
func Text(status int, body string) *Response {
	return &Response{
		Status:  status,
		Headers: map[string]string{"Content-Type": "text/plain"},
		Body:    []byte(body),
	}
}

// ParseResponse parses a rendered response (for the harness/client side).
func ParseResponse(data []byte) (status int, body []byte, err error) {
	s := string(data)
	headerEnd := strings.Index(s, "\r\n\r\n")
	if headerEnd < 0 {
		return 0, nil, ErrMalformed
	}
	lines := strings.Split(s[:headerEnd], "\r\n")
	fields := strings.Fields(lines[0])
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "HTTP/1.") {
		return 0, nil, fmt.Errorf("%w: status line %q", ErrMalformed, lines[0])
	}
	status, err = strconv.Atoi(fields[1])
	if err != nil {
		return 0, nil, fmt.Errorf("%w: status %q", ErrMalformed, fields[1])
	}
	return status, data[headerEnd+4:], nil
}
