package sel4

import "mkbas/internal/machine"

// This file adds seL4 Notification objects: the kernel's second IPC
// primitive. A notification is a word of badge bits; Signal ORs the sender
// capability's badge into it (non-blocking), Wait blocks until the word is
// non-zero and collects it atomically, Poll is the non-blocking variant.
// CAmkES "event" connections are built on these; the scenario itself only
// needs RPC, so notifications are an extension exercised by tests and the
// interrupt-style driver patterns they enable.

// notificationObj is the kernel object.
type notificationObj struct {
	id    ObjID
	name  string
	word  Badge
	waitQ []*tcb
}

// CreateNotification allocates a notification object (root-task API).
func (k *Kernel) CreateNotification(name string) ObjID {
	id := k.allocID()
	k.notifs[id] = &notificationObj{id: id, name: name}
	return id
}

// NotificationCap builds a notification capability; CapWrite permits Signal,
// CapRead permits Wait/Poll, and the badge is what Signal contributes.
func NotificationCap(obj ObjID, rights Rights, badge Badge) Capability {
	return Capability{Object: obj, Kind: KindNotification, Rights: rights, Badge: badge}
}

// Notification trap types.
type (
	signalTrap struct {
		cptr CPtr
	}
	waitTrap struct {
		cptr CPtr
		nb   bool
	}
)

type waitResult struct {
	word Badge
	err  error
}

// doSignal implements seL4_Signal.
func (k *Kernel) doSignal(t *tcb, r *signalTrap) (any, machine.Disposition) {
	c, err := k.lookupCap(t, r.cptr, KindNotification, CapWrite)
	if err != nil {
		return t.errOut(err), machine.DispositionContinue
	}
	n := k.notifs[c.Object]
	k.stats.Signals++
	k.m.IPC().Record(t.name, n.name, "signal")
	if waiter := popWaiter(n); waiter != nil {
		// Deliver directly: the waiter gets this signal's badge plus any
		// already-accumulated bits.
		word := n.word | c.Badge
		n.word = 0
		waiter.state = stateReady
		waiter.waitToken++
		k.m.IPC().Record(n.name, waiter.name, "wait")
		k.mustReady(waiter.pid, waiter.waitOut(word, nil))
		return t.errOut(nil), machine.DispositionContinue
	}
	n.word |= c.Badge
	return t.errOut(nil), machine.DispositionContinue
}

// doWait implements seL4_Wait / seL4_Poll.
func (k *Kernel) doWait(t *tcb, r *waitTrap) (any, machine.Disposition) {
	c, err := k.lookupCap(t, r.cptr, KindNotification, CapRead)
	if err != nil {
		return t.waitOut(0, err), machine.DispositionContinue
	}
	n := k.notifs[c.Object]
	if n.word != 0 {
		word := n.word
		n.word = 0
		k.m.IPC().Record(n.name, t.name, "wait")
		return t.waitOut(word, nil), machine.DispositionContinue
	}
	if r.nb {
		return t.waitOut(0, ErrWouldBlock), machine.DispositionContinue
	}
	t.state = stateBlockedNotif
	n.waitQ = append(n.waitQ, t)
	return nil, machine.DispositionBlock
}

// popWaiter dequeues the next live waiter.
func popWaiter(n *notificationObj) *tcb {
	for len(n.waitQ) > 0 {
		w := n.waitQ[0]
		copy(n.waitQ, n.waitQ[1:])
		n.waitQ = n.waitQ[:len(n.waitQ)-1]
		if w.state == stateBlockedNotif {
			return w
		}
	}
	return nil
}

// Signal performs seL4_Signal on a notification capability (write right).
func (a *API) Signal(cptr CPtr) error {
	a.signalScratch = signalTrap{cptr: cptr}
	return a.ctx.Trap(&a.signalScratch).(*errResult).err
}

// Wait performs seL4_Wait: blocks until the notification word is non-zero
// and returns it (clearing it).
func (a *API) Wait(cptr CPtr) (Badge, error) {
	a.waitScratch = waitTrap{cptr: cptr}
	reply := a.ctx.Trap(&a.waitScratch).(*waitResult)
	return reply.word, reply.err
}

// Poll performs seL4_Poll: like Wait but returns ErrWouldBlock when the word
// is zero.
func (a *API) Poll(cptr CPtr) (Badge, error) {
	a.waitScratch = waitTrap{cptr: cptr, nb: true}
	reply := a.ctx.Trap(&a.waitScratch).(*waitResult)
	return reply.word, reply.err
}
