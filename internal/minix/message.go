package minix

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PayloadSize is the fixed payload capacity: 64 bytes total minus the 4-byte
// source endpoint and 4-byte message type.
const PayloadSize = 56

// Message is the fixed-size MINIX 3 IPC message. Source is always stamped by
// the kernel on delivery; a value set by the sender is overwritten, which is
// what defeats user-level spoofing.
type Message struct {
	// Source is the sender's endpoint, kernel-stamped.
	Source Endpoint
	// Type is the 4-byte message type; values 0..63 are subject to the ACM
	// bitmask, larger values are always denied by the security-enhanced
	// kernel.
	Type int32
	// Payload is the opaque 56-byte body.
	Payload [PayloadSize]byte
}

// String renders a compact debug form.
func (m Message) String() string {
	return fmt.Sprintf("msg{src=%v type=%d}", m.Source, m.Type)
}

// The payload codec: little-endian primitives at fixed offsets, plus a
// length-prefixed string helper. Offsets are byte indexes into Payload.

// PutU32 stores v at byte offset off.
func (m *Message) PutU32(off int, v uint32) {
	binary.LittleEndian.PutUint32(m.Payload[off:off+4], v)
}

// U32 loads a uint32 from byte offset off.
func (m *Message) U32(off int) uint32 {
	return binary.LittleEndian.Uint32(m.Payload[off : off+4])
}

// PutU64 stores v at byte offset off.
func (m *Message) PutU64(off int, v uint64) {
	binary.LittleEndian.PutUint64(m.Payload[off:off+8], v)
}

// U64 loads a uint64 from byte offset off.
func (m *Message) U64(off int) uint64 {
	return binary.LittleEndian.Uint64(m.Payload[off : off+8])
}

// PutI64 stores v at byte offset off.
func (m *Message) PutI64(off int, v int64) { m.PutU64(off, uint64(v)) }

// I64 loads an int64 from byte offset off.
func (m *Message) I64(off int) int64 { return int64(m.U64(off)) }

// PutF64 stores a float64 at byte offset off.
func (m *Message) PutF64(off int, v float64) { m.PutU64(off, math.Float64bits(v)) }

// F64 loads a float64 from byte offset off.
func (m *Message) F64(off int) float64 { return math.Float64frombits(m.U64(off)) }

// PutString stores s length-prefixed at byte offset off. It panics if the
// string cannot fit — message layouts are fixed at design time, so overflow
// is a programming error, not an input error.
func (m *Message) PutString(off int, s string) {
	if off+1+len(s) > PayloadSize {
		panic(fmt.Sprintf("minix: string %q does not fit payload at offset %d", s, off))
	}
	m.Payload[off] = byte(len(s))
	copy(m.Payload[off+1:], s)
}

// GetString loads a length-prefixed string from byte offset off.
func (m *Message) GetString(off int) string {
	n := int(m.Payload[off])
	if off+1+n > PayloadSize {
		n = PayloadSize - off - 1
	}
	return string(m.Payload[off+1 : off+1+n])
}

// NewMessage builds a message with the given type; Source is left for the
// kernel.
func NewMessage(msgType int32) Message {
	return Message{Type: msgType}
}
