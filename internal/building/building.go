// Package building is the multi-room fleet simulation: N controller boards
// (any mix of platforms, one per room) joined by an inter-board BAS bus
// (vnet.Bus), supervised by a head-end BMS that speaks BACnet to every room.
// One virtual clock spans the whole building: boards advance in lockstep
// rounds, stepping in parallel worker goroutines between bus-delivery
// barriers, so a 64-room run is byte-deterministic at any worker count.
package building

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mkbas/internal/bas"
	"mkbas/internal/faultinject"
	"mkbas/internal/machine"
	"mkbas/internal/obs"
	"mkbas/internal/perf"
	"mkbas/internal/polcheck/monitor"
	"mkbas/internal/vnet"
)

// Config describes a building.
type Config struct {
	// Rooms is the number of rooms (one board each); must be positive.
	Rooms int
	// Mix assigns platforms round-robin: room i runs Mix[i%len(Mix)].
	// Empty means every room runs PlatformMinix.
	Mix []bas.Platform
	// Secure marks which rooms sit behind the secure proxy (indexed by
	// room); nil means every room speaks the legacy protocol.
	Secure []bool
	// Scenario is the per-room scenario base; the zero value means
	// bas.DefaultScenario(). Room i runs with Seed = Scenario.Seed + i, so
	// rooms have independent sensor noise but the building stays
	// reproducible.
	Scenario bas.ScenarioConfig
	// Recovery enables the optional per-platform recovery machinery in every
	// room (see bas.DeployOptions.Recovery).
	Recovery bool
	// Slice is the lockstep round length; default 1s.
	Slice time.Duration
	// Workers bounds how many boards step concurrently within a round;
	// <= 0 means 1. The report is byte-identical at any value — workers only
	// trade wall-clock time.
	Workers int
	// HeadEnd parameterises the supervisory BMS.
	HeadEnd HeadEndConfig
	// Faults arms a builtin fault-injection plan (by name) on selected rooms.
	Faults map[int]string
	// BusFaults arms a bus-level fault plan (by name, from the builtin
	// registry): link partitions, frame drops, delays, duplication, and the
	// primary head-end crash. Verdicts are applied at the bus flush barrier
	// from virtual time and frame age only, so a faulted run stays
	// byte-identical at any worker count.
	BusFaults string
	// Standby attaches a standby head-end on its own bus node
	// ("bms-standby", added after the primary so room i stays node i). The
	// standby watches the primary's poll traffic through a bus tap and takes
	// over after HeadEnd.FailoverRounds rounds of silence.
	Standby bool
	// TenantAPI attaches the building-scale tenant API tier: a gateway
	// fronting the whole fleet, driven with a deterministic per-round batch
	// of occupant/manager/vendor requests at the round barrier. Authorized
	// setpoint writes land through the target room's real web interface; the
	// tier's counters, latency histograms, and denial events merge into the
	// building report.
	TenantAPI bool
	// Monitor attaches the online policy monitor to every room's board
	// (bas.DeployOptions.Monitor) and installs the bus dial guard: every
	// cross-board dial is checked against the building's certified dial set
	// (only the head-end BMS dials room gateways, on the BACnet port).
	// Uncertified dials raise policy-drift events on the offending board but
	// are still delivered — observe, don't enforce.
	Monitor bool
	// Demote upgrades the monitor to enforcement: the first uncertified dial
	// from a room demotes that room's web-interface subject to the untrusted
	// origin, and every uncertified dial is refused at the bus barrier (the
	// dialer sees a refused connection, exactly as if no listener existed).
	// Demote implies Monitor.
	Demote bool
	// Profiler attaches the host-side performance profiler: rounds, board
	// steps, head-end polling, and bus flushes book their wall-clock cost
	// into named phases, and each worker goroutine keeps busy/idle accounts
	// (WorkerStats). nil profiles nothing, including the busy/idle accounts
	// — their two time.Now calls per board step are measurable on the bench
	// hot path, so unprofiled runs skip them and WorkerStats/StepWallNs
	// read zero. Never marshalled.
	Profiler *perf.Profiler `json:"-"`
}

// RoomKey derives room i's secure-proxy device key. Deterministic on
// purpose: building experiments must replay bit-for-bit.
func RoomKey(i int) []byte {
	return []byte(fmt.Sprintf("bldg-key-%04d", i))
}

// Room is one deployed room: a full testbed and platform deployment attached
// to the bus.
type Room struct {
	Index    int
	Platform bas.Platform
	Secure   bool
	Key      []byte // nil for legacy rooms
	DeviceID uint32
	Node     vnet.NodeID

	Testbed  *bas.Testbed
	Dep      bas.Deployment
	Injector *faultinject.Injector
	Plan     string

	// label is the room's timeline-slice name, precomputed so the worker
	// hot loop never formats.
	label string
}

// Building is the assembled fleet.
type Building struct {
	cfg   Config
	slice time.Duration

	Bus     *vnet.Bus
	Rooms   []*Room
	Head    *HeadEnd
	Standby *HeadEnd // nil unless Config.Standby

	// BusInj is the armed bus-level fault campaign (nil without BusFaults).
	BusInj *faultinject.BusInjector

	headNode      vnet.NodeID
	standbyNode   vnet.NodeID
	round         int
	elapsed       time.Duration
	workers       int
	supWindow     time.Duration
	failoverRound int
	failovers     int

	// tenant is the attached building-scale API tier (nil without
	// Config.TenantAPI); touched only on the coordinator goroutine.
	tenant *tenantTier

	// Bus-monitor state, touched only on the coordinator goroutine (the dial
	// guard runs at the flush barrier with every board engine parked).
	busDrifts  []int64 // uncertified dials observed, by originating room
	busRefused []int64 // uncertified dials refused under Demote, by room
	demoted    []bool  // room's web subject has been demoted

	target machine.Time
	jobs   chan int
	wg     sync.WaitGroup
	closed bool

	// Host-side profiling. The phases are nil (discarding) without a
	// profiler; the per-worker busy/jobs counters always run. stepWallNs
	// accumulates the coordinator's board-stepping window (dispatch to
	// barrier) per round; every worker busy interval nests strictly inside
	// that window, which is what makes busy+idle == stepWall an exact
	// invariant rather than a racy approximation.
	prof       *perf.Profiler
	phRound    *perf.Phase
	phBoard    *perf.Phase
	phHead     *perf.Phase
	stepWallNs int64
	wstats     []workerStat
}

// workerStat is one worker goroutine's host-time account.
type workerStat struct {
	busyNs int64 // atomic: summed board-step time on this worker
	jobs   int64 // atomic: board steps executed on this worker
	track  *perf.Track
	_      [4]int64 // pad to a cache line so workers don't false-share
}

// WorkerStats is one worker's exported busy/idle account, relative to the
// coordinator's cumulative board-stepping wall-clock (StepWallNs).
type WorkerStats struct {
	Worker int   `json:"worker"`
	Jobs   int64 `json:"jobs"`
	BusyNs int64 `json:"busy_ns"`
	IdleNs int64 `json:"idle_ns"`
}

// New deploys the building: every room boots its platform with the BACnet
// gateway enabled, joins the bus, and the head-end attaches last (so room i
// is always bus node i — the invariant attack code leans on).
func New(cfg Config) (*Building, error) {
	if cfg.Rooms <= 0 {
		return nil, fmt.Errorf("building: need at least one room, got %d", cfg.Rooms)
	}
	scenario := cfg.Scenario
	if scenario.SamplePeriod == 0 {
		seed := scenario.Seed
		scenario = bas.DefaultScenario()
		if seed != 0 {
			scenario.Seed = seed
		}
	}
	slice := cfg.Slice
	if slice <= 0 {
		slice = time.Second
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > cfg.Rooms {
		workers = cfg.Rooms
	}

	b := &Building{
		cfg:     cfg,
		slice:   slice,
		Bus:     vnet.NewBus(),
		workers: workers,
		jobs:    make(chan int),
		prof:    cfg.Profiler,
		phRound: cfg.Profiler.HotPhase("building.round"),
		phBoard: cfg.Profiler.HotPhase("building.board_step"),
		phHead:  cfg.Profiler.HotPhase("building.headend"),
		wstats:  make([]workerStat, workers),
	}
	b.Bus.Instrument(cfg.Profiler)
	cfg.Profiler.SetGauge("building.workers", int64(workers))
	b.failoverRound = -1
	// Every room's gateway runs the supervisory watchdog: three missed poll
	// periods of silence and the room degrades to its last-committed
	// setpoint (see bas.Supervision).
	b.supWindow = 3 * cfg.HeadEnd.withDefaults().PollPeriod
	for i := 0; i < cfg.Rooms; i++ {
		room, err := b.deployRoom(i, scenario)
		if err != nil {
			b.Close()
			return nil, err
		}
		b.Rooms = append(b.Rooms, room)
	}
	b.headNode = b.Bus.AddNode("bms", nil)
	b.Head = newHeadEnd(b.Bus, b.headNode, b.Rooms, scenario.Controller.Setpoint, slice, cfg.HeadEnd)
	b.Head.onRoomOK = b.noteRoomOK
	b.Head.onQuarantine = b.noteQuarantine
	if cfg.Standby {
		b.standbyNode = b.Bus.AddNode("bms-standby", nil)
		b.Standby = newStandbyHeadEnd(b.Bus, b.standbyNode, b.headNode, b.Rooms, scenario.Controller.Setpoint, slice, cfg.HeadEnd)
		b.Standby.onRoomOK = b.noteRoomOK
		b.Standby.onQuarantine = b.noteQuarantine
		b.Standby.onFailover = b.noteFailover
		b.Bus.AddTap(func(f vnet.TapFrame) { b.Standby.noteTap(f.From) })
	}
	if cfg.BusFaults != "" {
		plan, err := faultinject.Lookup(cfg.BusFaults)
		if err != nil {
			b.Close()
			return nil, fmt.Errorf("building: bus fault plan: %w", err)
		}
		nodes := map[string]int{"bms": int(b.headNode)}
		if cfg.Standby {
			nodes["bms-standby"] = int(b.standbyNode)
		}
		for _, room := range b.Rooms {
			nodes[room.label] = room.Index
		}
		inj, err := faultinject.NewBusInjector(plan, cfg.Rooms, func(name string) (int, bool) {
			id, ok := nodes[name]
			return id, ok
		}, slice)
		if err != nil {
			b.Close()
			return nil, fmt.Errorf("building: arming bus faults: %w", err)
		}
		b.BusInj = inj
		b.Bus.SetFaultHook(func(from, to vnet.NodeID, port vnet.Port, age int) vnet.BusFault {
			v := inj.Verdict(int(from), int(to), age)
			return vnet.BusFault{Drop: v.Drop, Hold: v.Hold, Dup: v.Dup}
		})
	}
	if cfg.TenantAPI {
		b.attachTenant()
	}
	if cfg.Monitor || cfg.Demote {
		b.busDrifts = make([]int64, cfg.Rooms)
		b.busRefused = make([]int64, cfg.Rooms)
		b.demoted = make([]bool, cfg.Rooms)
		b.Bus.SetDialGuard(b.guardDial)
	}

	for w := 0; w < workers; w++ {
		st := &b.wstats[w]
		if cfg.Profiler.TimelineEnabled() {
			st.track = cfg.Profiler.Track(fmt.Sprintf("building-worker-%02d", w))
		}
		timed := cfg.Profiler != nil
		go func() {
			for i := range b.jobs {
				var label string
				if st.track != nil {
					label = b.Rooms[i].label
				}
				sc := b.phBoard.BeginOn(st.track, label)
				if timed {
					start := time.Now()
					b.Rooms[i].Dep.Machine().RunUntil(b.target)
					atomic.AddInt64(&st.busyNs, int64(time.Since(start)))
				} else {
					b.Rooms[i].Dep.Machine().RunUntil(b.target)
				}
				atomic.AddInt64(&st.jobs, 1)
				sc.End()
				b.wg.Done()
			}
		}()
	}
	return b, nil
}

// StepWallNs is the cumulative host wall-clock the coordinator spent in the
// board-stepping window (job dispatch to barrier) across all rounds so far.
func (b *Building) StepWallNs() int64 { return atomic.LoadInt64(&b.stepWallNs) }

// WorkerStats exports each worker's busy/idle account. Idle is defined
// against the coordinator's stepping window: IdleNs = StepWallNs - BusyNs,
// so for every worker BusyNs + IdleNs == StepWallNs exactly (busy intervals
// nest inside the window). Call between rounds (the coordinator's context),
// not while a Step is in flight.
func (b *Building) WorkerStats() []WorkerStats {
	wall := atomic.LoadInt64(&b.stepWallNs)
	out := make([]WorkerStats, len(b.wstats))
	for w := range b.wstats {
		busy := atomic.LoadInt64(&b.wstats[w].busyNs)
		out[w] = WorkerStats{
			Worker: w,
			Jobs:   atomic.LoadInt64(&b.wstats[w].jobs),
			BusyNs: busy,
			IdleNs: wall - busy,
		}
	}
	return out
}

func (b *Building) deployRoom(i int, scenario bas.ScenarioConfig) (*Room, error) {
	sc := scenario
	sc.Seed = scenario.Seed + int64(i)
	platform := bas.PlatformMinix
	if len(b.cfg.Mix) > 0 {
		platform = b.cfg.Mix[i%len(b.cfg.Mix)]
	}
	secure := i < len(b.cfg.Secure) && b.cfg.Secure[i]
	var key []byte
	if secure {
		key = RoomKey(i)
	}
	tb := bas.NewTestbed(sc)
	dep, err := bas.Deploy(platform, tb, sc, bas.DeployOptions{
		Recovery: b.cfg.Recovery,
		Monitor:  b.cfg.Monitor || b.cfg.Demote,
		BACnet: bas.BACnetOptions{
			Enabled: true, Key: key, DeviceID: uint32(i + 1),
			SupervisionWindow: b.supWindow,
		},
		Profiler: b.cfg.Profiler,
	})
	if err != nil {
		tb.Machine.Shutdown()
		return nil, fmt.Errorf("building: room %d (%s): %w", i, platform, err)
	}
	room := &Room{
		Index:    i,
		Platform: platform,
		Secure:   secure,
		Key:      key,
		DeviceID: uint32(i + 1),
		Testbed:  tb,
		Dep:      dep,
		label:    fmt.Sprintf("room%02d", i),
	}
	room.Node = b.Bus.AddNode(fmt.Sprintf("room%02d", i), tb.Net)
	if room.Node != vnet.NodeID(i) {
		panic("building: room/node numbering out of sync")
	}
	if name, ok := b.cfg.Faults[i]; ok && name != "" {
		plan, err := faultinject.Lookup(name)
		if err != nil {
			tb.Machine.Shutdown()
			return nil, fmt.Errorf("building: room %d fault plan: %w", i, err)
		}
		inj, err := dep.ArmFaults(plan)
		if err != nil {
			tb.Machine.Shutdown()
			return nil, fmt.Errorf("building: room %d arming faults: %w", i, err)
		}
		room.Injector = inj
		room.Plan = name
	}
	return room, nil
}

// guardDial is the building's bus admission policy (vnet.Bus.SetDialGuard).
// The certified dial set follows from the deployment itself: the only
// cross-board connections the building establishes are the head-end BMS
// dialing room gateways on the BACnet port. Anything else — in practice a
// room's board dialing a sibling — is outside the verified inter-board
// access graph. The guard runs at the flush barrier with every board engine
// parked, so the drift event lands on the offending board's log stamped at
// the round deadline: within one round of the dial, deterministically.
func (b *Building) guardDial(from, to vnet.NodeID, port vnet.Port) bool {
	if from == b.headNode && port == bas.BACnetPort {
		return true
	}
	room := int(from)
	if room < 0 || room >= len(b.Rooms) {
		// Unknown originator (no board to attribute to): refuse only under
		// enforcement.
		return !b.cfg.Demote
	}
	b.busDrifts[room]++
	events := b.Rooms[room].Testbed.Machine.Obs().Events()
	events.Emit(obs.SecurityEvent{
		Kind:      obs.EventPolicyDrift,
		Mechanism: obs.MechPolicyMonitor,
		Denied:    b.cfg.Demote,
		Src:       b.Bus.NodeName(from),
		Dst:       b.Bus.NodeName(to),
		Detail:    fmt.Sprintf("uncertified bus dial on port %d", port),
	})
	if !b.cfg.Demote {
		return true
	}
	if !b.demoted[room] {
		b.demoted[room] = true
		// The uncertified dial is the compromise verdict: demote the room's
		// web-origin subject, so its in-graph traffic turns into origin drift
		// on the board monitor from here on.
		if pm := b.Rooms[room].Dep.PolicyMonitor(); pm != nil {
			pm.Demote(bas.NameWebInterface, monitor.OriginUntrusted)
		}
	}
	b.busRefused[room]++
	return false
}

// BusDrifts reports how many uncertified bus dials originated from room i
// (zero when the monitor is off).
func (b *Building) BusDrifts(i int) int64 {
	if i < 0 || i >= len(b.busDrifts) {
		return 0
	}
	return b.busDrifts[i]
}

// BusRefused reports how many of room i's uncertified dials were refused
// under Demote.
func (b *Building) BusRefused(i int) int64 {
	if i < 0 || i >= len(b.busRefused) {
		return 0
	}
	return b.busRefused[i]
}

// RoomDemoted reports whether room i's web subject has been demoted.
func (b *Building) RoomDemoted(i int) bool {
	return i >= 0 && i < len(b.demoted) && b.demoted[i]
}

// noteRoomOK reports a verified supervisory exchange with room i to the bus
// campaign — the recovery probe that closes bus-fault MTTR windows. Runs on
// the coordinator (head-end OnRound context).
func (b *Building) noteRoomOK(room int) {
	if b.BusInj != nil {
		b.BusInj.NoteRoomOK(room, b.target)
	}
}

// noteQuarantine lands the quarantine verdict on the room's own board: the
// head-end judged the room's response path compromised and stopped polling.
func (b *Building) noteQuarantine(room int) {
	b.Rooms[room].Testbed.Machine.Obs().Events().Emit(obs.SecurityEvent{
		Kind:      obs.EventRoomQuarantined,
		Mechanism: obs.MechResilience,
		Denied:    true,
		Src:       b.Bus.NodeName(b.headNode),
		Dst:       b.Rooms[room].label,
		Detail:    "responses repeatedly failed secure-proxy verification; polling stopped",
	})
}

// noteFailover records the standby takeover, closes the headend-crash MTTR,
// and lands the event on every room's board (the whole building changed
// supervisor).
func (b *Building) noteFailover(round int) {
	b.failoverRound = round
	b.failovers++
	if b.BusInj != nil {
		b.BusInj.NoteFailover(b.target)
	}
	detail := fmt.Sprintf("standby head-end took over at round %d", round)
	for _, room := range b.Rooms {
		room.Testbed.Machine.Obs().Events().Emit(obs.SecurityEvent{
			Kind:      obs.EventHeadEndFailover,
			Mechanism: obs.MechResilience,
			Src:       "bms-standby",
			Dst:       "bms",
			Detail:    detail,
		})
	}
}

// emitBusFault lands a fired bus fault on the affected boards: the targeted
// room's, or every room's for whole-bus and infrastructure faults.
func (b *Building) emitBusFault(f faultinject.Fault) {
	detail := f.String()
	emit := func(room *Room) {
		room.Testbed.Machine.Obs().Events().Emit(obs.SecurityEvent{
			Kind:      obs.EventFaultInjected,
			Mechanism: obs.MechResilience,
			Src:       "faultinject",
			Dst:       f.Target,
			Detail:    detail,
		})
	}
	if f.Target != "" && f.Kind != faultinject.KindHeadEndCrash {
		for _, room := range b.Rooms {
			if room.label == f.Target {
				emit(room)
				return
			}
		}
	}
	for _, room := range b.Rooms {
		emit(room)
	}
}

// FailoverRound reports the round the standby took over (-1 if never).
func (b *Building) FailoverRound() int { return b.failoverRound }

// Failovers reports how many head-end takeovers happened.
func (b *Building) Failovers() int { return b.failovers }

// Step advances the whole building by one lockstep round:
//
//  1. every board runs to the round deadline, in parallel across the worker
//     pool (each board's engine is touched by exactly one goroutine, and the
//     WaitGroup barrier orders each round's work against the coordinator);
//  2. the first bus barrier delivers everything the boards queued — room
//     gateway responses, and any on-board attacker's frames;
//  3. the head-end harvests responses, advances its schedule, and queues the
//     next requests;
//  4. the second barrier delivers the head-end's frames, so boards see them
//     when the next round starts.
//
// Nothing in the sequence depends on goroutine scheduling, which is why the
// building's report is byte-identical at any worker count.
func (b *Building) Step() {
	rsc := b.phRound.Begin()
	b.round++
	b.elapsed += b.slice
	b.target = machine.Time(0).Add(b.elapsed)
	if b.BusInj != nil {
		// Boards are parked here, so landing fault events on their logs is
		// coordinator-only work, stamped at the previous round's deadline.
		for _, f := range b.BusInj.BeginRound(b.target) {
			b.emitBusFault(f)
		}
	}
	var stepStart time.Time
	if b.prof != nil {
		stepStart = time.Now()
	}
	b.wg.Add(len(b.Rooms))
	for i := range b.Rooms {
		b.jobs <- i
	}
	b.wg.Wait()
	if b.prof != nil {
		atomic.AddInt64(&b.stepWallNs, int64(time.Since(stepStart)))
	}
	b.Bus.Flush()
	hsc := b.phHead.Begin()
	if b.BusInj == nil || !b.BusInj.HeadEndDown() {
		b.Head.OnRound(b.round, b.elapsed)
	}
	if b.Standby != nil {
		b.Standby.OnRound(b.round, b.elapsed)
	}
	hsc.End()
	b.Bus.Flush()
	if b.tenant != nil {
		// Boards are parked between rounds, so the tier's batch (including
		// setpoint writes stepping a room's machine) is coordinator-only work.
		b.driveTenant()
	}
	rsc.End()
}

// Run advances the building by d (rounded up to whole rounds).
func (b *Building) Run(d time.Duration) {
	rounds := int((d + b.slice - 1) / b.slice)
	for i := 0; i < rounds; i++ {
		b.Step()
	}
}

// Round reports the number of completed rounds.
func (b *Building) Round() int { return b.round }

// Elapsed reports the building's virtual time.
func (b *Building) Elapsed() time.Duration { return b.elapsed }

// Slice reports the round length.
func (b *Building) Slice() time.Duration { return b.slice }

// HeadNode is the bus node the BMS dials from (the attack layer filters bus
// taps by it).
func (b *Building) HeadNode() vnet.NodeID { return b.headNode }

// Close stops the worker pool and tears down every board.
func (b *Building) Close() {
	if b.closed {
		return
	}
	b.closed = true
	close(b.jobs)
	for _, room := range b.Rooms {
		if room != nil {
			room.Testbed.Machine.Shutdown()
		}
	}
}
