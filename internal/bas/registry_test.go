package bas

import (
	"strings"
	"testing"
	"time"
)

// TestDeployRegistryBootsEveryPlatform drives every registered platform
// through the platform-neutral Deployment interface alone: boot, run,
// report, liveness — no concrete types.
func TestDeployRegistryBootsEveryPlatform(t *testing.T) {
	for _, p := range KnownPlatforms() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := DefaultScenario()
			tb := NewTestbed(cfg)
			defer tb.Machine.Shutdown()
			dep, err := Deploy(p, tb, cfg, DeployOptions{})
			if err != nil {
				t.Fatalf("Deploy(%s): %v", p, err)
			}
			if dep.Platform() != p {
				t.Errorf("Platform() = %q, want %q", dep.Platform(), p)
			}
			if dep.Machine() != tb.Machine {
				t.Error("Machine() is not the testbed's board")
			}
			dep.Run(10 * time.Minute)
			if !dep.ControllerAlive() {
				t.Error("controller dead after a quiet 10-minute run")
			}
			rep := dep.Report(false)
			if rep.Platform != string(p) {
				t.Errorf("report platform %q, want %q", rep.Platform, p)
			}
			if len(rep.Counters) == 0 {
				t.Error("report has no counters after a run")
			}
		})
	}
}

// TestDeployUnknownPlatform pins the error contract: the message names the
// registered platforms so a typo is self-diagnosing.
func TestDeployUnknownPlatform(t *testing.T) {
	cfg := DefaultScenario()
	tb := NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	_, err := Deploy("plan9", tb, cfg, DeployOptions{})
	if err == nil {
		t.Fatal("unknown platform deployed")
	}
	for _, p := range KnownPlatforms() {
		if !strings.Contains(err.Error(), string(p)) {
			t.Errorf("error %q does not name known platform %s", err, p)
		}
	}
}

// TestWrappersMatchRegistry: the per-platform Deploy* wrappers and the
// registry produce deployments of the same concrete type, so legacy callers
// and registry callers observe identical behaviour.
func TestWrappersMatchRegistry(t *testing.T) {
	cfg := DefaultScenario()

	tb1 := NewTestbed(cfg)
	defer tb1.Machine.Shutdown()
	if _, err := DeployMinix(tb1, cfg, MinixOptions{}); err != nil {
		t.Fatalf("DeployMinix: %v", err)
	}

	tb2 := NewTestbed(cfg)
	defer tb2.Machine.Shutdown()
	dep, err := Deploy(PlatformMinix, tb2, cfg, DeployOptions{})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if _, ok := dep.(*MinixDeployment); !ok {
		t.Errorf("registry returned %T, want *MinixDeployment", dep)
	}

	tb3 := NewTestbed(cfg)
	defer tb3.Machine.Shutdown()
	depV, err := Deploy(PlatformMinixVanilla, tb3, cfg, DeployOptions{})
	if err != nil {
		t.Fatalf("Deploy(vanilla): %v", err)
	}
	if depV.Platform() != PlatformMinixVanilla {
		t.Errorf("vanilla deployment reports platform %q", depV.Platform())
	}
}

// TestHardenedLinuxGateRuns: the hardened deployment passes the pre-deploy
// gate (the unique-account DAC model satisfies the contract statically),
// and SkipPolicyCheck is accepted on the Linux options too — the hoisted
// field has identical semantics on all three platforms.
func TestHardenedLinuxGateRuns(t *testing.T) {
	cfg := DefaultScenario()

	tb := NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	dep, err := Deploy(PlatformLinuxHardened, tb, cfg, DeployOptions{})
	if err != nil {
		t.Fatalf("hardened Linux failed the gate: %v", err)
	}
	if dep.Platform() != PlatformLinuxHardened {
		t.Errorf("hardened deployment reports platform %q", dep.Platform())
	}

	tb2 := NewTestbed(cfg)
	defer tb2.Machine.Shutdown()
	if _, err := Deploy(PlatformLinuxHardened, tb2, cfg, DeployOptions{SkipPolicyCheck: true}); err != nil {
		t.Fatalf("hardened Linux with SkipPolicyCheck: %v", err)
	}
}
