package bas

import (
	"fmt"
	"strconv"

	"mkbas/internal/tenantapi"
)

// NameTenantGateway is the tenant API gateway's subject name, shared between
// the certified board policies (core.ScenarioPolicyWithTenantGateway), the
// monitor graphs, and the tenant tier's own access graph.
const NameTenantGateway = tenantapi.SubjectGateway

// TestbedBackend adapts a deployed testbed to the tenant gateway's Backend:
// room reads come straight from the plant (the head-end's cached view), and
// setpoint writes ride the real web-interface HTTP+IPC path, so every tenant
// write a compromised credential lands is mediated — and adjudicated — by
// the platform under test, exactly like an operator's.
//
// Harness-thread only: WriteSetpoint steps the virtual machine through
// Testbed.HTTPPostSetpoint and must never be called from a clock callback.
type TestbedBackend struct {
	tb            *Testbed
	writes        int64
	writeFailures int64
}

// NewTestbedBackend fronts tb's single room.
func NewTestbedBackend(tb *Testbed) *TestbedBackend { return &TestbedBackend{tb: tb} }

// Rooms is 1: a testbed is one board heating one room.
func (b *TestbedBackend) Rooms() int { return 1 }

// Writes reports setpoint writes the board accepted (HTTP 200).
func (b *TestbedBackend) Writes() int64 { return b.writes }

// WriteFailures reports setpoint writes the board refused or that failed in
// transport.
func (b *TestbedBackend) WriteFailures() int64 { return b.writeFailures }

// ReadRoom appends the plant's live state.
func (b *TestbedBackend) ReadRoom(_ int, resp *tenantapi.Response) {
	r := b.tb.Room
	resp.Body = append(resp.Body, `,"temp_c":`...)
	resp.Body = strconv.AppendFloat(resp.Body, r.Temperature(), 'f', 2, 64)
	resp.Body = append(resp.Body, `,"heater_on":`...)
	resp.Body = strconv.AppendBool(resp.Body, r.HeaterOn())
	resp.Body = append(resp.Body, `,"alarm_on":`...)
	resp.Body = strconv.AppendBool(resp.Body, r.AlarmOn())
}

// WriteSetpoint posts the (gateway-validated) setpoint through the web
// interface's real HTTP endpoint.
func (b *TestbedBackend) WriteSetpoint(_ int, value float64) {
	status, _, err := b.tb.HTTPPostSetpoint(strconv.FormatFloat(value, 'f', 2, 64))
	if err != nil || status != 200 {
		b.writeFailures++
		return
	}
	b.writes++
}

// ReadDiagnostics appends the board-write tallies.
func (b *TestbedBackend) ReadDiagnostics(resp *tenantapi.Response) {
	resp.Body = append(resp.Body, `,"board_writes":`...)
	resp.Body = strconv.AppendInt(resp.Body, b.writes, 10)
	resp.Body = append(resp.Body, `,"board_write_failures":`...)
	resp.Body = strconv.AppendInt(resp.Body, b.writeFailures, 10)
}

// TenantTier couples a tenant API gateway to the deployed board it fronts.
type TenantTier struct {
	Gateway   *tenantapi.Gateway
	Directory *tenantapi.Directory
	Backend   *TestbedBackend
}

// AttachTenantAPI fronts a deployed testbed with the tenant API tier. The
// gateway shares the board's virtual clock, metric registry, and event log,
// so per-route counters, latency histograms, and auth-denial events surface
// through Deployment.Report beside the kernel's own mediation events.
func AttachTenantAPI(tb *Testbed, dir tenantapi.DirectoryConfig, cfg tenantapi.GatewayConfig) *TenantTier {
	board := tb.Machine.Obs()
	if cfg.Now == nil {
		cfg.Now = board.Now
	}
	if cfg.Registry == nil {
		cfg.Registry = board.Metrics()
	}
	if cfg.Events == nil {
		cfg.Events = board.Events()
	}
	d := tenantapi.NewDirectory(dir)
	be := NewTestbedBackend(tb)
	gw := tenantapi.NewGateway(d, be, cfg)
	return &TenantTier{Gateway: gw, Directory: d, Backend: be}
}

// Serve drives one request through the tier from the harness thread and
// formats nothing: callers read the typed outcome and reused body.
func (t *TenantTier) Serve(req *tenantapi.Request, resp *tenantapi.Response) tenantapi.Outcome {
	return t.Gateway.Handle(req, resp)
}

// String summarises the tier for harness traces.
func (t *TenantTier) String() string {
	return fmt.Sprintf("tenant-api tier: %d principals, %d served, %d board writes",
		t.Directory.Len(), t.Gateway.Served(), t.Backend.Writes())
}
