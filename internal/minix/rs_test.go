package minix

import (
	"testing"
	"time"

	"mkbas/internal/obs"
)

// crashyImage registers a Restart-flagged driver that sleeps forever; tests
// kill it through the fault-injection hook.
func crashyImage() Image {
	return Image{
		Name:     "crashy",
		Priority: 5,
		Restart:  true,
		Body: func(api *API) {
			for {
				api.Sleep(time.Hour)
			}
		},
	}
}

// countEvents tallies recovery events by kind for one destination image.
func countEvents(events []obs.SecurityEvent, kind obs.EventKind, dst string) int {
	n := 0
	for _, e := range events {
		if e.Kind == kind && e.Mechanism == obs.MechRecovery && e.Dst == dst {
			n++
		}
	}
	return n
}

// TestRSRestartEmitsEventAndPacesBackoff pins the reincarnation contract: a
// killed Restart-flagged driver is respawned after the exponential backoff,
// and every restart emits an obs recovery event.
func TestRSRestartEmitsEventAndPacesBackoff(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	k.RegisterImage(crashyImage())
	spawnOrFatal(t, k, "crashy", acidA)
	m.Run(time.Second)

	if err := k.CrashProcess("crashy"); err != nil {
		t.Fatalf("CrashProcess: %v", err)
	}
	// The first respawn waits rsBackoffBase; well before that the image must
	// still be down.
	m.Run(rsBackoffBase / 2)
	if _, err := k.EndpointOf("crashy"); err == nil {
		t.Fatal("crashy respawned before the backoff elapsed")
	}
	m.Run(rsBackoffBase)
	if _, err := k.EndpointOf("crashy"); err != nil {
		t.Fatalf("crashy not respawned after backoff: %v", err)
	}
	if got := k.RS().Restarts("crashy"); got != 1 {
		t.Errorf("Restarts = %d, want 1", got)
	}
	if got := countEvents(m.Obs().Events().Events(), obs.EventRestart, "crashy"); got != 1 {
		t.Errorf("restart events = %d, want 1", got)
	}
}

// TestRSGiveUpAfterBudgetExhausted pins the crash-loop cap: after
// maxRestartsPerImage rapid crashes RS stops respawning and emits a give-up
// event instead.
func TestRSGiveUpAfterBudgetExhausted(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	k.RegisterImage(crashyImage())
	spawnOrFatal(t, k, "crashy", acidA)
	m.Run(time.Second)

	for i := 0; i < maxRestartsPerImage+1; i++ {
		if err := k.CrashProcess("crashy"); err != nil {
			t.Fatalf("crash %d: %v", i, err)
		}
		// Cover the worst-case capped backoff so each respawn lands before
		// the next kill.
		m.Run(rsBackoffMax + time.Second)
	}
	if got := k.RS().GiveUps(); got != 1 {
		t.Errorf("GiveUps = %d, want 1", got)
	}
	if got := k.RS().TotalRestarts(); got != maxRestartsPerImage {
		t.Errorf("TotalRestarts = %d, want %d", got, maxRestartsPerImage)
	}
	if _, err := k.EndpointOf("crashy"); err == nil {
		t.Error("crashy alive after give-up")
	}
	events := m.Obs().Events().Events()
	if got := countEvents(events, obs.EventRestartGiveUp, "crashy"); got != 1 {
		t.Errorf("give-up events = %d, want 1", got)
	}
	if got := countEvents(events, obs.EventRestart, "crashy"); got != maxRestartsPerImage {
		t.Errorf("restart events = %d, want %d", got, maxRestartsPerImage)
	}
}

// TestRSBudgetDecaysAfterStablePeriod pins the budget decay: a driver that
// crashed long ago gets a fresh restart budget, so the cap bounds crash
// loops, not lifetime restarts.
func TestRSBudgetDecaysAfterStablePeriod(t *testing.T) {
	m, k := testBoard(t, testPolicy(), Config{})
	k.RegisterImage(crashyImage())
	spawnOrFatal(t, k, "crashy", acidA)
	m.Run(time.Second)

	// Burn most of the budget with a rapid crash loop.
	for i := 0; i < maxRestartsPerImage-1; i++ {
		if err := k.CrashProcess("crashy"); err != nil {
			t.Fatalf("crash %d: %v", i, err)
		}
		m.Run(rsBackoffMax + time.Second)
	}
	if got := k.RS().Restarts("crashy"); got != maxRestartsPerImage-1 {
		t.Fatalf("Restarts = %d, want %d", got, maxRestartsPerImage-1)
	}

	// A sustained stable period forgives the past crashes.
	m.Run(rsStablePeriod + time.Minute)
	if err := k.CrashProcess("crashy"); err != nil {
		t.Fatalf("post-stable crash: %v", err)
	}
	m.Run(rsBackoffMax + time.Second)
	if got := k.RS().Restarts("crashy"); got != 1 {
		t.Errorf("Restarts after stable period = %d, want 1 (budget decayed)", got)
	}
	if got := k.RS().GiveUps(); got != 0 {
		t.Errorf("GiveUps = %d, want 0", got)
	}
	if _, err := k.EndpointOf("crashy"); err != nil {
		t.Errorf("crashy not respawned after decayed budget: %v", err)
	}
}
