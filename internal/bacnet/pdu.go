// Package bacnet implements a miniature BACnet-inspired building-automation
// protocol and the "secure proxy" of the paper's Fig. 1 framework.
//
// The paper's introduction motivates the platform work with the state of the
// field bus: "the security of BACnet, one of the most popular communication
// protocols in BAS, is vulnerable to diverse, common network-based attacks
// such as denial-of-service (DoS) attacks, replay attacks, spoofing attacks".
// This package makes that concrete:
//
//   - the legacy protocol (PDU + Server) has, by faithful design, no
//     authentication and no freshness: anyone who can reach the port can
//     read and write properties, and captured frames replay verbatim;
//   - the secure proxy (Proxy + SecureClient) wraps the same legacy server
//     the way Fig. 1 interposes "Secure Proxy" boxes in front of legacy
//     devices: HMAC-SHA256 authentication with a shared device key and a
//     strictly increasing nonce per client defeat spoofing and replay
//     without modifying the legacy device.
//
// Framing is length-prefixed over a byte stream (the paper's BAS network is
// simulated by internal/vnet); real BACnet/IP rides UDP, which changes
// nothing about the attacks or the defence.
package bacnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// PDUType is the service choice.
type PDUType uint8

// Services, a minimal subset of BACnet's confirmed services.
const (
	// ReadProperty asks for a property's present value.
	ReadProperty PDUType = iota + 1
	// WriteProperty sets a property's present value.
	WriteProperty
	// Ack answers a successful request.
	Ack
	// ErrorPDU answers a failed request.
	ErrorPDU
)

// String names the service.
func (t PDUType) String() string {
	switch t {
	case ReadProperty:
		return "ReadProperty"
	case WriteProperty:
		return "WriteProperty"
	case Ack:
		return "Ack"
	case ErrorPDU:
		return "Error"
	default:
		return fmt.Sprintf("PDUType(%d)", uint8(t))
	}
}

// ObjectID addresses a point on the device, like a BACnet object identifier.
type ObjectID uint16

// The scenario device's object map.
const (
	// ObjTemperature is the room temperature (analog input, read-only).
	ObjTemperature ObjectID = 0x0100
	// ObjSetpoint is the desired temperature (analog value, writable).
	ObjSetpoint ObjectID = 0x0200
	// ObjHeater is the heater state (binary output; writable on legacy
	// devices — precisely the exposure).
	ObjHeater ObjectID = 0x0300
	// ObjAlarm is the alarm state (binary output).
	ObjAlarm ObjectID = 0x0301
)

// PDU is one protocol data unit.
type PDU struct {
	Type     PDUType
	InvokeID uint8
	Device   uint32
	Object   ObjectID
	Value    float64
	// Code carries the error code on ErrorPDU.
	Code uint8
}

// Error codes.
const (
	CodeUnknownObject uint8 = iota + 1
	CodeWriteDenied
	CodeBadRequest
)

// pduSize is the fixed encoding size.
const pduSize = 1 + 1 + 4 + 2 + 8 + 1

// Protocol errors.
var (
	ErrShortFrame = errors.New("bacnet: short frame")
	ErrBadFrame   = errors.New("bacnet: malformed frame")
)

// Encode renders the PDU.
func (p PDU) Encode() []byte {
	return p.AppendEncode(nil)
}

// AppendEncode appends the encoded PDU to buf and returns the extended
// slice. Hot paths (the head-end poller, gateway reply loops) pass a reused
// scratch buffer so encoding allocates nothing.
func (p PDU) AppendEncode(buf []byte) []byte {
	var tmp [pduSize]byte
	tmp[0] = byte(p.Type)
	tmp[1] = p.InvokeID
	binary.BigEndian.PutUint32(tmp[2:], p.Device)
	binary.BigEndian.PutUint16(tmp[6:], uint16(p.Object))
	binary.BigEndian.PutUint64(tmp[8:], math.Float64bits(p.Value))
	tmp[16] = p.Code
	return append(buf, tmp[:]...)
}

// DecodePDU parses one PDU.
func DecodePDU(data []byte) (PDU, error) {
	if len(data) < pduSize {
		return PDU{}, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(data))
	}
	p := PDU{
		Type:     PDUType(data[0]),
		InvokeID: data[1],
		Device:   binary.BigEndian.Uint32(data[2:]),
		Object:   ObjectID(binary.BigEndian.Uint16(data[6:])),
		Value:    math.Float64frombits(binary.BigEndian.Uint64(data[8:])),
		Code:     data[16],
	}
	if p.Type < ReadProperty || p.Type > ErrorPDU {
		return PDU{}, fmt.Errorf("%w: type %d", ErrBadFrame, data[0])
	}
	return p, nil
}

// Frame length-prefixes a payload for stream transports.
func Frame(payload []byte) []byte {
	return AppendFrame(nil, payload)
}

// AppendFrame appends the length-prefixed payload to dst and returns the
// extended slice — the allocation-free form of Frame for reused buffers.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Deframer accumulates stream bytes and yields complete frames.
type Deframer struct {
	buf []byte
}

// Feed appends stream bytes. Ownership of data passes to the deframer: when
// its buffer is empty it adopts the slice without copying (the transports
// here — vnet reads, bus inboxes — hand over their buffers outright), so the
// caller must not reuse or modify data afterwards.
func (d *Deframer) Feed(data []byte) {
	if len(d.buf) == 0 {
		d.buf = data
		return
	}
	d.buf = append(d.buf, data...)
}

// Next returns the next complete frame payload, or nil when more bytes are
// needed.
//
// The returned slice aliases the deframer's internal buffer — valid until
// discarded, but callers must not modify it and should parse rather than
// retain it. (The deframer only moves forward, and later Feeds append past
// the returned region, so the bytes stay stable without a per-frame copy.)
func (d *Deframer) Next() []byte {
	if len(d.buf) < 2 {
		return nil
	}
	n := int(binary.BigEndian.Uint16(d.buf))
	if len(d.buf) < 2+n {
		return nil
	}
	frame := d.buf[2 : 2+n : 2+n]
	d.buf = d.buf[2+n:]
	return frame
}
