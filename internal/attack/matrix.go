package attack

import (
	"fmt"
	"strings"
)

// RunMatrix executes every (platform, action) pair under one attacker model
// and returns the reports in deterministic order. It regenerates the
// Section IV-D comparison (experiment E1).
func RunMatrix(platforms []Platform, actions []Action, root bool) ([]*Report, error) {
	var out []*Report
	for _, platform := range platforms {
		for _, action := range actions {
			report, err := Execute(Spec{Platform: platform, Action: action, Root: root})
			if err != nil {
				return nil, fmt.Errorf("attack: %s/%s: %w", platform, action, err)
			}
			out = append(out, report)
		}
	}
	return out, nil
}

// FormatMatrix renders reports as the outcome table: one row per action, one
// column per platform.
func FormatMatrix(reports []*Report) string {
	var platforms []Platform
	var actions []Action
	cell := make(map[Platform]map[Action]*Report)
	for _, r := range reports {
		if _, ok := cell[r.Spec.Platform]; !ok {
			cell[r.Spec.Platform] = make(map[Action]*Report)
			platforms = append(platforms, r.Spec.Platform)
		}
		if _, ok := cell[r.Spec.Platform][r.Spec.Action]; !ok {
			cell[r.Spec.Platform][r.Spec.Action] = r
		}
		seen := false
		for _, a := range actions {
			if a == r.Spec.Action {
				seen = true
			}
		}
		if !seen {
			actions = append(actions, r.Spec.Action)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-20s", "attack \\ platform")
	for _, p := range platforms {
		fmt.Fprintf(&b, " | %-20s", p)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 20+len(platforms)*23))
	b.WriteByte('\n')
	for _, a := range actions {
		fmt.Fprintf(&b, "%-20s", a)
		for _, p := range platforms {
			r := cell[p][a]
			if r == nil {
				fmt.Fprintf(&b, " | %-20s", "-")
				continue
			}
			fmt.Fprintf(&b, " | %-20s", r.Verdict())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summarize renders one report in a few lines for experiment logs.
func Summarize(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s (root=%v): %s\n", r.Spec.Action, r.Spec.Platform, r.Spec.Root, r.Verdict())
	fmt.Fprintf(&b, "  operations: %d attempted, %d accepted, %d denied\n", r.Attempts, r.Successes, r.Denials)
	fmt.Fprintf(&b, "  controller alive: %v, safety violations: %d\n", r.ControllerAlive, len(r.Violations))
	if len(r.SecurityEvents) > 0 {
		fmt.Fprintf(&b, "  mediation: %d security events, denied by %s\n", len(r.SecurityEvents), r.BlockedBy())
	}
	max := len(r.Notes)
	if max > 3 {
		max = 3
	}
	for _, note := range r.Notes[:max] {
		fmt.Fprintf(&b, "  note: %s\n", note)
	}
	for i, v := range r.Violations {
		if i >= 3 {
			fmt.Fprintf(&b, "  ... %d more violations\n", len(r.Violations)-3)
			break
		}
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	return b.String()
}
