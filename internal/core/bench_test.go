package core

import "testing"

func BenchmarkMatrixAllows(b *testing.B) {
	m := ScenarioPolicy().IPC
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Allows(ACIDWebInterface, ACIDTempControl, MsgSetpointUpdate)
		m.Allows(ACIDWebInterface, ACIDHeaterAct, MsgHeaterCmd)
	}
}

func BenchmarkQuotaLedgerCharge(b *testing.B) {
	p := NewSyscallPolicy().GrantQuota(1, SysFork, QuotaUnlimited).Seal()
	l := NewQuotaLedger(p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := l.Charge(1, SysFork); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixBuildScenario(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScenarioPolicy()
	}
}
