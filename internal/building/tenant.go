package building

import (
	"strconv"

	"mkbas/internal/obs"
	"mkbas/internal/tenantapi"
)

// The building-scale tenant API tier: one gateway fronting the whole fleet,
// the occupant-facing counterpart of the head-end BMS. Requests arrive in
// deterministic per-round batches at the round barrier (every board engine
// parked, coordinator context), so an api=on building remains byte-identical
// at any worker count. Reads return room ground truth; authorized setpoint
// writes go through the target room's real web interface — the same HTTP
// endpoint an operator uses — so every write is still mediated by that
// room's platform.

// tenantSeed fixes the building tenant tier's credential and traffic
// stream; building experiments must replay bit-for-bit.
const tenantSeed = 0xB16AB1

// tenantPerRound is the per-round request batch the driver issues.
const tenantPerRound = 8

// fleetBackend implements tenantapi.Backend over every room in the building.
type fleetBackend struct {
	b      *Building
	writes int64
}

// Rooms is the building's room count.
func (k *fleetBackend) Rooms() int { return len(k.b.Rooms) }

// ReadRoom appends the target room's live plant state.
func (k *fleetBackend) ReadRoom(room int, resp *tenantapi.Response) {
	r := k.b.Rooms[room].Testbed.Room
	resp.Body = append(resp.Body, `,"temp_c":`...)
	resp.Body = strconv.AppendFloat(resp.Body, r.Temperature(), 'f', 2, 64)
	resp.Body = append(resp.Body, `,"heater_on":`...)
	resp.Body = strconv.AppendBool(resp.Body, r.HeaterOn())
}

// WriteSetpoint posts the gateway-validated setpoint through the target
// room's web interface. Harness-context only: it steps that room's machine.
func (k *fleetBackend) WriteSetpoint(room int, value float64) {
	tb := k.b.Rooms[room].Testbed
	status, _, err := tb.HTTPPostSetpoint(strconv.FormatFloat(value, 'f', 2, 64))
	if err == nil && status == 200 {
		k.writes++
	}
}

// ReadDiagnostics appends the fleet-level write tally and round counter.
func (k *fleetBackend) ReadDiagnostics(resp *tenantapi.Response) {
	resp.Body = append(resp.Body, `,"building_writes":`...)
	resp.Body = strconv.AppendInt(resp.Body, k.writes, 10)
	resp.Body = append(resp.Body, `,"round":`...)
	resp.Body = strconv.AppendInt(resp.Body, int64(k.b.round), 10)
}

// tenantTier is the building's attached API tier plus its private obs
// surfaces (the tier is building-level equipment, not any one board's).
type tenantTier struct {
	gw       *tenantapi.Gateway
	dir      *tenantapi.Directory
	backend  *fleetBackend
	reg      *obs.Registry
	events   *obs.EventLog
	rngState uint64
	requests int64
	outcomes map[string]int64
}

// attachTenant wires the tier during New (Config.TenantAPI).
func (b *Building) attachTenant() {
	reg := obs.NewRegistry()
	now := func() obs.Time { return obs.Time(b.elapsed) }
	events := obs.NewEventLog(now, 256)
	dir := tenantapi.NewDirectory(tenantapi.DirectoryConfig{Seed: tenantSeed, Rooms: len(b.Rooms)})
	backend := &fleetBackend{b: b}
	gw := tenantapi.NewGateway(dir, backend, tenantapi.GatewayConfig{
		Now:      now,
		Registry: reg,
		Events:   events,
		Seed:     tenantSeed,
	})
	b.tenant = &tenantTier{
		gw: gw, dir: dir, backend: backend, reg: reg, events: events,
		rngState: tenantSeed,
		outcomes: make(map[string]int64),
	}
}

func (t *tenantTier) next() uint64 {
	t.rngState += 0x9e3779b97f4a7c15
	z := t.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// driveTenant issues the round's occupant/manager/vendor batch. Runs on the
// coordinator at the round barrier.
func (b *Building) driveTenant() {
	t := b.tenant
	rooms := len(b.Rooms)
	var req tenantapi.Request
	var resp tenantapi.Response
	for k := 0; k < tenantPerRound; k++ {
		p := t.dir.At(int(t.next() % uint64(t.dir.Len())))
		room := p.Room
		if room < 0 { // building-scoped managers and vendors
			room = int(t.next() % uint64(rooms))
		}
		req = tenantapi.Request{Token: p.Token, Route: tenantapi.RouteStatus, Room: room}
		switch t.next() % 10 {
		case 0:
			req.Route = tenantapi.RouteSetpoint
			req.Room = int(t.next() % uint64(rooms))
			req.Value = 20 + float64(t.next()%60)/10
		case 1:
			req.Route = tenantapi.RouteDiagnostics
		case 2:
			req.Route = tenantapi.RouteWhoAmI
		case 3:
			req.Token = "tok-ffffffffffffffff" // stale credential noise
		}
		outc := t.gw.Handle(&req, &resp)
		t.requests++
		t.outcomes[outc.String()]++
	}
}

// APIReport is the building report's tenant-tier block.
type APIReport struct {
	Principals    int              `json:"principals"`
	Requests      int64            `json:"requests"`
	Served        int64            `json:"served"`
	Outcomes      map[string]int64 `json:"outcomes"`
	BuildingWrite int64            `json:"building_writes"`
}

// apiReport snapshots the tier (nil when Config.TenantAPI is off) and
// returns the tier's obs surfaces for the building-wide merge.
func (b *Building) apiReport() (*APIReport, []obs.CounterSnap, []obs.HistogramSnap, []obs.EventTotal, []obs.Mechanism) {
	t := b.tenant
	if t == nil {
		return nil, nil, nil, nil, nil
	}
	rep := &APIReport{
		Principals:    t.dir.Len(),
		Requests:      t.requests,
		Served:        t.gw.Served(),
		Outcomes:      make(map[string]int64, len(t.outcomes)),
		BuildingWrite: t.backend.writes,
	}
	for k, v := range t.outcomes {
		rep.Outcomes[k] = v
	}
	return rep, t.reg.Counters(), t.reg.Histograms(), t.events.Totals(), t.events.Mechanisms()
}
