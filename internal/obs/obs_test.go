package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock is a settable virtual clock for tests.
type fakeClock struct{ t Time }

func (c *fakeClock) now() Time { return c.t }

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	c.Add(-1) // negative adds are dropped: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x_total") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var l *EventLog
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	tr.Emit("a", "b", "x", OutcomeDelivered)
	tr.End(tr.Begin("a", "b", "x"), OutcomeDelivered)
	l.Emit(SecurityEvent{Kind: EventKill})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || l.Total() != 0 {
		t.Fatal("nil receivers must observe nothing")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []time.Duration{10, 100})
	// Upper edges are inclusive; past the last bound goes to +Inf.
	h.Observe(10)
	h.Observe(11)
	h.Observe(100)
	h.Observe(101)
	h.Observe(0)
	snap := r.Histograms()[0]
	if snap.Count != 5 || snap.SumNanos != 10+11+100+101 {
		t.Fatalf("count=%d sum=%d", snap.Count, snap.SumNanos)
	}
	want := []BucketSnap{{UpperNanos: 10, Count: 2}, {UpperNanos: 100, Count: 2}, {UpperNanos: 0, Count: 1}}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", snap.Buckets, want)
	}
	for i := range want {
		if snap.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, snap.Buckets[i], want[i])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns", []time.Duration{100, 200, 400})
	// Empty and nil histograms report zero.
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %s, want 0", h.Quantile(0.5))
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be 0")
	}

	// 100 observations spread uniformly through the (0,100] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i + 1))
	}
	// Single-bucket interpolation: rank q*100 of 100 counts in a 0..100ns
	// bucket lands at q*100 ns exactly.
	if got := h.Quantile(0.50); got != 50 {
		t.Errorf("p50 = %s, want 50ns", got)
	}
	if got := h.Quantile(0.95); got != 95 {
		t.Errorf("p95 = %s, want 95ns", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 = %s, want 100ns (bucket upper edge)", got)
	}

	// Push 100 more into (200,400]: p50 stays in bucket one, p95 moves.
	for i := 0; i < 100; i++ {
		h.Observe(300)
	}
	// rank(0.95) = 190 of 200; bucket (200,400] holds ranks 101..200, so
	// frac = (190-100)/100 = 0.9 → 200 + 0.9*200 = 380ns.
	if got := h.Quantile(0.95); got != 380 {
		t.Errorf("p95 after skew = %s, want 380ns", got)
	}
	if got := h.Quantile(0.25); got != 50 {
		t.Errorf("p25 = %s, want 50ns", got)
	}

	// +Inf observations clamp to the last finite bound.
	h2 := r.Histogram("inf_ns", []time.Duration{10})
	h2.Observe(1000)
	if got := h2.Quantile(0.99); got != 10 {
		t.Errorf("+Inf-bucket quantile = %s, want clamp to 10ns", got)
	}

	// Snapshot carries the interpolated percentiles.
	for _, snap := range r.Histograms() {
		if snap.Name != "lat_ns" {
			continue
		}
		if snap.P50Ns != 100 || snap.P95Ns != 380 {
			t.Errorf("snap p50=%d p95=%d, want 100/380", snap.P50Ns, snap.P95Ns)
		}
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds must panic at registration")
		}
	}()
	NewRegistry().Histogram("bad", []time.Duration{5, 5})
}

func TestSpanLifecycleAndOutcomes(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now, 8)
	outer := tr.Begin("web", "pm", "sendrec mt4")
	clk.t = 10
	inner := tr.Begin("pm", "kernel", "kSpawn")
	clk.t = 20
	if s, ok := tr.End(inner, OutcomeDelivered); !ok || s.Start != 10 || s.End != 20 {
		t.Fatalf("inner = %+v ok=%v", s, ok)
	}
	clk.t = 30
	if s, ok := tr.End(outer, OutcomeACMDenied); !ok || s.Duration() != 30 {
		t.Fatalf("outer = %+v ok=%v", s, ok)
	}
	if _, ok := tr.End(outer, OutcomeDelivered); ok {
		t.Fatal("double End must fail")
	}
	if _, ok := tr.End(0, OutcomeDelivered); ok {
		t.Fatal("zero id must fail")
	}
	tr.Emit("x", "y", "mq_open", OutcomeDACDenied)
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("completed spans = %d, want 3", len(spans))
	}
	// Sorted by start time: outer (0), inner (10), emit (30).
	if spans[0].Label != "sendrec mt4" || spans[1].Label != "kSpawn" || spans[2].Label != "mq_open" {
		t.Fatalf("span order wrong: %+v", spans)
	}
	byOutcome := tr.ByOutcome()
	got := map[Outcome]int64{}
	for _, oc := range byOutcome {
		got[oc.Outcome] = oc.Count
	}
	if got[OutcomeDelivered] != 1 || got[OutcomeACMDenied] != 1 || got[OutcomeDACDenied] != 1 {
		t.Fatalf("outcome counts wrong: %+v", byOutcome)
	}
}

func TestSpanRingEviction(t *testing.T) {
	clk := &fakeClock{}
	tr := NewTracer(clk.now, 2)
	for i := 0; i < 5; i++ {
		clk.t = Time(i)
		tr.Emit("a", "b", "x", OutcomeDelivered)
	}
	if tr.Completed() != 5 || tr.Dropped() != 3 {
		t.Fatalf("completed=%d dropped=%d", tr.Completed(), tr.Dropped())
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Start != 3 || spans[1].Start != 4 {
		t.Fatalf("ring should keep the newest spans: %+v", spans)
	}
}

func TestEventLogTotalsAndSubscribe(t *testing.T) {
	clk := &fakeClock{t: 42}
	l := NewEventLog(clk.now, 16)
	l.SetPlatform("minix")
	var seen []SecurityEvent
	cancel := l.Subscribe(func(e SecurityEvent) { seen = append(seen, e) })
	l.Emit(SecurityEvent{Kind: EventIPCDenied, Mechanism: MechACM, Denied: true, Src: "web", Dst: "temp"})
	l.Emit(SecurityEvent{Kind: EventIPCDenied, Mechanism: MechACM, Denied: true, Src: "web", Dst: "heater"})
	l.Emit(SecurityEvent{Kind: EventKill, Mechanism: MechSyscallMask, Src: "pm", Dst: "web"})
	cancel()
	l.Emit(SecurityEvent{Kind: EventKillDenied, Mechanism: MechKernel, Denied: true})

	if len(seen) != 3 {
		t.Fatalf("subscriber saw %d events, want 3 (cancel must stop delivery)", len(seen))
	}
	if seen[0].At != 42 || seen[0].Platform != "minix" {
		t.Fatalf("event not stamped: %+v", seen[0])
	}
	if l.Total() != 4 || l.DeniedTotal() != 3 {
		t.Fatalf("total=%d denied=%d", l.Total(), l.DeniedTotal())
	}
	mechs := l.Mechanisms()
	if len(mechs) != 2 || mechs[0] != MechACM || mechs[1] != MechKernel {
		t.Fatalf("denying mechanisms = %v", mechs)
	}
	var acmDenied *EventTotal
	for i, tot := range l.Totals() {
		if tot.Kind == EventIPCDenied && tot.Mechanism == MechACM && tot.Denied {
			acmDenied = &l.Totals()[i]
		}
	}
	if acmDenied == nil || acmDenied.Count != 2 {
		t.Fatalf("acm ipc-denied total wrong: %+v", l.Totals())
	}
}

func TestEventLogRingRetention(t *testing.T) {
	clk := &fakeClock{}
	l := NewEventLog(clk.now, 2)
	for i := 0; i < 4; i++ {
		clk.t = Time(i)
		l.Emit(SecurityEvent{Kind: EventCapFault, Mechanism: MechCapability, Denied: true})
	}
	evs := l.Events()
	if l.Total() != 4 || l.Dropped() != 2 || len(evs) != 2 {
		t.Fatalf("total=%d dropped=%d retained=%d", l.Total(), l.Dropped(), len(evs))
	}
	if evs[0].At != 2 || evs[1].At != 3 {
		t.Fatalf("retained events must be the newest, oldest-first: %+v", evs)
	}
	// Totals survive eviction.
	if l.DeniedTotal() != 4 {
		t.Fatalf("DeniedTotal = %d, want 4", l.DeniedTotal())
	}
}

func TestPromTextEmitsTypeOncePerBase(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Gauge(`mq_depth{queue="/x"}`).Set(1)
	r.Gauge(`mq_depth{queue="/y"}`).Set(2)
	r.Histogram("lat_ns", []time.Duration{10}).Observe(5)
	text := r.PromText()
	if got := strings.Count(text, "# TYPE mq_depth gauge"); got != 1 {
		t.Fatalf("TYPE mq_depth emitted %d times:\n%s", got, text)
	}
	for _, want := range []string{
		"a_total 1",
		`mq_depth{queue="/x"} 1`,
		`lat_ns_bucket{le="10"} 1`,
		`lat_ns_bucket{le="+Inf"} 1`,
		"lat_ns_sum 5",
		"lat_ns_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() []byte {
		clk := &fakeClock{}
		tr := NewTracer(clk.now, 8)
		id := tr.Begin("web", "pm", "sendrec")
		clk.t = 3000
		tr.End(id, OutcomeDelivered)
		tr.Emit("temp", "heater", "send", OutcomeACMDenied)
		out, err := tr.ChromeTrace()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("ChromeTrace must be byte-stable for identical histories")
	}
	for _, want := range []string{`"ph": "X"`, `"ph": "M"`, "thread_name", "sendrec"} {
		if !strings.Contains(string(a), want) {
			t.Fatalf("missing %q in trace:\n%s", want, a)
		}
	}
}

func TestBoardReportJSONDeterministic(t *testing.T) {
	build := func() []byte {
		clk := &fakeClock{}
		b := NewBoard(clk.now)
		b.Events().SetPlatform("test")
		b.Metrics().Counter("c_total").Add(3)
		b.Metrics().Histogram("h_ns", nil).Observe(4 * time.Microsecond)
		id := b.Tracer().Begin("a", "b", "x")
		clk.t = 1000
		b.Tracer().End(id, OutcomeDelivered)
		b.Events().Emit(SecurityEvent{Kind: EventIPCDenied, Mechanism: MechACM, Denied: true, Src: "a", Dst: "b"})
		out, err := b.Report("test", true).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("report JSON must be byte-stable")
	}
	for _, want := range []string{`"platform": "test"`, `"ipc-denied"`, `"acm"`, "c_total", "h_ns"} {
		if !strings.Contains(string(a), want) {
			t.Fatalf("missing %q in report:\n%s", want, a)
		}
	}
}
