package machine

import "fmt"

// PID identifies a simulated process on one board. PIDs are engine-level
// identities; kernels layer their own notions (endpoints, ac_ids, Unix pids)
// on top.
type PID int32

// NoPID is the zero PID; valid processes start at 1.
const NoPID PID = 0

// ProcState is the engine-level lifecycle state of a process.
type ProcState int

// Process lifecycle states.
const (
	// StateNew means the goroutine exists but has never been scheduled.
	StateNew ProcState = iota + 1
	// StateReady means the process has a pending trap reply and is waiting
	// for CPU.
	StateReady
	// StateRunning means the process is executing user code; the engine is
	// waiting for its next trap.
	StateRunning
	// StateBlocked means the kernel has parked the process; it owns no CPU
	// and has no pending reply.
	StateBlocked
	// StateDead means the process has exited, crashed, or been killed.
	StateDead
)

// String returns the conventional short name of the state.
func (s ProcState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// killSentinel is delivered on a process's resume channel to force it to
// unwind. The body wrapper recognises the resulting panic and treats it as a
// kill rather than a crash.
type killSentinel struct{}

// ExitInfo describes how a process left the system.
type ExitInfo struct {
	// Crashed is true when the body panicked (a fault, in OS terms).
	Crashed bool
	// Killed is true when the process was destroyed by the kernel.
	Killed bool
	// PanicValue holds the recovered panic value when Crashed is true.
	PanicValue any
}

// Proc is the engine-level process control block.
type Proc struct {
	pid   PID
	name  string
	prio  int
	state ProcState

	engine *Engine
	body   func(ctx *Context)

	// resume carries trap replies (and the kill sentinel) from the engine to
	// the parked goroutine. It is unbuffered: a handoff is a context switch.
	resume chan any
	// done is closed by the body wrapper when the goroutine has fully
	// unwound.
	done chan struct{}

	// pendingReply is delivered at the next dispatch while the proc is Ready.
	pendingReply any

	// dying is set (by the process's own goroutine) when the kill sentinel
	// arrives, so deferred cleanup running during unwinding cannot trap into
	// a kernel that is no longer listening.
	dying bool

	// tokenUnwind is set when a kill hit this process on its own call stack
	// (the kernel killed its caller during HandleTrap, or a timer callback
	// killed the process running the scheduler). The unwinding goroutine
	// still holds the engine token and must pass it on from runBody once
	// user-level deferred cleanup has finished.
	tokenUnwind bool

	// Accounting.
	traps    int64
	switches int64
}

// PID returns the process identifier.
func (p *Proc) PID() PID { return p.pid }

// Name returns the human-readable process name.
func (p *Proc) Name() string { return p.name }

// Priority returns the scheduling priority (lower is more urgent).
func (p *Proc) Priority() int { return p.prio }

// State returns the engine-level lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Traps returns the number of traps this process has taken.
func (p *Proc) Traps() int64 { return p.traps }

// Switches returns the number of times this process was context-switched in.
func (p *Proc) Switches() int64 { return p.switches }

// Context is the view of the board a process body receives. All interaction
// with the outside world goes through Trap, which hands control to the
// kernel.
type Context struct {
	proc *Proc
}

// PID returns the identity of the calling process.
func (c *Context) PID() PID { return c.proc.pid }

// Name returns the name of the calling process.
func (c *Context) Name() string { return c.proc.name }

// Now returns the current virtual time. Reading the clock is free; it does
// not trap.
func (c *Context) Now() Time { return c.proc.engine.clock.Now() }

// Trap synchronously invokes the kernel with an arbitrary request and returns
// the kernel's reply. The calling goroutine yields the virtual CPU until the
// kernel schedules it again; from the process's perspective the call simply
// blocks.
//
// Under the token-passing engine this is a direct function call: the calling
// goroutine holds the engine token, so it runs the kernel handler and the
// scheduler inline. When the next runnable process is the caller itself the
// reply is returned without touching a channel; otherwise the token is handed
// to the next process (or back to the host) and the caller parks until its
// next dispatch.
//
// If the process is killed while parked inside Trap — or kills itself via the
// kernel — the call never returns: the goroutine unwinds via an internal
// panic that the engine recovers. Deferred cleanup that traps during that
// unwinding re-panics immediately — a dead process gets no more system calls.
func (c *Context) Trap(req any) any {
	p := c.proc
	e := p.engine
	if p.dying {
		panic(killSentinel{})
	}
	if e.active != p {
		panic(fmt.Sprintf("machine: trap from %d (%s) while %d running", p.pid, p.name, e.lastRun))
	}
	sc := e.trapEnter(p)
	e.current = p.pid
	reply, disposition := e.handler.HandleTrap(p.pid, req)
	e.current = NoPID
	if p.state == StateDead {
		// The kernel killed the calling process while handling its trap;
		// Kill already booked the exit. Unwind before any other process
		// runs; runBody hands the token on afterwards.
		sc.End()
		p.tokenUnwind = true
		p.dying = true
		panic(killSentinel{})
	}
	switch disposition {
	case DispositionContinue:
		p.pendingReply = reply
		p.state = StateReady
		e.enqueue(p)
	case DispositionBlock:
		p.state = StateBlocked
	default:
		panic(fmt.Sprintf("machine: invalid disposition %d", disposition))
	}
	next, stop, stopped := e.schedule()
	if p.state == StateDead {
		// A timer callback killed us while scheduling. Stash the decision —
		// nextReady may already have popped the next process — and let
		// runBody perform the handoff once the goroutine has unwound.
		e.stashNext, e.stashStop, e.stashStopped = next, stop, stopped
		e.stashValid = true
		sc.End()
		p.tokenUnwind = true
		p.dying = true
		panic(killSentinel{})
	}
	if next == p {
		// Fast path: the caller is the next runnable process — keep the
		// token and return the reply with zero channel operations.
		out := e.switchTo(p)
		sc.End()
		return out
	}
	sc.End()
	e.handoff(next, stop, stopped)
	parked := <-p.resume
	if _, killed := parked.(killSentinel); killed {
		p.dying = true
		panic(killSentinel{})
	}
	return parked
}
