// AADL workflow: the paper's Fig. 1 top-down/bottom-up loop, end to end.
//
//  1. Parse the AADL model of the temperature-control architecture.
//
//  2. Compile it to the access control matrix (and show the C rendering the
//     authors compiled into their MINIX kernel).
//
//  3. Boot the MINIX platform with the *generated* policy and prove the
//     closed loop still works.
//
//  4. Compile the same model to a CAmkES topology, and verify the booted
//     seL4 system's capability distribution against its CapDL description.
//
//     go run ./examples/aadl-workflow [model.aadl]
package main

import (
	"fmt"
	"os"
	"time"

	"mkbas/internal/aadl"
	"mkbas/internal/bas"
	"mkbas/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aadl-workflow:", err)
		os.Exit(1)
	}
}

func run() error {
	path := "internal/aadl/testdata/tempcontrol.aadl"
	if len(os.Args) > 1 {
		path = os.Args[1]
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}

	// Step 1: model.
	pkg, err := aadl.Parse(string(src))
	if err != nil {
		return err
	}
	const sysName = "temp_control.impl"
	fmt.Printf("parsed package %s: %d processes, %d system implementation(s)\n",
		pkg.Name, len(pkg.Processes), len(pkg.Systems))

	// Step 2: model -> ACM.
	matrix, err := aadl.GenerateACM(pkg, sysName)
	if err != nil {
		return err
	}
	fmt.Println("\ngenerated access control matrix:")
	fmt.Print(matrix.String())

	cSrc, err := aadl.GenerateC(pkg, sysName)
	if err != nil {
		return err
	}
	fmt.Println("C rendering (compiled with the kernel in the paper's build):")
	fmt.Print(cSrc)

	// Step 3: boot MINIX with the generated policy.
	policy := core.NewPolicy()
	policy.IPC = matrix.Clone()
	policy.Syscalls.
		Grant(core.ACIDScenario, core.SysFork).
		Grant(core.ACIDScenario, core.SysExec).
		Grant(core.ACIDScenario, core.SysKill).
		Grant(core.ACIDScenario, core.SysSetACID).
		Grant(core.ACIDWebInterface, core.SysFork)
	policy.Seal()

	cfg := bas.DefaultScenario()
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	mdep, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{Policy: policy})
	if err != nil {
		return err
	}
	dep := mdep.(*bas.MinixDeployment)
	tb.Machine.Run(30 * time.Minute)
	fmt.Printf("\nMINIX under the generated policy: room at %.2f°C after 30m (setpoint %.1f)\n",
		tb.Room.Temperature(), cfg.Controller.Setpoint)
	fmt.Printf("ACM denials during healthy operation: %d (want 0)\n", dep.Kernel.Stats().IPCDenied)

	// Step 4: model -> CAmkES, and CapDL verification of the seL4 build.
	topo, err := aadl.GenerateCAmkES(pkg, sysName)
	if err != nil {
		return err
	}
	fmt.Println("\ngenerated CAmkES assembly:")
	fmt.Print(topo.RenderCAmkES(sysName))

	tb2 := bas.NewTestbed(cfg)
	defer tb2.Machine.Shutdown()
	sdep, err := bas.Deploy(bas.PlatformSel4, tb2, cfg, bas.DeployOptions{})
	if err != nil {
		return err
	}
	sel4dep := sdep.(*bas.Sel4Deployment)
	fmt.Println("\nCapDL description of the booted seL4 system:")
	fmt.Print(sel4dep.System.Spec().Render())
	if err := sel4dep.System.Verify(); err != nil {
		return fmt.Errorf("CapDL verification: %w", err)
	}
	fmt.Println("capability distribution verified against the live kernel")

	// Sanity: generated topology matches the hand-built assembly's shape.
	hand := bas.ScenarioAssembly(cfg, nil)
	if len(topo.Connections) != len(hand.Connections) {
		return fmt.Errorf("generated topology has %d connections, hand-built %d",
			len(topo.Connections), len(hand.Connections))
	}
	fmt.Printf("\ngenerated topology matches the hand-built assembly: %d components, %d connections\n",
		len(topo.Components), len(topo.Connections))
	return nil
}
