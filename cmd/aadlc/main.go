// Command aadlc is the AADL compiler of Section IV: it parses a model of
// the BAS control architecture and emits, per target:
//
//	-emit acm     the access control matrix in its tabular form
//	-emit c       the C source the paper compiles into the MINIX kernel
//	-emit camkes  the CAmkES ADL assembly for the seL4 build
//
// Usage:
//
//	aadlc -system temp_control.impl -emit c internal/aadl/testdata/tempcontrol.aadl
package main

import (
	"flag"
	"fmt"
	"os"

	"mkbas/internal/aadl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aadlc:", err)
		os.Exit(1)
	}
}

func run() error {
	system := flag.String("system", "", "system implementation to compile (default: the model's only one)")
	emit := flag.String("emit", "acm", "output: acm, c, or camkes")
	lint := flag.Bool("lint", false, "run post-compile policy lint and print findings after the output")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: aadlc [-system name] [-emit acm|c|camkes] <model.aadl>")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	pkg, err := aadl.Parse(string(src))
	if err != nil {
		return err
	}

	sysName := *system
	if sysName == "" {
		if len(pkg.Systems) != 1 {
			return fmt.Errorf("model has %d system implementations; pick one with -system", len(pkg.Systems))
		}
		sysName = pkg.Systems[0].Name
	}

	switch *emit {
	case "acm":
		m, err := aadl.GenerateACM(pkg, sysName)
		if err != nil {
			return err
		}
		fmt.Printf("-- access control matrix for %s (%s)\n", sysName, pkg.Name)
		fmt.Print(m.String())
	case "c":
		out, err := aadl.GenerateC(pkg, sysName)
		if err != nil {
			return err
		}
		fmt.Print(out)
	case "camkes":
		topo, err := aadl.GenerateCAmkES(pkg, sysName)
		if err != nil {
			return err
		}
		fmt.Print(topo.RenderCAmkES(sysName))
	default:
		return fmt.Errorf("unknown -emit %q", *emit)
	}
	if *lint {
		findings, err := aadl.Lint(pkg, sysName)
		if err != nil {
			return err
		}
		fmt.Printf("-- lint: %d finding(s)\n", len(findings))
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	return nil
}
