package machine

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// toyKernel is a minimal TrapHandler for engine tests. It understands:
//
//	sleepReq{d}   — block the caller for d of virtual time
//	yieldReq{}    — continue immediately
//	sendReq{to,v} — rendezvous send (blocks until a matching recv)
//	recvReq{}     — rendezvous receive (blocks until a matching send)
//	spawnReq{...} — spawn a child
//	killReq{pid}  — kill a process
type toyKernel struct {
	e *Engine

	// one-slot rendezvous state per receiver
	waitingRecv map[PID]bool
	pendingSend map[PID][]pendingSend

	exits []exitRecord
}

type (
	sleepReq struct{ d time.Duration }
	yieldReq struct{}
	sendReq  struct {
		to PID
		v  any
	}
	recvReq  struct{}
	spawnReq struct {
		name string
		prio int
		body func(ctx *Context)
	}
	killReq struct{ pid PID }
)

type pendingSend struct {
	from PID
	v    any
}

type exitRecord struct {
	pid  PID
	info ExitInfo
}

func newToyKernel(e *Engine) *toyKernel {
	k := &toyKernel{
		e:           e,
		waitingRecv: make(map[PID]bool),
		pendingSend: make(map[PID][]pendingSend),
	}
	e.SetHandler(k)
	return k
}

func (k *toyKernel) HandleTrap(pid PID, req any) (any, Disposition) {
	switch r := req.(type) {
	case sleepReq:
		k.e.Clock().After(r.d, func() {
			// The sleeper may have been killed while asleep.
			if p := k.e.Proc(pid); p != nil && p.State() == StateBlocked {
				if err := k.e.Ready(pid, nil); err != nil {
					panic(err)
				}
			}
		})
		return nil, DispositionBlock
	case yieldReq:
		return nil, DispositionContinue
	case sendReq:
		if k.waitingRecv[r.to] {
			k.waitingRecv[r.to] = false
			if err := k.e.Ready(r.to, r.v); err != nil {
				return err, DispositionContinue
			}
			return nil, DispositionContinue
		}
		k.pendingSend[r.to] = append(k.pendingSend[r.to], pendingSend{from: pid, v: r.v})
		return nil, DispositionBlock
	case recvReq:
		if q := k.pendingSend[pid]; len(q) > 0 {
			k.pendingSend[pid] = q[1:]
			if err := k.e.Ready(q[0].from, nil); err != nil {
				return err, DispositionContinue
			}
			return q[0].v, DispositionContinue
		}
		k.waitingRecv[pid] = true
		return nil, DispositionBlock
	case spawnReq:
		p, err := k.e.Spawn(r.name, r.prio, r.body)
		if err != nil {
			return err, DispositionContinue
		}
		return p.PID(), DispositionContinue
	case killReq:
		return k.e.Kill(r.pid), DispositionContinue
	default:
		return fmt.Errorf("toy: unknown trap %T", req), DispositionContinue
	}
}

func (k *toyKernel) OnProcExit(pid PID, info ExitInfo) {
	k.exits = append(k.exits, exitRecord{pid: pid, info: info})
}

func newTestBoard(t *testing.T) (*Machine, *toyKernel) {
	t.Helper()
	m := New(Config{})
	k := newToyKernel(m.Engine())
	t.Cleanup(m.Shutdown)
	return m, k
}

func mustSpawn(t *testing.T, e *Engine, name string, prio int, body func(ctx *Context)) *Proc {
	t.Helper()
	p, err := e.Spawn(name, prio, body)
	if err != nil {
		t.Fatalf("Spawn(%q): %v", name, err)
	}
	return p
}

func TestProcBodyRunsAndExits(t *testing.T) {
	m, k := newTestBoard(t)
	ran := false
	p := mustSpawn(t, m.Engine(), "hello", 7, func(ctx *Context) {
		ran = true
	})
	res := m.Run(time.Second)
	if !ran {
		t.Fatal("body never ran")
	}
	if res.Reason != StopAllExited {
		t.Fatalf("Run reason = %v, want %v", res.Reason, StopAllExited)
	}
	if got := p.State(); got != StateDead {
		t.Fatalf("state = %v, want dead", got)
	}
	if len(k.exits) != 1 || k.exits[0].pid != p.PID() {
		t.Fatalf("exits = %+v, want one for pid %d", k.exits, p.PID())
	}
	if k.exits[0].info.Crashed || k.exits[0].info.Killed {
		t.Fatalf("clean exit misreported: %+v", k.exits[0].info)
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	m, _ := newTestBoard(t)
	var woke Time
	mustSpawn(t, m.Engine(), "sleeper", 7, func(ctx *Context) {
		ctx.Trap(sleepReq{d: 250 * time.Millisecond})
		woke = ctx.Now()
	})
	m.Run(time.Second)
	if woke < Time(250*time.Millisecond) {
		t.Fatalf("woke at %v, want >= 250ms", woke)
	}
	if woke > Time(251*time.Millisecond) {
		t.Fatalf("woke at %v, want ~250ms (cost model should add only microseconds)", woke)
	}
}

func TestRendezvousSendRecv(t *testing.T) {
	m, _ := newTestBoard(t)
	e := m.Engine()
	var got any
	recvPID := PID(0)
	recv := mustSpawn(t, e, "recv", 7, func(ctx *Context) {
		got = ctx.Trap(recvReq{})
	})
	recvPID = recv.PID()
	mustSpawn(t, e, "send", 7, func(ctx *Context) {
		ctx.Trap(sendReq{to: recvPID, v: "payload"})
	})
	res := m.Run(time.Second)
	if res.Reason != StopAllExited {
		t.Fatalf("Run reason = %v, want all-exited", res.Reason)
	}
	if got != "payload" {
		t.Fatalf("received %v, want payload", got)
	}
}

func TestRendezvousSenderBlocksUntilReceiverReady(t *testing.T) {
	m, _ := newTestBoard(t)
	e := m.Engine()
	var recvAt, sendDone Time
	var recvPID PID
	recvBody := func(ctx *Context) {
		ctx.Trap(sleepReq{d: 100 * time.Millisecond})
		recvAt = ctx.Now()
		ctx.Trap(recvReq{})
	}
	recvPID = mustSpawn(t, e, "recv", 7, recvBody).PID()
	mustSpawn(t, e, "send", 7, func(ctx *Context) {
		ctx.Trap(sendReq{to: recvPID, v: 1})
		sendDone = ctx.Now()
	})
	m.Run(time.Second)
	if sendDone < recvAt {
		t.Fatalf("send completed at %v before receiver ready at %v", sendDone, recvAt)
	}
}

func TestPriorityOrdering(t *testing.T) {
	m, _ := newTestBoard(t)
	e := m.Engine()
	var order []string
	for _, tc := range []struct {
		name string
		prio int
	}{{"low", 9}, {"high", 2}, {"mid", 5}} {
		name := tc.name
		mustSpawn(t, e, name, tc.prio, func(ctx *Context) {
			order = append(order, name)
		})
	}
	m.Run(time.Second)
	want := []string{"high", "mid", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	m, _ := newTestBoard(t)
	e := m.Engine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		mustSpawn(t, e, fmt.Sprintf("p%d", i), 7, func(ctx *Context) {
			order = append(order, i)
		})
	}
	m.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestCrashReportsPanicValue(t *testing.T) {
	m, k := newTestBoard(t)
	mustSpawn(t, m.Engine(), "crasher", 7, func(ctx *Context) {
		panic("boom")
	})
	m.Run(time.Second)
	if len(k.exits) != 1 {
		t.Fatalf("exits = %d, want 1", len(k.exits))
	}
	info := k.exits[0].info
	if !info.Crashed || info.Killed {
		t.Fatalf("info = %+v, want crashed", info)
	}
	if info.PanicValue != "boom" {
		t.Fatalf("panic value = %v, want boom", info.PanicValue)
	}
}

func TestKillBlockedProcess(t *testing.T) {
	m, k := newTestBoard(t)
	e := m.Engine()
	reachedAfter := false
	victim := mustSpawn(t, e, "victim", 7, func(ctx *Context) {
		ctx.Trap(recvReq{}) // blocks forever
		reachedAfter = true
	})
	mustSpawn(t, e, "killer", 7, func(ctx *Context) {
		ctx.Trap(yieldReq{}) // let victim block first
		if err, _ := ctx.Trap(killReq{pid: victim.PID()}).(error); err != nil {
			t.Errorf("kill: %v", err)
		}
	})
	res := m.Run(time.Second)
	if res.Reason != StopAllExited {
		t.Fatalf("Run reason = %v, want all-exited", res.Reason)
	}
	if reachedAfter {
		t.Fatal("victim continued past kill point")
	}
	var killedInfo *ExitInfo
	for i := range k.exits {
		if k.exits[i].pid == victim.PID() {
			killedInfo = &k.exits[i].info
		}
	}
	if killedInfo == nil || !killedInfo.Killed {
		t.Fatalf("no killed exit for victim: %+v", k.exits)
	}
}

func TestKillSelfDuringTrap(t *testing.T) {
	m, k := newTestBoard(t)
	e := m.Engine()
	after := false
	var selfPID PID
	p := mustSpawn(t, e, "suicide", 7, func(ctx *Context) {
		ctx.Trap(killReq{pid: selfPID})
		after = true
	})
	selfPID = p.PID()
	res := m.Run(time.Second)
	if res.Reason != StopAllExited {
		t.Fatalf("Run reason = %v, want all-exited", res.Reason)
	}
	if after {
		t.Fatal("process survived killing itself")
	}
	if len(k.exits) != 1 || !k.exits[0].info.Killed {
		t.Fatalf("exits = %+v, want one killed", k.exits)
	}
}

func TestKillDeadProcessFails(t *testing.T) {
	m, _ := newTestBoard(t)
	e := m.Engine()
	p := mustSpawn(t, e, "short", 7, func(ctx *Context) {})
	m.Run(time.Second)
	if err := e.Kill(p.PID()); err == nil {
		t.Fatal("Kill on dead process succeeded, want error")
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	m, _ := newTestBoard(t)
	e := m.Engine()
	childRan := false
	mustSpawn(t, e, "parent", 7, func(ctx *Context) {
		reply := ctx.Trap(spawnReq{name: "child", prio: 7, body: func(ctx *Context) {
			childRan = true
		}})
		if _, ok := reply.(PID); !ok {
			t.Errorf("spawn reply = %v, want PID", reply)
		}
	})
	m.Run(time.Second)
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestDeadlockDetected(t *testing.T) {
	m, _ := newTestBoard(t)
	mustSpawn(t, m.Engine(), "waiter", 7, func(ctx *Context) {
		ctx.Trap(recvReq{})
	})
	res := m.Run(time.Second)
	if res.Reason != StopIdle {
		t.Fatalf("Run reason = %v, want idle-deadlock", res.Reason)
	}
}

func TestRunInSlicesPreservesState(t *testing.T) {
	m, _ := newTestBoard(t)
	wakes := 0
	mustSpawn(t, m.Engine(), "ticker", 7, func(ctx *Context) {
		for i := 0; i < 5; i++ {
			ctx.Trap(sleepReq{d: 100 * time.Millisecond})
			wakes++
		}
	})
	m.Run(250 * time.Millisecond)
	if wakes != 2 {
		t.Fatalf("after 250ms wakes = %d, want 2", wakes)
	}
	m.Run(10 * time.Second)
	if wakes != 5 {
		t.Fatalf("after full run wakes = %d, want 5", wakes)
	}
}

func TestTimerOrderingDeterministic(t *testing.T) {
	m, _ := newTestBoard(t)
	c := m.Clock()
	var fired []int
	at := c.Now().Add(time.Millisecond)
	for i := 0; i < 10; i++ {
		i := i
		c.At(at, func() { fired = append(fired, i) })
	}
	m.Run(time.Second)
	for i, v := range fired {
		if v != i {
			t.Fatalf("timers fired %v, want scheduling order", fired)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	m, _ := newTestBoard(t)
	c := m.Clock()
	fired := false
	id := c.After(time.Millisecond, func() { fired = true })
	c.Cancel(id)
	m.Run(time.Second)
	if fired {
		t.Fatal("canceled timer fired")
	}
	if c.PendingTimers() != 0 {
		t.Fatalf("pending timers = %d, want 0", c.PendingTimers())
	}
}

func TestContextSwitchAccounting(t *testing.T) {
	m, _ := newTestBoard(t)
	e := m.Engine()
	var a, b PID
	pa := mustSpawn(t, e, "a", 7, func(ctx *Context) {
		ctx.Trap(recvReq{})
	})
	a = pa.PID()
	pb := mustSpawn(t, e, "b", 7, func(ctx *Context) {
		ctx.Trap(sendReq{to: a, v: 1})
	})
	b = pb.PID()
	_ = b
	m.Run(time.Second)
	if e.Stats().ContextSwitches < 2 {
		t.Fatalf("switches = %d, want >= 2", e.Stats().ContextSwitches)
	}
	if e.Stats().Traps < 2 {
		t.Fatalf("traps = %d, want >= 2", e.Stats().Traps)
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() (Stats, Time, []string) {
		m := New(Config{Seed: 42})
		e := m.Engine()
		newToyKernel(e)
		defer m.Shutdown()
		var events []string
		var consumerPID PID
		consumer := func(ctx *Context) {
			for i := 0; i < 20; i++ {
				v := ctx.Trap(recvReq{})
				events = append(events, fmt.Sprintf("recv %v", v))
			}
		}
		consumerPID = mustSpawnNoT(e, "consumer", 6, consumer)
		for w := 0; w < 4; w++ {
			w := w
			mustSpawnNoT(e, fmt.Sprintf("producer%d", w), 7, func(ctx *Context) {
				for i := 0; i < 5; i++ {
					ctx.Trap(sleepReq{d: time.Duration(w+1) * time.Millisecond})
					ctx.Trap(sendReq{to: consumerPID, v: fmt.Sprintf("w%d-%d", w, i)})
				}
			})
		}
		res := m.Run(10 * time.Second)
		return e.Stats(), res.Now, events
	}
	s1, t1, e1 := runOnce()
	s2, t2, e2 := runOnce()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	if t1 != t2 {
		t.Fatalf("end time differs: %v vs %v", t1, t2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("event counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs: %q vs %q", i, e1[i], e2[i])
		}
	}
}

func mustSpawnNoT(e *Engine, name string, prio int, body func(ctx *Context)) PID {
	p, err := e.Spawn(name, prio, body)
	if err != nil {
		panic(err)
	}
	return p.PID()
}

func TestShutdownUnwindsAllGoroutines(t *testing.T) {
	m := New(Config{})
	e := m.Engine()
	newToyKernel(e)
	var procs []*Proc
	for i := 0; i < 8; i++ {
		procs = append(procs, mustSpawn(t, e, fmt.Sprintf("p%d", i), 7, func(ctx *Context) {
			ctx.Trap(recvReq{})
		}))
	}
	m.Run(time.Second)
	m.Shutdown()
	for _, p := range procs {
		select {
		case <-p.done:
		default:
			t.Fatalf("process %s goroutine not unwound", p.Name())
		}
	}
	if _, err := e.Spawn("late", 7, func(ctx *Context) {}); err == nil {
		t.Fatal("Spawn after Shutdown succeeded")
	}
}

func TestSpawnValidation(t *testing.T) {
	m, _ := newTestBoard(t)
	if _, err := m.Engine().Spawn("bad", -1, func(ctx *Context) {}); err == nil {
		t.Fatal("negative priority accepted")
	}
	if _, err := m.Engine().Spawn("bad", numPriorities, func(ctx *Context) {}); err == nil {
		t.Fatal("overlarge priority accepted")
	}
}

func TestBusReadWrite(t *testing.T) {
	bus := NewBus()
	dev := &memDevice{regs: map[uint32]uint32{}}
	bus.Attach("dev0", dev)
	if err := bus.Write("dev0", 4, 99); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, err := bus.Read("dev0", 4)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != 99 {
		t.Fatalf("read %d, want 99", v)
	}
	if _, err := bus.Read("nope", 0); err == nil {
		t.Fatal("read from missing device succeeded")
	}
	r, w := bus.IOCount("dev0")
	if r != 1 || w != 1 {
		t.Fatalf("io counts = %d,%d want 1,1", r, w)
	}
}

type memDevice struct{ regs map[uint32]uint32 }

func (d *memDevice) ReadReg(reg uint32) uint32         { return d.regs[reg] }
func (d *memDevice) WriteReg(reg uint32, value uint32) { d.regs[reg] = value }

func TestTraceRingBuffer(t *testing.T) {
	c := NewClock()
	tr := NewTrace(c, 3)
	for i := 0; i < 5; i++ {
		tr.Logf("tag", "line %d", i)
	}
	lines := tr.Lines()
	if len(lines) != 3 {
		t.Fatalf("len = %d, want 3", len(lines))
	}
	if lines[0].Text != "line 2" || lines[2].Text != "line 4" {
		t.Fatalf("ring contents wrong: %v", lines)
	}
	if got := tr.Grep("line 3"); len(got) != 1 {
		t.Fatalf("grep = %v, want 1 hit", got)
	}
}

func TestTraceWraparoundKeepsOrderAcrossManyWraps(t *testing.T) {
	// Regression for the head-index ring: Lines must stay oldest-first no
	// matter where the head sits, including exactly-full and multi-wrap
	// states, and String/Grep must agree with Lines.
	c := NewClock()
	const capacity = 4
	tr := NewTrace(c, capacity)
	for n := 1; n <= 3*capacity+1; n++ {
		tr.Logf("tag", "line %d", n)
		lines := tr.Lines()
		wantLen := n
		if wantLen > capacity {
			wantLen = capacity
		}
		if len(lines) != wantLen {
			t.Fatalf("after %d logs: len = %d, want %d", n, len(lines), wantLen)
		}
		first := n - wantLen + 1
		for i, l := range lines {
			if want := fmt.Sprintf("line %d", first+i); l.Text != want {
				t.Fatalf("after %d logs: lines[%d] = %q, want %q", n, i, l.Text, want)
			}
		}
	}
	if hits := tr.Grep("line 13"); len(hits) != 1 {
		t.Fatalf("grep newest = %v", hits)
	}
	if hits := tr.Grep("line 9"); len(hits) != 0 {
		t.Fatalf("evicted line still greps: %v", hits)
	}
	if !strings.Contains(tr.String(), "line 10") || strings.Contains(tr.String(), "line 9\n") {
		t.Fatalf("String out of sync with ring:\n%s", tr.String())
	}
}

func TestTimeArithmetic(t *testing.T) {
	base := Time(0).Add(time.Second)
	if base.Sub(Time(0)) != time.Second {
		t.Fatalf("Sub wrong: %v", base.Sub(Time(0)))
	}
	if base.String() != "1s" {
		t.Fatalf("String = %q, want 1s", base.String())
	}
}
