package linuxsim

import (
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/vnet"
)

// API is the POSIX-ish system-call surface a simulated Linux process
// programs against.
type API struct {
	ctx *machine.Context

	// Scratch requests for the hot syscalls. Boxing a pointer into the
	// trap's any costs no heap allocation, and the kernel consumes each
	// request synchronously inside HandleTrap, so one scratch value per
	// request type is enough.
	sendScratch   mqSendReq
	recvScratch   mqReceiveReq
	recvTOScratch mqReceiveTimeoutReq
	sleepScratch  sleepReq
	devRdScratch  devReadReq
	devWrScratch  devWriteReq
}

// Now returns the current virtual time (free, no trap).
func (a *API) Now() machine.Time { return a.ctx.Now() }

// MQOpenFlags configures MQOpen.
type MQOpenFlags struct {
	Create   bool
	Excl     bool
	Read     bool
	Write    bool
	NonBlock bool
	Mode     Mode
	MaxMsgs  int
}

// MQOpen implements mq_open.
func (a *API) MQOpen(name string, flags MQOpenFlags) (int32, error) {
	reply := a.ctx.Trap(mqOpenReq{
		name:     name,
		create:   flags.Create,
		excl:     flags.Excl,
		mode:     flags.Mode,
		maxMsgs:  flags.MaxMsgs,
		read:     flags.Read,
		write:    flags.Write,
		nonblock: flags.NonBlock,
	}).(fdReply)
	return reply.fd, reply.err
}

// MQSend implements mq_send. The kernel copies data before returning, so
// the caller may reuse the buffer immediately.
func (a *API) MQSend(fd int32, data []byte, prio uint32) error {
	a.sendScratch = mqSendReq{fd: fd, data: data, prio: prio}
	err := a.ctx.Trap(&a.sendScratch).(*errReply).err
	a.sendScratch.data = nil
	return err
}

// MQReceive implements mq_receive. The returned message's Data is valid
// until the process's next MQReceive/MQReceiveTimeout (the kernel recycles
// payload buffers); callers that keep a payload must copy it.
func (a *API) MQReceive(fd int32) (MQMsg, error) {
	a.recvScratch = mqReceiveReq{fd: fd}
	reply := a.ctx.Trap(&a.recvScratch).(*msgReply)
	return reply.msg, reply.err
}

// MQReceiveTimeout implements mq_timedreceive: it returns ErrTimeout if no
// message arrives within d of virtual time. Hardened control loops use it as
// a liveness watchdog on their input queues.
func (a *API) MQReceiveTimeout(fd int32, d time.Duration) (MQMsg, error) {
	a.recvTOScratch = mqReceiveTimeoutReq{fd: fd, d: d}
	reply := a.ctx.Trap(&a.recvTOScratch).(*msgReply)
	return reply.msg, reply.err
}

// MQUnlink implements mq_unlink.
func (a *API) MQUnlink(name string) error {
	return a.ctx.Trap(mqUnlinkReq{name: name}).(errReply).err
}

// MQClose implements mq_close.
func (a *API) MQClose(fd int32) error {
	return a.ctx.Trap(mqCloseReq{fd: fd}).(errReply).err
}

// Kill implements kill(2).
func (a *API) Kill(unixPID, sig int) error {
	return a.ctx.Trap(killReq{unixPID: unixPID, sig: sig}).(errReply).err
}

// Fork spawns a registered image under the caller's credentials.
func (a *API) Fork(image string) (int, error) {
	reply := a.ctx.Trap(forkReq{image: image}).(intReply)
	return reply.value, reply.err
}

// Respawn spawns a registered image under its declared credentials — the
// supervisor primitive. Root only; fails with ErrExist while the image is
// still running.
func (a *API) Respawn(image string) (int, error) {
	reply := a.ctx.Trap(respawnReq{image: image}).(intReply)
	return reply.value, reply.err
}

// GetPID returns the caller's unix pid.
func (a *API) GetPID() int {
	return a.ctx.Trap(getPIDReq{}).(intReply).value
}

// GetUID returns the caller's uid.
func (a *API) GetUID() int {
	return a.ctx.Trap(getUIDReq{}).(intReply).value
}

// Sleep blocks for a virtual duration.
func (a *API) Sleep(d time.Duration) {
	a.sleepScratch = sleepReq{d: d}
	a.ctx.Trap(&a.sleepScratch)
}

// DevRead reads a device register through its /dev node (DAC applies).
func (a *API) DevRead(dev machine.DeviceID, reg uint32) (uint32, error) {
	a.devRdScratch = devReadReq{dev: dev, reg: reg}
	reply := a.ctx.Trap(&a.devRdScratch).(*u32Reply)
	return reply.value, reply.err
}

// DevWrite writes a device register through its /dev node (DAC applies).
func (a *API) DevWrite(dev machine.DeviceID, reg uint32, value uint32) error {
	a.devWrScratch = devWriteReq{dev: dev, reg: reg, value: value}
	return a.ctx.Trap(&a.devWrScratch).(*errReply).err
}

// Trace writes to the board trace console.
func (a *API) Trace(tag, text string) {
	a.ctx.Trap(traceReq{tag: tag, text: text})
}

// Exit terminates the caller. It does not return.
func (a *API) Exit() {
	a.ctx.Trap(exitReq{})
	panic("linuxsim: Exit returned")
}

// NetListen binds a port.
func (a *API) NetListen(port vnet.Port) (int32, error) {
	reply := a.ctx.Trap(netListenReq{port: port}).(handleReply)
	return reply.handle, reply.err
}

// NetAccept blocks until a connection arrives.
func (a *API) NetAccept(listener int32) (int32, error) {
	reply := a.ctx.Trap(netAcceptReq{listener: listener}).(handleReply)
	return reply.handle, reply.err
}

// NetRead blocks until data or EOF is available.
func (a *API) NetRead(conn int32, max int) ([]byte, error) {
	reply := a.ctx.Trap(netReadReq{conn: conn, max: max}).(bytesReply)
	return reply.data, reply.err
}

// NetWrite sends bytes on a connection.
func (a *API) NetWrite(conn int32, data []byte) error {
	return a.ctx.Trap(netWriteReq{conn: conn, data: data}).(errReply).err
}

// NetClose closes a connection.
func (a *API) NetClose(conn int32) error {
	return a.ctx.Trap(netCloseReq{conn: conn}).(errReply).err
}
