package tenantapi

import (
	"mkbas/internal/obs"
	"mkbas/internal/polcheck"
	"mkbas/internal/polcheck/monitor"
)

// The tenant tier's authorisation model is not ad-hoc if/else in the
// gateway: it is a certified polcheck access graph, the same formalism the
// kernels' ACM/CapDL/DAC policies normalise into. Role subjects hold
// labelled edges to the gateway subject; the gateway alone holds edges to
// the head-end. The gateway enforces by asking the online monitor whether
// the (role, gateway, route-label) edge exists *under the current origin
// assignment* — so demoting a compromised tenant origin shrinks its
// reachable set exactly as OAMAC-style demotion does for board subjects.

// GraphPlatform labels the tenant tier's access graph in reports.
const GraphPlatform = "tenant-api"

// AccessGraph builds the certified static graph for the tenant tier.
func AccessGraph() *polcheck.Graph {
	g := polcheck.NewGraph(GraphPlatform)
	gw := polcheck.Subject(SubjectGateway)
	he := polcheck.Subject(SubjectHeadEnd)
	g.AddFlow(polcheck.Subject(SubjectOccupant), gw,
		[]string{routeLabels[RouteStatus], routeLabels[RouteWhoAmI]}, "tenant-rbac")
	g.AddFlow(polcheck.Subject(SubjectManager), gw,
		[]string{routeLabels[RouteStatus], routeLabels[RouteSetpoint], routeLabels[RouteDiagnostics], routeLabels[RouteWhoAmI]}, "tenant-rbac")
	g.AddFlow(polcheck.Subject(SubjectVendor), gw,
		[]string{routeLabels[RouteDiagnostics], routeLabels[RouteWhoAmI]}, "tenant-rbac")
	// The gateway's own authority over the supervisory backend: read-side
	// polling and the write path a manager's setpoint request rides.
	g.AddFlow(gw, he, []string{"poll", routeLabels[RouteSetpoint]}, "tenant-rbac")
	return g
}

// Origins assigns the tier's static origin labels: occupant and vendor
// sessions arrive from the building's web surface, managers are operator
// credentialed, and the gateway/head-end pair is deployed infrastructure.
func Origins() map[string]monitor.Origin {
	return map[string]monitor.Origin{
		SubjectOccupant: monitor.OriginWeb,
		SubjectVendor:   monitor.OriginWeb,
		SubjectManager:  monitor.OriginOperator,
		SubjectGateway:  monitor.OriginBoot,
		SubjectHeadEnd:  monitor.OriginBoot,
	}
}

// NewMonitor builds the online monitor over the certified tenant graph,
// emitting drift/demotion events into events (nil discards them).
func NewMonitor(events *obs.EventLog) *monitor.Monitor {
	return monitor.New(AccessGraph(), monitor.Options{Events: events, Origins: Origins()})
}

// pSubject is a terse subject-node constructor for graph queries.
func pSubject(name string) polcheck.Node { return polcheck.Subject(name) }
