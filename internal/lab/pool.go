package lab

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mkbas/internal/perf"
)

// ForEachShard runs fn(shard) for shards 0..n-1 across a pool of workers
// goroutines — the campaign runner's pool discipline, exported for other
// shard-parallel drivers (the tenant-API load generator). The contract is
// the same as Run's: each shard must be fully independent, results must land
// in shard-indexed storage owned by the caller, and any merge must follow in
// shard order, never completion order — that is what keeps output bytes
// independent of the worker count.
//
// workers <= 0 means GOMAXPROCS. Shard wall time books into the
// "<kind>.shard" profiler phase and the pool exports utilization and
// queue-depth gauges under kind; a nil profiler records nothing. Every shard
// runs even when one fails; the error of the lowest-numbered failing shard
// is returned, independent of timing.
func ForEachShard(kind string, n, workers int, prof *perf.Profiler, fn func(shard int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	start := time.Now()
	errs := make([]error, n)
	jobs := make(chan int, n)
	pool := newPoolStats(prof, workers)
	phShard := prof.Phase(kind + ".shard")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		var track *perf.Track
		if prof.TimelineEnabled() {
			track = prof.Track(fmt.Sprintf("%s-worker-%02d", kind, w))
		}
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				pool.enter(len(jobs))
				var label string
				if track != nil {
					label = fmt.Sprintf("shard-%02d", i)
				}
				sc := phShard.BeginOn(track, label)
				jobStart := time.Now()
				errs[i] = fn(i)
				sc.End()
				pool.exit(w, time.Since(jobStart))
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	pool.export(kind, int64(time.Since(start)))
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
