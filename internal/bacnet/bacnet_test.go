package bacnet

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"
)

// memStore is a test device: temperature read-only, setpoint/heater/alarm
// writable.
type memStore struct {
	temp, setpoint float64
	heater, alarm  float64
}

func (s *memStore) ReadProperty(obj ObjectID) (float64, uint8) {
	switch obj {
	case ObjTemperature:
		return s.temp, 0
	case ObjSetpoint:
		return s.setpoint, 0
	case ObjHeater:
		return s.heater, 0
	case ObjAlarm:
		return s.alarm, 0
	default:
		return 0, CodeUnknownObject
	}
}

func (s *memStore) WriteProperty(obj ObjectID, value float64) uint8 {
	switch obj {
	case ObjTemperature:
		return CodeWriteDenied
	case ObjSetpoint:
		s.setpoint = value
	case ObjHeater:
		s.heater = value
	case ObjAlarm:
		s.alarm = value
	default:
		return CodeUnknownObject
	}
	return 0
}

func TestPDUEncodeDecodeRoundTrip(t *testing.T) {
	f := func(typ uint8, invoke uint8, device uint32, object uint16, value float64, code uint8) bool {
		p := PDU{
			Type:     PDUType(typ%4 + 1),
			InvokeID: invoke,
			Device:   device,
			Object:   ObjectID(object),
			Value:    value,
			Code:     code,
		}
		got, err := DecodePDU(p.Encode())
		if err != nil {
			return false
		}
		if p.Value != p.Value { // NaN: compare bitwise via re-encode
			return string(got.Encode()) == string(p.Encode())
		}
		return got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodePDU([]byte{1, 2, 3}); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short err = %v", err)
	}
	bad := PDU{Type: Ack}.Encode()
	bad[0] = 99
	if _, err := DecodePDU(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad type err = %v", err)
	}
}

func TestDeframer(t *testing.T) {
	var d Deframer
	a := Frame([]byte("hello"))
	b := Frame([]byte("world!"))
	both := append(append([]byte{}, a...), b...)
	// Feed byte by byte.
	var got []string
	for _, c := range both {
		d.Feed([]byte{c})
		for {
			f := d.Next()
			if f == nil {
				break
			}
			got = append(got, string(f))
		}
	}
	if len(got) != 2 || got[0] != "hello" || got[1] != "world!" {
		t.Fatalf("frames = %q", got)
	}
}

func TestLegacyServerReadWrite(t *testing.T) {
	store := &memStore{temp: 21.5, setpoint: 22}
	srv := NewServer(7, store)

	resp := srv.Handle(PDU{Type: ReadProperty, Device: 7, Object: ObjTemperature, InvokeID: 3})
	if resp.Type != Ack || resp.Value != 21.5 || resp.InvokeID != 3 {
		t.Fatalf("read resp = %+v", resp)
	}
	resp = srv.Handle(PDU{Type: WriteProperty, Device: 7, Object: ObjSetpoint, Value: 24})
	if resp.Type != Ack || store.setpoint != 24 {
		t.Fatalf("write resp = %+v store=%+v", resp, store)
	}
	resp = srv.Handle(PDU{Type: WriteProperty, Device: 7, Object: ObjTemperature, Value: 99})
	if resp.Type != ErrorPDU || resp.Code != CodeWriteDenied {
		t.Fatalf("read-only write resp = %+v", resp)
	}
	resp = srv.Handle(PDU{Type: ReadProperty, Device: 7, Object: 0xFFFF})
	if resp.Type != ErrorPDU || resp.Code != CodeUnknownObject {
		t.Fatalf("unknown object resp = %+v", resp)
	}
	resp = srv.Handle(PDU{Type: ReadProperty, Device: 8, Object: ObjTemperature})
	if resp.Type != ErrorPDU || resp.Code != CodeBadRequest {
		t.Fatalf("wrong device resp = %+v", resp)
	}
}

// TestLegacyProtocolIsSpoofableAndReplayable documents the vulnerability the
// paper's introduction describes: the legacy protocol accepts anything.
func TestLegacyProtocolIsSpoofableAndReplayable(t *testing.T) {
	store := &memStore{setpoint: 22}
	srv := NewServer(7, store)

	// Spoof: an attacker forges a heater-off write; nothing stops it.
	forged := PDU{Type: WriteProperty, Device: 7, Object: ObjHeater, Value: 0}
	if resp := srv.Handle(forged); resp.Type != Ack {
		t.Fatalf("legacy server rejected a forged write: %+v", resp)
	}

	// Replay: the captured raw frame applies again verbatim.
	raw := PDU{Type: WriteProperty, Device: 7, Object: ObjSetpoint, Value: 30}.Encode()
	for i := 0; i < 3; i++ {
		resp, err := DecodePDU(srv.HandleFrame(raw))
		if err != nil || resp.Type != Ack {
			t.Fatalf("replay %d rejected: %+v %v", i, resp, err)
		}
	}
	if store.setpoint != 30 {
		t.Fatalf("setpoint = %v", store.setpoint)
	}
}

func TestSecureProxyHappyPath(t *testing.T) {
	key := []byte("bsl3-device-key-0001")
	store := &memStore{temp: 20}
	proxy := NewProxy(key, NewServer(7, store))
	client := NewSecureClient(key, 1001)

	frame := client.Seal(PDU{Type: ReadProperty, Device: 7, Object: ObjTemperature})
	respFrame, err := proxy.HandleFrame(frame)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	resp, err := client.Open(respFrame)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if resp.Type != Ack || resp.Value != 20 {
		t.Fatalf("resp = %+v", resp)
	}
	// A second request with the next nonce also works.
	frame = client.Seal(PDU{Type: WriteProperty, Device: 7, Object: ObjSetpoint, Value: 23})
	if _, err := proxy.HandleFrame(frame); err != nil {
		t.Fatalf("second request: %v", err)
	}
	if store.setpoint != 23 {
		t.Fatal("write did not reach the legacy device")
	}
	if proxy.Accepted() != 2 || proxy.Rejected() != 0 {
		t.Fatalf("counters = %d/%d", proxy.Accepted(), proxy.Rejected())
	}
}

func TestSecureProxyRejectsForgery(t *testing.T) {
	key := []byte("real-key")
	proxy := NewProxy(key, NewServer(7, &memStore{}))

	// No key at all: raw legacy frame.
	if _, err := proxy.HandleFrame(PDU{Type: WriteProperty, Device: 7, Object: ObjHeater}.Encode()); err == nil {
		t.Fatal("raw legacy frame accepted")
	}
	// Wrong key.
	wrong := NewSecureClient([]byte("guessed-key"), 1)
	if _, err := proxy.HandleFrame(wrong.Seal(PDU{Type: WriteProperty, Device: 7, Object: ObjHeater})); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("wrong-key err = %v, want ErrBadMAC", err)
	}
	if proxy.Rejected() != 2 {
		t.Fatalf("rejected = %d", proxy.Rejected())
	}
}

func TestSecureProxyRejectsTampering(t *testing.T) {
	key := []byte("real-key")
	proxy := NewProxy(key, NewServer(7, &memStore{}))
	client := NewSecureClient(key, 1)
	frame := client.Seal(PDU{Type: WriteProperty, Device: 7, Object: ObjSetpoint, Value: 22})
	// Flip one bit of the value in flight.
	frame[len(frame)-3] ^= 0x01
	if _, err := proxy.HandleFrame(frame); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("tampered frame err = %v, want ErrBadMAC", err)
	}
}

func TestSecureProxyRejectsReplay(t *testing.T) {
	key := []byte("real-key")
	store := &memStore{}
	proxy := NewProxy(key, NewServer(7, store))
	client := NewSecureClient(key, 1)

	frame := client.Seal(PDU{Type: WriteProperty, Device: 7, Object: ObjSetpoint, Value: 25})
	if _, err := proxy.HandleFrame(frame); err != nil {
		t.Fatalf("original: %v", err)
	}
	store.setpoint = 22 // operator restores it
	if _, err := proxy.HandleFrame(frame); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay err = %v, want ErrReplay", err)
	}
	if store.setpoint != 22 {
		t.Fatal("replay reached the legacy device")
	}
	// Old (lower) nonces from the same client are also dead.
	c2 := NewSecureClient(key, 1) // fresh counter, reuses nonce 1
	if _, err := proxy.HandleFrame(c2.Seal(PDU{Type: ReadProperty, Device: 7, Object: ObjTemperature})); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale nonce err = %v, want ErrReplay", err)
	}
}

func TestSecureClientsAreIndependent(t *testing.T) {
	key := []byte("shared")
	proxy := NewProxy(key, NewServer(7, &memStore{}))
	a := NewSecureClient(key, 1)
	b := NewSecureClient(key, 2)
	if _, err := proxy.HandleFrame(a.Seal(PDU{Type: ReadProperty, Device: 7, Object: ObjTemperature})); err != nil {
		t.Fatalf("a: %v", err)
	}
	// b's first nonce is 1, same number as a's — but a different client id,
	// so it is fresh.
	if _, err := proxy.HandleFrame(b.Seal(PDU{Type: ReadProperty, Device: 7, Object: ObjTemperature})); err != nil {
		t.Fatalf("b: %v", err)
	}
}

func TestClientRejectsResponseReplay(t *testing.T) {
	key := []byte("shared")
	proxy := NewProxy(key, NewServer(7, &memStore{temp: 20}))
	client := NewSecureClient(key, 1)
	first, err := proxy.HandleFrame(client.Seal(PDU{Type: ReadProperty, Device: 7, Object: ObjTemperature}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Open(first); err != nil {
		t.Fatal(err)
	}
	// New request goes out; the attacker answers with the captured old
	// response.
	if _, err := proxy.HandleFrame(client.Seal(PDU{Type: ReadProperty, Device: 7, Object: ObjSetpoint})); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Open(first); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale response err = %v, want ErrReplay", err)
	}
}

func TestSecureFrameTooShort(t *testing.T) {
	proxy := NewProxy([]byte("k"), NewServer(7, &memStore{}))
	if _, err := proxy.HandleFrame([]byte{1, 2, 3}); !errors.Is(err, ErrShortSecure) {
		t.Fatalf("err = %v, want ErrShortSecure", err)
	}
}

func TestProxyRestartReplayWindow(t *testing.T) {
	key := []byte("bsl3-device-key-0001")
	store := &memStore{}
	server := NewServer(7, store)
	proxy := NewProxy(key, server)
	client := NewSecureClient(key, 1)

	frame := client.Seal(PDU{Type: WriteProperty, Device: 7, Object: ObjSetpoint, Value: 25})
	if _, err := proxy.HandleFrame(frame); err != nil {
		t.Fatalf("original: %v", err)
	}
	store.setpoint = 22 // operator restores it

	// The regression this guards against: a proxy restarted with a fresh
	// in-memory nonce table accepts any captured pre-restart frame again.
	fresh := NewProxy(key, server)
	if _, err := fresh.HandleFrame(frame); err != nil {
		t.Fatalf("fresh-table proxy rejected the replay; the reopened window this test documents is gone: %v", err)
	}
	store.setpoint = 22

	// A proxy resumed from the previous incarnation's state keeps the floor.
	resumed := NewProxyResuming(key, server, proxy.State())
	if _, err := resumed.HandleFrame(frame); !errors.Is(err, ErrReplay) {
		t.Fatalf("resumed proxy replay err = %v, want ErrReplay", err)
	}
	if store.setpoint != 22 {
		t.Fatal("pre-restart replay reached the legacy device")
	}
	if resumed.State() != proxy.State() {
		t.Fatal("resumed proxy does not share the live state pointer")
	}

	// Fresh traffic still flows, and advances the shared floor.
	next := client.Seal(PDU{Type: ReadProperty, Device: 7, Object: ObjTemperature})
	if _, err := resumed.HandleFrame(next); err != nil {
		t.Fatalf("post-restart frame: %v", err)
	}
	if got := proxy.State().LastNonce[1]; got != 2 {
		t.Fatalf("shared nonce floor = %d, want 2", got)
	}
}

func TestProxyStateSurvivesJSONPersistence(t *testing.T) {
	key := []byte("k")
	store := &memStore{}
	server := NewServer(7, store)
	proxy := NewProxy(key, server)
	client := NewSecureClient(key, 44)
	frame := client.Seal(PDU{Type: WriteProperty, Device: 7, Object: ObjSetpoint, Value: 25})
	if _, err := proxy.HandleFrame(frame); err != nil {
		t.Fatal(err)
	}

	// Persist the floor the way a real bump-in-the-wire box would (flash,
	// config partition), then seed a brand-new proxy from the decoded copy.
	blob, err := json.Marshal(proxy.State())
	if err != nil {
		t.Fatal(err)
	}
	restored := NewProxyState()
	if err := json.Unmarshal(blob, restored); err != nil {
		t.Fatal(err)
	}
	rebooted := NewProxyResuming(key, server, restored)
	if _, err := rebooted.HandleFrame(frame); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay after persisted restart err = %v, want ErrReplay", err)
	}
}

func TestPDUQuickRoundTripThroughFraming(t *testing.T) {
	// Property: any well-formed PDU survives encode → frame → deframe →
	// decode, even when the byte stream arrives one byte at a time — the
	// path every bus frame takes through a gateway connection.
	f := func(typ uint8, invoke uint8, device uint32, object uint16, value float64, code uint8) bool {
		p := PDU{
			Type:     PDUType(typ%4 + 1),
			InvokeID: invoke,
			Device:   device,
			Object:   ObjectID(object),
			Value:    value,
			Code:     code,
		}
		var d Deframer
		for _, b := range Frame(p.Encode()) {
			d.Feed([]byte{b})
		}
		raw := d.Next()
		if raw == nil {
			return false
		}
		got, err := DecodePDU(raw)
		if err != nil {
			return false
		}
		return got == p && d.Next() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
