package aadl

import (
	"fmt"

	"mkbas/internal/core"
)

// analyze performs the semantic checks the AADL workbench would: every
// subcomponent's process type exists, connections reference real ports with
// compatible directions, every process carries a unique AC_ID, and message
// types fit the ACM's 0..63 space.
func analyze(pkg *Package) error {
	seenProc := make(map[string]bool, len(pkg.Processes))
	for _, proc := range pkg.Processes {
		if seenProc[proc.Name] {
			return &SemanticError{Line: proc.Line, Msg: fmt.Sprintf("duplicate process %q", proc.Name)}
		}
		seenProc[proc.Name] = true
		seenPort := make(map[string]bool, len(proc.Ports))
		for _, port := range proc.Ports {
			if seenPort[port.Name] {
				return &SemanticError{Line: port.Line, Msg: fmt.Sprintf("duplicate port %q in %q", port.Name, proc.Name)}
			}
			seenPort[port.Name] = true
		}
	}

	acids := make(map[int64]string, len(pkg.Processes))
	for _, proc := range pkg.Processes {
		id := proc.ACID()
		if id == 0 {
			return &SemanticError{Line: proc.Line, Msg: fmt.Sprintf("process %q has no AC_ID property", proc.Name)}
		}
		if id < 0 || id > int64(^uint32(0)) {
			return &SemanticError{Line: proc.Line, Msg: fmt.Sprintf("process %q AC_ID %d out of range", proc.Name, id)}
		}
		if other, dup := acids[id]; dup {
			return &SemanticError{Line: proc.Line, Msg: fmt.Sprintf("AC_ID %d assigned to both %q and %q", id, other, proc.Name)}
		}
		acids[id] = proc.Name
	}

	for i := range pkg.Systems {
		sys := &pkg.Systems[i]
		seenSub := make(map[string]bool, len(sys.Subcomponents))
		for _, sub := range sys.Subcomponents {
			if seenSub[sub.Name] {
				return &SemanticError{Line: sub.Line, Msg: fmt.Sprintf("duplicate subcomponent %q", sub.Name)}
			}
			seenSub[sub.Name] = true
			if _, ok := pkg.Process(sub.ProcessType); !ok {
				return &SemanticError{Line: sub.Line, Msg: fmt.Sprintf("subcomponent %q references unknown process %q", sub.Name, sub.ProcessType)}
			}
		}
		for _, conn := range sys.Connections {
			srcPort, err := resolvePort(pkg, sys, conn.Src, conn.Line)
			if err != nil {
				return err
			}
			dstPort, err := resolvePort(pkg, sys, conn.Dst, conn.Line)
			if err != nil {
				return err
			}
			if srcPort.Direction != DirOut {
				return &SemanticError{Line: conn.Line, Msg: fmt.Sprintf("connection %q source %s is not an out port", conn.Label, conn.Src)}
			}
			if dstPort.Direction != DirIn {
				return &SemanticError{Line: conn.Line, Msg: fmt.Sprintf("connection %q destination %s is not an in port", conn.Label, conn.Dst)}
			}
			for _, mt := range conn.MessageTypes() {
				if mt < 0 || mt > int64(core.MaxMsgType) {
					return &SemanticError{Line: conn.Line, Msg: fmt.Sprintf("connection %q message type %d outside 0..%d", conn.Label, mt, core.MaxMsgType)}
				}
			}
		}
	}
	return nil
}

// resolvePort maps a PortRef to its declared port.
func resolvePort(pkg *Package, sys *SystemImpl, ref PortRef, line int) (Port, error) {
	sub, ok := sys.Sub(ref.Component)
	if !ok {
		return Port{}, &SemanticError{Line: line, Msg: fmt.Sprintf("unknown subcomponent %q", ref.Component)}
	}
	proc, _ := pkg.Process(sub.ProcessType)
	port, ok := proc.Port(ref.Port)
	if !ok {
		return Port{}, &SemanticError{Line: line, Msg: fmt.Sprintf("process %q has no port %q", sub.ProcessType, ref.Port)}
	}
	return port, nil
}
