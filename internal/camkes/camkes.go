// Package camkes implements a CAmkES-style component framework (Section
// III-D) on top of the internal/sel4 kernel.
//
// A system is described as an Assembly: component instances plus
// seL4RPCCall connections between "uses" (client) and "provides" (server)
// procedure interfaces. Build plays the role of the CAmkES glue-code
// generator and the CapDL-generated bootstrap process rolled into one: it
// creates one endpoint per provided interface, one server thread per
// provided interface (so "the malicious web interface could [not]
// indefinitely block one of the temperature controller's threads"), mints
// badged client capabilities for every connection, installs device and
// network-port capabilities, and emits the capdl.Spec describing the
// finished distribution so it can be verified against the kernel.
//
// RPC wire format: request Label = method number, Words = arguments; reply
// Label = 0 for success or an error code, Words = results.
package camkes

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mkbas/internal/capdl"
	"mkbas/internal/machine"
	"mkbas/internal/obs"
	"mkbas/internal/sel4"
	"mkbas/internal/vnet"
)

// Slot layout for generated CSpaces. Fixed and documented so CapDL specs are
// readable: the provides endpoint (interface threads only) sits at slot 0,
// client capabilities for uses-interfaces start at SlotUsesBase, devices and
// network ports follow.
const (
	// SlotProvides is the interface thread's own endpoint capability.
	SlotProvides sel4.CPtr = 0
	// SlotUsesBase is the first client capability slot.
	SlotUsesBase sel4.CPtr = 10
	// SlotDeviceBase is the first device capability slot.
	SlotDeviceBase sel4.CPtr = 40
	// SlotNetBase is the first network-port capability slot.
	SlotNetBase sel4.CPtr = 60
)

// Handler serves one provided procedure interface. It runs on the
// interface's dedicated thread; badge identifies the calling connection.
type Handler func(rt *Runtime, method uint64, args []uint64, badge sel4.Badge) ([]uint64, error)

// Component is one CAmkES component definition/instance.
type Component struct {
	// Name is the instance name.
	Name string
	// Priority applies to all the component's threads.
	Priority int
	// Uses lists procedure interfaces this component is a client of.
	Uses []string
	// Provides maps provided interface names to their handlers; each gets
	// its own server thread.
	Provides map[string]Handler
	// Emits lists event interfaces this component raises.
	Emits []string
	// Consumes lists event interfaces this component waits on.
	Consumes []string
	// Run, if non-nil, is the component's active control thread.
	Run func(rt *Runtime)
	// Devices lists bus devices the component's threads get capabilities
	// for.
	Devices []machine.DeviceID
	// NetPorts lists network ports the component's threads get capabilities
	// for.
	NetPorts []vnet.Port
}

// Connection is a seL4RPCCall connection from a component's uses-interface
// to another component's provides-interface.
type Connection struct {
	FromComp  string
	FromIface string
	ToComp    string
	ToIface   string
}

// Assembly is the complete system description.
type Assembly struct {
	Components []*Component
	// Connections are seL4RPCCall (procedure) connections.
	Connections []Connection
	// EventConnections connect an emits-interface to a consumes-interface
	// (seL4Notification connections).
	EventConnections []Connection
}

// Build errors.
var (
	ErrBadAssembly = errors.New("camkes: invalid assembly")
)

// Runtime is the per-thread view a component's code receives: RPC client
// stubs for its uses-interfaces plus device and network access through the
// thread's capabilities.
type Runtime struct {
	api  *sel4.API
	comp *Component

	uses     map[string]sel4.CPtr
	devs     map[machine.DeviceID]sel4.CPtr
	ports    map[vnet.Port]sel4.CPtr
	emits    map[string]sel4.CPtr
	consumes map[string]sel4.CPtr
}

// RPCError carries a non-zero reply label from a remote handler.
type RPCError struct {
	Iface string
	Code  uint64
}

func (e *RPCError) Error() string {
	return fmt.Sprintf("camkes: rpc on %q failed with code %d", e.Iface, e.Code)
}

// Call invokes method on the connected provider of a uses-interface.
func (rt *Runtime) Call(iface string, method uint64, args ...uint64) ([]uint64, error) {
	slot, ok := rt.uses[iface]
	if !ok {
		return nil, fmt.Errorf("%w: component %q does not use %q", ErrBadAssembly, rt.comp.Name, iface)
	}
	if len(args) > sel4.MsgWords {
		return nil, fmt.Errorf("camkes: too many arguments (%d)", len(args))
	}
	msg := sel4.Msg{Label: method}
	copy(msg.Words[:], args)
	reply, err := rt.api.Call(slot, msg)
	if err != nil {
		return nil, err
	}
	if reply.Label != 0 {
		return nil, &RPCError{Iface: iface, Code: reply.Label}
	}
	out := make([]uint64, sel4.MsgWords)
	copy(out, reply.Words[:])
	return out, nil
}

// DevRead reads a device register through the component's device capability.
func (rt *Runtime) DevRead(dev machine.DeviceID, reg uint32) (uint32, error) {
	slot, ok := rt.devs[dev]
	if !ok {
		return 0, fmt.Errorf("%w: component %q has no device %q", ErrBadAssembly, rt.comp.Name, dev)
	}
	return rt.api.DevRead(slot, reg)
}

// DevWrite writes a device register through the component's device
// capability.
func (rt *Runtime) DevWrite(dev machine.DeviceID, reg uint32, value uint32) error {
	slot, ok := rt.devs[dev]
	if !ok {
		return fmt.Errorf("%w: component %q has no device %q", ErrBadAssembly, rt.comp.Name, dev)
	}
	return rt.api.DevWrite(slot, reg, value)
}

// NetListen binds one of the component's network-port capabilities.
func (rt *Runtime) NetListen(port vnet.Port) (int32, error) {
	slot, ok := rt.ports[port]
	if !ok {
		return 0, fmt.Errorf("%w: component %q has no port %d", ErrBadAssembly, rt.comp.Name, port)
	}
	return rt.api.NetListen(slot)
}

// NetAccept / NetRead / NetWrite / NetClose wrap the thread's network
// handles.
func (rt *Runtime) NetAccept(listener int32) (int32, error) { return rt.api.NetAccept(listener) }

// NetRead blocks until data or EOF is available.
func (rt *Runtime) NetRead(conn int32, max int) ([]byte, error) { return rt.api.NetRead(conn, max) }

// NetWrite sends bytes on a connection handle.
func (rt *Runtime) NetWrite(conn int32, data []byte) error { return rt.api.NetWrite(conn, data) }

// NetClose closes a connection handle.
func (rt *Runtime) NetClose(conn int32) error { return rt.api.NetClose(conn) }

// Sleep parks the thread for a virtual duration.
func (rt *Runtime) Sleep(d time.Duration) { rt.api.Sleep(d) }

// Now returns the current virtual time.
func (rt *Runtime) Now() machine.Time { return rt.api.Now() }

// Trace writes to the board trace console.
func (rt *Runtime) Trace(tag, text string) { rt.api.Trace(tag, text) }

// API exposes the raw seL4 API, used by attack bodies that deliberately step
// outside the glue (brute-forcing slots, attempting suspends).
func (rt *Runtime) API() *sel4.API { return rt.api }

// UsesSlot reports the CSpace slot of a uses-interface capability (attack
// code inspects this; regular components use Call).
func (rt *Runtime) UsesSlot(iface string) (sel4.CPtr, bool) {
	s, ok := rt.uses[iface]
	return s, ok
}

// System is a built, running assembly.
type System struct {
	kernel   *sel4.Kernel
	spec     *capdl.Spec
	assembly *Assembly
	bind     capdl.Binding

	// ifaceEP maps "comp.iface" to its endpoint object.
	ifaceEP map[string]sel4.ObjID
	// tcbs maps thread names ("comp" for control, "comp.iface" for
	// interface threads) to TCB ids.
	tcbs map[string]sel4.ObjID
	// restarts counts Respawn calls per thread name.
	restarts map[string]int
}

// Kernel returns the underlying seL4 kernel.
func (s *System) Kernel() *sel4.Kernel { return s.kernel }

// Spec returns the generated CapDL description.
func (s *System) Spec() *capdl.Spec { return s.spec }

// Verify checks the kernel's live capability distribution against the
// generated CapDL spec.
func (s *System) Verify() error { return capdl.Verify(s.spec, s.kernel, s.bind) }

// TCB returns the TCB object id for a thread name ("comp" or "comp.iface").
func (s *System) TCB(name string) (sel4.ObjID, bool) {
	id, ok := s.tcbs[name]
	return id, ok
}

// ThreadAlive reports whether the named thread is currently running.
func (s *System) ThreadAlive(name string) bool {
	id, ok := s.tcbs[name]
	return ok && s.kernel.ThreadAlive(id)
}

// ThreadNames returns every generated thread name in stable order.
func (s *System) ThreadNames() []string {
	out := make([]string, 0, len(s.tcbs))
	for name := range s.tcbs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CrashThread kills a thread by name (fault injection).
func (s *System) CrashThread(name string) error {
	id, ok := s.tcbs[name]
	if !ok {
		return fmt.Errorf("%w: no thread %q", ErrBadAssembly, name)
	}
	return s.kernel.KillThread(id)
}

// Restarts reports how many times a thread has been respawned.
func (s *System) Restarts(name string) int { return s.restarts[name] }

// TotalRestarts sums Respawn counts over all threads.
func (s *System) TotalRestarts() int {
	n := 0
	for _, c := range s.restarts {
		n += c
	}
	return n
}

// Respawn reincarnates a dead thread: a fresh TCB running the same generated
// body, with the capability distribution re-installed from the CapDL spec —
// the component-level analogue of MINIX's reincarnation server, implemented
// in a monitor component rather than the kernel (seL4 itself has no restart
// policy; policy lives in user space). Refuses while the thread is alive.
func (s *System) Respawn(name string) error {
	if s.ThreadAlive(name) {
		return fmt.Errorf("camkes: thread %q is still alive", name)
	}
	comp, iface, err := s.findThread(name)
	if err != nil {
		return err
	}
	var specTCB *capdl.TCBSpec
	for i := range s.spec.TCBs {
		if s.spec.TCBs[i].Name == name {
			specTCB = &s.spec.TCBs[i]
			break
		}
	}
	if specTCB == nil {
		return fmt.Errorf("%w: spec has no thread %q", ErrBadAssembly, name)
	}
	tcbID := s.kernel.CreateThread(name, comp.Priority, threadBody(comp, iface))
	if err := s.installSpecCaps(tcbID, *specTCB); err != nil {
		return err
	}
	if err := s.kernel.Start(tcbID); err != nil {
		return err
	}
	s.tcbs[name] = tcbID
	s.bind.TCBs[name] = tcbID
	s.restarts[name]++
	s.kernel.Events().Emit(obs.SecurityEvent{
		Kind:      obs.EventRestart,
		Mechanism: obs.MechRecovery,
		Src:       "monitor",
		Dst:       name,
		Detail:    fmt.Sprintf("respawn #%d", s.restarts[name]),
	})
	return nil
}

// findThread resolves a generated thread name back to its component and
// interface ("" for the control thread).
func (s *System) findThread(name string) (*Component, string, error) {
	for _, comp := range s.assembly.Components {
		for _, th := range componentThreads(comp) {
			if th.name == name {
				return comp, th.iface, nil
			}
		}
	}
	return nil, "", fmt.Errorf("%w: no thread %q", ErrBadAssembly, name)
}
