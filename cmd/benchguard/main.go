// Command benchguard compares freshly recorded bench reports against the
// checked-in baselines on the board_steps_per_sec axis and exits nonzero on
// a regression beyond the tolerance. check.sh runs it after re-recording
// BENCH_*.json so an accidental hot-path pessimisation (an O(n²) merge, a
// lock inside the step loop) fails the gate instead of landing silently.
//
// The comparison is best-of across worker counts, so pool-width scheduling
// noise cancels; the default tolerance is deliberately generous (host
// benchmarks on shared CI boxes jitter) — this guard catches collapses,
// not percent-level drift. A fresh record whose determinism bit is false
// always fails, regardless of throughput.
//
// Usage:
//
//	benchguard                                    # compare ./BENCH_*.json vs scripts/bench_baselines
//	benchguard -tolerance 0.6                     # allow up to a 60% throughput loss
//	benchguard -fresh /tmp/run -files BENCH_lab.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mkbas/internal/lab"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run() error {
	baselines := flag.String("baselines", "scripts/bench_baselines", "directory holding the checked-in baseline records")
	fresh := flag.String("fresh", ".", "directory holding the freshly recorded records")
	files := flag.String("files", "BENCH_lab.json,BENCH_faults.json,BENCH_building.json,BENCH_api.json", "comma list of record file names to compare")
	tolerance := flag.Float64("tolerance", 0.5, "allowed fractional throughput loss before failing (0.5 = fail below half the baseline rate)")
	flag.Parse()

	if *tolerance < 0 || *tolerance >= 1 {
		return fmt.Errorf("tolerance %v out of range [0,1)", *tolerance)
	}

	failed := 0
	for _, name := range strings.Split(*files, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		freshRep, err := lab.LoadBench(filepath.Join(*fresh, name))
		if err != nil {
			return fmt.Errorf("fresh record: %w", err)
		}
		// A missing baseline passes with a note: the first run on a new axis
		// has nothing to regress against. Check the file in to arm the guard.
		var baseRep *lab.BenchReport
		if rep, err := lab.LoadBench(filepath.Join(*baselines, name)); err == nil {
			baseRep = rep
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("baseline record: %w", err)
		}
		res := lab.CompareBench(name, baseRep, freshRep, *tolerance)
		verdict := "ok"
		if !res.OK {
			verdict = "FAIL"
			failed++
		}
		line := fmt.Sprintf("%-4s %-22s fresh %10.1f baseline %10.1f %s", verdict, res.Name, res.FreshBest, res.BaselineBest, res.Unit)
		if res.Ratio > 0 {
			line += fmt.Sprintf("  ratio %.2f", res.Ratio)
		}
		if res.Reason != "" {
			line += "  (" + res.Reason + ")"
		}
		fmt.Println(line)
	}
	if failed > 0 {
		return fmt.Errorf("%d record(s) regressed beyond tolerance %.2f", failed, *tolerance)
	}
	return nil
}
