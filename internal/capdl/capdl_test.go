package capdl

import (
	"errors"
	"strings"
	"testing"

	"mkbas/internal/machine"
	"mkbas/internal/sel4"
)

func sampleSpec() *Spec {
	s := &Spec{}
	s.AddObject("ep_ctrl", sel4.KindEndpoint)
	s.AddObject("dev_sensor", sel4.KindDevice)
	s.AddCap("web", CapSpec{Slot: 10, Object: "ep_ctrl", Rights: sel4.CapWrite | sel4.CapGrant, Badge: 104})
	s.AddCap("driver", CapSpec{Slot: 1, Object: "ep_ctrl", Rights: sel4.CapRead})
	s.AddCap("driver", CapSpec{Slot: 40, Object: "dev_sensor", Rights: sel4.RightsRW})
	return s
}

func TestRenderDeterministic(t *testing.T) {
	s := sampleSpec()
	first := s.Render()
	for i := 0; i < 5; i++ {
		if got := s.Render(); got != first {
			t.Fatal("Render not deterministic")
		}
	}
	for _, want := range []string{
		"ep_ctrl = ep",
		"dev_sensor = device",
		"10: ep_ctrl (-wg, badge: 104)",
		"40: dev_sensor (rw-, badge: 0)",
	} {
		if !strings.Contains(first, want) {
			t.Errorf("render missing %q:\n%s", want, first)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	s := sampleSpec()
	parsed, err := Parse(s.Render())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed.Render() != s.Render() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", s.Render(), parsed.Render())
	}
}

func TestParseToleratesCommentsAndBlankLines(t *testing.T) {
	text := `
# a comment
objects {
  e1 = ep

  t1 = tcb
}
caps {
  thread {
    3: e1 (rw-, badge: 9)
  }
}
`
	s, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tcb := s.TCB("thread")
	if tcb == nil || len(tcb.Caps) != 1 || tcb.Caps[0].Badge != 9 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"objects {\n  garbage line without equals\n}",
		"objects {\n  x = nosuchkind\n}",
		"caps {\n  t {\n    notanumber: obj (rw-, badge: 0)\n  }\n}",
		"caps {\n  t {\n    1: obj (zz-, badge: 0)\n  }\n}",
		"caps {\n  t {\n    1: obj (rw-, badge: abc)\n  }\n}",
		"caps {\n  t {\n    1: obj missingparens\n  }\n}",
		"floating text",
	}
	for _, text := range cases {
		if _, err := Parse(text); !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) err = %v, want ErrParse", text, err)
		}
	}
}

// buildKernel boots a tiny kernel matching sampleSpec.
func buildKernel(t *testing.T) (*sel4.Kernel, Binding, func()) {
	t.Helper()
	m := machine.New(machine.Config{})
	k := sel4.NewKernel(m, sel4.Config{})
	ep := k.CreateEndpoint("ctrl")
	dev := k.CreateDevice("sensor")
	web := k.CreateThread("web", 7, func(api *sel4.API) {})
	driver := k.CreateThread("driver", 7, func(api *sel4.API) {})
	if err := k.InstallCap(web, 10, sel4.EndpointCap(ep, sel4.CapWrite|sel4.CapGrant, 104)); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallCap(driver, 1, sel4.EndpointCap(ep, sel4.CapRead, 0)); err != nil {
		t.Fatal(err)
	}
	if err := k.InstallCap(driver, 40, sel4.DeviceCap(dev, sel4.RightsRW)); err != nil {
		t.Fatal(err)
	}
	bind := Binding{
		Objects: map[string]sel4.ObjID{"ep_ctrl": ep, "dev_sensor": dev},
		TCBs:    map[string]sel4.ObjID{"web": web, "driver": driver},
	}
	return k, bind, m.Shutdown
}

func TestVerifyExactMatch(t *testing.T) {
	k, bind, done := buildKernel(t)
	defer done()
	if err := Verify(sampleSpec(), k, bind); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyDetectsMissingCap(t *testing.T) {
	k, bind, done := buildKernel(t)
	defer done()
	spec := sampleSpec()
	spec.AddCap("web", CapSpec{Slot: 99, Object: "ep_ctrl", Rights: sel4.CapRead})
	err := Verify(spec, k, bind)
	if !errors.Is(err, ErrVerify) || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v, want missing-cap verify error", err)
	}
}

func TestVerifyDetectsWrongRightsAndBadge(t *testing.T) {
	k, bind, done := buildKernel(t)
	defer done()
	spec := sampleSpec()
	spec.TCB("web").Caps[0].Badge = 999
	if err := Verify(spec, k, bind); !errors.Is(err, ErrVerify) {
		t.Fatalf("badge mismatch not caught: %v", err)
	}
	spec = sampleSpec()
	spec.TCB("driver").Caps[0].Rights = sel4.RightsRWG
	if err := Verify(spec, k, bind); !errors.Is(err, ErrVerify) {
		t.Fatalf("rights mismatch not caught: %v", err)
	}
}

func TestVerifyDetectsUnboundNames(t *testing.T) {
	k, bind, done := buildKernel(t)
	defer done()
	spec := sampleSpec()
	spec.AddCap("ghost-thread", CapSpec{Slot: 0, Object: "ep_ctrl", Rights: sel4.CapRead})
	if err := Verify(spec, k, bind); !errors.Is(err, ErrVerify) {
		t.Fatalf("unbound thread not caught: %v", err)
	}
	spec = sampleSpec()
	spec.TCB("web").Caps[0].Object = "ghost-object"
	if err := Verify(spec, k, bind); !errors.Is(err, ErrVerify) {
		t.Fatalf("unbound object not caught: %v", err)
	}
}

func TestVerifyDetectsExtraCapability(t *testing.T) {
	k, bind, done := buildKernel(t)
	defer done()
	// The kernel grows a capability the spec never declared.
	if err := k.InstallCap(bind.TCBs["web"], 200, sel4.TCBCap(bind.TCBs["driver"], sel4.CapWrite)); err != nil {
		t.Fatal(err)
	}
	err := Verify(sampleSpec(), k, bind)
	if !errors.Is(err, ErrVerify) || !strings.Contains(err.Error(), "EXTRA") {
		t.Fatalf("extra capability not caught: %v", err)
	}
}

func TestSpecTCBLookup(t *testing.T) {
	s := sampleSpec()
	if s.TCB("web") == nil || s.TCB("nobody") != nil {
		t.Fatal("TCB lookup wrong")
	}
}

// TestNotificationRoundTrip locks the parser's notification support: a spec
// declaring a notification object must survive Render -> Parse unchanged
// (regression for parseKind rejecting "notification").
func TestNotificationRoundTrip(t *testing.T) {
	s := &Spec{}
	s.AddObject("ntfn_alarm", sel4.KindNotification)
	s.AddCap("web", CapSpec{Slot: 3, Object: "ntfn_alarm", Rights: sel4.CapWrite, Badge: 2})
	rendered := s.Render()
	if !strings.Contains(rendered, "ntfn_alarm = notification") {
		t.Fatalf("render missing notification object:\n%s", rendered)
	}
	parsed, err := Parse(rendered)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed.Render() != rendered {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", rendered, parsed.Render())
	}
}

// TestVerifyReportsCapsOfError covers the error path where a spec thread is
// bound to an object ID the kernel does not recognise as a TCB: Verify must
// report the thread by name instead of panicking or silently passing.
func TestVerifyReportsCapsOfError(t *testing.T) {
	k, bind, done := buildKernel(t)
	defer done()
	// Rebind "web" to the endpoint's object ID — a live object, but not a TCB.
	bind.TCBs["web"] = bind.Objects["ep_ctrl"]
	err := Verify(sampleSpec(), k, bind)
	if !errors.Is(err, ErrVerify) || !strings.Contains(err.Error(), `thread "web"`) {
		t.Fatalf("err = %v, want verify error naming thread web", err)
	}
}

// TestVerifyMismatchNamesExpectation: a rights mismatch must print both what
// the kernel holds and what the spec wants, so the report is actionable.
func TestVerifyMismatchNamesExpectation(t *testing.T) {
	k, bind, done := buildKernel(t)
	defer done()
	spec := sampleSpec()
	spec.TCB("driver").Caps[1].Rights = sel4.CapWrite
	err := Verify(spec, k, bind)
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("err = %v, want ErrVerify", err)
	}
	for _, want := range []string{"driver slot 40", "have", "want dev_sensor"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("verify error missing %q: %v", want, err)
		}
	}
}
