package attack

import (
	"fmt"
	"strings"
	"time"

	"mkbas/internal/bacnet"
	"mkbas/internal/bas"
	"mkbas/internal/building"
	"mkbas/internal/faultinject"
	"mkbas/internal/perf"
	"mkbas/internal/safety"
	"mkbas/internal/vnet"
)

// The lateral-movement scenario (experiment E11): the paper's single-board
// threat model scaled to a building. The web interface of room 0 is
// compromised; instead of (or after) fighting its own board's mediation, the
// attacker pivots onto the inter-board BAS bus — the flat legacy field
// network every room shares — and attacks its siblings from there:
//
//   - spoofing: forged legacy WriteProperty frames that command sibling
//     setpoints to a damaging value;
//   - replay: frames captured off the shared medium (the head-end's own
//     traffic) played back verbatim at secure rooms.
//
// Rooms behind the secure proxy reject both (HMAC + nonce freshness);
// legacy rooms accept the forgery and physically overheat. The per-room
// verdict table is the building-scale version of the paper's Section IV-D
// comparison.

// BuildingSpec configures one lateral-movement run.
type BuildingSpec struct {
	// Rooms, Mix, Secure, Recovery, Seed, Slice mirror building.Config.
	Rooms    int            `json:"rooms"`
	Mix      []bas.Platform `json:"mix"`
	Secure   []bool         `json:"secure"`
	Recovery bool           `json:"recovery,omitempty"`
	Seed     int64          `json:"seed,omitempty"`
	Slice    time.Duration  `json:"slice,omitempty"`
	// Workers only trades wall-clock time; it is excluded from the report
	// JSON so runs at different worker counts stay byte-identical.
	Workers int `json:"-"`
	// Attack enables the room-0 attacker; false runs the baseline building.
	Attack bool `json:"attack"`
	// Settle is how long the building runs before the attacker wakes
	// (default 30m); Window is the attack window after it (default 90m).
	Settle time.Duration `json:"settle"`
	Window time.Duration `json:"window"`
	// Faults arms builtin fault-injection plans per room (building.Config).
	Faults map[int]string `json:"faults,omitempty"`
	// BusFaults arms a bus-level fault plan on the building: partitions,
	// frame drops/delays/duplication, head-end crash (building.Config).
	BusFaults string `json:"bus_faults,omitempty"`
	// Standby attaches the standby head-end (building.Config.Standby).
	Standby bool `json:"standby,omitempty"`
	// TenantAPI attaches the building-scale tenant API tier with its
	// deterministic per-round occupant traffic (building.Config.TenantAPI).
	TenantAPI bool `json:"tenant_api,omitempty"`
	// Monitor attaches the online policy monitor to every board and arms the
	// bus dial guard in observe-only mode (building.Config.Monitor).
	Monitor bool `json:"monitor,omitempty"`
	// Demote upgrades the monitor to enforcement: uncertified bus dials are
	// refused and the offending room's web subject is demoted to the
	// untrusted origin (building.Config.Demote). Implies Monitor.
	Demote bool `json:"demote,omitempty"`
	// Profiler attaches the host-side performance profiler to the building
	// (building.Config.Profiler). Excluded from the report JSON like Workers:
	// host profiling must not perturb the byte-identical contract.
	Profiler *perf.Profiler `json:"-"`
}

func (s BuildingSpec) withDefaults() BuildingSpec {
	if s.Settle <= 0 {
		s.Settle = settleTime
	}
	if s.Window <= 0 {
		s.Window = 90 * time.Minute
	}
	return s
}

// Duration reports the virtual time one run of the spec simulates (settle
// plus attack window, after defaulting) — the numerator of bench step-rates.
func (s BuildingSpec) Duration() time.Duration {
	s = s.withDefaults()
	return s.Settle + s.Window
}

// RoomOutcome is one room's row in the lateral-movement verdict table.
type RoomOutcome struct {
	Room     int    `json:"room"`
	Platform string `json:"platform"`
	Secure   bool   `json:"secure"`
	// Verdict: FOOTHOLD for the attacker's own room; COMPROMISED when
	// ground-truth safety monitors recorded violations (or the controller
	// died); RECOVERED when every violation falls inside an injected fault's
	// effect window and the controller is back up — the room was hurt by the
	// fault, not beaten by it; else SECURE.
	Verdict string `json:"verdict"`

	ControllerAlive bool `json:"controller_alive"`
	Violations      int  `json:"violations"`

	// The attacker's per-room tally: forged legacy writes and captured-frame
	// replays, split by whether the room answered with an Ack.
	ForgedAccepted  int `json:"forged_accepted"`
	ForgedDenied    int `json:"forged_denied"`
	ReplaysAccepted int `json:"replays_accepted"`
	ReplaysDenied   int `json:"replays_denied"`

	// FramesRejected is the room gateway's own drop counter (secure proxy).
	FramesRejected int64 `json:"frames_rejected"`
	// BMSFlagged: the supervisory head-end flagged this room.
	BMSFlagged bool `json:"bms_flagged"`

	Restarts  int  `json:"restarts,omitempty"`
	Recovered bool `json:"recovered,omitempty"`

	// Resilience columns: rounds the BMS could not reach the room at all,
	// whether the BMS quarantined it, head-end failovers the room observed,
	// and how many of its safety violations fall inside a fault's effect
	// window (its own board campaign or its share of the bus campaign).
	UnreachableRounds     int  `json:"unreachable_rounds,omitempty"`
	Quarantined           bool `json:"quarantined,omitempty"`
	Failovers             int  `json:"failovers,omitempty"`
	ViolationsDuringFault int  `json:"violations_during_fault,omitempty"`

	// Policy-monitor columns (absent unless BuildingSpec.Monitor/Demote).
	PolicyDrifts int64 `json:"policy_drifts,omitempty"`
	OriginDrifts int64 `json:"origin_drifts,omitempty"`
	BusDrifts    int64 `json:"bus_drifts,omitempty"`
	BusRefused   int64 `json:"bus_refused,omitempty"`
	Demoted      bool  `json:"demoted,omitempty"`
}

// BuildingReport is the outcome of one building run.
type BuildingReport struct {
	Spec     BuildingSpec  `json:"spec"`
	Outcomes []RoomOutcome `json:"outcomes"`

	// Alarm/Flagged: the head-end's final judgement.
	Alarm   bool  `json:"alarm"`
	Flagged []int `json:"flagged"`

	// CapturedFrames counts head-end frames the attacker sniffed off the bus.
	CapturedFrames int `json:"captured_frames"`
	// Notes carries attacker observations.
	Notes []string `json:"notes,omitempty"`

	// Building is the full per-room + aggregate building report.
	Building *building.Report `json:"building"`
}

// Compromised lists rooms whose verdict is COMPROMISED.
func (r *BuildingReport) Compromised() []int {
	var out []int
	for _, o := range r.Outcomes {
		if o.Verdict == "COMPROMISED" {
			out = append(out, o.Room)
		}
	}
	return out
}

// attackSetpoint is the forged sibling setpoint: inside the controller's
// permitted range (so legacy rooms accept it) but far outside the safety
// band (so accepting it is a physical compromise).
const attackSetpoint = 28.0

// probeHarvestDelay is how long the attacker leaves a probe connection open
// before reading the answer and hanging up — two bus rounds covers the
// round-trip, and closing promptly keeps the serial gateways available for
// the head-end's polls.
const probeHarvestDelay = 2 * time.Second

// sealedHeaderLen mirrors the secure frame layout (client id 4, nonce 8,
// MAC 32). The attacker cannot forge the MAC, but the layout is public — it
// uses the offset to pick WriteProperty frames out of its captures.
const sealedHeaderLen = 4 + 8 + 32

// pendingProbe is one in-flight attack frame awaiting its answer.
type pendingProbe struct {
	room   int
	replay bool
	conn   *vnet.BusConn
}

// lateralAttacker runs inside room 0's virtual machine: its callbacks
// execute on room 0's engine (the compromised web interface's board), its
// frames originate from room 0's bus node, and its bus tap models the shared
// medium any on-bus device can sniff.
type lateralAttacker struct {
	b        *building.Building
	interval time.Duration

	// Per sibling room: the freshest captured head-end frame (any), and the
	// freshest captured WriteProperty (preferred for replay).
	capturedAny   [][]byte
	capturedWrite [][]byte
	captureCount  int

	pending []pendingProbe
	seq     uint8

	forgedAccepted, forgedDenied   []int
	replaysAccepted, replaysDenied []int
	notes                          []string
}

func newLateralAttacker(b *building.Building) *lateralAttacker {
	n := len(b.Rooms)
	return &lateralAttacker{
		b:               b,
		interval:        time.Minute,
		capturedAny:     make([][]byte, n),
		capturedWrite:   make([][]byte, n),
		forgedAccepted:  make([]int, n),
		forgedDenied:    make([]int, n),
		replaysAccepted: make([]int, n),
		replaysDenied:   make([]int, n),
	}
}

// arm installs the bus tap (capture starts immediately — the attacker sniffs
// the settle phase's head-end traffic) and schedules the first volley on
// room 0's clock.
func (a *lateralAttacker) arm(settle time.Duration) {
	a.b.Bus.SetTap(a.tap)
	a.after(settle, a.volley)
	a.note("foothold: room 0 web interface (%s), pivoting onto the BAS bus", a.b.Rooms[0].Platform)
}

func (a *lateralAttacker) after(d time.Duration, fn func()) {
	a.b.Rooms[0].Testbed.Machine.Clock().After(d, fn)
}

func (a *lateralAttacker) note(format string, args ...any) {
	a.notes = append(a.notes, fmt.Sprintf(format, args...))
}

// tap observes every delivered bus chunk (the coordinator calls it during
// the delivery barrier, so it must only touch capture state). The attacker
// keeps the freshest head-end frame per secure sibling, preferring
// WriteProperty — the frame worth replaying.
func (a *lateralAttacker) tap(f vnet.TapFrame) {
	if f.From != a.b.HeadNode() || f.Port != bas.BACnetPort {
		return
	}
	room := int(f.To)
	if room <= 0 || room >= len(a.b.Rooms) || !a.b.Rooms[room].Secure {
		return
	}
	a.captureCount++
	a.capturedAny[room] = f.Payload
	var d bacnet.Deframer
	d.Feed(f.Payload)
	raw := d.Next()
	if raw == nil || len(raw) < sealedHeaderLen {
		return
	}
	if pdu, err := bacnet.DecodePDU(raw[sealedHeaderLen:]); err == nil && pdu.Type == bacnet.WriteProperty {
		a.capturedWrite[room] = f.Payload
	}
}

// volley fires one attack round at every sibling: a forged legacy setpoint
// write, plus (at secure rooms) a verbatim replay of a captured head-end
// frame. Answers are harvested — and the connections closed — two rounds
// later, so the serial gateways are never starved.
func (a *lateralAttacker) volley() {
	self := a.b.Rooms[0]
	for _, room := range a.b.Rooms[1:] {
		a.seq++
		forged := bacnet.PDU{
			Type:     bacnet.WriteProperty,
			InvokeID: a.seq,
			Device:   room.DeviceID,
			Object:   bacnet.ObjSetpoint,
			Value:    attackSetpoint,
		}
		conn := a.b.Bus.Dial(self.Node, room.Node, bas.BACnetPort)
		_ = conn.Write(bacnet.Frame(forged.Encode()))
		a.pending = append(a.pending, pendingProbe{room: room.Index, conn: conn})

		if !room.Secure {
			continue
		}
		capture := a.capturedWrite[room.Index]
		if capture == nil {
			capture = a.capturedAny[room.Index]
		}
		if capture == nil {
			continue
		}
		rc := a.b.Bus.Dial(self.Node, room.Node, bas.BACnetPort)
		_ = rc.Write(capture)
		a.pending = append(a.pending, pendingProbe{room: room.Index, replay: true, conn: rc})
	}
	a.after(probeHarvestDelay, a.harvest)
}

// harvest reads each probe's answer and hangs up. A legacy Ack means the
// room obeyed; silence (the proxy's fail-silent drop) or a refused dial
// means the frame died at the bump-in-the-wire.
func (a *lateralAttacker) harvest() {
	for _, p := range a.pending {
		accepted := false
		if !p.conn.Refused() {
			var d bacnet.Deframer
			d.Feed(p.conn.ReadAll())
			for {
				raw := d.Next()
				if raw == nil {
					break
				}
				// Forged probes are legacy, so a legacy Ack is obedience. A
				// replayed frame answered at all means the proxy accepted it.
				if p.replay {
					accepted = true
					break
				}
				if pdu, err := bacnet.DecodePDU(raw); err == nil && pdu.Type == bacnet.Ack {
					accepted = true
					break
				}
			}
		}
		switch {
		case p.replay && accepted:
			a.replaysAccepted[p.room]++
		case p.replay:
			a.replaysDenied[p.room]++
		case accepted:
			a.forgedAccepted[p.room]++
		default:
			a.forgedDenied[p.room]++
		}
		p.conn.Close()
	}
	a.pending = nil
	a.after(a.interval-probeHarvestDelay, a.volley)
}

// ExecuteBuilding deploys a building, lets it settle under the head-end's
// demand-response schedule, runs the lateral-movement attack (when enabled),
// and judges every room with its own ground-truth safety monitor.
func ExecuteBuilding(spec BuildingSpec) (*BuildingReport, error) {
	spec = spec.withDefaults()
	base := bas.DefaultScenario()

	// The eco-setback write lands mid-settle: it gives every room one
	// legitimate head-end WriteProperty — the frame a bus sniffer captures
	// and later replays at the secure rooms.
	eco := base.Controller.Setpoint - 1
	schedAt := spec.Settle / 2

	b, err := building.New(building.Config{
		Rooms:     spec.Rooms,
		Mix:       spec.Mix,
		Secure:    spec.Secure,
		Scenario:  bas.ScenarioConfig{Seed: spec.Seed},
		Recovery:  spec.Recovery,
		Slice:     spec.Slice,
		Workers:   spec.Workers,
		Faults:    spec.Faults,
		BusFaults: spec.BusFaults,
		Standby:   spec.Standby,
		TenantAPI: spec.TenantAPI,
		Monitor:   spec.Monitor || spec.Demote,
		Demote:    spec.Demote,
		Profiler:  spec.Profiler,
		HeadEnd: building.HeadEndConfig{
			Schedule: []building.SetpointEvent{{At: schedAt, Value: eco}},
		},
	})
	if err != nil {
		return nil, fmt.Errorf("attack: building: %w", err)
	}
	defer b.Close()

	monCfg := safety.DefaultConfig()
	monCfg.Setpoint = base.Controller.Setpoint
	monCfg.Tolerance = base.Controller.AlarmTolerance
	monCfg.AlarmDelay = base.Controller.AlarmDelay
	monCfg.SettleTime = spec.Settle / 2
	monitors := make([]*safety.Monitor, len(b.Rooms))
	for i, room := range b.Rooms {
		monitors[i] = safety.Attach(room.Testbed.Machine.Clock(), room.Testbed.Room, monCfg)
	}

	var attacker *lateralAttacker
	if spec.Attack {
		attacker = newLateralAttacker(b)
		attacker.arm(spec.Settle)
	}

	b.Run(spec.Settle + spec.Window)

	brep := b.Report()
	rep := &BuildingReport{
		Spec:     spec,
		Alarm:    brep.Alarm,
		Flagged:  brep.Flagged,
		Building: brep,
	}
	if attacker != nil {
		rep.CapturedFrames = attacker.captureCount
		rep.Notes = attacker.notes
	}
	for i, room := range b.Rooms {
		violations := monitors[i].Violations()
		var roomFaults *faultinject.Report
		if room.Injector != nil {
			roomFaults = room.Injector.Report()
			violations = filterFailsafeAlarms(0, roomFaults, violations)
		}
		busFaults := brep.RoomReports[i].BusFaults
		// Both campaigns run on the building timeline (boards boot at virtual
		// zero), so a zero anchor places violations in either's windows.
		inFault := 0
		for _, v := range violations {
			if faultinject.InWindow(0, roomFaults, v.At) || faultinject.InWindow(0, busFaults, v.At) {
				inFault++
			}
		}
		alive := room.Dep.ControllerAlive()
		out := RoomOutcome{
			Room:            room.Index,
			Platform:        string(room.Platform),
			Secure:          room.Secure,
			ControllerAlive: alive,
			Violations:      len(violations),
			FramesRejected:  brep.RoomReports[i].FramesRejected,
			BMSFlagged:      brep.RoomReports[i].BMS.Flagged,
			Restarts:        room.Dep.ControllerRestarts(),
			Recovered:       room.Dep.ControllerRecovered(),
		}
		if attacker != nil {
			out.ForgedAccepted = attacker.forgedAccepted[i]
			out.ForgedDenied = attacker.forgedDenied[i]
			out.ReplaysAccepted = attacker.replaysAccepted[i]
			out.ReplaysDenied = attacker.replaysDenied[i]
		}
		if mon := brep.RoomReports[i].Monitor; mon != nil {
			out.PolicyDrifts = mon.PolicyDrifts
			out.OriginDrifts = mon.OriginDrifts
		}
		out.BusDrifts = brep.RoomReports[i].BusDrifts
		out.BusRefused = brep.RoomReports[i].BusRefused
		out.Demoted = brep.RoomReports[i].Demoted
		out.UnreachableRounds = brep.RoomReports[i].BMS.UnreachableRounds
		out.Quarantined = brep.RoomReports[i].BMS.Quarantined
		out.Failovers = brep.RoomReports[i].Failovers
		out.ViolationsDuringFault = inFault
		switch {
		case spec.Attack && i == 0:
			out.Verdict = "FOOTHOLD"
		case len(violations) > 0 || !alive:
			if alive && inFault == len(violations) {
				// Every violation sits inside an injected fault's effect
				// window and the controller is back: the room rode the fault
				// out rather than losing to it.
				out.Verdict = "RECOVERED"
			} else {
				out.Verdict = "COMPROMISED"
			}
		default:
			out.Verdict = "SECURE"
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}
	return rep, nil
}

// FormatBuildingMatrix renders the per-room verdict table for experiment
// logs: one row per room.
func FormatBuildingMatrix(rep *BuildingReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-15s %-8s %-12s %-9s %-13s %-13s %-8s %-7s\n",
		"room", "platform", "proto", "verdict", "violations", "forged(acc/den)", "replay(acc/den)", "rejects", "flagged")
	b.WriteString(strings.Repeat("-", 96))
	b.WriteByte('\n')
	for _, o := range rep.Outcomes {
		proto := "legacy"
		if o.Secure {
			proto = "secure"
		}
		fmt.Fprintf(&b, "%-5d %-15s %-8s %-12s %-10d %6d/%-8d %6d/%-8d %-8d %-7v\n",
			o.Room, o.Platform, proto, o.Verdict, o.Violations,
			o.ForgedAccepted, o.ForgedDenied, o.ReplaysAccepted, o.ReplaysDenied,
			o.FramesRejected, o.BMSFlagged)
	}
	fmt.Fprintf(&b, "building alarm: %v, flagged rooms: %v, captured frames: %d\n",
		rep.Alarm, rep.Flagged, rep.CapturedFrames)
	if rep.Building != nil && rep.Building.BusDrifts > 0 {
		fmt.Fprintf(&b, "policy monitor: %d uncertified bus dials, %d refused\n",
			rep.Building.BusDrifts, rep.Building.BusRefused)
	}
	if bld := rep.Building; bld != nil && (bld.BusFaults != nil || bld.Standby) {
		b.WriteString(formatResilience(rep))
	}
	return b.String()
}

// formatResilience renders the fault/MTTR section of the building matrix:
// the bus campaign's per-fault outcomes, the failover verdict, and the
// per-room resilience ledger.
func formatResilience(rep *BuildingReport) string {
	bld := rep.Building
	var b strings.Builder
	b.WriteByte('\n')
	if bf := bld.BusFaults; bf != nil {
		fmt.Fprintf(&b, "bus fault plan %q: %d injected, %d recovered, %d unrecovered\n",
			bld.BusFaultPlan, bf.Injected, bf.Recovered, bf.Unrecovered)
		for _, f := range bf.Faults {
			mttr := "-"
			if f.MTTRNs >= 0 {
				mttr = time.Duration(f.MTTRNs).String()
			}
			target := f.Target
			if target == "" {
				target = "bus"
			}
			fmt.Fprintf(&b, "  %-15s %-8s at=%-8s mttr=%s\n",
				f.Kind, target, time.Duration(f.AtNs), mttr)
		}
	}
	if bld.Standby {
		if bld.FailoverRound > 0 {
			fmt.Fprintf(&b, "head-end failover: standby took over at round %d\n", bld.FailoverRound)
		} else {
			b.WriteString("head-end failover: standby armed, primary never silent\n")
		}
	}
	fmt.Fprintf(&b, "%-5s %-15s %-9s %-10s %-12s %-10s %-13s %-10s\n",
		"room", "unreach_rounds", "failovers", "quarantined", "sup_lost", "sup_rest", "viol_in_fault", "room_mttr")
	for _, o := range rep.Outcomes {
		var rr *building.RoomReport
		if o.Room < len(bld.RoomReports) {
			rr = &bld.RoomReports[o.Room]
		}
		var lost, restored int64
		mttr := "-"
		if rr != nil {
			lost, restored = rr.SupervisionLost, rr.SupervisionRestored
			if rr.BusFaults != nil && rr.BusFaults.MTTRCount > 0 {
				mttr = time.Duration(rr.BusFaults.MTTRSumNs / rr.BusFaults.MTTRCount).String()
			}
		}
		fmt.Fprintf(&b, "%-5d %-15d %-9d %-12v %-12d %-10d %-13d %-10s\n",
			o.Room, o.UnreachableRounds, o.Failovers, o.Quarantined,
			lost, restored, o.ViolationsDuringFault, mttr)
	}
	return b.String()
}
