package machine

import "testing"

// pidRing backs the per-priority ready queues of the direct-dispatch
// scheduler; FIFO order within a band is part of the determinism contract
// (goldens are byte-identical at any worker count), so wrap, grow, and
// remove must all preserve it.

func drainRing(r *pidRing) []PID {
	var out []PID
	for r.n > 0 {
		out = append(out, r.pop())
	}
	return out
}

func equalPIDs(a, b []PID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPidRingFIFOAcrossWrap(t *testing.T) {
	var r pidRing
	// Fill to the initial capacity, pop a prefix, then push past the old
	// tail so the live window wraps around the backing array.
	for pid := PID(1); pid <= 8; pid++ {
		r.push(pid)
	}
	if len(r.buf) != 8 {
		t.Fatalf("initial capacity = %d, want 8", len(r.buf))
	}
	for want := PID(1); want <= 5; want++ {
		if got := r.pop(); got != want {
			t.Fatalf("pop = %d, want %d", got, want)
		}
	}
	for pid := PID(9); pid <= 13; pid++ { // head is at index 5: these wrap
		r.push(pid)
	}
	if len(r.buf) != 8 {
		t.Fatalf("capacity grew to %d on a wrap that fits", len(r.buf))
	}
	if got, want := drainRing(&r), []PID{6, 7, 8, 9, 10, 11, 12, 13}; !equalPIDs(got, want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
}

func TestPidRingGrowUnwrapsInOrder(t *testing.T) {
	var r pidRing
	for pid := PID(1); pid <= 8; pid++ {
		r.push(pid)
	}
	for want := PID(1); want <= 3; want++ {
		if got := r.pop(); got != want {
			t.Fatalf("pop = %d, want %d", got, want)
		}
	}
	// 5 live entries, head at 3: pushing 4 more wraps, the 4th forces a
	// grow while the window straddles the array end.
	for pid := PID(9); pid <= 12; pid++ {
		r.push(pid)
	}
	if len(r.buf) != 16 || r.head != 0 {
		t.Fatalf("after grow: cap %d head %d, want 16, 0", len(r.buf), r.head)
	}
	if got, want := drainRing(&r), []PID{4, 5, 6, 7, 8, 9, 10, 11, 12}; !equalPIDs(got, want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
}

func TestPidRingRemovePreservesFIFO(t *testing.T) {
	var r pidRing
	for pid := PID(1); pid <= 8; pid++ {
		r.push(pid)
	}
	for i := 0; i < 6; i++ {
		r.push(r.pop()) // rotate: head now mid-array, window wrapped
	}
	// Live order: 7 8 1 2 3 4 5 6. Remove one each side of the wrap point.
	if !r.remove(8) {
		t.Fatal("remove(8) = false, want true")
	}
	if !r.remove(3) {
		t.Fatal("remove(3) = false, want true")
	}
	if r.remove(42) {
		t.Fatal("remove(42) = true for an absent pid")
	}
	if got, want := drainRing(&r), []PID{7, 1, 2, 4, 5, 6}; !equalPIDs(got, want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
}

func TestPidRingSteadyStatePushPopZeroAlloc(t *testing.T) {
	var r pidRing
	for pid := PID(1); pid <= 8; pid++ {
		r.push(pid)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.push(r.pop())
	})
	if allocs != 0 {
		t.Errorf("steady-state push/pop allocated %.1f per run, want 0", allocs)
	}
}
