package bas

import (
	"errors"
	"fmt"
	"time"

	"mkbas/internal/bacnet"
	"mkbas/internal/core"
	"mkbas/internal/minix"
	"mkbas/internal/plant"
	"mkbas/internal/polcheck"
	"mkbas/internal/polcheck/monitor"
)

// MINIX payload layout for the scenario protocol (offsets into the 56-byte
// payload):
//
//	MsgSensorData     temp f64@0
//	MsgHeaterCmd      on u32@0            → ack (type 0)
//	MsgAlarmCmd       on u32@0            → ack (type 0)
//	MsgSetpointUpdate value f64@0         → ack: code u32@0
//	MsgStatusQuery    —                   → ack: temp f64@0, setpoint f64@8,
//	                                        flags u32@16 (bit0 heater,
//	                                        bit1 alarm), samples i64@24
const (
	statusFlagHeater = 1 << 0
	statusFlagAlarm  = 1 << 1
)

// MinixOptions configures DeployMinix.
type MinixOptions struct {
	// Policy overrides the default core.ScenarioPolicy().
	Policy *core.Policy
	// DisableACM boots the vanilla-MINIX ablation.
	DisableACM bool
	// WebBody replaces the legitimate web interface with attacker code
	// ("we assume the web interface process can execute arbitrary code").
	WebBody func(api *minix.API)
	// WebRoot runs the web process as uid 0, modelling the paper's
	// root-escalated second simulation. On MINIX this must not change any
	// outcome — that is the point: "user privilege is not directly tied
	// with access control and IPC".
	WebRoot bool
	// SkipPolicyCheck disables the pre-deploy static policy gate; see
	// DeployOptions.SkipPolicyCheck for the shared semantics. Attack
	// experiments that deliberately deploy over-permissive policies set it;
	// production paths never should.
	SkipPolicyCheck bool
}

// MinixDeployment is the booted MINIX platform.
type MinixDeployment struct {
	deploymentBase
	Kernel  *minix.Kernel
	Testbed *Testbed
}

var _ Deployment = (*MinixDeployment)(nil)

// ControllerAlive reports whether the temperature control process still has
// a live endpoint.
func (d *MinixDeployment) ControllerAlive() bool {
	_, err := d.Kernel.EndpointOf(NameTempControl)
	return err == nil
}

// DeployMinix boots the security-enhanced MINIX 3 platform on a testbed. It
// is a thin wrapper over the Deploy registry, kept so existing callers
// compile unchanged.
//
// Deprecated: use Deploy(PlatformMinix, ...) (or PlatformMinixVanilla for
// DisableACM) with DeployOptions instead.
func DeployMinix(tb *Testbed, cfg ScenarioConfig, opts MinixOptions) (*MinixDeployment, error) {
	platform := PlatformMinix
	if opts.DisableACM {
		platform = PlatformMinixVanilla
	}
	dep, err := Deploy(platform, tb, cfg, DeployOptions{
		SkipPolicyCheck: opts.SkipPolicyCheck,
		Policy:          opts.Policy,
		WebRoot:         opts.WebRoot,
		MinixWeb:        opts.WebBody,
	})
	if err != nil {
		return nil, err
	}
	return dep.(*MinixDeployment), nil
}

// deployMinix is the MINIX backend of the Deploy registry: it boots the
// kernel and starts the scenario loader, which forks the five application
// processes with their ac_ids (Section IV-A). platform selects whether the
// ACM is enforced (PlatformMinix) or ablated (PlatformMinixVanilla).
func deployMinix(platform Platform, tb *Testbed, cfg ScenarioConfig, opts DeployOptions) (*MinixDeployment, error) {
	disableACM := platform == PlatformMinixVanilla
	policy := opts.Policy
	if policy == nil {
		// Optional gateways each need their own ACM row; select the policy
		// before the gate below so the certified matrix is the deployed
		// matrix.
		switch {
		case opts.BACnet.Enabled && opts.TenantAPI:
			policy = core.ScenarioPolicyWithGateways()
		case opts.BACnet.Enabled:
			policy = core.ScenarioPolicyWithGateway()
		case opts.TenantAPI:
			policy = core.ScenarioPolicyWithTenantGateway()
		default:
			policy = core.ScenarioPolicy()
		}
	}
	// Pre-deploy gate: prove the matrix satisfies the scenario's security
	// contract before any process runs. The vanilla ablation skips it —
	// vanilla MINIX enforces nothing, so there is no policy to certify.
	if !opts.SkipPolicyCheck && !disableACM {
		if err := checkDeployPolicy(polcheck.FromPolicy(policy)); err != nil {
			return nil, err
		}
	}
	k, err := minix.Boot(tb.Machine, policy, minix.Config{
		Net:        tb.Net,
		DisableACM: disableACM,
	})
	if err != nil {
		return nil, fmt.Errorf("bas: booting minix: %w", err)
	}
	sup := newDeploySupervision(tb, &cfg, opts)

	webUID := 1000
	if opts.WebRoot {
		webUID = 0
	}
	webBody := opts.MinixWeb
	if webBody == nil {
		webBody = minixWebBody
	}

	k.RegisterImage(minix.Image{
		Name: NameHeaterAct, Priority: 4, Restart: true,
		Devices: []plantDevice{plant.DevHeater},
		Body:    minixActuatorBody(plant.DevHeater, int32(core.MsgHeaterCmd)),
	})
	k.RegisterImage(minix.Image{
		Name: NameAlarmAct, Priority: 4, Restart: true,
		Devices: []plantDevice{plant.DevAlarm},
		Body:    minixActuatorBody(plant.DevAlarm, int32(core.MsgAlarmCmd)),
	})
	k.RegisterImage(minix.Image{
		Name: NameTempControl, Priority: 5,
		Body: minixControllerBody(cfg.Controller),
	})
	k.RegisterImage(minix.Image{
		Name: NameTempSensor, Priority: 6, Restart: true,
		Devices: []plantDevice{plant.DevTempSensor},
		Body:    minixSensorBody(cfg.SamplePeriod),
	})
	k.RegisterImage(minix.Image{
		Name: NameWebInterface, Priority: 7, Net: true, UID: webUID,
		Body: webBody,
	})
	k.RegisterImage(minix.Image{
		Name: NameScenario, Priority: 3,
		Body: minixLoaderBody,
	})
	if _, err := k.SpawnImage(NameScenario, core.ACIDScenario); err != nil {
		return nil, fmt.Errorf("bas: spawning loader: %w", err)
	}
	if opts.BACnet.Enabled {
		// The deployment owns the proxy's anti-replay state; the body closure
		// rebuilds the proxy from it on every (re)spawn, so a gateway
		// reincarnated by RS keeps its nonce floor.
		state := bacnet.NewProxyState()
		k.RegisterImage(minix.Image{
			Name: NameBACnetGateway, Priority: 7, Net: true, Restart: true,
			Body: minixBACnetGatewayBody(opts.BACnet, state, tb.Machine.Obs(), sup),
		})
		if _, err := k.SpawnImage(NameBACnetGateway, core.ACIDBACnetGateway); err != nil {
			return nil, fmt.Errorf("bas: spawning bacnet gateway: %w", err)
		}
	}
	dep := &MinixDeployment{
		deploymentBase: deploymentBase{platform: platform, tb: tb},
		Kernel:         k,
		Testbed:        tb,
	}
	if opts.Monitor {
		// The monitor verifies against the same matrix the gate certified.
		// On the vanilla ablation the kernel enforces nothing, but deliveries
		// are still recorded — the monitor is then the only policy check, the
		// runtime-verification configuration.
		dep.attachMonitor(polcheck.FromPolicy(policy), monitor.Options{Profiler: opts.Profiler})
	}
	return dep, nil
}

// plantDevice aliases the device ID type for terse image declarations.
type plantDevice = machineDeviceID

// minixLoaderBody is the scenario process: "a process loader that forks the
// other five processes, tells kernel each process's ac_id, and loads the
// correct binaries for each of them".
func minixLoaderBody(api *minix.API) {
	order := []struct {
		image string
		acid  core.ACID
	}{
		{NameHeaterAct, core.ACIDHeaterAct},
		{NameAlarmAct, core.ACIDAlarmAct},
		{NameTempControl, core.ACIDTempControl},
		{NameTempSensor, core.ACIDTempSensor},
		{NameWebInterface, core.ACIDWebInterface},
	}
	for _, spec := range order {
		if _, err := api.Fork2(spec.image, uint32(spec.acid)); err != nil {
			api.Trace("bas", fmt.Sprintf("loader: fork2 %s failed: %v", spec.image, err))
		}
	}
	api.Exit()
}

// minixLookupWait resolves a published name, retrying briefly — processes
// boot in dependency order, but a reincarnated driver may republish a moment
// after a lookup.
func minixLookupWait(api *minix.API, name string) (minix.Endpoint, bool) {
	for i := 0; i < 50; i++ {
		ep, err := api.Lookup(name)
		if err == nil {
			return ep, true
		}
		api.Sleep(time.Millisecond)
	}
	return minix.EndpointNone, false
}

// minixActuatorBody is the heater/alarm driver: "passively wait for commands
// from temperature control process".
func minixActuatorBody(dev plantDevice, cmdType int32) func(api *minix.API) {
	return func(api *minix.API) {
		for {
			msg, err := api.Receive(minix.EndpointAny)
			if err != nil {
				continue
			}
			ack := minix.NewMessage(int32(core.MsgAck))
			if msg.Type == cmdType {
				if err := api.DevWrite(dev, plant.RegActuate, msg.U32(0)); err != nil {
					ack.PutU32(0, 1)
				}
			} else {
				ack.PutU32(0, 1) // unknown request
			}
			// The commander is rendezvous-blocked on this reply.
			_ = api.Send(msg.Source, ack)
		}
	}
}

// minixSensorBody "periodically samples the environment temperature and
// sends the fresh data using nonblocking send system call to the temperature
// control process".
func minixSensorBody(period time.Duration) func(api *minix.API) {
	return func(api *minix.API) {
		ctrl, ok := minixLookupWait(api, NameTempControl)
		if !ok {
			return
		}
		for {
			api.Sleep(period)
			raw, err := api.DevRead(plant.DevTempSensor, plant.RegTempMilliC)
			if err != nil {
				continue
			}
			msg := minix.NewMessage(int32(core.MsgSensorData))
			msg.PutF64(0, plant.DecodeTemp(raw))
			if err := api.SendNB(ctrl, msg); errors.Is(err, minix.ErrDeadSrcDst) {
				// Controller restarted: refresh the endpoint.
				if fresh, found := minixLookupWait(api, NameTempControl); found {
					ctrl = fresh
				}
			}
		}
	}
}

// minixControllerBody is the temperature control process main loop as
// narrated in Section IV-A.
func minixControllerBody(cfg ControllerConfig) func(api *minix.API) {
	return func(api *minix.API) {
		ctrl := NewController(cfg)
		heater, okH := minixLookupWait(api, NameHeaterAct)
		alarm, okA := minixLookupWait(api, NameAlarmAct)
		if !okH || !okA {
			api.Trace("bas", "controller: actuators missing, cannot start")
			return
		}
		// sendCmd is a bounded retry-with-backoff RPC to an actuator driver:
		// a driver mid-reincarnation answers ErrDeadSrcDst (stale endpoint)
		// or times out, so each attempt refreshes the endpoint and backs off
		// before giving up for this command cycle.
		sendCmd := func(dst *minix.Endpoint, name string, cmdType int32, on bool) {
			cmd := minix.NewMessage(cmdType)
			if on {
				cmd.PutU32(0, 1)
			}
			backoff := 10 * time.Millisecond
			for attempt := 0; attempt < 3; attempt++ {
				_, err := api.SendRec(*dst, cmd)
				if err == nil {
					return
				}
				if errors.Is(err, minix.ErrDeadSrcDst) {
					if fresh, found := minixLookupWait(api, name); found {
						*dst = fresh
					}
				}
				api.Sleep(backoff)
				backoff *= 2
			}
			api.Trace("bas", "controller: giving up on command to "+name)
		}
		// watchdog runs the staleness check and pushes failsafe decisions to
		// the actuators.
		watchdog := func() {
			heaterChanged, alarmChanged := ctrl.OnTick(api.Now())
			if heaterChanged || alarmChanged {
				api.Trace("bas", "controller: failsafe engaged, sensor readings stale")
			}
			if heaterChanged {
				sendCmd(&heater, NameHeaterAct, int32(core.MsgHeaterCmd), ctrl.HeaterOn())
			}
			if alarmChanged {
				sendCmd(&alarm, NameAlarmAct, int32(core.MsgAlarmCmd), ctrl.AlarmOn())
			}
		}
		for {
			var msg minix.Message
			var err error
			if cfg.StalenessWindow > 0 {
				msg, err = api.ReceiveTimeout(minix.EndpointAny, cfg.StalenessWindow/2)
			} else {
				msg, err = api.Receive(minix.EndpointAny)
			}
			if err != nil {
				if errors.Is(err, minix.ErrTimeout) {
					watchdog()
				}
				continue
			}
			// NOTE (intentional design flaw, see package comment): the
			// sender's identity is never verified — the ACM is the only
			// spoofing defence.
			switch core.MsgType(msg.Type) {
			case core.MsgSensorData:
				heaterChanged, alarmChanged := ctrl.OnSample(api.Now(), msg.F64(0))
				if heaterChanged {
					sendCmd(&heater, NameHeaterAct, int32(core.MsgHeaterCmd), ctrl.HeaterOn())
				}
				if alarmChanged {
					sendCmd(&alarm, NameAlarmAct, int32(core.MsgAlarmCmd), ctrl.AlarmOn())
				}
				if ctrl.Snapshot().Samples%60 == 0 || heaterChanged || alarmChanged {
					api.Trace("bas", ctrl.Snapshot().String())
				}
			case core.MsgSetpointUpdate:
				ack := minix.NewMessage(int32(core.MsgAck))
				if err := ctrl.SetSetpoint(msg.F64(0)); err != nil {
					ack.PutU32(0, 1)
				}
				_ = api.Send(msg.Source, ack)
			case core.MsgStatusQuery:
				_ = api.Send(msg.Source, encodeStatusAck(ctrl.Snapshot()))
			default:
				// Unknown type: ignore. With the ACM enabled this is
				// unreachable for unauthorized peers.
			}
			// Non-sensor traffic must not starve the watchdog: check
			// staleness after every message, not only on timeouts.
			watchdog()
		}
	}
}

// encodeStatusAck packs a Status into the ack payload.
func encodeStatusAck(st Status) minix.Message {
	ack := minix.NewMessage(int32(core.MsgAck))
	ack.PutF64(0, st.Temp)
	ack.PutF64(8, st.Setpoint)
	var flags uint32
	if st.HeaterOn {
		flags |= statusFlagHeater
	}
	if st.AlarmOn {
		flags |= statusFlagAlarm
	}
	ack.PutU32(16, flags)
	ack.PutI64(24, st.Samples)
	return ack
}

// decodeStatusAck unpacks encodeStatusAck.
func decodeStatusAck(msg minix.Message) Status {
	flags := msg.U32(16)
	return Status{
		Temp:     msg.F64(0),
		Setpoint: msg.F64(8),
		HeaterOn: flags&statusFlagHeater != 0,
		AlarmOn:  flags&statusFlagAlarm != 0,
		Samples:  msg.I64(24),
	}
}

// minixControlClient adapts the controller RPC protocol to ControlClient.
type minixControlClient struct {
	api  *minix.API
	ctrl minix.Endpoint
}

var _ ControlClient = (*minixControlClient)(nil)

func (c *minixControlClient) Status() (Status, error) {
	reply, err := c.api.SendRec(c.ctrl, minix.NewMessage(int32(core.MsgStatusQuery)))
	if err != nil {
		return Status{}, err
	}
	return decodeStatusAck(reply), nil
}

func (c *minixControlClient) SetSetpoint(v float64) error {
	msg := minix.NewMessage(int32(core.MsgSetpointUpdate))
	msg.PutF64(0, v)
	reply, err := c.api.SendRec(c.ctrl, msg)
	if err != nil {
		return err
	}
	if reply.U32(0) != 0 {
		return ErrSetpointRange
	}
	return nil
}

// minixWebBody is the legitimate web interface: an HTTP server on port 8080
// relaying administrator requests to the controller over IPC.
func minixWebBody(api *minix.API) {
	ctrl, ok := minixLookupWait(api, NameTempControl)
	if !ok {
		return
	}
	l, err := api.NetListen(WebPort)
	if err != nil {
		api.Trace("bas", fmt.Sprintf("web: listen failed: %v", err))
		return
	}
	ServeWeb(minixListener{api: api, l: l}, &minixControlClient{api: api, ctrl: ctrl}, nil)
}

// Net adapters.

type minixListener struct {
	api *minix.API
	l   int32
}

func (ml minixListener) Accept() (NetConn, error) {
	conn, err := ml.api.NetAccept(ml.l)
	if err != nil {
		return nil, err
	}
	return minixConn{api: ml.api, fd: conn}, nil
}

type minixConn struct {
	api *minix.API
	fd  int32
}

func (mc minixConn) Read(max int) ([]byte, error) { return mc.api.NetRead(mc.fd, max) }
func (mc minixConn) Write(data []byte) error      { return mc.api.NetWrite(mc.fd, data) }
func (mc minixConn) Close() error                 { return mc.api.NetClose(mc.fd) }
