// Command attacklab regenerates the paper's Section IV-D attack comparison
// (experiment E1): it runs the attack library against the platform
// deployments and prints the outcome matrix plus per-run summaries.
//
// Usage:
//
//	attacklab                         # headline matrix, both attacker models
//	attacklab -platforms all          # include the ablation platforms
//	attacklab -actions kill-controller -root
//	attacklab -action fork-bomb -platforms minix3-acm -quota 5   # E8
//	attacklab -actions api [-demote]  # E16 tenant-tier attack matrix
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mkbas/internal/attack"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(1)
	}
}

func run() error {
	platformsFlag := flag.String("platforms", "paper", `platforms: "paper" (linux, minix3-acm, sel4), "all" (adds linux-hardened, minix3-vanilla), or a comma list`)
	actionsFlag := flag.String("actions", "all", `actions: "all" (board attacks), "api" (tenant-tier attacks: api-token-replay, api-role-escalation, api-vendor-pivot, api-flood), or a comma list of either family`)
	rootFlag := flag.String("model", "both", `attacker model: "user", "root", or "both"`)
	quota := flag.Int("quota", 0, "fork quota for MINIX (0 = no quota; E8 uses 5)")
	demote := flag.Bool("demote", false, "enable incident response on API attacks: revoke the stolen credential and demote its origin at the attack window's open (E16's third column)")
	verbose := flag.Bool("v", false, "print per-run summaries")
	flag.Parse()

	platforms, err := parsePlatforms(*platformsFlag)
	if err != nil {
		return err
	}
	actions, err := parseActions(*actionsFlag)
	if err != nil {
		return err
	}

	var models []bool
	switch *rootFlag {
	case "user":
		models = []bool{false}
	case "root":
		models = []bool{true}
	case "both":
		models = []bool{false, true}
	default:
		return fmt.Errorf("unknown model %q", *rootFlag)
	}

	for _, root := range models {
		allAPI := true
		for _, a := range actions {
			if !attack.IsAPIAction(a) {
				allAPI = false
			}
		}
		label := "attacker model 1: arbitrary code execution in the web interface"
		if root {
			label = "attacker model 2: arbitrary code execution + root privilege"
		}
		if allAPI {
			label = "attacker model 1: stolen occupant/vendor credential, outside the building"
			if root {
				label = "attacker model 2: stolen facility-manager credential, outside the building"
			}
		}
		fmt.Printf("=== %s ===\n", label)
		var reports []*attack.Report
		for _, p := range platforms {
			for _, a := range actions {
				spec := attack.Spec{Platform: p, Action: a, Root: root}
				if attack.IsAPIAction(a) {
					spec.Demote = *demote
				} else if p == attack.PlatformMinix || p == attack.PlatformMinixVanilla {
					spec.ForkQuota = *quota
				}
				report, execErr := attack.Execute(spec)
				if execErr != nil {
					return execErr
				}
				reports = append(reports, report)
				if *verbose {
					fmt.Println(attack.Summarize(report))
				}
			}
		}
		fmt.Println(attack.FormatMatrix(reports))
		fmt.Println("mediation (from the security-event stream):")
		for _, r := range reports {
			if len(r.SecurityEvents) == 0 {
				fmt.Printf("  %-20s %-20s no denial events\n", r.Spec.Platform, r.Spec.Action)
				continue
			}
			fmt.Printf("  %-20s %-20s stopped by %-14s (%d denial events)\n",
				r.Spec.Platform, r.Spec.Action, r.BlockedBy(), len(r.SecurityEvents))
		}
		fmt.Println()
	}
	fmt.Println(`verdicts: COMPROMISED        = the physical process was jeopardized
          accepted-no-impact = operations were accepted but the plant stayed safe
          BLOCKED            = every malicious operation was denied`)
	return nil
}

func parsePlatforms(s string) ([]attack.Platform, error) {
	switch s {
	case "paper":
		return attack.AllPlatforms(), nil
	case "all":
		return []attack.Platform{
			attack.PlatformLinux, attack.PlatformLinuxHardened,
			attack.PlatformMinixVanilla, attack.PlatformMinix, attack.PlatformSel4,
		}, nil
	}
	var out []attack.Platform
	for _, part := range strings.Split(s, ",") {
		p := attack.Platform(strings.TrimSpace(part))
		switch p {
		case attack.PlatformLinux, attack.PlatformLinuxHardened, attack.PlatformMinix,
			attack.PlatformMinixVanilla, attack.PlatformSel4:
			out = append(out, p)
		default:
			return nil, fmt.Errorf("unknown platform %q", part)
		}
	}
	return out, nil
}

func parseActions(s string) ([]attack.Action, error) {
	switch s {
	case "all":
		return attack.AllActions(), nil
	case "api":
		return attack.AllAPIActions(), nil
	}
	var out []attack.Action
	known := make(map[attack.Action]bool)
	for _, a := range attack.AllActions() {
		known[a] = true
	}
	for _, a := range attack.AllAPIActions() {
		known[a] = true
	}
	for _, part := range strings.Split(s, ",") {
		a := attack.Action(strings.TrimSpace(part))
		if !known[a] {
			return nil, fmt.Errorf("unknown action %q", part)
		}
		out = append(out, a)
	}
	return out, nil
}
