// Package loadgen is the tenant API tier's deterministic load generator: a
// million-request campaign against shard-local gateways, in virtual time,
// whose merged output is byte-identical at any worker count.
//
// The design mirrors the attack fleet runner (internal/lab): the campaign
// splits into independent shards, each shard owns every piece of mutable
// state it touches (clock, PRNG, directory, backend, gateway, metrics,
// events), results land in shard-indexed storage, and the merge folds them
// in shard order with the obs merge helpers. Worker count is therefore pure
// wall-clock mechanics — it cannot reach the simulated world.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"mkbas/internal/lab"
	"mkbas/internal/obs"
	"mkbas/internal/perf"
	"mkbas/internal/tenantapi"
)

// Plan parameterises a campaign. The zero value (plus a seed) is the
// standard million-request run.
type Plan struct {
	// Seed drives every random choice in the campaign: principal selection,
	// route mix, setpoint values, and latency jitter.
	Seed uint64 `json:"seed"`
	// Requests is the campaign total across all shards (default 1,000,000).
	Requests int `json:"requests"`
	// Shards is the number of independent gateway instances the campaign
	// splits into (default 64). More shards than workers is normal: shards
	// are the determinism unit, workers the wall-clock unit.
	Shards int `json:"shards"`
	// Directory sizes each shard's principal set (defaults: 16 rooms, 64
	// occupants, 2 managers, 2 vendors).
	Directory tenantapi.DirectoryConfig `json:"directory"`
	// RatePerSec, Burst, AdmitPerTick, TickNs configure each shard's gateway
	// (zero uses the gateway defaults).
	RatePerSec   int64 `json:"rate_per_sec,omitempty"`
	Burst        int64 `json:"burst,omitempty"`
	AdmitPerTick int   `json:"admit_per_tick,omitempty"`
	TickNs       int64 `json:"tick_ns,omitempty"`
	// StepNs is the virtual time between requests within a shard (default
	// 2ms — 500 requests/s of offered load per shard). Burst windows
	// (burstEvery/burstLen) suppress the step so admission control is
	// exercised too.
	StepNs int64 `json:"step_ns,omitempty"`
	// Workers bounds wall-clock parallelism; zero means GOMAXPROCS. Never
	// marshalled: it must not be able to change the report.
	Workers int `json:"-"`
	// Profiler attaches the host-side profiler ("loadgen.shard" phase, pool
	// gauges). nil profiles nothing.
	Profiler *perf.Profiler `json:"-"`
}

func (p Plan) withDefaults() Plan {
	if p.Requests <= 0 {
		p.Requests = 1_000_000
	}
	if p.Shards <= 0 {
		p.Shards = 64
	}
	if p.Shards > p.Requests {
		p.Shards = p.Requests
	}
	if p.StepNs <= 0 {
		p.StepNs = 2 * int64(time.Millisecond)
	}
	return p
}

// Burst windows: every burstEvery requests, the last burstLen arrive at the
// same virtual instant, driving the admission budget past its per-tick
// limit. Deterministic by construction.
const (
	burstEvery = 4096
	burstLen   = 512
)

// traffic skew: one request in hotShare targets the first occupant, so one
// principal's token bucket runs dry while the long tail stays under its
// rate — both sides of the limiter are exercised.
const hotShare = 10

// ShardStats is one shard's tally.
type ShardStats struct {
	Shard         int              `json:"shard"`
	Requests      int64            `json:"requests"`
	Outcomes      map[string]int64 `json:"outcomes"`
	BackendWrites int64            `json:"backend_writes"`
}

// Report is the merged campaign outcome. Its JSON form is a pure function
// of the Plan: workers and wall-clock are excluded from marshalling.
type Report struct {
	Plan     Plan             `json:"plan"`
	Requests int64            `json:"requests"`
	Served   int64            `json:"served"`
	Outcomes map[string]int64 `json:"outcomes"`
	// BackendWrites counts setpoint writes that reached the simulated
	// head-end across all shards.
	BackendWrites int64 `json:"backend_writes"`
	// Counters, Histograms, EventTotals, and Mechanisms are the obs fold
	// across shards: per-route×outcome request counters, per-route latency
	// histograms with recomputed p50/p95/p99, typed denial totals, and the
	// distinct mediating mechanisms.
	Counters    []obs.CounterSnap   `json:"counters"`
	Histograms  []obs.HistogramSnap `json:"histograms"`
	EventTotals []obs.EventTotal    `json:"event_totals"`
	Mechanisms  []obs.Mechanism     `json:"mechanisms"`
	Shards      []ShardStats        `json:"shards"`
	// Workers and Elapsed describe this execution, not the experiment.
	Workers int           `json:"-"`
	Elapsed time.Duration `json:"-"`
}

// JSON renders the report as indented JSON with a trailing newline.
func (r *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// rng is a splitmix64 stream.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// shardOut is one shard's complete result: the tally plus the obs snapshots
// the merge folds.
type shardOut struct {
	stats    ShardStats
	counters []obs.CounterSnap
	hists    []obs.HistogramSnap
	totals   []obs.EventTotal
	mechs    []obs.Mechanism
}

// Run executes the campaign and merges the shards.
func Run(plan Plan) (*Report, error) {
	plan = plan.withDefaults()
	start := time.Now()
	outs := make([]*shardOut, plan.Shards)
	// Requests split evenly; the first (Requests mod Shards) shards carry
	// one extra.
	base, extra := plan.Requests/plan.Shards, plan.Requests%plan.Shards
	err := lab.ForEachShard("loadgen", plan.Shards, plan.Workers, plan.Profiler, func(i int) error {
		n := base
		if i < extra {
			n++
		}
		outs[i] = runShard(plan, i, n)
		return nil
	})
	if err != nil {
		return nil, err
	}

	msc := plan.Profiler.Phase("loadgen.merge").Begin()
	defer msc.End()
	rep := &Report{
		Plan:     plan,
		Outcomes: make(map[string]int64),
		Workers:  plan.Workers,
	}
	counterSets := make([][]obs.CounterSnap, plan.Shards)
	histSets := make([][]obs.HistogramSnap, plan.Shards)
	totalSets := make([][]obs.EventTotal, plan.Shards)
	mechSets := make([][]obs.Mechanism, plan.Shards)
	for i, o := range outs {
		rep.Requests += o.stats.Requests
		rep.Served += o.stats.Outcomes[tenantapi.OutcomeOK.String()]
		rep.BackendWrites += o.stats.BackendWrites
		for k, v := range o.stats.Outcomes {
			rep.Outcomes[k] += v
		}
		rep.Shards = append(rep.Shards, o.stats)
		counterSets[i] = o.counters
		histSets[i] = o.hists
		totalSets[i] = o.totals
		mechSets[i] = o.mechs
	}
	rep.Counters = obs.MergeCounters(counterSets...)
	rep.Histograms = obs.MergeHistograms(histSets...)
	rep.EventTotals = obs.MergeEventTotals(totalSets...)
	rep.Mechanisms = obs.MergeMechanisms(mechSets...)
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// runShard drives n requests through a fully shard-local gateway.
func runShard(plan Plan, shard, n int) *shardOut {
	var nowNs int64
	now := func() obs.Time { return obs.Time(nowNs) }
	reg := obs.NewRegistry()
	events := obs.NewEventLog(now, 64)
	dir := tenantapi.NewDirectory(plan.Directory)
	rooms := plan.Directory.Rooms
	if rooms <= 0 {
		rooms = 16
	}
	backend := tenantapi.NewSimBackend(rooms, now)
	gw := tenantapi.NewGateway(dir, backend, tenantapi.GatewayConfig{
		Now:          now,
		RatePerSec:   plan.RatePerSec,
		Burst:        plan.Burst,
		AdmitPerTick: plan.AdmitPerTick,
		TickNs:       plan.TickNs,
		Registry:     reg,
		Events:       events,
		Seed:         plan.Seed ^ (0x51ab << 32) ^ uint64(shard),
	})
	r := &rng{state: plan.Seed ^ 0xc0ffee ^ (uint64(shard) << 20)}
	dirLen := dir.Len()

	out := &shardOut{stats: ShardStats{Shard: shard, Outcomes: make(map[string]int64)}}
	var req tenantapi.Request
	var resp tenantapi.Response
	for k := 0; k < n; k++ {
		// Burst windows arrive at one virtual instant; everything else is
		// evenly paced.
		if k%burstEvery < burstEvery-burstLen {
			nowNs += plan.StepNs
		}
		p := dir.At(int(r.next() % uint64(dirLen)))
		if r.next()%hotShare == 0 {
			p = dir.At(0) // the noisy client
		}
		req = tenantapi.Request{Token: p.Token}
		roll := r.next() % 1000
		switch {
		case roll < 20:
			// Credential-stuffing noise: unknown tokens die at session auth.
			req.Token = "tok-ffffffffffffffff"
			req.Route = tenantapi.RouteStatus
			req.Room = int(r.next() % uint64(rooms))
		case roll < 570:
			req.Route = tenantapi.RouteStatus
			if p.Role == tenantapi.RoleOccupant && r.next()%10 != 0 {
				req.Room = p.Room // occupants mostly read their own room
			} else {
				req.Room = int(r.next() % uint64(rooms))
			}
		case roll < 750:
			req.Route = tenantapi.RouteSetpoint
			req.Room = int(r.next() % uint64(rooms))
			req.Value = 18 + float64(r.next()%120)/10 // 18.0–29.9 °C
			if r.next()%10 == 0 {
				req.Value = 40 // out-of-band: 400 at validation
			}
		case roll < 850:
			req.Route = tenantapi.RouteDiagnostics
		case roll < 980:
			req.Route = tenantapi.RouteWhoAmI
		default:
			// A room the building doesn't have: 404 (or an occupant's 403).
			req.Route = tenantapi.RouteStatus
			req.Room = rooms + int(r.next()%4)
		}
		outc := gw.Handle(&req, &resp)
		out.stats.Requests++
		out.stats.Outcomes[outc.String()]++
	}
	out.stats.BackendWrites = backend.Writes()
	out.counters = reg.Counters()
	out.hists = reg.Histograms()
	out.totals = events.Totals()
	out.mechs = events.Mechanisms()
	return out
}

// Bench runs the same plan once per worker count, verifying that every
// merged report is byte-identical to the first and measuring wall-clock
// request throughput. The first worker count is the speedup baseline; pass
// 1 first for honest serial-relative numbers.
func Bench(plan Plan, workerCounts []int, hostCPUs int) (*lab.BenchReport, error) {
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("loadgen: no worker counts to bench")
	}
	rep := &lab.BenchReport{
		Identical:            true,
		HostCPUs:             hostCPUs,
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		ParallelismEffective: lab.WarnIfSerial("loadgen"),
	}
	var baseline []byte
	var baseElapsed float64
	for i, w := range workerCounts {
		plan.Workers = w
		res, err := Run(plan)
		if err != nil {
			return nil, err
		}
		out, err := res.JSON()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			rep.Shards = res.Plan.Shards
			baseline = out
			baseElapsed = float64(res.Elapsed.Nanoseconds())
		} else if !bytes.Equal(out, baseline) {
			rep.Identical = false
		}
		elapsed := float64(res.Elapsed.Nanoseconds())
		pt := lab.BenchPoint{
			Workers:   w,
			ElapsedMS: elapsed / 1e6,
		}
		if elapsed > 0 {
			pt.ShardsPerSec = float64(res.Plan.Shards) / (elapsed / 1e9)
			pt.RequestsPerSec = float64(res.Requests) / (elapsed / 1e9)
		}
		if elapsed > 0 && baseElapsed > 0 {
			pt.Speedup = baseElapsed / elapsed
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
