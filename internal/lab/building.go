package lab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"mkbas/internal/attack"
	"mkbas/internal/bas"
	"mkbas/internal/faultinject"
	"mkbas/internal/perf"
)

// marshalIndent is the package's canonical report rendering: indented JSON
// with a trailing newline.
func marshalIndent(v any) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// The building campaign axis (experiment E11): instead of one board per
// shard, each shard is a whole multi-room building — rooms × platform mix ×
// secure-proxy coverage × attacker on/off. Shards stay fully independent
// (each building owns its bus, boards, and head-end), so the sharded runner
// and the merge-by-shard determinism contract carry over unchanged.

// Mix names a building's platform rotation. "paper" rotates the three
// headline platforms; "all" rotates every registered platform; a single
// platform name is a homogeneous building; names joined by '+' rotate in the
// given order (comma is the sweep grammar's value separator).
type Mix string

// Platforms expands the mix to the rotation building.Config consumes.
func (m Mix) Platforms() ([]bas.Platform, error) {
	switch m {
	case "paper":
		return attack.AllPlatforms(), nil
	case "all":
		return bas.KnownPlatforms(), nil
	}
	known := make(map[bas.Platform]bool)
	for _, p := range bas.KnownPlatforms() {
		known[p] = true
	}
	var out []bas.Platform
	for _, part := range strings.Split(string(m), "+") {
		p := bas.Platform(strings.TrimSpace(part))
		if !known[p] {
			return nil, fmt.Errorf("lab: unknown platform %q in mix %q", p, m)
		}
		out = append(out, p)
	}
	return out, nil
}

// SecurePattern names which rooms sit behind the secure proxy: "none",
// "all", "even", "odd", or explicit room indices joined by '+' ("0+3+5").
type SecurePattern string

// Rooms expands the pattern for a building of n rooms.
func (s SecurePattern) Rooms(n int) ([]bool, error) {
	out := make([]bool, n)
	switch s {
	case "none", "":
		return nil, nil
	case "all":
		for i := range out {
			out[i] = true
		}
	case "even":
		for i := range out {
			out[i] = i%2 == 0
		}
	case "odd":
		for i := range out {
			out[i] = i%2 == 1
		}
	default:
		for _, part := range strings.Split(string(s), "+") {
			i, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || i < 0 {
				return nil, fmt.Errorf("lab: secure pattern %q: bad room index %q", s, part)
			}
			if i < n {
				out[i] = true
			}
		}
	}
	return out, nil
}

// BuildingSweep is a building-campaign: the cross product of room counts,
// platform mixes, secure-coverage patterns, and attacker on/off. Settle and
// Window apply to every case (they size virtual time, not the sweep).
type BuildingSweep struct {
	Rooms   []int           `json:"rooms"`
	Mixes   []Mix           `json:"mixes"`
	Secures []SecurePattern `json:"secures"`
	Attacks []bool          `json:"attacks"`
	// Monitors is the policy-monitor axis (E12): "off", "on", "demote".
	Monitors []string `json:"monitors,omitempty"`
	// BusFaults is the bus-level fault-plan axis (E15): builtin plan names,
	// "" (or "none") for the unfaulted baseline.
	BusFaults []string `json:"bus_faults,omitempty"`
	// Standbys is the standby head-end axis (E15).
	Standbys []bool `json:"standbys,omitempty"`
	// APIs is the tenant-API-tier axis (E16): attach the building-scale
	// occupant gateway with its deterministic per-round traffic.
	APIs   []bool        `json:"apis,omitempty"`
	Settle time.Duration `json:"settle,omitempty"`
	Window time.Duration `json:"window,omitempty"`
}

func (s BuildingSweep) withDefaults() BuildingSweep {
	if len(s.Rooms) == 0 {
		s.Rooms = []int{4}
	}
	if len(s.Mixes) == 0 {
		s.Mixes = []Mix{"paper"}
	}
	if len(s.Secures) == 0 {
		s.Secures = []SecurePattern{"even"}
	}
	if len(s.Attacks) == 0 {
		s.Attacks = []bool{true}
	}
	if len(s.Monitors) == 0 {
		s.Monitors = []string{MonitorOff}
	}
	if len(s.BusFaults) == 0 {
		s.BusFaults = []string{""}
	}
	if len(s.Standbys) == 0 {
		s.Standbys = []bool{false}
	}
	if len(s.APIs) == 0 {
		s.APIs = []bool{false}
	}
	return s
}

// Validate rejects bad axis values before any building boots.
func (s BuildingSweep) Validate() error {
	s = s.withDefaults()
	for _, n := range s.Rooms {
		if n <= 0 {
			return fmt.Errorf("lab: building needs at least one room, got %d", n)
		}
	}
	for _, m := range s.Mixes {
		if _, err := m.Platforms(); err != nil {
			return err
		}
	}
	for _, sp := range s.Secures {
		if _, err := sp.Rooms(1); err != nil {
			return err
		}
	}
	for _, m := range s.Monitors {
		switch m {
		case MonitorOff, MonitorOn, MonitorDemote:
		default:
			return fmt.Errorf("lab: unknown monitor mode %q (known: off, on, demote)", m)
		}
	}
	for _, plan := range s.BusFaults {
		if plan == "" {
			continue
		}
		if _, err := faultinject.Lookup(plan); err != nil {
			return err
		}
	}
	return nil
}

// BuildingCase is one fully specified building run.
type BuildingCase struct {
	Shard  int           `json:"shard"`
	Rooms  int           `json:"rooms"`
	Mix    Mix           `json:"mix"`
	Secure SecurePattern `json:"secure"`
	Attack bool          `json:"attack"`
	// Monitor is "" (off), MonitorOn, or MonitorDemote — kept empty for the
	// off case so pre-monitor campaign reports stay byte-identical.
	Monitor string `json:"monitor,omitempty"`
	// BusFaults and Standby are the resilience axes (E15), both zero for
	// pre-resilience campaigns so their reports stay byte-identical.
	BusFaults string `json:"bus_faults,omitempty"`
	Standby   bool   `json:"standby,omitempty"`
	// API attaches the tenant API tier (E16), zero for pre-API campaigns so
	// their reports stay byte-identical.
	API bool `json:"api,omitempty"`
}

// String renders the case compactly for logs.
func (c BuildingCase) String() string {
	s := fmt.Sprintf("%d: rooms=%d mix=%s secure=%s attack=%v", c.Shard, c.Rooms, c.Mix, c.Secure, c.Attack)
	if c.Monitor != "" && c.Monitor != MonitorOff {
		s += " monitor=" + c.Monitor
	}
	if c.BusFaults != "" {
		s += " busfaults=" + c.BusFaults
	}
	if c.Standby {
		s += " standby=true"
	}
	if c.API {
		s += " api=true"
	}
	return s
}

// Spec translates the case into an attack.BuildingSpec. Each case runs its
// rooms serially (Workers 1): the campaign's parallelism is across shards.
func (c BuildingCase) Spec(settle, window time.Duration) (attack.BuildingSpec, error) {
	mix, err := c.Mix.Platforms()
	if err != nil {
		return attack.BuildingSpec{}, err
	}
	secure, err := c.Secure.Rooms(c.Rooms)
	if err != nil {
		return attack.BuildingSpec{}, err
	}
	return attack.BuildingSpec{
		Rooms:     c.Rooms,
		Mix:       mix,
		Secure:    secure,
		Attack:    c.Attack,
		Settle:    settle,
		Window:    window,
		Workers:   1,
		Monitor:   c.Monitor == MonitorOn,
		Demote:    c.Monitor == MonitorDemote,
		BusFaults: c.BusFaults,
		Standby:   c.Standby,
		TenantAPI: c.API,
	}, nil
}

// Expand enumerates the cases in deterministic order: rooms, mix, secure,
// attack, monitor — outermost to innermost.
func (s BuildingSweep) Expand() []BuildingCase {
	s = s.withDefaults()
	var cases []BuildingCase
	for _, rooms := range s.Rooms {
		for _, mix := range s.Mixes {
			for _, secure := range s.Secures {
				for _, att := range s.Attacks {
					for _, mon := range s.Monitors {
						if mon == MonitorOff {
							mon = ""
						}
						for _, plan := range s.BusFaults {
							for _, standby := range s.Standbys {
								for _, api := range s.APIs {
									cases = append(cases, BuildingCase{
										Shard:     len(cases),
										Rooms:     rooms,
										Mix:       mix,
										Secure:    secure,
										Attack:    att,
										Monitor:   mon,
										BusFaults: plan,
										Standby:   standby,
										API:       api,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return cases
}

// ParseBuildingSweep parses the building sweep grammar, the same
// semicolon/comma shape as ParseSweep:
//
//	rooms=4,16;mix=paper,linux;secure=even,none;attack=both;settle=10m;window=20m
//
// attack accepts "on", "off", and "both"; settle and window take Go
// durations and apply to every case.
func ParseBuildingSweep(spec string) (BuildingSweep, error) {
	var s BuildingSweep
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		axis, values, ok := strings.Cut(clause, "=")
		if !ok {
			return BuildingSweep{}, fmt.Errorf("lab: building sweep clause %q is not axis=values", clause)
		}
		axis = strings.TrimSpace(axis)
		var vals []string
		for _, v := range strings.Split(values, ",") {
			if v = strings.TrimSpace(v); v != "" {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return BuildingSweep{}, fmt.Errorf("lab: building sweep axis %q has no values", axis)
		}
		switch axis {
		case "rooms":
			for _, v := range vals {
				n, err := strconv.Atoi(v)
				if err != nil {
					return BuildingSweep{}, fmt.Errorf("lab: rooms %q is not an integer", v)
				}
				s.Rooms = append(s.Rooms, n)
			}
		case "mix":
			for _, v := range vals {
				s.Mixes = append(s.Mixes, Mix(v))
			}
		case "secure":
			for _, v := range vals {
				s.Secures = append(s.Secures, SecurePattern(v))
			}
		case "attack":
			for _, v := range vals {
				switch v {
				case "on":
					s.Attacks = append(s.Attacks, true)
				case "off":
					s.Attacks = append(s.Attacks, false)
				case "both":
					s.Attacks = append(s.Attacks, false, true)
				default:
					return BuildingSweep{}, fmt.Errorf("lab: attack value %q (want on, off, or both)", v)
				}
			}
		case "monitor", "monitors":
			for _, v := range vals {
				if v == "all" {
					s.Monitors = append(s.Monitors, AllMonitors()...)
				} else {
					s.Monitors = append(s.Monitors, v)
				}
			}
		case "busfaults":
			for _, v := range vals {
				if v == "none" {
					v = ""
				}
				s.BusFaults = append(s.BusFaults, v)
			}
		case "standby":
			for _, v := range vals {
				switch v {
				case "on":
					s.Standbys = append(s.Standbys, true)
				case "off":
					s.Standbys = append(s.Standbys, false)
				case "both":
					s.Standbys = append(s.Standbys, false, true)
				default:
					return BuildingSweep{}, fmt.Errorf("lab: standby value %q (want on, off, or both)", v)
				}
			}
		case "api":
			for _, v := range vals {
				switch v {
				case "on":
					s.APIs = append(s.APIs, true)
				case "off":
					s.APIs = append(s.APIs, false)
				case "both":
					s.APIs = append(s.APIs, false, true)
				default:
					return BuildingSweep{}, fmt.Errorf("lab: api value %q (want on, off, or both)", v)
				}
			}
		case "settle", "window":
			if len(vals) != 1 {
				return BuildingSweep{}, fmt.Errorf("lab: %s takes one duration", axis)
			}
			d, err := time.ParseDuration(vals[0])
			if err != nil {
				return BuildingSweep{}, fmt.Errorf("lab: %s %q: %w", axis, vals[0], err)
			}
			if axis == "settle" {
				s.Settle = d
			} else {
				s.Window = d
			}
		default:
			return BuildingSweep{}, fmt.Errorf("lab: unknown building sweep axis %q (known: api, attack, busfaults, mix, monitor, rooms, secure, settle, standby, window)", axis)
		}
	}
	s.Rooms = dedupInts(s.Rooms)
	s.Mixes = dedup(s.Mixes)
	s.Secures = dedup(s.Secures)
	s.Attacks = dedup(s.Attacks)
	s.Monitors = dedup(s.Monitors)
	s.BusFaults = dedup(s.BusFaults)
	s.Standbys = dedup(s.Standbys)
	s.APIs = dedup(s.APIs)
	if err := s.Validate(); err != nil {
		return BuildingSweep{}, err
	}
	return s, nil
}

// BuildingShard is one building case's outcome, in shard position.
type BuildingShard struct {
	Case BuildingCase `json:"case"`
	// Alarm/Compromised summarise the rows for quick grepping; Report holds
	// the full per-room table.
	Alarm       bool                   `json:"alarm"`
	Compromised []int                  `json:"compromised"`
	Report      *attack.BuildingReport `json:"report"`
}

// BuildingResult is a completed building campaign; like Result, its JSON is
// a deterministic function of the sweep alone.
type BuildingResult struct {
	Sweep BuildingSweep   `json:"sweep"`
	Cases []BuildingShard `json:"cases"`
	// Workers and Elapsed describe this execution, not the experiment.
	Workers int           `json:"-"`
	Elapsed time.Duration `json:"-"`
}

// JSON renders the campaign as indented JSON with a trailing newline.
func (r *BuildingResult) JSON() ([]byte, error) {
	return marshalIndent(r)
}

// BuildingOptions configures a building campaign run.
type BuildingOptions struct {
	// Workers is the number of buildings in flight at once; zero means 1.
	// Within each building the rooms run serially.
	Workers int
	// Progress, when non-nil, receives one callback per finished case.
	Progress func(c BuildingCase, r *attack.BuildingReport)
	// Profiler attaches the host-side performance profiler; see
	// Options.Profiler. Building shards book into "lab.shard" too — the
	// phase names what the pool schedules, not what runs inside.
	Profiler *perf.Profiler
}

// RunBuilding executes every case of the building sweep across a worker
// pool, mirroring Run's merge-by-shard determinism.
func RunBuilding(sweep BuildingSweep, opts BuildingOptions) (*BuildingResult, error) {
	if err := sweep.Validate(); err != nil {
		return nil, err
	}
	sweep = sweep.withDefaults()
	cases := sweep.Expand()
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(cases) {
		workers = len(cases)
	}

	start := time.Now()
	reports := make([]*attack.BuildingReport, len(cases))
	errs := make([]error, len(cases))
	jobs := make(chan int, len(cases))
	pool := newPoolStats(opts.Profiler, workers)
	phShard := opts.Profiler.Phase("lab.shard")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		var track *perf.Track
		if opts.Profiler.TimelineEnabled() {
			track = opts.Profiler.Track(fmt.Sprintf("lab-worker-%02d", w))
		}
		go func(w int) {
			defer wg.Done()
			for i := range jobs {
				pool.enter(len(jobs))
				var label string
				if track != nil {
					label = fmt.Sprintf("shard-%02d", i)
				}
				sc := phShard.BeginOn(track, label)
				jobStart := time.Now()
				c := cases[i]
				spec, err := c.Spec(sweep.Settle, sweep.Window)
				if err != nil {
					errs[i] = err
					sc.End()
					pool.exit(w, time.Since(jobStart))
					continue
				}
				spec.Profiler = opts.Profiler
				r, err := attack.ExecuteBuilding(spec)
				if err != nil {
					errs[i] = fmt.Errorf("lab: building shard %s: %w", c, err)
					sc.End()
					pool.exit(w, time.Since(jobStart))
					continue
				}
				reports[i] = r
				if opts.Progress != nil {
					opts.Progress(c, r)
				}
				sc.End()
				pool.exit(w, time.Since(jobStart))
			}
		}(w)
	}
	for i := range cases {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	pool.export("lab", int64(time.Since(start)))

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &BuildingResult{
		Sweep:   sweep,
		Cases:   make([]BuildingShard, len(cases)),
		Workers: workers,
		Elapsed: time.Since(start),
	}
	for i, c := range cases {
		res.Cases[i] = BuildingShard{
			Case:        c,
			Alarm:       reports[i].Alarm,
			Compromised: reports[i].Compromised(),
			Report:      reports[i],
		}
	}
	return res, nil
}

// BenchBuilding measures one building's lockstep scaling: the same spec runs
// once per worker count, and every run's report must be byte-identical to
// the serial baseline (spec.Workers is excluded from the report JSON). It
// reuses the campaign bench shapes, with rooms standing in for shards.
func BenchBuilding(spec attack.BuildingSpec, workerCounts []int, hostCPUs int) (*BenchReport, error) {
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("lab: no worker counts to bench")
	}
	rep := &BenchReport{
		Shards:               spec.Rooms,
		Identical:            true,
		HostCPUs:             hostCPUs,
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		ParallelismEffective: WarnIfSerial("building"),
	}
	var baseline []byte
	var baseElapsed float64
	// Every room board simulates the spec's full virtual timeline.
	virtSecsPerBoard := spec.Duration().Seconds()
	for i, w := range workerCounts {
		spec.Workers = w
		start := time.Now()
		res, err := attack.ExecuteBuilding(spec)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		out, err := marshalIndent(res)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseline = out
			baseElapsed = float64(wall.Nanoseconds())
		} else if !bytes.Equal(out, baseline) {
			rep.Identical = false
		}
		elapsed := float64(wall.Nanoseconds())
		rep.Points = append(rep.Points, BenchPoint{
			Workers:          w,
			ElapsedMS:        elapsed / 1e6,
			ShardsPerSec:     perSec(float64(spec.Rooms), elapsed),
			BoardStepsPerSec: perSec(float64(spec.Rooms)*virtSecsPerBoard, elapsed),
			Speedup:          speedupOf(baseElapsed, elapsed),
		})
	}
	return rep, nil
}
