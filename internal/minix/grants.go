package minix

import (
	"errors"
	"fmt"

	"mkbas/internal/machine"
)

// Memory grants, the third MINIX 3 IPC mechanism the paper lists
// ("MINIX 3 IPC directly supports synchronous and asynchronous message
// passing, and memory grants"): fixed 64-byte messages cannot carry bulk
// data, so a process grants a peer bounded access to one of its buffers and
// the peer moves bytes with kernel-checked safe-copies.
//
// The simulation keeps MINIX's safety properties: a grant names exactly one
// grantee endpoint and an access mode; safecopies are bounds-checked against
// the granted region; revocation is immediate; and a grant dies with its
// grantor. The grant ID is transferred to the peer inside an ordinary
// message (subject to the ACM like any payload), so grant-based transfers
// inherit the same mandatory policy as everything else.

// GrantID names one grant in its grantor's grant table.
type GrantID uint32

// Grant access modes.
type GrantAccess uint8

const (
	// GrantRead lets the grantee read the region.
	GrantRead GrantAccess = 1 << iota
	// GrantWrite lets the grantee write the region.
	GrantWrite
)

// Grant errors.
var (
	ErrBadGrant      = errors.New("minix: invalid or revoked grant")
	ErrGrantAccess   = errors.New("minix: grant does not permit this access")
	ErrGrantBounds   = errors.New("minix: safecopy outside granted region")
	ErrNotGrantee    = errors.New("minix: caller is not the grantee")
	ErrGrantExceeded = errors.New("minix: grant table full")
)

// maxGrantsPerProc bounds each process's grant table.
const maxGrantsPerProc = 64

// grant is one grant-table entry.
type grant struct {
	id      GrantID
	buf     []byte
	access  GrantAccess
	grantee Endpoint
	revoked bool
}

// Grant trap requests.
type (
	grantCreateReq struct {
		buf     []byte
		access  GrantAccess
		grantee Endpoint
	}
	grantRevokeReq struct {
		id GrantID
	}
	safeCopyReq struct {
		granter Endpoint
		id      GrantID
		offset  int
		length  int
		src     []byte // nil for reads
	}
)

type grantReply struct {
	id  GrantID
	err error
}

// GrantCreate grants grantee the given access to buf. The kernel retains a
// reference to buf, so writes through the grant are visible to the grantor —
// the shared-memory semantics of real grants.
func (a *API) GrantCreate(buf []byte, access GrantAccess, grantee Endpoint) (GrantID, error) {
	reply := a.ctx.Trap(grantCreateReq{buf: buf, access: access, grantee: grantee}).(grantReply)
	return reply.id, reply.err
}

// GrantRevoke invalidates a grant immediately.
func (a *API) GrantRevoke(id GrantID) error {
	return a.ctx.Trap(grantRevokeReq{id: id}).(errReply).err
}

// SafeCopyFrom copies length bytes from the granted region at offset into a
// new slice. The caller must be the grantee and the grant must permit reads.
func (a *API) SafeCopyFrom(granter Endpoint, id GrantID, offset, length int) ([]byte, error) {
	reply := a.ctx.Trap(safeCopyReq{granter: granter, id: id, offset: offset, length: length}).(bytesReply)
	return reply.data, reply.err
}

// SafeCopyTo copies src into the granted region at offset. The caller must
// be the grantee and the grant must permit writes.
func (a *API) SafeCopyTo(granter Endpoint, id GrantID, offset int, src []byte) error {
	reply := a.ctx.Trap(safeCopyReq{granter: granter, id: id, offset: offset, length: len(src), src: src}).(bytesReply)
	return reply.err
}

// doGrantCreate handles grant creation.
func (k *Kernel) doGrantCreate(self *procEntry, r grantCreateReq) (any, machine.Disposition) {
	if len(self.grants) >= maxGrantsPerProc {
		return grantReply{err: ErrGrantExceeded}, machine.DispositionContinue
	}
	if r.buf == nil || r.access == 0 {
		return grantReply{err: fmt.Errorf("%w: empty buffer or no access bits", ErrBadGrant)}, machine.DispositionContinue
	}
	self.nextGrant++
	g := &grant{id: self.nextGrant, buf: r.buf, access: r.access, grantee: r.grantee}
	if self.grants == nil {
		self.grants = make(map[GrantID]*grant)
	}
	self.grants[g.id] = g
	return grantReply{id: g.id}, machine.DispositionContinue
}

// doGrantRevoke handles revocation.
func (k *Kernel) doGrantRevoke(self *procEntry, r grantRevokeReq) (any, machine.Disposition) {
	g, ok := self.grants[r.id]
	if !ok || g.revoked {
		return errReply{err: fmt.Errorf("%w: id %d", ErrBadGrant, r.id)}, machine.DispositionContinue
	}
	g.revoked = true
	delete(self.grants, r.id)
	return errReply{}, machine.DispositionContinue
}

// doSafeCopy handles both copy directions with full checking.
func (k *Kernel) doSafeCopy(self *procEntry, r safeCopyReq) (any, machine.Disposition) {
	granter := k.resolve(r.granter)
	if granter == nil {
		return bytesReply{err: fmt.Errorf("%w: %v", ErrDeadSrcDst, r.granter)}, machine.DispositionContinue
	}
	g, ok := granter.grants[r.id]
	if !ok || g.revoked {
		return bytesReply{err: fmt.Errorf("%w: id %d", ErrBadGrant, r.id)}, machine.DispositionContinue
	}
	if g.grantee != self.ep {
		return bytesReply{err: fmt.Errorf("%w: grant %d belongs to %v", ErrNotGrantee, r.id, g.grantee)}, machine.DispositionContinue
	}
	if r.offset < 0 || r.length < 0 || r.offset+r.length > len(g.buf) {
		return bytesReply{err: fmt.Errorf("%w: [%d,%d) of %d", ErrGrantBounds, r.offset, r.offset+r.length, len(g.buf))}, machine.DispositionContinue
	}
	if r.src == nil {
		if g.access&GrantRead == 0 {
			return bytesReply{err: fmt.Errorf("%w: read", ErrGrantAccess)}, machine.DispositionContinue
		}
		out := make([]byte, r.length)
		copy(out, g.buf[r.offset:])
		return bytesReply{data: out}, machine.DispositionContinue
	}
	if g.access&GrantWrite == 0 {
		return bytesReply{err: fmt.Errorf("%w: write", ErrGrantAccess)}, machine.DispositionContinue
	}
	copy(g.buf[r.offset:r.offset+r.length], r.src)
	return bytesReply{}, machine.DispositionContinue
}
