package minix

import (
	"fmt"
	"time"

	"mkbas/internal/core"
	"mkbas/internal/machine"
	"mkbas/internal/obs"
)

// RSName is the reincarnation server's published name.
const RSName = "rs"

// maxRestartsPerImage caps crash-loop respawns of one driver image.
const maxRestartsPerImage = 10

// Restart pacing: the first respawn waits rsBackoffBase, doubling per
// consecutive crash up to rsBackoffMax. After rsStablePeriod without a crash
// of the image, its restart budget and backoff reset — a driver that crashed
// a week ago should not have its budget consumed forever.
const (
	rsBackoffBase  = 50 * time.Millisecond
	rsBackoffMax   = 10 * time.Second
	rsStablePeriod = 10 * time.Minute
)

// rsServer is the reincarnation server: MINIX 3's self-repair component
// ("a highly reliable, self-repairing operating system"). The kernel reports
// the crash of any Restart-flagged process; RS respawns the same image with
// the same access-control identity, so the ACM policy keeps applying to the
// reborn driver.
type rsServer struct {
	k  *Kernel
	ep Endpoint

	restarts  map[string]int
	lastCrash map[string]machine.Time
	total     int64
	giveUps   int64
}

func newRSServer(k *Kernel) *rsServer {
	return &rsServer{k: k, restarts: make(map[string]int), lastCrash: make(map[string]machine.Time)}
}

// rsImage is the RS boot image.
func rsImage(rs *rsServer) Image {
	return Image{
		Name:     RSName,
		Body:     rs.run,
		Priority: 1,
		Server:   true,
	}
}

// backoff returns the exponential restart delay for the n-th consecutive
// restart (n counted from 1).
func rsBackoff(n int) time.Duration {
	d := rsBackoffBase
	for i := 1; i < n && d < rsBackoffMax; i++ {
		d *= 2
	}
	if d > rsBackoffMax {
		d = rsBackoffMax
	}
	return d
}

// run is the RS main loop: wait for kernel exit reports, respawn drivers.
func (rs *rsServer) run(api *API) {
	rs.ep = api.Self()
	for {
		msg, err := api.Receive(EndpointAny)
		if err != nil || msg.Type != TypeProcExit {
			continue
		}
		image := msg.GetString(8)
		acid := core.ACID(msg.U32(44))
		now := api.Now()

		// Budget decay: a sustained stable period forgives past crashes, so
		// the cap bounds crash *loops*, not lifetime restarts.
		if last, ok := rs.lastCrash[image]; ok && now.Sub(last) >= rsStablePeriod {
			rs.restarts[image] = 0
		}
		rs.lastCrash[image] = now

		if rs.restarts[image] >= maxRestartsPerImage {
			rs.giveUps++
			api.Trace("minix-rs", fmt.Sprintf("giving up on %s after %d restarts", image, rs.restarts[image]))
			rs.k.events.Emit(obs.SecurityEvent{
				Kind:      obs.EventRestartGiveUp,
				Mechanism: obs.MechRecovery,
				Src:       RSName,
				Dst:       image,
				Detail:    fmt.Sprintf("restart budget exhausted after %d restarts", rs.restarts[image]),
			})
			continue
		}

		// Exponential backoff paces crash loops without stalling the first
		// recovery: 50ms, 100ms, 200ms, ... capped at 10s.
		api.Sleep(rsBackoff(rs.restarts[image] + 1))

		ep, err := api.kSpawn(image, acid)
		if err != nil {
			api.Trace("minix-rs", fmt.Sprintf("restart of %s failed: %v", image, err))
			rs.k.events.Emit(obs.SecurityEvent{
				Kind:      obs.EventRestartGiveUp,
				Mechanism: obs.MechRecovery,
				Src:       RSName,
				Dst:       image,
				Detail:    "respawn failed: " + err.Error(),
			})
			continue
		}
		rs.restarts[image]++
		rs.total++
		api.Trace("minix-rs", fmt.Sprintf("restarted %s as %v (restart #%d)", image, ep, rs.restarts[image]))
		rs.k.events.Emit(obs.SecurityEvent{
			Kind:      obs.EventRestart,
			Mechanism: obs.MechRecovery,
			Src:       RSName,
			Dst:       image,
			Detail:    fmt.Sprintf("restart #%d", rs.restarts[image]),
		})
	}
}

// RSView exposes RS state to experiments.
type RSView struct {
	rs *rsServer
}

// RS returns the reincarnation-server view.
func (k *Kernel) RS() *RSView { return &RSView{rs: k.rs} }

// Restarts reports how many times an image has been reincarnated within the
// current crash-loop window (the counter resets after a stable period).
func (v *RSView) Restarts(image string) int { return v.rs.restarts[image] }

// TotalRestarts reports all reincarnations on this boot.
func (v *RSView) TotalRestarts() int64 { return v.rs.total }

// GiveUps reports how many crash reports RS abandoned.
func (v *RSView) GiveUps() int64 { return v.rs.giveUps }
