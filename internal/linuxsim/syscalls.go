package linuxsim

import (
	"errors"
	"fmt"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/obs"
	"mkbas/internal/vnet"
)

// Trap request types.
type (
	mqOpenReq struct {
		name     string
		create   bool
		excl     bool
		mode     Mode
		maxMsgs  int
		read     bool
		write    bool
		nonblock bool
	}
	mqSendReq struct {
		fd   int32
		data []byte
		prio uint32
	}
	mqReceiveReq struct {
		fd int32
	}
	mqReceiveTimeoutReq struct {
		fd int32
		d  time.Duration
	}
	mqUnlinkReq struct {
		name string
	}
	mqCloseReq struct {
		fd int32
	}
	killReq struct {
		unixPID int
		sig     int
	}
	forkReq struct {
		image string
	}
	respawnReq struct {
		image string
	}
	getPIDReq  struct{}
	getUIDReq  struct{}
	sleepReq   struct{ d time.Duration }
	devReadReq struct {
		dev machine.DeviceID
		reg uint32
	}
	devWriteReq struct {
		dev   machine.DeviceID
		reg   uint32
		value uint32
	}
	traceReq struct{ tag, text string }
	exitReq  struct{}

	netListenReq struct{ port vnet.Port }
	netAcceptReq struct{ listener int32 }
	netReadReq   struct {
		conn int32
		max  int
	}
	netWriteReq struct {
		conn int32
		data []byte
	}
	netCloseReq struct{ conn int32 }
)

// Trap reply types.
type (
	errReply struct{ err error }
	fdReply  struct {
		fd  int32
		err error
	}
	msgReply struct {
		msg MQMsg
		err error
	}
	intReply struct {
		value int
		err   error
	}
	u32Reply struct {
		value uint32
		err   error
	}
	handleReply struct {
		handle int32
		err    error
	}
	bytesReply struct {
		data []byte
		err  error
	}
)

// HandleTrap implements machine.TrapHandler.
func (k *Kernel) HandleTrap(pid machine.PID, req any) (any, machine.Disposition) {
	self := k.procOf(pid)
	switch r := req.(type) {
	case mqOpenReq:
		return k.doMQOpen(self, r)
	case *mqSendReq:
		return k.doMQSend(self, r)
	case *mqReceiveReq:
		return k.doMQReceive(self, r.fd)
	case *mqReceiveTimeoutReq:
		return k.doMQReceiveTimeout(self, r)
	case mqUnlinkReq:
		return k.doMQUnlink(self, r)
	case mqCloseReq:
		if _, ok := self.fds[r.fd]; !ok {
			return errReply{err: ErrBadFD}, machine.DispositionContinue
		}
		delete(self.fds, r.fd)
		return errReply{}, machine.DispositionContinue
	case killReq:
		return k.doKill(self, r)
	case forkReq:
		img, ok := k.images[r.image]
		if !ok {
			return intReply{err: fmt.Errorf("%w: %q", ErrUnknownImage, r.image)}, machine.DispositionContinue
		}
		// fork/exec inherits the caller's credentials, not the image's
		// declared ones.
		img.UID = self.uid
		img.GID = self.gid
		unixPID, err := k.spawn(img)
		return intReply{value: unixPID, err: err}, machine.DispositionContinue
	case respawnReq:
		return k.doRespawn(self, r)
	case getPIDReq:
		return intReply{value: self.unixPID}, machine.DispositionContinue
	case getUIDReq:
		return intReply{value: self.uid}, machine.DispositionContinue
	case *sleepReq:
		return k.doSleep(self, r)
	case *devReadReq:
		df, ok := k.devs[r.dev]
		if !ok {
			return self.u32Out(0, fmt.Errorf("%w: device %q", ErrNoEnt, r.dev)), machine.DispositionContinue
		}
		if !allowed(self.uid, self.gid, df.ownerUID, df.ownerGID, df.mode, true, false) {
			k.dacDeny(obs.EventSyscallDenied, self.name, string(r.dev), fmt.Sprintf("read /dev/%s reg %d", r.dev, r.reg))
			return self.u32Out(0, fmt.Errorf("%w: read %q", ErrPerm, r.dev)), machine.DispositionContinue
		}
		v, err := k.m.Bus().Read(r.dev, r.reg)
		return self.u32Out(v, err), machine.DispositionContinue
	case *devWriteReq:
		df, ok := k.devs[r.dev]
		if !ok {
			return self.errOut(fmt.Errorf("%w: device %q", ErrNoEnt, r.dev)), machine.DispositionContinue
		}
		if !allowed(self.uid, self.gid, df.ownerUID, df.ownerGID, df.mode, false, true) {
			k.dacDeny(obs.EventSyscallDenied, self.name, string(r.dev), fmt.Sprintf("write /dev/%s reg %d", r.dev, r.reg))
			return self.errOut(fmt.Errorf("%w: write %q", ErrPerm, r.dev)), machine.DispositionContinue
		}
		return self.errOut(k.m.Bus().Write(r.dev, r.reg, r.value)), machine.DispositionContinue
	case traceReq:
		k.m.Trace().Logf(r.tag, "%s", r.text)
		return errReply{}, machine.DispositionContinue
	case exitReq:
		if err := k.m.Engine().Kill(pid); err != nil {
			return errReply{err: err}, machine.DispositionContinue
		}
		return errReply{}, machine.DispositionContinue
	case netListenReq:
		return k.doNetListen(self, r)
	case netAcceptReq:
		return k.doNetAccept(self, r)
	case netReadReq:
		return k.doNetRead(self, r)
	case netWriteReq:
		return k.doNetWrite(self, r)
	case netCloseReq:
		return k.doNetClose(self, r)
	default:
		return errReply{err: fmt.Errorf("linuxsim: unknown trap %T", req)}, machine.DispositionContinue
	}
}

// doMQOpen implements mq_open with O_CREAT/O_EXCL and access-mode flags.
func (k *Kernel) doMQOpen(self *proc, r mqOpenReq) (any, machine.Disposition) {
	q, exists := k.mqs[r.name]
	switch {
	case exists && r.create && r.excl:
		return fdReply{err: fmt.Errorf("%w: queue %q", ErrExist, r.name)}, machine.DispositionContinue
	case !exists && !r.create:
		return fdReply{err: fmt.Errorf("%w: queue %q", ErrNoEnt, r.name)}, machine.DispositionContinue
	case !exists:
		maxMsgs := r.maxMsgs
		if maxMsgs <= 0 {
			maxMsgs = k.cfg.DefaultMaxMsgs
		}
		q = &mqueue{
			name:     r.name,
			ownerUID: self.uid,
			ownerGID: self.gid,
			mode:     r.mode,
			maxMsgs:  maxMsgs,
			depth:    k.reg.Gauge(fmt.Sprintf("linux_mq_depth{queue=%q}", r.name)),
		}
		k.mqs[r.name] = q
	}
	if !allowed(self.uid, self.gid, q.ownerUID, q.ownerGID, q.mode, r.read, r.write) {
		k.dacDeny(obs.EventIPCDenied, self.name, r.name, fmt.Sprintf("mq_open uid=%d mode=%04o", self.uid, q.mode))
		k.tracer.Emit(self.name, r.name, "mq_open", obs.OutcomeDACDenied)
		k.m.Trace().Logf("linux-dac", "DENY mq_open %s by %s (uid %d)", r.name, self.name, self.uid)
		return fdReply{err: fmt.Errorf("%w: queue %q", ErrPerm, r.name)}, machine.DispositionContinue
	}
	self.nextFD++
	handle := self.nextFD
	self.fds[handle] = &fd{q: q, canRead: r.read, canWrite: r.write, nonblock: r.nonblock}
	return fdReply{fd: handle}, machine.DispositionContinue
}

// getBuf pops a recycled payload buffer (zero length, retained capacity),
// or nil when the pool is empty.
func (k *Kernel) getBuf() []byte {
	if n := len(k.bufPool); n > 0 {
		b := k.bufPool[n-1]
		k.bufPool = k.bufPool[:n-1]
		return b
	}
	return nil
}

// putBuf returns a payload buffer to the pool. The pool is bounded: beyond
// that, buffers fall back to the garbage collector.
func (k *Kernel) putBuf(b []byte) {
	if cap(b) > 0 && len(k.bufPool) < 256 {
		k.bufPool = append(k.bufPool, b[:0])
	}
}

// deliverMsg boxes a delivered message for p and recycles the payload of
// p's previous delivery. A received MQMsg's Data is therefore valid until
// the process's next mq_receive on any descriptor — the contract that lets
// the kernel pool payload copies instead of allocating one per send.
func (k *Kernel) deliverMsg(p *proc, msg MQMsg) any {
	if p.lastMQBuf != nil {
		k.putBuf(p.lastMQBuf)
		p.lastMQBuf = nil
	}
	p.lastMQBuf = msg.Data
	p.msgR = msgReply{msg: msg}
	return &p.msgR
}

// doMQSend implements mq_send: insert by priority, block when full.
func (k *Kernel) doMQSend(self *proc, r *mqSendReq) (any, machine.Disposition) {
	k.mSendsC.Inc()
	f, ok := self.fds[r.fd]
	if !ok || !f.canWrite {
		return self.errOut(ErrBadFD), machine.DispositionContinue
	}
	msg := MQMsg{Data: append(k.getBuf(), r.data...), Prio: r.prio}
	q := f.q
	drop, delay := k.faultFor(self.name, q.name)
	if drop {
		// mq_send reports only queue-level failures; a message lost in
		// transit looks like success to the sender.
		k.putBuf(msg.Data)
		return self.errOut(nil), machine.DispositionContinue
	}
	if delay > 0 {
		// Delayed delivery is asynchronous: the sender continues, the
		// message lands when the delay elapses (lost if the queue is full
		// then — delay plus backpressure exceeds the fault model).
		k.m.Clock().After(delay, func() {
			if k.mqs[q.name] != q {
				return
			}
			k.deliverToQueue(self.name, q, msg)
		})
		return self.errOut(nil), machine.DispositionContinue
	}
	// A blocked reader consumes the message directly.
	if reader := k.popReader(q); reader != nil {
		k.stats.MQSends++
		k.stats.MQReceives++
		k.m.IPC().Record(self.name, q.name, "send")
		k.m.IPC().Record(q.name, reader.name, "recv")
		k.tracer.Emit(self.name, q.name, "mq_send", obs.OutcomeDelivered)
		k.endSpan(reader, obs.OutcomeDelivered)
		reader.phase = phaseIdle
		reader.waitToken++
		k.mustReady(reader.pid, k.deliverMsg(reader, msg))
		return self.errOut(nil), machine.DispositionContinue
	}
	if len(q.msgs) >= q.maxMsgs {
		if f.nonblock {
			k.putBuf(msg.Data)
			return self.errOut(ErrAgain), machine.DispositionContinue
		}
		self.phase = phaseMQSend
		self.span = k.tracer.Begin(self.name, q.name, "mq_send")
		q.writers = append(q.writers, blockedWriter{pid: self.pid, msg: msg})
		return nil, machine.DispositionBlock
	}
	k.stats.MQSends++
	k.m.IPC().Record(self.name, q.name, "send")
	k.tracer.Emit(self.name, q.name, "mq_send", obs.OutcomeDelivered)
	insertByPrio(q, msg)
	q.depth.Set(int64(len(q.msgs)))
	return self.errOut(nil), machine.DispositionContinue
}

// doMQReceive implements mq_receive: highest priority first, block when
// empty.
func (k *Kernel) doMQReceive(self *proc, rfd int32) (any, machine.Disposition) {
	k.mRecvsC.Inc()
	f, ok := self.fds[rfd]
	if !ok || !f.canRead {
		return self.msgErr(ErrBadFD), machine.DispositionContinue
	}
	q := f.q
	if len(q.msgs) > 0 {
		msg := q.msgs[0]
		// Shift down instead of re-slicing: the [1:] form burns capacity,
		// so a fill/drain cycle would re-allocate on every insert.
		copy(q.msgs, q.msgs[1:])
		q.msgs[len(q.msgs)-1] = MQMsg{}
		q.msgs = q.msgs[:len(q.msgs)-1]
		k.stats.MQReceives++
		k.m.IPC().Record(q.name, self.name, "recv")
		k.tracer.Emit(self.name, q.name, "mq_receive", obs.OutcomeDelivered)
		// Unblock one writer into the freed slot.
		if w, ok := k.popWriter(q); ok {
			insertByPrio(q, w.msg)
			k.stats.MQSends++
			wp := k.procs[w.pid]
			k.m.IPC().Record(wp.name, q.name, "send")
			k.endSpan(wp, obs.OutcomeDelivered)
			wp.phase = phaseIdle
			wp.waitToken++
			k.mustReady(w.pid, wp.errOut(nil))
		}
		q.depth.Set(int64(len(q.msgs)))
		return k.deliverMsg(self, msg), machine.DispositionContinue
	}
	if f.nonblock {
		return self.msgErr(ErrAgain), machine.DispositionContinue
	}
	self.phase = phaseMQRecv
	self.span = k.tracer.Begin(self.name, q.name, "mq_receive")
	q.readers = append(q.readers, self.pid)
	return nil, machine.DispositionBlock
}

// doMQReceiveTimeout is mq_timedreceive: MQReceive that gives up with
// ErrTimeout after d of virtual time with no message.
func (k *Kernel) doMQReceiveTimeout(self *proc, r *mqReceiveTimeoutReq) (any, machine.Disposition) {
	reply, disp := k.doMQReceive(self, r.fd)
	if disp == machine.DispositionContinue {
		return reply, disp
	}
	// Blocked: doMQReceive queued the reader; arm the expiry alongside.
	q := self.fds[r.fd].q
	self.waitToken++
	token := self.waitToken
	pid := self.pid
	k.m.Clock().After(r.d, func() {
		p := k.procs[pid]
		if p != self || p.waitToken != token || p.phase != phaseMQRecv {
			return
		}
		p.phase = phaseIdle
		p.waitToken++
		for i, rp := range q.readers {
			if rp == pid {
				q.readers = append(q.readers[:i], q.readers[i+1:]...)
				break
			}
		}
		k.endSpan(p, obs.OutcomeAborted)
		k.mustReady(pid, p.msgErr(ErrTimeout))
	})
	return nil, machine.DispositionBlock
}

// deliverToQueue lands one message on a queue outside the sender's trap
// (delayed delivery): a waiting reader gets it directly, otherwise it queues;
// a full queue loses it.
func (k *Kernel) deliverToQueue(sender string, q *mqueue, msg MQMsg) {
	if reader := k.popReader(q); reader != nil {
		k.stats.MQSends++
		k.stats.MQReceives++
		k.m.IPC().Record(sender, q.name, "send")
		k.m.IPC().Record(q.name, reader.name, "recv")
		k.endSpan(reader, obs.OutcomeDelivered)
		reader.phase = phaseIdle
		reader.waitToken++
		k.mustReady(reader.pid, k.deliverMsg(reader, msg))
		return
	}
	if len(q.msgs) >= q.maxMsgs {
		return
	}
	k.stats.MQSends++
	k.m.IPC().Record(sender, q.name, "send")
	insertByPrio(q, msg)
	q.depth.Set(int64(len(q.msgs)))
}

// doRespawn implements the supervisor syscall: spawn a registered image
// under its *declared* credentials (unlike fork, which inherits the
// caller's). Root only — supervision is a privileged duty, the way
// supervisord runs as root; unprivileged callers are denied and audited.
func (k *Kernel) doRespawn(self *proc, r respawnReq) (any, machine.Disposition) {
	if self.uid != 0 {
		k.dacDeny(obs.EventSyscallDenied, self.name, r.image, fmt.Sprintf("respawn uid=%d", self.uid))
		return intReply{err: fmt.Errorf("%w: respawn %q", ErrPerm, r.image)}, machine.DispositionContinue
	}
	img, ok := k.images[r.image]
	if !ok {
		return intReply{err: fmt.Errorf("%w: %q", ErrUnknownImage, r.image)}, machine.DispositionContinue
	}
	for _, p := range k.byUnix {
		if p.name == r.image {
			return intReply{err: fmt.Errorf("%w: %q is running", ErrExist, r.image)}, machine.DispositionContinue
		}
	}
	unixPID, err := k.spawn(img)
	if err != nil {
		return intReply{err: err}, machine.DispositionContinue
	}
	k.events.Emit(obs.SecurityEvent{
		Kind:      obs.EventRestart,
		Mechanism: obs.MechRecovery,
		Src:       self.name,
		Dst:       r.image,
		Detail:    fmt.Sprintf("respawn #%d", k.spawnCounts[r.image]-1),
	})
	return intReply{value: unixPID}, machine.DispositionContinue
}

// doMQUnlink implements mq_unlink: owner or root only.
func (k *Kernel) doMQUnlink(self *proc, r mqUnlinkReq) (any, machine.Disposition) {
	q, ok := k.mqs[r.name]
	if !ok {
		return errReply{err: fmt.Errorf("%w: queue %q", ErrNoEnt, r.name)}, machine.DispositionContinue
	}
	if self.uid != 0 && self.uid != q.ownerUID {
		k.dacDeny(obs.EventSyscallDenied, self.name, r.name, fmt.Sprintf("mq_unlink uid=%d owner=%d", self.uid, q.ownerUID))
		return errReply{err: fmt.Errorf("%w: unlink %q", ErrPerm, r.name)}, machine.DispositionContinue
	}
	delete(k.mqs, r.name)
	q.depth.Set(0)
	// Blocked parties get ENOENT, like a destroyed queue.
	for _, pid := range q.readers {
		if p := k.procs[pid]; p != nil && p.phase == phaseMQRecv {
			p.phase = phaseIdle
			k.endSpan(p, obs.OutcomeAborted)
			k.mustReady(pid, p.msgErr(fmt.Errorf("%w: queue %q unlinked", ErrNoEnt, r.name)))
		}
	}
	for _, w := range q.writers {
		if p := k.procs[w.pid]; p != nil && p.phase == phaseMQSend {
			p.phase = phaseIdle
			k.endSpan(p, obs.OutcomeAborted)
			k.mustReady(w.pid, p.errOut(fmt.Errorf("%w: queue %q unlinked", ErrNoEnt, r.name)))
		}
	}
	q.readers, q.writers = nil, nil
	return errReply{}, machine.DispositionContinue
}

// doKill implements kill(2): same-uid or root.
func (k *Kernel) doKill(self *proc, r killReq) (any, machine.Disposition) {
	victim, ok := k.byUnix[r.unixPID]
	if !ok {
		return errReply{err: fmt.Errorf("%w: pid %d", ErrNoEnt, r.unixPID)}, machine.DispositionContinue
	}
	if self.uid != 0 && self.uid != victim.uid {
		k.dacDeny(obs.EventKillDenied, self.name, victim.name, fmt.Sprintf("kill pid %d sig %d uid=%d", r.unixPID, r.sig, self.uid))
		k.m.Trace().Logf("linux-dac", "DENY kill %d by %s (uid %d)", r.unixPID, self.name, self.uid)
		return errReply{err: fmt.Errorf("%w: kill %d", ErrPerm, r.unixPID)}, machine.DispositionContinue
	}
	if r.sig != SIGKILL && r.sig != SIGTERM {
		// Non-terminating signals are absorbed.
		return errReply{}, machine.DispositionContinue
	}
	k.stats.Kills++
	k.mKills.Inc()
	k.events.Emit(obs.SecurityEvent{
		Kind:      obs.EventKill,
		Mechanism: obs.MechDAC,
		Src:       self.name,
		Dst:       victim.name,
		Detail:    fmt.Sprintf("uid-authorized kill sig=%d", r.sig),
	})
	k.m.Trace().Logf("linux", "kill %s (pid %d) by %s sig=%d", victim.name, victim.unixPID, self.name, r.sig)
	if err := k.m.Engine().Kill(victim.pid); err != nil {
		return errReply{err: err}, machine.DispositionContinue
	}
	return errReply{}, machine.DispositionContinue
}

func (k *Kernel) doSleep(self *proc, r *sleepReq) (any, machine.Disposition) {
	self.phase = phaseSleeping
	self.waitToken++
	token := self.waitToken
	pid := self.pid
	k.m.Clock().After(r.d, func() {
		p := k.procs[pid]
		if p != self || p.waitToken != token || p.phase != phaseSleeping {
			return
		}
		p.phase = phaseIdle
		k.mustReady(pid, p.errOut(nil))
	})
	return nil, machine.DispositionBlock
}

// popReader dequeues the next still-blocked reader.
func (k *Kernel) popReader(q *mqueue) *proc {
	for len(q.readers) > 0 {
		pid := q.readers[0]
		copy(q.readers, q.readers[1:])
		q.readers = q.readers[:len(q.readers)-1]
		if p := k.procs[pid]; p != nil && p.phase == phaseMQRecv {
			return p
		}
	}
	return nil
}

// popWriter dequeues the next still-blocked writer.
func (k *Kernel) popWriter(q *mqueue) (blockedWriter, bool) {
	for len(q.writers) > 0 {
		w := q.writers[0]
		copy(q.writers, q.writers[1:])
		q.writers[len(q.writers)-1] = blockedWriter{}
		q.writers = q.writers[:len(q.writers)-1]
		if p := k.procs[w.pid]; p != nil && p.phase == phaseMQSend {
			return w, true
		}
	}
	return blockedWriter{}, false
}

// insertByPrio inserts keeping the queue sorted by descending priority,
// FIFO within a priority (POSIX semantics).
func insertByPrio(q *mqueue, msg MQMsg) {
	i := len(q.msgs)
	for i > 0 && q.msgs[i-1].Prio < msg.Prio {
		i--
	}
	q.msgs = append(q.msgs, MQMsg{})
	copy(q.msgs[i+1:], q.msgs[i:])
	q.msgs[i] = msg
}

// OnProcExit implements machine.TrapHandler.
func (k *Kernel) OnProcExit(pid machine.PID, info machine.ExitInfo) {
	p, ok := k.procs[pid]
	if !ok {
		return
	}
	if info.Crashed {
		k.m.Trace().Logf("linux", "SEGFAULT %s: %v", p.name, info.PanicValue)
	}
	k.endSpan(p, obs.OutcomeAborted)
	delete(k.procs, pid)
	delete(k.byUnix, p.unixPID)
	p.waitToken++
	// Drop the dead process from queue wait lists.
	for _, q := range k.mqs {
		for i, rp := range q.readers {
			if rp == pid {
				q.readers = append(q.readers[:i], q.readers[i+1:]...)
				break
			}
		}
		for i, w := range q.writers {
			if w.pid == pid {
				q.writers = append(q.writers[:i], q.writers[i+1:]...)
				break
			}
		}
	}
	if k.cfg.Net != nil {
		for _, l := range p.listeners {
			k.cfg.Net.CloseListener(l)
		}
		for _, c := range p.conns {
			k.cfg.Net.BoardClose(c)
		}
	}
}

func (k *Kernel) mustReady(pid machine.PID, reply any) {
	if err := k.m.Engine().Ready(pid, reply); err != nil {
		panic(fmt.Sprintf("linuxsim: Ready(%d): %v", pid, err))
	}
}

// --- Network ----------------------------------------------------------------

func (k *Kernel) doNetListen(self *proc, r netListenReq) (any, machine.Disposition) {
	if k.cfg.Net == nil {
		return handleReply{err: fmt.Errorf("%w: no network", ErrNoEnt)}, machine.DispositionContinue
	}
	l, err := k.cfg.Net.Listen(r.port)
	if err != nil {
		return handleReply{err: err}, machine.DispositionContinue
	}
	self.nextFD++
	h := self.nextFD
	self.listeners[h] = l
	return handleReply{handle: h}, machine.DispositionContinue
}

func (k *Kernel) doNetAccept(self *proc, r netAcceptReq) (any, machine.Disposition) {
	l, ok := self.listeners[r.listener]
	if !ok {
		return handleReply{err: ErrBadFD}, machine.DispositionContinue
	}
	conn, err := k.cfg.Net.Accept(l)
	switch {
	case err == nil:
		self.nextFD++
		h := self.nextFD
		self.conns[h] = conn
		return handleReply{handle: h}, machine.DispositionContinue
	case errors.Is(err, vnet.ErrWouldBlock):
		self.phase = phaseNet
		self.waitToken++
		token := self.waitToken
		pid := self.pid
		k.cfg.Net.WaitConn(l, func() {
			p := k.procs[pid]
			if p != self || p.waitToken != token || p.phase != phaseNet {
				return
			}
			p.phase = phaseIdle
			conn, acceptErr := k.cfg.Net.Accept(l)
			if acceptErr != nil {
				k.mustReady(pid, handleReply{err: acceptErr})
				return
			}
			p.nextFD++
			h := p.nextFD
			p.conns[h] = conn
			k.mustReady(pid, handleReply{handle: h})
		})
		return nil, machine.DispositionBlock
	default:
		return handleReply{err: err}, machine.DispositionContinue
	}
}

func (k *Kernel) doNetRead(self *proc, r netReadReq) (any, machine.Disposition) {
	conn, ok := self.conns[r.conn]
	if !ok {
		return bytesReply{err: ErrBadFD}, machine.DispositionContinue
	}
	data, err := k.cfg.Net.BoardRead(conn, r.max)
	switch {
	case err == nil:
		return bytesReply{data: data}, machine.DispositionContinue
	case errors.Is(err, vnet.ErrWouldBlock):
		self.phase = phaseNet
		self.waitToken++
		token := self.waitToken
		pid := self.pid
		maxBytes := r.max
		k.cfg.Net.WaitReadable(conn, func() {
			p := k.procs[pid]
			if p != self || p.waitToken != token || p.phase != phaseNet {
				return
			}
			p.phase = phaseIdle
			data, readErr := k.cfg.Net.BoardRead(conn, maxBytes)
			k.mustReady(pid, bytesReply{data: data, err: readErr})
		})
		return nil, machine.DispositionBlock
	default:
		return bytesReply{err: err}, machine.DispositionContinue
	}
}

func (k *Kernel) doNetWrite(self *proc, r netWriteReq) (any, machine.Disposition) {
	conn, ok := self.conns[r.conn]
	if !ok {
		return errReply{err: ErrBadFD}, machine.DispositionContinue
	}
	return errReply{err: k.cfg.Net.BoardWrite(conn, r.data)}, machine.DispositionContinue
}

func (k *Kernel) doNetClose(self *proc, r netCloseReq) (any, machine.Disposition) {
	conn, ok := self.conns[r.conn]
	if !ok {
		return errReply{err: ErrBadFD}, machine.DispositionContinue
	}
	delete(self.conns, r.conn)
	k.cfg.Net.BoardClose(conn)
	return errReply{}, machine.DispositionContinue
}
