package minix

import (
	"errors"
	"fmt"

	"mkbas/internal/machine"
	"mkbas/internal/vnet"
)

// This file holds the kernel's network mediation. In the paper's scenario
// only the web interface process touches the network; the kernel gates
// access with a per-process privilege, and blocking accept/read are built on
// vnet waiter callbacks plus the engine's Ready.

// netStack returns the board network, or an error when the board has none or
// the process lacks the privilege.
func (k *Kernel) netStack(self *procEntry) (*vnet.Stack, error) {
	if k.cfg.Net == nil {
		return nil, fmt.Errorf("%w: board has no network", ErrNoPrivilege)
	}
	if !self.netAccess {
		return nil, fmt.Errorf("%w: network access", ErrNoPrivilege)
	}
	return k.cfg.Net, nil
}

func (k *Kernel) doNetListen(self *procEntry, r netListenReq) (any, machine.Disposition) {
	stack, err := k.netStack(self)
	if err != nil {
		return handleReply{err: err}, machine.DispositionContinue
	}
	l, err := stack.Listen(r.port)
	if err != nil {
		return handleReply{err: err}, machine.DispositionContinue
	}
	self.nextHandle++
	h := self.nextHandle
	self.listeners[h] = l
	return handleReply{handle: h}, machine.DispositionContinue
}

func (k *Kernel) doNetAccept(self *procEntry, r netAcceptReq) (any, machine.Disposition) {
	stack, err := k.netStack(self)
	if err != nil {
		return handleReply{err: err}, machine.DispositionContinue
	}
	l, ok := self.listeners[r.listener]
	if !ok {
		return handleReply{err: ErrBadHandle}, machine.DispositionContinue
	}
	conn, err := stack.Accept(l)
	switch {
	case err == nil:
		self.nextHandle++
		h := self.nextHandle
		self.conns[h] = conn
		return handleReply{handle: h}, machine.DispositionContinue
	case errors.Is(err, vnet.ErrWouldBlock):
		self.phase = phaseNetBlocked
		self.waitToken++
		token := self.waitToken
		pid := self.pid
		stack.WaitConn(l, func() {
			e := k.byPID[pid]
			if e != self || e.waitToken != token || e.phase != phaseNetBlocked {
				return
			}
			conn, acceptErr := stack.Accept(l)
			e.phase = phaseIdle
			if acceptErr != nil {
				k.mustReady(pid, handleReply{err: acceptErr})
				return
			}
			e.nextHandle++
			h := e.nextHandle
			e.conns[h] = conn
			k.mustReady(pid, handleReply{handle: h})
		})
		return nil, machine.DispositionBlock
	default:
		return handleReply{err: err}, machine.DispositionContinue
	}
}

func (k *Kernel) doNetRead(self *procEntry, r netReadReq) (any, machine.Disposition) {
	stack, err := k.netStack(self)
	if err != nil {
		return bytesReply{err: err}, machine.DispositionContinue
	}
	conn, ok := self.conns[r.conn]
	if !ok {
		return bytesReply{err: ErrBadHandle}, machine.DispositionContinue
	}
	data, err := stack.BoardRead(conn, r.max)
	switch {
	case err == nil:
		return bytesReply{data: data}, machine.DispositionContinue
	case errors.Is(err, vnet.ErrWouldBlock):
		self.phase = phaseNetBlocked
		self.waitToken++
		token := self.waitToken
		pid := self.pid
		maxBytes := r.max
		stack.WaitReadable(conn, func() {
			e := k.byPID[pid]
			if e != self || e.waitToken != token || e.phase != phaseNetBlocked {
				return
			}
			e.phase = phaseIdle
			data, readErr := stack.BoardRead(conn, maxBytes)
			k.mustReady(pid, bytesReply{data: data, err: readErr})
		})
		return nil, machine.DispositionBlock
	default:
		return bytesReply{err: err}, machine.DispositionContinue
	}
}

func (k *Kernel) doNetWrite(self *procEntry, r netWriteReq) (any, machine.Disposition) {
	stack, err := k.netStack(self)
	if err != nil {
		return errReply{err: err}, machine.DispositionContinue
	}
	conn, ok := self.conns[r.conn]
	if !ok {
		return errReply{err: ErrBadHandle}, machine.DispositionContinue
	}
	return errReply{err: stack.BoardWrite(conn, r.data)}, machine.DispositionContinue
}

func (k *Kernel) doNetClose(self *procEntry, r netCloseReq) (any, machine.Disposition) {
	stack, err := k.netStack(self)
	if err != nil {
		return errReply{err: err}, machine.DispositionContinue
	}
	conn, ok := self.conns[r.conn]
	if !ok {
		return errReply{err: ErrBadHandle}, machine.DispositionContinue
	}
	delete(self.conns, r.conn)
	stack.BoardClose(conn)
	return errReply{}, machine.DispositionContinue
}

// mustReady wakes a process the kernel knows is blocked; failure is a kernel
// invariant violation.
func (k *Kernel) mustReady(pid machine.PID, reply any) {
	if err := k.m.Engine().Ready(pid, reply); err != nil {
		panic(fmt.Sprintf("minix: Ready(%d): %v", pid, err))
	}
}
