package sel4

import (
	"errors"
	"fmt"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/obs"
	"mkbas/internal/vnet"
)

// Trap request and reply types (the syscall wire format).
type (
	sendTrap struct {
		cptr CPtr
		msg  Msg
		nb   bool
	}
	recvTrap struct {
		cptr CPtr
		nb   bool
	}
	callTrap struct {
		cptr CPtr
		msg  Msg
	}
	replyTrap struct {
		msg Msg
	}
	tcbSuspendTrap struct {
		cptr CPtr
	}
	capCopyTrap struct {
		src, dst CPtr
	}
	capMintTrap struct {
		src, dst CPtr
		badge    Badge
		rights   Rights
	}
	capDeleteTrap struct {
		slot CPtr
	}
	devReadTrap struct {
		cptr CPtr
		reg  uint32
	}
	devWriteTrap struct {
		cptr  CPtr
		reg   uint32
		value uint32
	}
	sleepTrap struct {
		d time.Duration
	}
	traceTrap struct {
		tag, text string
	}
	netListenTrap struct {
		cptr CPtr
	}
	netAcceptTrap struct {
		listener int32
	}
	netReadTrap struct {
		conn int32
		max  int
	}
	netWriteTrap struct {
		conn int32
		data []byte
	}
	netCloseTrap struct {
		conn int32
	}
)

type (
	errResult struct {
		err error
	}
	recvResultReply struct {
		res RecvResult
		err error
	}
	callResultReply struct {
		msg Msg
		err error
	}
	u32Result struct {
		value uint32
		err   error
	}
	handleResult struct {
		handle int32
		err    error
	}
	bytesResult struct {
		data []byte
		err  error
	}
)

// HandleTrap implements machine.TrapHandler.
func (k *Kernel) HandleTrap(pid machine.PID, req any) (any, machine.Disposition) {
	t := k.tcbOf(pid)
	switch r := req.(type) {
	case *sendTrap:
		return k.doSend(t, r)
	case *recvTrap:
		return k.doRecv(t, r)
	case *callTrap:
		return k.doCall(t, r)
	case *replyTrap:
		return k.doReply(t, r)
	case tcbSuspendTrap:
		return k.doSuspend(t, r)
	case *signalTrap:
		return k.doSignal(t, r)
	case *waitTrap:
		return k.doWait(t, r)
	case capCopyTrap:
		return k.doCapCopy(t, r.src, r.dst, nil, nil)
	case capMintTrap:
		return k.doCapCopy(t, r.src, r.dst, &r.badge, &r.rights)
	case capDeleteTrap:
		if int(r.slot) >= CSpaceSize {
			return errResult{err: fmt.Errorf("%w: %d", ErrBadSlot, r.slot)}, machine.DispositionContinue
		}
		t.cspace[r.slot] = Capability{}
		return errResult{}, machine.DispositionContinue
	case *devReadTrap:
		c, err := k.lookupCap(t, r.cptr, KindDevice, CapRead)
		if err != nil {
			return t.u32Out(0, err), machine.DispositionContinue
		}
		v, err := k.m.Bus().Read(k.devs[c.Object].dev, r.reg)
		return t.u32Out(v, err), machine.DispositionContinue
	case *devWriteTrap:
		c, err := k.lookupCap(t, r.cptr, KindDevice, CapWrite)
		if err != nil {
			return t.errOut(err), machine.DispositionContinue
		}
		return t.errOut(k.m.Bus().Write(k.devs[c.Object].dev, r.reg, r.value)), machine.DispositionContinue
	case *sleepTrap:
		return k.doSleep(t, r)
	case traceTrap:
		k.m.Trace().Logf(r.tag, "%s", r.text)
		return errResult{}, machine.DispositionContinue
	case netListenTrap:
		return k.doNetListen(t, r)
	case netAcceptTrap:
		return k.doNetAccept(t, r)
	case netReadTrap:
		return k.doNetRead(t, r)
	case netWriteTrap:
		return k.doNetWrite(t, r)
	case netCloseTrap:
		return k.doNetClose(t, r)
	default:
		return errResult{err: fmt.Errorf("sel4: unknown trap %T", req)}, machine.DispositionContinue
	}
}

// doSend implements seL4_Send / seL4_NBSend.
func (k *Kernel) doSend(t *tcb, r *sendTrap) (any, machine.Disposition) {
	k.mSends.Inc()
	c, err := k.lookupCap(t, r.cptr, KindEndpoint, CapWrite)
	if err != nil {
		return t.errOut(err), machine.DispositionContinue
	}
	if r.msg.TransferCap != nil && !c.Rights.Has(CapGrant) {
		k.stats.RightsDenied++
		k.mRightsDenied.Inc()
		k.events.Emit(obs.SecurityEvent{
			Kind:      obs.EventCapFault,
			Mechanism: obs.MechCapability,
			Denied:    true,
			Src:       t.name,
			Dst:       k.objName(c.Object),
			Detail:    "cap transfer needs grant",
		})
		return t.errOut(fmt.Errorf("%w: cap transfer needs grant", ErrNoRights)), machine.DispositionContinue
	}
	ep := k.eps[c.Object]
	drop, delay := k.faultFor(t.name, ep.name)
	if drop {
		// Send has no delivery acknowledgment: a lost message is
		// indistinguishable from a successful one on the sender side.
		return t.errOut(nil), machine.DispositionContinue
	}
	if delay > 0 {
		t.sendMsg = r.msg
		t.sendCap = c
		t.wantsCall = false
		return k.delaySend(t, c, ep, r.msg, false, delay)
	}
	if receiver := k.popReceiver(ep); receiver != nil {
		k.deliver(t, c, receiver, r.msg, false)
		return t.errOut(nil), machine.DispositionContinue
	}
	if r.nb {
		// seL4_NBSend silently drops when no receiver is waiting.
		return t.errOut(nil), machine.DispositionContinue
	}
	t.state = stateBlockedSend
	t.sendMsg = r.msg
	t.sendCap = c
	t.wantsCall = false
	ep.sendQ = append(ep.sendQ, t)
	k.mEPQ.Add(1)
	return nil, machine.DispositionBlock
}

// delaySend parks a sender whose message is being delayed in transit by
// fault injection: the sender blocks as usual but joins the endpoint's send
// queue only when the delay elapses, so receivers cannot see the message
// early.
func (k *Kernel) delaySend(t *tcb, c Capability, ep *endpointObj, msg Msg, isCall bool, delay time.Duration) (any, machine.Disposition) {
	t.state = stateBlockedSend
	t.waitToken++
	token := t.waitToken
	pid := t.pid
	k.m.Clock().After(delay, func() {
		cur := k.byPID[pid]
		if cur != t || cur.waitToken != token || cur.state != stateBlockedSend {
			return
		}
		if receiver := k.popReceiver(ep); receiver != nil {
			k.deliver(t, c, receiver, msg, isCall)
			if isCall {
				t.state = stateBlockedCall
				return
			}
			t.state = stateReady
			k.mustReady(pid, t.errOut(nil))
			return
		}
		ep.sendQ = append(ep.sendQ, t)
		k.mEPQ.Add(1)
	})
	return nil, machine.DispositionBlock
}

// doCall implements seL4_Call: atomic send + receive-reply. Per the paper,
// Call requires the grant right ("if a thread is given grant access to an
// endpoint it can use seL4_Call") because it attaches a one-time reply
// capability to the message.
func (k *Kernel) doCall(t *tcb, r *callTrap) (any, machine.Disposition) {
	k.mCalls.Inc()
	c, err := k.lookupCap(t, r.cptr, KindEndpoint, CapWrite|CapGrant)
	if err != nil {
		k.tracer.Emit(t.name, "", "call", obs.OutcomeCapFault)
		return t.callOut(Msg{}, err), machine.DispositionContinue
	}
	k.stats.Calls++
	ep := k.eps[c.Object]
	// The round-trip span stays open until Reply (or abort) wakes the
	// caller.
	t.span = k.tracer.Begin(t.name, ep.name, "call")
	t.sendMsg = r.msg
	t.sendCap = c
	t.wantsCall = true
	drop, delay := k.faultFor(t.name, ep.name)
	if drop {
		// A lost Call is observable: the caller expected a reply that will
		// never come, so it gets an error instead of blocking forever.
		k.endSpan(t, obs.OutcomeAborted)
		t.wantsCall = false
		return t.callOut(Msg{}, ErrMsgLost), machine.DispositionContinue
	}
	if delay > 0 {
		return k.delaySend(t, c, ep, r.msg, true, delay)
	}
	if receiver := k.popReceiver(ep); receiver != nil {
		k.deliver(t, c, receiver, r.msg, true)
		t.state = stateBlockedCall
		return nil, machine.DispositionBlock
	}
	t.state = stateBlockedSend
	ep.sendQ = append(ep.sendQ, t)
	k.mEPQ.Add(1)
	return nil, machine.DispositionBlock
}

// doRecv implements seL4_Recv / seL4_NBRecv.
func (k *Kernel) doRecv(t *tcb, r *recvTrap) (any, machine.Disposition) {
	k.mRecvs.Inc()
	c, err := k.lookupCap(t, r.cptr, KindEndpoint, CapRead)
	if err != nil {
		return t.recvOut(RecvResult{}, err), machine.DispositionContinue
	}
	ep := k.eps[c.Object]
	if sender := k.popSender(ep); sender != nil {
		res := k.buildDelivery(sender, sender.sendCap, t, sender.sendMsg, sender.wantsCall)
		if sender.wantsCall {
			sender.state = stateBlockedCall
		} else {
			sender.state = stateReady
			k.mustReady(sender.pid, sender.errOut(nil))
		}
		return t.recvOut(res, nil), machine.DispositionContinue
	}
	if r.nb {
		return t.recvOut(RecvResult{}, ErrWouldBlock), machine.DispositionContinue
	}
	t.state = stateBlockedRecv
	ep.recvQ = append(ep.recvQ, t)
	k.mEPQ.Add(1)
	return nil, machine.DispositionBlock
}

// doReply implements seL4_Reply using the thread's one-time reply capability.
func (k *Kernel) doReply(t *tcb, r *replyTrap) (any, machine.Disposition) {
	rc := t.replyCap
	if rc == nil || rc.used {
		return t.errOut(ErrNoReplyCap), machine.DispositionContinue
	}
	rc.used = true
	t.replyCap = nil
	caller := rc.caller
	if caller == nil || caller.state != stateBlockedCall {
		// Caller died or was aborted; the reply evaporates.
		return t.errOut(nil), machine.DispositionContinue
	}
	k.stats.Replies++
	k.stats.IPCDelivered++
	k.mReplies.Inc()
	k.mDelivered.Inc()
	caller.state = stateReady
	k.endSpan(caller, obs.OutcomeDelivered)
	k.mustReady(caller.pid, caller.callOut(r.msg, nil))
	return t.errOut(nil), machine.DispositionContinue
}

// deliver wakes a blocked receiver with the sender's message.
func (k *Kernel) deliver(sender *tcb, senderCap Capability, receiver *tcb, msg Msg, isCall bool) {
	res := k.buildDelivery(sender, senderCap, receiver, msg, isCall)
	receiver.state = stateReady
	receiver.waitToken++
	k.mustReady(receiver.pid, receiver.recvOut(res, nil))
}

// buildDelivery constructs the receiver-side result: badge, transferred
// capability, and (for calls) the reply capability installed on the
// receiver.
func (k *Kernel) buildDelivery(sender *tcb, senderCap Capability, receiver *tcb, msg Msg, isCall bool) RecvResult {
	k.stats.IPCDelivered++
	k.mDelivered.Inc()
	// Record the delivery through its endpoint for the least-privilege
	// audit: the sender exercised its send cap, the receiver its recv cap.
	if ep, ok := k.eps[senderCap.Object]; ok {
		k.m.IPC().Record(sender.name, ep.name, "send")
		k.m.IPC().Record(ep.name, receiver.name, "recv")
	}
	res := RecvResult{Msg: msg, Badge: senderCap.Badge}
	res.Msg.TransferCap = nil
	if msg.TransferCap != nil {
		moved := sender.cspace[*msg.TransferCap]
		if !moved.IsNull() {
			if slot, ok := freeSlot(receiver); ok {
				receiver.cspace[slot] = moved
				res.CapSlot = &slot
				k.stats.CapsTransferred++
				k.m.Trace().Logf("sel4", "cap transfer %v from %s to %s slot %d",
					moved, sender.name, receiver.name, slot)
			}
		}
	}
	if isCall {
		receiver.replyScratch = replyObj{caller: sender}
		receiver.replyCap = &receiver.replyScratch
	}
	return res
}

// doSuspend implements the TCB_Suspend invocation: the "kill" of the seL4
// world. It requires a TCB capability with write rights — which the CAmkES
// scenario never distributes to the web interface.
func (k *Kernel) doSuspend(t *tcb, r tcbSuspendTrap) (any, machine.Disposition) {
	c, err := k.lookupCap(t, r.cptr, KindTCB, CapWrite)
	if err != nil {
		// lookupCap emitted the cap-fault; this event classifies the
		// attempt as a blocked kill for the attack reports.
		k.events.Emit(obs.SecurityEvent{
			Kind:      obs.EventKillDenied,
			Mechanism: obs.MechCapability,
			Denied:    true,
			Src:       t.name,
			Detail:    fmt.Sprintf("TCB_Suspend: %v", err),
		})
		return errResult{err: err}, machine.DispositionContinue
	}
	victim, ok := k.tcbs[c.Object]
	if !ok || !victim.started || victim.suspended {
		return errResult{err: ErrSuspended}, machine.DispositionContinue
	}
	k.stats.Suspends++
	k.mSuspends.Inc()
	k.events.Emit(obs.SecurityEvent{
		Kind:      obs.EventKill,
		Mechanism: obs.MechCapability,
		Src:       t.name,
		Dst:       victim.name,
		Detail:    "TCB_Suspend with write cap",
	})
	victim.suspended = true
	k.m.Trace().Logf("sel4", "suspend %s by %s", victim.name, t.name)
	if err := k.m.Engine().Kill(victim.pid); err != nil {
		return errResult{err: err}, machine.DispositionContinue
	}
	return errResult{}, machine.DispositionContinue
}

// doCapCopy implements CNode copy/mint within the caller's own CSpace.
// Minting may narrow rights and set a badge; it can never widen rights.
func (k *Kernel) doCapCopy(t *tcb, src, dst CPtr, badge *Badge, rights *Rights) (any, machine.Disposition) {
	if int(src) >= CSpaceSize || int(dst) >= CSpaceSize {
		return errResult{err: fmt.Errorf("%w: %d/%d", ErrBadSlot, src, dst)}, machine.DispositionContinue
	}
	c := t.cspace[src]
	if c.IsNull() {
		k.stats.InvalidCapErrs++
		return errResult{err: fmt.Errorf("%w: slot %d", ErrInvalidCap, src)}, machine.DispositionContinue
	}
	if !t.cspace[dst].IsNull() {
		return errResult{err: fmt.Errorf("%w: destination %d occupied", ErrBadSlot, dst)}, machine.DispositionContinue
	}
	out := c
	if rights != nil {
		out.Rights = c.Rights & *rights // narrow only
	}
	if badge != nil {
		out.Badge = *badge
	}
	t.cspace[dst] = out
	return errResult{}, machine.DispositionContinue
}

// doSleep parks the thread on the timer service (the paper's added timer
// driver processes, collapsed into a kernel-provided service here).
func (k *Kernel) doSleep(t *tcb, r *sleepTrap) (any, machine.Disposition) {
	t.state = stateSleeping
	t.waitToken++
	token := t.waitToken
	pid := t.pid
	k.m.Clock().After(r.d, func() {
		cur := k.byPID[pid]
		if cur != t || cur.waitToken != token || cur.state != stateSleeping {
			return
		}
		cur.state = stateReady
		k.mustReady(pid, cur.errOut(nil))
	})
	return nil, machine.DispositionBlock
}

// popReceiver dequeues the next live receiver from an endpoint. Every
// dequeued entry — live or stale — left the wait queues, so the depth
// gauge drops per removal, mirroring the increment at append time.
func (k *Kernel) popReceiver(ep *endpointObj) *tcb {
	for len(ep.recvQ) > 0 {
		r := ep.recvQ[0]
		// Shift down instead of re-slicing: the [1:] form burns capacity, so
		// a block/wake cycle would re-allocate the queue on every append.
		copy(ep.recvQ, ep.recvQ[1:])
		ep.recvQ = ep.recvQ[:len(ep.recvQ)-1]
		k.mEPQ.Add(-1)
		if r.state == stateBlockedRecv {
			return r
		}
	}
	return nil
}

// popSender dequeues the next live sender from an endpoint.
func (k *Kernel) popSender(ep *endpointObj) *tcb {
	for len(ep.sendQ) > 0 {
		s := ep.sendQ[0]
		copy(ep.sendQ, ep.sendQ[1:])
		ep.sendQ = ep.sendQ[:len(ep.sendQ)-1]
		k.mEPQ.Add(-1)
		if s.state == stateBlockedSend {
			return s
		}
	}
	return nil
}

// OnProcExit implements machine.TrapHandler: scrub the dead thread from all
// wait queues and abort callers waiting on its reply capability.
func (k *Kernel) OnProcExit(pid machine.PID, info machine.ExitInfo) {
	t, ok := k.byPID[pid]
	if !ok {
		return
	}
	delete(k.byPID, pid)
	t.waitToken++
	prevState := t.state
	t.state = stateSuspendedDead
	if info.Crashed {
		k.m.Trace().Logf("sel4", "FAULT %s: %v", t.name, info.PanicValue)
	}
	_ = prevState
	k.endSpan(t, obs.OutcomeAborted)

	// Remove from endpoint and notification queues.
	for _, ep := range k.eps {
		before := len(ep.sendQ) + len(ep.recvQ)
		ep.sendQ = removeTCB(ep.sendQ, t)
		ep.recvQ = removeTCB(ep.recvQ, t)
		k.mEPQ.Add(int64(len(ep.sendQ) + len(ep.recvQ) - before))
	}
	for _, n := range k.notifs {
		n.waitQ = removeTCB(n.waitQ, t)
	}
	// Abort a caller waiting on this thread's pending reply capability.
	if t.replyCap != nil && !t.replyCap.used {
		t.replyCap.used = true
		caller := t.replyCap.caller
		if caller != nil && caller.state == stateBlockedCall {
			caller.state = stateReady
			k.endSpan(caller, obs.OutcomeAborted)
			k.mustReady(caller.pid, caller.callOut(Msg{}, ErrCallAborted))
		}
		t.replyCap = nil
	}
	// Release network resources.
	if k.cfg.Net != nil {
		for _, l := range t.listeners {
			k.cfg.Net.CloseListener(l)
		}
		for _, c := range t.conns {
			k.cfg.Net.BoardClose(c)
		}
	}
}

func removeTCB(q []*tcb, t *tcb) []*tcb {
	for i, x := range q {
		if x == t {
			return append(q[:i], q[i+1:]...)
		}
	}
	return q
}

// mustReady wakes a thread the kernel knows is blocked.
func (k *Kernel) mustReady(pid machine.PID, reply any) {
	if err := k.m.Engine().Ready(pid, reply); err != nil {
		panic(fmt.Sprintf("sel4: Ready(%d): %v", pid, err))
	}
}

// --- Network mediation ------------------------------------------------------

func (k *Kernel) doNetListen(t *tcb, r netListenTrap) (any, machine.Disposition) {
	c, err := k.lookupCap(t, r.cptr, KindNetPort, CapRead)
	if err != nil {
		return handleResult{err: err}, machine.DispositionContinue
	}
	if k.cfg.Net == nil {
		return handleResult{err: fmt.Errorf("%w: board has no network", ErrInvalidCap)}, machine.DispositionContinue
	}
	l, err := k.cfg.Net.Listen(k.ports[c.Object].port)
	if err != nil {
		return handleResult{err: err}, machine.DispositionContinue
	}
	t.nextHandle++
	h := t.nextHandle
	t.listeners[h] = l
	return handleResult{handle: h}, machine.DispositionContinue
}

func (k *Kernel) doNetAccept(t *tcb, r netAcceptTrap) (any, machine.Disposition) {
	l, ok := t.listeners[r.listener]
	if !ok {
		return handleResult{err: ErrBadHandle}, machine.DispositionContinue
	}
	conn, err := k.cfg.Net.Accept(l)
	switch {
	case err == nil:
		t.nextHandle++
		h := t.nextHandle
		t.conns[h] = conn
		return handleResult{handle: h}, machine.DispositionContinue
	case errors.Is(err, vnet.ErrWouldBlock):
		t.state = stateNetBlocked
		t.waitToken++
		token := t.waitToken
		pid := t.pid
		k.cfg.Net.WaitConn(l, func() {
			cur := k.byPID[pid]
			if cur != t || cur.waitToken != token || cur.state != stateNetBlocked {
				return
			}
			cur.state = stateReady
			conn, acceptErr := k.cfg.Net.Accept(l)
			if acceptErr != nil {
				k.mustReady(pid, handleResult{err: acceptErr})
				return
			}
			cur.nextHandle++
			h := cur.nextHandle
			cur.conns[h] = conn
			k.mustReady(pid, handleResult{handle: h})
		})
		return nil, machine.DispositionBlock
	default:
		return handleResult{err: err}, machine.DispositionContinue
	}
}

func (k *Kernel) doNetRead(t *tcb, r netReadTrap) (any, machine.Disposition) {
	conn, ok := t.conns[r.conn]
	if !ok {
		return bytesResult{err: ErrBadHandle}, machine.DispositionContinue
	}
	data, err := k.cfg.Net.BoardRead(conn, r.max)
	switch {
	case err == nil:
		return bytesResult{data: data}, machine.DispositionContinue
	case errors.Is(err, vnet.ErrWouldBlock):
		t.state = stateNetBlocked
		t.waitToken++
		token := t.waitToken
		pid := t.pid
		maxBytes := r.max
		k.cfg.Net.WaitReadable(conn, func() {
			cur := k.byPID[pid]
			if cur != t || cur.waitToken != token || cur.state != stateNetBlocked {
				return
			}
			cur.state = stateReady
			data, readErr := k.cfg.Net.BoardRead(conn, maxBytes)
			k.mustReady(pid, bytesResult{data: data, err: readErr})
		})
		return nil, machine.DispositionBlock
	default:
		return bytesResult{err: err}, machine.DispositionContinue
	}
}

func (k *Kernel) doNetWrite(t *tcb, r netWriteTrap) (any, machine.Disposition) {
	conn, ok := t.conns[r.conn]
	if !ok {
		return errResult{err: ErrBadHandle}, machine.DispositionContinue
	}
	return errResult{err: k.cfg.Net.BoardWrite(conn, r.data)}, machine.DispositionContinue
}

func (k *Kernel) doNetClose(t *tcb, r netCloseTrap) (any, machine.Disposition) {
	conn, ok := t.conns[r.conn]
	if !ok {
		return errResult{err: ErrBadHandle}, machine.DispositionContinue
	}
	delete(t.conns, r.conn)
	k.cfg.Net.BoardClose(conn)
	return errResult{}, machine.DispositionContinue
}
