package bas

import (
	"strings"
	"testing"
	"time"
)

// deployment abstracts the platforms for the shared closed-loop tests
// (experiment E3: the Fig. 2 scenario behaves identically everywhere when
// nothing is under attack).
type deployment struct {
	name   string
	deploy func(tb *Testbed, cfg ScenarioConfig) error
}

func allPlatforms() []deployment {
	platforms := []Platform{PlatformMinix, PlatformSel4, PlatformLinux, PlatformLinuxHardened}
	out := make([]deployment, 0, len(platforms))
	for _, p := range platforms {
		p := p
		out = append(out, deployment{string(p), func(tb *Testbed, cfg ScenarioConfig) error {
			_, err := Deploy(p, tb, cfg, DeployOptions{})
			return err
		}})
	}
	return out
}

func TestClosedLoopReachesSetpointOnAllPlatforms(t *testing.T) {
	for _, p := range allPlatforms() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			cfg := DefaultScenario()
			tb := NewTestbed(cfg)
			defer tb.Machine.Shutdown()
			if err := p.deploy(tb, cfg); err != nil {
				t.Fatalf("deploy: %v", err)
			}
			// Room starts at 18 °C; the controller must heat it to the
			// 22 °C setpoint and hold it there without tripping the alarm.
			tb.Machine.Run(40 * time.Minute)
			temp := tb.Room.Temperature()
			if temp < 21 || temp > 23 {
				t.Fatalf("after 40m temp = %.2f, want ~22", temp)
			}
			if tb.Room.AlarmOn() {
				t.Fatal("alarm on during healthy operation")
			}
			// The heater must have cycled at least once.
			heaterEvents := 0
			for _, ev := range tb.Room.History() {
				if ev.Kind.String() == "heater-on" || ev.Kind.String() == "heater-off" {
					heaterEvents++
				}
			}
			if heaterEvents == 0 {
				t.Fatal("heater never actuated")
			}
		})
	}
}

func TestWebStatusAndSetpointOnAllPlatforms(t *testing.T) {
	for _, p := range allPlatforms() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			cfg := DefaultScenario()
			tb := NewTestbed(cfg)
			defer tb.Machine.Shutdown()
			if err := p.deploy(tb, cfg); err != nil {
				t.Fatalf("deploy: %v", err)
			}
			tb.Machine.Run(10 * time.Second) // let the web server come up

			status, body, err := tb.HTTPGet("/status")
			if err != nil {
				t.Fatalf("GET /status: %v (body %q)", err, body)
			}
			if status != 200 || !strings.Contains(body, "setpoint=22.00") {
				t.Fatalf("status = %d %q", status, body)
			}

			status, body, err = tb.HTTPPostSetpoint("25")
			if err != nil || status != 200 {
				t.Fatalf("POST /setpoint: %d %q %v", status, body, err)
			}

			// The new setpoint must be visible and eventually governed to.
			status, body, err = tb.HTTPGet("/status")
			if err != nil || status != 200 || !strings.Contains(body, "setpoint=25.00") {
				t.Fatalf("status after set = %d %q %v", status, body, err)
			}
			tb.Machine.Run(60 * time.Minute)
			temp := tb.Room.Temperature()
			if temp < 24 || temp > 26 {
				t.Fatalf("after setpoint change temp = %.2f, want ~25", temp)
			}
		})
	}
}

func TestOutOfRangeSetpointRejectedOnAllPlatforms(t *testing.T) {
	for _, p := range allPlatforms() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			cfg := DefaultScenario()
			tb := NewTestbed(cfg)
			defer tb.Machine.Shutdown()
			if err := p.deploy(tb, cfg); err != nil {
				t.Fatalf("deploy: %v", err)
			}
			tb.Machine.Run(5 * time.Second)
			status, body, err := tb.HTTPPostSetpoint("99")
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			if status != 400 || !strings.Contains(body, "rejected") {
				t.Fatalf("resp = %d %q, want 400 rejected", status, body)
			}
		})
	}
}

func TestHeaterFailureTripsAlarmOnAllPlatforms(t *testing.T) {
	// The scenario's safety story: "if the controller fails to achieve the
	// desired temperature within certain time interval (e.g., 5 minutes),
	// the alarm will be triggered to alert the occupants."
	for _, p := range allPlatforms() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			cfg := DefaultScenario()
			cfg.Plant.InitialTemp = 22 // start at setpoint
			tb := NewTestbed(cfg)
			defer tb.Machine.Shutdown()
			if err := p.deploy(tb, cfg); err != nil {
				t.Fatalf("deploy: %v", err)
			}
			tb.Machine.Run(time.Minute)
			if tb.Room.AlarmOn() {
				t.Fatal("alarm before fault injection")
			}
			// Break the heater; the room drifts toward 15 °C ambient. Below
			// 20 °C the controller is out of tolerance and must trip the
			// alarm 5 minutes later.
			tb.Room.FailHeater(true)
			tb.Machine.Run(3 * time.Hour)
			if !tb.Room.AlarmOn() {
				t.Fatalf("alarm not raised after heater failure (temp %.2f)", tb.Room.Temperature())
			}
		})
	}
}

func TestMinixDriverCrashIsHealedByRS(t *testing.T) {
	// MINIX-only resilience: crash the sensor driver mid-run; the
	// reincarnation server restarts it and the control loop keeps working.
	cfg := DefaultScenario()
	tb := NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	mdep, err := Deploy(PlatformMinix, tb, cfg, DeployOptions{})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	dep := mdep.(*MinixDeployment)
	tb.Machine.Run(time.Minute)

	sensorEP, err := dep.Kernel.EndpointOf(NameTempSensor)
	if err != nil {
		t.Fatalf("sensor missing: %v", err)
	}
	// Simulate a driver fault: kill it as a crash (not a voluntary exit).
	proc := dep.Kernel.Machine().Engine()
	entry := dep.Kernel.Machine()
	_ = entry
	acid, _ := dep.Kernel.ACIDOf(sensorEP)
	_ = acid
	// Crash via the engine directly (models a hardware fault / driver bug).
	for _, p := range proc.Procs() {
		if p.Name() == NameTempSensor && p.State().String() != "dead" {
			if err := proc.Kill(p.PID()); err != nil {
				t.Fatalf("kill sensor: %v", err)
			}
			break
		}
	}
	tb.Machine.Run(40 * time.Minute)
	if dep.Kernel.RS().Restarts(NameTempSensor) == 0 {
		t.Fatal("RS did not restart the sensor driver")
	}
	temp := tb.Room.Temperature()
	if temp < 21 || temp > 23 {
		t.Fatalf("control loop did not survive driver crash: temp %.2f", temp)
	}
	if tb.Room.AlarmOn() {
		t.Fatal("alarm on after recovery")
	}
}

func TestSel4CapDLVerifiesForScenario(t *testing.T) {
	cfg := DefaultScenario()
	tb := NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	sdep, err := Deploy(PlatformSel4, tb, cfg, DeployOptions{})
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	dep := sdep.(*Sel4Deployment)
	if err := dep.System.Verify(); err != nil {
		t.Fatalf("CapDL verify at boot: %v", err)
	}
	tb.Machine.Run(10 * time.Minute)
	if err := dep.System.Verify(); err != nil {
		t.Fatalf("CapDL verify after run: %v", err)
	}
	// The web interface thread must hold exactly two capabilities: its mgmt
	// client endpoint and its network port.
	webTCB, ok := dep.System.TCB(NameWebInterface)
	if !ok {
		t.Fatal("web tcb missing")
	}
	n, err := dep.System.Kernel().CapCount(webTCB)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("web interface holds %d caps, want 2 (mgmt endpoint + net port)", n)
	}
}

func TestDeterministicClosedLoop(t *testing.T) {
	run := func() (float64, int) {
		cfg := DefaultScenario()
		cfg.Plant.SensorNoise = 0.05
		tb := NewTestbed(cfg)
		defer tb.Machine.Shutdown()
		if _, err := Deploy(PlatformMinix, tb, cfg, DeployOptions{}); err != nil {
			t.Fatalf("deploy: %v", err)
		}
		tb.Machine.Run(30 * time.Minute)
		return tb.Room.Temperature(), len(tb.Room.History())
	}
	t1, h1 := run()
	t2, h2 := run()
	if t1 != t2 || h1 != h2 {
		t.Fatalf("runs diverged: temp %.9f vs %.9f, events %d vs %d", t1, t2, h1, h2)
	}
}
