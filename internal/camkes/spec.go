package camkes

import (
	"fmt"

	"mkbas/internal/capdl"
	"mkbas/internal/machine"
	"mkbas/internal/sel4"
	"mkbas/internal/vnet"
)

// GenerateSpec compiles an assembly to its CapDL capability distribution
// without booting anything: the pure static half of Build. The spec it
// returns is exactly what Build installs into a kernel — Build consumes this
// function's output, so the spec cannot drift from the running system. This
// is what makes pre-boot policy analysis (internal/polcheck) sound: analyzing
// the generated spec IS analyzing the deployment.
func GenerateSpec(assembly *Assembly) (*capdl.Spec, error) {
	if err := validate(assembly); err != nil {
		return nil, err
	}
	spec := &capdl.Spec{}

	// Objects: one endpoint per provided interface, shared device/net-port
	// objects, one notification per consumed event.
	for _, comp := range assembly.Components {
		for _, iface := range sortedIfaces(comp) {
			spec.AddObject(epObjName(comp.Name, iface), sel4.KindEndpoint)
		}
	}
	seenDev := make(map[machine.DeviceID]bool)
	seenPort := make(map[vnet.Port]bool)
	for _, comp := range assembly.Components {
		for _, dev := range comp.Devices {
			if !seenDev[dev] {
				seenDev[dev] = true
				spec.AddObject(devObjName(dev), sel4.KindDevice)
			}
		}
		for _, port := range comp.NetPorts {
			if !seenPort[port] {
				seenPort[port] = true
				spec.AddObject(portObjName(port), sel4.KindNetPort)
			}
		}
	}
	for _, comp := range assembly.Components {
		for _, ev := range comp.Consumes {
			spec.AddObject(ntfnObjName(comp.Name, ev), sel4.KindNotification)
		}
	}

	// Badges: one per connection, deterministic by connection order.
	connBadge := make(map[Connection]sel4.Badge, len(assembly.Connections))
	for i, conn := range assembly.Connections {
		connBadge[conn] = sel4.Badge(i + 1)
	}
	eventBadge := make(map[Connection]sel4.Badge, len(assembly.EventConnections))
	for i, conn := range assembly.EventConnections {
		eventBadge[conn] = sel4.Badge(1) << uint(i%63)
	}

	// Capabilities, per generated thread. Slot math must mirror newRuntime.
	for _, comp := range assembly.Components {
		for _, th := range componentThreads(comp) {
			if th.iface != "" {
				spec.AddCap(th.name, capdl.CapSpec{
					Slot:   SlotProvides,
					Object: epObjName(comp.Name, th.iface),
					Rights: sel4.CapRead,
				})
			}
			for i, uses := range comp.Uses {
				conn, ok := findConnection(assembly, comp.Name, uses)
				if !ok {
					continue // validated earlier; unreachable
				}
				// Clients get write+grant, never read: a client must not be
				// able to intercept requests addressed to the server.
				spec.AddCap(th.name, capdl.CapSpec{
					Slot:   SlotUsesBase + sel4.CPtr(i),
					Object: epObjName(conn.ToComp, conn.ToIface),
					Rights: sel4.CapWrite | sel4.CapGrant,
					Badge:  connBadge[conn],
				})
			}
			for i, dev := range comp.Devices {
				spec.AddCap(th.name, capdl.CapSpec{
					Slot:   SlotDeviceBase + sel4.CPtr(i),
					Object: devObjName(dev),
					Rights: sel4.RightsRW,
				})
			}
			for i, port := range comp.NetPorts {
				spec.AddCap(th.name, capdl.CapSpec{
					Slot:   SlotNetBase + sel4.CPtr(i),
					Object: portObjName(port),
					Rights: sel4.RightsRW,
				})
			}
			for i, ev := range comp.Emits {
				conn, ok := findEventConnection(assembly, comp.Name, ev)
				if !ok {
					continue // validated earlier; unreachable
				}
				spec.AddCap(th.name, capdl.CapSpec{
					Slot:   SlotEmitBase + sel4.CPtr(i),
					Object: ntfnObjName(conn.ToComp, conn.ToIface),
					Rights: sel4.CapWrite,
					Badge:  eventBadge[conn],
				})
			}
			for i, ev := range comp.Consumes {
				spec.AddCap(th.name, capdl.CapSpec{
					Slot:   SlotConsumeBase + sel4.CPtr(i),
					Object: ntfnObjName(comp.Name, ev),
					Rights: sel4.CapRead,
				})
			}
		}
	}
	return spec, nil
}

// ChannelNames maps the kernel-side names of an assembly's IPC objects
// ("comp.iface" endpoints, "comp.ev" notifications — the names Build hands
// CreateEndpoint/CreateNotification) to their CapDL spec object names
// ("ep_comp_iface", "ntfn_comp_ev"). The online policy monitor uses the map
// to translate recorded kernel traffic into the certified graph's
// namespace.
func ChannelNames(assembly *Assembly) map[string]string {
	out := make(map[string]string)
	for _, comp := range assembly.Components {
		for _, iface := range sortedIfaces(comp) {
			out[comp.Name+"."+iface] = epObjName(comp.Name, iface)
		}
		for _, ev := range comp.Consumes {
			out[comp.Name+"."+ev] = ntfnObjName(comp.Name, ev)
		}
	}
	return out
}

// Spec object-name scheme, shared by GenerateSpec and Build.

func epObjName(comp, iface string) string    { return "ep_" + comp + "_" + iface }
func ntfnObjName(comp, ev string) string     { return "ntfn_" + comp + "_" + ev }
func devObjName(dev machine.DeviceID) string { return "dev_" + string(dev) }
func portObjName(port vnet.Port) string      { return fmt.Sprintf("port_%d", port) }
