// Package cli holds the flag bundles and output epilogues shared by the
// command-line front ends (baslab, basbuilding, basmon, bascontrol). Each
// bundle registers its flags on a FlagSet with the same names, defaults, and
// help text everywhere, so the tools stay mutually consistent as flags grow:
// a -workers or -bench that means one thing in baslab cannot quietly mean
// another in basbuilding.
package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"mkbas/internal/bas"
	"mkbas/internal/lab"
)

// Output is the report-destination bundle: -json and -q.
type Output struct {
	// JSON selects machine-readable output on stdout.
	JSON bool
	// Quiet suppresses per-case progress lines on stderr.
	Quiet bool
}

// Register installs the output flags on fs.
func (o *Output) Register(fs *flag.FlagSet) {
	fs.BoolVar(&o.JSON, "json", false, "emit the report as JSON instead of text")
	fs.BoolVar(&o.Quiet, "q", false, "suppress per-case progress lines on stderr")
}

// Pool is the worker-pool bundle: -workers plus the -bench/-bench-out pair.
type Pool struct {
	// Workers is the number of boards in flight at once (1 = serial
	// reference). Defaults to GOMAXPROCS at registration time.
	Workers int
	// Bench, when non-empty, switches the tool into scaling-bench mode over
	// the listed worker counts.
	Bench string
	// BenchOut names the file for the bench report JSON; empty means stdout.
	BenchOut string
}

// Register installs the pool flags on fs.
func (p *Pool) Register(fs *flag.FlagSet) {
	fs.IntVar(&p.Workers, "workers", runtime.GOMAXPROCS(0), "boards in flight at once (1 = serial reference)")
	fs.StringVar(&p.Bench, "bench", "", `comma list of worker counts to benchmark, e.g. "1,2,4,8" (first is the speedup baseline)`)
	fs.StringVar(&p.BenchOut, "bench-out", "", "write the bench report JSON to this file (default stdout)")
}

// BenchCounts parses the -bench comma list into worker counts. Empty input
// (bench mode off) parses to nil.
func (p *Pool) BenchCounts() ([]int, error) {
	if p.Bench == "" {
		return nil, nil
	}
	var counts []int
	for _, part := range strings.Split(p.Bench, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// Guard is the policy-machinery bundle: -monitor, -demote, -recovery.
type Guard struct {
	// Monitor attaches the online policy monitor (observe-only).
	Monitor bool
	// Demote enables monitor enforcement; implies Monitor.
	Demote bool
	// Recovery enables each platform's optional recovery machinery.
	Recovery bool
}

// Register installs the guard flags on fs.
func (g *Guard) Register(fs *flag.FlagSet) {
	fs.BoolVar(&g.Monitor, "monitor", false, "attach the online policy monitor: every IPC delivery is checked against the certified static access graph")
	fs.BoolVar(&g.Demote, "demote", false, "monitor with enforcement: demote offending subjects to the untrusted origin (implies -monitor)")
	fs.BoolVar(&g.Recovery, "recovery", false, "enable the optional recovery machinery (seL4 monitor, hardened-Linux supervisor)")
}

// MonitorOn reports whether the monitor should attach: directly requested,
// or implied by enforcement.
func (g *Guard) MonitorOn() bool { return g.Monitor || g.Demote }

// WriteBenchReport is the shared bench epilogue: write the report JSON to
// outPath (or stdout when empty), summarise the points on stderr with the
// tool's throughput unit ("shards/s", "rooms/s"), and turn a determinism
// violation — the merged report differing across worker counts — into an
// error, so bench mode doubles as a regression gate wherever it runs.
func WriteBenchReport(rep *lab.BenchReport, outPath, unit string) error {
	out, err := rep.JSON()
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench report written to %s\n", outPath)
		for _, p := range rep.Points {
			// Request-oriented benches (basload) headline requests/s; the
			// board-oriented tools headline shard throughput.
			rate := p.ShardsPerSec
			if p.RequestsPerSec > 0 {
				rate = p.RequestsPerSec
			}
			fmt.Fprintf(os.Stderr, "  workers=%d %8.1fms %10.0f %s speedup=%.2fx\n",
				p.Workers, p.ElapsedMS, rate, unit, p.Speedup)
		}
	} else if _, err := os.Stdout.Write(out); err != nil {
		return err
	}
	if !rep.Identical {
		return fmt.Errorf("determinism violated: merged report differed across worker counts")
	}
	return nil
}

// ParsePlatform maps the tools' short platform spellings (and the registry's
// own names, accepted verbatim) onto registry platform values.
func ParsePlatform(p string) (bas.Platform, error) {
	switch strings.ToLower(p) {
	case "minix", string(bas.PlatformMinix):
		return bas.PlatformMinix, nil
	case "minix-vanilla", string(bas.PlatformMinixVanilla):
		return bas.PlatformMinixVanilla, nil
	case "sel4":
		return bas.PlatformSel4, nil
	case "linux":
		return bas.PlatformLinux, nil
	case "linux-hardened":
		return bas.PlatformLinuxHardened, nil
	default:
		return "", fmt.Errorf("unknown platform %q (known: minix, minix-vanilla, sel4, linux, linux-hardened)", p)
	}
}
