package minix

import (
	"testing"
	"time"

	"mkbas/internal/core"
	"mkbas/internal/machine"
)

func BenchmarkMessageCodec(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var msg Message
		msg.PutF64(0, 21.5)
		msg.PutU32(8, 42)
		msg.PutString(16, "tempProc")
		if msg.F64(0) != 21.5 || msg.U32(8) != 42 {
			b.Fatal("codec broke")
		}
	}
}

// BenchmarkACMCheckedSend measures the kernel send path with the ACM check
// against the same path on the vanilla (ACM-disabled) kernel: the per-IPC
// price of mandatory checking.
func benchSendPath(b *testing.B, disableACM bool) {
	b.Helper()
	m := machine.New(machine.Config{})
	policy := core.NewPolicy()
	policy.IPC.Allow(1, 2, 1).AllowBidirectionalAck(1, 2)
	policy.Seal()
	k, err := Boot(m, policy, Config{DisableACM: disableACM})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown()
	rounds := 0
	k.RegisterImage(Image{Name: "sink", Priority: 7, Body: func(api *API) {
		for {
			if _, err := api.Receive(EndpointAny); err != nil {
				return
			}
		}
	}})
	k.RegisterImage(Image{Name: "source", Priority: 7, Body: func(api *API) {
		dst, _ := api.Lookup("sink")
		for {
			if err := api.Send(dst, NewMessage(1)); err != nil {
				return
			}
			rounds++
		}
	}})
	if _, err := k.SpawnImage("sink", 2); err != nil {
		b.Fatal(err)
	}
	if _, err := k.SpawnImage("source", 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	target := rounds + b.N
	for rounds < target {
		m.Run(50 * time.Microsecond)
	}
}

func BenchmarkSend_WithACM(b *testing.B)      { benchSendPath(b, false) }
func BenchmarkSend_VanillaNoACM(b *testing.B) { benchSendPath(b, true) }
