package minix

import (
	"fmt"
	"time"

	"mkbas/internal/core"
	"mkbas/internal/machine"
	"mkbas/internal/obs"
	"mkbas/internal/vnet"
)

// EndpointSystem is the kernel's own endpoint, used as the source of
// kernel-generated messages (driver-exit reports to the reincarnation
// server). It is never allocated to a process.
const EndpointSystem Endpoint = 0xFFFFFFFE

// TypeProcExit is the kernel message type reporting a process exit to the
// reincarnation server. It uses the top of the 0..63 type space, which the
// scenario policies never grant to user processes.
const TypeProcExit int32 = 63

// Image is a loadable process binary: in the simulator, a Go function plus
// the static privileges the boot image assigns. Images are registered before
// boot and instantiated by fork2/exec (through PM) or directly by Boot.
type Image struct {
	// Name is the image's binary name; spawned processes are auto-published
	// under it in the kernel directory service.
	Name string
	// Body is the program.
	Body func(api *API)
	// UID is the Unix user ID the process runs under. It exists for fidelity
	// with the paper's root-privilege experiments: IPC and ACM decisions
	// never consult it.
	UID int
	// Priority is the scheduling priority (0 most urgent, 15 least).
	Priority int
	// Devices lists bus devices the process may access (drivers only).
	Devices []machine.DeviceID
	// Net grants access to the network stack (the web interface only).
	Net bool
	// Server marks a system server: it may invoke privileged kernel calls,
	// and IPC to/from it bypasses the user ACM (it performs its own
	// auditing, like PM).
	Server bool
	// Restart asks the reincarnation server to respawn the process when it
	// crashes (device drivers in the scenario).
	Restart bool
}

// Config parameterises the kernel.
type Config struct {
	// DisableACM turns off the access control matrix, yielding a vanilla
	// MINIX 3 for ablation experiments. The zero value enforces the ACM.
	DisableACM bool
	// MailboxCap bounds each process's asynchronous mailbox; zero means 16.
	MailboxCap int
	// Net is the board's network stack; nil boards have no network.
	Net *vnet.Stack
}

// Stats counts kernel-level events for the experiments.
type Stats struct {
	IPCDelivered int64
	IPCDenied    int64
	Notifies     int64
	AsyncQueued  int64
	DevReads     int64
	DevWrites    int64
	Spawns       int64
	Kills        int64
	Crashes      int64
}

// ipcPhase records why a process is blocked, if it is.
type ipcPhase int

const (
	phaseIdle ipcPhase = iota
	phaseSendBlocked
	phaseRecvBlocked
	phaseSleeping
	phaseNetBlocked
)

// procEntry is the kernel-side process control block. The paper's ac_id
// addition is the acID field.
type procEntry struct {
	pid  machine.PID
	ep   Endpoint
	name string
	acID core.ACID
	// acName is the policy spelling of acID, resolved once at spawn so the
	// per-delivery IPC accounting never formats a name on the hot path.
	acName string
	uid    int

	image     string
	isServer  bool
	restart   bool
	devs      map[machine.DeviceID]bool
	netAccess bool

	// IPC state.
	phase       ipcPhase
	wantSendRec bool
	sendDst     Endpoint
	outMsg      Message
	recvFrom    Endpoint
	senders     []machine.PID
	notifies    []Endpoint
	mailbox     []Message

	// waitToken invalidates stale timer/network callbacks after the process
	// unblocks or dies.
	waitToken uint64

	// span is the open sendrec round-trip span, zero outside a sendrec.
	span obs.SpanID

	// exiting marks a voluntary exit() so OnProcExit does not count it as a
	// crash.
	exiting bool

	// Network handles.
	nextHandle int32
	listeners  map[int32]*vnet.Listener
	conns      map[int32]*vnet.Conn

	// Memory grants.
	grants    map[GrantID]*grant
	nextGrant GrantID

	// Reply scratch for the hot trap paths. The engine serialises all
	// kernel work, a blocked process receives at most one wake-up value,
	// and the API wrappers copy the fields out before the next trap, so
	// returning &e.ipcR / &e.errR / &e.u32R boxes a pointer (no per-call
	// heap allocation) without aliasing hazards.
	ipcR ipcReply
	errR errReply
	u32R u32Reply
}

// ipcOut fills the entry's IPC reply scratch and returns it boxed. A nil err
// with a zero msg is the bare success reply.
func (e *procEntry) ipcOut(msg Message, err error) any {
	e.ipcR = ipcReply{msg: msg, err: err}
	return &e.ipcR
}

// errOut fills the entry's error reply scratch and returns it boxed.
func (e *procEntry) errOut(err error) any {
	e.errR = errReply{err: err}
	return &e.errR
}

// u32Out fills the entry's u32 reply scratch and returns it boxed.
func (e *procEntry) u32Out(v uint32, err error) any {
	e.u32R = u32Reply{value: v, err: err}
	return &e.u32R
}

// Kernel is the simulated security-enhanced MINIX 3 kernel: the board's
// machine.TrapHandler plus the process table, directory service, ACM
// enforcement, and device/network mediation.
type Kernel struct {
	m      *machine.Machine
	policy *core.Policy
	cfg    Config

	images map[string]Image
	slots  []*procEntry
	gens   []int
	byPID  map[machine.PID]*procEntry
	names  map[string]Endpoint

	pm *pmServer
	rs *rsServer

	stats Stats

	// Observability hooks, resolved once at boot.
	tracer     *obs.Tracer
	events     *obs.EventLog
	mSends     *obs.Counter
	mSendRecs  *obs.Counter
	mReceives  *obs.Counter
	mNotifies  *obs.Counter
	mSendNBs   *obs.Counter
	mDelivered *obs.Counter
	mDenied    *obs.Counter
	mKills     *obs.Counter
	mSendRecNs *obs.Histogram
	// srLabels caches "sendrec mtN" span labels so the hot IPC path does
	// not format strings per call.
	srLabels map[int32]string
	// mtLabels caches "mtN" IPC-usage labels, same reason.
	mtLabels map[int32]string
	mMailbox *obs.Gauge

	// ipcFault is the fault-injection filter, consulted after ACM checks on
	// every send path. nil when no campaign is armed (the common case).
	ipcFault func(src, dst string) (drop bool, delay time.Duration)
}

var _ machine.TrapHandler = (*Kernel)(nil)

// Boot installs the kernel on a board and starts the system servers (PM,
// RS). The policy must be sealed; the ACM half is enforced in the kernel on
// every IPC, the syscall half inside PM.
func Boot(m *machine.Machine, policy *core.Policy, cfg Config) (*Kernel, error) {
	if !policy.Sealed() {
		return nil, core.ErrNotSealed
	}
	if cfg.MailboxCap == 0 {
		cfg.MailboxCap = 16
	}
	k := &Kernel{
		m:      m,
		policy: policy,
		cfg:    cfg,
		images: make(map[string]Image),
		slots:  make([]*procEntry, maxSlots),
		gens:   make([]int, maxSlots),
		byPID:  make(map[machine.PID]*procEntry),
		names:  make(map[string]Endpoint),
	}
	for i := range k.gens {
		k.gens[i] = 1
	}
	board := m.Obs()
	board.Events().SetPlatform("minix")
	k.tracer = board.Tracer()
	k.events = board.Events()
	reg := board.Metrics()
	k.mSends = reg.Counter("minix_ipc_send_total")
	k.mSendRecs = reg.Counter("minix_ipc_sendrec_total")
	k.mReceives = reg.Counter("minix_ipc_receive_total")
	k.mNotifies = reg.Counter("minix_ipc_notify_total")
	k.mSendNBs = reg.Counter("minix_ipc_sendnb_total")
	k.mDelivered = reg.Counter("minix_ipc_delivered_total")
	k.mDenied = reg.Counter("minix_ipc_denied_total")
	k.mKills = reg.Counter("minix_kills_total")
	k.mSendRecNs = reg.Histogram("minix_sendrec_roundtrip_ns", nil)
	k.mMailbox = reg.Gauge("minix_mailbox_depth")
	m.Engine().SetHandler(k)

	k.pm = newPMServer(k, policy.Syscalls)
	k.rs = newRSServer(k)
	if _, err := k.startServer(pmImage(k.pm)); err != nil {
		return nil, fmt.Errorf("minix: starting pm: %w", err)
	}
	rsEP, err := k.startServer(rsImage(k.rs))
	if err != nil {
		return nil, fmt.Errorf("minix: starting rs: %w", err)
	}
	k.rs.ep = rsEP
	return k, nil
}

// SetIPCFault installs fn as the fault-injection IPC filter. It runs after
// the ACM allows a delivery, with the sender's and receiver's process names;
// drop loses the message in transit, delay postpones delivery. nil clears
// the filter. Transport faults model flaky drivers, not policy: denials
// still come only from the ACM.
func (k *Kernel) SetIPCFault(fn func(src, dst string) (drop bool, delay time.Duration)) {
	k.ipcFault = fn
}

// faultFor consults the installed IPC fault filter.
func (k *Kernel) faultFor(src, dst string) (bool, time.Duration) {
	if k.ipcFault == nil {
		return false, 0
	}
	return k.ipcFault(src, dst)
}

// CrashProcess kills the named process as if it had faulted: unlike the
// policy-mediated kill path it does not mark the victim as exiting, so
// OnProcExit reports the death to the reincarnation server like any crash.
func (k *Kernel) CrashProcess(name string) error {
	ep, err := k.EndpointOf(name)
	if err != nil {
		return err
	}
	e := k.resolve(ep)
	if e == nil {
		return fmt.Errorf("%w: %v", ErrDeadSrcDst, ep)
	}
	k.stats.Crashes++
	return k.m.Engine().Kill(e.pid)
}

// startServer registers and spawns a system-server image.
func (k *Kernel) startServer(img Image) (Endpoint, error) {
	k.RegisterImage(img)
	return k.SpawnImage(img.Name, core.NoACID)
}

// RegisterImage adds a binary image to the boot image registry. Duplicate
// names panic: the image list is fixed at build time.
func (k *Kernel) RegisterImage(img Image) {
	if img.Name == "" || img.Body == nil {
		panic("minix: image needs a name and a body")
	}
	if _, dup := k.images[img.Name]; dup {
		panic(fmt.Sprintf("minix: image %q registered twice", img.Name))
	}
	k.images[img.Name] = img
}

// Stats returns a snapshot of kernel counters.
func (k *Kernel) Stats() Stats { return k.stats }

// Machine returns the underlying board.
func (k *Kernel) Machine() *machine.Machine { return k.m }

// PM returns the process-manager server handle (for experiment inspection).
func (k *Kernel) PM() *PMView { return &PMView{pm: k.pm} }

// EndpointOf resolves a published name from the host side.
func (k *Kernel) EndpointOf(name string) (Endpoint, error) {
	ep, ok := k.names[name]
	if !ok {
		return EndpointNone, fmt.Errorf("%w: %q", ErrNameNotFound, name)
	}
	return ep, nil
}

// ACIDOf reports the access-control identity of a live endpoint.
func (k *Kernel) ACIDOf(ep Endpoint) (core.ACID, error) {
	e := k.resolve(ep)
	if e == nil {
		return core.NoACID, fmt.Errorf("%w: %v", ErrDeadSrcDst, ep)
	}
	return e.acID, nil
}

// Alive reports whether an endpoint currently addresses a live process.
func (k *Kernel) Alive(ep Endpoint) bool { return k.resolve(ep) != nil }

// LiveProcs lists the published names of live processes, for tests.
func (k *Kernel) LiveProcs() []string {
	var out []string
	for _, e := range k.slots {
		if e != nil {
			out = append(out, e.name)
		}
	}
	return out
}

// SpawnImage instantiates a registered image with the given access-control
// identity (NoACID spawns an identity-less process). It is the host/boot
// path; running processes go through PM's fork2 instead.
func (k *Kernel) SpawnImage(image string, acid core.ACID) (Endpoint, error) {
	img, ok := k.images[image]
	if !ok {
		return EndpointNone, fmt.Errorf("%w: %q", ErrUnknownImage, image)
	}
	return k.spawn(img, acid)
}

// spawn allocates a slot and starts the image body.
func (k *Kernel) spawn(img Image, acid core.ACID) (Endpoint, error) {
	slot := -1
	for i, e := range k.slots {
		if e == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		return EndpointNone, ErrTableFull
	}
	ep := makeEndpoint(slot, k.gens[slot])
	entry := &procEntry{
		ep:        ep,
		name:      img.Name,
		acID:      acid,
		acName:    k.policy.IPC.NameOf(acid),
		uid:       img.UID,
		image:     img.Name,
		isServer:  img.Server,
		restart:   img.Restart,
		netAccess: img.Net,
		devs:      make(map[machine.DeviceID]bool, len(img.Devices)),
		listeners: make(map[int32]*vnet.Listener),
		conns:     make(map[int32]*vnet.Conn),
	}
	for _, d := range img.Devices {
		entry.devs[d] = true
	}
	body := img.Body
	proc, err := k.m.Engine().Spawn(img.Name, img.Priority, func(ctx *machine.Context) {
		body(&API{ctx: ctx, self: ep})
	})
	if err != nil {
		return EndpointNone, fmt.Errorf("minix: spawning %q: %w", img.Name, err)
	}
	entry.pid = proc.PID()
	k.slots[slot] = entry
	k.byPID[proc.PID()] = entry
	k.names[img.Name] = ep
	k.stats.Spawns++
	k.m.Trace().Logf("minix", "spawn %s ep=%v acid=%d uid=%d", img.Name, ep, acid, img.UID)
	return ep, nil
}

// resolve maps an endpoint to its live process entry, nil when dead/invalid.
func (k *Kernel) resolve(ep Endpoint) *procEntry {
	if ep == EndpointNone || ep == EndpointAny || ep == EndpointSystem {
		return nil
	}
	slot := ep.Slot()
	if slot >= len(k.slots) {
		return nil
	}
	e := k.slots[slot]
	if e == nil || e.ep != ep {
		return nil
	}
	return e
}

// entryOf maps a trapping PID to its entry; every trapping process was
// spawned by this kernel, so a miss is a kernel bug.
func (k *Kernel) entryOf(pid machine.PID) *procEntry {
	e, ok := k.byPID[pid]
	if !ok {
		panic(fmt.Sprintf("minix: trap from unknown pid %d", pid))
	}
	return e
}

// checkIPC is the access control matrix hook on every user-to-user IPC
// operation. System servers bypass it (they audit their own protocols). A
// kernel with the ACM disabled (the vanilla-MINIX ablation) skips the
// permission check but still records the delivery: runtime verification is
// most interesting exactly where enforcement is absent, and the online
// policy monitor observes the recorded stream on both configurations.
func (k *Kernel) checkIPC(src, dst *procEntry, msgType int32) error {
	if src.isServer || dst.isServer {
		return nil
	}
	if !k.cfg.DisableACM {
		if msgType < 0 || int64(msgType) > int64(core.MaxMsgType) {
			k.auditDeny(src, dst, msgType)
			return &core.DeniedError{Src: src.acID, Dst: dst.acID, Type: core.MaxMsgType}
		}
		if err := k.policy.IPC.Check(src.acID, dst.acID, core.MsgType(msgType)); err != nil {
			k.auditDeny(src, dst, msgType)
			return err
		}
	}
	// Record the exercised grant for the least-privilege audit
	// (polcheck.AuditMatrix): names match the matrix so the audit can diff
	// cells against usage directly.
	k.m.IPC().Record(src.acName, dst.acName, k.mtLabel(msgType))
	return nil
}

// auditDeny records one ACM denial in the board trace, counters, and the
// unified security-event stream.
func (k *Kernel) auditDeny(src, dst *procEntry, msgType int32) {
	k.stats.IPCDenied++
	k.mDenied.Inc()
	k.events.Emit(obs.SecurityEvent{
		Kind:      obs.EventIPCDenied,
		Mechanism: obs.MechACM,
		Denied:    true,
		Src:       src.name,
		Dst:       dst.name,
		Detail:    fmt.Sprintf("m_type=%d acid=%d->%d", msgType, src.acID, dst.acID),
	})
	k.m.Trace().Logf("minix-acm", "DENY %s(acid=%d) -> %s(acid=%d) m_type=%d",
		src.name, src.acID, dst.name, dst.acID, msgType)
}

// mtLabel returns the cached IPC-usage label for one message type,
// mirroring sendRecLabel: fmt stays off the per-delivery hot path, which
// the online policy monitor requires to stay allocation-free.
func (k *Kernel) mtLabel(msgType int32) string {
	if l, ok := k.mtLabels[msgType]; ok {
		return l
	}
	if k.mtLabels == nil {
		k.mtLabels = make(map[int32]string)
	}
	l := fmt.Sprintf("mt%d", msgType)
	k.mtLabels[msgType] = l
	return l
}

// sendRecLabel returns the cached span label for a sendrec of one message
// type. The set of types is tiny and fixed by the scenario, so the cache
// stays small while keeping fmt off the IPC hot path.
func (k *Kernel) sendRecLabel(msgType int32) string {
	if l, ok := k.srLabels[msgType]; ok {
		return l
	}
	if k.srLabels == nil {
		k.srLabels = make(map[int32]string)
	}
	l := fmt.Sprintf("sendrec mt%d", msgType)
	k.srLabels[msgType] = l
	return l
}

// endSpan closes e's open sendrec span, if any, observing the round-trip
// latency on delivery.
func (k *Kernel) endSpan(e *procEntry, outcome obs.Outcome) {
	if e.span == 0 {
		return
	}
	s, ok := k.tracer.End(e.span, outcome)
	e.span = 0
	if ok && outcome == obs.OutcomeDelivered {
		k.mSendRecNs.Observe(time.Duration(s.Duration()))
	}
}

// HandleTrap implements machine.TrapHandler.
func (k *Kernel) HandleTrap(pid machine.PID, req any) (any, machine.Disposition) {
	self := k.entryOf(pid)
	switch r := req.(type) {
	case *sendReq:
		return k.doSend(self, r.dst, r.msg, false)
	case *sendRecReq:
		return k.doSend(self, r.dst, r.msg, true)
	case *receiveReq:
		return k.doReceive(self, r.from)
	case *receiveTimeoutReq:
		reply, disp := k.doReceive(self, r.from)
		if disp == machine.DispositionContinue {
			return reply, disp
		}
		// Blocked: arm the timeout. Delivery bumps waitToken, so a reply
		// racing the timer wins and the timer callback becomes a no-op.
		self.waitToken++
		token := self.waitToken
		k.m.Clock().After(r.d, func() {
			e := k.byPID[pid]
			if e != self || e.waitToken != token || e.phase != phaseRecvBlocked {
				return
			}
			e.phase = phaseIdle
			e.waitToken++
			k.mustReady(pid, e.ipcOut(Message{}, ErrTimeout))
		})
		return nil, machine.DispositionBlock
	case *notifyReq:
		return k.doNotify(self, r.dst)
	case *sendNBReq:
		return k.doSendNB(self, r.dst, r.msg)
	case *sleepReq:
		return k.doSleep(self, r)
	case *devReadReq:
		if !self.devs[r.dev] {
			return self.u32Out(0, fmt.Errorf("%w: device %q", ErrNoPrivilege, r.dev)), machine.DispositionContinue
		}
		k.stats.DevReads++
		v, err := k.m.Bus().Read(r.dev, r.reg)
		return self.u32Out(v, err), machine.DispositionContinue
	case *devWriteReq:
		if !self.devs[r.dev] {
			return self.errOut(fmt.Errorf("%w: device %q", ErrNoPrivilege, r.dev)), machine.DispositionContinue
		}
		k.stats.DevWrites++
		return self.errOut(k.m.Bus().Write(r.dev, r.reg, r.value)), machine.DispositionContinue
	case lookupReq:
		ep, err := k.EndpointOf(r.name)
		return epReply{ep: ep, err: err}, machine.DispositionContinue
	case traceReq:
		k.m.Trace().Logf(r.tag, "%s", r.text)
		return errReply{}, machine.DispositionContinue
	case netListenReq:
		return k.doNetListen(self, r)
	case netAcceptReq:
		return k.doNetAccept(self, r)
	case netReadReq:
		return k.doNetRead(self, r)
	case netWriteReq:
		return k.doNetWrite(self, r)
	case netCloseReq:
		return k.doNetClose(self, r)
	case grantCreateReq:
		return k.doGrantCreate(self, r)
	case grantRevokeReq:
		return k.doGrantRevoke(self, r)
	case safeCopyReq:
		return k.doSafeCopy(self, r)
	case exitReq:
		self.exiting = true
		if err := k.m.Engine().Kill(pid); err != nil {
			return errReply{err: err}, machine.DispositionContinue
		}
		// Unreachable: Kill unwound the goroutine.
		return errReply{}, machine.DispositionContinue
	case kSpawnReq:
		if !self.isServer {
			return epReply{err: ErrNoPrivilege}, machine.DispositionContinue
		}
		ep, err := k.SpawnImage(r.image, core.ACID(r.acid))
		return epReply{ep: ep, err: err}, machine.DispositionContinue
	case kKillReq:
		if !self.isServer {
			k.events.Emit(obs.SecurityEvent{
				Kind:      obs.EventKillDenied,
				Mechanism: obs.MechKernel,
				Denied:    true,
				Src:       self.name,
				Detail:    "kernel kill requires server privilege",
			})
			return errReply{err: ErrNoPrivilege}, machine.DispositionContinue
		}
		victim := k.resolve(r.target)
		if victim == nil {
			return errReply{err: fmt.Errorf("%w: %v", ErrDeadSrcDst, r.target)}, machine.DispositionContinue
		}
		k.stats.Kills++
		k.mKills.Inc()
		k.events.Emit(obs.SecurityEvent{
			Kind:      obs.EventKill,
			Mechanism: obs.MechSyscallMask,
			Src:       self.name,
			Dst:       victim.name,
			Detail:    "pm-authorized kill",
		})
		victim.exiting = true // killed by policy decision, not a fault
		if err := k.m.Engine().Kill(victim.pid); err != nil {
			return errReply{err: err}, machine.DispositionContinue
		}
		return errReply{}, machine.DispositionContinue
	default:
		return errReply{err: fmt.Errorf("minix: unknown trap %T", req)}, machine.DispositionContinue
	}
}

// doSend implements synchronous send and the send half of sendrec.
func (k *Kernel) doSend(self *procEntry, dst Endpoint, msg Message, sendRec bool) (any, machine.Disposition) {
	if sendRec {
		k.mSendRecs.Inc()
	} else {
		k.mSends.Inc()
	}
	target := k.resolve(dst)
	if target == nil {
		return self.ipcOut(Message{}, fmt.Errorf("%w: %v", ErrDeadSrcDst, dst)), machine.DispositionContinue
	}
	if target == self {
		return self.ipcOut(Message{}, ErrSelfSend), machine.DispositionContinue
	}
	if err := k.checkIPC(self, target, msg.Type); err != nil {
		if sendRec {
			k.tracer.Emit(self.name, target.name, k.sendRecLabel(msg.Type), obs.OutcomeACMDenied)
		}
		return self.ipcOut(Message{}, err), machine.DispositionContinue
	}
	drop, delay := k.faultFor(self.name, target.name)
	if drop {
		if sendRec {
			k.tracer.Emit(self.name, target.name, k.sendRecLabel(msg.Type), obs.OutcomeAborted)
		}
		return self.ipcOut(Message{}, ErrTimeout), machine.DispositionContinue
	}
	msg.Source = self.ep // kernel stamp: spoofing-proof sender identity
	self.outMsg = msg
	self.sendDst = dst
	self.wantSendRec = sendRec
	if sendRec {
		// The round-trip span stays open until the reply wakes the caller.
		self.span = k.tracer.Begin(self.name, target.name, k.sendRecLabel(msg.Type))
	}
	if delay > 0 {
		return k.delaySend(self, dst, msg, sendRec, delay)
	}

	if target.phase == phaseRecvBlocked && matches(target.recvFrom, self.ep) {
		// Rendezvous: receiver is waiting, deliver immediately.
		k.completeReceive(target, msg)
		if sendRec {
			self.phase = phaseRecvBlocked
			self.recvFrom = dst
			return nil, machine.DispositionBlock
		}
		return self.ipcOut(Message{}, nil), machine.DispositionContinue
	}
	// Receiver not ready: queue and block (rendezvous semantics).
	target.senders = append(target.senders, self.pid)
	self.phase = phaseSendBlocked
	return nil, machine.DispositionBlock
}

// delaySend parks a sender whose delivery is being delayed by fault
// injection. The sender blocks as in a normal rendezvous, but joins the
// receiver's sender queue only when the delay elapses, so the message is
// invisible in transit.
func (k *Kernel) delaySend(self *procEntry, dst Endpoint, msg Message, sendRec bool, delay time.Duration) (any, machine.Disposition) {
	self.phase = phaseSendBlocked
	self.waitToken++
	token := self.waitToken
	pid := self.pid
	k.m.Clock().After(delay, func() {
		e := k.byPID[pid]
		if e != self || e.waitToken != token || e.phase != phaseSendBlocked {
			return
		}
		target := k.resolve(dst)
		if target == nil {
			e.phase = phaseIdle
			k.endSpan(e, obs.OutcomeAborted)
			k.mustReady(pid, e.ipcOut(Message{}, fmt.Errorf("%w: %v", ErrDeadSrcDst, dst)))
			return
		}
		if target.phase == phaseRecvBlocked && matches(target.recvFrom, e.ep) {
			k.completeReceive(target, msg)
			if sendRec {
				e.phase = phaseRecvBlocked
				e.recvFrom = dst
				return
			}
			e.phase = phaseIdle
			k.mustReady(pid, e.ipcOut(Message{}, nil))
			return
		}
		target.senders = append(target.senders, pid)
	})
	return nil, machine.DispositionBlock
}

// completeReceive hands msg to a receiver blocked in Receive and wakes it.
func (k *Kernel) completeReceive(receiver *procEntry, msg Message) {
	receiver.phase = phaseIdle
	receiver.waitToken++
	k.stats.IPCDelivered++
	k.mDelivered.Inc()
	k.endSpan(receiver, obs.OutcomeDelivered)
	if err := k.m.Engine().Ready(receiver.pid, receiver.ipcOut(msg, nil)); err != nil {
		panic(fmt.Sprintf("minix: waking receiver %s: %v", receiver.name, err))
	}
}

// doReceive implements Receive(from).
func (k *Kernel) doReceive(self *procEntry, from Endpoint) (any, machine.Disposition) {
	k.mReceives.Inc()
	// Specific receive from a dead endpoint can never complete.
	if from != EndpointAny && k.resolve(from) == nil && from != EndpointSystem {
		return self.ipcOut(Message{}, fmt.Errorf("%w: %v", ErrDeadSrcDst, from)), machine.DispositionContinue
	}
	// Delivery priority: notifications, then the async mailbox, then blocked
	// senders, mirroring MINIX's notify-before-message rule.
	for i, src := range self.notifies {
		if matches(from, src) {
			self.notifies = append(self.notifies[:i], self.notifies[i+1:]...)
			k.stats.IPCDelivered++
			k.mDelivered.Inc()
			return self.ipcOut(Message{Source: src, Type: int32(core.MsgAck)}, nil), machine.DispositionContinue
		}
	}
	for i, msg := range self.mailbox {
		if matches(from, msg.Source) {
			self.mailbox = append(self.mailbox[:i], self.mailbox[i+1:]...)
			k.mMailbox.Add(-1)
			k.stats.IPCDelivered++
			k.mDelivered.Inc()
			return self.ipcOut(msg, nil), machine.DispositionContinue
		}
	}
	for i, senderPID := range self.senders {
		sender := k.byPID[senderPID]
		if sender == nil || sender.phase != phaseSendBlocked {
			continue
		}
		if !matches(from, sender.ep) {
			continue
		}
		self.senders = append(self.senders[:i], self.senders[i+1:]...)
		msg := sender.outMsg
		k.stats.IPCDelivered++
		k.mDelivered.Inc()
		// Complete the sender's operation.
		if sender.wantSendRec {
			sender.phase = phaseRecvBlocked
			sender.recvFrom = self.ep
		} else {
			sender.phase = phaseIdle
			if err := k.m.Engine().Ready(sender.pid, sender.ipcOut(Message{}, nil)); err != nil {
				panic(fmt.Sprintf("minix: waking sender %s: %v", sender.name, err))
			}
		}
		return self.ipcOut(msg, nil), machine.DispositionContinue
	}
	// Nothing pending: block.
	self.phase = phaseRecvBlocked
	self.recvFrom = from
	return nil, machine.DispositionBlock
}

// doNotify implements the non-blocking notification primitive. A
// notification carries no payload and is delivered as a type-0
// (ACKNOWLEDGE) message, so the ACM's ack bit governs it.
func (k *Kernel) doNotify(self *procEntry, dst Endpoint) (any, machine.Disposition) {
	k.mNotifies.Inc()
	target := k.resolve(dst)
	if target == nil {
		return self.errOut(fmt.Errorf("%w: %v", ErrDeadSrcDst, dst)), machine.DispositionContinue
	}
	if err := k.checkIPC(self, target, int32(core.MsgAck)); err != nil {
		return self.errOut(err), machine.DispositionContinue
	}
	drop, delay := k.faultFor(self.name, target.name)
	if drop {
		// Notifications are fire-and-forget: a lost one is a silent success.
		return self.errOut(nil), machine.DispositionContinue
	}
	k.stats.Notifies++
	if delay > 0 {
		src := self.ep
		k.m.Clock().After(delay, func() {
			if tgt := k.resolve(dst); tgt != nil {
				k.queueNotify(tgt, src)
			}
		})
		return self.errOut(nil), machine.DispositionContinue
	}
	k.queueNotify(target, self.ep)
	return self.errOut(nil), machine.DispositionContinue
}

// queueNotify delivers or pends a notification from src.
func (k *Kernel) queueNotify(target *procEntry, src Endpoint) {
	if target.phase == phaseRecvBlocked && matches(target.recvFrom, src) {
		k.completeReceive(target, Message{Source: src, Type: int32(core.MsgAck)})
		return
	}
	// Pending notifications are a set: duplicates collapse, like MINIX bits.
	for _, s := range target.notifies {
		if s == src {
			return
		}
	}
	target.notifies = append(target.notifies, src)
}

// doSendNB implements the asynchronous non-blocking send the sensor driver
// uses ("sends the fresh data using nonblocking send").
func (k *Kernel) doSendNB(self *procEntry, dst Endpoint, msg Message) (any, machine.Disposition) {
	k.mSendNBs.Inc()
	target := k.resolve(dst)
	if target == nil {
		return self.errOut(fmt.Errorf("%w: %v", ErrDeadSrcDst, dst)), machine.DispositionContinue
	}
	if target == self {
		return self.errOut(ErrSelfSend), machine.DispositionContinue
	}
	if err := k.checkIPC(self, target, msg.Type); err != nil {
		return self.errOut(err), machine.DispositionContinue
	}
	drop, delay := k.faultFor(self.name, target.name)
	if drop {
		// Async sends report success; the message is lost in transit.
		return self.errOut(nil), machine.DispositionContinue
	}
	msg.Source = self.ep
	if delay > 0 {
		k.m.Clock().After(delay, func() {
			tgt := k.resolve(dst)
			if tgt == nil {
				return
			}
			if tgt.phase == phaseRecvBlocked && matches(tgt.recvFrom, msg.Source) {
				k.completeReceive(tgt, msg)
				return
			}
			if len(tgt.mailbox) >= k.cfg.MailboxCap {
				return // lost: no sender left to report to
			}
			tgt.mailbox = append(tgt.mailbox, msg)
			k.mMailbox.Add(1)
			k.stats.AsyncQueued++
		})
		return self.errOut(nil), machine.DispositionContinue
	}
	if target.phase == phaseRecvBlocked && matches(target.recvFrom, self.ep) {
		k.completeReceive(target, msg)
		return self.errOut(nil), machine.DispositionContinue
	}
	if len(target.mailbox) >= k.cfg.MailboxCap {
		return self.errOut(ErrMailboxFull), machine.DispositionContinue
	}
	target.mailbox = append(target.mailbox, msg)
	k.mMailbox.Add(1)
	k.stats.AsyncQueued++
	return self.errOut(nil), machine.DispositionContinue
}

// deliverSystem queues a kernel-generated message to a server process,
// delivering immediately when it is blocked in a matching receive.
func (k *Kernel) deliverSystem(target *procEntry, msg Message) {
	msg.Source = EndpointSystem
	if target.phase == phaseRecvBlocked && matches(target.recvFrom, EndpointSystem) {
		k.completeReceive(target, msg)
		return
	}
	target.mailbox = append(target.mailbox, msg) // system messages bypass the cap
	k.mMailbox.Add(1)
}

// doSleep blocks the caller for a virtual duration.
func (k *Kernel) doSleep(self *procEntry, r *sleepReq) (any, machine.Disposition) {
	self.phase = phaseSleeping
	self.waitToken++
	token := self.waitToken
	pid := self.pid
	k.m.Clock().After(r.d, func() {
		e := k.byPID[pid]
		if e != self || e.waitToken != token || e.phase != phaseSleeping {
			return
		}
		e.phase = phaseIdle
		if err := k.m.Engine().Ready(pid, e.errOut(nil)); err != nil {
			panic(fmt.Sprintf("minix: waking sleeper %s: %v", e.name, err))
		}
	})
	return nil, machine.DispositionBlock
}

// matches implements the Receive source filter.
func matches(filter, src Endpoint) bool {
	return filter == EndpointAny || filter == src
}

// OnProcExit implements machine.TrapHandler: it tears down the dead
// process's kernel state, errors out every peer blocked on it, and reports
// driver crashes to the reincarnation server.
func (k *Kernel) OnProcExit(pid machine.PID, info machine.ExitInfo) {
	e, ok := k.byPID[pid]
	if !ok {
		return
	}
	crashed := info.Crashed || (info.Killed && !e.exiting)
	if info.Crashed {
		k.stats.Crashes++
		k.m.Trace().Logf("minix", "CRASH %s ep=%v panic=%v", e.name, e.ep, info.PanicValue)
	} else {
		k.m.Trace().Logf("minix", "exit %s ep=%v", e.name, e.ep)
	}

	// Free the slot; bump the generation so the endpoint goes stale.
	slot := e.ep.Slot()
	k.slots[slot] = nil
	k.gens[slot]++
	delete(k.byPID, pid)
	if k.names[e.name] == e.ep {
		delete(k.names, e.name)
	}
	e.waitToken++ // invalidate timers and net callbacks
	k.endSpan(e, obs.OutcomeAborted)
	k.mMailbox.Add(int64(-len(e.mailbox)))

	// Wake senders queued on the victim.
	for _, senderPID := range e.senders {
		sender := k.byPID[senderPID]
		if sender == nil || sender.phase != phaseSendBlocked {
			continue
		}
		sender.phase = phaseIdle
		k.endSpan(sender, obs.OutcomeAborted)
		if err := k.m.Engine().Ready(senderPID, sender.ipcOut(Message{}, fmt.Errorf("%w: %v", ErrDeadSrcDst, e.ep))); err != nil {
			panic(fmt.Sprintf("minix: waking sender of dead proc: %v", err))
		}
	}
	// Wake receivers waiting specifically on the victim, and drop the victim
	// from other processes' sender queues.
	for _, other := range k.slots {
		if other == nil {
			continue
		}
		if other.phase == phaseRecvBlocked && other.recvFrom == e.ep {
			other.phase = phaseIdle
			other.waitToken++
			k.endSpan(other, obs.OutcomeAborted)
			if err := k.m.Engine().Ready(other.pid, other.ipcOut(Message{}, fmt.Errorf("%w: %v", ErrDeadSrcDst, e.ep))); err != nil {
				panic(fmt.Sprintf("minix: waking receiver of dead proc: %v", err))
			}
		}
		for i, senderPID := range other.senders {
			if senderPID == pid {
				other.senders = append(other.senders[:i], other.senders[i+1:]...)
				break
			}
		}
	}

	// Release network resources.
	if k.cfg.Net != nil {
		for _, l := range e.listeners {
			k.cfg.Net.CloseListener(l)
		}
		for _, c := range e.conns {
			k.cfg.Net.BoardClose(c)
		}
	}

	// Report to RS for driver reincarnation.
	if k.rs != nil && e.restart && crashed {
		if rsEntry := k.resolve(k.rs.ep); rsEntry != nil {
			msg := NewMessage(TypeProcExit)
			msg.PutU32(0, uint32(e.ep))
			msg.PutString(8, e.image)
			msg.PutU32(44, uint32(e.acID))
			k.deliverSystem(rsEntry, msg)
		}
	}
}
