package machine

import (
	"errors"
	"fmt"
	"time"

	"mkbas/internal/obs"
	"mkbas/internal/perf"
)

// Disposition tells the engine what to do with a process after its trap has
// been handled.
type Disposition int

const (
	// DispositionContinue delivers the reply and returns the process to the
	// ready queue.
	DispositionContinue Disposition = iota + 1
	// DispositionBlock parks the process; the kernel must later wake it with
	// Engine.Ready (typically from another process's trap or a timer).
	DispositionBlock
)

// TrapHandler is the kernel personality of a board. Exactly one handler is
// attached to an Engine; it receives every trap and every process exit.
//
// Handlers run while holding the engine token (see Engine) and may call back
// into the engine (Spawn, Ready, Kill, clock scheduling) synchronously. A
// handler that kills the trapping process during HandleTrap may return any
// disposition; the engine notices the death and discards the reply.
type TrapHandler interface {
	// HandleTrap processes one system call from process pid.
	HandleTrap(pid PID, req any) (reply any, disposition Disposition)
	// OnProcExit is invoked after a process dies for any reason (return,
	// crash, kill). It runs before the next dispatch, so kernels can clean up
	// or restart drivers (reincarnation) deterministically.
	OnProcExit(pid PID, info ExitInfo)
}

// StopReason explains why Engine.Run returned.
type StopReason int

const (
	// StopDeadline means virtual time reached the requested horizon.
	StopDeadline StopReason = iota + 1
	// StopAllExited means no live processes remain.
	StopAllExited
	// StopIdle means live processes exist but all are blocked and no timers
	// are pending: the board is deadlocked.
	StopIdle
)

// String returns a short description of the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopDeadline:
		return "deadline"
	case StopAllExited:
		return "all-exited"
	case StopIdle:
		return "idle-deadlock"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// RunResult summarises one Engine.Run call.
type RunResult struct {
	Reason StopReason
	Now    Time
}

// Costs models the virtual-time price of kernel entry and context switching.
// These drive the E4 overhead experiments: a microkernel IPC round trip pays
// several traps and switches, a monolithic syscall pays one.
type Costs struct {
	// Trap is charged on every kernel entry.
	Trap time.Duration
	// Switch is charged whenever a different process is dispatched than the
	// one that ran last.
	Switch time.Duration
}

// DefaultCosts approximate an ARM Cortex-A8 class controller: half a
// microsecond per kernel entry, one microsecond per context switch.
func DefaultCosts() Costs {
	return Costs{Trap: 500 * time.Nanosecond, Switch: time.Microsecond}
}

// Stats aggregates board-level accounting.
type Stats struct {
	Traps           int64
	ContextSwitches int64
	Spawns          int64
	Exits           int64
	KernelTime      time.Duration
}

// numPriorities bounds process priority levels; 0 is most urgent.
const numPriorities = 16

// pidRing is a growable FIFO ring buffer of PIDs — one per priority band.
// Push and pop are O(1) and allocation-free once the ring has grown to the
// band's working-set size; remove is O(n) but only runs on kill paths. The
// backing array is always a power of two so index wrap is a mask.
type pidRing struct {
	buf  []PID
	head int
	n    int
}

// push appends pid at the tail.
func (r *pidRing) push(pid PID) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = pid
	r.n++
}

// pop removes and returns the head. Callers must check n > 0 first.
func (r *pidRing) pop() PID {
	pid := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return pid
}

// remove deletes the first occurrence of pid, preserving FIFO order of the
// remaining entries, and reports whether it was present.
func (r *pidRing) remove(pid PID) bool {
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		if r.buf[(r.head+i)&mask] != pid {
			continue
		}
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j+1)&mask]
		}
		r.n--
		return true
	}
	return false
}

// grow doubles the backing array (minimum 8), unwrapping the ring to the
// front of the new array.
func (r *pidRing) grow() {
	size := 2 * len(r.buf)
	if size < 8 {
		size = 8
	}
	next := make([]PID, size)
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)&mask]
	}
	r.buf, r.head = next, 0
}

// Engine schedules simulated processes over a virtual clock and routes their
// traps to the attached kernel. It is single-threaded in the token-passing
// sense: at any instant exactly one goroutine — the host inside Run, or one
// process goroutine — holds the engine token, and only the token holder may
// touch engine, clock, or kernel state. Traps are therefore plain function
// calls: Context.Trap runs the kernel handler and the scheduler inline on
// the trapping process's goroutine, and only pays a channel handoff when the
// next runnable process is a different one. Every cross-goroutine transfer
// of the token goes through a channel operation, which is what keeps the
// design race-detector clean.
type Engine struct {
	clock   *Clock
	handler TrapHandler
	costs   Costs

	// procs is the dense process table, indexed by PID-1 (PIDs are assigned
	// from 1, monotonically, and PCBs are never removed).
	procs   []*Proc
	ready   [numPriorities]pidRing
	nextPID PID
	live    int

	// current is the PID whose trap is being handled; lastRun drives
	// context-switch accounting.
	current PID
	lastRun PID

	// Token-passing run state. active is the process whose goroutine holds
	// the engine token (nil while the host holds it); until is the horizon
	// of the Run call in progress; hostDone returns the token to the host
	// when a stop condition is reached.
	active   *Proc
	until    Time
	hostDone chan RunResult

	// Stashed scheduling decision for token-held unwinds: when a kill hits
	// the process whose goroutine is executing the scheduler, the decision
	// already made must survive the unwind (see Kill and Context.Trap).
	stashNext    *Proc
	stashStop    RunResult
	stashStopped bool
	stashValid   bool

	stats    Stats
	shutdown bool

	// Metrics series, resolved once at instrument time so the hot path
	// pays one integer add per sample. All are nil-safe: an engine built
	// outside machine.New (unit tests) runs uninstrumented.
	mTraps      *obs.Counter
	mSwitches   *obs.Counter
	mDispatches *obs.Counter
	mSpawns     *obs.Counter
	mExits      *obs.Counter
	mRunQ       *obs.Gauge
	mLive       *obs.Gauge

	// Host-side profiler phases, resolved once like the metrics series above.
	// Both are nil (discarding) until SetProfiler; engine.dispatch is the
	// hottest scope in the whole simulator, so it uses a time-only HotPhase.
	phRun      *perf.Phase
	phDispatch *perf.Phase
}

// NewEngine creates an engine over clock. The handler must be attached with
// SetHandler before the first Spawn.
func NewEngine(clock *Clock, costs Costs) *Engine {
	return &Engine{
		clock:    clock,
		costs:    costs,
		hostDone: make(chan RunResult),
		nextPID:  1,
	}
}

// SetHandler attaches the kernel personality. It must be called exactly once,
// before any process is spawned.
func (e *Engine) SetHandler(h TrapHandler) {
	if e.handler != nil {
		panic("machine: SetHandler called twice")
	}
	if h == nil {
		panic("machine: SetHandler with nil handler")
	}
	e.handler = h
}

// setProfiler binds the engine's host-time accounting to a perf profiler.
// Safe to leave unset: the nil phases discard.
func (e *Engine) setProfiler(p *perf.Profiler) {
	e.phRun = p.HotPhase("engine.run")
	e.phDispatch = p.HotPhase("engine.dispatch")
}

// instrument binds the engine's accounting to a metrics registry.
func (e *Engine) instrument(r *obs.Registry) {
	e.mTraps = r.Counter("machine_traps_total")
	e.mSwitches = r.Counter("machine_context_switches_total")
	e.mDispatches = r.Counter("machine_dispatches_total")
	e.mSpawns = r.Counter("machine_spawns_total")
	e.mExits = r.Counter("machine_exits_total")
	e.mRunQ = r.Gauge("machine_run_queue_depth")
	e.mLive = r.Gauge("machine_live_procs")
}

// Clock returns the board clock.
func (e *Engine) Clock() *Clock { return e.clock }

// Stats returns a snapshot of the accounting counters.
func (e *Engine) Stats() Stats { return e.stats }

// lookup returns the PCB for pid, or nil if it never existed.
func (e *Engine) lookup(pid PID) *Proc {
	if pid < 1 || int(pid) > len(e.procs) {
		return nil
	}
	return e.procs[pid-1]
}

// Proc returns the process control block for pid, or nil if it never existed.
func (e *Engine) Proc(pid PID) *Proc { return e.lookup(pid) }

// Current returns the PID whose trap is being handled, or NoPID outside
// dispatch.
func (e *Engine) Current() PID { return e.current }

// LiveCount reports the number of processes that have not exited.
func (e *Engine) LiveCount() int { return e.live }

// Procs returns all process control blocks, live and dead, in PID order.
func (e *Engine) Procs() []*Proc {
	out := make([]*Proc, len(e.procs))
	copy(out, e.procs)
	return out
}

// Engine errors.
var (
	ErrNoSuchProc  = errors.New("machine: no such process")
	ErrProcDead    = errors.New("machine: process is dead")
	ErrNotBlocked  = errors.New("machine: process not blocked")
	ErrShutDown    = errors.New("machine: engine shut down")
	ErrBadPriority = errors.New("machine: priority out of range")
)

// Spawn creates a process and enqueues it for its first dispatch. It is
// callable both before Run and from kernel code during a run.
func (e *Engine) Spawn(name string, prio int, body func(ctx *Context)) (*Proc, error) {
	if e.handler == nil {
		panic("machine: Spawn before SetHandler")
	}
	if e.shutdown {
		return nil, ErrShutDown
	}
	if prio < 0 || prio >= numPriorities {
		return nil, fmt.Errorf("%w: %d", ErrBadPriority, prio)
	}
	if body == nil {
		panic("machine: Spawn with nil body")
	}
	p := &Proc{
		pid:    e.nextPID,
		name:   name,
		prio:   prio,
		state:  StateNew,
		engine: e,
		body:   body,
		resume: make(chan any),
		done:   make(chan struct{}),
	}
	e.nextPID++
	e.procs = append(e.procs, p)
	e.live++
	e.stats.Spawns++
	e.mSpawns.Inc()
	e.mLive.Set(int64(e.live))
	e.enqueue(p)
	go runBody(p)
	return p, nil
}

// runBody hosts one process goroutine: it waits for the first dispatch, runs
// the body, and on exit books the death inline (it holds the engine token)
// before handing the token on. A kill sentinel received at a parking point
// unwinds the goroutine without any engine access (the killer holds the
// token and is synchronously waiting on done); a kill issued from this
// goroutine's own call stack leaves the token here, so the unwound goroutine
// passes it on after user-level deferred cleanup has finished.
func runBody(p *Proc) {
	defer close(p.done)
	e := p.engine

	first := <-p.resume
	if _, killed := first.(killSentinel); killed {
		return
	}

	var (
		crashed bool
		killed  bool
		pv      any
	)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, isKill := r.(killSentinel); isKill {
				killed = true
				return
			}
			crashed = true
			pv = r
		}()
		p.body(&Context{proc: p})
	}()
	if killed {
		if p.tokenUnwind {
			// Self-kill (or a timer kill while scheduling): the exit was
			// booked by Kill, the body and its defers have unwound, and this
			// goroutine still holds the token. Hand it on — resuming the
			// decision stashed before the unwind, if one was made.
			if e.stashValid {
				next, stop, stopped := e.stashNext, e.stashStop, e.stashStopped
				e.stashNext, e.stashValid = nil, false
				e.handoff(next, stop, stopped)
			} else {
				e.handoff(e.schedule())
			}
		}
		return
	}

	// The body returned or crashed while holding the token: book the exit
	// inline — this is the body-exit "trap" of the old channel design, so it
	// pays the same trap cost and dispatch count — then hand the token on.
	sc := e.trapEnter(p)
	p.state = StateDead
	e.live--
	e.stats.Exits++
	e.mExits.Inc()
	e.mLive.Set(int64(e.live))
	e.current = NoPID
	e.handler.OnProcExit(p.pid, ExitInfo{Crashed: crashed, PanicValue: pv})
	sc.End()
	e.handoff(e.schedule())
}

// Ready wakes a blocked process, delivering reply as the return value of the
// Trap call it is parked in. Kernels call this from timers or from other
// processes' traps. Waking the currently running process is a programming
// error: return DispositionContinue instead.
func (e *Engine) Ready(pid PID, reply any) error {
	p := e.lookup(pid)
	if p == nil {
		return fmt.Errorf("%w: %d", ErrNoSuchProc, pid)
	}
	switch p.state {
	case StateBlocked:
		p.pendingReply = reply
		p.state = StateReady
		e.enqueue(p)
		return nil
	case StateDead:
		return fmt.Errorf("%w: %d", ErrProcDead, pid)
	default:
		return fmt.Errorf("%w: %d is %v", ErrNotBlocked, pid, p.state)
	}
}

// Kill destroys a process in any live state, including the process whose trap
// is currently being handled. For a parked victim the goroutine is fully
// unwound before Kill returns; for the process executing this very call (the
// kernel killing its caller, or a timer callback killing the scheduler's
// host process) the exit is booked immediately and the unwind happens when
// control returns to Context.Trap. In both cases the kernel's OnProcExit
// hook fires with Killed set before the next dispatch.
func (e *Engine) Kill(pid PID) error {
	p := e.lookup(pid)
	if p == nil {
		return fmt.Errorf("%w: %d", ErrNoSuchProc, pid)
	}
	if p.state == StateDead {
		return fmt.Errorf("%w: %d", ErrProcDead, pid)
	}
	if p == e.active {
		// The victim's goroutine is the one executing this Kill. It cannot
		// be parked on its resume channel, so book the exit here and let
		// Context.Trap (or runBody) unwind the goroutine and pass the token
		// on once user-level deferred cleanup has finished.
		e.dequeue(p)
		p.state = StateDead
		e.live--
		e.stats.Exits++
		e.mExits.Inc()
		e.mLive.Set(int64(e.live))
		e.handler.OnProcExit(pid, ExitInfo{Killed: true})
		return nil
	}
	// Every other live process is parked on its resume channel (New: awaiting
	// first dispatch; Ready: awaiting reply delivery; Blocked: awaiting
	// wake-up), so the sentinel handoff below cannot block.
	p.state = StateDead
	e.dequeue(p)
	p.resume <- killSentinel{}
	<-p.done
	e.live--
	e.stats.Exits++
	e.mExits.Inc()
	e.mLive.Set(int64(e.live))
	e.handler.OnProcExit(pid, ExitInfo{Killed: true})
	return nil
}

// Run executes the board until virtual time reaches until, all processes
// exit, or the board deadlocks. It may be called repeatedly to run a
// simulation in slices; all state is preserved between calls.
//
// Run hands the engine token to the first runnable process and then parks;
// processes pass the token among themselves (see Context.Trap) until a stop
// condition returns it here.
func (e *Engine) Run(until Time) RunResult {
	if e.handler == nil {
		panic("machine: Run before SetHandler")
	}
	if e.shutdown {
		return RunResult{Reason: StopAllExited, Now: e.clock.Now()}
	}
	sc := e.phRun.Begin()
	defer sc.End()
	e.until = until
	next, stop, stopped := e.schedule()
	if stopped {
		return stop
	}
	e.dispatchTo(next)
	return <-e.hostDone
}

// Shutdown kills every live process so no goroutines outlive the simulation.
// The engine is unusable afterwards.
func (e *Engine) Shutdown() {
	for _, p := range e.procs {
		if p.state == StateDead {
			continue
		}
		p.state = StateDead
		e.dequeue(p)
		p.resume <- killSentinel{}
		<-p.done
		e.live--
	}
	e.shutdown = true
}

// fireDueTimers runs every timer whose deadline has passed, in deterministic
// order. Timer callbacks may schedule more timers and wake processes. The
// hasDue guard keeps the common nothing-due case (checked on every trap) to
// one compare; fired timers are recycled before their callback runs so the
// callback can re-arm without allocating.
func (e *Engine) fireDueTimers() {
	for e.clock.hasDue() {
		t := e.clock.popDue()
		if t == nil {
			return
		}
		fn := t.fn
		e.clock.recycle(t)
		fn()
	}
}

// schedule advances the board to its next action while the calling goroutine
// holds the engine token: fire due timers, then either pick the next ready
// process or decide why the run stops.
func (e *Engine) schedule() (next *Proc, stop RunResult, stopped bool) {
	for {
		e.fireDueTimers()
		if e.clock.Now() >= e.until {
			return nil, RunResult{Reason: StopDeadline, Now: e.clock.Now()}, true
		}
		if p := e.nextReady(); p != nil {
			return p, RunResult{}, false
		}
		dl, ok := e.clock.nextDeadline()
		switch {
		case ok && dl <= e.until:
			e.clock.advance(dl)
		case ok:
			e.clock.advance(e.until)
			return nil, RunResult{Reason: StopDeadline, Now: e.clock.Now()}, true
		case e.live == 0:
			return nil, RunResult{Reason: StopAllExited, Now: e.clock.Now()}, true
		default:
			return nil, RunResult{Reason: StopIdle, Now: e.clock.Now()}, true
		}
	}
}

// handoff executes a scheduling decision while holding the token: resume the
// next process, or return the token to the host goroutine parked in Run.
// After handoff returns the caller no longer holds the token and must not
// touch engine state.
func (e *Engine) handoff(next *Proc, stop RunResult, stopped bool) {
	if stopped {
		e.active = nil
		e.hostDone <- stop
		return
	}
	e.dispatchTo(next)
}

// dispatchTo hands the engine token to p by delivering its pending reply on
// its resume channel. The channel rendezvous is the context switch — and the
// happens-before edge the race detector needs.
func (e *Engine) dispatchTo(p *Proc) {
	reply := e.switchTo(p)
	p.resume <- reply
}

// switchTo books the scheduling of p (context-switch accounting, run state,
// token ownership) and returns the reply to deliver. Shared by the channel
// handoff and the same-process fast path in Context.Trap.
func (e *Engine) switchTo(p *Proc) any {
	if e.lastRun != p.pid {
		e.stats.ContextSwitches++
		p.switches++
		e.mSwitches.Inc()
		e.charge(e.costs.Switch)
	}
	e.lastRun = p.pid
	p.state = StateRunning
	e.active = p
	reply := p.pendingReply
	p.pendingReply = nil
	return reply
}

// trapEnter books one kernel entry for p: the dispatch and trap counters and
// the trap cost. The returned scope is the engine.dispatch phase entry; the
// caller ends it when the kernel work for this entry is done. One scope is
// booked per trap and per body exit — the same count the channel design's
// dispatch loop produced — which keeps the perf skeleton deterministic.
func (e *Engine) trapEnter(p *Proc) perf.Scope {
	sc := e.phDispatch.Begin()
	e.mDispatches.Inc()
	e.stats.Traps++
	p.traps++
	e.mTraps.Inc()
	e.charge(e.costs.Trap)
	return sc
}

// charge advances virtual time by a kernel cost.
func (e *Engine) charge(d time.Duration) {
	if d <= 0 {
		return
	}
	e.stats.KernelTime += d
	e.clock.advance(e.clock.Now().Add(d))
}

// enqueue appends p to its priority's FIFO ready ring. The run-queue depth
// gauge tracks queue mutations incrementally so dispatch never has to walk
// the priority bands.
func (e *Engine) enqueue(p *Proc) {
	e.ready[p.prio].push(p.pid)
	e.mRunQ.Add(1)
}

// dequeue removes p from its ready ring, if present.
func (e *Engine) dequeue(p *Proc) {
	if e.ready[p.prio].remove(p.pid) {
		e.mRunQ.Add(-1)
	}
}

// nextReady pops the next runnable process: highest priority first, FIFO
// within a priority.
func (e *Engine) nextReady() *Proc {
	for prio := 0; prio < numPriorities; prio++ {
		r := &e.ready[prio]
		for r.n > 0 {
			pid := r.pop()
			e.mRunQ.Add(-1)
			p := e.lookup(pid)
			if p != nil && (p.state == StateReady || p.state == StateNew) {
				return p
			}
		}
	}
	return nil
}
