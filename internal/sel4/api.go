package sel4

import (
	"time"

	"mkbas/internal/machine"
)

// API is the system-call interface a simulated seL4 thread programs against.
// Every method that names a capability takes a CPtr into the calling
// thread's own CSpace; the kernel validates possession and rights.
type API struct {
	ctx *machine.Context
	k   *Kernel

	// Scratch requests for the hot syscalls: boxing a pointer into the
	// trap's any costs no heap allocation, and the kernel consumes each
	// request synchronously inside HandleTrap, so one scratch value per
	// request type suffices.
	sendScratch   sendTrap
	recvScratch   recvTrap
	callScratch   callTrap
	replyScratch  replyTrap
	sleepScratch  sleepTrap
	devRdScratch  devReadTrap
	devWrScratch  devWriteTrap
	signalScratch signalTrap
	waitScratch   waitTrap
}

// Now returns the current virtual time (free, no trap).
func (a *API) Now() machine.Time { return a.ctx.Now() }

// Send performs seL4_Send: blocking send through an endpoint capability
// (write right required; grant required when msg transfers a capability).
func (a *API) Send(cptr CPtr, msg Msg) error {
	a.sendScratch = sendTrap{cptr: cptr, msg: msg}
	return a.ctx.Trap(&a.sendScratch).(*errResult).err
}

// NBSend performs seL4_NBSend: like Send, but silently dropped when no
// receiver is waiting.
func (a *API) NBSend(cptr CPtr, msg Msg) error {
	a.sendScratch = sendTrap{cptr: cptr, msg: msg, nb: true}
	return a.ctx.Trap(&a.sendScratch).(*errResult).err
}

// Recv performs seL4_Recv: blocking receive on an endpoint capability (read
// right required). The result carries the sender's badge and, if the sender
// transferred a capability, the slot it landed in.
func (a *API) Recv(cptr CPtr) (RecvResult, error) {
	a.recvScratch = recvTrap{cptr: cptr}
	reply := a.ctx.Trap(&a.recvScratch).(*recvResultReply)
	return reply.res, reply.err
}

// NBRecv performs seL4_NBRecv: ErrWouldBlock when no sender is queued.
func (a *API) NBRecv(cptr CPtr) (RecvResult, error) {
	a.recvScratch = recvTrap{cptr: cptr, nb: true}
	reply := a.ctx.Trap(&a.recvScratch).(*recvResultReply)
	return reply.res, reply.err
}

// Call performs seL4_Call: atomic send plus receive of the reply, using a
// one-time reply capability the kernel mints for the receiver. Requires
// write and grant rights on the endpoint capability.
func (a *API) Call(cptr CPtr, msg Msg) (Msg, error) {
	a.callScratch = callTrap{cptr: cptr, msg: msg}
	reply := a.ctx.Trap(&a.callScratch).(*callResultReply)
	return reply.msg, reply.err
}

// Reply performs seL4_Reply, consuming the thread's pending reply
// capability.
func (a *API) Reply(msg Msg) error {
	a.replyScratch = replyTrap{msg: msg}
	return a.ctx.Trap(&a.replyScratch).(*errResult).err
}

// TCBSuspend invokes TCB_Suspend on the thread referenced by a TCB
// capability (write right required). The suspended thread never runs again.
func (a *API) TCBSuspend(cptr CPtr) error {
	return a.ctx.Trap(tcbSuspendTrap{cptr: cptr}).(errResult).err
}

// CapCopy copies a capability between two of the caller's own slots.
func (a *API) CapCopy(src, dst CPtr) error {
	return a.ctx.Trap(capCopyTrap{src: src, dst: dst}).(errResult).err
}

// CapMint copies a capability with a (possibly) narrowed rights mask and a
// new badge. Rights can never be widened.
func (a *API) CapMint(src, dst CPtr, badge Badge, rights Rights) error {
	return a.ctx.Trap(capMintTrap{src: src, dst: dst, badge: badge, rights: rights}).(errResult).err
}

// CapDelete empties one of the caller's slots.
func (a *API) CapDelete(slot CPtr) error {
	return a.ctx.Trap(capDeleteTrap{slot: slot}).(errResult).err
}

// DevRead reads a device register through a device capability (read right).
func (a *API) DevRead(cptr CPtr, reg uint32) (uint32, error) {
	a.devRdScratch = devReadTrap{cptr: cptr, reg: reg}
	reply := a.ctx.Trap(&a.devRdScratch).(*u32Result)
	return reply.value, reply.err
}

// DevWrite writes a device register through a device capability (write
// right).
func (a *API) DevWrite(cptr CPtr, reg uint32, value uint32) error {
	a.devWrScratch = devWriteTrap{cptr: cptr, reg: reg, value: value}
	return a.ctx.Trap(&a.devWrScratch).(*errResult).err
}

// Sleep parks the thread on the timer service for a virtual duration.
func (a *API) Sleep(d time.Duration) {
	a.sleepScratch = sleepTrap{d: d}
	a.ctx.Trap(&a.sleepScratch)
}

// Trace writes a line to the board trace console.
func (a *API) Trace(tag, text string) {
	a.ctx.Trap(traceTrap{tag: tag, text: text})
}

// NetListen binds the port referenced by a net-port capability (read right)
// and returns a listener handle.
func (a *API) NetListen(cptr CPtr) (int32, error) {
	reply := a.ctx.Trap(netListenTrap{cptr: cptr}).(handleResult)
	return reply.handle, reply.err
}

// NetAccept blocks until a connection arrives on the listener handle.
func (a *API) NetAccept(listener int32) (int32, error) {
	reply := a.ctx.Trap(netAcceptTrap{listener: listener}).(handleResult)
	return reply.handle, reply.err
}

// NetRead blocks until data (or EOF) is available on the connection handle.
func (a *API) NetRead(conn int32, max int) ([]byte, error) {
	reply := a.ctx.Trap(netReadTrap{conn: conn, max: max}).(bytesResult)
	return reply.data, reply.err
}

// NetWrite sends bytes on the connection handle.
func (a *API) NetWrite(conn int32, data []byte) error {
	return a.ctx.Trap(netWriteTrap{conn: conn, data: data}).(errResult).err
}

// NetClose closes the connection handle.
func (a *API) NetClose(conn int32) error {
	return a.ctx.Trap(netCloseTrap{conn: conn}).(errResult).err
}
