// Command basmon replays the Fig. 2 temperature-control scenario on one
// platform and prints the board's observability report: the metrics
// registry, IPC span statistics, and the unified security-event stream
// (experiment E9). Everything is derived from virtual time, so the same
// flags produce byte-identical output on every run.
//
// Usage:
//
//	basmon -platform minix                      text report
//	basmon -platform sel4 -json                 deterministic JSON report
//	basmon -platform linux -chrome trace.json   Chrome trace-event export
//	basmon -platform minix -prom                Prometheus text exposition
//	basmon -platform sel4 -attack kill-controller -root
//	basmon -platform minix -faults crash-sensor -duration 1h   E10 chaos run
//	basmon -platform sel4 -perf -memprofile heap.pprof         host-side profile
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mkbas/internal/attack"
	"mkbas/internal/bas"
	"mkbas/internal/cli"
	"mkbas/internal/faultinject"
	"mkbas/internal/perf"
	"mkbas/internal/tenantapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "basmon:", err)
		os.Exit(1)
	}
}

func run() error {
	platform := flag.String("platform", "minix", "platform: minix, minix-vanilla, sel4, linux, linux-hardened")
	duration := flag.Duration("duration", 40*time.Minute, "virtual run time")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	withEvents := flag.Bool("events", true, "embed the retained security events in the report")
	chromePath := flag.String("chrome", "", `write the IPC spans as Chrome trace-event JSON to this file ("-" = stdout)`)
	promOut := flag.Bool("prom", false, "print metrics in Prometheus text exposition instead of a report")
	apiN := flag.Int("api", 0, "attach the tenant API tier and drive this many deterministic occupant/manager/vendor requests across the run (adds api_* counters and latency histograms to the report)")
	action := flag.String("attack", "", "replay an E1 attack instead of the plain scenario (spoof-sensor, command-actuators, kill-controller, enumerate-handles, fork-bomb)")
	root := flag.Bool("root", false, "attack with the root attacker model")
	faults := flag.String("faults", "", "arm a builtin fault-injection plan (E10 chaos), e.g. crash-sensor")
	var guard cli.Guard
	guard.Register(flag.CommandLine)
	var prof perf.CLI
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if err := prof.Start(); err != nil {
		return err
	}
	if *action != "" {
		return runAttack(*platform, attack.Action(*action), *root, *jsonOut, *faults, guard, &prof)
	}

	cfg := bas.DefaultScenario()
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()
	dep, err := deploy(tb, cfg, *platform, guard, *apiN > 0, prof.Profiler())
	if err != nil {
		return err
	}
	var inj *faultinject.Injector
	if *faults != "" {
		plan, perr := faultinject.Lookup(*faults)
		if perr != nil {
			return perr
		}
		for _, f := range plan.Faults {
			if faultinject.BusKind(f.Kind) {
				return fmt.Errorf("plan %q contains bus-level fault %s; bus plans run on a building (basbuilding -busfaults %s)", *faults, f.Kind, *faults)
			}
		}
		inj, err = dep.ArmFaults(plan)
		if err != nil {
			return err
		}
	}
	var tier *bas.TenantTier
	if *apiN > 0 {
		// The temperature-control testbed is one room; size the directory to
		// match so own-room reads resolve.
		tier = bas.AttachTenantAPI(tb,
			tenantapi.DirectoryConfig{Rooms: 1, Occupants: 8, Managers: 2, Vendors: 2},
			tenantapi.GatewayConfig{})
		driveAPI(tb, tier, *apiN, *duration)
	} else {
		tb.Machine.Run(*duration)
	}
	if err := prof.Finish(); err != nil {
		return err
	}

	board := tb.Machine.Obs()
	if *chromePath != "" {
		out, err := board.Tracer().ChromeTrace()
		if err != nil {
			return err
		}
		if *chromePath == "-" {
			_, err = os.Stdout.Write(out)
			return err
		}
		if err := os.WriteFile(*chromePath, out, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d bytes of trace events to %s\n", len(out), *chromePath)
	}
	if *promOut {
		fmt.Print(board.Metrics().PromText())
		return nil
	}

	report := board.Report(*platform, *withEvents)
	if *jsonOut {
		// The fault campaign already shows in the JSON report through the
		// fault_injected_total counter, the fault_mttr histogram, and the
		// restart/fault events in the stream; no extra shape is needed.
		out, err := report.JSON()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(out)
		return err
	}
	fmt.Print(report.Text())
	if tier != nil {
		fmt.Println(tier)
	}
	if pm := dep.PolicyMonitor(); pm != nil {
		stats := pm.Stats()
		fmt.Printf("policy monitor: %d deliveries observed, %d policy drifts, %d origin drifts, %d demotions\n",
			stats.Observed, stats.PolicyDrifts, stats.OriginDrifts, stats.Demotions)
	}
	if inj != nil {
		printFaultReport(inj.Report(), dep)
	}
	return nil
}

// printFaultReport renders the chaos campaign outcome: per-fault MTTR plus
// the deployment's recovery tally.
func printFaultReport(rep *faultinject.Report, dep bas.Deployment) {
	fmt.Printf("fault campaign %q: %d injected, %d recovered, %d unrecovered\n",
		rep.Plan, rep.Injected, rep.Recovered, rep.Unrecovered)
	for _, f := range rep.Faults {
		line := fmt.Sprintf("  %s %s at %s", f.Kind, f.Target, time.Duration(f.AtNs))
		if f.MTTRNs >= 0 {
			line += fmt.Sprintf(": recovered, MTTR %s", time.Duration(f.MTTRNs))
		} else if f.Injected {
			line += ": NOT recovered"
		} else {
			line += ": not injected"
		}
		fmt.Println(line)
	}
	fmt.Printf("restarts: %d, controller alive: %v, recovered: %v\n",
		dep.ControllerRestarts(), dep.ControllerAlive(), dep.ControllerRecovered())
}

// runAttack replays one E1 attack and reports which mediation layer, if
// any, stopped it — the security-event stream is the evidence.
func runAttack(platform string, action attack.Action, root, jsonOut bool, faults string, guard cli.Guard, prof *perf.CLI) error {
	p, err := cli.ParsePlatform(platform)
	if err != nil {
		return err
	}
	spec := attack.Spec{Platform: p, Action: action, Root: root, FaultPlan: faults, Recovery: guard.Recovery, Monitor: guard.Monitor, Demote: guard.Demote, Profiler: prof.Profiler()}
	report, err := attack.Execute(spec)
	if err != nil {
		return err
	}
	if err := prof.Finish(); err != nil {
		return err
	}
	if jsonOut {
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Print(attack.Summarize(report))
	if ms := report.MonitorStats; ms != nil {
		fmt.Printf("policy monitor: %d deliveries observed, %d policy drifts, %d origin drifts, %d demotions\n",
			ms.Observed, ms.PolicyDrifts, ms.OriginDrifts, ms.Demotions)
	}
	if len(report.SecurityEvents) == 0 {
		fmt.Println("security events: none recorded")
		return nil
	}
	fmt.Printf("security events (%d):\n", len(report.SecurityEvents))
	for _, e := range report.SecurityEvents {
		fmt.Printf("  [%s] %s\n", e.At, e)
	}
	return nil
}

// driveAPI interleaves deterministic tenant requests with the scenario run:
// the duration splits into slices, and each slice's batch executes on the
// harness thread at the virtual instant where the slice ended. The mix is a
// fixed splitmix64 stream, so the same flags still produce identical bytes.
func driveAPI(tb *bas.Testbed, tier *bas.TenantTier, n int, duration time.Duration) {
	const slices = 16
	state := uint64(0xE9)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var req tenantapi.Request
	var resp tenantapi.Response
	done := 0
	for s := 0; s < slices; s++ {
		tb.Machine.Run(duration / slices)
		batch := n / slices
		if s == slices-1 {
			batch = n - done
		}
		for k := 0; k < batch; k++ {
			p := tier.Directory.At(int(next() % uint64(tier.Directory.Len())))
			room := p.Room
			if room < 0 { // managers and vendors are building-scoped
				room = 0
			}
			req = tenantapi.Request{Token: p.Token, Route: tenantapi.RouteStatus, Room: room}
			switch next() % 10 {
			case 0:
				req.Route = tenantapi.RouteSetpoint
				req.Value = 20 + float64(next()%60)/10
			case 1:
				req.Route = tenantapi.RouteDiagnostics
			case 2:
				req.Route = tenantapi.RouteWhoAmI
			case 3:
				req.Token = "tok-ffffffffffffffff"
			}
			tier.Serve(&req, &resp)
		}
		done += batch
	}
}

func deploy(tb *bas.Testbed, cfg bas.ScenarioConfig, platform string, guard cli.Guard, api bool, prof *perf.Profiler) (bas.Deployment, error) {
	p, err := cli.ParsePlatform(platform)
	if err != nil {
		return nil, err
	}
	return bas.Deploy(p, tb, cfg, bas.DeployOptions{Recovery: guard.Recovery, Monitor: guard.MonitorOn(), TenantAPI: api, Profiler: prof})
}
