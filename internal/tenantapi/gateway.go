package tenantapi

import (
	"strconv"
	"time"

	"mkbas/internal/obs"
	"mkbas/internal/polcheck/monitor"
)

// Setpoint band accepted by the tier, mirroring the controller's contract
// (bas.MinSetpoint/MaxSetpoint): out-of-band values die with 400 at the
// gateway instead of riding IPC to the controller just to be refused.
const (
	MinSetpoint = 15.0
	MaxSetpoint = 30.0
)

// Backend is what the gateway fronts: the head-end's view of the building.
// Implementations must be deterministic in virtual time and must not
// allocate on the read paths — response bodies are appended into the
// caller's reused buffer.
type Backend interface {
	// Rooms is the building's room count; the gateway validates room
	// indices against it before dispatching.
	Rooms() int
	// ReadRoom appends room status fields ("temp_c":..,"setpoint":..) to
	// resp.Body. The index is pre-validated.
	ReadRoom(room int, resp *Response)
	// WriteSetpoint schedules an in-band setpoint write for the room.
	WriteSetpoint(room int, value float64)
	// ReadDiagnostics appends backend diagnostic fields to resp.Body, each
	// preceded by a comma (may append nothing).
	ReadDiagnostics(resp *Response)
}

// Request is one parsed API request. The HTTP frontend (http.go) fills it
// from the wire; the load generator and attack harness fill it directly.
type Request struct {
	// Token is the bearer credential.
	Token string
	// Route is the parsed route.
	Route Route
	// Room is the target room for RouteStatus / RouteSetpoint.
	Room int
	// Value is the requested setpoint for RouteSetpoint.
	Value float64
}

// Response is the reused per-connection response buffer.
type Response struct {
	// Outcome is the typed result; Outcome.Status() is the HTTP code.
	Outcome Outcome
	// Principal is the directory index of the authenticated caller, -1
	// before authentication succeeds.
	Principal int32
	// Body is the JSON body, appended in place and reused across requests.
	Body []byte
	// LatencyNs is the modelled virtual service latency of this request.
	LatencyNs int64
}

func (r *Response) reset() {
	r.Outcome = OutcomeOK
	r.Principal = -1
	r.Body = r.Body[:0]
	r.LatencyNs = 0
}

// GatewayConfig parameterises a Gateway.
type GatewayConfig struct {
	// Now is the virtual clock. Required.
	Now func() obs.Time
	// RatePerSec and Burst configure the per-principal token bucket
	// (defaults 20/s, burst 40).
	RatePerSec int64
	Burst      int64
	// AdmitPerTick is the admission budget per TickNs window — requests
	// beyond it shed with 503 before any per-principal work (default 256).
	AdmitPerTick int
	// TickNs is the admission window length (default 10ms of virtual time).
	TickNs int64
	// Registry books per-route request counters and latency histograms;
	// nil books nothing.
	Registry *obs.Registry
	// Events receives typed denial events naming the mediating layer; nil
	// discards them.
	Events *obs.EventLog
	// Monitor verifies role→gateway edges against the certified tenant
	// graph under the current origin assignment. nil builds a fresh monitor
	// over AccessGraph() wired to Events.
	Monitor *monitor.Monitor
	// Seed perturbs the deterministic latency jitter stream.
	Seed uint64
}

func (c GatewayConfig) withDefaults() GatewayConfig {
	if c.RatePerSec <= 0 {
		c.RatePerSec = 20
	}
	if c.Burst <= 0 {
		c.Burst = 2 * c.RatePerSec
	}
	if c.AdmitPerTick <= 0 {
		c.AdmitPerTick = 256
	}
	if c.TickNs <= 0 {
		c.TickNs = 10 * int64(time.Millisecond)
	}
	return c
}

// serviceNs is the modelled per-route virtual service time (successful
// requests); denials cost denyNs. Jitter from the seq hash adds up to ~1ms.
var serviceNs = [NumRoutes]int64{
	RouteStatus:      1_500_000,
	RouteSetpoint:    4_000_000,
	RouteDiagnostics: 6_000_000,
	RouteWhoAmI:      500_000,
}

const denyNs = 50_000

// Gateway is the tenant API tier: session auth, certified RBAC, rate
// limiting, and admission control in front of a Backend. Handle is the
// allocation-free hot path (gated by TestAPIHotPathZeroAlloc).
type Gateway struct {
	cfg     GatewayConfig
	dir     *Directory
	backend Backend
	limiter *Limiter
	mon     *monitor.Monitor
	events  *obs.EventLog

	// allowed is the static role×route matrix, derived from the certified
	// graph at construction so the two can never drift apart.
	allowed  [numRoles][NumRoutes]bool
	roleSubj [numRoles]string

	admitWindow int64
	admitted    int
	seq         uint64

	// Lifetime tallies for the diagnostics route.
	served   int64
	denied   [NumOutcomes]int64
	counters [NumRoutes][NumOutcomes]*obs.Counter
	latency  [NumRoutes]*obs.Histogram
}

// NewGateway wires a gateway over a directory and backend.
func NewGateway(dir *Directory, backend Backend, cfg GatewayConfig) *Gateway {
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:     cfg,
		dir:     dir,
		backend: backend,
		limiter: NewLimiter(dir.Len(), cfg.RatePerSec, cfg.Burst),
		mon:     cfg.Monitor,
		events:  cfg.Events,
	}
	if g.mon == nil {
		g.mon = NewMonitor(cfg.Events)
	}
	for r := Role(0); r < numRoles; r++ {
		g.roleSubj[r] = r.Subject()
	}
	// Derive the role matrix from the certified graph: an edge label grants
	// the route.
	graph := AccessGraph()
	for r := Role(0); r < numRoles; r++ {
		for _, e := range graph.FlowsFrom(pSubject(g.roleSubj[r])) {
			if e.To.Name != SubjectGateway {
				continue
			}
			for _, label := range e.Labels {
				for rt := Route(0); rt < NumRoutes; rt++ {
					if routeLabels[rt] == label {
						g.allowed[r][rt] = true
					}
				}
			}
		}
	}
	if cfg.Registry != nil {
		for rt := Route(0); rt < NumRoutes; rt++ {
			for o := Outcome(0); o < NumOutcomes; o++ {
				g.counters[rt][o] = cfg.Registry.Counter("api_requests_" + routeLabels[rt] + "_" + outcomeNames[o])
			}
			g.latency[rt] = cfg.Registry.Histogram("api_latency_"+routeLabels[rt], nil)
		}
	}
	return g
}

// Monitor exposes the gateway's policy monitor so harnesses can demote a
// compromised tenant origin (shrinking its reachable set) and read drift
// stats.
func (g *Gateway) Monitor() *monitor.Monitor { return g.mon }

// Directory exposes the session database for revocation.
func (g *Gateway) Directory() *Directory { return g.dir }

// Served reports the lifetime count of requests that reached the backend.
func (g *Gateway) Served() int64 { return g.served }

// Denied reports the lifetime denial count for one outcome.
func (g *Gateway) Denied(o Outcome) int64 { return g.denied[o] }

// Handle processes one request into resp, returning the typed outcome. The
// mediation order is the tier's defence-in-depth story: admission control
// (503) before session auth (401) before rate limiting (429) before
// role-based authorisation (403) before the backend ever runs.
func (g *Gateway) Handle(req *Request, resp *Response) Outcome {
	resp.reset()
	g.seq++
	now := int64(g.cfg.Now())

	// Layer 1: admission control. The budget is per virtual tick and
	// charged before identity is even established — floods shed here.
	w := now / g.cfg.TickNs
	if w != g.admitWindow {
		g.admitWindow = w
		g.admitted = 0
	}
	g.admitted++
	if g.admitted > g.cfg.AdmitPerTick {
		g.deny(obs.EventOverload, obs.MechBackpressure, "anonymous", "admission budget spent")
		return g.finish(req, resp, OutcomeOverload)
	}

	// Layer 2: session authentication. Revoked and unknown tokens are
	// indistinguishable by design.
	idx, ok := g.dir.Lookup(req.Token)
	if !ok {
		g.deny(obs.EventAuthDenied, obs.MechSession, "anonymous", "unknown or revoked token")
		return g.finish(req, resp, OutcomeUnauthorized)
	}
	p := g.dir.At(int(idx))
	resp.Principal = idx

	// Layer 3: per-principal rate limiting.
	if !g.limiter.Allow(idx, now) {
		g.deny(obs.EventRateLimited, obs.MechRateLimit, p.Name, "token bucket empty")
		return g.finish(req, resp, OutcomeRateLimited)
	}

	// Layer 4: role-based authorisation against the certified graph. The
	// static matrix names rbac as the mediator; a certified edge that fails
	// the live check means the role's origin was demoted — that refusal is
	// the policy monitor's.
	if req.Route >= NumRoutes {
		return g.finish(req, resp, OutcomeNotFound)
	}
	if !g.allowed[p.Role][req.Route] {
		g.deny(obs.EventAuthzDenied, obs.MechRBAC, p.Name, "role holds no edge for route")
		return g.finish(req, resp, OutcomeForbidden)
	}
	if !g.mon.Check(g.roleSubj[p.Role], SubjectGateway, routeLabels[req.Route]) {
		g.deny(obs.EventAuthzDenied, obs.MechPolicyMonitor, p.Name, "origin demoted below certified edge")
		return g.finish(req, resp, OutcomeForbidden)
	}
	if p.Role == RoleOccupant && req.Route == RouteStatus && req.Room != p.Room {
		g.deny(obs.EventAuthzDenied, obs.MechRBAC, p.Name, "occupant read outside own room")
		return g.finish(req, resp, OutcomeForbidden)
	}

	// Layer 5: dispatch.
	switch req.Route {
	case RouteStatus:
		if req.Room < 0 || req.Room >= g.backend.Rooms() {
			return g.finish(req, resp, OutcomeNotFound)
		}
		resp.Body = append(resp.Body, `{"room":`...)
		resp.Body = strconv.AppendInt(resp.Body, int64(req.Room), 10)
		g.backend.ReadRoom(req.Room, resp)
		resp.Body = append(resp.Body, '}')
	case RouteSetpoint:
		if req.Room < 0 || req.Room >= g.backend.Rooms() {
			return g.finish(req, resp, OutcomeNotFound)
		}
		if req.Value < MinSetpoint || req.Value > MaxSetpoint {
			return g.finish(req, resp, OutcomeBadRequest)
		}
		g.backend.WriteSetpoint(req.Room, req.Value)
		resp.Body = append(resp.Body, `{"room":`...)
		resp.Body = strconv.AppendInt(resp.Body, int64(req.Room), 10)
		resp.Body = append(resp.Body, `,"setpoint":`...)
		resp.Body = strconv.AppendFloat(resp.Body, req.Value, 'f', 1, 64)
		resp.Body = append(resp.Body, '}')
	case RouteDiagnostics:
		resp.Body = append(resp.Body, `{"served":`...)
		resp.Body = strconv.AppendInt(resp.Body, g.served, 10)
		resp.Body = append(resp.Body, `,"unauthorized":`...)
		resp.Body = strconv.AppendInt(resp.Body, g.denied[OutcomeUnauthorized], 10)
		resp.Body = append(resp.Body, `,"forbidden":`...)
		resp.Body = strconv.AppendInt(resp.Body, g.denied[OutcomeForbidden], 10)
		resp.Body = append(resp.Body, `,"rate_limited":`...)
		resp.Body = strconv.AppendInt(resp.Body, g.denied[OutcomeRateLimited], 10)
		resp.Body = append(resp.Body, `,"overload":`...)
		resp.Body = strconv.AppendInt(resp.Body, g.denied[OutcomeOverload], 10)
		g.backend.ReadDiagnostics(resp)
		resp.Body = append(resp.Body, '}')
	case RouteWhoAmI:
		resp.Body = append(resp.Body, `{"name":"`...)
		resp.Body = append(resp.Body, p.Name...)
		resp.Body = append(resp.Body, `","role":"`...)
		resp.Body = append(resp.Body, p.Role.String()...)
		resp.Body = append(resp.Body, `","room":`...)
		resp.Body = strconv.AppendInt(resp.Body, int64(p.Room), 10)
		resp.Body = append(resp.Body, '}')
	}
	return g.finish(req, resp, OutcomeOK)
}

// deny emits the typed security event for a refusal. Details are static
// strings so the hot path stays allocation-free.
func (g *Gateway) deny(kind obs.EventKind, mech obs.Mechanism, src, detail string) {
	g.events.Emit(obs.SecurityEvent{
		Kind:      kind,
		Mechanism: mech,
		Denied:    true,
		Src:       src,
		Dst:       SubjectGateway,
		Detail:    detail,
	})
}

// finish books the outcome: tallies, the per-route×outcome counter, and the
// modelled latency observation.
func (g *Gateway) finish(req *Request, resp *Response, o Outcome) Outcome {
	resp.Outcome = o
	lat := int64(denyNs)
	if o == OutcomeOK {
		g.served++
		if req.Route < NumRoutes {
			lat = serviceNs[req.Route]
		}
	} else {
		g.denied[o]++
	}
	// Deterministic jitter: up to ~1ms derived from the request sequence.
	lat += int64(splitmix64(g.seq^g.cfg.Seed) & 0xfffff)
	resp.LatencyNs = lat
	rt := req.Route
	if rt >= NumRoutes {
		rt = RouteStatus
	}
	if c := g.counters[rt][o]; c != nil {
		c.Inc()
	}
	if h := g.latency[rt]; h != nil {
		h.Observe(time.Duration(lat))
	}
	return o
}
