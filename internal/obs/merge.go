package obs

import "sort"

// Cross-board merge helpers. The fleet runner (internal/lab) boots many
// independent boards and folds their per-shard reports into one aggregate;
// these helpers define the fold so its output is a deterministic function of
// the inputs alone — sorted by key, never by arrival order.

// MergeCounters sums counter rows from many boards by name. Inputs need not
// be sorted; the result is sorted by name, matching Registry.Counters.
func MergeCounters(sets ...[]CounterSnap) []CounterSnap {
	sums := make(map[string]int64)
	for _, set := range sets {
		for _, c := range set {
			sums[c.Name] += c.Value
		}
	}
	out := make([]CounterSnap, 0, len(sums))
	for name, v := range sums {
		out = append(out, CounterSnap{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MergeEventTotals sums event totals from many boards by (kind, mechanism,
// denied). The result is sorted exactly like EventLog.Totals.
func MergeEventTotals(sets ...[]EventTotal) []EventTotal {
	type key struct {
		Kind      EventKind
		Mechanism Mechanism
		Denied    bool
	}
	sums := make(map[key]int64)
	for _, set := range sets {
		for _, t := range set {
			sums[key{t.Kind, t.Mechanism, t.Denied}] += t.Count
		}
	}
	out := make([]EventTotal, 0, len(sums))
	for k, n := range sums {
		out = append(out, EventTotal{Kind: k.Kind, Mechanism: k.Mechanism, Denied: k.Denied, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Mechanism != b.Mechanism {
			return a.Mechanism < b.Mechanism
		}
		return !a.Denied && b.Denied
	})
	return out
}

// MergeMechanisms unions sorted mechanism lists from many boards.
func MergeMechanisms(sets ...[]Mechanism) []Mechanism {
	seen := make(map[Mechanism]bool)
	for _, set := range sets {
		for _, m := range set {
			seen[m] = true
		}
	}
	out := make([]Mechanism, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
