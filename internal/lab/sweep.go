// Package lab is the sharded experiment campaign runner: it expands a
// parameter sweep — platforms × attacker models × attack actions × plant
// variants × policy ablations — into an ordered list of fully independent
// cases, boots each case on its own virtual board across a worker pool, and
// deterministically merges the per-shard results into one aggregate report.
//
// The determinism contract (DESIGN §9): each board is single-threaded and
// seeded, so a case's result depends only on its Case value; the merge is
// keyed by shard index — the case's position in the deterministic expansion
// order — never by completion order. The merged report's bytes are therefore
// identical regardless of worker count or scheduling.
package lab

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mkbas/internal/attack"
	"mkbas/internal/bas"
	"mkbas/internal/faultinject"
)

// Model selects the attacker model from Section IV-D: a compromised web
// interface process, optionally escalated to root.
type Model string

// The paper's two attacker models.
const (
	ModelUser Model = "user"
	ModelRoot Model = "root"
)

// AllModels lists both attacker models, weakest first.
func AllModels() []Model { return []Model{ModelUser, ModelRoot} }

// Plant names a plant-parameter variant of the default scenario. Variants
// stress the control loop differently, probing whether a platform's attack
// outcome is robust to the physics rather than an artifact of one room.
type Plant string

// Plant variants.
const (
	// PlantDefault is the testbed room: 18 °C start, 15 °C ambient.
	PlantDefault Plant = "default"
	// PlantColdSnap drops the ambient to 2 °C, so losing the heater hurts
	// fast — attacks that suppress heating compromise physics sooner.
	PlantColdSnap Plant = "cold-snap"
	// PlantNoisySensor adds 0.15 °C sensor read noise, exercising the
	// controller's dead band and the spoofing attack's believability.
	PlantNoisySensor Plant = "noisy-sensor"
	// PlantDrafty triples the leak rate (poor insulation), shrinking the
	// margin between heater capacity and loss.
	PlantDrafty Plant = "drafty"
)

// AllPlants lists every plant variant, default first.
func AllPlants() []Plant {
	return []Plant{PlantDefault, PlantColdSnap, PlantNoisySensor, PlantDrafty}
}

// Scenario builds the scenario configuration for a plant variant.
func (p Plant) Scenario() (bas.ScenarioConfig, error) {
	cfg := bas.DefaultScenario()
	switch p {
	case PlantDefault:
	case PlantColdSnap:
		cfg.Plant.Ambient = 2
	case PlantNoisySensor:
		cfg.Plant.SensorNoise = 0.15
	case PlantDrafty:
		cfg.Plant.LeakRate = 3e-3
	default:
		return bas.ScenarioConfig{}, fmt.Errorf("lab: unknown plant variant %q", p)
	}
	return cfg, nil
}

// Sweep is a parameter campaign. Empty fields default to the paper's E1
// axes: the three headline platforms, all actions, the user model, the
// default plant, no quota ablation.
type Sweep struct {
	Platforms []attack.Platform `json:"platforms"`
	Actions   []attack.Action   `json:"actions"`
	Models    []Model           `json:"models"`
	Plants    []Plant           `json:"plants"`
	// Quotas are fork-quota ablations (E8). A quota applies only on MINIX
	// platforms, where the PM policy enforces it; on every other platform
	// the axis collapses to a single unquotaed case rather than running
	// identical boards per quota value.
	Quotas []int `json:"quotas"`
	// Faults are builtin faultinject plan names (E10 chaos axis). "none"
	// (the default) arms nothing; any other plan also enables the optional
	// recovery machinery so the case measures recovery, not its absence by
	// configuration.
	Faults []string `json:"faults,omitempty"`
	// Monitors is the online policy-monitor axis (E12): "off" (default),
	// "on" (observe-only drift detection), "demote" (observe plus origin
	// demotion of the compromised subject at attack start).
	Monitors []string `json:"monitors,omitempty"`
}

// Policy-monitor axis values.
const (
	MonitorOff    = "off"
	MonitorOn     = "on"
	MonitorDemote = "demote"
)

// AllMonitors lists the monitor axis values, weakest first.
func AllMonitors() []string { return []string{MonitorOff, MonitorOn, MonitorDemote} }

// Case is one fully specified experiment: a single board, a single attack.
type Case struct {
	// Shard is the case's position in the sweep's deterministic expansion
	// order — the merge key.
	Shard     int             `json:"shard"`
	Platform  attack.Platform `json:"platform"`
	Action    attack.Action   `json:"action"`
	Model     Model           `json:"model"`
	Plant     Plant           `json:"plant"`
	ForkQuota int             `json:"fork_quota,omitempty"`
	Faults    string          `json:"faults,omitempty"`
	// Monitor is "" (off), MonitorOn, or MonitorDemote — kept empty for the
	// off case so pre-monitor campaign reports stay byte-identical.
	Monitor string `json:"monitor,omitempty"`
}

// chaosCase reports whether the case arms a fault plan.
func (c Case) chaosCase() bool { return c.Faults != "" && c.Faults != faultPlanNone }

// Spec translates the case into an attack spec.
func (c Case) Spec() attack.Spec {
	spec := attack.Spec{
		Platform:  c.Platform,
		Action:    c.Action,
		Root:      c.Model == ModelRoot,
		ForkQuota: c.ForkQuota,
	}
	if attack.IsAPIAction(c.Action) {
		// The API attacker is outside the building: fork quotas and fault
		// plans parameterise the board-side attacker and do not apply.
		spec.ForkQuota = 0
		switch c.Monitor {
		case MonitorOn:
			spec.Monitor = true
		case MonitorDemote:
			spec.Demote = true
		}
		return spec
	}
	if c.chaosCase() {
		spec.FaultPlan = c.Faults
		// A chaos case measures the platform's recovery response, so the
		// optional machinery (seL4 monitor, hardened-Linux supervisor) is on.
		// Plain Linux still ignores it — that absence is E10's baseline.
		spec.Recovery = true
	}
	switch c.Monitor {
	case MonitorOn:
		spec.Monitor = true
	case MonitorDemote:
		spec.Demote = true
	}
	return spec
}

// String renders the case compactly for logs: "7: sel4/user spoof-sensor
// plant=default".
func (c Case) String() string {
	s := fmt.Sprintf("%d: %s/%s %s plant=%s", c.Shard, c.Platform, c.Model, c.Action, c.Plant)
	if c.ForkQuota > 0 {
		s += fmt.Sprintf(" quota=%d", c.ForkQuota)
	}
	if c.chaosCase() {
		s += " faults=" + c.Faults
	}
	if c.Monitor != "" && c.Monitor != MonitorOff {
		s += " monitor=" + c.Monitor
	}
	return s
}

// faultPlanNone is the no-op fault plan name, the faults axis default.
const faultPlanNone = "none"

func minixPlatform(p attack.Platform) bool {
	return p == attack.PlatformMinix || p == attack.PlatformMinixVanilla
}

// withDefaults fills empty axes.
func (s Sweep) withDefaults() Sweep {
	if len(s.Platforms) == 0 {
		s.Platforms = attack.AllPlatforms()
	}
	if len(s.Actions) == 0 {
		s.Actions = attack.AllActions()
	}
	if len(s.Models) == 0 {
		s.Models = []Model{ModelUser}
	}
	if len(s.Plants) == 0 {
		s.Plants = []Plant{PlantDefault}
	}
	if len(s.Quotas) == 0 {
		s.Quotas = []int{0}
	}
	if len(s.Faults) == 0 {
		s.Faults = []string{faultPlanNone}
	}
	if len(s.Monitors) == 0 {
		s.Monitors = []string{MonitorOff}
	}
	return s
}

// Validate rejects unknown axis values before any board boots, so a bad
// sweep fails in microseconds instead of at shard N.
func (s Sweep) Validate() error {
	s = s.withDefaults()
	known := make(map[attack.Platform]bool)
	for _, p := range bas.KnownPlatforms() {
		known[p] = true
	}
	for _, p := range s.Platforms {
		if !known[p] {
			return fmt.Errorf("lab: unknown platform %q", p)
		}
	}
	actions := make(map[attack.Action]bool)
	for _, a := range attack.AllActions() {
		actions[a] = true
	}
	for _, a := range attack.AllAPIActions() {
		actions[a] = true
	}
	actions[attack.ActionNone] = true
	for _, a := range s.Actions {
		if !actions[a] {
			return fmt.Errorf("lab: unknown action %q", a)
		}
	}
	for _, m := range s.Models {
		if m != ModelUser && m != ModelRoot {
			return fmt.Errorf("lab: unknown attacker model %q", m)
		}
	}
	for _, p := range s.Plants {
		if _, err := p.Scenario(); err != nil {
			return err
		}
	}
	for _, q := range s.Quotas {
		if q < 0 {
			return fmt.Errorf("lab: negative fork quota %d", q)
		}
	}
	for _, f := range s.Faults {
		if _, err := faultinject.Lookup(f); err != nil {
			return fmt.Errorf("lab: %w", err)
		}
	}
	for _, m := range s.Monitors {
		switch m {
		case MonitorOff, MonitorOn, MonitorDemote:
		default:
			return fmt.Errorf("lab: unknown monitor mode %q (known: off, on, demote)", m)
		}
	}
	return nil
}

// Expand enumerates the sweep's cases in deterministic order: platform,
// model, action, plant, quota, fault plan, monitor mode — outermost to
// innermost, each axis in the order given. Shard indices are assigned by
// position. Quota values beyond the first apply only on MINIX platforms (the
// only backends that enforce them); elsewhere the quota axis contributes one
// unquotaed case.
func (s Sweep) Expand() []Case {
	s = s.withDefaults()
	var cases []Case
	for _, platform := range s.Platforms {
		quotas := s.Quotas
		if !minixPlatform(platform) {
			quotas = []int{0}
		}
		for _, model := range s.Models {
			for _, action := range s.Actions {
				actionQuotas, actionFaults := quotas, s.Faults
				if attack.IsAPIAction(action) {
					// API cases take neither axis; collapse both so the sweep
					// does not enumerate identical shards.
					actionQuotas, actionFaults = []int{0}, []string{faultPlanNone}
				}
				for _, pl := range s.Plants {
					for _, quota := range actionQuotas {
						for _, faults := range actionFaults {
							for _, mon := range s.Monitors {
								if mon == MonitorOff {
									mon = ""
								}
								cases = append(cases, Case{
									Shard:     len(cases),
									Platform:  platform,
									Action:    action,
									Model:     model,
									Plant:     pl,
									ForkQuota: quota,
									Faults:    faults,
									Monitor:   mon,
								})
							}
						}
					}
				}
			}
		}
	}
	return cases
}

// ParseSweep parses the baslab sweep grammar: semicolon-separated
// `axis=value[,value...]` clauses, e.g.
//
//	platforms=paper;actions=all;models=both;plants=default;quotas=0,8
//
// Axis keywords: platforms accepts "paper" (the three headline systems) and
// "all" (every registered platform); actions accepts "all" (the board
// attacks) and "api" (the tenant-tier attack family); plants accepts "all";
// models accepts "both". Unknown axes and values are rejected.
func ParseSweep(spec string) (Sweep, error) {
	var s Sweep
	if strings.TrimSpace(spec) == "" {
		return s, nil
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		axis, values, ok := strings.Cut(clause, "=")
		if !ok {
			return Sweep{}, fmt.Errorf("lab: sweep clause %q is not axis=values", clause)
		}
		axis = strings.TrimSpace(axis)
		var vals []string
		for _, v := range strings.Split(values, ",") {
			if v = strings.TrimSpace(v); v != "" {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return Sweep{}, fmt.Errorf("lab: sweep axis %q has no values", axis)
		}
		switch axis {
		case "platforms":
			for _, v := range vals {
				switch v {
				case "paper":
					s.Platforms = append(s.Platforms, attack.AllPlatforms()...)
				case "all":
					s.Platforms = append(s.Platforms, bas.KnownPlatforms()...)
				default:
					s.Platforms = append(s.Platforms, attack.Platform(v))
				}
			}
		case "actions":
			for _, v := range vals {
				switch v {
				case "all":
					s.Actions = append(s.Actions, attack.AllActions()...)
				case "api":
					s.Actions = append(s.Actions, attack.AllAPIActions()...)
				default:
					s.Actions = append(s.Actions, attack.Action(v))
				}
			}
		case "models":
			for _, v := range vals {
				if v == "both" {
					s.Models = append(s.Models, AllModels()...)
				} else {
					s.Models = append(s.Models, Model(v))
				}
			}
		case "plants":
			for _, v := range vals {
				if v == "all" {
					s.Plants = append(s.Plants, AllPlants()...)
				} else {
					s.Plants = append(s.Plants, Plant(v))
				}
			}
		case "quotas":
			for _, v := range vals {
				q, err := strconv.Atoi(v)
				if err != nil {
					return Sweep{}, fmt.Errorf("lab: quota %q is not an integer", v)
				}
				s.Quotas = append(s.Quotas, q)
			}
		case "faults":
			for _, v := range vals {
				if v == "all" {
					s.Faults = append(s.Faults, faultinject.Names()...)
				} else {
					s.Faults = append(s.Faults, v)
				}
			}
		case "monitor", "monitors":
			for _, v := range vals {
				if v == "all" {
					s.Monitors = append(s.Monitors, AllMonitors()...)
				} else {
					s.Monitors = append(s.Monitors, v)
				}
			}
		default:
			return Sweep{}, fmt.Errorf("lab: unknown sweep axis %q (known: actions, faults, models, monitor, plants, platforms, quotas)", axis)
		}
	}
	s.Platforms = dedup(s.Platforms)
	s.Actions = dedup(s.Actions)
	s.Models = dedup(s.Models)
	s.Plants = dedup(s.Plants)
	s.Quotas = dedupInts(s.Quotas)
	s.Faults = dedup(s.Faults)
	s.Monitors = dedup(s.Monitors)
	if err := s.Validate(); err != nil {
		return Sweep{}, err
	}
	return s, nil
}

// dedup removes repeated values, keeping first-occurrence order — "paper"
// plus an explicit platform must not run the platform twice.
func dedup[T comparable](in []T) []T {
	seen := make(map[T]bool, len(in))
	out := in[:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func dedupInts(in []int) []int {
	out := dedup(in)
	sort.Ints(out)
	return out
}
