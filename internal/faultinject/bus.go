package faultinject

import (
	"fmt"
	"time"

	"mkbas/internal/machine"
)

// The building-scale half of the campaign layer: bus faults (partition,
// drop, delay, duplication) and the primary head-end crash. Board faults are
// armed on a board clock (inject.go); bus faults are armed on the building's
// coordinator and consulted at every bus flush barrier, which is what keeps
// a faulted 64-room run byte-identical at any worker count — the verdicts
// depend only on virtual time and frame age, never on goroutine scheduling.

// BusVerdict is the injector's decision on one queued frame or deferred
// dial. It mirrors vnet.BusFault without importing vnet, keeping faultinject
// below the network layer in the import graph.
type BusVerdict struct {
	Drop bool
	Hold bool
	Dup  bool
}

// busFault is one armed bus-level fault.
type busFault struct {
	fault Fault
	from  machine.Time // effect window start (absolute)
	to    machine.Time // effect window end; headend-crash is open-ended
	node  int          // resolved target node; -1 = whole bus
	// holdBarriers is the bus-delay hold count: how many flush barriers a
	// frame must age before release (two barriers per lockstep round).
	holdBarriers int

	injected bool
	// pending tracks rooms whose supervisory path has not yet been
	// reconfirmed after the window closed; recovery completes when empty.
	pending map[int]bool
	// roomRecovered records, per room, when its path was reconfirmed.
	roomRecovered map[int]machine.Time
	recovered     bool
	recoveredAt   machine.Time
}

// affects reports whether a (from, to) link touches the fault's target.
func (f *busFault) affects(from, to int) bool {
	return f.node < 0 || from == f.node || to == f.node
}

// BusInjector is an armed bus-fault plan on one building.
type BusInjector struct {
	plan   *Plan
	rooms  int
	faults []*busFault
	now    machine.Time

	headDown     bool
	failoverAt   machine.Time
	failoverDone bool
}

// NewBusInjector validates and arms a bus-level plan. Every fault in the
// plan must be a bus kind (BusKind); rooms is the number of room nodes
// (rooms are bus nodes 0..rooms-1, so higher node ids — the head-ends — are
// infrastructure). resolve maps a fault's Target node name to its id.
// Offsets are from building boot (the building clock starts at zero).
func NewBusInjector(plan *Plan, rooms int, resolve func(name string) (int, bool), slice time.Duration) (*BusInjector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if slice <= 0 {
		return nil, fmt.Errorf("faultinject: bus injector needs a positive slice")
	}
	bi := &BusInjector{plan: plan, rooms: rooms}
	for i, f := range plan.Faults {
		if !BusKind(f.Kind) {
			return nil, fmt.Errorf("faultinject: fault %d: %s is a board-level fault; arm it with Arm on the room's board", i, f.Kind)
		}
		bf := &busFault{
			fault:         f,
			from:          machine.Time(0).Add(f.At),
			node:          -1,
			pending:       make(map[int]bool),
			roomRecovered: make(map[int]machine.Time),
		}
		bf.to = bf.from.Add(f.Duration)
		if f.Kind == KindHeadEndCrash {
			bf.to = machine.Time(1<<63 - 1)
		} else if f.Target != "" {
			node, ok := resolve(f.Target)
			if !ok {
				return nil, fmt.Errorf("faultinject: fault %d: unknown bus node %q", i, f.Target)
			}
			bf.node = node
		}
		if f.Kind == KindBusDelay {
			// Two flush barriers per lockstep round: a frame held for
			// holdBarriers barriers is delayed ~Delay of virtual time.
			bf.holdBarriers = int((2*f.Delay + slice - 1) / slice)
			if bf.holdBarriers < 1 {
				bf.holdBarriers = 1
			}
		}
		// Recovery demands reconfirmation of every affected room's
		// supervisory path; a whole-bus or infrastructure-node fault affects
		// every room.
		if bf.node >= 0 && bf.node < rooms {
			bf.pending[bf.node] = true
		} else {
			for r := 0; r < rooms; r++ {
				bf.pending[r] = true
			}
		}
		bi.faults = append(bi.faults, bf)
	}
	return bi, nil
}

// BeginRound advances the injector to the round deadline and returns the
// faults that fire this round (for event emission on the affected boards).
// Call once per lockstep round, before the bus flushes.
func (bi *BusInjector) BeginRound(now machine.Time) []Fault {
	bi.now = now
	var fired []Fault
	for _, bf := range bi.faults {
		if bf.injected || now < bf.from {
			continue
		}
		bf.injected = true
		fired = append(fired, bf.fault)
		if bf.fault.Kind == KindHeadEndCrash {
			bi.headDown = true
		}
	}
	return fired
}

// Verdict adjudicates one queued frame or deferred dial at the flush
// barrier (vnet.Bus.SetFaultHook shape, minus the port). Hold wins over
// Drop, Drop over Dup — matching vnet's precedence.
func (bi *BusInjector) Verdict(from, to int, age int) BusVerdict {
	var v BusVerdict
	for _, bf := range bi.faults {
		if !bf.injected || bi.now >= bf.to || !bf.affects(from, to) {
			continue
		}
		switch bf.fault.Kind {
		case KindBusPartition:
			v.Hold = true
		case KindBusDrop:
			v.Drop = true
		case KindBusDelay:
			if age < bf.holdBarriers {
				v.Hold = true
			}
		case KindBusDup:
			v.Dup = true
		}
	}
	return v
}

// HeadEndDown reports whether a headend-crash fault has fired; the building
// stops running the primary BMS from that round on.
func (bi *BusInjector) HeadEndDown() bool { return bi.headDown }

// NoteRoomOK records a successful supervisory exchange with a room (a
// head-end harvest that produced a verified answer). The first confirmation
// at or after a fault's window closes that room's share of its recovery;
// the fault's MTTR closes when every affected room has reconfirmed.
func (bi *BusInjector) NoteRoomOK(room int, now machine.Time) {
	for _, bf := range bi.faults {
		if !bf.injected || bf.recovered || now < bf.to {
			continue
		}
		if bf.fault.Kind == KindHeadEndCrash {
			continue // recovery is the standby takeover, not a poll
		}
		if !bf.pending[room] {
			continue
		}
		delete(bf.pending, room)
		bf.roomRecovered[room] = now
		if len(bf.pending) == 0 {
			bf.recovered = true
			bf.recoveredAt = now
		}
	}
}

// NoteFailover records the standby head-end taking over: it closes the
// headend-crash fault's recovery (MTTR = silence detection + takeover).
func (bi *BusInjector) NoteFailover(now machine.Time) {
	bi.failoverAt = now
	bi.failoverDone = true
	for _, bf := range bi.faults {
		if bf.fault.Kind != KindHeadEndCrash || !bf.injected || bf.recovered {
			continue
		}
		bf.recovered = true
		bf.recoveredAt = now
		for r := range bf.pending {
			delete(bf.pending, r)
			bf.roomRecovered[r] = now
		}
	}
}

// Report summarises the bus campaign with the same shape board campaigns
// use, so lab aggregation and CLI tables need no new schema.
func (bi *BusInjector) Report() *Report {
	r := &Report{Plan: bi.plan.Name}
	for _, bf := range bi.faults {
		o := FaultOutcome{
			Kind: bf.fault.Kind, Target: bf.fault.Target,
			AtNs: int64(bf.fault.At), Injected: bf.injected,
			RecoveredAtNs: -1, MTTRNs: -1,
		}
		if bf.recovered {
			o.RecoveredAtNs = int64(bf.recoveredAt.Sub(machine.Time(0)))
			o.MTTRNs = o.RecoveredAtNs - o.AtNs
		}
		r.Faults = append(r.Faults, o)
		if !bf.injected {
			continue
		}
		r.Injected++
		if bf.recovered {
			r.Recovered++
			r.MTTRCount++
			r.MTTRSumNs += o.MTTRNs
			if o.MTTRNs > r.MTTRMaxNs {
				r.MTTRMaxNs = o.MTTRNs
			}
		} else {
			r.Unrecovered++
		}
	}
	return r
}

// RoomReport renders the campaign as seen by one room: only the faults
// whose target set includes the room, each closed at that room's own
// reconfirmation instant. Attack verdicts use it with InWindow to excuse
// violations that fall inside the room's own outage. nil when no armed
// fault touches the room.
func (bi *BusInjector) RoomReport(room int) *Report {
	r := &Report{Plan: bi.plan.Name}
	for _, bf := range bi.faults {
		if _, wasPending := bf.roomRecovered[room]; !wasPending && !bf.pending[room] {
			continue
		}
		o := FaultOutcome{
			Kind: bf.fault.Kind, Target: bf.fault.Target,
			AtNs: int64(bf.fault.At), Injected: bf.injected,
			RecoveredAtNs: -1, MTTRNs: -1,
		}
		if at, ok := bf.roomRecovered[room]; ok {
			o.RecoveredAtNs = int64(at.Sub(machine.Time(0)))
			o.MTTRNs = o.RecoveredAtNs - o.AtNs
		}
		r.Faults = append(r.Faults, o)
		if o.Injected {
			r.Injected++
			if o.RecoveredAtNs >= 0 {
				r.Recovered++
				r.MTTRCount++
				r.MTTRSumNs += o.MTTRNs
				if o.MTTRNs > r.MTTRMaxNs {
					r.MTTRMaxNs = o.MTTRNs
				}
			} else {
				r.Unrecovered++
			}
		}
	}
	if len(r.Faults) == 0 {
		return nil
	}
	return r
}

// FailoverAt reports when the standby took over (zero Time and false when
// no failover happened).
func (bi *BusInjector) FailoverAt() (machine.Time, bool) {
	return bi.failoverAt, bi.failoverDone
}

// Plan returns the armed plan.
func (bi *BusInjector) Plan() *Plan { return bi.plan }
