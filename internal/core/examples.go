package core

// This file captures the paper's two concrete policies: the Fig. 3
// three-application example (used verbatim by experiment E2) and the
// temperature-control scenario policy of Fig. 2 / Section IV (experiments E1
// and E3). Keeping them here, next to the mechanism, makes the experiments a
// direct reading of the paper.

// Fig. 3 subjects.
const (
	Fig3App1 ACID = 100
	Fig3App2 ACID = 101
	Fig3App3 ACID = 102
)

// Fig3Matrix reproduces the example matrix of Fig. 3 exactly:
//
//   - App2 may invoke App1's app1_f2() and app1_f3() (types 2, 3) but not
//     app1_f1() (type 1);
//   - App1's app1_f1() may only be invoked by App3;
//   - all acknowledgment messages (type 0) between communicating pairs are
//     allowed;
//   - App3 offers its three functions to App1 (types 1, 2, 3 per the figure's
//     "m_type: 0, 1, 2" / "0, 1" arrows: App1 may call app3_f1() and
//     app3_f2(); App2 may call app3_f1()).
//
// The bitmaps in the figure: row 100→101 is 0001 (ack only), row 101→100 is
// 1101 (ack + f2 + f3), row 102→100 is 0011 (ack + f1), row 100→102 is 0111
// (ack + f1 + f2), row 101→102 is 0011 (ack + f1), row 102→101 is 0001.
func Fig3Matrix() *Matrix {
	m := NewMatrix()
	m.Name(Fig3App1, "App1").Name(Fig3App2, "App2").Name(Fig3App3, "App3")

	// App1 -> App2: acknowledgments only (bitmap 0001 reading type 0 first).
	m.Allow(Fig3App1, Fig3App2, MsgAck)
	// App2 -> App1: ack + app1_f2 + app1_f3 (bitmap 1101).
	m.Allow(Fig3App2, Fig3App1, MsgAck, 2, 3)
	// App3 -> App1: ack + app1_f1 (bitmap 0011).
	m.Allow(Fig3App3, Fig3App1, MsgAck, 1)
	// App1 -> App3: ack + app3_f1 + app3_f2 (bitmap 0111).
	m.Allow(Fig3App1, Fig3App3, MsgAck, 1, 2)
	// App2 -> App3: ack + app3_f1 (bitmap 0011).
	m.Allow(Fig3App2, Fig3App3, MsgAck, 1)
	// App3 -> App2: acknowledgments only.
	m.Allow(Fig3App3, Fig3App2, MsgAck)

	return m.Seal()
}

// Temperature-control scenario subjects (Section IV: "TempSensorProcess.imp
// is 100, and TempControlProcess.imp is 101 etc.").
const (
	ACIDTempSensor   ACID = 100
	ACIDTempControl  ACID = 101
	ACIDHeaterAct    ACID = 102
	ACIDAlarmAct     ACID = 103
	ACIDWebInterface ACID = 104
	// ACIDScenario is the loader process that forks the five application
	// processes and assigns their ac_ids.
	ACIDScenario ACID = 105
)

// Message types used by the scenario processes. These are the "RPC
// selectors" the paper describes: each process publishes which types it
// accepts, and the ACM restricts who may send them.
const (
	// MsgSensorData carries a fresh temperature sample
	// (sensor → controller).
	MsgSensorData MsgType = 1
	// MsgHeaterCmd commands the heater actuator (controller → heater).
	MsgHeaterCmd MsgType = 2
	// MsgAlarmCmd commands the alarm actuator (controller → alarm).
	MsgAlarmCmd MsgType = 3
	// MsgSetpointUpdate proposes a new setpoint (web → controller).
	MsgSetpointUpdate MsgType = 4
	// MsgStatusQuery asks the controller for environment info
	// (web → controller).
	MsgStatusQuery MsgType = 5
)

// ScenarioPolicy is the compiled policy for the Fig. 2 temperature-control
// scenario: exactly the connections of the AADL model, plus acknowledgments,
// plus the PM-server grants (everyone may fork/exec during load via the
// scenario process; only the scenario loader may kill or assign ACIDs; the
// web interface is explicitly denied kill).
//
// The same structure is produced by compiling testdata/tempcontrol.aadl with
// internal/aadl; TestScenarioPolicyMatchesAADL pins the two together.
func ScenarioPolicy() *Policy {
	p := NewPolicy()
	m := p.IPC
	m.Name(ACIDTempSensor, "tempSensProc").
		Name(ACIDTempControl, "tempProc").
		Name(ACIDHeaterAct, "heaterActProc").
		Name(ACIDAlarmAct, "alarmProc").
		Name(ACIDWebInterface, "webInterface").
		Name(ACIDScenario, "scenario")

	// Sensor pushes samples to the controller.
	m.Allow(ACIDTempSensor, ACIDTempControl, MsgSensorData)
	m.AllowBidirectionalAck(ACIDTempSensor, ACIDTempControl)
	// Controller commands the two actuators.
	m.Allow(ACIDTempControl, ACIDHeaterAct, MsgHeaterCmd)
	m.AllowBidirectionalAck(ACIDTempControl, ACIDHeaterAct)
	m.Allow(ACIDTempControl, ACIDAlarmAct, MsgAlarmCmd)
	m.AllowBidirectionalAck(ACIDTempControl, ACIDAlarmAct)
	// Web interface may only talk to the controller: setpoint updates and
	// status queries.
	m.Allow(ACIDWebInterface, ACIDTempControl, MsgSetpointUpdate, MsgStatusQuery)
	m.AllowBidirectionalAck(ACIDWebInterface, ACIDTempControl)

	s := p.Syscalls
	// The scenario loader builds the world.
	s.Grant(ACIDScenario, SysFork)
	s.Grant(ACIDScenario, SysExec)
	s.Grant(ACIDScenario, SysKill)
	s.Grant(ACIDScenario, SysSetACID)
	// The web interface runs worker children ("5 fixed child threads"), so it
	// holds an *unbudgeted* fork grant — the residual weakness the paper
	// notes ("it can potentially launch a fork bomb"). Nobody besides the
	// loader is granted kill — in particular not the web interface.
	s.Grant(ACIDWebInterface, SysFork)
	return p.Seal()
}

// ACIDBACnetGateway identifies the optional BACnet gateway process (the
// Fig. 1 "secure proxy" extension): a field-bus bridge with exactly the web
// interface's authority — setpoint updates and status queries, nothing more.
const ACIDBACnetGateway ACID = 106

// ScenarioPolicyWithGateway extends the scenario policy with the BACnet
// gateway subject. The gateway gets the same two message types as the web
// interface; even a fully spoofable field protocol therefore cannot reach
// the actuator drivers through it.
func ScenarioPolicyWithGateway() *Policy {
	base := ScenarioPolicy()
	p := NewPolicy()
	p.IPC = base.IPC.Clone()
	p.IPC.Name(ACIDBACnetGateway, "bacnetGateway")
	p.IPC.Allow(ACIDBACnetGateway, ACIDTempControl, MsgSetpointUpdate, MsgStatusQuery)
	p.IPC.AllowBidirectionalAck(ACIDBACnetGateway, ACIDTempControl)
	s := p.Syscalls
	s.Grant(ACIDScenario, SysFork)
	s.Grant(ACIDScenario, SysExec)
	s.Grant(ACIDScenario, SysKill)
	s.Grant(ACIDScenario, SysSetACID)
	s.Grant(ACIDWebInterface, SysFork)
	return p.Seal()
}

// ACIDTenantGateway identifies the tenant API gateway subject: the
// occupant-scale API tier's board-side identity. Like the BACnet gateway it
// holds exactly the web interface's authority — setpoint updates and status
// queries toward the controller — so even a fully compromised tenant tier
// can never reach the actuator drivers or kill anything.
const ACIDTenantGateway ACID = 107

// ScenarioPolicyWithTenantGateway extends the scenario policy with the
// tenant API gateway subject, the certified row the online monitor verifies
// tenant→head-end traffic against.
func ScenarioPolicyWithTenantGateway() *Policy {
	base := ScenarioPolicy()
	p := NewPolicy()
	p.IPC = base.IPC.Clone()
	p.IPC.Name(ACIDTenantGateway, "tenantApiGw")
	p.IPC.Allow(ACIDTenantGateway, ACIDTempControl, MsgSetpointUpdate, MsgStatusQuery)
	p.IPC.AllowBidirectionalAck(ACIDTenantGateway, ACIDTempControl)
	s := p.Syscalls
	s.Grant(ACIDScenario, SysFork)
	s.Grant(ACIDScenario, SysExec)
	s.Grant(ACIDScenario, SysKill)
	s.Grant(ACIDScenario, SysSetACID)
	s.Grant(ACIDWebInterface, SysFork)
	return p.Seal()
}

// ScenarioPolicyWithGateways carries both optional gateway rows — the BACnet
// field-bus proxy and the tenant API gateway — for deployments that serve a
// supervisory network and an occupant API at once. Each row is identical to
// its single-gateway variant; neither gateway can reach the other.
func ScenarioPolicyWithGateways() *Policy {
	base := ScenarioPolicy()
	p := NewPolicy()
	p.IPC = base.IPC.Clone()
	p.IPC.Name(ACIDBACnetGateway, "bacnetGateway")
	p.IPC.Allow(ACIDBACnetGateway, ACIDTempControl, MsgSetpointUpdate, MsgStatusQuery)
	p.IPC.AllowBidirectionalAck(ACIDBACnetGateway, ACIDTempControl)
	p.IPC.Name(ACIDTenantGateway, "tenantApiGw")
	p.IPC.Allow(ACIDTenantGateway, ACIDTempControl, MsgSetpointUpdate, MsgStatusQuery)
	p.IPC.AllowBidirectionalAck(ACIDTenantGateway, ACIDTempControl)
	s := p.Syscalls
	s.Grant(ACIDScenario, SysFork)
	s.Grant(ACIDScenario, SysExec)
	s.Grant(ACIDScenario, SysKill)
	s.Grant(ACIDScenario, SysSetACID)
	s.Grant(ACIDWebInterface, SysFork)
	return p.Seal()
}

// ScenarioPolicyWithForkQuota is the E8 variant: identical, except the web
// interface may fork (it runs worker threads in the paper) under a hard
// quota, defeating fork bombs.
func ScenarioPolicyWithForkQuota(webForkQuota int) *Policy {
	p := NewPolicy()
	base := ScenarioPolicy()
	p.IPC = base.IPC.Clone()
	s := p.Syscalls
	s.Grant(ACIDScenario, SysFork)
	s.Grant(ACIDScenario, SysExec)
	s.Grant(ACIDScenario, SysKill)
	s.Grant(ACIDScenario, SysSetACID)
	s.GrantQuota(ACIDWebInterface, SysFork, webForkQuota)
	return p.Seal()
}
