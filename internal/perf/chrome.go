package perf

import (
	"encoding/json"
	"sort"
)

// The Chrome host-trace export: the campaign's *host* execution as a
// Perfetto/chrome://tracing timeline — worker goroutines as tracks, shards
// and board-step rounds as slices. It complements obs.ChromeTrace, which
// renders one board's *virtual* time: that trace answers "what did the
// simulated system do", this one answers "where did the simulator's
// wall-clock go".

// chromeEvent mirrors the trace-event JSON shape obs uses; duplicated here
// (rather than exported from obs) to keep perf free of virtual-time types.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders the retained timeline as Chrome trace-event JSON.
// Tracks become threads, sorted by name for determinism; each tracked scope
// becomes a complete ("X") event with its phase in args, timestamps in host
// microseconds since the profiler was created.
//
// normalize replaces host timestamps with each track's event ordinal (1µs
// apart, 1µs long): the result is then a pure function of the recorded event
// sequence — what the golden test compares. A parallel run's inter-track
// interleaving is scheduling-dependent even normalized; byte-stable goldens
// use a single worker.
func (p *Profiler) ChromeTrace(normalize bool) ([]byte, error) {
	trace := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	if p == nil {
		return json.MarshalIndent(trace, "", " ")
	}
	p.mu.Lock()
	tracks := make([]*Track, len(p.tracks))
	copy(tracks, p.tracks)
	p.mu.Unlock()
	sort.Slice(tracks, func(i, j int) bool { return tracks[i].name < tracks[j].name })

	for i, tr := range tracks {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: i + 1,
			Args: map[string]any{"name": tr.name},
		})
	}
	for i, tr := range tracks {
		for seq, ev := range tr.events {
			e := chromeEvent{
				Name: ev.name,
				Cat:  "host",
				Ph:   "X",
				Ts:   float64(ev.startNs) / 1e3,
				Dur:  float64(ev.durNs) / 1e3,
				PID:  1,
				TID:  i + 1,
				Args: map[string]any{"phase": ev.phase},
			}
			if normalize {
				e.Ts = float64(seq)
				e.Dur = 1
			}
			trace.TraceEvents = append(trace.TraceEvents, e)
		}
	}
	return json.MarshalIndent(trace, "", " ")
}
