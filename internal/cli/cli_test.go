package cli

import (
	"flag"
	"reflect"
	"testing"

	"mkbas/internal/bas"
)

func TestBundlesRegisterCanonicalFlagNames(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var out Output
	var pool Pool
	var guard Guard
	out.Register(fs)
	pool.Register(fs)
	guard.Register(fs)
	for _, name := range []string{"json", "q", "workers", "bench", "bench-out", "monitor", "demote", "recovery"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
	if err := fs.Parse([]string{"-json", "-workers", "3", "-bench", "1, 2,4", "-demote"}); err != nil {
		t.Fatal(err)
	}
	if !out.JSON || pool.Workers != 3 || !guard.Demote {
		t.Fatalf("parsed values: %+v %+v %+v", out, pool, guard)
	}
	counts, err := pool.BenchCounts()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 4}; !reflect.DeepEqual(counts, want) {
		t.Fatalf("BenchCounts = %v, want %v", counts, want)
	}
	if !guard.MonitorOn() {
		t.Error("-demote must imply the monitor")
	}
}

func TestBenchCountsRejectsBadInput(t *testing.T) {
	for _, bad := range []string{"0", "-1", "x", "1,,2", "1,2,zero"} {
		p := Pool{Bench: bad}
		if _, err := p.BenchCounts(); err == nil {
			t.Errorf("BenchCounts(%q) accepted", bad)
		}
	}
	p := Pool{}
	if counts, err := p.BenchCounts(); err != nil || counts != nil {
		t.Errorf("empty bench spec: counts=%v err=%v, want nil,nil", counts, err)
	}
}

func TestParsePlatform(t *testing.T) {
	cases := map[string]bas.Platform{
		"minix":          bas.PlatformMinix,
		"MINIX":          bas.PlatformMinix,
		"minix3-acm":     bas.PlatformMinix,
		"minix-vanilla":  bas.PlatformMinixVanilla,
		"minix3-vanilla": bas.PlatformMinixVanilla,
		"sel4":           bas.PlatformSel4,
		"linux":          bas.PlatformLinux,
		"linux-hardened": bas.PlatformLinuxHardened,
	}
	for in, want := range cases {
		got, err := ParsePlatform(in)
		if err != nil || got != want {
			t.Errorf("ParsePlatform(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePlatform("plan9"); err == nil {
		t.Error("unknown platform accepted")
	}
}
