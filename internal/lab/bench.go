package lab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"

	"mkbas/internal/attack"
)

// BenchPoint is one worker-count measurement.
type BenchPoint struct {
	Workers int `json:"workers"`
	// ElapsedMS is wall-clock time for the whole campaign, in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// ShardsPerSec is campaign throughput.
	ShardsPerSec float64 `json:"shards_per_sec"`
	// BoardStepsPerSec is per-board simulation rate: board·virtual-seconds
	// simulated per wall-clock second, summed over every board in flight —
	// the hardware-independent number for comparing bench records.
	BoardStepsPerSec float64 `json:"board_steps_per_sec"`
	// Speedup is relative to the first (serial) point.
	Speedup float64 `json:"speedup"`
}

// BenchReport is the scaling measurement check.sh records to BENCH_lab.json.
type BenchReport struct {
	Shards int          `json:"shards"`
	Points []BenchPoint `json:"points"`
	// Identical confirms the determinism contract held: every worker
	// count's merged JSON was byte-identical to the serial run's.
	Identical bool `json:"identical"`
	// HostCPUs is the host's logical CPU count at measurement time.
	HostCPUs int `json:"host_cpus"`
	// GOMAXPROCS is the Go scheduler's parallelism limit at measurement
	// time — scaling beyond min(host_cpus, gomaxprocs) is not expected.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// Bench runs the sweep once per worker count, measuring wall-clock
// throughput and verifying that every run's merged JSON is byte-identical
// to the first. The first worker count is the speedup baseline, so pass 1
// first for honest serial-relative numbers.
func Bench(sweep Sweep, workerCounts []int, hostCPUs int) (*BenchReport, error) {
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("lab: no worker counts to bench")
	}
	rep := &BenchReport{Identical: true, HostCPUs: hostCPUs, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var baseline []byte
	var baseElapsed float64
	// Every campaign shard is one board simulating the full attack timeline.
	virtSecsPerShard := attack.RunDuration().Seconds()
	for i, w := range workerCounts {
		res, err := Run(sweep, Options{Workers: w})
		if err != nil {
			return nil, err
		}
		out, err := res.JSON()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			rep.Shards = len(res.Cases)
			baseline = out
			baseElapsed = float64(res.Elapsed.Nanoseconds())
		} else if !bytes.Equal(out, baseline) {
			rep.Identical = false
		}
		elapsed := float64(res.Elapsed.Nanoseconds())
		pt := BenchPoint{
			Workers:          res.Workers,
			ElapsedMS:        elapsed / 1e6,
			ShardsPerSec:     float64(len(res.Cases)) / (elapsed / 1e9),
			BoardStepsPerSec: float64(len(res.Cases)) * virtSecsPerShard / (elapsed / 1e9),
			Speedup:          baseElapsed / elapsed,
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// JSON renders the bench report as indented JSON with a trailing newline.
func (r *BenchReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
