package camkes

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/sel4"
)

func TestEventConnectionDelivery(t *testing.T) {
	m := machine.New(machine.Config{})
	var received []sel4.Badge
	consumer := &Component{
		Name:     "sink",
		Priority: 6,
		Consumes: []string{"tick"},
		Run: func(rt *Runtime) {
			for len(received) < 3 {
				word, err := rt.WaitEvent("tick")
				if err != nil {
					return
				}
				received = append(received, word)
			}
		},
	}
	emitter := &Component{
		Name:     "source",
		Priority: 7,
		Emits:    []string{"tick"},
		Run: func(rt *Runtime) {
			for i := 0; i < 3; i++ {
				rt.Sleep(time.Millisecond)
				if err := rt.Emit("tick"); err != nil {
					t.Errorf("emit: %v", err)
				}
			}
		},
	}
	assembly := &Assembly{
		Components: []*Component{consumer, emitter},
		EventConnections: []Connection{
			{FromComp: "source", FromIface: "tick", ToComp: "sink", ToIface: "tick"},
		},
	}
	sys, err := Build(m, assembly, BuildConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	m.Run(time.Second)
	if len(received) != 3 {
		t.Fatalf("received %d events, want 3", len(received))
	}
	for _, w := range received {
		if w != 1 {
			t.Fatalf("badge word = %d, want connection badge 1", w)
		}
	}
	if err := sys.Verify(); err != nil {
		t.Fatalf("CapDL verify with events: %v", err)
	}
	if !strings.Contains(sys.Spec().Render(), "ntfn_sink_tick = notification") {
		t.Fatalf("spec missing notification object:\n%s", sys.Spec().Render())
	}
}

func TestTwoEmittersDistinguishedByBadgeBits(t *testing.T) {
	m := machine.New(machine.Config{})
	var word sel4.Badge
	consumer := &Component{
		Name: "sink", Priority: 6, Consumes: []string{"ev"},
		Run: func(rt *Runtime) {
			rt.Sleep(10 * time.Millisecond) // both emitters fire first
			word, _ = rt.WaitEvent("ev")
		},
	}
	mkEmitter := func(name string) *Component {
		return &Component{
			Name: name, Priority: 7, Emits: []string{"ev"},
			Run: func(rt *Runtime) { rt.Emit("ev") },
		}
	}
	assembly := &Assembly{
		Components: []*Component{consumer, mkEmitter("a"), mkEmitter("b")},
		EventConnections: []Connection{
			{FromComp: "a", FromIface: "ev", ToComp: "sink", ToIface: "ev"},
			{FromComp: "b", FromIface: "ev", ToComp: "sink", ToIface: "ev"},
		},
	}
	if _, err := Build(m, assembly, BuildConfig{}); err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	m.Run(time.Second)
	if word != 0b11 {
		t.Fatalf("word = %b, want both connection bits", word)
	}
}

func TestPollEventNonBlocking(t *testing.T) {
	m := machine.New(machine.Config{})
	var early, late error
	consumer := &Component{
		Name: "sink", Priority: 7, Consumes: []string{"ev"},
		Run: func(rt *Runtime) {
			_, early = rt.PollEvent("ev")
			rt.Sleep(10 * time.Millisecond)
			_, late = rt.PollEvent("ev")
		},
	}
	emitter := &Component{
		Name: "source", Priority: 7, Emits: []string{"ev"},
		Run: func(rt *Runtime) {
			rt.Sleep(time.Millisecond)
			rt.Emit("ev")
		},
	}
	assembly := &Assembly{
		Components: []*Component{consumer, emitter},
		EventConnections: []Connection{
			{FromComp: "source", FromIface: "ev", ToComp: "sink", ToIface: "ev"},
		},
	}
	if _, err := Build(m, assembly, BuildConfig{}); err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	m.Run(time.Second)
	if !errors.Is(early, sel4.ErrWouldBlock) {
		t.Fatalf("early poll = %v, want would-block", early)
	}
	if late != nil {
		t.Fatalf("late poll = %v, want success", late)
	}
}

func TestEventValidation(t *testing.T) {
	run := func(rt *Runtime) {}
	cases := []struct {
		name     string
		assembly *Assembly
	}{
		{"emit without connection", &Assembly{
			Components: []*Component{{Name: "a", Emits: []string{"ev"}, Run: run}},
		}},
		{"connection to non-consumer", &Assembly{
			Components: []*Component{
				{Name: "a", Emits: []string{"ev"}, Run: run},
				{Name: "b", Run: run},
			},
			EventConnections: []Connection{{FromComp: "a", FromIface: "ev", ToComp: "b", ToIface: "ev"}},
		}},
		{"connection from non-emitter", &Assembly{
			Components: []*Component{
				{Name: "a", Run: run},
				{Name: "b", Consumes: []string{"ev"}, Run: run},
			},
			EventConnections: []Connection{{FromComp: "a", FromIface: "ev", ToComp: "b", ToIface: "ev"}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := machine.New(machine.Config{})
			defer m.Shutdown()
			if _, err := Build(m, tc.assembly, BuildConfig{}); !errors.Is(err, ErrBadAssembly) {
				t.Fatalf("Build = %v, want ErrBadAssembly", err)
			}
		})
	}
}

func TestRuntimeEventErrors(t *testing.T) {
	m := machine.New(machine.Config{})
	var emitErr, waitErr error
	comp := &Component{
		Name: "lonely", Priority: 7,
		Run: func(rt *Runtime) {
			emitErr = rt.Emit("ghost")
			_, waitErr = rt.WaitEvent("ghost")
		},
	}
	if _, err := Build(m, &Assembly{Components: []*Component{comp}}, BuildConfig{}); err != nil {
		t.Fatalf("Build: %v", err)
	}
	t.Cleanup(m.Shutdown)
	m.Run(time.Second)
	if !errors.Is(emitErr, ErrBadAssembly) || !errors.Is(waitErr, ErrBadAssembly) {
		t.Fatalf("errs = %v / %v, want ErrBadAssembly", emitErr, waitErr)
	}
}
