package machine

import (
	"errors"
	"fmt"
	"time"

	"mkbas/internal/obs"
	"mkbas/internal/perf"
)

// Disposition tells the engine what to do with a process after its trap has
// been handled.
type Disposition int

const (
	// DispositionContinue delivers the reply and returns the process to the
	// ready queue.
	DispositionContinue Disposition = iota + 1
	// DispositionBlock parks the process; the kernel must later wake it with
	// Engine.Ready (typically from another process's trap or a timer).
	DispositionBlock
)

// TrapHandler is the kernel personality of a board. Exactly one handler is
// attached to an Engine; it receives every trap and every process exit.
//
// Handlers run on the engine goroutine and may call back into the engine
// (Spawn, Ready, Kill, clock scheduling) synchronously. A handler that kills
// the trapping process during HandleTrap may return any disposition; the
// engine notices the death and discards the reply.
type TrapHandler interface {
	// HandleTrap processes one system call from process pid.
	HandleTrap(pid PID, req any) (reply any, disposition Disposition)
	// OnProcExit is invoked after a process dies for any reason (return,
	// crash, kill). It runs before the next dispatch, so kernels can clean up
	// or restart drivers (reincarnation) deterministically.
	OnProcExit(pid PID, info ExitInfo)
}

// StopReason explains why Engine.Run returned.
type StopReason int

const (
	// StopDeadline means virtual time reached the requested horizon.
	StopDeadline StopReason = iota + 1
	// StopAllExited means no live processes remain.
	StopAllExited
	// StopIdle means live processes exist but all are blocked and no timers
	// are pending: the board is deadlocked.
	StopIdle
)

// String returns a short description of the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopDeadline:
		return "deadline"
	case StopAllExited:
		return "all-exited"
	case StopIdle:
		return "idle-deadlock"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// RunResult summarises one Engine.Run call.
type RunResult struct {
	Reason StopReason
	Now    Time
}

// Costs models the virtual-time price of kernel entry and context switching.
// These drive the E4 overhead experiments: a microkernel IPC round trip pays
// several traps and switches, a monolithic syscall pays one.
type Costs struct {
	// Trap is charged on every kernel entry.
	Trap time.Duration
	// Switch is charged whenever a different process is dispatched than the
	// one that ran last.
	Switch time.Duration
}

// DefaultCosts approximate an ARM Cortex-A8 class controller: half a
// microsecond per kernel entry, one microsecond per context switch.
func DefaultCosts() Costs {
	return Costs{Trap: 500 * time.Nanosecond, Switch: time.Microsecond}
}

// Stats aggregates board-level accounting.
type Stats struct {
	Traps           int64
	ContextSwitches int64
	Spawns          int64
	Exits           int64
	KernelTime      time.Duration
}

// numPriorities bounds process priority levels; 0 is most urgent.
const numPriorities = 16

// Engine schedules simulated processes over a virtual clock and routes their
// traps to the attached kernel. It is single-threaded: all engine, clock, and
// kernel state is touched only from the goroutine that calls Run.
type Engine struct {
	clock   *Clock
	handler TrapHandler
	costs   Costs

	procs   map[PID]*Proc
	ready   [numPriorities][]PID
	nextPID PID
	live    int

	// current is the PID whose trap is being handled; lastRun drives
	// context-switch accounting.
	current PID
	lastRun PID

	trapCh chan trapMsg

	stats    Stats
	shutdown bool

	// Metrics series, resolved once at instrument time so the hot path
	// pays one integer add per sample. All are nil-safe: an engine built
	// outside machine.New (unit tests) runs uninstrumented.
	mTraps      *obs.Counter
	mSwitches   *obs.Counter
	mDispatches *obs.Counter
	mSpawns     *obs.Counter
	mExits      *obs.Counter
	mRunQ       *obs.Gauge
	mLive       *obs.Gauge

	// Host-side profiler phases, resolved once like the metrics series above.
	// Both are nil (discarding) until SetProfiler; engine.dispatch is the
	// hottest scope in the whole simulator, so it uses a time-only HotPhase.
	phRun      *perf.Phase
	phDispatch *perf.Phase
}

// NewEngine creates an engine over clock. The handler must be attached with
// SetHandler before the first Spawn.
func NewEngine(clock *Clock, costs Costs) *Engine {
	return &Engine{
		clock:   clock,
		costs:   costs,
		procs:   make(map[PID]*Proc),
		trapCh:  make(chan trapMsg),
		nextPID: 1,
	}
}

// SetHandler attaches the kernel personality. It must be called exactly once,
// before any process is spawned.
func (e *Engine) SetHandler(h TrapHandler) {
	if e.handler != nil {
		panic("machine: SetHandler called twice")
	}
	if h == nil {
		panic("machine: SetHandler with nil handler")
	}
	e.handler = h
}

// setProfiler binds the engine's host-time accounting to a perf profiler.
// Safe to leave unset: the nil phases discard.
func (e *Engine) setProfiler(p *perf.Profiler) {
	e.phRun = p.HotPhase("engine.run")
	e.phDispatch = p.HotPhase("engine.dispatch")
}

// instrument binds the engine's accounting to a metrics registry.
func (e *Engine) instrument(r *obs.Registry) {
	e.mTraps = r.Counter("machine_traps_total")
	e.mSwitches = r.Counter("machine_context_switches_total")
	e.mDispatches = r.Counter("machine_dispatches_total")
	e.mSpawns = r.Counter("machine_spawns_total")
	e.mExits = r.Counter("machine_exits_total")
	e.mRunQ = r.Gauge("machine_run_queue_depth")
	e.mLive = r.Gauge("machine_live_procs")
}

// Clock returns the board clock.
func (e *Engine) Clock() *Clock { return e.clock }

// Stats returns a snapshot of the accounting counters.
func (e *Engine) Stats() Stats { return e.stats }

// Proc returns the process control block for pid, or nil if it never existed.
func (e *Engine) Proc(pid PID) *Proc { return e.procs[pid] }

// Current returns the PID whose trap is being handled, or NoPID outside
// dispatch.
func (e *Engine) Current() PID { return e.current }

// LiveCount reports the number of processes that have not exited.
func (e *Engine) LiveCount() int { return e.live }

// Procs returns all process control blocks, live and dead, in PID order.
func (e *Engine) Procs() []*Proc {
	out := make([]*Proc, 0, len(e.procs))
	for pid := PID(1); pid < e.nextPID; pid++ {
		if p, ok := e.procs[pid]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Engine errors.
var (
	ErrNoSuchProc  = errors.New("machine: no such process")
	ErrProcDead    = errors.New("machine: process is dead")
	ErrNotBlocked  = errors.New("machine: process not blocked")
	ErrShutDown    = errors.New("machine: engine shut down")
	ErrBadPriority = errors.New("machine: priority out of range")
)

// Spawn creates a process and enqueues it for its first dispatch. It is
// callable both before Run and from kernel code during a run.
func (e *Engine) Spawn(name string, prio int, body func(ctx *Context)) (*Proc, error) {
	if e.handler == nil {
		panic("machine: Spawn before SetHandler")
	}
	if e.shutdown {
		return nil, ErrShutDown
	}
	if prio < 0 || prio >= numPriorities {
		return nil, fmt.Errorf("%w: %d", ErrBadPriority, prio)
	}
	if body == nil {
		panic("machine: Spawn with nil body")
	}
	p := &Proc{
		pid:    e.nextPID,
		name:   name,
		prio:   prio,
		state:  StateNew,
		engine: e,
		body:   body,
		resume: make(chan any),
		done:   make(chan struct{}),
	}
	e.nextPID++
	e.procs[p.pid] = p
	e.live++
	e.stats.Spawns++
	e.mSpawns.Inc()
	e.mLive.Set(int64(e.live))
	e.enqueue(p)
	go runBody(p)
	return p, nil
}

// runBody hosts one process goroutine: it waits for the first dispatch, runs
// the body, and reports the exit to the engine. A kill sentinel received at
// any parking point unwinds the goroutine without reporting (the engine is
// synchronously waiting on done in that case).
func runBody(p *Proc) {
	defer close(p.done)

	first := <-p.resume
	if _, killed := first.(killSentinel); killed {
		return
	}

	var (
		crashed bool
		killed  bool
		pv      any
	)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, isKill := r.(killSentinel); isKill {
				killed = true
				return
			}
			crashed = true
			pv = r
		}()
		p.body(&Context{proc: p})
	}()
	if killed {
		return
	}
	p.engine.trapCh <- trapMsg{pid: p.pid, req: bodyExit{crashed: crashed, panicValue: pv}}
}

// Ready wakes a blocked process, delivering reply as the return value of the
// Trap call it is parked in. Kernels call this from timers or from other
// processes' traps. Waking the currently running process is a programming
// error: return DispositionContinue instead.
func (e *Engine) Ready(pid PID, reply any) error {
	p, ok := e.procs[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchProc, pid)
	}
	switch p.state {
	case StateBlocked:
		p.pendingReply = reply
		p.state = StateReady
		e.enqueue(p)
		return nil
	case StateDead:
		return fmt.Errorf("%w: %d", ErrProcDead, pid)
	default:
		return fmt.Errorf("%w: %d is %v", ErrNotBlocked, pid, p.state)
	}
}

// Kill destroys a process in any live state, including the process whose trap
// is currently being handled. The victim's goroutine is fully unwound before
// Kill returns, and the kernel's OnProcExit hook fires with Killed set.
func (e *Engine) Kill(pid PID) error {
	p, ok := e.procs[pid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchProc, pid)
	}
	if p.state == StateDead {
		return fmt.Errorf("%w: %d", ErrProcDead, pid)
	}
	// Every live process that is not running is parked on its resume channel
	// (New: awaiting first dispatch; Ready: awaiting reply delivery; Blocked:
	// awaiting wake-up). The currently running process is also parked there,
	// because the engine handles its trap before replying. So the sentinel
	// handoff below cannot block.
	p.state = StateDead
	e.dequeue(p)
	p.resume <- killSentinel{}
	<-p.done
	e.live--
	e.stats.Exits++
	e.mExits.Inc()
	e.mLive.Set(int64(e.live))
	e.handler.OnProcExit(pid, ExitInfo{Killed: true})
	return nil
}

// Run executes the board until virtual time reaches until, all processes
// exit, or the board deadlocks. It may be called repeatedly to run a
// simulation in slices; all state is preserved between calls.
func (e *Engine) Run(until Time) RunResult {
	if e.handler == nil {
		panic("machine: Run before SetHandler")
	}
	if e.shutdown {
		return RunResult{Reason: StopAllExited, Now: e.clock.Now()}
	}
	sc := e.phRun.Begin()
	defer sc.End()
	for {
		e.fireDueTimers()
		if e.clock.Now() >= until {
			return RunResult{Reason: StopDeadline, Now: e.clock.Now()}
		}
		p := e.nextReady()
		if p == nil {
			dl, ok := e.clock.nextDeadline()
			switch {
			case ok && dl <= until:
				e.clock.advance(dl)
				continue
			case ok:
				e.clock.advance(until)
				return RunResult{Reason: StopDeadline, Now: e.clock.Now()}
			case e.live == 0:
				return RunResult{Reason: StopAllExited, Now: e.clock.Now()}
			default:
				return RunResult{Reason: StopIdle, Now: e.clock.Now()}
			}
		}
		e.dispatch(p)
	}
}

// Shutdown kills every live process so no goroutines outlive the simulation.
// The engine is unusable afterwards.
func (e *Engine) Shutdown() {
	for pid := PID(1); pid < e.nextPID; pid++ {
		p, ok := e.procs[pid]
		if !ok || p.state == StateDead {
			continue
		}
		p.state = StateDead
		e.dequeue(p)
		p.resume <- killSentinel{}
		<-p.done
		e.live--
	}
	e.shutdown = true
}

// fireDueTimers runs every timer whose deadline has passed, in deterministic
// order. Timer callbacks may schedule more timers and wake processes.
func (e *Engine) fireDueTimers() {
	for {
		t := e.clock.popDue()
		if t == nil {
			return
		}
		t.fn()
	}
}

// dispatch hands the CPU to p, waits for its next trap, and routes it to the
// kernel.
func (e *Engine) dispatch(p *Proc) {
	sc := e.phDispatch.Begin()
	defer sc.End()
	e.mDispatches.Inc()
	if e.lastRun != p.pid {
		e.stats.ContextSwitches++
		p.switches++
		e.mSwitches.Inc()
		e.charge(e.costs.Switch)
	}
	e.lastRun = p.pid
	p.state = StateRunning
	e.current = p.pid

	reply := p.pendingReply
	p.pendingReply = nil
	p.resume <- reply

	msg := <-e.trapCh
	if msg.pid != p.pid {
		panic(fmt.Sprintf("machine: trap from %d while %d running", msg.pid, p.pid))
	}
	e.stats.Traps++
	p.traps++
	e.mTraps.Inc()
	e.charge(e.costs.Trap)

	if exit, isExit := msg.req.(bodyExit); isExit {
		p.state = StateDead
		e.live--
		e.stats.Exits++
		e.mExits.Inc()
		e.mLive.Set(int64(e.live))
		e.current = NoPID
		e.handler.OnProcExit(p.pid, ExitInfo{Crashed: exit.crashed, PanicValue: exit.panicValue})
		return
	}

	kernelReply, disposition := e.handler.HandleTrap(p.pid, msg.req)
	e.current = NoPID
	if p.state == StateDead {
		// The kernel killed the trapping process while handling its trap;
		// the goroutine is already unwound.
		return
	}
	switch disposition {
	case DispositionContinue:
		p.pendingReply = kernelReply
		p.state = StateReady
		e.enqueue(p)
	case DispositionBlock:
		p.state = StateBlocked
	default:
		panic(fmt.Sprintf("machine: invalid disposition %d", disposition))
	}
}

// charge advances virtual time by a kernel cost.
func (e *Engine) charge(d time.Duration) {
	if d <= 0 {
		return
	}
	e.stats.KernelTime += d
	e.clock.advance(e.clock.Now().Add(d))
}

// enqueue appends p to its priority's FIFO ready queue. The run-queue
// depth gauge tracks queue mutations incrementally so dispatch never has
// to walk the priority bands.
func (e *Engine) enqueue(p *Proc) {
	e.ready[p.prio] = append(e.ready[p.prio], p.pid)
	e.mRunQ.Add(1)
}

// dequeue removes p from its ready queue, if present.
func (e *Engine) dequeue(p *Proc) {
	q := e.ready[p.prio]
	for i, pid := range q {
		if pid == p.pid {
			e.ready[p.prio] = append(q[:i:i], q[i+1:]...)
			e.mRunQ.Add(-1)
			return
		}
	}
}

// nextReady pops the next runnable process: highest priority first, FIFO
// within a priority.
func (e *Engine) nextReady() *Proc {
	for prio := 0; prio < numPriorities; prio++ {
		q := e.ready[prio]
		for len(q) > 0 {
			pid := q[0]
			q = q[1:]
			e.ready[prio] = q
			e.mRunQ.Add(-1)
			p := e.procs[pid]
			if p != nil && (p.state == StateReady || p.state == StateNew) {
				return p
			}
		}
	}
	return nil
}
