package sel4

import (
	"errors"
	"fmt"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/obs"
	"mkbas/internal/vnet"
)

// Kernel errors.
var (
	// ErrInvalidCap reports an invocation of an empty or wrong-kind slot:
	// what a brute-forcing attacker sees on every probe.
	ErrInvalidCap = errors.New("sel4: invalid capability")
	// ErrNoRights reports a capability lacking the required rights.
	ErrNoRights = errors.New("sel4: capability lacks required rights")
	// ErrWouldBlock reports an NB operation that found no partner.
	ErrWouldBlock = errors.New("sel4: would block")
	// ErrNoReplyCap reports Reply without a pending reply capability.
	ErrNoReplyCap = errors.New("sel4: no reply capability")
	// ErrCallAborted reports a Call whose server died before replying.
	ErrCallAborted = errors.New("sel4: call aborted (reply capability destroyed)")
	// ErrCSpaceFull reports no free slot for a transferred capability.
	ErrCSpaceFull = errors.New("sel4: capability space full")
	// ErrBadSlot reports a CNode operation on an out-of-range slot.
	ErrBadSlot = errors.New("sel4: slot out of range")
	// ErrNotStarted reports Start on an unknown or already started TCB.
	ErrNotStarted = errors.New("sel4: thread cannot be started")
	// ErrSuspended reports an invocation on a suspended TCB.
	ErrSuspended = errors.New("sel4: thread is suspended")
	// ErrBadHandle reports an invalid network handle.
	ErrBadHandle = errors.New("sel4: bad descriptor")
	// ErrMsgLost reports a message lost in transit (fault injection); seL4
	// proper has no such error, but the simulated transport fault layer
	// needs a way to abort a Call whose request evaporated.
	ErrMsgLost = errors.New("sel4: message lost in transit")
)

// Stats counts kernel events for the experiments.
type Stats struct {
	IPCDelivered    int64
	InvalidCapErrs  int64
	RightsDenied    int64
	CapsTransferred int64
	Suspends        int64
	Calls           int64
	Replies         int64
	Signals         int64
}

// tcbState tracks why a thread is not running.
type tcbState int

const (
	stateReady tcbState = iota
	stateBlockedSend
	stateBlockedRecv
	stateBlockedCall // awaiting reply
	stateSleeping
	stateNetBlocked
	stateBlockedNotif
	stateSuspendedDead
)

// tcb is the kernel-side thread control block.
type tcb struct {
	id     ObjID
	name   string
	prio   int
	pid    machine.PID
	body   func(api *API)
	cspace [CSpaceSize]Capability

	state     tcbState
	started   bool
	suspended bool

	// Blocked-send context.
	sendMsg   Msg
	sendCap   Capability
	wantsCall bool

	// replyCap is the one-time reply capability produced by receiving a
	// Call.
	replyCap *replyObj

	waitToken uint64

	// span is the open Call round-trip span, zero outside a Call.
	span obs.SpanID

	// Network handles.
	nextHandle int32
	listeners  map[int32]*vnet.Listener
	conns      map[int32]*vnet.Conn

	// Reply scratch for the hot trap paths. The engine serialises all
	// kernel work and a blocked thread receives at most one wake-up value,
	// so boxing pointers to these per-thread values costs no allocation and
	// cannot alias: a wake always writes the blocked thread's own scratch.
	errR  errResult
	recvR recvResultReply
	callR callResultReply
	u32R  u32Result
	waitR waitResult

	// replyScratch backs replyCap: at most one reply capability is live per
	// receiver (a newer Call delivery replaces the pointer), so the object
	// can live inline instead of a per-Call heap allocation.
	replyScratch replyObj
}

// errOut fills the thread's error reply scratch and returns it boxed.
func (t *tcb) errOut(err error) any {
	t.errR = errResult{err: err}
	return &t.errR
}

// recvOut fills the thread's Recv reply scratch and returns it boxed.
func (t *tcb) recvOut(res RecvResult, err error) any {
	t.recvR = recvResultReply{res: res, err: err}
	return &t.recvR
}

// callOut fills the thread's Call reply scratch and returns it boxed.
func (t *tcb) callOut(msg Msg, err error) any {
	t.callR = callResultReply{msg: msg, err: err}
	return &t.callR
}

// u32Out fills the thread's u32 reply scratch and returns it boxed.
func (t *tcb) u32Out(v uint32, err error) any {
	t.u32R = u32Result{value: v, err: err}
	return &t.u32R
}

// waitOut fills the thread's Wait reply scratch and returns it boxed.
func (t *tcb) waitOut(word Badge, err error) any {
	t.waitR = waitResult{word: word, err: err}
	return &t.waitR
}

// endpointObj is a rendezvous endpoint: "endpoints are implemented as wait
// queues".
type endpointObj struct {
	id    ObjID
	name  string
	sendQ []*tcb
	recvQ []*tcb
}

// deviceObj exposes one bus device through a capability.
type deviceObj struct {
	id  ObjID
	dev machine.DeviceID
}

// netPortObj exposes one network port through a capability.
type netPortObj struct {
	id   ObjID
	port vnet.Port
}

// replyObj is a one-time reply capability.
type replyObj struct {
	caller *tcb
	used   bool
}

// Config parameterises the kernel.
type Config struct {
	// Net is the board network stack; nil boards have no network.
	Net *vnet.Stack
}

// Kernel is the simulated seL4 kernel: the board's trap handler plus the
// object and capability tables.
type Kernel struct {
	m   *machine.Machine
	cfg Config

	nextObj ObjID
	eps     map[ObjID]*endpointObj
	tcbs    map[ObjID]*tcb
	devs    map[ObjID]*deviceObj
	ports   map[ObjID]*netPortObj
	notifs  map[ObjID]*notificationObj
	byPID   map[machine.PID]*tcb

	stats Stats

	// Observability hooks, resolved once at construction.
	tracer        *obs.Tracer
	events        *obs.EventLog
	mSends        *obs.Counter
	mRecvs        *obs.Counter
	mCalls        *obs.Counter
	mReplies      *obs.Counter
	mDelivered    *obs.Counter
	mCapFaults    *obs.Counter
	mRightsDenied *obs.Counter
	mSuspends     *obs.Counter
	mCallNs       *obs.Histogram
	mEPQ          *obs.Gauge

	// ipcFault is the fault-injection filter, consulted after capability
	// checks on Send and Call with (thread name, endpoint name). nil when
	// no campaign is armed.
	ipcFault func(src, dst string) (drop bool, delay time.Duration)
}

var _ machine.TrapHandler = (*Kernel)(nil)

// NewKernel installs an seL4 kernel on a board. Object construction and
// capability distribution happen through the returned kernel's root-task
// methods before the board runs (or between run slices).
func NewKernel(m *machine.Machine, cfg Config) *Kernel {
	k := &Kernel{
		m:       m,
		cfg:     cfg,
		nextObj: 1,
		eps:     make(map[ObjID]*endpointObj),
		tcbs:    make(map[ObjID]*tcb),
		devs:    make(map[ObjID]*deviceObj),
		ports:   make(map[ObjID]*netPortObj),
		notifs:  make(map[ObjID]*notificationObj),
		byPID:   make(map[machine.PID]*tcb),
	}
	board := m.Obs()
	board.Events().SetPlatform("sel4")
	k.tracer = board.Tracer()
	k.events = board.Events()
	reg := board.Metrics()
	k.mSends = reg.Counter("sel4_ipc_send_total")
	k.mRecvs = reg.Counter("sel4_ipc_recv_total")
	k.mCalls = reg.Counter("sel4_ipc_call_total")
	k.mReplies = reg.Counter("sel4_ipc_reply_total")
	k.mDelivered = reg.Counter("sel4_ipc_delivered_total")
	k.mCapFaults = reg.Counter("sel4_cap_faults_total")
	k.mRightsDenied = reg.Counter("sel4_rights_denied_total")
	k.mSuspends = reg.Counter("sel4_suspends_total")
	k.mCallNs = reg.Histogram("sel4_call_roundtrip_ns", nil)
	k.mEPQ = reg.Gauge("sel4_ep_queue_depth")
	m.Engine().SetHandler(k)
	return k
}

// Stats returns a snapshot of kernel counters.
func (k *Kernel) Stats() Stats { return k.stats }

// Machine returns the underlying board.
func (k *Kernel) Machine() *machine.Machine { return k.m }

// Events returns the board security-event log (shared with the machine).
func (k *Kernel) Events() *obs.EventLog { return k.events }

// --- Root-task object construction -----------------------------------------

// CreateEndpoint allocates an IPC endpoint object.
func (k *Kernel) CreateEndpoint(name string) ObjID {
	id := k.allocID()
	k.eps[id] = &endpointObj{id: id, name: name}
	return id
}

// CreateDevice allocates a device object backed by a bus device.
func (k *Kernel) CreateDevice(dev machine.DeviceID) ObjID {
	id := k.allocID()
	k.devs[id] = &deviceObj{id: id, dev: dev}
	return id
}

// CreateNetPort allocates a network-port object.
func (k *Kernel) CreateNetPort(port vnet.Port) ObjID {
	id := k.allocID()
	k.ports[id] = &netPortObj{id: id, port: port}
	return id
}

// CreateThread allocates a TCB with an empty CSpace. The thread does not run
// until Start.
func (k *Kernel) CreateThread(name string, prio int, body func(api *API)) ObjID {
	id := k.allocID()
	k.tcbs[id] = &tcb{
		id:        id,
		name:      name,
		prio:      prio,
		body:      body,
		listeners: make(map[int32]*vnet.Listener),
		conns:     make(map[int32]*vnet.Conn),
	}
	return id
}

// InstallCap writes a capability into a thread's CSpace slot (root-task
// privilege; at runtime capabilities move only via IPC grant).
func (k *Kernel) InstallCap(tcbID ObjID, slot CPtr, cap Capability) error {
	t, ok := k.tcbs[tcbID]
	if !ok {
		return fmt.Errorf("%w: tcb %d", ErrInvalidCap, tcbID)
	}
	if int(slot) >= CSpaceSize {
		return fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	t.cspace[slot] = cap
	return nil
}

// Start launches a created thread.
func (k *Kernel) Start(tcbID ObjID) error {
	t, ok := k.tcbs[tcbID]
	if !ok || t.started {
		return ErrNotStarted
	}
	body := t.body
	proc, err := k.m.Engine().Spawn(t.name, t.prio, func(ctx *machine.Context) {
		body(&API{ctx: ctx, k: k})
	})
	if err != nil {
		return fmt.Errorf("sel4: starting %q: %w", t.name, err)
	}
	t.pid = proc.PID()
	t.started = true
	k.byPID[proc.PID()] = t
	k.m.Trace().Logf("sel4", "start %s tcb=%d", t.name, t.id)
	return nil
}

// EndpointCap builds an endpoint capability.
func EndpointCap(ep ObjID, rights Rights, badge Badge) Capability {
	return Capability{Object: ep, Kind: KindEndpoint, Rights: rights, Badge: badge}
}

// TCBCap builds a TCB capability.
func TCBCap(tcbID ObjID, rights Rights) Capability {
	return Capability{Object: tcbID, Kind: KindTCB, Rights: rights}
}

// DeviceCap builds a device capability.
func DeviceCap(dev ObjID, rights Rights) Capability {
	return Capability{Object: dev, Kind: KindDevice, Rights: rights}
}

// NetPortCap builds a network-port capability.
func NetPortCap(port ObjID, rights Rights) Capability {
	return Capability{Object: port, Kind: KindNetPort, Rights: rights}
}

// CapsOf returns a copy of a thread's CSpace (experiment inspection and
// CapDL verification).
func (k *Kernel) CapsOf(tcbID ObjID) ([]Capability, error) {
	t, ok := k.tcbs[tcbID]
	if !ok {
		return nil, fmt.Errorf("%w: tcb %d", ErrInvalidCap, tcbID)
	}
	out := make([]Capability, CSpaceSize)
	copy(out, t.cspace[:])
	return out, nil
}

// CapCount reports the number of non-null slots in a thread's CSpace.
func (k *Kernel) CapCount(tcbID ObjID) (int, error) {
	caps, err := k.CapsOf(tcbID)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, c := range caps {
		if !c.IsNull() {
			n++
		}
	}
	return n, nil
}

// SetIPCFault installs fn as the fault-injection IPC filter, consulted
// after capability checks pass with the sending thread's name and the
// endpoint's name. drop loses the message, delay postpones its delivery.
// nil clears the filter. Transport faults are not capability faults: denial
// events still come only from real rights failures.
func (k *Kernel) SetIPCFault(fn func(src, dst string) (drop bool, delay time.Duration)) {
	k.ipcFault = fn
}

// faultFor consults the installed IPC fault filter.
func (k *Kernel) faultFor(src, dst string) (bool, time.Duration) {
	if k.ipcFault == nil {
		return false, 0
	}
	return k.ipcFault(src, dst)
}

// KillThread kills the named thread as if it had faulted, without marking
// the TCB suspended: ThreadAlive goes false through the engine state, and a
// monitor component may respawn the component from its spec. This is the
// fault-injection crash entry point, distinct from the capability-mediated
// TCB_Suspend path.
func (k *Kernel) KillThread(tcbID ObjID) error {
	t, ok := k.tcbs[tcbID]
	if !ok || !t.started {
		return ErrNotStarted
	}
	p := k.m.Engine().Proc(t.pid)
	if p == nil || p.State() == machine.StateDead {
		return ErrSuspended
	}
	k.m.Trace().Logf("sel4", "FAULT-INJECT kill %s tcb=%d", t.name, t.id)
	return k.m.Engine().Kill(t.pid)
}

// ThreadAlive reports whether a thread is started and not suspended/dead.
func (k *Kernel) ThreadAlive(tcbID ObjID) bool {
	t, ok := k.tcbs[tcbID]
	if !ok || !t.started || t.suspended {
		return false
	}
	p := k.m.Engine().Proc(t.pid)
	return p != nil && p.State() != machine.StateDead
}

func (k *Kernel) allocID() ObjID {
	id := k.nextObj
	k.nextObj++
	return id
}

// lookupCap resolves a thread's slot with a required kind and rights.
// Every failure is a capability fault: counted, and emitted on the
// security-event stream (this is what an attacker brute-forcing CPtrs
// looks like in the unified view).
func (k *Kernel) lookupCap(t *tcb, cptr CPtr, kind ObjKind, rights Rights) (Capability, error) {
	if int(cptr) >= CSpaceSize {
		k.stats.InvalidCapErrs++
		k.capFault(t, fmt.Sprintf("slot %d out of range", cptr))
		return Capability{}, fmt.Errorf("%w: slot %d", ErrInvalidCap, cptr)
	}
	c := t.cspace[cptr]
	if c.IsNull() || c.Kind != kind {
		k.stats.InvalidCapErrs++
		k.capFault(t, fmt.Sprintf("slot %d empty or not %v", cptr, kind))
		return Capability{}, fmt.Errorf("%w: slot %d", ErrInvalidCap, cptr)
	}
	if !c.Rights.Has(rights) {
		k.stats.RightsDenied++
		k.mRightsDenied.Inc()
		k.events.Emit(obs.SecurityEvent{
			Kind:      obs.EventCapFault,
			Mechanism: obs.MechCapability,
			Denied:    true,
			Src:       t.name,
			Dst:       k.objName(c.Object),
			Detail:    fmt.Sprintf("slot %d has %v, needs %v", cptr, c.Rights, rights),
		})
		return Capability{}, fmt.Errorf("%w: slot %d has %v, needs %v", ErrNoRights, cptr, c.Rights, rights)
	}
	return c, nil
}

// capFault books one invalid-capability fault.
func (k *Kernel) capFault(t *tcb, detail string) {
	k.mCapFaults.Inc()
	k.events.Emit(obs.SecurityEvent{
		Kind:      obs.EventCapFault,
		Mechanism: obs.MechCapability,
		Denied:    true,
		Src:       t.name,
		Detail:    detail,
	})
}

// objName best-effort resolves an object ID to a human name for events.
func (k *Kernel) objName(id ObjID) string {
	if ep, ok := k.eps[id]; ok {
		return ep.name
	}
	if t, ok := k.tcbs[id]; ok {
		return t.name
	}
	return fmt.Sprintf("obj-%d", id)
}

// endSpan closes t's open Call span, if any, observing round-trip latency
// on delivery.
func (k *Kernel) endSpan(t *tcb, outcome obs.Outcome) {
	if t.span == 0 {
		return
	}
	s, ok := k.tracer.End(t.span, outcome)
	t.span = 0
	if ok && outcome == obs.OutcomeDelivered {
		k.mCallNs.Observe(time.Duration(s.Duration()))
	}
}

// freeSlot finds the lowest empty CSpace slot.
func freeSlot(t *tcb) (CPtr, bool) {
	for i := range t.cspace {
		if t.cspace[i].IsNull() {
			return CPtr(i), true
		}
	}
	return 0, false
}

// tcbOf maps a trapping PID to its TCB.
func (k *Kernel) tcbOf(pid machine.PID) *tcb {
	t, ok := k.byPID[pid]
	if !ok {
		panic(fmt.Sprintf("sel4: trap from unknown pid %d", pid))
	}
	return t
}
