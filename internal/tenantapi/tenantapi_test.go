package tenantapi

import (
	"strings"
	"testing"
	"time"

	"mkbas/internal/httpmini"
	"mkbas/internal/obs"
	"mkbas/internal/polcheck/monitor"
)

// testClock is a manually advanced virtual clock.
type testClock struct{ ns int64 }

func (c *testClock) now() obs.Time { return obs.Time(c.ns) }
func (c *testClock) step(d time.Duration) {
	c.ns += int64(d)
}

// newTestGateway builds a small tier: 4 rooms, 8 occupants, 1 manager,
// 1 vendor, a generous admission budget, and a 5 req/s bucket.
func newTestGateway(t *testing.T, clk *testClock) (*Gateway, *Directory, *obs.EventLog) {
	t.Helper()
	dir := NewDirectory(DirectoryConfig{Seed: 42, Rooms: 4, Occupants: 8, Managers: 1, Vendors: 1})
	events := obs.NewEventLog(clk.now, 0)
	gw := NewGateway(dir, NewSimBackend(4, clk.now), GatewayConfig{
		Now:          clk.now,
		RatePerSec:   5,
		Burst:        10,
		AdmitPerTick: 1000,
		Registry:     obs.NewRegistry(),
		Events:       events,
	})
	return gw, dir, events
}

func handle(gw *Gateway, req Request) (Outcome, *Response) {
	var resp Response
	out := gw.Handle(&req, &resp)
	return out, &resp
}

func TestTokenDerivationDeterministic(t *testing.T) {
	cfg := DirectoryConfig{Seed: 7, Rooms: 4, Occupants: 4, Managers: 1, Vendors: 1}
	a, b := NewDirectory(cfg), NewDirectory(cfg)
	for i := 0; i < a.Len(); i++ {
		if a.At(i).Token != b.At(i).Token {
			t.Fatalf("principal %d: tokens differ across identically seeded directories", i)
		}
		if !strings.HasPrefix(a.At(i).Token, "tok-") || len(a.At(i).Token) != 20 {
			t.Fatalf("principal %d: malformed token %q", i, a.At(i).Token)
		}
	}
	cfg.Seed = 8
	c := NewDirectory(cfg)
	if c.At(0).Token == a.At(0).Token {
		t.Fatal("different seeds minted the same token")
	}
	// Tokens must be unique within a directory.
	seen := map[string]bool{}
	for i := 0; i < a.Len(); i++ {
		if seen[a.At(i).Token] {
			t.Fatalf("duplicate token at %d", i)
		}
		seen[a.At(i).Token] = true
	}
}

func TestRoleMatrix(t *testing.T) {
	clk := &testClock{}
	gw, dir, _ := newTestGateway(t, clk)
	occ := dir.Find("occupant-0001")
	mgr := dir.Find("manager-0000")
	ven := dir.Find("vendor-0000")

	cases := []struct {
		name string
		req  Request
		want Outcome
	}{
		{"occupant reads own room", Request{Token: occ.Token, Route: RouteStatus, Room: occ.Room}, OutcomeOK},
		{"occupant reads other room", Request{Token: occ.Token, Route: RouteStatus, Room: (occ.Room + 1) % 4}, OutcomeForbidden},
		{"occupant writes setpoint", Request{Token: occ.Token, Route: RouteSetpoint, Room: occ.Room, Value: 22}, OutcomeForbidden},
		{"occupant reads diagnostics", Request{Token: occ.Token, Route: RouteDiagnostics}, OutcomeForbidden},
		{"occupant whoami", Request{Token: occ.Token, Route: RouteWhoAmI}, OutcomeOK},
		{"manager reads any room", Request{Token: mgr.Token, Route: RouteStatus, Room: 3}, OutcomeOK},
		{"manager writes setpoint", Request{Token: mgr.Token, Route: RouteSetpoint, Room: 2, Value: 23.5}, OutcomeOK},
		{"manager out-of-band setpoint", Request{Token: mgr.Token, Route: RouteSetpoint, Room: 2, Value: 35}, OutcomeBadRequest},
		{"manager diagnostics", Request{Token: mgr.Token, Route: RouteDiagnostics}, OutcomeOK},
		{"vendor diagnostics", Request{Token: ven.Token, Route: RouteDiagnostics}, OutcomeOK},
		{"vendor reads room", Request{Token: ven.Token, Route: RouteStatus, Room: 0}, OutcomeForbidden},
		{"vendor writes setpoint", Request{Token: ven.Token, Route: RouteSetpoint, Room: 0, Value: 20}, OutcomeForbidden},
		{"bad token", Request{Token: "tok-ffffffffffffffff", Route: RouteWhoAmI}, OutcomeUnauthorized},
		{"unknown room", Request{Token: mgr.Token, Route: RouteStatus, Room: 99}, OutcomeNotFound},
	}
	for _, tc := range cases {
		clk.step(time.Second) // keep buckets full
		if out, _ := handle(gw, tc.req); out != tc.want {
			t.Errorf("%s: got %s, want %s", tc.name, out, tc.want)
		}
	}
	// The accepted manager write reached the backend.
	if got := gw.backend.(*SimBackend).Setpoint(2); got != 23.5 {
		t.Errorf("setpoint write did not land: room 2 at %.1f, want 23.5", got)
	}
}

func TestRevocationYields401(t *testing.T) {
	clk := &testClock{}
	gw, dir, events := newTestGateway(t, clk)
	occ := dir.Find("occupant-0000")
	if out, _ := handle(gw, Request{Token: occ.Token, Route: RouteWhoAmI}); out != OutcomeOK {
		t.Fatalf("pre-revocation request: %s", out)
	}
	if !dir.Revoke("occupant-0000") {
		t.Fatal("Revoke returned false for a live principal")
	}
	if dir.Revoke("occupant-0000") {
		t.Fatal("double revocation reported success")
	}
	clk.step(time.Second)
	if out, _ := handle(gw, Request{Token: occ.Token, Route: RouteWhoAmI}); out != OutcomeUnauthorized {
		t.Fatalf("replayed revoked token: got %s, want unauthorized", out)
	}
	found := false
	for _, tot := range events.Totals() {
		if tot.Kind == obs.EventAuthDenied && tot.Mechanism == obs.MechSession && tot.Denied {
			found = true
		}
	}
	if !found {
		t.Fatal("no session-auth denial event recorded")
	}
}

func TestRateLimitRefills(t *testing.T) {
	clk := &testClock{ns: int64(time.Hour)}
	gw, dir, _ := newTestGateway(t, clk)
	occ := dir.Find("occupant-0002")
	// Burst is 10: the 11th immediate request must shed.
	var out Outcome
	for i := 0; i < 11; i++ {
		out, _ = handle(gw, Request{Token: occ.Token, Route: RouteWhoAmI})
	}
	if out != OutcomeRateLimited {
		t.Fatalf("11th back-to-back request: got %s, want rate-limited", out)
	}
	// 5 req/s: one second refills five tokens.
	clk.step(time.Second)
	okCount := 0
	for i := 0; i < 6; i++ {
		if out, _ := handle(gw, Request{Token: occ.Token, Route: RouteWhoAmI}); out == OutcomeOK {
			okCount++
		}
	}
	if okCount != 5 {
		t.Fatalf("after 1s refill at 5 req/s: served %d, want 5", okCount)
	}
	// Other principals are unaffected.
	if out, _ := handle(gw, Request{Token: dir.Find("occupant-0003").Token, Route: RouteWhoAmI}); out != OutcomeOK {
		t.Fatalf("unrelated principal rate-limited: %s", out)
	}
}

func TestBackpressureShedsBeforeAuth(t *testing.T) {
	clk := &testClock{ns: int64(time.Hour)}
	dir := NewDirectory(DirectoryConfig{Seed: 1, Rooms: 2, Occupants: 2, Managers: 1, Vendors: 1})
	events := obs.NewEventLog(clk.now, 0)
	gw := NewGateway(dir, NewSimBackend(2, clk.now), GatewayConfig{
		Now: clk.now, RatePerSec: 1000, Burst: 2000, AdmitPerTick: 8, Events: events,
	})
	mgr := dir.Find("manager-0000")
	shed := 0
	for i := 0; i < 20; i++ {
		if out, _ := handle(gw, Request{Token: mgr.Token, Route: RouteWhoAmI}); out == OutcomeOverload {
			shed++
		}
	}
	if shed != 12 {
		t.Fatalf("20 requests into an 8-per-tick budget: shed %d, want 12", shed)
	}
	// The next tick re-admits.
	clk.step(10 * time.Millisecond)
	if out, _ := handle(gw, Request{Token: mgr.Token, Route: RouteWhoAmI}); out != OutcomeOK {
		t.Fatalf("after tick rollover: %s, want ok", out)
	}
	found := false
	for _, tot := range events.Totals() {
		if tot.Kind == obs.EventOverload && tot.Mechanism == obs.MechBackpressure {
			found = true
		}
	}
	if !found {
		t.Fatal("no backpressure overload event recorded")
	}
}

// TestDemotionShrinksReachableSet is the satellite-2 contract: demoting a
// compromised tenant origin turns its certified edges off, so the role's
// reachable set (the routes the monitor admits) shrinks to nothing while
// other roles keep their certified edges.
func TestDemotionShrinksReachableSet(t *testing.T) {
	clk := &testClock{ns: int64(time.Hour)}
	gw, dir, events := newTestGateway(t, clk)
	occ := dir.Find("occupant-0004")
	mon := gw.Monitor()

	// Certified pre-state: the occupant edge admits room-status.
	if !mon.Check(SubjectOccupant, SubjectGateway, RouteStatus.Label()) {
		t.Fatal("certified occupant edge missing before demotion")
	}
	if out, _ := handle(gw, Request{Token: occ.Token, Route: RouteStatus, Room: occ.Room}); out != OutcomeOK {
		t.Fatal("occupant read refused before demotion")
	}

	if !mon.Demote(SubjectOccupant, monitor.OriginUntrusted) {
		t.Fatal("Demote reported no-op")
	}
	// Every occupant route is now off: the reachable set shrank to zero.
	for rt := Route(0); rt < NumRoutes; rt++ {
		if mon.Check(SubjectOccupant, SubjectGateway, rt.Label()) {
			t.Fatalf("demoted occupant still reaches %s", rt.Label())
		}
	}
	clk.step(time.Second)
	if out, _ := handle(gw, Request{Token: occ.Token, Route: RouteStatus, Room: occ.Room}); out != OutcomeForbidden {
		t.Fatal("demoted occupant request not refused")
	}
	// The manager's edges are untouched.
	if !mon.Check(SubjectManager, SubjectGateway, RouteSetpoint.Label()) {
		t.Fatal("manager edge lost after occupant demotion")
	}
	clk.step(time.Second)
	if out, _ := handle(gw, Request{Token: dir.Find("manager-0000").Token, Route: RouteStatus, Room: 0}); out != OutcomeOK {
		t.Fatal("manager refused after occupant demotion")
	}
	// The refusal names the policy monitor, not static rbac.
	foundPM := false
	for _, tot := range events.Totals() {
		if tot.Kind == obs.EventAuthzDenied && tot.Mechanism == obs.MechPolicyMonitor {
			foundPM = true
		}
	}
	if !foundPM {
		t.Fatal("demotion refusal did not name the policy monitor")
	}
}

func TestAccessGraphShape(t *testing.T) {
	g := AccessGraph()
	// Only the gateway reaches the head-end.
	for _, role := range []string{SubjectOccupant, SubjectManager, SubjectVendor} {
		for _, tgt := range g.SendTargets(role) {
			if tgt.Name == SubjectHeadEnd {
				t.Fatalf("%s holds a direct edge to the head-end", role)
			}
		}
	}
	gwTargets := g.SendTargets(SubjectGateway)
	if len(gwTargets) != 1 || gwTargets[0].Name != SubjectHeadEnd {
		t.Fatalf("gateway targets = %v, want exactly the head-end", gwTargets)
	}
}

func TestHTTPFrontend(t *testing.T) {
	clk := &testClock{ns: int64(time.Hour)}
	gw, dir, _ := newTestGateway(t, clk)
	fe := NewFrontend(gw)
	mgr := dir.Find("manager-0000")

	serve := func(raw string) (int, string) {
		t.Helper()
		var p httpmini.Parser
		p.Feed([]byte(raw))
		req, err := p.Next()
		if err != nil || req == nil {
			t.Fatalf("parse: %v", err)
		}
		resp := fe.Serve(req)
		status, body, err := httpmini.ParseResponse(resp.Render())
		if err != nil {
			t.Fatalf("parse response: %v", err)
		}
		return status, string(body)
	}

	status, body := serve("GET /api/rooms/1/status HTTP/1.0\r\nAuthorization: Bearer " + mgr.Token + "\r\n\r\n")
	if status != 200 || !strings.Contains(body, `"temp_c":`) {
		t.Fatalf("status read: %d %q", status, body)
	}
	clk.step(time.Second)
	form := "value=24.5"
	status, body = serve("POST /api/rooms/1/setpoint HTTP/1.0\r\nAuthorization: Bearer " + mgr.Token +
		"\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 10\r\n\r\n" + form)
	if status != 200 || !strings.Contains(body, `"setpoint":24.5`) {
		t.Fatalf("setpoint write: %d %q", status, body)
	}
	clk.step(time.Second)
	occ := dir.Find("occupant-0000")
	if status, _ = serve("POST /api/rooms/1/setpoint HTTP/1.0\r\nAuthorization: Bearer " + occ.Token +
		"\r\nContent-Length: 10\r\nContent-Type: application/x-www-form-urlencoded\r\n\r\n" + form); status != 403 {
		t.Fatalf("occupant setpoint write over HTTP: %d, want 403", status)
	}
	clk.step(time.Second)
	if status, _ = serve("GET /api/whoami HTTP/1.0\r\n\r\n"); status != 401 {
		t.Fatalf("tokenless request: %d, want 401", status)
	}
	if status, _ = serve("GET /api/whoami?token=" + mgr.Token + " HTTP/1.0\r\n\r\n"); status != 200 {
		t.Fatalf("query-token request: %d, want 200", status)
	}
	if status, _ = serve("GET /api/nosuch HTTP/1.0\r\nAuthorization: Bearer " + mgr.Token + "\r\n\r\n"); status != 404 {
		t.Fatalf("unknown route: %d, want 404", status)
	}
	if status, _ = serve("POST /api/whoami HTTP/1.0\r\nAuthorization: Bearer " + mgr.Token + "\r\nContent-Length: 0\r\n\r\n"); status != 405 {
		t.Fatalf("wrong method: %d, want 405", status)
	}
	if status, _ = serve("GET /api/rooms/xx/status HTTP/1.0\r\nAuthorization: Bearer " + mgr.Token + "\r\n\r\n"); status != 400 {
		t.Fatalf("non-numeric room: %d, want 400", status)
	}
}
