// Quickstart: boot the security-enhanced MINIX 3 platform on a simulated
// controller board, let the temperature control scenario run for half an
// hour of virtual time, and interact with it the way an administrator would
// — over the web interface.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"mkbas/internal/bas"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A testbed is the physical side: one board, one thermal "room" with a
	// temperature sensor, a heater, and an alarm LED, plus a virtual
	// network. Everything is deterministic — run it twice, get identical
	// traces.
	cfg := bas.DefaultScenario()
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()

	// Deploy the paper's five-process scenario on MINIX 3 with the access
	// control matrix compiled in. The scenario loader forks each process
	// with its ac_id; the kernel enforces the IPC policy from then on.
	mdep, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{})
	if err != nil {
		return err
	}
	dep := mdep.(*bas.MinixDeployment)

	fmt.Printf("room starts at %.1f°C, setpoint is %.1f°C\n",
		tb.Room.Temperature(), cfg.Controller.Setpoint)

	// Run 30 minutes of virtual time: the controller heats the room up.
	tb.Machine.Run(30 * time.Minute)
	fmt.Printf("after 30 minutes the room is at %.2f°C\n", tb.Room.Temperature())

	// Ask the controller for its status over HTTP, like the paper's
	// administrator web interface.
	status, body, err := tb.HTTPGet("/status")
	if err != nil {
		return err
	}
	fmt.Printf("GET /status -> %d: %s", status, body)

	// Move the setpoint to 25 °C and give the controller an hour.
	if _, _, err := tb.HTTPPostSetpoint("25"); err != nil {
		return err
	}
	tb.Machine.Run(time.Hour)
	fmt.Printf("after the setpoint change the room is at %.2f°C\n", tb.Room.Temperature())

	// Peek at the kernel's audit state: in a healthy run the ACM denied
	// nothing, and the process manager granted exactly the loader's forks.
	stats := dep.Kernel.Stats()
	fmt.Printf("kernel: %d IPC delivered, %d denied by the ACM, %d device writes\n",
		stats.IPCDelivered, stats.IPCDenied, stats.DevWrites)
	fmt.Printf("PM: %d forks granted, %d denied\n",
		dep.Kernel.PM().ForksGranted(), dep.Kernel.PM().ForksDenied())
	return nil
}
