package httpmini

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleGet(t *testing.T) {
	var p Parser
	p.Feed([]byte("GET /status HTTP/1.0\r\nHost: controller\r\n\r\n"))
	req, err := p.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if req == nil {
		t.Fatal("request incomplete")
	}
	if req.Method != "GET" || req.Path != "/status" || req.Proto != "HTTP/1.0" {
		t.Fatalf("parsed %+v", req)
	}
	if req.Headers["host"] != "controller" {
		t.Fatalf("headers = %v", req.Headers)
	}
}

func TestParseIncremental(t *testing.T) {
	var p Parser
	raw := "POST /setpoint HTTP/1.0\r\nContent-Length: 7\r\nContent-Type: application/x-www-form-urlencoded\r\n\r\nvalue=9"
	for i := 0; i < len(raw); i++ {
		p.Feed([]byte{raw[i]})
		req, err := p.Next()
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		if req != nil {
			if i != len(raw)-1 {
				t.Fatalf("request completed early at byte %d", i)
			}
			if got := req.FormValue("value"); got != "9" {
				t.Fatalf("form value = %q", got)
			}
			return
		}
	}
	t.Fatal("request never completed")
}

func TestParsePipelined(t *testing.T) {
	var p Parser
	p.Feed([]byte("GET /a HTTP/1.0\r\n\r\nGET /b HTTP/1.0\r\n\r\n"))
	r1, err := p.Next()
	if err != nil || r1 == nil || r1.Path != "/a" {
		t.Fatalf("first = %+v, %v", r1, err)
	}
	r2, err := p.Next()
	if err != nil || r2 == nil || r2.Path != "/b" {
		t.Fatalf("second = %+v, %v", r2, err)
	}
	r3, err := p.Next()
	if err != nil || r3 != nil {
		t.Fatalf("third = %+v, %v (want pending)", r3, err)
	}
}

func TestQueryDecoding(t *testing.T) {
	var p Parser
	p.Feed([]byte("GET /set?temp=21.5&note=hi+there%21 HTTP/1.0\r\n\r\n"))
	req, err := p.Next()
	if err != nil || req == nil {
		t.Fatalf("Next: %v", err)
	}
	if req.Query["temp"] != "21.5" {
		t.Fatalf("temp = %q", req.Query["temp"])
	}
	if req.Query["note"] != "hi there!" {
		t.Fatalf("note = %q", req.Query["note"])
	}
}

func TestRejectBadMethod(t *testing.T) {
	var p Parser
	p.Feed([]byte("DELETE /x HTTP/1.0\r\n\r\n"))
	if _, err := p.Next(); !errors.Is(err, ErrBadMethod) {
		t.Fatalf("err = %v, want ErrBadMethod", err)
	}
}

func TestRejectMalformed(t *testing.T) {
	for _, raw := range []string{
		"GARBAGE\r\n\r\n",
		"GET /x HTTP/1.0\r\nBadHeaderNoColon\r\n\r\n",
		"GET /x FTP/1.0\r\n\r\n",
		"POST /x HTTP/1.0\r\nContent-Length: -5\r\n\r\n",
		"POST /x HTTP/1.0\r\nContent-Length: abc\r\n\r\n",
	} {
		var p Parser
		p.Feed([]byte(raw))
		if _, err := p.Next(); err == nil {
			t.Errorf("accepted malformed request %q", raw)
		}
	}
}

func TestOversizeBodyRejected(t *testing.T) {
	var p Parser
	p.Feed([]byte(fmt.Sprintf("POST /x HTTP/1.0\r\nContent-Length: %d\r\n\r\n", maxBodyBytes+1)))
	if _, err := p.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestOversizeHeaderRejected(t *testing.T) {
	var p Parser
	p.Feed([]byte("GET /" + strings.Repeat("a", maxHeaderBytes+10) + " HTTP/1.0\r\n"))
	if _, err := p.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestResponseRenderAndParse(t *testing.T) {
	resp := Text(200, "temp=21.0 setpoint=21.0 heater=on alarm=off")
	raw := resp.Render()
	if !bytes.HasPrefix(raw, []byte("HTTP/1.0 200 OK\r\n")) {
		t.Fatalf("render = %q", raw)
	}
	status, body, err := ParseResponse(raw)
	if err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	if status != 200 || !bytes.Contains(body, []byte("heater=on")) {
		t.Fatalf("status=%d body=%q", status, body)
	}
}

func TestResponseDeterministicHeaderOrder(t *testing.T) {
	r := &Response{Status: 200, Headers: map[string]string{"B": "2", "A": "1", "C": "3"}}
	first := string(r.Render())
	for i := 0; i < 10; i++ {
		if got := string(r.Render()); got != first {
			t.Fatal("header order not deterministic")
		}
	}
	if !strings.Contains(first, "A: 1\r\nB: 2\r\nC: 3\r\n") {
		t.Fatalf("headers not sorted: %q", first)
	}
}

func TestUnescapeProperty(t *testing.T) {
	// Escaping then unescaping simple ASCII strings is the identity.
	f := func(s string) bool {
		var esc strings.Builder
		for i := 0; i < len(s); i++ {
			fmt.Fprintf(&esc, "%%%02X", s[i])
		}
		return unescape(esc.String()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnescapeInvalidPassthrough(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"%", "%"},
		{"%Z", "%Z"},
		{"%zz", "%zz"},
		{"a%2", "a%2"},
		{"100%", "100%"},
	} {
		if got := unescape(tc.in); got != tc.want {
			t.Errorf("unescape(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseResponseErrors(t *testing.T) {
	if _, _, err := ParseResponse([]byte("junk")); err == nil {
		t.Fatal("accepted junk response")
	}
	if _, _, err := ParseResponse([]byte("HTTP/1.0 abc X\r\n\r\n")); err == nil {
		t.Fatal("accepted non-numeric status")
	}
}

func TestFormValueFromBody(t *testing.T) {
	var p Parser
	p.Feed([]byte("POST /setpoint HTTP/1.0\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 10\r\n\r\nvalue=23.5"))
	req, err := p.Next()
	if err != nil || req == nil {
		t.Fatalf("Next: %v", err)
	}
	if got := req.FormValue("value"); got != "23.5" {
		t.Fatalf("FormValue = %q", got)
	}
	if got := req.FormValue("missing"); got != "" {
		t.Fatalf("missing FormValue = %q", got)
	}
}
