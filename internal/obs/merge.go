package obs

import (
	"sort"
	"time"
)

// Cross-board merge helpers. The fleet runner (internal/lab) boots many
// independent boards and folds their per-shard reports into one aggregate;
// these helpers define the fold so its output is a deterministic function of
// the inputs alone — sorted by key, never by arrival order.

// MergeCounters sums counter rows from many boards by name. Inputs need not
// be sorted; the result is sorted by name, matching Registry.Counters.
func MergeCounters(sets ...[]CounterSnap) []CounterSnap {
	sums := make(map[string]int64)
	for _, set := range sets {
		for _, c := range set {
			sums[c.Name] += c.Value
		}
	}
	out := make([]CounterSnap, 0, len(sums))
	for name, v := range sums {
		out = append(out, CounterSnap{Name: name, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MergeEventTotals sums event totals from many boards by (kind, mechanism,
// denied). The result is sorted exactly like EventLog.Totals.
func MergeEventTotals(sets ...[]EventTotal) []EventTotal {
	type key struct {
		Kind      EventKind
		Mechanism Mechanism
		Denied    bool
	}
	sums := make(map[key]int64)
	for _, set := range sets {
		for _, t := range set {
			sums[key{t.Kind, t.Mechanism, t.Denied}] += t.Count
		}
	}
	out := make([]EventTotal, 0, len(sums))
	for k, n := range sums {
		out = append(out, EventTotal{Kind: k.Kind, Mechanism: k.Mechanism, Denied: k.Denied, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Mechanism != b.Mechanism {
			return a.Mechanism < b.Mechanism
		}
		return !a.Denied && b.Denied
	})
	return out
}

// MergeMechanisms unions sorted mechanism lists from many boards.
func MergeMechanisms(sets ...[]Mechanism) []Mechanism {
	seen := make(map[Mechanism]bool)
	for _, set := range sets {
		for _, m := range set {
			seen[m] = true
		}
	}
	out := make([]Mechanism, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MergeHistograms sums histogram snapshots from many boards by name, bucket
// by bucket, and recomputes the quantile estimates from the merged buckets
// with the same estimator Histogram.Quantile uses — so a merged p95 is what
// a single board observing every sample would have reported. Snapshots that
// share a name must share bucket bounds (they do when built by the same
// code); a set with mismatched bounds is dropped rather than mis-summed.
// The result is sorted by name, matching Registry.Histograms.
func MergeHistograms(sets ...[]HistogramSnap) []HistogramSnap {
	merged := make(map[string]*Histogram)
	for _, set := range sets {
		for _, snap := range set {
			if len(snap.Buckets) == 0 {
				continue
			}
			h, ok := merged[snap.Name]
			if !ok {
				h = &Histogram{
					bounds: make([]time.Duration, len(snap.Buckets)-1),
					counts: make([]int64, len(snap.Buckets)),
				}
				for i, b := range snap.Buckets[:len(snap.Buckets)-1] {
					h.bounds[i] = time.Duration(b.UpperNanos)
				}
				merged[snap.Name] = h
			}
			if len(snap.Buckets) != len(h.counts) {
				continue
			}
			match := true
			for i, b := range snap.Buckets[:len(snap.Buckets)-1] {
				if time.Duration(b.UpperNanos) != h.bounds[i] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			for i, b := range snap.Buckets {
				h.counts[i] += b.Count
			}
			h.sum += snap.SumNanos
			h.total += snap.Count
		}
	}
	out := make([]HistogramSnap, 0, len(merged))
	for name, h := range merged {
		snap := HistogramSnap{
			Name:     name,
			Count:    h.total,
			SumNanos: h.sum,
			P50Ns:    int64(h.Quantile(0.50)),
			P95Ns:    int64(h.Quantile(0.95)),
			P99Ns:    int64(h.Quantile(0.99)),
		}
		for i, b := range h.bounds {
			snap.Buckets = append(snap.Buckets, BucketSnap{UpperNanos: int64(b), Count: h.counts[i]})
		}
		snap.Buckets = append(snap.Buckets, BucketSnap{UpperNanos: 0, Count: h.counts[len(h.bounds)]})
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
