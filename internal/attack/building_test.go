package attack

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"mkbas/internal/bas"
)

func buildingMix() []bas.Platform {
	return []bas.Platform{bas.PlatformLinux, bas.PlatformMinix, bas.PlatformSel4}
}

func buildingEvenSecure(rooms int) []bool {
	out := make([]bool, rooms)
	for i := range out {
		out[i] = i%2 == 0
	}
	return out
}

// TestBuildingBaselineAllSecure: without an attacker the building verdict
// table is all-SECURE and the head-end stays quiet.
func TestBuildingBaselineAllSecure(t *testing.T) {
	rep, err := ExecuteBuilding(BuildingSpec{
		Rooms:  3,
		Mix:    buildingMix(),
		Secure: buildingEvenSecure(3),
		Attack: false,
		Settle: 12 * time.Minute,
		Window: 8 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alarm {
		t.Fatalf("baseline building raised the alarm: flagged %v", rep.Flagged)
	}
	for _, o := range rep.Outcomes {
		if o.Verdict != "SECURE" {
			t.Fatalf("room %d: verdict %s, want SECURE", o.Room, o.Verdict)
		}
		if o.FramesRejected != 0 {
			t.Fatalf("room %d: %d frames rejected with no attacker", o.Room, o.FramesRejected)
		}
	}
}

// TestBuildingLateralMovement is experiment E11's acceptance case: a 16-room
// mixed-platform building under the room-0 lateral-movement attack. Legacy
// rooms obey forged frames and overheat (COMPROMISED); secure-proxy rooms
// drop both forgeries and replays (SECURE); the whole report — verdicts,
// tallies, physics — is byte-identical between 1 and 8 workers.
func TestBuildingLateralMovement(t *testing.T) {
	run := func(workers int) (*BuildingReport, []byte) {
		rep, err := ExecuteBuilding(BuildingSpec{
			Rooms:   16,
			Mix:     buildingMix(),
			Secure:  buildingEvenSecure(16),
			Attack:  true,
			Settle:  30 * time.Minute,
			Window:  45 * time.Minute,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return rep, out
	}

	rep, serial := run(1)
	_, parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("building attack report diverged between 1 and 8 workers:\n1: %d bytes\n8: %d bytes", len(serial), len(parallel))
	}

	if rep.Outcomes[0].Verdict != "FOOTHOLD" {
		t.Fatalf("room 0 verdict = %s, want FOOTHOLD", rep.Outcomes[0].Verdict)
	}
	if rep.CapturedFrames == 0 {
		t.Fatal("attacker captured nothing off the shared bus")
	}
	for _, o := range rep.Outcomes[1:] {
		if o.Secure {
			if o.Verdict != "SECURE" {
				t.Fatalf("secure room %d (%s): verdict %s, want SECURE", o.Room, o.Platform, o.Verdict)
			}
			if o.ForgedAccepted != 0 || o.ReplaysAccepted != 0 {
				t.Fatalf("secure room %d accepted attacker frames: %+v", o.Room, o)
			}
			if o.ForgedDenied == 0 {
				t.Fatalf("secure room %d: no forged frames recorded as denied", o.Room)
			}
			if o.ReplaysDenied == 0 {
				t.Fatalf("secure room %d: no replays recorded as denied (capture path broken?)", o.Room)
			}
			if o.FramesRejected == 0 {
				t.Fatalf("secure room %d: proxy rejected nothing", o.Room)
			}
		} else {
			if o.Verdict != "COMPROMISED" {
				t.Fatalf("legacy room %d (%s): verdict %s, want COMPROMISED", o.Room, o.Platform, o.Verdict)
			}
			if o.ForgedAccepted == 0 {
				t.Fatalf("legacy room %d never acked a forged write", o.Room)
			}
			if o.Violations == 0 {
				t.Fatalf("legacy room %d compromised without safety violations", o.Room)
			}
			if !o.BMSFlagged {
				t.Fatalf("legacy room %d overheated but the head-end never flagged it", o.Room)
			}
		}
	}
	if !rep.Alarm {
		t.Fatal("building alarm not raised while legacy rooms overheated")
	}
}
