package machine

import "fmt"

// PID identifies a simulated process on one board. PIDs are engine-level
// identities; kernels layer their own notions (endpoints, ac_ids, Unix pids)
// on top.
type PID int32

// NoPID is the zero PID; valid processes start at 1.
const NoPID PID = 0

// ProcState is the engine-level lifecycle state of a process.
type ProcState int

// Process lifecycle states.
const (
	// StateNew means the goroutine exists but has never been scheduled.
	StateNew ProcState = iota + 1
	// StateReady means the process has a pending trap reply and is waiting
	// for CPU.
	StateReady
	// StateRunning means the process is executing user code; the engine is
	// waiting for its next trap.
	StateRunning
	// StateBlocked means the kernel has parked the process; it owns no CPU
	// and has no pending reply.
	StateBlocked
	// StateDead means the process has exited, crashed, or been killed.
	StateDead
)

// String returns the conventional short name of the state.
func (s ProcState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// killSentinel is delivered on a process's resume channel to force it to
// unwind. The body wrapper recognises the resulting panic and treats it as a
// kill rather than a crash.
type killSentinel struct{}

// ExitInfo describes how a process left the system.
type ExitInfo struct {
	// Crashed is true when the body panicked (a fault, in OS terms).
	Crashed bool
	// Killed is true when the process was destroyed by the kernel.
	Killed bool
	// PanicValue holds the recovered panic value when Crashed is true.
	PanicValue any
}

// Proc is the engine-level process control block.
type Proc struct {
	pid   PID
	name  string
	prio  int
	state ProcState

	engine *Engine
	body   func(ctx *Context)

	// resume carries trap replies (and the kill sentinel) from the engine to
	// the parked goroutine. It is unbuffered: a handoff is a context switch.
	resume chan any
	// done is closed by the body wrapper when the goroutine has fully
	// unwound.
	done chan struct{}

	// pendingReply is delivered at the next dispatch while the proc is Ready.
	pendingReply any

	// dying is set (by the process's own goroutine) when the kill sentinel
	// arrives, so deferred cleanup running during unwinding cannot trap into
	// a kernel that is no longer listening.
	dying bool

	// Accounting.
	traps    int64
	switches int64
}

// PID returns the process identifier.
func (p *Proc) PID() PID { return p.pid }

// Name returns the human-readable process name.
func (p *Proc) Name() string { return p.name }

// Priority returns the scheduling priority (lower is more urgent).
func (p *Proc) Priority() int { return p.prio }

// State returns the engine-level lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Traps returns the number of traps this process has taken.
func (p *Proc) Traps() int64 { return p.traps }

// Switches returns the number of times this process was context-switched in.
func (p *Proc) Switches() int64 { return p.switches }

// Context is the view of the board a process body receives. All interaction
// with the outside world goes through Trap, which hands control to the
// kernel.
type Context struct {
	proc *Proc
}

// PID returns the identity of the calling process.
func (c *Context) PID() PID { return c.proc.pid }

// Name returns the name of the calling process.
func (c *Context) Name() string { return c.proc.name }

// Now returns the current virtual time. Reading the clock is free; it does
// not trap.
func (c *Context) Now() Time { return c.proc.engine.clock.Now() }

// Trap synchronously invokes the kernel with an arbitrary request and returns
// the kernel's reply. The calling goroutine yields the virtual CPU until the
// kernel schedules it again; from the process's perspective the call simply
// blocks.
//
// If the process is killed while parked inside Trap, the call never returns:
// the goroutine unwinds via an internal panic that the engine recovers.
// Deferred cleanup that traps during that unwinding re-panics immediately —
// a dead process gets no more system calls.
func (c *Context) Trap(req any) any {
	p := c.proc
	if p.dying {
		panic(killSentinel{})
	}
	p.engine.trapCh <- trapMsg{pid: p.pid, req: req}
	reply := <-p.resume
	if _, killed := reply.(killSentinel); killed {
		p.dying = true
		panic(killSentinel{})
	}
	return reply
}

// trapMsg is one trap in flight from a process to the engine.
type trapMsg struct {
	pid PID
	req any
}

// bodyExit is the internal trap sent by the body wrapper when a process body
// returns or panics.
type bodyExit struct {
	crashed    bool
	panicValue any
}
