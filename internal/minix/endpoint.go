package minix

import "fmt"

// Endpoint identifies a process uniquely for IPC addressing: the process
// slot number concatenated with a generation number, exactly as in MINIX 3.
// Slot numbers are recycled when processes die; generations are not, so a
// message addressed to a dead process's endpoint fails instead of reaching
// whatever reused the slot.
type Endpoint uint32

// Special endpoints.
const (
	// EndpointNone is the zero endpoint; no process ever has it.
	EndpointNone Endpoint = 0
	// EndpointAny is the wildcard source for Receive.
	EndpointAny Endpoint = 0xFFFFFFFF
)

// slotBits is the width of the slot field; the rest is generation.
const slotBits = 12

// maxSlots bounds the process table, like MINIX's NR_PROCS.
const maxSlots = 1 << slotBits

// makeEndpoint composes slot and generation.
func makeEndpoint(slot, generation int) Endpoint {
	return Endpoint(uint32(generation)<<slotBits | uint32(slot)&(maxSlots-1))
}

// EndpointAt composes an endpoint value from a slot and generation. The
// encoding is public knowledge (any process can do this arithmetic), which
// is exactly why endpoint *guessing* must not confer authority — the ACM
// decides, not possession of the number. The attack experiments use this to
// scan the endpoint space.
func EndpointAt(slot, generation int) Endpoint { return makeEndpoint(slot, generation) }

// Slot extracts the process-table slot.
func (e Endpoint) Slot() int { return int(uint32(e) & (maxSlots - 1)) }

// Generation extracts the generation counter.
func (e Endpoint) Generation() int { return int(uint32(e) >> slotBits) }

// String renders "ep(slot:gen)".
func (e Endpoint) String() string {
	switch e {
	case EndpointNone:
		return "ep(none)"
	case EndpointAny:
		return "ep(any)"
	default:
		return fmt.Sprintf("ep(%d:%d)", e.Slot(), e.Generation())
	}
}
