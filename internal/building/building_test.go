package building

import (
	"bytes"
	"testing"
	"time"

	"mkbas/internal/bas"
)

func paperMix() []bas.Platform {
	return []bas.Platform{bas.PlatformLinux, bas.PlatformMinix, bas.PlatformSel4}
}

// evenSecure marks even-numbered rooms secure.
func evenSecure(rooms int) []bool {
	out := make([]bool, rooms)
	for i := range out {
		out[i] = i%2 == 0
	}
	return out
}

func TestBuildingPollsSchedulesAndStaysInBand(t *testing.T) {
	b, err := New(Config{
		Rooms:  4,
		Mix:    paperMix(),
		Secure: evenSecure(4),
		HeadEnd: HeadEndConfig{
			Schedule: []SetpointEvent{{At: 20 * time.Minute, Value: 21}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Run(40 * time.Minute)

	rep := b.Report()
	if rep.Alarm {
		t.Fatalf("healthy building raised the alarm: flagged %v", rep.Flagged)
	}
	if rep.Setpoint != 21 {
		t.Fatalf("scheduled setpoint = %v, want 21", rep.Setpoint)
	}
	if rep.WritesSent != 4 {
		t.Fatalf("writes sent = %d, want 4 (one per room)", rep.WritesSent)
	}
	if rep.PollsAnswered == 0 || rep.PollsMissed != 0 {
		t.Fatalf("polls answered/missed = %d/%d", rep.PollsAnswered, rep.PollsMissed)
	}
	for _, rr := range rep.RoomReports {
		if !rr.BMS.HaveTemp {
			t.Fatalf("room %d: BMS never saw a temperature", rr.Room)
		}
		if rr.BMS.Writes != 1 {
			t.Fatalf("room %d: %d acked writes, want 1", rr.Room, rr.BMS.Writes)
		}
		// Demand-response reached the physical room on every platform.
		if rr.RoomTemp < 20 || rr.RoomTemp > 22 {
			t.Fatalf("room %d (%s): temp %.2f, want ~21 after schedule", rr.Room, rr.Platform, rr.RoomTemp)
		}
		if !rr.ControllerAlive {
			t.Fatalf("room %d: controller dead", rr.Room)
		}
		if rr.FramesRejected != 0 {
			t.Fatalf("room %d: %d frames rejected with no attacker", rr.Room, rr.FramesRejected)
		}
	}
}

func TestBuildingByteDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		b, err := New(Config{
			Rooms:   16,
			Mix:     paperMix(),
			Secure:  evenSecure(16),
			Workers: workers,
			HeadEnd: HeadEndConfig{
				Schedule: []SetpointEvent{{At: 10 * time.Minute, Value: 23}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		b.Run(20 * time.Minute)
		out, err := b.Report().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("16-room building diverged between 1 and 8 workers:\n1: %d bytes\n8: %d bytes", len(serial), len(parallel))
	}
}

func TestBuildingSensorCrashFlagsExactlyThatRoom(t *testing.T) {
	// The E11 fault scenario: one room's sensor driver crashes on a platform
	// with no recovery; the controller's failsafe engages (heater off, local
	// alarm on) while its reported temperature freezes at the last good
	// sample — so the supervisor can only learn the truth from the room's
	// alarm point, and must flag that room and only that room.
	b, err := New(Config{
		Rooms:  4,
		Mix:    []bas.Platform{bas.PlatformLinux},
		Faults: map[int]string{2: "crash-sensor"}, // fires at 40m
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Run(55 * time.Minute)

	rep := b.Report()
	if !rep.Alarm {
		t.Fatal("building alarm not raised")
	}
	if len(rep.Flagged) != 1 || rep.Flagged[0] != 2 {
		t.Fatalf("flagged rooms = %v, want [2]", rep.Flagged)
	}
	faulted := rep.RoomReports[2]
	if faulted.Faults == nil || faulted.Faults.Injected != 1 {
		t.Fatalf("fault report = %+v", faulted.Faults)
	}
	if !faulted.BMS.AlarmOn {
		t.Fatalf("room 2 BMS state = %+v, want relayed alarm", faulted.BMS)
	}
	// The frozen sensor keeps reporting an in-band temperature: the alarm
	// relay, not the temperature band, is what catches this failure.
	if faulted.BMS.OutOfBand {
		t.Fatalf("room 2 BMS state = %+v: frozen sensor should read in-band", faulted.BMS)
	}
}
