package faultinject

import (
	"fmt"
	"strings"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/obs"
	"mkbas/internal/plant"
)

// Board is the narrow injection surface a deployment exposes to the
// campaign layer. The kernels never import this package; each platform
// binding adapts its kernel's hooks to this interface.
type Board interface {
	// Clock is the board's virtual clock — the only time source used.
	Clock() *machine.Clock
	// Room is the physical plant (sensor and heater faults).
	Room() *plant.Room
	// Events is the board's security-event stream (nil is fine).
	Events() *obs.EventLog
	// Metrics is the board's metric registry (nil is fine).
	Metrics() *obs.Registry
	// CrashProcess kills the named process as if it had crashed, so the
	// platform's recovery path (if any) observes a real crash.
	CrashProcess(name string) error
	// SetIPCFault installs fn as the kernel's IPC fault filter, consulted
	// after policy checks on every message with the platform's (src, dst)
	// names. nil clears it.
	SetIPCFault(fn func(src, dst string) (drop bool, delay time.Duration))
	// Flood opens count host-side connections against the web interface,
	// each writing one request that is never read back.
	Flood(count int) error
}

// window is one active IPC-fault interval.
type window struct {
	from, to machine.Time
	src, dst string // empty = wildcard
	drop     bool
	delay    time.Duration
}

// matches reports whether the window applies to a (src, dst) pair at now.
// A hang window (src == dst == target) matches traffic in either direction.
func (w *window) matches(now machine.Time, src, dst string) bool {
	if now < w.from || now >= w.to {
		return false
	}
	if w.src == w.dst && w.src != "" { // hang: either endpoint
		return nameMatch(src, w.src) || nameMatch(dst, w.src)
	}
	if w.src != "" && !nameMatch(src, w.src) {
		return false
	}
	if w.dst != "" && !nameMatch(dst, w.dst) {
		return false
	}
	return true
}

// nameMatch accepts exact process names plus platform-qualified endpoint
// names like "tempProc.sensor" (seL4) or "/sensor-data" queues that embed
// the process name.
func nameMatch(name, want string) bool {
	return name == want || strings.HasPrefix(name, want+".")
}

// FaultOutcome is the per-fault result row: when it fired and, if a clean
// sensor reading was reacquired afterwards, the mean-time-to-recovery.
// Times are int64 nanoseconds so JSON is integer-exact and deterministic.
type FaultOutcome struct {
	Kind          Kind   `json:"kind"`
	Target        string `json:"target,omitempty"`
	AtNs          int64  `json:"at_ns"`
	Injected      bool   `json:"injected"`
	RecoveredAtNs int64  `json:"recovered_at_ns"` // -1 while unrecovered
	MTTRNs        int64  `json:"mttr_ns"`         // -1 while unrecovered
}

// Report summarises a campaign run on one board.
type Report struct {
	Plan        string         `json:"plan"`
	Faults      []FaultOutcome `json:"faults"`
	Injected    int            `json:"injected"`
	Recovered   int            `json:"recovered"`
	Unrecovered int            `json:"unrecovered"`
	MTTRCount   int64          `json:"mttr_count"`
	MTTRSumNs   int64          `json:"mttr_sum_ns"`
	MTTRMaxNs   int64          `json:"mttr_max_ns"`
}

// Injector is an armed plan on one board.
type Injector struct {
	board    Board
	plan     *Plan
	armed    machine.Time
	windows  []window
	outcomes []FaultOutcome
	earliest []machine.Time // per fault: first instant a clean read counts
}

// Arm validates plan and schedules every fault on the board clock. Call it
// once, after deployment and before running the board. Faults with offsets
// already in the past fire at the next clock step.
func Arm(b Board, plan *Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	for i, f := range plan.Faults {
		if BusKind(f.Kind) {
			return nil, fmt.Errorf("faultinject: fault %d: %s is a bus-level fault; arm it through NewBusInjector, not on a board", i, f.Kind)
		}
	}
	inj := &Injector{board: b, plan: plan, armed: b.Clock().Now()}
	inj.outcomes = make([]FaultOutcome, len(plan.Faults))
	inj.earliest = make([]machine.Time, len(plan.Faults))
	needFilter := false
	for i, f := range plan.Faults {
		at := inj.armed.Add(f.At)
		inj.outcomes[i] = FaultOutcome{
			Kind: f.Kind, Target: f.Target, AtNs: int64(f.At),
			RecoveredAtNs: -1, MTTRNs: -1,
		}
		inj.earliest[i] = at.Add(f.Duration)
		switch f.Kind {
		case KindIPCDrop:
			inj.windows = append(inj.windows, window{
				from: at, to: at.Add(f.Duration), src: f.Src, dst: f.Target, drop: true,
			})
			needFilter = true
		case KindIPCDelay:
			inj.windows = append(inj.windows, window{
				from: at, to: at.Add(f.Duration), src: f.Src, dst: f.Target, delay: f.Delay,
			})
			needFilter = true
		case KindDriverHang:
			inj.windows = append(inj.windows, window{
				from: at, to: at.Add(f.Duration), src: f.Target, dst: f.Target, drop: true,
			})
			needFilter = true
		}
	}
	if needFilter {
		b.SetIPCFault(inj.filter)
	}
	// The plant read hook is the recovery probe: the first clean sensor
	// reading at or after a fault's effect window closes recovery for it.
	b.Room().SetSensorReadHook(inj.onSensorRead)
	for i := range plan.Faults {
		i := i
		b.Clock().After(plan.Faults[i].At, func() { inj.fire(i) })
	}
	return inj, nil
}

// filter is the kernel-facing IPC fault decision.
func (inj *Injector) filter(src, dst string) (bool, time.Duration) {
	now := inj.board.Clock().Now()
	var delay time.Duration
	for i := range inj.windows {
		w := &inj.windows[i]
		if !w.matches(now, src, dst) {
			continue
		}
		if w.drop {
			return true, 0
		}
		if w.delay > delay {
			delay = w.delay
		}
	}
	return false, delay
}

// fire injects fault i at its scheduled instant.
func (inj *Injector) fire(i int) {
	f := inj.plan.Faults[i]
	inj.outcomes[i].Injected = true
	if ev := inj.board.Events(); ev != nil {
		ev.Emit(obs.SecurityEvent{
			Kind:      obs.EventFaultInjected,
			Mechanism: obs.MechFaultInject,
			Src:       "faultinject",
			Dst:       f.Target,
			Detail:    f.String(),
		})
	}
	if reg := inj.board.Metrics(); reg != nil {
		reg.Counter("fault_injected_total").Inc()
	}
	room := inj.board.Room()
	clock := inj.board.Clock()
	switch f.Kind {
	case KindDriverCrash:
		if err := inj.board.CrashProcess(f.Target); err != nil && inj.board.Events() != nil {
			inj.board.Events().Emit(obs.SecurityEvent{
				Kind:      obs.EventFaultInjected,
				Mechanism: obs.MechFaultInject,
				Src:       "faultinject",
				Dst:       f.Target,
				Detail:    "crash failed: " + err.Error(),
			})
		}
	case KindSensorStuck:
		room.StickSensor(f.Value)
		if f.Duration > 0 {
			clock.After(f.Duration, room.UnstickSensor)
		}
	case KindSensorDrift:
		room.SetSensorDrift(f.Value)
		if f.Duration > 0 {
			clock.After(f.Duration, func() { room.SetSensorDrift(0) })
		}
	case KindHeaterFail:
		room.FailHeater(true)
		if f.Duration > 0 {
			clock.After(f.Duration, func() { room.FailHeater(false) })
		}
	case KindWebFlood:
		if err := inj.board.Flood(f.Count); err != nil && inj.board.Events() != nil {
			inj.board.Events().Emit(obs.SecurityEvent{
				Kind:      obs.EventFaultInjected,
				Mechanism: obs.MechFaultInject,
				Src:       "faultinject",
				Detail:    "flood failed: " + err.Error(),
			})
		}
	case KindDriverHang, KindIPCDrop, KindIPCDelay:
		// Windowed transport faults act through the installed filter.
	}
}

// onSensorRead closes recovery for every injected fault whose effect window
// has passed, the first time a clean reading arrives.
func (inj *Injector) onSensorRead(at machine.Time, _ float64, faulted bool) {
	if faulted {
		return
	}
	for i := range inj.outcomes {
		o := &inj.outcomes[i]
		if !o.Injected || o.RecoveredAtNs >= 0 || at < inj.earliest[i] {
			continue
		}
		o.RecoveredAtNs = int64(at.Sub(inj.armed))
		o.MTTRNs = o.RecoveredAtNs - o.AtNs
		if reg := inj.board.Metrics(); reg != nil {
			reg.Histogram("fault_mttr", nil).Observe(time.Duration(o.MTTRNs))
		}
	}
}

// Report snapshots the campaign outcome. Call after the board run.
func (inj *Injector) Report() *Report {
	r := &Report{Plan: inj.plan.Name, Faults: append([]FaultOutcome(nil), inj.outcomes...)}
	for _, o := range r.Faults {
		if !o.Injected {
			continue
		}
		r.Injected++
		if o.RecoveredAtNs >= 0 {
			r.Recovered++
			r.MTTRCount++
			r.MTTRSumNs += o.MTTRNs
			if o.MTTRNs > r.MTTRMaxNs {
				r.MTTRMaxNs = o.MTTRNs
			}
		} else {
			r.Unrecovered++
		}
	}
	return r
}

// ViolationsDuring counts safety-violation timestamps that fall inside any
// fault's effect window: from injection until recovery (or forever if
// unrecovered). boardStart anchors the outcome offsets to monitor timestamps.
// Taking bare timestamps rather than safety.Violation values keeps this
// package below the safety monitor in the import graph.
func ViolationsDuring(boardStart machine.Time, rep *Report, violationTimes []machine.Time) int {
	n := 0
	for _, at := range violationTimes {
		if InWindow(boardStart, rep, at) {
			n++
		}
	}
	return n
}

// InWindow reports whether instant at falls inside any injected fault's
// effect window: from injection until recovery, open-ended if unrecovered.
func InWindow(boardStart machine.Time, rep *Report, at machine.Time) bool {
	if rep == nil {
		return false
	}
	for _, o := range rep.Faults {
		if !o.Injected {
			continue
		}
		if at < boardStart.Add(time.Duration(o.AtNs)) {
			continue
		}
		if o.RecoveredAtNs >= 0 && at > boardStart.Add(time.Duration(o.RecoveredAtNs)) {
			continue
		}
		return true
	}
	return false
}

// Windows exposes the active transport-fault windows (tests).
func (inj *Injector) Windows() int { return len(inj.windows) }

// Plan returns the armed plan.
func (inj *Injector) Plan() *Plan { return inj.plan }
