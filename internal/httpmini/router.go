package httpmini

import "strings"

// Router dispatches parsed requests to handlers by method and path pattern,
// with an optional authentication hook that runs before any handler. It is
// the routing layer the tenant API tier mounts its routes on; the scenario
// web process keeps its hand-rolled switch.
//
// Patterns are literal segments with ":name" wildcards: "/api/rooms/:room/
// status" matches "/api/rooms/7/status" and passes ["7"] as params, in
// pattern order. Matching is deterministic: registration order, first hit
// wins.

// Handler serves one matched request. params holds the wildcard segment
// values in pattern order.
type Handler func(req *Request, params []string) *Response

// AuthHook inspects a request before routing. A non-nil response
// short-circuits dispatch (the typed 401/403/429/503 the tenant tier
// returns); nil lets the request through.
type AuthHook func(req *Request) *Response

type route struct {
	method   string
	segments []string // ":x" entries are wildcards
}

// Router is an ordered route table.
type Router struct {
	routes   []route
	handlers []Handler
	// Auth, when set, runs before any route match.
	Auth AuthHook
}

// Handle registers a handler for method ("GET"/"POST") and pattern.
func (r *Router) Handle(method, pattern string, h Handler) {
	r.routes = append(r.routes, route{method: method, segments: splitPath(pattern)})
	r.handlers = append(r.handlers, h)
}

// splitPath splits a path into non-empty segments.
func splitPath(p string) []string {
	parts := strings.Split(strings.Trim(p, "/"), "/")
	if len(parts) == 1 && parts[0] == "" {
		return nil
	}
	return parts
}

// Dispatch routes one request: the auth hook first, then the first route
// whose method and segments match. An unmatched path is 404; a matched path
// with the wrong method is 405.
func (r *Router) Dispatch(req *Request) *Response {
	if r.Auth != nil {
		if resp := r.Auth(req); resp != nil {
			return resp
		}
	}
	segs := splitPath(req.Path)
	pathMatched := false
	for i, rt := range r.routes {
		params, ok := matchSegments(rt.segments, segs)
		if !ok {
			continue
		}
		if rt.method != req.Method {
			pathMatched = true
			continue
		}
		return r.handlers[i](req, params)
	}
	if pathMatched {
		return Text(405, "method not allowed\n")
	}
	return Text(404, "not found\n")
}

// matchSegments matches concrete path segments against a pattern, returning
// wildcard values.
func matchSegments(pattern, segs []string) ([]string, bool) {
	if len(pattern) != len(segs) {
		return nil, false
	}
	var params []string
	for i, p := range pattern {
		if strings.HasPrefix(p, ":") {
			params = append(params, segs[i])
			continue
		}
		if p != segs[i] {
			return nil, false
		}
	}
	return params, true
}
