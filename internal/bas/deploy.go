package bas

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mkbas/internal/camkes"
	"mkbas/internal/core"
	"mkbas/internal/faultinject"
	"mkbas/internal/linuxsim"
	"mkbas/internal/machine"
	"mkbas/internal/minix"
	"mkbas/internal/obs"
	"mkbas/internal/perf"
	"mkbas/internal/polcheck"
	"mkbas/internal/polcheck/monitor"
)

// Platform names a deployment backend in the registry. The spellings match
// the attack library's E1 outcome table, so a platform string moves between
// the deploy API, the attack harness, and the fleet runner unchanged.
type Platform string

// Registered platforms. The three headline systems are the paper's
// comparison; the vanilla and hardened variants are the ablations that
// isolate the load-bearing mechanism on each side.
const (
	// PlatformMinix is the security-enhanced MINIX 3 (ACM enforced).
	PlatformMinix Platform = "minix3-acm"
	// PlatformMinixVanilla is MINIX 3 with the ACM disabled (ablation).
	PlatformMinixVanilla Platform = "minix3-vanilla"
	// PlatformSel4 is seL4 with the CAmkES-generated capability system.
	PlatformSel4 Platform = "sel4"
	// PlatformLinux is the same-account Linux deployment (paper default).
	PlatformLinux Platform = "linux"
	// PlatformLinuxHardened is the unique-account Linux deployment.
	PlatformLinuxHardened Platform = "linux-hardened"
)

// AllPlatforms lists the headline platforms in the paper's order.
func AllPlatforms() []Platform {
	return []Platform{PlatformLinux, PlatformMinix, PlatformSel4}
}

// KnownPlatforms lists every registered platform, sorted.
func KnownPlatforms() []Platform {
	out := make([]Platform, 0, len(deployers))
	for p := range deployers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Deployment is the platform-neutral handle on a booted board. Every
// backend returns one, so orchestration layers (the attack harness, the
// fleet runner) drive heterogeneous deployments through one shape.
//
// A Deployment is bound to the single board it booted on: like everything
// else in the simulation, its methods follow the engine-serialised
// discipline of one board and must not be called from another board's
// goroutines.
type Deployment interface {
	// Platform reports which registered backend produced this deployment.
	Platform() Platform
	// Machine returns the underlying virtual board.
	Machine() *machine.Machine
	// Run drives the board for a virtual duration.
	Run(d time.Duration) machine.RunResult
	// Shutdown tears the board down; the deployment is unusable afterwards.
	Shutdown()
	// Report snapshots the board's observability state under this
	// deployment's platform name.
	Report(includeEvents bool) *obs.Report
	// ControllerAlive reports whether the temperature control process (the
	// attack experiments' kill target) is still running.
	ControllerAlive() bool
	// ControllerRestarts reports how many times the platform's recovery
	// machinery reincarnated scenario processes on this boot. Zero on
	// platforms without recovery (vanilla Linux has no supervisor).
	ControllerRestarts() int
	// ControllerRecovered distinguishes "died" from "died and was
	// reincarnated": the control plane is alive now AND at least one restart
	// happened. ControllerAlive alone cannot tell the two apart — it reads
	// true both for a process that never died and for one mid-recovery.
	ControllerRecovered() bool
	// ArmFaults schedules a deterministic fault-injection plan against this
	// board. Call after deploy, before Run; the returned injector reports
	// outcomes (MTTR, unrecovered faults) once the run completes.
	ArmFaults(plan *faultinject.Plan) (*faultinject.Injector, error)
	// PolicyMonitor returns the online policy monitor attached at deploy
	// time, or nil when DeployOptions.Monitor was off.
	PolicyMonitor() *monitor.Monitor
}

// DeployOptions is the platform-neutral option set for Deploy. Each backend
// consults only the fields relevant to it and ignores the rest, so one
// options value can parameterise a whole fleet sweep across platforms.
type DeployOptions struct {
	// SkipPolicyCheck disables the pre-deploy static policy gate. The gate
	// runs whenever the selected platform deploys a mediation policy that
	// claims the scenario's security contract: the MINIX ACM
	// (PlatformMinix), the generated CapDL capability distribution
	// (PlatformSel4), and the hardened unique-account DAC configuration
	// (PlatformLinuxHardened). Configurations that deploy no such policy
	// have nothing to certify and skip the gate regardless of this field:
	// PlatformMinixVanilla (DisableACM — vanilla MINIX enforces nothing)
	// and the same-account PlatformLinux default (every process is one DAC
	// principal, so the mode bits express no per-process policy; that gap
	// is the paper's baseline finding). Attack experiments that
	// deliberately deploy over-permissive policies set it; production
	// paths never should.
	SkipPolicyCheck bool
	// Policy overrides the default core.ScenarioPolicy(). MINIX platforms
	// only.
	Policy *core.Policy
	// WebRoot runs the web interface as uid 0 at boot, modelling the
	// paper's root-escalated attacker. MINIX platforms only: seL4 has no
	// user/root concept, and on Linux the attack harness models escalation
	// at runtime via Kernel.GrantRoot instead.
	WebRoot bool
	// MinixWeb, Sel4Web, and LinuxWeb replace the legitimate web interface
	// with attacker code on the respective platform ("we assume the web
	// interface process can execute arbitrary code"). Only the selected
	// platform's field is consulted; nil keeps the legitimate body.
	MinixWeb func(api *minix.API)
	Sel4Web  func(rt *camkes.Runtime)
	LinuxWeb func(api *linuxsim.API)
	// Recovery enables the optional recovery machinery on platforms where it
	// is a deployment choice rather than part of the platform: the seL4
	// monitor component (watches every scenario thread, respawns the dead
	// from the CapDL spec) and the hardened-Linux supervisor (root
	// supervisord-style respawn loop). MINIX ignores it — the reincarnation
	// server is integral to the platform and always runs. Plain Linux
	// (PlatformLinux) also ignores it: the paper's default deployment has no
	// supervisor, which is exactly the gap the chaos experiment (E10)
	// measures.
	Recovery bool
	// BACnet adds the field-bus gateway process so the board can serve a
	// building's supervisory network. All platforms honour it.
	BACnet BACnetOptions
	// TenantAPI provisions the board-side identity of the occupant-scale
	// tenant API tier: MINIX platforms select the tenant-gateway-extended
	// default policy (the certified ACM row the gateway's setpoint writes
	// and status polls are mediated under), and the Linux monitor graphs
	// gain the gateway's hardened account so tenant traffic is verified
	// against the certified shape. The tier itself (sessions, RBAC, rate
	// limits) runs host-side in internal/tenantapi and fronts the board
	// through the web interface — this option certifies the board half.
	TenantAPI bool
	// Monitor attaches the online policy monitor: every IPC delivery the
	// kernel records is checked, in the same virtual tick, against the
	// certified static access graph for this deployment, and traffic
	// outside it emits a typed policy-drift security event. Unlike the
	// pre-deploy gate, the monitor runs on every configuration — including
	// the ones that enforce nothing (vanilla MINIX, same-account Linux),
	// where runtime verification is the only policy check there is. All
	// platforms honour it.
	Monitor bool
	// Profiler attaches the host-side performance profiler: Deploy books its
	// own wall-clock cost into the "bas.deploy" phase, binds the board engine
	// (engine.run / engine.dispatch phases), and threads the profiler into
	// the policy monitor (monitor.observe). nil profiles nothing — the wired
	// scopes all discard. All platforms honour it. Never marshalled: host
	// profiling is outside the determinism contract.
	Profiler *perf.Profiler `json:"-"`
}

// deployer is one registry entry: boot cfg on tb under opts.
type deployer func(tb *Testbed, cfg ScenarioConfig, opts DeployOptions) (Deployment, error)

// deployers is the platform registry. Variants share a backend: the
// platform value tells the backend which configuration to boot.
var deployers = map[Platform]deployer{
	PlatformMinix: func(tb *Testbed, cfg ScenarioConfig, opts DeployOptions) (Deployment, error) {
		return deployMinix(PlatformMinix, tb, cfg, opts)
	},
	PlatformMinixVanilla: func(tb *Testbed, cfg ScenarioConfig, opts DeployOptions) (Deployment, error) {
		return deployMinix(PlatformMinixVanilla, tb, cfg, opts)
	},
	PlatformSel4: func(tb *Testbed, cfg ScenarioConfig, opts DeployOptions) (Deployment, error) {
		return deploySel4(tb, cfg, opts)
	},
	PlatformLinux: func(tb *Testbed, cfg ScenarioConfig, opts DeployOptions) (Deployment, error) {
		return deployLinux(PlatformLinux, tb, cfg, opts)
	},
	PlatformLinuxHardened: func(tb *Testbed, cfg ScenarioConfig, opts DeployOptions) (Deployment, error) {
		return deployLinux(PlatformLinuxHardened, tb, cfg, opts)
	},
}

// Deploy boots cfg on tb under the named platform — the single entry point
// the per-platform Deploy* wrappers and every orchestration layer route
// through.
func Deploy(platform Platform, tb *Testbed, cfg ScenarioConfig, opts DeployOptions) (Deployment, error) {
	deploy, ok := deployers[platform]
	if !ok {
		known := KnownPlatforms()
		names := make([]string, len(known))
		for i, p := range known {
			names[i] = string(p)
		}
		return nil, fmt.Errorf("bas: unknown platform %q (known: %s)", platform, strings.Join(names, ", "))
	}
	// Bind the board before booting so boot-time engine activity is
	// attributed too; the deploy scope itself covers image construction,
	// policy gating, and process spawning.
	sc := opts.Profiler.Phase("bas.deploy").Begin()
	defer sc.End()
	tb.Machine.SetProfiler(opts.Profiler)
	return deploy(tb, cfg, opts)
}

// deploymentBase carries the platform-independent half of every Deployment.
type deploymentBase struct {
	platform Platform
	tb       *Testbed
	mon      *monitor.Monitor
}

// scenarioOrigins is the OAMAC-style provenance assignment shared by every
// platform's monitor: drivers, actuators, the gateway, and the loader come
// from the verified boot image; the controller is operator logic; the web
// interface is the web-facing surface an exploit lands on. Subject names
// are identical across the three platforms, so one map serves all.
func scenarioOrigins() map[string]monitor.Origin {
	return map[string]monitor.Origin{
		NameTempSensor:    monitor.OriginBoot,
		NameHeaterAct:     monitor.OriginBoot,
		NameAlarmAct:      monitor.OriginBoot,
		NameBACnetGateway: monitor.OriginBoot,
		NameTenantGateway: monitor.OriginBoot,
		NameScenario:      monitor.OriginBoot,
		NameTempControl:   monitor.OriginOperator,
		NameWebInterface:  monitor.OriginWeb,
	}
}

// attachMonitor builds the online verifier over the certified graph and
// subscribes it to the board's IPC record stream. Drift events land in the
// board's own event log, so they surface through Report like any mediation
// event.
func (d *deploymentBase) attachMonitor(g *polcheck.Graph, opts monitor.Options) {
	opts.Events = d.tb.Machine.Obs().Events()
	if opts.Origins == nil {
		opts.Origins = scenarioOrigins()
	}
	d.mon = monitor.New(g, opts)
	d.tb.Machine.IPC().SetObserver(d.mon.Observe)
}

func (d *deploymentBase) PolicyMonitor() *monitor.Monitor { return d.mon }

func (d *deploymentBase) Platform() Platform        { return d.platform }
func (d *deploymentBase) Machine() *machine.Machine { return d.tb.Machine }
func (d *deploymentBase) Run(dur time.Duration) machine.RunResult {
	return d.tb.Machine.Run(dur)
}
func (d *deploymentBase) Shutdown() { d.tb.Machine.Shutdown() }
func (d *deploymentBase) Report(includeEvents bool) *obs.Report {
	return d.tb.Machine.Obs().Report(string(d.platform), includeEvents)
}
