package camkes

import (
	"fmt"
	"sort"

	"mkbas/internal/capdl"
	"mkbas/internal/machine"
	"mkbas/internal/sel4"
	"mkbas/internal/vnet"
)

// BuildConfig parameterises Build.
type BuildConfig struct {
	// Net is the board network stack; required when any component declares
	// NetPorts.
	Net *vnet.Stack
}

// Build boots an seL4 kernel on the board, creates all objects and threads,
// installs the capability distribution that GenerateSpec compiled from the
// assembly, and starts every thread. This is the bootstrap process of Section
// III-C ("the kernel simply hands over all capabilities to the bootstrap
// process ... this bootstrap process can create new processes and distribute
// capabilities to them") driven by the component model, as CAmkES does.
//
// The running system's capabilities are installed FROM the generated spec —
// not built alongside it — so what internal/polcheck analyzes statically is,
// by construction, what the kernel enforces dynamically.
func Build(m *machine.Machine, assembly *Assembly, cfg BuildConfig) (*System, error) {
	spec, err := GenerateSpec(assembly)
	if err != nil {
		return nil, err
	}
	k := sel4.NewKernel(m, sel4.Config{Net: cfg.Net})
	sys := &System{
		kernel:   k,
		spec:     spec,
		assembly: assembly,
		bind:     capdl.Binding{Objects: make(map[string]sel4.ObjID), TCBs: make(map[string]sel4.ObjID)},
		ifaceEP:  make(map[string]sel4.ObjID),
		tcbs:     make(map[string]sel4.ObjID),
		restarts: make(map[string]int),
	}

	// Pass 1: kernel objects, bound to their spec names. One endpoint per
	// provided interface; device and net-port objects shared across
	// components that name them; one notification per consumed event.
	for _, comp := range assembly.Components {
		for _, iface := range sortedIfaces(comp) {
			full := comp.Name + "." + iface
			ep := k.CreateEndpoint(full)
			sys.ifaceEP[full] = ep
			sys.bind.Objects[epObjName(comp.Name, iface)] = ep
		}
	}
	for _, comp := range assembly.Components {
		for _, dev := range comp.Devices {
			if _, ok := sys.bind.Objects[devObjName(dev)]; !ok {
				sys.bind.Objects[devObjName(dev)] = k.CreateDevice(dev)
			}
		}
		for _, port := range comp.NetPorts {
			if _, ok := sys.bind.Objects[portObjName(port)]; !ok {
				sys.bind.Objects[portObjName(port)] = k.CreateNetPort(port)
			}
		}
	}
	for _, comp := range assembly.Components {
		for _, ev := range comp.Consumes {
			sys.bind.Objects[ntfnObjName(comp.Name, ev)] = k.CreateNotification(comp.Name + "." + ev)
		}
	}

	// Pass 2: create threads.
	for _, comp := range assembly.Components {
		for _, th := range componentThreads(comp) {
			tcbID := k.CreateThread(th.name, comp.Priority, threadBody(comp, th.iface))
			sys.tcbs[th.name] = tcbID
			sys.bind.TCBs[th.name] = tcbID
		}
	}

	// Pass 3: install the generated capability distribution, slot by slot.
	for _, t := range spec.TCBs {
		tcbID, ok := sys.tcbs[t.Name]
		if !ok {
			return nil, fmt.Errorf("%w: spec thread %q was not created", ErrBadAssembly, t.Name)
		}
		if err := sys.installSpecCaps(tcbID, t); err != nil {
			return nil, err
		}
	}

	// Pass 4: start everything, servers before control threads so RPC
	// targets exist when Run bodies issue their first calls.
	for _, comp := range assembly.Components {
		for _, th := range componentThreads(comp) {
			if th.iface != "" {
				if err := k.Start(sys.tcbs[th.name]); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, comp := range assembly.Components {
		for _, th := range componentThreads(comp) {
			if th.iface == "" {
				if err := k.Start(sys.tcbs[th.name]); err != nil {
					return nil, err
				}
			}
		}
	}
	return sys, nil
}

// threadBody builds the glue body for one generated thread. Shared between
// Build and System.Respawn so a reincarnated thread runs exactly the code the
// original did.
func threadBody(comp *Component, iface string) func(api *sel4.API) {
	if iface == "" {
		run := comp.Run
		return func(api *sel4.API) {
			run(newRuntime(api, comp))
		}
	}
	handler := comp.Provides[iface]
	return func(api *sel4.API) {
		serveInterface(newRuntime(api, comp), handler)
	}
}

// installSpecCaps installs one spec thread's capability rows into a live TCB.
func (s *System) installSpecCaps(tcbID sel4.ObjID, t capdl.TCBSpec) error {
	kinds := make(map[string]sel4.ObjKind, len(s.spec.Objects))
	for _, o := range s.spec.Objects {
		kinds[o.Name] = o.Kind
	}
	for _, c := range t.Caps {
		objID, ok := s.bind.Objects[c.Object]
		if !ok {
			return fmt.Errorf("%w: spec object %q was not created", ErrBadAssembly, c.Object)
		}
		var cap sel4.Capability
		switch kinds[c.Object] {
		case sel4.KindEndpoint:
			cap = sel4.EndpointCap(objID, c.Rights, c.Badge)
		case sel4.KindNotification:
			cap = sel4.NotificationCap(objID, c.Rights, c.Badge)
		case sel4.KindDevice:
			cap = sel4.DeviceCap(objID, c.Rights)
		case sel4.KindNetPort:
			cap = sel4.NetPortCap(objID, c.Rights)
		default:
			return fmt.Errorf("%w: spec object %q has uninstallable kind %v",
				ErrBadAssembly, c.Object, kinds[c.Object])
		}
		mustInstall(s.kernel, tcbID, c.Slot, cap)
	}
	return nil
}

// thread describes one generated thread of a component.
type thread struct {
	name  string // "comp" or "comp.iface"
	iface string // "" for the control thread
}

// componentThreads lists the threads the glue generates for one component:
// one per provided interface plus a control thread when Run is set.
func componentThreads(comp *Component) []thread {
	var out []thread
	for _, iface := range sortedIfaces(comp) {
		out = append(out, thread{name: comp.Name + "." + iface, iface: iface})
	}
	if comp.Run != nil {
		out = append(out, thread{name: comp.Name})
	}
	return out
}

// sortedIfaces returns the provided interface names in stable order.
func sortedIfaces(comp *Component) []string {
	out := make([]string, 0, len(comp.Provides))
	for iface := range comp.Provides {
		out = append(out, iface)
	}
	sort.Strings(out)
	return out
}

// newRuntime builds the per-thread runtime: slot math mirrors Build exactly.
func newRuntime(api *sel4.API, comp *Component) *Runtime {
	rt := &Runtime{
		api:      api,
		comp:     comp,
		uses:     make(map[string]sel4.CPtr, len(comp.Uses)),
		devs:     make(map[machine.DeviceID]sel4.CPtr, len(comp.Devices)),
		ports:    make(map[vnet.Port]sel4.CPtr, len(comp.NetPorts)),
		emits:    make(map[string]sel4.CPtr, len(comp.Emits)),
		consumes: make(map[string]sel4.CPtr, len(comp.Consumes)),
	}
	for i, uses := range comp.Uses {
		rt.uses[uses] = SlotUsesBase + sel4.CPtr(i)
	}
	for i, dev := range comp.Devices {
		rt.devs[dev] = SlotDeviceBase + sel4.CPtr(i)
	}
	for i, port := range comp.NetPorts {
		rt.ports[port] = SlotNetBase + sel4.CPtr(i)
	}
	for i, ev := range comp.Emits {
		rt.emits[ev] = SlotEmitBase + sel4.CPtr(i)
	}
	for i, ev := range comp.Consumes {
		rt.consumes[ev] = SlotConsumeBase + sel4.CPtr(i)
	}
	return rt
}

// serveInterface is the generated server loop for one provided interface.
// A failed Reply is tolerated: a client that used plain Send instead of Call
// leaves no reply capability, and a server thread must not be killable by a
// malformed client (the asymmetric-trust concern of [16]).
func serveInterface(rt *Runtime, handler Handler) {
	for {
		res, err := rt.api.Recv(SlotProvides)
		if err != nil {
			return
		}
		results, herr := handler(rt, res.Msg.Label, res.Msg.Words[:], res.Badge)
		reply := sel4.Msg{}
		if herr != nil {
			reply.Label = rpcErrCode(herr)
		} else {
			copy(reply.Words[:], results)
		}
		if err := rt.api.Reply(reply); err != nil {
			rt.api.Trace("camkes", "reply dropped: "+err.Error())
		}
	}
}

// rpcErrCode maps a handler error to a non-zero wire code.
func rpcErrCode(err error) uint64 {
	var rpcErr *RPCError
	if ok := asRPCError(err, &rpcErr); ok && rpcErr.Code != 0 {
		return rpcErr.Code
	}
	return 1
}

// asRPCError is a tiny errors.As specialisation kept local to avoid an
// import cycle of convenience helpers.
func asRPCError(err error, target **RPCError) bool {
	for err != nil {
		if e, ok := err.(*RPCError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// findEventConnection locates the event connection for (component,
// emits-interface).
func findEventConnection(assembly *Assembly, fromComp, fromIface string) (Connection, bool) {
	for _, conn := range assembly.EventConnections {
		if conn.FromComp == fromComp && conn.FromIface == fromIface {
			return conn, true
		}
	}
	return Connection{}, false
}

// findConnection locates the connection for (component, uses-interface).
func findConnection(assembly *Assembly, fromComp, fromIface string) (Connection, bool) {
	for _, conn := range assembly.Connections {
		if conn.FromComp == fromComp && conn.FromIface == fromIface {
			return conn, true
		}
	}
	return Connection{}, false
}

// validate checks assembly well-formedness: unique component names, every
// connection endpoint exists, every uses-interface has exactly one
// connection, every provided interface has a handler.
func validate(assembly *Assembly) error {
	comps := make(map[string]*Component, len(assembly.Components))
	for _, comp := range assembly.Components {
		if comp.Name == "" {
			return fmt.Errorf("%w: unnamed component", ErrBadAssembly)
		}
		if _, dup := comps[comp.Name]; dup {
			return fmt.Errorf("%w: duplicate component %q", ErrBadAssembly, comp.Name)
		}
		if comp.Run == nil && len(comp.Provides) == 0 {
			return fmt.Errorf("%w: component %q has no threads", ErrBadAssembly, comp.Name)
		}
		for iface, h := range comp.Provides {
			if h == nil {
				return fmt.Errorf("%w: %s.%s has no handler", ErrBadAssembly, comp.Name, iface)
			}
		}
		comps[comp.Name] = comp
	}
	for _, conn := range assembly.Connections {
		from, ok := comps[conn.FromComp]
		if !ok {
			return fmt.Errorf("%w: connection from unknown component %q", ErrBadAssembly, conn.FromComp)
		}
		if !contains(from.Uses, conn.FromIface) {
			return fmt.Errorf("%w: %s does not use %q", ErrBadAssembly, conn.FromComp, conn.FromIface)
		}
		to, ok := comps[conn.ToComp]
		if !ok {
			return fmt.Errorf("%w: connection to unknown component %q", ErrBadAssembly, conn.ToComp)
		}
		if _, ok := to.Provides[conn.ToIface]; !ok {
			return fmt.Errorf("%w: %s does not provide %q", ErrBadAssembly, conn.ToComp, conn.ToIface)
		}
	}
	for _, comp := range assembly.Components {
		for _, uses := range comp.Uses {
			n := 0
			for _, conn := range assembly.Connections {
				if conn.FromComp == comp.Name && conn.FromIface == uses {
					n++
				}
			}
			if n != 1 {
				return fmt.Errorf("%w: %s.%s has %d connections, want 1", ErrBadAssembly, comp.Name, uses, n)
			}
		}
	}
	for _, conn := range assembly.EventConnections {
		from, ok := comps[conn.FromComp]
		if !ok || !contains(from.Emits, conn.FromIface) {
			return fmt.Errorf("%w: event connection from unknown %s.%s", ErrBadAssembly, conn.FromComp, conn.FromIface)
		}
		to, ok := comps[conn.ToComp]
		if !ok || !contains(to.Consumes, conn.ToIface) {
			return fmt.Errorf("%w: event connection to unknown %s.%s", ErrBadAssembly, conn.ToComp, conn.ToIface)
		}
	}
	for _, comp := range assembly.Components {
		for _, ev := range comp.Emits {
			if _, ok := findEventConnection(assembly, comp.Name, ev); !ok {
				return fmt.Errorf("%w: %s emits %q with no connection", ErrBadAssembly, comp.Name, ev)
			}
		}
	}
	return nil
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// mustInstall wraps InstallCap for builder-internal slots that are always
// valid.
func mustInstall(k *sel4.Kernel, tcbID sel4.ObjID, slot sel4.CPtr, cap sel4.Capability) {
	if err := k.InstallCap(tcbID, slot, cap); err != nil {
		panic(fmt.Sprintf("camkes: installing cap: %v", err))
	}
}
