package minix

import (
	"errors"
	"fmt"

	"mkbas/internal/core"
	"mkbas/internal/obs"
)

// PMName is the process manager's published name.
const PMName = "pm"

// pmServer is the user-space process manager: it serves fork2/kill over IPC
// and audits every request against the syscall half of the security policy
// (the paper's "we incorporated the process management server with ACM
// auditing mechanism").
type pmServer struct {
	k      *Kernel
	ledger *core.QuotaLedger

	// Audit counters for the experiments.
	forksGranted int64
	forksDenied  int64
	killsGranted int64
	killsDenied  int64
}

// newPMServer builds the PM state over a sealed syscall policy.
func newPMServer(k *Kernel, policy *core.SyscallPolicy) *pmServer {
	return &pmServer{k: k, ledger: core.NewQuotaLedger(policy)}
}

// pmImage is the PM's boot image: a system server at top priority.
func pmImage(pm *pmServer) Image {
	return Image{
		Name:     PMName,
		Body:     pm.run,
		Priority: 1,
		Server:   true,
	}
}

// run is the PM main loop. It runs as a simulated process; while it is
// running the engine goroutine is parked, so reading kernel tables here is
// race-free by construction.
func (pm *pmServer) run(api *API) {
	for {
		msg, err := api.Receive(EndpointAny)
		if err != nil {
			continue
		}
		var reply Message
		switch msg.Type {
		case TypePMFork2:
			reply = pm.handleFork2(api, msg)
		case TypePMKill:
			reply = pm.handleKill(api, msg)
		default:
			reply = pmReply(codeEPerm, EndpointNone)
		}
		// Reply asynchronously: a legitimate caller is rendezvous-blocked in
		// SendRec and receives immediately; a malicious caller that never
		// receives must not be able to wedge PM in a blocking send (the
		// asymmetric-trust IPC threat of [16]).
		_ = api.SendNB(msg.Source, reply)
	}
}

// handleFork2 audits and executes a fork2 request.
func (pm *pmServer) handleFork2(api *API, msg Message) Message {
	caller := pm.callerACID(msg.Source)
	image := msg.GetString(0)
	requested := core.ACID(msg.U32(40))

	if err := pm.ledger.Charge(caller, core.SysFork); err != nil {
		pm.forksDenied++
		pm.audit(api, "fork2", msg.Source, caller, obs.EventForkDenied, err)
		return pmReply(pmDenyCode(err), EndpointNone)
	}
	acid := requested
	if acid == core.NoACID {
		acid = caller // plain fork: the child inherits the caller's identity
	} else if acid != caller {
		// Assigning a different identity is a loader privilege (srv_fork2).
		if err := pm.ledger.Charge(caller, core.SysSetACID); err != nil {
			pm.forksDenied++
			pm.audit(api, "fork2/set_acid", msg.Source, caller, obs.EventForkDenied, err)
			return pmReply(pmDenyCode(err), EndpointNone)
		}
	}
	ep, err := api.kSpawn(image, acid)
	if err != nil {
		pm.forksDenied++
		return pmReply(codeFromErr(err), EndpointNone)
	}
	pm.forksGranted++
	return pmReply(codeOK, ep)
}

// handleKill audits and executes a kill request.
func (pm *pmServer) handleKill(api *API, msg Message) Message {
	caller := pm.callerACID(msg.Source)
	target := Endpoint(msg.U32(0))

	if err := pm.ledger.Charge(caller, core.SysKill); err != nil {
		pm.killsDenied++
		pm.audit(api, "kill", msg.Source, caller, obs.EventKillDenied, err)
		return pmReply(pmDenyCode(err), EndpointNone)
	}
	if err := api.kKill(target); err != nil {
		pm.killsDenied++
		return pmReply(codeFromErr(err), EndpointNone)
	}
	pm.killsGranted++
	return pmReply(codeOK, EndpointNone)
}

// callerACID resolves the requesting process's access-control identity.
// SendRec keeps the caller blocked until we reply, so it is always live.
func (pm *pmServer) callerACID(src Endpoint) core.ACID {
	if e := pm.k.resolve(src); e != nil {
		return e.acID
	}
	return core.NoACID
}

// audit logs one PM denial on the board trace and the security-event
// stream. PM runs as a simulated process, so the engine is parked while
// this executes — touching the event log here is race-free by the same
// argument that lets PM read kernel tables.
func (pm *pmServer) audit(api *API, op string, src Endpoint, caller core.ACID, kind obs.EventKind, err error) {
	name := fmt.Sprintf("acid=%d", caller)
	if e := pm.k.resolve(src); e != nil {
		name = e.name
	}
	pm.k.events.Emit(obs.SecurityEvent{
		Kind:      kind,
		Mechanism: obs.MechSyscallMask,
		Denied:    true,
		Src:       name,
		Dst:       PMName,
		Detail:    fmt.Sprintf("%s: %v", op, err),
	})
	api.Trace("minix-pm", fmt.Sprintf("DENY %s by acid=%d: %v", op, caller, err))
}

// pmDenyCode distinguishes quota exhaustion from plain policy denial on the
// wire.
func pmDenyCode(err error) int32 {
	if errors.Is(err, core.ErrNoQuotaLeft) {
		return codeEQuota
	}
	return codeEPerm
}

// pmReply builds the PM's standard reply message.
func pmReply(code int32, ep Endpoint) Message {
	reply := NewMessage(TypePMReply)
	reply.PutU32(0, uint32(code))
	reply.PutU32(4, uint32(ep))
	return reply
}

// kSpawn and kKill are the privileged kernel calls system servers use.

func (a *API) kSpawn(image string, acid core.ACID) (Endpoint, error) {
	reply := a.ctx.Trap(kSpawnReq{image: image, acid: acidArg(acid)}).(epReply)
	return reply.ep, reply.err
}

func (a *API) kKill(target Endpoint) error {
	return a.ctx.Trap(kKillReq{target: target}).(errReply).err
}

// PMView exposes PM audit state to experiments without letting them mutate
// it.
type PMView struct {
	pm *pmServer
}

// ForksGranted returns the number of fork2 requests PM has allowed.
func (v *PMView) ForksGranted() int64 { return v.pm.forksGranted }

// ForksDenied returns the number of fork2 requests PM has denied.
func (v *PMView) ForksDenied() int64 { return v.pm.forksDenied }

// KillsGranted returns the number of kill requests PM has allowed.
func (v *PMView) KillsGranted() int64 { return v.pm.killsGranted }

// KillsDenied returns the number of kill requests PM has denied.
func (v *PMView) KillsDenied() int64 { return v.pm.killsDenied }

// ForkQuotaRemaining reports the unspent fork budget for a subject.
func (v *PMView) ForkQuotaRemaining(subject core.ACID) int {
	return v.pm.ledger.Remaining(subject, core.SysFork)
}
