// Command bascontrol runs the Fig. 2 temperature-control scenario on a
// chosen platform and prints the behaviour trace: the closed-loop heat-up,
// an optional administrator setpoint change through the (simulated) HTTP
// interface, and an optional heater-fault injection that must trip the
// alarm. This regenerates experiment E3.
//
// Usage:
//
//	bascontrol -platform minix -duration 40m
//	bascontrol -platform sel4 -setpoint 25 -setpoint-at 10m
//	bascontrol -platform linux -fail-heater-at 20m -duration 90m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mkbas/internal/bacnet"
	"mkbas/internal/bas"
	"mkbas/internal/cli"
	"mkbas/internal/safety"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bascontrol:", err)
		os.Exit(1)
	}
}

func run() error {
	platform := flag.String("platform", "minix", "platform: minix, minix-vanilla, sel4, linux, linux-hardened")
	duration := flag.Duration("duration", 40*time.Minute, "virtual run time")
	setpoint := flag.Float64("setpoint", 0, "new setpoint to POST mid-run (0 = none)")
	setpointAt := flag.Duration("setpoint-at", 10*time.Minute, "when to POST the new setpoint")
	failHeaterAt := flag.Duration("fail-heater-at", 0, "inject a heater fault at this instant (0 = never)")
	showTrace := flag.Bool("trace", true, "print the board trace")
	showEvents := flag.Bool("events", false, "dump the unified security-event stream")
	showMetrics := flag.Bool("metrics", false, "print board metrics in Prometheus text exposition")
	withBACnet := flag.Bool("bacnet", false, "also run the BACnet gateway (MINIX only) and demo a field-bus read")
	bacnetKey := flag.String("bacnet-key", "", "enable the secure proxy with this shared key")
	flag.Parse()

	cfg := bas.DefaultScenario()
	tb := bas.NewTestbed(cfg)
	defer tb.Machine.Shutdown()

	if *withBACnet {
		if *platform != "minix" {
			return fmt.Errorf("-bacnet requires -platform minix")
		}
		if _, err := bas.Deploy(bas.PlatformMinix, tb, cfg, bas.DeployOptions{
			BACnet: bas.BACnetOptions{Enabled: true, Key: []byte(*bacnetKey)},
		}); err != nil {
			return err
		}
	} else if err := deploy(tb, cfg, *platform); err != nil {
		return err
	}
	mon := safety.Attach(tb.Machine.Clock(), tb.Room, safety.DefaultConfig())

	if *failHeaterAt > 0 {
		at := *failHeaterAt
		tb.Machine.Clock().After(at, func() { tb.Room.FailHeater(true) })
	}

	fmt.Printf("=== %s: temperature-control scenario (room %.1f°C, setpoint %.1f°C) ===\n",
		*platform, tb.Room.Temperature(), cfg.Controller.Setpoint)

	// Phase 1: run to the setpoint change (or straight through).
	if *setpoint != 0 && *setpointAt < *duration {
		tb.Machine.Run(*setpointAt)
		status, body, err := tb.HTTPPostSetpoint(fmt.Sprintf("%.2f", *setpoint))
		if err != nil {
			fmt.Printf("[%s] POST /setpoint failed: %v\n", tb.Machine.Clock().Now(), err)
		} else {
			fmt.Printf("[%s] POST /setpoint %.2f -> %d %s", tb.Machine.Clock().Now(), *setpoint, status, body)
		}
		mon.SetSetpoint(*setpoint)
	}
	tb.Machine.Run(*duration)

	// Final report.
	if code, body, err := tb.HTTPGet("/status"); err == nil {
		fmt.Printf("[%s] GET /status -> %d %s", tb.Machine.Clock().Now(), code, body)
	}
	if *withBACnet {
		demoBACnet(tb, *bacnetKey)
	}
	fmt.Printf("\n--- plant ---\n")
	fmt.Printf("temperature: %.2f°C  heater: %v  alarm: %v  heater-failed: %v\n",
		tb.Room.Temperature(), tb.Room.HeaterOn(), tb.Room.AlarmOn(), tb.Room.HeaterFailed())
	fmt.Printf("actuator events: %d\n", len(tb.Room.History()))
	for _, ev := range tb.Room.History() {
		fmt.Printf("  [%s] %s (%.2f°C)\n", ev.At, ev.Kind, ev.Temp)
	}

	fmt.Printf("\n--- safety ---\n")
	if mon.Healthy() {
		fmt.Println("no safety violations")
	} else {
		for _, v := range mon.Violations() {
			fmt.Println(" ", v)
		}
	}

	stats := tb.Machine.Engine().Stats()
	fmt.Printf("\n--- board ---\ntraps: %d  context switches: %d  kernel time: %v\n",
		stats.Traps, stats.ContextSwitches, stats.KernelTime)

	if *showEvents {
		fmt.Printf("\n--- security events ---\n")
		evlog := tb.Machine.Obs().Events()
		if evlog.Total() == 0 {
			fmt.Println("none")
		}
		for _, e := range evlog.Events() {
			fmt.Printf("[%s] %s\n", e.At, e)
		}
	}
	if *showMetrics {
		fmt.Printf("\n--- metrics ---\n")
		fmt.Print(tb.Machine.Obs().Metrics().PromText())
	}

	if *showTrace {
		fmt.Printf("\n--- trace (last 40 lines) ---\n")
		lines := tb.Machine.Trace().Lines()
		if len(lines) > 40 {
			lines = lines[len(lines)-40:]
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	return nil
}

// demoBACnet reads the temperature point over the field bus, proxied or
// legacy depending on the key.
func demoBACnet(tb *bas.Testbed, key string) {
	req := bacnet.PDU{Type: bacnet.ReadProperty, Device: 1, Object: bacnet.ObjTemperature}
	var raw []byte
	if key != "" {
		client := bacnet.NewSecureClient([]byte(key), 1)
		respFrame := tb.BACnetExchange(client.Seal(req))
		if respFrame == nil {
			fmt.Println("BACnet (proxied): no answer")
			return
		}
		resp, err := client.Open(respFrame)
		if err != nil {
			fmt.Printf("BACnet (proxied): %v\n", err)
			return
		}
		fmt.Printf("BACnet ReadProperty(temperature) via secure proxy -> %.2f°C\n", resp.Value)
		return
	}
	raw = tb.BACnetExchange(req.Encode())
	resp, err := bacnet.DecodePDU(raw)
	if err != nil {
		fmt.Printf("BACnet (legacy): %v\n", err)
		return
	}
	fmt.Printf("BACnet ReadProperty(temperature), legacy mode -> %.2f°C\n", resp.Value)
}

func deploy(tb *bas.Testbed, cfg bas.ScenarioConfig, platform string) error {
	p, err := cli.ParsePlatform(platform)
	if err != nil {
		return err
	}
	dep, err := bas.Deploy(p, tb, cfg, bas.DeployOptions{})
	if err != nil {
		return err
	}
	if p == bas.PlatformSel4 {
		if err := dep.(*bas.Sel4Deployment).System.Verify(); err != nil {
			return fmt.Errorf("CapDL verification: %w", err)
		}
		fmt.Println("CapDL capability distribution verified against the kernel")
	}
	return nil
}
