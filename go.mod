module mkbas

go 1.22
