// Package machine implements a deterministic virtual controller board.
//
// The board stands in for the BeagleBone Black used in the paper's testbed
// (Fig. 4). It provides the execution substrate every simulated operating
// system in this repository runs on:
//
//   - a virtual Clock that only advances under kernel control, so every run
//     is reproducible byte-for-byte;
//   - an Engine that runs simulated processes as goroutines under a strictly
//     cooperative, single-core discipline: exactly one process executes at a
//     time, and every system call is a scheduling point (a "trap");
//   - a memory-mapped device Bus connecting drivers to simulated hardware
//     (the thermal plant in internal/plant);
//   - cycle and context-switch accounting, used by the E4 experiments to
//     quantify the paper's microkernel-vs-monolithic IPC overhead remark.
//
// A kernel (internal/minix, internal/sel4, internal/linuxsim) is a
// TrapHandler: the Engine delivers each process trap to the kernel, and the
// kernel decides whether the process continues, blocks, or dies. Because the
// Engine is single-threaded and scheduling is FIFO within priority, attack
// experiments built on top of it are fully deterministic.
package machine
