package httpmini

import (
	"errors"
	"strings"
	"testing"
)

// Satellite coverage for the parser's hardening edges: the 515 LoC that
// front every byte an attacker controls previously had no tests for the
// refusal paths.

func feedOne(t *testing.T, raw string) (*Request, error) {
	t.Helper()
	var p Parser
	p.Feed([]byte(raw))
	return p.Next()
}

func TestMalformedRequestLines(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want error
	}{
		{"empty request line", "\r\n\r\n", ErrMalformed},
		{"two fields", "GET /\r\n\r\n", ErrMalformed},
		{"four fields", "GET / HTTP/1.0 junk\r\n\r\n", ErrMalformed},
		{"bad protocol", "GET / SPDY/9\r\n\r\n", ErrMalformed},
		{"unsupported method", "DELETE / HTTP/1.0\r\n\r\n", ErrBadMethod},
		{"lowercase method", "get / HTTP/1.0\r\n\r\n", ErrBadMethod},
		{"header without colon", "GET / HTTP/1.0\r\nno-colon-here\r\n\r\n", ErrMalformed},
		{"negative content length", "POST / HTTP/1.0\r\nContent-Length: -5\r\n\r\n", ErrMalformed},
		{"junk content length", "POST / HTTP/1.0\r\nContent-Length: ten\r\n\r\n", ErrMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := feedOne(t, tc.raw)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got (%v, %v), want error %v", req, err, tc.want)
			}
		})
	}
}

func TestOversizedHeaders(t *testing.T) {
	// A request line that never terminates must die at the header cap, not
	// accumulate forever (slowloris drip of header bytes).
	var p Parser
	p.Feed([]byte("GET /" + strings.Repeat("a", maxHeaderBytes) + " HTTP/1.0\r\n"))
	if _, err := p.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized request line: %v, want ErrTooLarge", err)
	}
	// A single oversized header value trips the same cap.
	p = Parser{}
	p.Feed([]byte("GET / HTTP/1.0\r\nX-Pad: " + strings.Repeat("b", maxHeaderBytes+1) + "\r\n\r\n"))
	if _, err := p.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized header block: %v, want ErrTooLarge", err)
	}
	// A declared body over the cap is refused before the bytes arrive.
	if _, err := feedOne(t, "POST / HTTP/1.0\r\nContent-Length: 100000\r\n\r\n"); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized declared body: %v, want ErrTooLarge", err)
	}
	// At the boundary the parser still works.
	body := strings.Repeat("x", maxBodyBytes)
	var pb Parser
	pb.Feed([]byte("POST / HTTP/1.0\r\nContent-Length: 65536\r\n\r\n" + body))
	req, err := pb.Next()
	if err != nil || req == nil || len(req.Body) != maxBodyBytes {
		t.Fatalf("body at cap: req=%v err=%v", req, err)
	}
}

func TestIncrementalFeedAndPipelining(t *testing.T) {
	var p Parser
	raw := "GET /a HTTP/1.0\r\n\r\nGET /b HTTP/1.0\r\n\r\n"
	// Drip one byte at a time: Next must keep answering "not yet" without
	// error until a full request lands.
	var got []string
	for i := 0; i < len(raw); i++ {
		p.Feed([]byte{raw[i]})
		req, err := p.Next()
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		if req != nil {
			got = append(got, req.Path)
		}
	}
	// The second pipelined request is still buffered.
	if req, err := p.Next(); err == nil && req != nil {
		got = append(got, req.Path)
	}
	if strings.Join(got, ",") != "/a,/b" {
		t.Fatalf("pipelined paths = %v", got)
	}
	if p.Buffered() != 0 {
		t.Fatalf("%d bytes left buffered", p.Buffered())
	}
}

func TestConnTableLimitRefusal(t *testing.T) {
	ct := NewConnTable(4, 0)
	for id := int64(0); id < 4; id++ {
		if !ct.Acquire(id, 0) {
			t.Fatalf("conn %d refused below the cap", id)
		}
	}
	if ct.Acquire(99, 0) {
		t.Fatal("5th concurrent connection admitted past a 4-conn table")
	}
	// Re-acquiring a live id is a keep-alive touch, not a new slot.
	if !ct.Acquire(2, 1) {
		t.Fatal("live connection refused on re-acquire")
	}
	ct.Release(0)
	if !ct.Acquire(99, 2) {
		t.Fatal("slot freed by Release not reusable")
	}
	if ct.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ct.Len())
	}
}

func TestConnTableSlowClientBackpressure(t *testing.T) {
	const idle = int64(5e9) // 5s budget
	ct := NewConnTable(8, idle)
	ct.Acquire(1, 0)
	ct.Acquire(2, 0)
	ct.Acquire(3, 0)
	// Connection 2 keeps making progress; 1 and 3 go silent.
	ct.Touch(2, 4e9)
	ct.Touch(2, 8e9)
	evicted := ct.SweepStale(9e9)
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 3 {
		t.Fatalf("evicted %v, want [1 3]", evicted)
	}
	if ct.Len() != 1 {
		t.Fatalf("Len after sweep = %d, want 1", ct.Len())
	}
	// The evicted slow client must re-acquire like a fresh connection.
	if !ct.Acquire(1, 10e9) {
		t.Fatal("evicted client could not reconnect")
	}
	// A zero idle budget disables sweeping.
	ct0 := NewConnTable(2, 0)
	ct0.Acquire(7, 0)
	if ev := ct0.SweepStale(1e18); ev != nil {
		t.Fatalf("sweep with disabled budget evicted %v", ev)
	}
}

func TestRouterDispatch(t *testing.T) {
	var r Router
	r.Handle("GET", "/api/rooms/:room/status", func(_ *Request, params []string) *Response {
		return Text(200, "room="+params[0])
	})
	r.Handle("POST", "/api/rooms/:room/setpoint", func(_ *Request, params []string) *Response {
		return Text(200, "set="+params[0])
	})
	r.Handle("GET", "/api/whoami", func(*Request, []string) *Response { return Text(200, "me") })

	serve := func(method, path string) (int, string) {
		resp := r.Dispatch(&Request{Method: method, Path: path})
		return resp.Status, string(resp.Body)
	}
	if st, body := serve("GET", "/api/rooms/7/status"); st != 200 || body != "room=7" {
		t.Fatalf("param route: %d %q", st, body)
	}
	if st, _ := serve("GET", "/api/rooms/7"); st != 404 {
		t.Fatalf("short path: %d, want 404", st)
	}
	if st, _ := serve("GET", "/api/rooms/7/setpoint"); st != 405 {
		t.Fatalf("wrong method on matched path: %d, want 405", st)
	}
	if st, _ := serve("GET", "/nope"); st != 404 {
		t.Fatalf("unknown path: %d, want 404", st)
	}
	// The auth hook short-circuits before any handler.
	r.Auth = func(req *Request) *Response {
		if req.Headers["authorization"] == "" {
			return Text(401, "no token")
		}
		return nil
	}
	if st, _ := serve("GET", "/api/whoami"); st != 401 {
		t.Fatalf("auth hook bypassed: %d, want 401", st)
	}
	resp := r.Dispatch(&Request{Method: "GET", Path: "/api/whoami", Headers: map[string]string{"authorization": "Bearer x"}})
	if resp.Status != 200 {
		t.Fatalf("authed request: %d, want 200", resp.Status)
	}
}
