package building

import (
	"time"

	"mkbas/internal/bacnet"
	"mkbas/internal/bas"
	"mkbas/internal/vnet"
)

// The supervisory head-end: the building management system (BMS) every real
// BAS has at the top of its field bus. It is deliberately not a simulated
// process on some board — a head-end is foreign equipment from the rooms'
// point of view, so it lives on a stackless bus node and speaks to every
// room only through BACnet frames: legacy frames to unprotected rooms,
// secure-proxy frames to rooms behind a bump-in-the-wire. From here it polls
// temperatures, pushes building-wide setpoint schedules (demand-response),
// and raises the building alarm when any room looks wrong.

// SetpointEvent is one demand-response entry in the building schedule:
// at building time At, command every room to Value.
type SetpointEvent struct {
	At    time.Duration `json:"at"`
	Value float64       `json:"value"`
}

// HeadEndConfig parameterises the BMS.
type HeadEndConfig struct {
	// PollPeriod is the per-room temperature polling interval; default 30s.
	PollPeriod time.Duration
	// Band is the tolerated |room temperature − scheduled setpoint| before a
	// room is flagged out-of-band; default 2 °C (the scenario alarm band).
	Band float64
	// StaleLimit is how many consecutive unanswered polls mark a room stale;
	// default 3.
	StaleLimit int
	// TimeoutRounds is how many bus rounds the head-end waits for a response
	// before counting a poll as missed; default 5.
	TimeoutRounds int
	// Warmup suppresses out-of-band flagging while rooms heat from their
	// initial temperature toward the setpoint; default 15m. Staleness is
	// never suppressed.
	Warmup time.Duration
	// Schedule is the building-wide demand-response program, in building
	// time, applied in order.
	Schedule []SetpointEvent
}

func (c HeadEndConfig) withDefaults() HeadEndConfig {
	if c.PollPeriod <= 0 {
		c.PollPeriod = 30 * time.Second
	}
	if c.Band <= 0 {
		c.Band = 2.0
	}
	if c.StaleLimit <= 0 {
		c.StaleLimit = 3
	}
	if c.TimeoutRounds <= 0 {
		c.TimeoutRounds = 5
	}
	if c.Warmup <= 0 {
		c.Warmup = 15 * time.Minute
	}
	return c
}

// headClientBase offsets BMS client ids so they cannot collide with room-
// local secure clients in tests.
const headClientBase uint32 = 0xB0000000

// headRoom is the head-end's view of one room.
type headRoom struct {
	index    int
	node     vnet.NodeID
	deviceID uint32
	secure   *bacnet.SecureClient // nil for legacy rooms

	// One outstanding request at a time, connection-per-exchange.
	conn      *vnet.BusConn
	def       bacnet.Deframer
	reqKind   bacnet.PDUType
	reqObj    bacnet.ObjectID
	invoke    uint8
	seq       uint8
	sentRound int

	wantSetpoint  *float64
	lastPollRound int
	pollAlarm     bool // alternate temperature / alarm-point reads

	lastTemp    float64
	haveTemp    bool
	alarmOn     bool
	missed      int // consecutive unanswered requests
	writesAcked int
}

// HeadEnd is the building management system.
type HeadEnd struct {
	bus   *vnet.Bus
	node  vnet.NodeID
	cfg   HeadEndConfig
	slice time.Duration

	setpoint   float64
	schedIdx   int
	rooms      []*headRoom
	pollRounds int
	now        time.Duration

	pollsSent     int
	pollsAnswered int
	pollsMissed   int
	writesSent    int

	// Send-path scratch: BusConn.Write copies into a pooled chunk before
	// returning, so one encode buffer and one frame buffer serve every room.
	encBuf   []byte
	frameBuf []byte
}

// newHeadEnd attaches a BMS for the given rooms. initialSetpoint is the
// setpoint the rooms booted with (the band reference until the schedule
// overrides it).
func newHeadEnd(bus *vnet.Bus, node vnet.NodeID, rooms []*Room, initialSetpoint float64, slice time.Duration, cfg HeadEndConfig) *HeadEnd {
	cfg = cfg.withDefaults()
	h := &HeadEnd{
		bus:      bus,
		node:     node,
		cfg:      cfg,
		slice:    slice,
		setpoint: initialSetpoint,
	}
	h.pollRounds = int(cfg.PollPeriod / slice)
	if h.pollRounds < 1 {
		h.pollRounds = 1
	}
	for _, room := range rooms {
		hr := &headRoom{
			index:    room.Index,
			node:     room.Node,
			deviceID: room.DeviceID,
			// Stagger first polls one round apart so a 64-room building does
			// not synchronise every poll into the same bus round forever.
			lastPollRound: -h.pollRounds + room.Index%h.pollRounds,
		}
		if room.Secure {
			hr.secure = bacnet.NewSecureClient(room.Key, headClientBase|uint32(room.Index))
		}
		h.rooms = append(h.rooms, hr)
	}
	return h
}

// OnRound runs the BMS once per lockstep round, between the two bus
// barriers: it harvests responses delivered by the first Flush, advances the
// demand-response schedule, and queues the next requests for the second.
// All in fixed room order — the head-end is part of the determinism contract.
func (h *HeadEnd) OnRound(round int, now time.Duration) {
	h.now = now
	for _, r := range h.rooms {
		h.harvest(r, round)
	}
	for h.schedIdx < len(h.cfg.Schedule) && now >= h.cfg.Schedule[h.schedIdx].At {
		v := h.cfg.Schedule[h.schedIdx].Value
		h.setpoint = v
		for _, r := range h.rooms {
			val := v
			r.wantSetpoint = &val
		}
		h.schedIdx++
	}
	for _, r := range h.rooms {
		h.issue(r, round)
	}
}

// harvest drains one room's in-flight exchange.
func (h *HeadEnd) harvest(r *headRoom, round int) {
	if r.conn == nil {
		return
	}
	if r.conn.Refused() {
		h.miss(r)
		return
	}
	r.def.Feed(r.conn.ReadAll())
	for {
		raw := r.def.Next()
		if raw == nil {
			break
		}
		var pdu bacnet.PDU
		var err error
		if r.secure != nil {
			pdu, err = r.secure.Open(raw)
		} else {
			pdu, err = bacnet.DecodePDU(raw)
		}
		if err != nil || pdu.InvokeID != r.invoke {
			continue // not our answer (stale, forged, or malformed)
		}
		switch r.reqKind {
		case bacnet.ReadProperty:
			if pdu.Type == bacnet.Ack {
				switch r.reqObj {
				case bacnet.ObjTemperature:
					r.lastTemp = pdu.Value
					r.haveTemp = true
				case bacnet.ObjAlarm:
					r.alarmOn = pdu.Value != 0
				}
			}
			h.pollsAnswered++
		case bacnet.WriteProperty:
			if pdu.Type == bacnet.Ack {
				r.writesAcked++
			}
		}
		r.missed = 0
		h.closeExchange(r)
		return
	}
	if round-r.sentRound >= h.cfg.TimeoutRounds {
		h.miss(r)
	}
}

func (h *HeadEnd) miss(r *headRoom) {
	r.missed++
	if r.reqKind == bacnet.ReadProperty {
		h.pollsMissed++
	}
	h.closeExchange(r)
}

func (h *HeadEnd) closeExchange(r *headRoom) {
	r.conn.Close()
	r.conn = nil
	r.def = bacnet.Deframer{}
}

// issue queues one room's next request: a pending scheduled write wins over
// a due poll.
func (h *HeadEnd) issue(r *headRoom, round int) {
	if r.conn != nil {
		return
	}
	switch {
	case r.wantSetpoint != nil:
		h.send(r, round, bacnet.PDU{
			Type: bacnet.WriteProperty, Device: r.deviceID,
			Object: bacnet.ObjSetpoint, Value: *r.wantSetpoint,
		})
		r.wantSetpoint = nil
		h.writesSent++
	case round-r.lastPollRound >= h.pollRounds:
		// Alternate between the temperature and alarm points: a room whose
		// sensor path is dead keeps reporting its last believed temperature,
		// so the controller's own failsafe alarm is the only truthful signal.
		obj := bacnet.ObjTemperature
		if r.pollAlarm {
			obj = bacnet.ObjAlarm
		}
		r.pollAlarm = !r.pollAlarm
		h.send(r, round, bacnet.PDU{
			Type: bacnet.ReadProperty, Device: r.deviceID,
			Object: obj,
		})
		r.lastPollRound = round
		h.pollsSent++
	}
}

func (h *HeadEnd) send(r *headRoom, round int, pdu bacnet.PDU) {
	r.seq++
	pdu.InvokeID = r.seq
	r.invoke = r.seq
	r.reqKind = pdu.Type
	r.reqObj = pdu.Object
	r.sentRound = round
	var payload []byte
	if r.secure != nil {
		payload = r.secure.Seal(pdu)
	} else {
		h.encBuf = pdu.AppendEncode(h.encBuf[:0])
		payload = h.encBuf
	}
	h.frameBuf = bacnet.AppendFrame(h.frameBuf[:0], payload)
	r.conn = h.bus.Dial(h.node, r.node, bas.BACnetPort)
	_ = r.conn.Write(h.frameBuf)
}

// RoomState is the BMS's judgement of one room.
type RoomState struct {
	Room      int     `json:"room"`
	Secure    bool    `json:"secure"`
	HaveTemp  bool    `json:"have_temp"`
	Temp      float64 `json:"temp"`
	Missed    int     `json:"missed"`
	Stale     bool    `json:"stale"`
	OutOfBand bool    `json:"out_of_band"`
	AlarmOn   bool    `json:"alarm_on"`
	Flagged   bool    `json:"flagged"`
	Writes    int     `json:"writes_acked"`
}

// RoomStates evaluates every room against the current schedule, in room
// order.
func (h *HeadEnd) RoomStates() []RoomState {
	out := make([]RoomState, 0, len(h.rooms))
	for _, r := range h.rooms {
		st := RoomState{
			Room:   r.index,
			Secure: r.secure != nil,
			Temp:   r.lastTemp, HaveTemp: r.haveTemp,
			Missed: r.missed,
			Writes: r.writesAcked,
		}
		st.Stale = r.missed >= h.cfg.StaleLimit
		if h.now >= h.cfg.Warmup {
			// Out-of-band and alarm relays are suppressed during warm-up
			// (every room boots cold and legitimately out of band).
			if r.haveTemp {
				dev := r.lastTemp - h.setpoint
				if dev < 0 {
					dev = -dev
				}
				st.OutOfBand = dev > h.cfg.Band
			}
			st.AlarmOn = r.alarmOn
		}
		st.Flagged = st.Stale || st.OutOfBand || st.AlarmOn
		out = append(out, st)
	}
	return out
}

// Setpoint is the currently scheduled building-wide setpoint.
func (h *HeadEnd) Setpoint() float64 { return h.setpoint }

// Alarm reports the building alarm: any room flagged.
func (h *HeadEnd) Alarm() bool {
	for _, st := range h.RoomStates() {
		if st.Flagged {
			return true
		}
	}
	return false
}
