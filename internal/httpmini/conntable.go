package httpmini

import "sort"

// ConnTable is the server-side connection guard: a fixed-capacity registry
// of live connections with a per-connection idle budget. Acquire refuses
// the (N+1)th concurrent connection — the connection-limit half of
// backpressure — and SweepStale evicts clients that feed bytes too slowly,
// so a slowloris-style drip cannot pin a slot forever. Time is virtual,
// supplied by the caller, so eviction order is deterministic.
type ConnTable struct {
	max    int
	idleNs int64
	conns  map[int64]int64 // conn id → virtual instant of last progress
}

// NewConnTable builds a table admitting at most max concurrent connections,
// evicting any connection idle longer than idleNs (0 disables sweeping).
func NewConnTable(max int, idleNs int64) *ConnTable {
	if max <= 0 {
		max = 64
	}
	return &ConnTable{max: max, idleNs: idleNs, conns: make(map[int64]int64, max)}
}

// Acquire admits connection id at virtual instant nowNs. False means the
// table is full and the connection must be refused (the caller answers 503
// or drops the socket).
func (t *ConnTable) Acquire(id, nowNs int64) bool {
	if _, ok := t.conns[id]; ok {
		t.conns[id] = nowNs
		return true
	}
	if len(t.conns) >= t.max {
		return false
	}
	t.conns[id] = nowNs
	return true
}

// Touch records progress (bytes arrived or a response flushed) for id.
func (t *ConnTable) Touch(id, nowNs int64) {
	if _, ok := t.conns[id]; ok {
		t.conns[id] = nowNs
	}
}

// Release removes id.
func (t *ConnTable) Release(id int64) { delete(t.conns, id) }

// Len is the live connection count.
func (t *ConnTable) Len() int { return len(t.conns) }

// SweepStale evicts every connection whose last progress is more than the
// idle budget before nowNs, returning the evicted ids in ascending order
// (sorted so eviction reporting is deterministic despite map iteration).
func (t *ConnTable) SweepStale(nowNs int64) []int64 {
	if t.idleNs <= 0 {
		return nil
	}
	var evicted []int64
	for id, last := range t.conns {
		if nowNs-last > t.idleNs {
			evicted = append(evicted, id)
		}
	}
	sort.Slice(evicted, func(i, j int) bool { return evicted[i] < evicted[j] })
	for _, id := range evicted {
		delete(t.conns, id)
	}
	return evicted
}
