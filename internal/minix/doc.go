// Package minix simulates the paper's security-enhanced MINIX 3 platform
// (Sections III-A, III-B, IV-A).
//
// The simulated kernel reproduces the mechanisms the experiments exercise:
//
//   - fixed-size 64-byte messages: a 4-byte source endpoint stamped by the
//     kernel (user code cannot forge it), a 4-byte message type, and a
//     56-byte payload;
//   - endpoints that uniquely identify a process as a slot number
//     concatenated with a generation number, so a restarted process gets a
//     fresh endpoint and stale endpoints are detectable;
//   - rendezvous-style synchronous message passing (Send/Receive/SendRec),
//     non-blocking asynchronous sends, and notifications — all exposed to
//     every user process, which is the authors' first kernel modification;
//   - the access control matrix (core.Matrix) consulted on every IPC
//     operation; denied sends are dropped and audited. The matrix is sealed
//     before boot, mirroring "compiled together with kernel binary";
//   - an ac_id field in the process control block, assigned at spawn
//     (fork2/srv_fork2), never recycled, and independent of Unix uid — root
//     privilege buys an attacker nothing on the IPC path;
//   - a user-space process manager (PM) reached via message passing, which
//     audits fork/kill/exec against a core.SyscallPolicy with optional
//     quotas (the paper's fork-bomb countermeasure, experiment E8);
//   - a reincarnation server (RS) that restarts registered drivers when they
//     crash, MINIX 3's hallmark self-repair.
//
// System servers (PM, RS) are reached through the same kernel IPC as
// everything else. Messages addressed to or sent by registered system
// servers bypass the *user* matrix — in MINIX any process may call PM — and
// are instead audited inside the server against the syscall policy, exactly
// the split the paper describes ("we incorporated the process management
// server with ACM auditing mechanism").
package minix
