package polcheck

import (
	"errors"
	"strings"
	"testing"
)

// The property parser's edge cases: empty input, malformed lines, duplicate
// property names, and properties that reference subjects the graph has never
// heard of. The parser must reject ambiguity loudly; the checker must fail
// safe (deny-style properties pass vacuously, allow-style properties flag
// the missing flow).

func TestParsePropertiesEmptyInput(t *testing.T) {
	for name, text := range map[string]string{
		"empty":        "",
		"whitespace":   "  \n\t\n   ",
		"comment-only": "# nothing here\n   # still nothing\n",
	} {
		props, err := ParseProperties(text)
		if err != nil {
			t.Errorf("%s: err = %v", name, err)
		}
		if len(props) != 0 {
			t.Errorf("%s: parsed %d properties from no content", name, len(props))
		}
	}
}

func TestParsePropertiesMoreMalformedLines(t *testing.T) {
	for _, bad := range []string{
		"deny_path(a, b",           // missing close paren
		"deny_path(a, b) trailing", // junk after close paren
		"(a, b)",                   // no property name
		"deny_path()",              // no args at all
		"only_endpoint(web, 1, 2)", // arity
		"no_kill_authority(a,)",    // empty trailing arg
		"allow_path(a, b))",        // doubled close paren is a bad arg
		"deny_path((a, b)",         // stray open paren in arg
		"only_endpoint(, 1)",       // empty subject
		"only_endpoint(web, 0x1)",  // non-decimal count
		"only_endpoint(web, 1.5)",  // non-integer count
		"deny_path(a, b)\nfrob(c)", // later line still checked
		"deny_path(a, b)\nallow_(", // and malformed later line
	} {
		if _, err := ParseProperties(bad); !errors.Is(err, ErrProperty) {
			t.Errorf("ParseProperties(%q) = %v, want ErrProperty", bad, err)
		}
	}
}

func TestParsePropertiesErrorCitesLine(t *testing.T) {
	_, err := ParseProperties("deny_path(a, b)\n\n# ok so far\nfrob(c, d)\n")
	if !errors.Is(err, ErrProperty) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error should cite line 4: %v", err)
	}
}

func TestParsePropertiesDuplicateName(t *testing.T) {
	_, err := ParseProperties(`
deny_path(web, heater)
allow_path(sensor, ctrl)
deny_path(web, heater)
`)
	if !errors.Is(err, ErrProperty) {
		t.Fatalf("duplicate accepted: err = %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "duplicate property deny_path(web, heater)") {
		t.Fatalf("error should name the duplicate: %v", err)
	}
	if !strings.Contains(msg, "line 4") || !strings.Contains(msg, "line 2") {
		t.Fatalf("error should cite both lines: %v", err)
	}
}

func TestParsePropertiesDuplicateDetectsNormalizedSpelling(t *testing.T) {
	// Same property, different whitespace: still a duplicate, because
	// identity is the normalised Name(), not the raw source line.
	_, err := ParseProperties("deny_path(web,heater)\ndeny_path( web , heater )\n")
	if !errors.Is(err, ErrProperty) {
		t.Fatalf("whitespace variant accepted: err = %v", err)
	}
}

func TestParsePropertiesDistinctArgsAreNotDuplicates(t *testing.T) {
	props, err := ParseProperties(`
deny_path(web, heater)
deny_path(web, alarm)
only_endpoint(web, 1)
only_endpoint(ctrl, 3)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(props) != 4 {
		t.Fatalf("parsed %d properties", len(props))
	}
}

func TestPropertiesOnUnknownSubjects(t *testing.T) {
	g := FromMatrix(testMatrix(t))

	// deny_path on subjects the graph has never seen: vacuously satisfied
	// (no flow can exist), not an error — fail-safe for deny semantics.
	if f := (DenyPath{From: "ghost", To: "phantom"}).Check(g); f.Severity != SeverityOK {
		t.Fatalf("deny_path on unknown subjects = %+v", f)
	}

	// allow_path on an unknown endpoint must flag the missing flow: liveness
	// properties exist to catch a contract written against the wrong names.
	if f := (AllowPath{From: "a", To: "phantom"}).Check(g); f.Severity != SeverityViolation {
		t.Fatalf("allow_path to unknown subject = %+v", f)
	}
	if f := (AllowPath{From: "ghost", To: "b"}).Check(g); f.Severity != SeverityViolation {
		t.Fatalf("allow_path from unknown subject = %+v", f)
	}

	// Kill authority over an unknown target cannot exist.
	if f := (NoKillAuthority{Subject: "ghost", Target: "b"}).Check(g); f.Severity != SeverityOK {
		t.Fatalf("no_kill_authority unknown subject = %+v", f)
	}

	// An unknown subject sends to zero destinations, within any budget.
	if f := (OnlyEndpoint{Subject: "ghost", Max: 0}).Check(g); f.Severity != SeverityOK {
		t.Fatalf("only_endpoint unknown subject = %+v", f)
	}
}
