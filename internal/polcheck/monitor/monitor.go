// Package monitor is the online half of polcheck: a runtime verifier that
// watches every IPC delivery a kernel records and diffs it, event by event,
// against the static access graph the deployment was certified with at
// deploy time. The static gate (checkDeployPolicy) proves the policy sound
// before the board boots; the monitor proves the *running* board never
// leaves that policy — the runtime-verification step Efremov & Shchepetkov
// apply to an LSM, transplanted onto the simulated kernels.
//
// On top of the certified graph the monitor layers OAMAC-style origin
// labels: every subject carries a provenance tag (boot-image, operator,
// web-origin), and a compromise verdict can demote a subject to a lower
// origin at runtime. The monitor then verifies traffic against the *current*
// origin assignment, so a demoted subject's certified edges turn into
// origin-drift findings the moment it next uses them — the dynamically
// shrunken access graph OAMAC argues for.
//
// The hot path is allocation-free: Observe performs struct-keyed map
// lookups and integer comparisons only, so the monitor can stay attached
// through million-event campaigns without disturbing the E4 overhead
// numbers it is benchmarked against.
package monitor

import (
	"fmt"

	"mkbas/internal/obs"
	"mkbas/internal/perf"
	"mkbas/internal/polcheck"
)

// Origin is an OAMAC-style provenance label, ordered by trust: a label
// dominates (may act for) every label below it.
type Origin uint8

// The origin lattice, least trusted first.
const (
	// OriginUntrusted is the demotion sink: a subject judged compromised.
	OriginUntrusted Origin = iota
	// OriginWeb marks code reachable from the building's web surface.
	OriginWeb
	// OriginOperator marks operator-supplied control logic.
	OriginOperator
	// OriginBoot marks code from the verified boot image — drivers,
	// actuators, loaders. The default for unlabelled subjects.
	OriginBoot
)

// String names the label.
func (o Origin) String() string {
	switch o {
	case OriginUntrusted:
		return "untrusted"
	case OriginWeb:
		return "web"
	case OriginOperator:
		return "operator"
	case OriginBoot:
		return "boot"
	default:
		return fmt.Sprintf("Origin(%d)", uint8(o))
	}
}

// Options configures a Monitor.
type Options struct {
	// Events receives drift and demotion events; nil discards them (the
	// counters still advance).
	Events *obs.EventLog
	// SubjectOf maps a kernel-recorded subject name to its graph subject
	// (polcheck.CapDLSubjectOf collapses seL4 thread names to components).
	// nil means identity. It runs on the IPC hot path and must not
	// allocate.
	SubjectOf func(string) string
	// ChannelNames maps kernel-side channel names to graph channel names
	// (the seL4 kernel names endpoints "comp.iface" while CapDL specs name
	// them "ep_comp_iface"). Missing names pass through unchanged.
	ChannelNames map[string]string
	// Origins assigns each graph subject its static origin label; subjects
	// absent from the map default to OriginBoot.
	Origins map[string]Origin
	// Profiler books Observe's host time into the "monitor.observe" phase.
	// nil profiles nothing. Observe is on the IPC hot path, so the phase is
	// time-only (no allocation counting) and the scope itself allocates
	// nothing — the AllocsPerRun(Observe)==0 guarantee holds either way.
	Profiler *perf.Profiler
}

// Stats are the monitor's lifetime counters.
type Stats struct {
	// Observed is the total number of deliveries checked.
	Observed int64 `json:"observed"`
	// PolicyDrifts counts deliveries outside the certified graph.
	PolicyDrifts int64 `json:"policy_drifts"`
	// OriginDrifts counts in-graph deliveries whose governing subject had
	// been demoted below the edge's required origin.
	OriginDrifts int64 `json:"origin_drifts"`
	// Demotions counts Demote calls that actually lowered a label.
	Demotions int64 `json:"demotions"`
}

// subjectState is one subject's live origin label.
type subjectState struct {
	name    string
	static  Origin
	current Origin
}

// edgeKey identifies one certified (src, dst, label) triple in the graph's
// namespace. Struct keys keep lookups allocation-free.
type edgeKey struct {
	src, dst, label string
}

// pairKey identifies a wildcard-certified (src, dst) pair ("mt*" ACM cells
// admit every message type).
type pairKey struct {
	src, dst string
}

// edgeInfo is what a lookup must know: which subject's authority the edge
// exercises and the origin label that authority was certified at.
type edgeInfo struct {
	gov *subjectState
	min Origin
}

// Monitor is an online policy verifier for one board.
type Monitor struct {
	events       *obs.EventLog
	subjectOf    func(string) string
	channelNames map[string]string
	subjects     map[string]*subjectState
	edges        map[edgeKey]*edgeInfo
	pairs        map[pairKey]*edgeInfo
	hasWildcard  bool
	stats        Stats
	phObserve    *perf.Phase
}

// New builds a monitor from a certified access graph. The graph's flow
// edges become the O(1) lookup tables Observe checks against; device edges
// are skipped (device access is not IPC and is not recorded). Each edge is
// governed by its subject endpoint — the sender for subject→subject and
// subject→channel edges, the receiver for channel→subject edges — and
// requires that subject's static origin.
func New(g *polcheck.Graph, opts Options) *Monitor {
	m := &Monitor{
		events:       opts.Events,
		subjectOf:    opts.SubjectOf,
		channelNames: opts.ChannelNames,
		subjects:     make(map[string]*subjectState),
		edges:        make(map[edgeKey]*edgeInfo),
		pairs:        make(map[pairKey]*edgeInfo),
		phObserve:    opts.Profiler.HotPhase("monitor.observe"),
	}
	for _, name := range g.Subjects() {
		origin := OriginBoot
		if o, ok := opts.Origins[name]; ok {
			origin = o
		}
		m.subjects[name] = &subjectState{name: name, static: origin, current: origin}
	}
	for _, n := range g.Nodes() {
		if n.Kind == polcheck.KindDevice {
			continue
		}
		for _, e := range g.FlowsFrom(n) {
			if e.To.Kind == polcheck.KindDevice {
				continue
			}
			gov := n.Name
			if n.Kind == polcheck.KindChannel {
				gov = e.To.Name
			}
			info := &edgeInfo{gov: m.subjects[gov]}
			if info.gov != nil {
				info.min = info.gov.static
			}
			for _, label := range e.Labels {
				if label == "mt*" {
					m.pairs[pairKey{src: n.Name, dst: e.To.Name}] = info
					m.hasWildcard = true
					continue
				}
				m.edges[edgeKey{src: n.Name, dst: e.To.Name, label: label}] = info
			}
		}
	}
	return m
}

// subjName normalises a kernel subject name into the graph namespace.
func (m *Monitor) subjName(name string) string {
	if m.subjectOf != nil {
		return m.subjectOf(name)
	}
	return name
}

// chanName normalises a kernel channel name into the graph namespace.
func (m *Monitor) chanName(name string) string {
	if mapped, ok := m.channelNames[name]; ok {
		return mapped
	}
	return name
}

// lookup resolves one recorded delivery to its certified edge, if any. The
// label tells which side is the channel: "send"/"signal" deliver subject →
// channel, "recv"/"wait" channel → subject, everything else (MINIX "mtN")
// subject → subject.
func (m *Monitor) lookup(src, dst, label string) (string, string, *edgeInfo) {
	var s, d string
	switch label {
	case "send", "signal":
		s, d = m.subjName(src), m.chanName(dst)
	case "recv", "wait":
		s, d = m.chanName(src), m.subjName(dst)
	default:
		s, d = m.subjName(src), m.subjName(dst)
	}
	info := m.edges[edgeKey{src: s, dst: d, label: label}]
	if info == nil && m.hasWildcard {
		info = m.pairs[pairKey{src: s, dst: d}]
	}
	return s, d, info
}

// Observe checks one recorded delivery against the current graph. It is the
// IPCLog observer callback: the in-graph path performs no allocation; drift
// emits a typed security event (and may allocate — drift is the exceptional
// path).
func (m *Monitor) Observe(src, dst, label string) {
	sc := m.phObserve.Begin()
	defer sc.End()
	m.stats.Observed++
	s, d, info := m.lookup(src, dst, label)
	if info == nil {
		m.stats.PolicyDrifts++
		m.events.Emit(obs.SecurityEvent{
			Kind:      obs.EventPolicyDrift,
			Mechanism: obs.MechPolicyMonitor,
			Src:       s,
			Dst:       d,
			Detail:    label,
		})
		return
	}
	if info.gov != nil && info.gov.current < info.min {
		m.stats.OriginDrifts++
		m.events.Emit(obs.SecurityEvent{
			Kind:      obs.EventOriginDrift,
			Mechanism: obs.MechPolicyMonitor,
			Src:       s,
			Dst:       d,
			Detail:    label + " requires origin " + info.min.String() + ", " + info.gov.name + " is " + info.gov.current.String(),
		})
	}
}

// Check reports whether (src, dst, label) is inside the current graph:
// certified, and not governed by a subject demoted below the edge's
// required origin. It emits nothing — callers that enforce (the building
// bus guard) emit their own events.
func (m *Monitor) Check(src, dst, label string) bool {
	_, _, info := m.lookup(src, dst, label)
	if info == nil {
		return false
	}
	return info.gov == nil || info.gov.current >= info.min
}

// Demote lowers a subject's origin label — the dynamic response to a
// compromise verdict. Raising a label is refused; demotion is monotone
// until Demote's inverse (none exists) or redeploy. Returns true if the
// label actually dropped.
func (m *Monitor) Demote(subject string, to Origin) bool {
	s := m.subjects[subject]
	if s == nil || to >= s.current {
		return false
	}
	from := s.current
	s.current = to
	m.stats.Demotions++
	m.events.Emit(obs.SecurityEvent{
		Kind:      obs.EventOriginDemoted,
		Mechanism: obs.MechPolicyMonitor,
		Src:       subject,
		Detail:    fmt.Sprintf("%s -> %s", from, to),
	})
	return true
}

// CurrentOrigin reports a subject's live origin label; ok is false for
// unknown subjects.
func (m *Monitor) CurrentOrigin(subject string) (Origin, bool) {
	s := m.subjects[subject]
	if s == nil {
		return OriginUntrusted, false
	}
	return s.current, true
}

// Stats returns the lifetime counters. Safe on a nil monitor (all zero).
func (m *Monitor) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	return m.stats
}
