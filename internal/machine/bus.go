package machine

import (
	"fmt"
	"sort"
)

// DeviceID addresses one device on the board bus.
type DeviceID string

// Device is simulated memory-mapped hardware. Register semantics are device
// specific; drivers and devices agree on a register map out of band, exactly
// as real drivers do with a datasheet.
type Device interface {
	// ReadReg returns the current value of a register.
	ReadReg(reg uint32) uint32
	// WriteReg stores a value into a register.
	WriteReg(reg uint32, value uint32)
}

// Bus connects drivers to devices. Kernels decide which processes may touch
// the bus: on the microkernels only the driver processes are handed access,
// on the monolithic kernel the kernel itself mediates.
type Bus struct {
	devices map[DeviceID]Device

	// Accounting of programmed I/O operations, per device.
	reads  map[DeviceID]int64
	writes map[DeviceID]int64
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{
		devices: make(map[DeviceID]Device),
		reads:   make(map[DeviceID]int64),
		writes:  make(map[DeviceID]int64),
	}
}

// Attach plugs a device into the bus. Attaching a duplicate ID panics: board
// layout is fixed at construction time.
func (b *Bus) Attach(id DeviceID, dev Device) {
	if dev == nil {
		panic("machine: Bus.Attach with nil device")
	}
	if _, dup := b.devices[id]; dup {
		panic(fmt.Sprintf("machine: device %q already attached", id))
	}
	b.devices[id] = dev
}

// Devices lists attached device IDs in stable order.
func (b *Bus) Devices() []DeviceID {
	ids := make([]DeviceID, 0, len(b.devices))
	for id := range b.devices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ErrNoDevice reports access to an unattached device.
type ErrNoDevice struct{ ID DeviceID }

func (e *ErrNoDevice) Error() string {
	return fmt.Sprintf("machine: no device %q on bus", e.ID)
}

// Read performs a programmed-I/O read of one device register.
func (b *Bus) Read(id DeviceID, reg uint32) (uint32, error) {
	dev, ok := b.devices[id]
	if !ok {
		return 0, &ErrNoDevice{ID: id}
	}
	b.reads[id]++
	return dev.ReadReg(reg), nil
}

// Write performs a programmed-I/O write of one device register.
func (b *Bus) Write(id DeviceID, reg uint32, value uint32) error {
	dev, ok := b.devices[id]
	if !ok {
		return &ErrNoDevice{ID: id}
	}
	b.writes[id]++
	dev.WriteReg(reg, value)
	return nil
}

// IOCount returns the number of reads and writes issued to a device.
func (b *Bus) IOCount(id DeviceID) (reads, writes int64) {
	return b.reads[id], b.writes[id]
}
