package faultinject

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"mkbas/internal/machine"
	"mkbas/internal/obs"
	"mkbas/internal/plant"
)

// nopKernel satisfies machine.TrapHandler for a board with no processes;
// the injector only needs the clock, bus, and obs sinks.
type nopKernel struct{}

func (nopKernel) HandleTrap(machine.PID, any) (any, machine.Disposition) {
	return nil, machine.DispositionContinue
}
func (nopKernel) OnProcExit(machine.PID, machine.ExitInfo) {}

// fakeBoard records injector calls against a real virtual clock and room.
type fakeBoard struct {
	m        *machine.Machine
	room     *plant.Room
	crashed  []string
	crashErr error
	filter   func(src, dst string) (bool, time.Duration)
	floods   []int
}

func newFakeBoard(t *testing.T) *fakeBoard {
	t.Helper()
	m := machine.New(machine.Config{})
	m.Engine().SetHandler(nopKernel{})
	t.Cleanup(m.Shutdown)
	room := plant.Attach(m.Bus(), plant.NewRoom(m.Clock(), plant.DefaultConfig()))
	return &fakeBoard{m: m, room: room}
}

func (b *fakeBoard) Clock() *machine.Clock  { return b.m.Clock() }
func (b *fakeBoard) Room() *plant.Room      { return b.room }
func (b *fakeBoard) Events() *obs.EventLog  { return b.m.Obs().Events() }
func (b *fakeBoard) Metrics() *obs.Registry { return b.m.Obs().Metrics() }
func (b *fakeBoard) CrashProcess(name string) error {
	b.crashed = append(b.crashed, name)
	return b.crashErr
}
func (b *fakeBoard) SetIPCFault(fn func(src, dst string) (bool, time.Duration)) { b.filter = fn }
func (b *fakeBoard) Flood(count int) error {
	b.floods = append(b.floods, count)
	return nil
}

// readSensor drives one device-level sensor read, which is the injector's
// recovery probe.
func (b *fakeBoard) readSensor(t *testing.T) {
	t.Helper()
	if _, err := b.m.Bus().Read(plant.DevTempSensor, plant.RegTempMilliC); err != nil {
		t.Fatalf("sensor read: %v", err)
	}
}

func TestPlanValidateSortsAndRejects(t *testing.T) {
	p := &Plan{Name: "x", Faults: []Fault{
		{At: 2 * time.Second, Kind: KindWebFlood, Count: 1},
		{At: time.Second, Kind: KindDriverCrash, Target: "a"},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Faults[0].Kind != KindDriverCrash {
		t.Errorf("faults not sorted by offset: %+v", p.Faults)
	}

	for name, bad := range map[string]*Plan{
		"negative offset":  {Faults: []Fault{{At: -time.Second, Kind: KindDriverCrash, Target: "a"}}},
		"unknown kind":     {Faults: []Fault{{Kind: "meteor-strike"}}},
		"crash no target":  {Faults: []Fault{{Kind: KindDriverCrash}}},
		"hang no duration": {Faults: []Fault{{Kind: KindDriverHang, Target: "a"}}},
		"drop no duration": {Faults: []Fault{{Kind: KindIPCDrop, Target: "a"}}},
		"delay no delay":   {Faults: []Fault{{Kind: KindIPCDelay, Target: "a", Duration: time.Second}}},
		"drift zero rate":  {Faults: []Fault{{Kind: KindSensorDrift}}},
		"flood zero count": {Faults: []Fault{{Kind: KindWebFlood}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, bad)
		}
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p, err := Lookup("crash-sensor-repeat")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	data, err := p.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	back, err := ParsePlan(data)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	data2, err := back.JSON()
	if err != nil {
		t.Fatalf("JSON round 2: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("JSON round trip not stable:\n%s\nvs\n%s", data, data2)
	}
}

func TestLookupAndRegister(t *testing.T) {
	if _, err := Lookup("definitely-not-a-plan"); err == nil {
		t.Error("Lookup accepted an unknown plan")
	}
	// Lookup returns a copy: mutating it must not corrupt the registry.
	p1, err := Lookup("crash-sensor")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	p1.Faults[0].Target = "mutated"
	p2, _ := Lookup("crash-sensor")
	if p2.Faults[0].Target == "mutated" {
		t.Error("Lookup shares fault storage with the registry")
	}

	if err := Register(&Plan{}); err == nil {
		t.Error("Register accepted an unnamed plan")
	}
	custom := &Plan{Name: "test-custom-plan", Faults: []Fault{
		{At: time.Minute, Kind: KindHeaterFail, Duration: time.Minute},
	}}
	if err := Register(custom); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := Lookup("test-custom-plan"); err != nil {
		t.Errorf("registered plan not found: %v", err)
	}
}

// TestArmInjectsOnSchedule drives a mixed plan on a fake board and pins the
// injector's behavior: crash and flood calls, the transport-fault window, the
// plant fault, MTTR bookkeeping, and the emitted observability.
func TestArmInjectsOnSchedule(t *testing.T) {
	b := newFakeBoard(t)
	plan := &Plan{Name: "mixed", Faults: []Fault{
		{At: 1 * time.Second, Kind: KindDriverCrash, Target: "x"},
		{At: 2 * time.Second, Kind: KindSensorStuck, Value: 22, Duration: 2 * time.Second},
		{At: 3 * time.Second, Kind: KindWebFlood, Count: 5},
		{At: 1 * time.Second, Kind: KindIPCDrop, Src: "a", Target: "x", Duration: time.Second},
	}}
	inj, err := Arm(b, plan)
	if err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if b.filter == nil {
		t.Fatal("transport fault present but no IPC filter installed")
	}
	if got := inj.Windows(); got != 1 {
		t.Fatalf("Windows = %d, want 1", got)
	}

	// Sample the filter inside and outside the drop window.
	var inWindow, wrongPair bool
	b.m.Clock().After(1500*time.Millisecond, func() {
		inWindow, _ = b.filter("a", "x")
		wrongPair, _ = b.filter("a", "y")
	})
	var afterWindow bool
	b.m.Clock().After(2500*time.Millisecond, func() {
		afterWindow, _ = b.filter("a", "x")
	})
	// Recovery probes: a faulted read at 3s must not close recovery; the
	// clean read at 5s closes every fault whose effect window has passed.
	b.m.Clock().After(3*time.Second, func() { b.readSensor(t) })
	b.m.Clock().After(5*time.Second, func() { b.readSensor(t) })

	b.m.Run(10 * time.Second)

	if len(b.crashed) != 1 || b.crashed[0] != "x" {
		t.Errorf("crashed = %v, want [x]", b.crashed)
	}
	if len(b.floods) != 1 || b.floods[0] != 5 {
		t.Errorf("floods = %v, want [5]", b.floods)
	}
	if !inWindow {
		t.Error("drop window inactive at 1.5s")
	}
	if wrongPair {
		t.Error("drop window matched the wrong destination")
	}
	if afterWindow {
		t.Error("drop window still active at 2.5s")
	}

	rep := inj.Report()
	if rep.Injected != 4 || rep.Unrecovered != 0 {
		t.Errorf("Injected=%d Unrecovered=%d, want 4/0", rep.Injected, rep.Unrecovered)
	}
	// Recovery closed at the 5s clean read for every fault; the oldest fault
	// (1s) therefore carries the maximum MTTR of 4s.
	if want := int64(4 * time.Second); rep.MTTRMaxNs != want {
		t.Errorf("MTTRMaxNs = %d, want %d", rep.MTTRMaxNs, want)
	}
	events := b.m.Obs().Events().Events()
	n := 0
	for _, e := range events {
		if e.Kind == obs.EventFaultInjected && e.Mechanism == obs.MechFaultInject {
			n++
		}
	}
	if n != 4 {
		t.Errorf("fault-injected events = %d, want 4", n)
	}
}

// TestArmIsDeterministic runs the same plan on two fresh boards and compares
// report bytes.
func TestArmIsDeterministic(t *testing.T) {
	run := func() []byte {
		b := newFakeBoard(t)
		plan, err := Lookup("crash-sensor-repeat")
		if err != nil {
			t.Fatalf("Lookup: %v", err)
		}
		inj, err := Arm(b, plan)
		if err != nil {
			t.Fatalf("Arm: %v", err)
		}
		b.m.Clock().After(105*time.Minute, func() { b.readSensor(t) })
		b.m.Run(2 * time.Hour)
		out, err := json.Marshal(inj.Report())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return out
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Errorf("reports differ across identical runs:\n%s\nvs\n%s", a, b)
	}
}

// TestCrashFailureIsReported pins the failure path: a crash the board cannot
// perform is still counted as injected, and the error lands in the event log.
func TestCrashFailureIsReported(t *testing.T) {
	b := newFakeBoard(t)
	b.crashErr = errors.New("no such process")
	plan := &Plan{Name: "bad", Faults: []Fault{
		{At: time.Second, Kind: KindDriverCrash, Target: "ghost"},
	}}
	if _, err := Arm(b, plan); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	b.m.Run(2 * time.Second)
	found := false
	for _, e := range b.m.Obs().Events().Events() {
		if e.Kind == obs.EventFaultInjected && e.Detail == "crash failed: no such process" {
			found = true
		}
	}
	if !found {
		t.Error("crash failure not surfaced in the event log")
	}
}

func TestViolationsDuring(t *testing.T) {
	var t0 machine.Time
	rep := &Report{Faults: []FaultOutcome{
		{Injected: true, AtNs: int64(10 * time.Second), RecoveredAtNs: int64(20 * time.Second)},
		{Injected: true, AtNs: int64(30 * time.Second), RecoveredAtNs: -1},
		{Injected: false, AtNs: int64(1 * time.Second), RecoveredAtNs: -1},
	}}
	times := []machine.Time{
		t0.Add(5 * time.Second),  // before any fault
		t0.Add(15 * time.Second), // inside the recovered fault's window
		t0.Add(25 * time.Second), // between windows
		t0.Add(35 * time.Second), // inside the unrecovered (open) window
	}
	if got := ViolationsDuring(t0, rep, times); got != 2 {
		t.Errorf("ViolationsDuring = %d, want 2", got)
	}
	if got := ViolationsDuring(t0, nil, times); got != 0 {
		t.Errorf("nil report: %d, want 0", got)
	}
}
