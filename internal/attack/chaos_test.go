package attack

import (
	"testing"
	"time"

	"mkbas/internal/safety"
)

// TestChaosVerdictTableE10 asserts the experiment E10 headline: under the
// same sensor-driver crash (no attacker at all), the microkernel platforms
// reincarnate the driver with bounded MTTR and zero safety violations, while
// the paper's default Linux deployment — no supervisor — never gets its
// sensor back and the physical world degrades.
func TestChaosVerdictTableE10(t *testing.T) {
	cases := []struct {
		platform Platform
		verdict  string
	}{
		{PlatformMinix, "RECOVERED"},
		{PlatformSel4, "RECOVERED"},
		{PlatformLinux, "COMPROMISED"},
	}
	for _, c := range cases {
		c := c
		t.Run(string(c.platform), func(t *testing.T) {
			rep, err := Execute(Spec{
				Platform:  c.platform,
				Action:    ActionNone,
				FaultPlan: "crash-sensor",
				Recovery:  true,
			})
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if got := rep.Verdict(); got != c.verdict {
				t.Fatalf("verdict = %s, want %s (report: restarts=%d recovered=%v violations=%d)",
					got, c.verdict, rep.Restarts, rep.Recovered, len(rep.Violations))
			}
			if rep.FaultReport == nil || rep.FaultReport.Injected != 1 {
				t.Fatalf("fault report missing or empty: %+v", rep.FaultReport)
			}
			if c.verdict == "RECOVERED" {
				if rep.Restarts < 1 || !rep.Recovered {
					t.Errorf("restarts=%d recovered=%v, want a reincarnation", rep.Restarts, rep.Recovered)
				}
				if len(rep.Violations) != 0 {
					t.Errorf("safety violations on a healed run: %v", rep.Violations)
				}
				fr := rep.FaultReport
				if fr.Recovered != 1 || fr.MTTRMaxNs <= 0 || fr.MTTRMaxNs > int64(30*time.Second) {
					t.Errorf("MTTR %s not bounded by (0, 30s]: %+v", time.Duration(fr.MTTRMaxNs), fr)
				}
				if rep.ViolationsDuringFault != 0 {
					t.Errorf("ViolationsDuringFault = %d, want 0", rep.ViolationsDuringFault)
				}
				return
			}
			// The COMPROMISED row: the controller itself never died — the
			// verdict comes from physical degradation, not lost liveness.
			if !rep.ControllerAlive {
				t.Error("controller process died; the crash targeted only the sensor")
			}
			if rep.Recovered || rep.Restarts != 0 {
				t.Errorf("vanilla Linux reports recovery: restarts=%d recovered=%v", rep.Restarts, rep.Recovered)
			}
			if rep.FaultReport.Unrecovered != 1 {
				t.Errorf("fault report: %+v, want 1 unrecovered", rep.FaultReport)
			}
			var rangeViolations int
			for _, v := range rep.Violations {
				if v.Property == safety.PropTempInRange {
					rangeViolations++
				}
			}
			if rangeViolations == 0 {
				t.Errorf("no temp-in-range violations; got %v", rep.Violations)
			}
			if rep.ViolationsDuringFault == 0 {
				t.Error("violations not attributed to the open fault window")
			}
		})
	}
}

// TestChaosHangSelfHealsEverywhere pins the contrasting fault class: a hang
// (driver alive, IPC black-holed) self-heals when the window closes, so even
// supervisor-less Linux ends the run healthy — failsafe held the room safe
// and no verdict-worthy damage accrued.
func TestChaosHangSelfHealsEverywhere(t *testing.T) {
	for _, p := range AllPlatforms() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			rep, err := Execute(Spec{Platform: p, Action: ActionNone, FaultPlan: "hang-sensor"})
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if got := rep.Verdict(); got != "BLOCKED" {
				t.Fatalf("verdict = %s, want BLOCKED (nothing died, nothing drifted): %v", got, rep.Violations)
			}
			if rep.Restarts != 0 {
				t.Errorf("restarts = %d on a hang", rep.Restarts)
			}
			fr := rep.FaultReport
			if fr == nil || fr.Recovered != 1 || fr.Unrecovered != 0 {
				t.Fatalf("fault report: %+v, want the hang recovered", fr)
			}
		})
	}
}
